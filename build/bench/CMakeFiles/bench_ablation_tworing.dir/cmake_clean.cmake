file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_tworing.dir/bench_ablation_tworing.cpp.o"
  "CMakeFiles/bench_ablation_tworing.dir/bench_ablation_tworing.cpp.o.d"
  "bench_ablation_tworing"
  "bench_ablation_tworing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_tworing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
