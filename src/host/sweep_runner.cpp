#include "ksr/host/sweep_runner.hpp"

namespace ksr::host {

SweepRunner::SweepRunner(unsigned jobs) : jobs_(jobs ? jobs : default_jobs()) {
  if (jobs_ > 1) {
    threads_.reserve(jobs_);
    for (unsigned i = 0; i < jobs_; ++i) {
      threads_.emplace_back([this] { worker_loop(); });
    }
  }
}

SweepRunner::~SweepRunner() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& t : threads_) t.join();
}

void SweepRunner::run_indexed(std::size_t count,
                              const std::function<void(std::size_t)>& task) {
  if (count == 0) return;
  if (jobs_ <= 1 || count == 1) {
    // Serial fast path: the exact current execution, on the calling thread.
    for (std::size_t i = 0; i < count; ++i) task(i);
    return;
  }

  errors_.assign(count, nullptr);
  {
    std::unique_lock<std::mutex> lk(mu_);
    task_ = &task;
    count_ = count;
    next_.store(0, std::memory_order_relaxed);
    exited_ = 0;
    ++batch_;  // publishes the batch to the workers
    cv_work_.notify_all();
    // Wait for every worker to observe the batch AND leave its claim loop,
    // not merely for all indices to finish: a worker that wakes late must
    // never see task_/count_/next_ from a later batch (or after reset).
    // Every index was claimed and ran before the claiming worker bumped
    // exited_, so exited_ == jobs_ implies the batch is fully done.
    cv_done_.wait(lk, [&] { return exited_ == jobs_; });
    task_ = nullptr;
  }
  // Submission order, not completion order: the earliest failing job wins,
  // matching what a serial run would have thrown.
  for (auto& e : errors_) {
    if (e) std::rethrow_exception(e);
  }
}

void SweepRunner::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(std::size_t)>* task = nullptr;
    std::size_t count = 0;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_work_.wait(lk, [&] { return stop_ || batch_ != seen; });
      if (stop_) return;
      seen = batch_;
      task = task_;
      count = count_;
    }
    for (;;) {
      const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) break;
      try {
        (*task)(i);
      } catch (...) {
        errors_[i] = std::current_exception();
      }
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (++exited_ == jobs_) cv_done_.notify_all();
    }
  }
}

}  // namespace ksr::host
