#include "ksr/nas/is.hpp"

#include <algorithm>

#include "ksr/sim/rng.hpp"
#include "ksr/sync/barrier.hpp"
#include "ksr/sync/padded.hpp"

namespace ksr::nas {

std::vector<std::uint32_t> make_keys(const IsConfig& cfg) {
  const std::size_t n = 1ull << cfg.log2_keys;
  const std::uint32_t buckets = 1u << cfg.log2_buckets;
  sim::Rng rng(cfg.seed);
  std::vector<std::uint32_t> keys(n);
  for (auto& k : keys) {
    // NAS IS uses an average of four uniforms (roughly Gaussian-ish
    // concentration in the middle buckets); keep that shape.
    std::uint64_t acc = 0;
    for (int j = 0; j < 4; ++j) acc += rng.below(buckets);
    k = static_cast<std::uint32_t>(acc / 4);
  }
  return keys;
}

IsResult run_is(machine::Machine& m, const IsConfig& cfg) {
  const std::size_t n = 1ull << cfg.log2_keys;
  const std::size_t nbuckets = 1ull << cfg.log2_buckets;
  const unsigned nproc = m.nproc();
  const std::vector<std::uint32_t> host_keys = make_keys(cfg);

  // Per-processor replicated counts: one page-aligned chunk per processor
  // (replication is cheap in a 32 MB local cache — paper §3.3.2).
  const std::size_t chunk_ints =
      std::max<std::size_t>(nbuckets, mem::kPageBytes / sizeof(std::uint32_t));

  // Bucket -> keyden slot mapping. Identity by default: neighbouring
  // processors' portions share the sub-page at their boundary (the false
  // sharing the profiler must catch). With cfg.pad_buckets every portion
  // starts on a fresh sub-page, so no two portions share a coherence unit.
  constexpr std::size_t kIntsPerSubPage =
      mem::kSubPageBytes / sizeof(std::uint32_t);
  std::vector<std::size_t> slot(nbuckets);
  std::size_t keyden_ints = nbuckets;
  if (cfg.pad_buckets) {
    std::size_t next = 0;
    for (unsigned p = 0; p < nproc; ++p) {
      const std::size_t lo = nbuckets * p / nproc;
      const std::size_t hi = nbuckets * (p + 1) / nproc;
      for (std::size_t b = lo; b < hi; ++b) slot[b] = next + (b - lo);
      next += (hi - lo + kIntsPerSubPage - 1) / kIntsPerSubPage *
              kIntsPerSubPage;
    }
    keyden_ints = std::max<std::size_t>(next, 1);
  } else {
    for (std::size_t b = 0; b < nbuckets; ++b) slot[b] = b;
  }

  auto keys = m.alloc<std::uint32_t>("is.keys", n);
  auto rank = m.alloc<std::uint32_t>("is.rank", n);
  auto keyden = m.alloc<std::uint32_t>("is.keyden", keyden_ints);
  auto keyden_t = m.alloc<std::uint32_t>(
      "is.keyden_t", static_cast<std::size_t>(nproc) * chunk_ints,
      machine::Placement::blocked(chunk_ints * sizeof(std::uint32_t)));
  sync::Padded<std::uint32_t> tmp_sum(m, "is.tmp", nproc);
  auto barrier = sync::make_barrier(m, sync::BarrierKind::kSystem);

  IsResult out;
  double t_max = 0;
  double t_serial = 0;

  m.run([&](machine::Cpu& cpu) {
    const unsigned me = cpu.id();
    const std::size_t k_lo = n * me / nproc;
    const std::size_t k_hi = n * (me + 1) / nproc;
    const std::size_t b_lo = nbuckets * me / nproc;
    const std::size_t b_hi = nbuckets * (me + 1) / nproc;
    const std::size_t my_base = static_cast<std::size_t>(me) * chunk_ints;

    // ---- Warm-up (untimed): distribute keys (each processor writes its
    // chunk, establishing ownership) and zero the local counts.
    for (std::size_t i = k_lo; i < k_hi; ++i) {
      cpu.write(keys, i, host_keys[i]);
    }
    for (std::size_t b = 0; b < nbuckets; ++b) {
      cpu.write(keyden_t, my_base + b, 0);
    }
    for (std::size_t b = b_lo; b < b_hi; ++b) cpu.write(keyden, slot[b], 0);
    barrier->arrive(cpu);
    const double t0 = cpu.seconds();

    // ---- Phase 1: local bucket counts (no synchronization).
    for (std::size_t i = k_lo; i < k_hi; ++i) {
      const std::uint32_t k = cpu.read(keys, i);
      cpu.write(keyden_t, my_base + k, cpu.read(keyden_t, my_base + k) + 1);
      cpu.work(cfg.work_per_key);
    }
    barrier->arrive(cpu);

    // ---- Phase 2: accumulate my portion of the global counts from every
    // processor's local counts (all-to-all read traffic on the ring).
    if (cfg.use_prefetch) {
      // Software-pipelined prefetch of the remote count slices (staggered
      // start per cell so the ring sees spread, not bursts).
      const unsigned depth = m.config().prefetch_depth;
      unsigned issued = 0;
      for (unsigned off = 1; off < nproc; ++off) {
        const unsigned src = (me + off) % nproc;
        const mem::Sva a0 =
            keyden_t.addr(static_cast<std::size_t>(src) * chunk_ints + b_lo);
        const mem::Sva a1 =
            keyden_t.addr(static_cast<std::size_t>(src) * chunk_ints + b_hi);
        for (mem::Sva a = a0; a < a1; a += mem::kSubPageBytes) {
          cpu.prefetch(a);
          if (++issued % depth == 0) cpu.work(190);
        }
      }
    }
    for (std::size_t b = b_lo; b < b_hi; ++b) {
      std::uint32_t sum = 0;
      for (unsigned p = 0; p < nproc; ++p) {
        sum += cpu.read(keyden_t, static_cast<std::size_t>(p) * chunk_ints + b);
        cpu.work(2);
      }
      cpu.write(keyden, slot[b], sum);
    }
    barrier->arrive(cpu);

    // ---- Phase 3: partial prefix sums over my portion.
    std::uint32_t running = 0;
    for (std::size_t b = b_lo; b < b_hi; ++b) {
      running += cpu.read(keyden, slot[b]);
      cpu.write(keyden, slot[b], running);
      cpu.work(2);
    }
    tmp_sum.write(cpu, me, running);
    barrier->arrive(cpu);

    // ---- Phase 4: SERIAL — cell 0 turns the per-processor maxima into
    // inclusive prefix sums. Time grows with P, and the operands live in
    // remote caches (they were just written by every processor).
    if (me == 0) {
      const double s0 = cpu.seconds();
      std::uint32_t acc = 0;
      for (unsigned p = 0; p < nproc; ++p) {
        acc += tmp_sum.read(cpu, p);
        tmp_sum.write(cpu, p, acc);
        cpu.work(2);
      }
      t_serial += cpu.seconds() - s0;
    }
    barrier->arrive(cpu);

    // ---- Phase 5: offset my portion by the previous processors' total.
    if (me > 0) {
      const std::uint32_t offset = tmp_sum.read(cpu, me - 1);
      for (std::size_t b = b_lo; b < b_hi; ++b) {
        cpu.write(keyden, slot[b], cpu.read(keyden, slot[b]) + offset);
        cpu.work(2);
      }
    }
    barrier->arrive(cpu);

    // ---- Phase 6: atomically snapshot keyden into my local copy and
    // decrement it by my counts — one sub-page locked at a time, so the
    // processors pipeline through the array (paper §3.3.2). Chunks are runs
    // of buckets whose slots are contiguous within one sub-page: with the
    // identity mapping that is exactly the fixed 32-bucket stride, and with
    // padding it additionally splits at (sub-page-aligned) portion starts.
    for (std::size_t b0 = 0; b0 < nbuckets;) {
      const std::size_t page = slot[b0] / kIntsPerSubPage;
      std::size_t b1 = b0 + 1;
      while (b1 < nbuckets && slot[b1] == slot[b1 - 1] + 1 &&
             slot[b1] / kIntsPerSubPage == page) {
        ++b1;
      }
      cpu.get_subpage(keyden.addr(slot[b0]));
      for (std::size_t b = b0; b < b1; ++b) {
        const std::uint32_t snapshot = cpu.read(keyden, slot[b]);
        const std::uint32_t mine = cpu.read(keyden_t, my_base + b);
        cpu.write(keyden, slot[b], snapshot - mine);
        cpu.write(keyden_t, my_base + b, snapshot);
        cpu.work(4);
      }
      cpu.release_subpage(keyden.addr(slot[b0]));
      b0 = b1;
    }
    barrier->arrive(cpu);

    // ---- Phase 7: rank my keys from my private snapshot.
    for (std::size_t i = k_lo; i < k_hi; ++i) {
      const std::uint32_t k = cpu.read(keys, i);
      const std::uint32_t pos = cpu.read(keyden_t, my_base + k);
      cpu.write(keyden_t, my_base + k, pos - 1);
      cpu.write(rank, i, pos - 1);
      cpu.work(cfg.work_per_key);
    }
    barrier->arrive(cpu);

    const double dt = cpu.seconds() - t0;
    if (dt > t_max) t_max = dt;
  });

  out.seconds = t_max;
  out.serial_phase_seconds = t_serial;

  // ---- Host-side validation: ranks are a permutation that sorts the keys.
  std::vector<std::uint32_t> by_rank(n, 0);
  std::vector<bool> used(n, false);
  bool ok = true;
  for (std::size_t i = 0; i < n && ok; ++i) {
    const std::uint32_t r = rank.value(i);
    if (r >= n || used[r]) {
      ok = false;
    } else {
      used[r] = true;
      by_rank[r] = keys.value(i);
    }
  }
  for (std::size_t i = 1; i < n && ok; ++i) {
    if (by_rank[i - 1] > by_rank[i]) ok = false;
  }
  out.ranks_valid = ok;
  return out;
}

IsSplit::IsSplit(machine::Machine& m, const IsConfig& cfg)
    : m_(m),
      cfg_(cfg),
      n_(1ull << cfg.log2_keys),
      nbuckets_(1ull << cfg.log2_buckets),
      chunk_ints_(std::max<std::size_t>(
          nbuckets_, mem::kPageBytes / sizeof(std::uint32_t))),
      host_keys_(make_keys(cfg)),
      slot_(nbuckets_) {
  // Identical allocation sequence to run_is (same names, sizes, placement,
  // order) so a checkpoint captured on one IsSplit machine restores onto
  // another: the heap prefix rule (docs/CHECKPOINT.md) requires the
  // restoring machine to have re-issued the donor's allocations.
  const unsigned nproc = m_.nproc();
  constexpr std::size_t kIntsPerSubPage =
      mem::kSubPageBytes / sizeof(std::uint32_t);
  std::size_t keyden_ints = nbuckets_;
  if (cfg_.pad_buckets) {
    std::size_t next = 0;
    for (unsigned p = 0; p < nproc; ++p) {
      const std::size_t lo = nbuckets_ * p / nproc;
      const std::size_t hi = nbuckets_ * (p + 1) / nproc;
      for (std::size_t b = lo; b < hi; ++b) slot_[b] = next + (b - lo);
      next += (hi - lo + kIntsPerSubPage - 1) / kIntsPerSubPage *
              kIntsPerSubPage;
    }
    keyden_ints = std::max<std::size_t>(next, 1);
  } else {
    for (std::size_t b = 0; b < nbuckets_; ++b) slot_[b] = b;
  }
  keys_ = m_.alloc<std::uint32_t>("is.keys", n_);
  rank_ = m_.alloc<std::uint32_t>("is.rank", n_);
  keyden_ = m_.alloc<std::uint32_t>("is.keyden", keyden_ints);
  keyden_t_ = m_.alloc<std::uint32_t>(
      "is.keyden_t", static_cast<std::size_t>(nproc) * chunk_ints_,
      machine::Placement::blocked(chunk_ints_ * sizeof(std::uint32_t)));
  tmp_sum_ = sync::Padded<std::uint32_t>(m_, "is.tmp", nproc);
  warm_barrier_ = sync::make_barrier(m_, sync::BarrierKind::kSystem);
}

void IsSplit::run_warmup() {
  const unsigned nproc = m_.nproc();
  m_.run([&](machine::Cpu& cpu) {
    const unsigned me = cpu.id();
    const std::size_t k_lo = n_ * me / nproc;
    const std::size_t k_hi = n_ * (me + 1) / nproc;
    const std::size_t b_lo = nbuckets_ * me / nproc;
    const std::size_t b_hi = nbuckets_ * (me + 1) / nproc;
    const std::size_t my_base = static_cast<std::size_t>(me) * chunk_ints_;
    for (std::size_t i = k_lo; i < k_hi; ++i) {
      cpu.write(keys_, i, host_keys_[i]);
    }
    for (std::size_t b = 0; b < nbuckets_; ++b) {
      cpu.write(keyden_t_, my_base + b, 0);
    }
    for (std::size_t b = b_lo; b < b_hi; ++b) cpu.write(keyden_, slot_[b], 0);
    warm_barrier_->arrive(cpu);
  });
}

IsResult IsSplit::run_ranked() {
  const unsigned nproc = m_.nproc();
  // Fresh barrier for the ranking run, allocated after the checkpoint
  // boundary: the cold flow allocates it after run_warmup(), the fork flow
  // after restore(), so both see the same heap layout and both start the
  // phases with pristine barrier state.
  auto barrier = sync::make_barrier(m_, sync::BarrierKind::kSystem);

  IsResult out;
  double t_max = 0;
  double t_serial = 0;

  m_.run([&](machine::Cpu& cpu) {
    const unsigned me = cpu.id();
    const std::size_t k_lo = n_ * me / nproc;
    const std::size_t k_hi = n_ * (me + 1) / nproc;
    const std::size_t b_lo = nbuckets_ * me / nproc;
    const std::size_t b_hi = nbuckets_ * (me + 1) / nproc;
    const std::size_t my_base = static_cast<std::size_t>(me) * chunk_ints_;
    constexpr std::size_t kIntsPerSubPage =
        mem::kSubPageBytes / sizeof(std::uint32_t);
    const double t0 = cpu.seconds();

    // The seven ranking phases, byte-for-byte the run_is schedule (see
    // run_is for the phase commentary).
    for (std::size_t i = k_lo; i < k_hi; ++i) {
      const std::uint32_t k = cpu.read(keys_, i);
      cpu.write(keyden_t_, my_base + k,
                cpu.read(keyden_t_, my_base + k) + 1);
      cpu.work(cfg_.work_per_key);
    }
    barrier->arrive(cpu);

    if (cfg_.use_prefetch) {
      const unsigned depth = m_.config().prefetch_depth;
      unsigned issued = 0;
      for (unsigned off = 1; off < nproc; ++off) {
        const unsigned src = (me + off) % nproc;
        const mem::Sva a0 =
            keyden_t_.addr(static_cast<std::size_t>(src) * chunk_ints_ + b_lo);
        const mem::Sva a1 =
            keyden_t_.addr(static_cast<std::size_t>(src) * chunk_ints_ + b_hi);
        for (mem::Sva a = a0; a < a1; a += mem::kSubPageBytes) {
          cpu.prefetch(a);
          if (++issued % depth == 0) cpu.work(190);
        }
      }
    }
    for (std::size_t b = b_lo; b < b_hi; ++b) {
      std::uint32_t sum = 0;
      for (unsigned p = 0; p < nproc; ++p) {
        sum +=
            cpu.read(keyden_t_, static_cast<std::size_t>(p) * chunk_ints_ + b);
        cpu.work(2);
      }
      cpu.write(keyden_, slot_[b], sum);
    }
    barrier->arrive(cpu);

    std::uint32_t running = 0;
    for (std::size_t b = b_lo; b < b_hi; ++b) {
      running += cpu.read(keyden_, slot_[b]);
      cpu.write(keyden_, slot_[b], running);
      cpu.work(2);
    }
    tmp_sum_.write(cpu, me, running);
    barrier->arrive(cpu);

    if (me == 0) {
      const double s0 = cpu.seconds();
      std::uint32_t acc = 0;
      for (unsigned p = 0; p < nproc; ++p) {
        acc += tmp_sum_.read(cpu, p);
        tmp_sum_.write(cpu, p, acc);
        cpu.work(2);
      }
      t_serial += cpu.seconds() - s0;
    }
    barrier->arrive(cpu);

    if (me > 0) {
      const std::uint32_t offset = tmp_sum_.read(cpu, me - 1);
      for (std::size_t b = b_lo; b < b_hi; ++b) {
        cpu.write(keyden_, slot_[b], cpu.read(keyden_, slot_[b]) + offset);
        cpu.work(2);
      }
    }
    barrier->arrive(cpu);

    for (std::size_t b0 = 0; b0 < nbuckets_;) {
      const std::size_t page = slot_[b0] / kIntsPerSubPage;
      std::size_t b1 = b0 + 1;
      while (b1 < nbuckets_ && slot_[b1] == slot_[b1 - 1] + 1 &&
             slot_[b1] / kIntsPerSubPage == page) {
        ++b1;
      }
      cpu.get_subpage(keyden_.addr(slot_[b0]));
      for (std::size_t b = b0; b < b1; ++b) {
        const std::uint32_t snapshot = cpu.read(keyden_, slot_[b]);
        const std::uint32_t mine = cpu.read(keyden_t_, my_base + b);
        cpu.write(keyden_, slot_[b], snapshot - mine);
        cpu.write(keyden_t_, my_base + b, snapshot);
        cpu.work(4);
      }
      cpu.release_subpage(keyden_.addr(slot_[b0]));
      b0 = b1;
    }
    barrier->arrive(cpu);

    for (std::size_t i = k_lo; i < k_hi; ++i) {
      const std::uint32_t k = cpu.read(keys_, i);
      const std::uint32_t pos = cpu.read(keyden_t_, my_base + k);
      cpu.write(keyden_t_, my_base + k, pos - 1);
      cpu.write(rank_, i, pos - 1);
      cpu.work(cfg_.work_per_key);
    }
    barrier->arrive(cpu);

    const double dt = cpu.seconds() - t0;
    if (dt > t_max) t_max = dt;
  });

  out.seconds = t_max;
  out.serial_phase_seconds = t_serial;

  std::vector<std::uint32_t> by_rank(n_, 0);
  std::vector<bool> used(n_, false);
  bool ok = true;
  for (std::size_t i = 0; i < n_ && ok; ++i) {
    const std::uint32_t r = rank_.value(i);
    if (r >= n_ || used[r]) {
      ok = false;
    } else {
      used[r] = true;
      by_rank[r] = keys_.value(i);
    }
  }
  for (std::size_t i = 1; i < n_ && ok; ++i) {
    if (by_rank[i - 1] > by_rank[i]) ok = false;
  }
  out.ranks_valid = ok;
  return out;
}

}  // namespace ksr::nas
