file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_cg_format.dir/bench_ablation_cg_format.cpp.o"
  "CMakeFiles/bench_ablation_cg_format.dir/bench_ablation_cg_format.cpp.o.d"
  "bench_ablation_cg_format"
  "bench_ablation_cg_format.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_cg_format.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
