// Ring-of-rings scale-out (sharded coherence directory, DESIGN.md §7):
//  - CellMask: the >64-cell holder/placeholder set, whose inline word 0 must
//    behave exactly like the seed's single uint64_t;
//  - N-leaf topology mapping at 128 cells and the 1088-cell ceiling;
//  - mode A (single-domain) multi-ring machines stay byte-identical across
//    --sim-threads, trace CSV included;
//  - mode B (multi-domain) coherent machines actually partition (no
//    single-domain fallback), produce sim_threads-independent results, and
//    keep migratory / atomic / poststore semantics across a domain boundary;
//  - full I1-I6 audits pass after multi-domain and 1088-cell runs.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "ksr/cache/cell_mask.hpp"
#include "ksr/check/checker.hpp"
#include "ksr/machine/ksr_machine.hpp"
#include "ksr/nas/is.hpp"
#include "ksr/obs/topo.hpp"
#include "ksr/obs/tracer.hpp"

namespace ksr {
namespace {

using cache::CellMask;

// ----------------------------------------------------------------- CellMask

TEST(CellMask, InlineWordMatchesSeedSemantics) {
  CellMask m;
  EXPECT_TRUE(m.none());
  EXPECT_EQ(m.first_set(), -1);
  m.set(0);
  m.set(5);
  m.set(63);
  EXPECT_TRUE(m.test(5));
  EXPECT_FALSE(m.test(4));
  EXPECT_EQ(m.word0(), (std::uint64_t{1} << 0) | (std::uint64_t{1} << 5) |
                           (std::uint64_t{1} << 63));
  EXPECT_EQ(m.count(), 3u);
  EXPECT_EQ(m.first_set(), 0);
  m.clear(0);
  EXPECT_EQ(m.first_set(), 5);
  // Cells past 63 report absent without ever allocating the overflow words.
  EXPECT_FALSE(m.test(64));
  EXPECT_FALSE(m.test(1087));
}

TEST(CellMask, HighCellsAndAscendingIteration) {
  CellMask m;
  m.set(1087);
  m.set(64);
  m.set(3);
  m.set(500);
  EXPECT_EQ(m.count(), 4u);
  EXPECT_EQ(m.first_set(), 3);
  std::vector<unsigned> order;
  m.for_each([&](unsigned c) { order.push_back(c); });
  EXPECT_EQ(order, (std::vector<unsigned>{3, 64, 500, 1087}));
  order.clear();
  m.for_each_except(500, [&](unsigned c) { order.push_back(c); });
  EXPECT_EQ(order, (std::vector<unsigned>{3, 64, 1087}));
  EXPECT_EQ(m.to_string(), "{3,64,500,1087}");
}

TEST(CellMask, SoleHolderTestsAcrossWords) {
  CellMask m;
  m.assign_single(70);
  EXPECT_TRUE(m.none_except(70));
  EXPECT_FALSE(m.none_except(69));
  m.set(2);
  EXPECT_FALSE(m.none_except(70));
  CellMask lo;
  lo.set(2);
  EXPECT_TRUE(m.intersects(lo));
  EXPECT_FALSE(m.intersects_except(lo, 2));
}

// Regression: the defaulted move ops copied the inline word 0 but stole the
// overflow array, so a moved-from mask with only low cells still *read* as
// its old low set while a mask with high cells became "low cells only" in
// the destination's source. Moves must leave the source empty.
TEST(CellMask, MoveLeavesSourceEmpty) {
  CellMask m;
  m.set(3);
  m.set(63);
  m.set(64);
  m.set(1087);
  CellMask moved(std::move(m));
  EXPECT_EQ(moved.to_string(), "{3,63,64,1087}");
  EXPECT_TRUE(m.none());  // NOLINT(bugprone-use-after-move): that's the test
  EXPECT_EQ(m.count(), 0u);
  EXPECT_EQ(m.first_set(), -1);

  CellMask assigned;
  assigned.set(9);  // pre-existing content must be fully replaced
  assigned = std::move(moved);
  EXPECT_EQ(assigned.to_string(), "{3,63,64,1087}");
  EXPECT_TRUE(moved.none());  // NOLINT(bugprone-use-after-move)

  // Self-move must not clear the mask.
  CellMask& alias = assigned;
  assigned = std::move(alias);
  EXPECT_EQ(assigned.to_string(), "{3,63,64,1087}");

  // A low-cells-only mask (no overflow allocation) moves the same way.
  CellMask lo;
  lo.set(0);
  lo.set(63);
  CellMask lo2(std::move(lo));
  EXPECT_EQ(lo2.count(), 2u);
  EXPECT_TRUE(lo.none());  // NOLINT(bugprone-use-after-move)
}

// The exact word-boundary extents: 63 is the last inline bit, 64 the first
// overflow bit, 1087 (kMaxCells - 1) the last legal cell.
TEST(CellMask, WordBoundaryExtents) {
  CellMask m;
  m.set(63);
  EXPECT_TRUE(m.test(63));
  EXPECT_FALSE(m.test(64));
  EXPECT_EQ(m.word0(), std::uint64_t{1} << 63);
  m.set(64);
  EXPECT_TRUE(m.test(64));
  EXPECT_EQ(m.count(), 2u);
  EXPECT_TRUE(m.none_except(63) == false && m.none_except(64) == false);
  m.clear(63);
  EXPECT_EQ(m.first_set(), 64);
  m.clear(64);
  EXPECT_TRUE(m.none());
  m.set(CellMask::kMaxCells - 1);
  EXPECT_EQ(m.first_set(), static_cast<int>(CellMask::kMaxCells - 1));
  EXPECT_TRUE(m.none_except(CellMask::kMaxCells - 1));
}

TEST(CellMask, SetAlgebra) {
  CellMask a;
  a.set(1);
  a.set(100);
  a.set(200);
  CellMask b;
  b.set(100);
  b.set(300);
  CellMask diff = a;
  diff.and_not(b);
  EXPECT_EQ(diff.to_string(), "{1,200}");
  CellMask both = a;
  both.intersect(b);
  EXPECT_EQ(both.to_string(), "{100}");
  a.retain_only(200);
  EXPECT_EQ(a.to_string(), "{200}");
  a.retain_only(7);  // not present: empties the mask
  EXPECT_TRUE(a.none());
}

TEST(CellMask, CopyAndEquality) {
  CellMask a;
  a.set(10);
  a.set(900);
  CellMask b = a;  // deep-copies the overflow words
  EXPECT_EQ(a, b);
  b.clear(900);
  EXPECT_NE(a, b);
  b = a;
  EXPECT_EQ(a, b);
  // Assigning from an inline-only mask clears stale overflow state.
  CellMask c;
  c.set(3);
  b = c;
  EXPECT_FALSE(b.test(900));
  EXPECT_EQ(b, c);
}

// ----------------------------------------------------------------- topology

TEST(Topology, LeafMappingAt128Cells) {
  machine::KsrMachine m(machine::MachineConfig::ksr1(128));
  EXPECT_EQ(m.leaf_count(), 4u);
  EXPECT_EQ(m.leaf_of(0), 0u);
  EXPECT_EQ(m.leaf_of(31), 0u);
  EXPECT_EQ(m.leaf_of(32), 1u);
  EXPECT_EQ(m.leaf_of(127), 3u);
  EXPECT_NE(m.level1_ring(), nullptr);
  EXPECT_EQ(m.domains(), 1u);
}

// --------------------------------------------- mode A: single-domain N-ring

struct Fp {
  std::uint64_t events = 0;
  sim::Time end_time = 0;
  double seconds = 0;
  std::string trace_csv;
};

Fp mode_a_128(unsigned sim_threads) {
  machine::KsrMachine m(
      machine::MachineConfig::ksr1(128).with_sim_threads(sim_threads));
  obs::Tracer tracer;
  m.attach_tracer(&tracer);
  nas::IsConfig cfg;
  cfg.log2_keys = 10;
  cfg.log2_buckets = 7;
  const nas::IsResult r = run_is(m, cfg);
  EXPECT_TRUE(r.ranks_valid);
  std::ostringstream csv;
  tracer.write_csv(csv);
  return {m.engine().events_dispatched(), m.engine().now(), r.seconds,
          csv.str()};
}

TEST(ScaleOut, ModeAMultiRingByteIdenticalAcrossSimThreads) {
  const Fp a = mode_a_128(1);
  ASSERT_GT(a.events, 0u);
  ASSERT_FALSE(a.trace_csv.empty());
  for (unsigned t : {2u, 4u}) {
    const Fp b = mode_a_128(t);
    EXPECT_EQ(a.events, b.events) << "sim_threads=" << t;
    EXPECT_EQ(a.end_time, b.end_time) << "sim_threads=" << t;
    EXPECT_EQ(a.seconds, b.seconds) << "sim_threads=" << t;
    EXPECT_EQ(a.trace_csv, b.trace_csv) << "sim_threads=" << t;
  }
}

// ------------------------------------------------ mode B: real multi-domain

Fp mode_b_64(unsigned sim_threads) {
  machine::KsrMachine m(machine::MachineConfig::ksr1(64)
                            .with_cells_per_domain(32)
                            .with_sim_threads(sim_threads));
  // The acceptance bar for the scale-out PR: a >=2-leaf coherent machine
  // must actually partition, not fall back to one domain.
  EXPECT_EQ(m.domains(), 2u);
  nas::IsConfig cfg;
  cfg.log2_keys = 10;
  cfg.log2_buckets = 7;
  const nas::IsResult r = run_is(m, cfg);
  EXPECT_TRUE(r.ranks_valid);
  return {m.engine().events_dispatched(), m.engine().now(), r.seconds, ""};
}

TEST(ScaleOut, MultiDomainCoherentRunIsSimThreadsInvariant) {
  const Fp a = mode_b_64(1);
  ASSERT_GT(a.events, 0u);
  for (unsigned t : {2u, 4u}) {
    const Fp b = mode_b_64(t);
    EXPECT_EQ(a.events, b.events) << "sim_threads=" << t;
    EXPECT_EQ(a.end_time, b.end_time) << "sim_threads=" << t;
    EXPECT_EQ(a.seconds, b.seconds) << "sim_threads=" << t;
  }
}

TEST(ScaleOut, CrossDomainMigratoryWrites) {
  machine::KsrMachine m(machine::MachineConfig::ksr1(64)
                            .with_cells_per_domain(32)
                            .with_sim_threads(4));
  ASSERT_EQ(m.domains(), 2u);
  auto arr = m.alloc<int>("a", 16);
  auto phase = m.alloc<int>("phase", 64);  // separate sub-page
  int seen_by_32 = 0;
  int seen_by_0 = 0;
  m.run([&](machine::Cpu& cpu) {
    // Cells 0 (leaf 0, domain 0) and 32 (leaf 1, domain 1) bounce a line.
    if (cpu.id() == 0) {
      cpu.write(arr, 0, 7);
      cpu.write(phase, 0, 1);
      while (cpu.read(phase, 0) < 2) cpu.work(10);
      seen_by_0 = cpu.read(arr, 0);
    } else if (cpu.id() == 32) {
      while (cpu.read(phase, 0) < 1) cpu.work(10);
      seen_by_32 = cpu.read(arr, 0);
      cpu.write(arr, 0, 9);  // invalidates cell 0's copy cross-domain
      cpu.write(phase, 0, 2);
    }
  });
  EXPECT_EQ(seen_by_32, 7);
  EXPECT_EQ(seen_by_0, 9);
  EXPECT_EQ(arr.value(0), 9);
}

TEST(ScaleOut, CrossDomainAtomicSerializes) {
  machine::KsrMachine m(machine::MachineConfig::ksr1(64)
                            .with_cells_per_domain(32)
                            .with_sim_threads(4));
  ASSERT_EQ(m.domains(), 2u);
  auto lock = m.alloc<int>("lock", 1);
  auto data = m.alloc<int>("data", 64);  // keep data off the lock sub-page
  m.run([&](machine::Cpu& cpu) {
    // Four contenders, two per domain.
    if (cpu.id() != 0 && cpu.id() != 1 && cpu.id() != 32 && cpu.id() != 33) {
      return;
    }
    for (int i = 0; i < 10; ++i) {
      cpu.get_subpage(lock.addr(0));
      const int v = cpu.read(data, 0);
      cpu.work(100);
      cpu.write(data, 0, v + 1);
      cpu.release_subpage(lock.addr(0));
      cpu.work(200);
    }
  });
  EXPECT_EQ(data.value(0), 40);  // no lost updates across the boundary
}

TEST(ScaleOut, CrossDomainPoststoreRefreshesPlaceholders) {
  machine::KsrMachine m(machine::MachineConfig::ksr1(64)
                            .with_cells_per_domain(32)
                            .with_sim_threads(4));
  ASSERT_EQ(m.domains(), 2u);
  auto arr = m.alloc<int>("a", 16);
  auto phase = m.alloc<int>("phase", 64);
  int seen = 0;
  m.run([&](machine::Cpu& cpu) {
    if (cpu.id() == 0) {
      while (cpu.read(phase, 0) < 1) cpu.work(10);  // reader has a copy
      cpu.poststore(arr, 0, 42);  // push across the domain boundary
      cpu.work(200000);           // let the refresh land
      cpu.write(phase, 0, 2);
    } else if (cpu.id() == 32) {
      (void)cpu.read(arr, 0);  // placeholder-to-be in domain 1
      cpu.write(phase, 0, 1);
      while (cpu.read(phase, 0) < 2) cpu.work(10);
      seen = cpu.read(arr, 0);
    }
  });
  EXPECT_EQ(seen, 42);
  EXPECT_GE(m.cell_pmon(0).poststores_issued, 1u);
}

TEST(ScaleOut, MultiDomainAuditPasses) {
  machine::KsrMachine m(machine::MachineConfig::ksr1(64)
                            .with_cells_per_domain(32)
                            .with_sim_threads(4));
  ASSERT_EQ(m.domains(), 2u);
  check::InvariantChecker checker(m);
  m.attach_checker(&checker);
  nas::IsConfig cfg;
  cfg.log2_keys = 10;
  cfg.log2_buckets = 7;
  const nas::IsResult r = run_is(m, cfg);
  EXPECT_TRUE(r.ranks_valid);
  // Per-transition hooks are off mid-run in mode B (cross-thread); the
  // quiescent full audit still checks every directory entry against I1-I6.
  EXPECT_NO_THROW(checker.audit_all());
  m.attach_checker(nullptr);
}

// ------------------- mode B observer lane + topology instrumentation

struct TracedFp {
  Fp fp;
  std::string topo_report;
};

// 128 cells, 4 leaf rings, 4 domains: the mode-B observer lane merges one
// tracer shard per extra domain, and topo_snapshot folds ring / shard /
// boundary-channel / traffic counters from all of them.
TracedFp mode_b_128_traced(unsigned sim_threads) {
  machine::KsrMachine m(machine::MachineConfig::ksr1(128)
                            .with_cells_per_domain(32)
                            .with_sim_threads(sim_threads));
  EXPECT_EQ(m.domains(), 4u);
  obs::Tracer tracer;
  m.attach_tracer(&tracer);
  nas::IsConfig cfg;
  cfg.log2_keys = 10;
  cfg.log2_buckets = 7;
  const nas::IsResult r = run_is(m, cfg);
  EXPECT_TRUE(r.ranks_valid);
  std::ostringstream csv;
  tracer.write_csv(csv);
  obs::topo::Snapshot s;
  m.topo_snapshot(s);
  std::ostringstream rep;
  obs::topo::write_report(rep, s);
  return {{m.engine().events_dispatched(), m.engine().now(), r.seconds,
           csv.str()},
          rep.str()};
}

TEST(ScaleOut, ModeBTracedRunByteIdenticalAcrossSimThreads) {
  const TracedFp a = mode_b_128_traced(1);
  ASSERT_GT(a.fp.events, 0u);
  ASSERT_FALSE(a.fp.trace_csv.empty());
  // Every instrumented layer reports: rings, directory shards, boundary
  // channels (present because domains > 1) and the traffic matrix.
  EXPECT_NE(a.topo_report.find("## topology"), std::string::npos);
  EXPECT_NE(a.topo_report.find("## rings"), std::string::npos);
  EXPECT_NE(a.topo_report.find("## directory shards"), std::string::npos);
  EXPECT_NE(a.topo_report.find("## boundary channels"), std::string::npos);
  EXPECT_NE(a.topo_report.find("## cross-ring traffic"), std::string::npos);
  for (unsigned t : {2u, 4u}) {
    const TracedFp b = mode_b_128_traced(t);
    EXPECT_EQ(a.fp.events, b.fp.events) << "sim_threads=" << t;
    EXPECT_EQ(a.fp.end_time, b.fp.end_time) << "sim_threads=" << t;
    EXPECT_EQ(a.fp.seconds, b.fp.seconds) << "sim_threads=" << t;
    EXPECT_EQ(a.fp.trace_csv, b.fp.trace_csv) << "sim_threads=" << t;
    EXPECT_EQ(a.topo_report, b.topo_report) << "sim_threads=" << t;
  }
}

// The observer lane is non-perturbing by construction: a traced run must
// produce the same fingerprint as the identical untraced run.
TEST(ScaleOut, ModeBTracingDoesNotPerturbFingerprint) {
  machine::KsrMachine m(machine::MachineConfig::ksr1(128)
                            .with_cells_per_domain(32)
                            .with_sim_threads(4));
  ASSERT_EQ(m.domains(), 4u);
  nas::IsConfig cfg;
  cfg.log2_keys = 10;
  cfg.log2_buckets = 7;
  const nas::IsResult r = run_is(m, cfg);
  ASSERT_TRUE(r.ranks_valid);
  const TracedFp traced = mode_b_128_traced(4);
  EXPECT_EQ(m.engine().events_dispatched(), traced.fp.events);
  EXPECT_EQ(m.engine().now(), traced.fp.end_time);
  EXPECT_EQ(r.seconds, traced.fp.seconds);
}

// ---------------------------------------------------------- 1088-cell smoke

void touch_all_cells(machine::KsrMachine& m, unsigned nproc) {
  constexpr std::size_t kStride = 64;  // ints; two sub-pages per cell region
  auto arr = m.alloc<int>("a", nproc * kStride);
  auto shared = m.alloc<int>("s", 16);
  m.run([&](machine::Cpu& cpu) {
    const std::size_t base = cpu.id() * kStride;
    for (std::size_t i = 0; i < 8; ++i) {
      cpu.write(arr, base + i, static_cast<int>(cpu.id() + i));
    }
    (void)cpu.read(shared, 0);  // every cell shares one hot line
    const std::size_t next = ((cpu.id() + 1) % nproc) * kStride;
    (void)cpu.read(arr, next);  // and reads its neighbour's region
  });
  for (unsigned c = 0; c < nproc; ++c) {
    EXPECT_EQ(arr.value(c * kStride), static_cast<int>(c));
  }
}

TEST(ScaleOut, Audit1088CellsSingleDomain) {
  machine::KsrMachine m(machine::MachineConfig::ksr1(1088));
  EXPECT_EQ(m.leaf_count(), 34u);
  check::InvariantChecker checker(m);
  m.attach_checker(&checker);
  touch_all_cells(m, 1088);
  EXPECT_NO_THROW(checker.audit_all());
  m.attach_checker(nullptr);
}

TEST(ScaleOut, Audit1088CellsMultiDomain) {
  machine::KsrMachine m(machine::MachineConfig::ksr1(1088)
                            .with_cells_per_domain(256)
                            .with_sim_threads(4));
  EXPECT_EQ(m.domains(), 5u);  // ceil(34 leaves / 8 per domain)
  check::InvariantChecker checker(m);
  m.attach_checker(&checker);
  touch_all_cells(m, 1088);
  EXPECT_NO_THROW(checker.audit_all());
  m.attach_checker(nullptr);
}

}  // namespace
}  // namespace ksr
