#include "ksr/obs/topo.hpp"

#include <algorithm>
#include <ostream>

namespace ksr::obs::topo {

namespace {

// All numbers in the report are u64; ratios are rendered as integer parts
// per million so the bytes cannot depend on host float formatting.
[[nodiscard]] std::uint64_t ppm(std::uint64_t num, std::uint64_t den) {
  if (den == 0) return 0;
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(num) * 1'000'000u) / den);
}

void ppm_cell(std::ostream& os, std::uint64_t v) {
  // "12.3456%" rendered from ppm without floats: 123456 ppm -> 12.3456.
  os << v / 10'000 << '.';
  const std::uint64_t frac = v % 10'000;
  os << frac / 1000 << (frac / 100) % 10 << (frac / 10) % 10 << frac % 10
     << '%';
}

}  // namespace

std::uint64_t util_ppm(const RingUse& r) noexcept {
  const unsigned __int128 den =
      static_cast<unsigned __int128>(r.slots) * r.elapsed_ns;
  if (den == 0) return 0;
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(r.busy_slot_ns) * 1'000'000u) / den);
}

std::uint64_t peak_util_ppm(const Snapshot& s, unsigned level) {
  std::uint64_t peak = 0;
  for (const RingUse& r : s.rings) {
    if (r.level == level) peak = std::max(peak, util_ppm(r));
  }
  return peak;
}

const ShardUse* hottest_shard(const Snapshot& s) {
  const ShardUse* best = nullptr;
  for (const ShardUse& sh : s.shards) {
    if (best == nullptr || sh.requests > best->requests) best = &sh;
  }
  return best;
}

void write_report(std::ostream& os, const Snapshot& s) {
  os << "## topology\n"
     << "leaves=" << s.leaves << " cells_per_leaf=" << s.cells_per_leaf
     << " domains=" << s.domains << " quantum_ns=" << s.quantum_ns << "\n";
  if (s.domains > 1) {
    os << "quanta=" << s.quanta << " boundary_packets=" << s.boundary_packets
       << "\n";
  }

  os << "\n## rings (utilization = busy-slot-ns / slots*elapsed)\n";
  for (const RingUse& r : s.rings) {
    os << r.name << " level=" << r.level << " slots=" << r.slots
       << " packets=" << r.packets << " retries=" << r.retries
       << " inject_wait_ns=" << r.inject_wait_ns << " util=";
    ppm_cell(os, util_ppm(r));
    os << "\n";
  }
  for (unsigned level : {0u, 1u}) {
    bool any = false;
    for (const RingUse& r : s.rings) any = any || r.level == level;
    if (any) {
      os << "peak_util level=" << level << " ";
      ppm_cell(os, peak_util_ppm(s, level));
      os << "\n";
    }
  }

  if (!s.shards.empty()) {
    os << "\n## directory shards (by home leaf)\n";
    for (const ShardUse& sh : s.shards) {
      os << "shard " << sh.home_leaf << " requests=" << sh.requests
         << " grants=" << sh.grants << " nacks=" << sh.nacks;
      if (s.domains > 1) os << " busy_ns=" << sh.busy_ns;
      os << " nack_rate=";
      ppm_cell(os, ppm(sh.nacks, sh.requests));
      os << "\n";
      for (const auto& [sp, n] : sh.hot) {
        os << "  hot subpage=" << sp << " requests=" << n << "\n";
      }
    }
    if (const ShardUse* hot = hottest_shard(s); hot != nullptr) {
      os << "hottest_shard leaf=" << hot->home_leaf
         << " requests=" << hot->requests << "\n";
    }
  }

  if (!s.channels.empty()) {
    os << "\n## boundary channels (slack in quanta)\n";
    for (const ChannelUse& c : s.channels) {
      if (c.packets == 0) continue;
      os << "channel " << c.src << "->" << c.dst << " packets=" << c.packets
         << " max_per_quantum=" << c.max_per_quantum << " slack_hist=";
      for (std::size_t b = 0; b < c.slack_hist.size(); ++b) {
        os << (b ? "," : "") << c.slack_hist[b];
      }
      os << "\n";
    }
  }

  if (s.leaves > 1 && !s.traffic.empty()) {
    os << "\n## cross-ring traffic (leaf->leaf packets)\n";
    std::uint64_t total = 0;
    std::uint64_t diag = 0;
    std::uint64_t best = 0;
    unsigned best_src = 0;
    unsigned best_dst = 0;
    for (unsigned i = 0; i < s.leaves; ++i) {
      for (unsigned j = 0; j < s.leaves; ++j) {
        const std::uint64_t v = s.traffic_at(i, j);
        total += v;
        if (i == j) diag += v;
        if (i != j && v > best) {
          best = v;
          best_src = i;
          best_dst = j;
        }
      }
    }
    os << "total=" << total << " same_leaf=" << diag
       << " cross_leaf=" << total - diag << " cross_ratio=";
    ppm_cell(os, ppm(total - diag, total));
    os << "\n";
    if (best != 0) {
      os << "hottest_pair " << best_src << "->" << best_dst
         << " packets=" << best << "\n";
    }
  }
}

void write_matrix_csv_header(std::ostream& os, bool with_job_column) {
  if (with_job_column) os << "job,";
  os << "src_leaf,dst_leaf,packets\n";
}

void write_matrix_csv(std::ostream& os, const Snapshot& s,
                      const std::string& job_label) {
  for (unsigned i = 0; i < s.leaves; ++i) {
    for (unsigned j = 0; j < s.leaves; ++j) {
      const std::uint64_t v = s.traffic_at(i, j);
      if (v == 0) continue;
      if (!job_label.empty()) os << job_label << ',';
      os << i << ',' << j << ',' << v << '\n';
    }
  }
}

}  // namespace ksr::obs::topo
