#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "ksr/machine/machine.hpp"

// The nine barrier implementations of Fig. 4 / Fig. 5 (paper §3.2.2):
//
//   counter        — naive central counter; every arrival serializes on one
//                    hot sub-page and every spinner re-fetches it.
//   tree           — dynamic binary combining tree (fetch&decrement per pair
//                    node), tree-based wake-up.
//   tree(M)        — same arrival, global wake-up flag set by the last
//                    arriver (with poststore); snarfing releases everybody.
//   dissemination  — log2(P) rounds of P messages (Hensgen/Finkel/Manber).
//   tournament     — statically paired binary tree; losers notify winners,
//                    wake-up walks the binary tree back down.
//   tournament(M)  — tournament arrival, global wake-up flag.
//   MCS            — 4-ary arrival tree with the children's flags PACKED
//                    into one 32-bit word (intentional false sharing, as in
//                    the original algorithm), binary wake-up tree.
//   MCS(M)         — MCS arrival, global wake-up flag.
//   system         — the vendor pthread-style barrier (modelled as the
//                    dynamic tree with global flag plus library overhead,
//                    which is how it measures on the real machine).
//
// All barriers are reusable (epoch counters, no re-initialisation between
// episodes) and work on any Machine.
namespace ksr::sync {

enum class BarrierKind {
  kCounter,
  kTree,
  kTreeM,
  kDissemination,
  kTournament,
  kTournamentM,
  kMcs,
  kMcsM,
  kSystem,
};

[[nodiscard]] constexpr std::string_view to_string(BarrierKind k) noexcept {
  switch (k) {
    case BarrierKind::kCounter: return "counter";
    case BarrierKind::kTree: return "tree";
    case BarrierKind::kTreeM: return "tree(M)";
    case BarrierKind::kDissemination: return "dissemination";
    case BarrierKind::kTournament: return "tournament";
    case BarrierKind::kTournamentM: return "tournament(M)";
    case BarrierKind::kMcs: return "MCS";
    case BarrierKind::kMcsM: return "MCS(M)";
    case BarrierKind::kSystem: return "system";
  }
  return "?";
}

/// All nine kinds, in the order the paper's figures list them.
[[nodiscard]] std::vector<BarrierKind> all_barrier_kinds();

class Barrier {
 public:
  virtual ~Barrier() = default;
  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  /// Block until every cell of the machine has arrived. When a tracer is
  /// attached to the cpu's machine, the episode is bracketed with
  /// sync/barrier-arrive + barrier-depart events (subject = this cpu's
  /// episode number, detail of the depart = episode duration in ns); with no
  /// tracer attached this is one null test around do_arrive().
  void arrive(machine::Cpu& cpu) {
    obs::Tracer* tr = cpu.machine().tracer_for_cell(cpu.id());
    if (tr == nullptr) {
      do_arrive(cpu);
      return;
    }
    const std::uint32_t episode = ++episode_[cpu.id()];
    const sim::Time t0 = cpu.now();
    tr->log(t0, obs::kCatSync, obs::kEvBarrierArrive, episode, cpu.id());
    do_arrive(cpu);
    tr->log(cpu.now(), obs::kCatSync, obs::kEvBarrierDepart, episode, cpu.id(),
            static_cast<std::int64_t>(cpu.now() - t0));
  }

  [[nodiscard]] virtual std::string_view name() const = 0;

 protected:
  explicit Barrier(unsigned nproc) : episode_(nproc, 0) {}

  /// The barrier algorithm itself (timestamps come from the cpu's local
  /// clock, so the logged episode bounds are exactly what the paper times).
  virtual void do_arrive(machine::Cpu& cpu) = 0;

 private:
  std::vector<std::uint32_t> episode_;  // per-cpu trace episode counters
};

/// Build a barrier of `kind` for all nproc cells of `m`. `use_poststore`
/// lets experiments ablate the poststore assist on wake-up flags.
[[nodiscard]] std::unique_ptr<Barrier> make_barrier(machine::Machine& m,
                                                    BarrierKind kind,
                                                    bool use_poststore = true);

}  // namespace ksr::sync
