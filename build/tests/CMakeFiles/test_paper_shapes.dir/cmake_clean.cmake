file(REMOVE_RECURSE
  "CMakeFiles/test_paper_shapes.dir/test_paper_shapes.cpp.o"
  "CMakeFiles/test_paper_shapes.dir/test_paper_shapes.cpp.o.d"
  "test_paper_shapes"
  "test_paper_shapes.pdb"
  "test_paper_shapes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_paper_shapes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
