#include "ksr/sim/fiber_context.hpp"

#if KSR_HAVE_FAST_FIBERS

#include <cstdint>

// The switch primitive itself, as toplevel assembly. Only callee-saved state
// is transferred; see fiber_context.hpp for the exact contract. The boot
// thunk starts a brand-new fiber: make_fiber_context() seeds two callee-saved
// register slots on the fresh stack (the entry function and its argument), so
// the very first swap "returns" into the thunk, which forwards the argument
// per the C calling convention.

#if defined(__x86_64__)

// System V AMD64: rbp, rbx, r12-r15 are callee-saved. rdi = save_sp,
// rsi = restore_sp. The suspended-context record on the stack is, from the
// saved stack pointer upward: r15 r14 r13 r12 rbx rbp <return address>.
asm(R"(
    .text
    .align 16
    .globl ksr_ctx_swap
    .type ksr_ctx_swap, @function
ksr_ctx_swap:
    pushq %rbp
    pushq %rbx
    pushq %r12
    pushq %r13
    pushq %r14
    pushq %r15
    movq %rsp, (%rdi)
    movq %rsi, %rsp
    popq %r15
    popq %r14
    popq %r13
    popq %r12
    popq %rbx
    popq %rbp
    ret
    .size ksr_ctx_swap, .-ksr_ctx_swap

    .align 16
    .globl ksr_ctx_boot
    .type ksr_ctx_boot, @function
ksr_ctx_boot:
    movq %r12, %rdi
    callq *%rbx
    ud2
    .size ksr_ctx_boot, .-ksr_ctx_boot
)");

extern "C" void ksr_ctx_boot();  // asm thunk above, never called directly

namespace ksr::sim::detail {

void* make_fiber_context(void* stack_base, std::size_t stack_bytes,
                         void (*entry)(void*), void* arg) noexcept {
  // 16-byte-aligned top; the boot thunk's address sits where ksr_ctx_swap's
  // `ret` will find it, so rsp ends up 16-aligned when the thunk starts and
  // 8-mod-16 inside `entry` — exactly the ABI's expectation after a call.
  auto top = (reinterpret_cast<std::uintptr_t>(stack_base) + stack_bytes) &
             ~std::uintptr_t{15};
  auto* sp = reinterpret_cast<void**>(top);
  *--sp = reinterpret_cast<void*>(&ksr_ctx_boot);  // ret target
  *--sp = nullptr;                                 // rbp
  *--sp = reinterpret_cast<void*>(entry);          // rbx -> callq *%rbx
  *--sp = arg;                                     // r12 -> first argument
  *--sp = nullptr;                                 // r13
  *--sp = nullptr;                                 // r14
  *--sp = nullptr;                                 // r15
  return sp;
}

}  // namespace ksr::sim::detail

#elif defined(__aarch64__)

// AAPCS64: x19-x28, x29 (fp), x30 (lr) and d8-d15 are callee-saved; sp must
// stay 16-aligned. The record is a 160-byte frame; `ret` branches to the
// restored x30.
asm(R"(
    .text
    .align 4
    .globl ksr_ctx_swap
    .type ksr_ctx_swap, %function
ksr_ctx_swap:
    sub  sp, sp, #160
    stp  x19, x20, [sp, #0]
    stp  x21, x22, [sp, #16]
    stp  x23, x24, [sp, #32]
    stp  x25, x26, [sp, #48]
    stp  x27, x28, [sp, #64]
    stp  x29, x30, [sp, #80]
    stp  d8,  d9,  [sp, #96]
    stp  d10, d11, [sp, #112]
    stp  d12, d13, [sp, #128]
    stp  d14, d15, [sp, #144]
    mov  x2, sp
    str  x2, [x0]
    mov  sp, x1
    ldp  x19, x20, [sp, #0]
    ldp  x21, x22, [sp, #16]
    ldp  x23, x24, [sp, #32]
    ldp  x25, x26, [sp, #48]
    ldp  x27, x28, [sp, #64]
    ldp  x29, x30, [sp, #80]
    ldp  d8,  d9,  [sp, #96]
    ldp  d10, d11, [sp, #112]
    ldp  d12, d13, [sp, #128]
    ldp  d14, d15, [sp, #144]
    add  sp, sp, #160
    ret
    .size ksr_ctx_swap, .-ksr_ctx_swap

    .align 4
    .globl ksr_ctx_boot
    .type ksr_ctx_boot, %function
ksr_ctx_boot:
    mov  x0, x19
    blr  x20
    brk  #0
    .size ksr_ctx_boot, .-ksr_ctx_boot
)");

extern "C" void ksr_ctx_boot();  // asm thunk above, never called directly

namespace ksr::sim::detail {

void* make_fiber_context(void* stack_base, std::size_t stack_bytes,
                         void (*entry)(void*), void* arg) noexcept {
  auto top = (reinterpret_cast<std::uintptr_t>(stack_base) + stack_bytes) &
             ~std::uintptr_t{15};
  auto* frame = reinterpret_cast<void**>(top - 160);
  for (int i = 0; i < 20; ++i) frame[i] = nullptr;
  frame[0] = arg;                                    // x19 -> first argument
  frame[1] = reinterpret_cast<void*>(entry);         // x20 -> blr x20
  frame[11] = reinterpret_cast<void*>(&ksr_ctx_boot);  // x30 -> ret target
  return frame;
}

}  // namespace ksr::sim::detail

#endif  // architecture

#endif  // KSR_HAVE_FAST_FIBERS
