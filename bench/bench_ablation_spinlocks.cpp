// Extension study: the classic spin-lock alternatives (Anderson [1],
// Mellor-Crummey/Scott [13]) replayed on the simulated KSR-1 ring and on
// the Symmetry bus — the experiment those papers ran on their machines,
// brought to the machine this paper studies.
#include "bench_common.hpp"
#include "ksr/machine/bus_machine.hpp"
#include "ksr/machine/ksr_machine.hpp"
#include "ksr/sync/spinlocks.hpp"

namespace {

using namespace ksr;         // NOLINT
using namespace ksr::bench;  // NOLINT

template <typename MachineT>
double time_lock(obs::Session& session, const std::string& label,
                 const machine::MachineConfig& cfg, sync::SpinLockKind kind,
                 int ops) {
  MachineT m(cfg);
  ScopedObs obs(session, m, label);
  auto lock = sync::make_spinlock(m, kind);
  double t = 0;
  m.run([&](machine::Cpu& cpu) {
    for (int i = 0; i < ops; ++i) {
      lock->acquire(cpu);
      cpu.work(300);  // short critical section
      lock->release(cpu);
      cpu.work(600 + cpu.rng().below(600));
    }
    if (cpu.seconds() > t) t = cpu.seconds();
  });
  return t / ops * 1e6;  // microseconds per acquire/release pair
}

template <typename MachineT>
void sweep(obs::Session& session, const std::string& title,
           const std::string& tag, machine::MachineConfig cfg,
           const std::vector<unsigned>& procs, int ops, bool csv) {
  std::vector<std::string> headers{"lock \\ procs"};
  for (unsigned p : procs) headers.push_back(std::to_string(p));
  TextTable t(headers);
  for (sync::SpinLockKind kind : sync::all_spinlock_kinds()) {
    std::vector<std::string> row{std::string(to_string(kind))};
    for (unsigned p : procs) {
      cfg.nproc = p;
      const std::string label = tag + " " + std::string(to_string(kind)) +
                                " p=" + std::to_string(p);
      row.push_back(
          TextTable::num(time_lock<MachineT>(session, label, cfg, kind, ops),
                         1));
    }
    t.add_row(row);
  }
  std::cout << "\n--- " << title << " (us per lock acquire/release) ---\n";
  if (csv) {
    t.print_csv();
  } else {
    t.print();
  }
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opt = BenchOptions::parse(argc, argv);
  obs::Session session = make_obs_session(opt, "ablation_spinlocks");
  const int ops = opt.quick ? 15 : 60;
  print_header("Extension: classic spin-lock alternatives on the KSR-1",
               "the Anderson [1] / MCS [13] lock studies on this machine");

  const std::vector<unsigned> procs =
      opt.quick ? std::vector<unsigned>{1, 8} : std::vector<unsigned>{1, 2, 4,
                                                                      8, 16};

  sweep<machine::KsrMachine>(session, "KSR-1 slotted ring", "ksr",
                             machine::MachineConfig::ksr1(16), procs, ops,
                             opt.csv);
  std::cout
      << "Reading the table: once the lock saturates, per-op time grows\n"
         "with P for ANY lock (hand-offs serialize); the differentiator is\n"
         "the overhead above that floor. Naive test&set pays the most (every\n"
         "attempt is a hardware Atomic NACK storm on one hot sub-page);\n"
         "the structured locks (ticket with proportional backoff, Anderson,\n"
         "MCS queue) hand off with O(1) transactions per release.\n";

  sweep<machine::BusMachine>(session, "Symmetry bus", "bus",
                             machine::MachineConfig::symmetry(16), procs, ops,
                             opt.csv);
  std::cout
      << "On the bus the ticket lock closes the gap: its hot counter is\n"
         "refreshed by the bus's natural broadcast, while queue locks pay\n"
         "the same serialized transfers as everyone else.\n";
  return 0;
}
