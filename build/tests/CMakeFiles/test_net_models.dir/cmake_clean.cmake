file(REMOVE_RECURSE
  "CMakeFiles/test_net_models.dir/test_net_models.cpp.o"
  "CMakeFiles/test_net_models.dir/test_net_models.cpp.o.d"
  "test_net_models"
  "test_net_models.pdb"
  "test_net_models[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
