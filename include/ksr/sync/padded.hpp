#pragma once

#include <cstddef>
#include <string_view>

#include "ksr/machine/machine.hpp"

// Sub-page-padded shared arrays.
//
// The paper aligns "mutually exclusive parts of shared data structures on
// separate cache lines so that there is no false sharing" (§3.2.2). Padded<T>
// provides exactly that: logical element i lives at the start of its own
// 128-byte sub-page. MCS's intentionally packed flag word is the one place
// that bypasses this helper on purpose.
namespace ksr::sync {

template <typename T>
class Padded {
 public:
  Padded() = default;

  /// `per_cell` elements belong to each cell (affects only the Butterfly,
  /// which homes each cell's elements in its own memory module).
  Padded(machine::Machine& m, std::string_view name, std::size_t count,
         std::size_t per_cell = 1)
      : stride_(mem::kSubPageBytes / sizeof(T)),
        arr_(m.alloc<T>(name, count * stride_,
                        machine::Placement::blocked(per_cell *
                                                    mem::kSubPageBytes))) {}

  [[nodiscard]] std::size_t size() const noexcept {
    return arr_.size() / stride_;
  }
  [[nodiscard]] mem::Sva addr(std::size_t i) const noexcept {
    return arr_.addr(i * stride_);
  }

  [[nodiscard]] T read(machine::Cpu& cpu, std::size_t i) const {
    return cpu.read(arr_, i * stride_);
  }
  void write(machine::Cpu& cpu, std::size_t i, std::type_identity_t<T> v) {
    cpu.write(arr_, i * stride_, v);
  }
  /// Write followed by poststore when `post` (used for wake-up flags).
  void write_post(machine::Cpu& cpu, std::size_t i, std::type_identity_t<T> v,
                  bool post) {
    cpu.write(arr_, i * stride_, v);
    if (post) cpu.post_store(arr_.addr(i * stride_));
  }

  [[nodiscard]] T value(std::size_t i) const noexcept {
    return arr_.value(i * stride_);
  }
  void set_value(std::size_t i, T v) noexcept { arr_.set_value(i * stride_, v); }

 private:
  std::size_t stride_ = 1;
  mem::SharedArray<T> arr_;
};

}  // namespace ksr::sync
