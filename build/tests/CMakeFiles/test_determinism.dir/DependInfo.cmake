
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_determinism.cpp" "tests/CMakeFiles/test_determinism.dir/test_determinism.cpp.o" "gcc" "tests/CMakeFiles/test_determinism.dir/test_determinism.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ksr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ksr_net.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/ksr_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/sync/CMakeFiles/ksr_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/nas/CMakeFiles/ksr_nas.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
