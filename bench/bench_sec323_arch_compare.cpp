// Reproduces the cross-architecture comparison of Section 3.2.3: the same
// barrier algorithms on a bus-based Symmetry-like machine (everything
// serializes; the naive counter is competitive and MCS(M) beats
// tournament(M)) and on a Butterfly-like machine (parallel paths but no
// coherent caches; dissemination wins and global-flag spinning hammers one
// memory module).
#include "bench_common.hpp"
#include "ksr/machine/bus_machine.hpp"
#include "ksr/machine/butterfly_machine.hpp"

namespace {

using namespace ksr;         // NOLINT
using namespace ksr::bench;  // NOLINT

template <typename MachineT>
void compare(obs::Session& session, const std::string& tag,
             const std::string& title, const machine::MachineConfig& base_cfg,
             const std::vector<unsigned>& procs, int episodes, bool csv) {
  std::vector<std::string> headers{"barrier \\ procs"};
  for (unsigned p : procs) headers.push_back(std::to_string(p));
  TextTable t(headers);
  for (sync::BarrierKind kind : sync::all_barrier_kinds()) {
    std::vector<std::string> row{std::string(to_string(kind))};
    for (unsigned p : procs) {
      machine::MachineConfig cfg = base_cfg;
      cfg.nproc = p;
      MachineT m(cfg);
      ScopedObs obs(session, m,
                    tag + " " + std::string(to_string(kind)) +
                        " p=" + std::to_string(p));
      row.push_back(
          TextTable::num(barrier_episode_seconds(m, kind, episodes) * 1e6, 1));
    }
    t.add_row(row);
  }
  std::cout << "\n--- " << title << " ---\n";
  if (csv) {
    t.print_csv();
  } else {
    t.print();
  }
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opt = BenchOptions::parse(argc, argv);
  obs::Session session = make_obs_session(opt, "sec323_arch_compare");
  const int episodes = opt.quick ? 5 : 20;
  print_header("Barriers across architectures: Symmetry bus & Butterfly MIN",
               "Section 3.2.3");

  const std::vector<unsigned> procs =
      opt.quick ? std::vector<unsigned>{4, 16} : std::vector<unsigned>{4, 8, 12, 16};

  compare<machine::BusMachine>(session, "bus",
                               "Sequent Symmetry model (single snooping bus)",
                               machine::MachineConfig::symmetry(16), procs,
                               episodes, opt.csv);
  std::cout
      << "Expected (paper): the bus serializes all communication, so the\n"
         "parallel-path algorithms lose their edge; counter is competitive\n"
         "(best on the real Symmetry) and MCS(M) beats tournament(M) since\n"
         "the 4-ary arrival tree halves the critical path at no extra cost\n"
         "when everything serializes anyway.\n";

  const std::vector<unsigned> bprocs =
      opt.quick ? std::vector<unsigned>{8, 32}
                : std::vector<unsigned>{8, 16, 24, 32};
  compare<machine::ButterflyMachine>(
      session, "butterfly",
      "BBN Butterfly model (multistage network, no coherent caches)",
      machine::MachineConfig::butterfly(32), bprocs, episodes, opt.csv);
  std::cout
      << "Expected (paper): with no caches, every spin poll crosses the\n"
         "network: global-wakeup-flag variants and the counter hammer a\n"
         "single home module, while dissemination — whose flags live in\n"
         "each spinner's own module — wins, followed by tournament, then\n"
         "MCS (log4 P + log2 P rounds).\n";
  return 0;
}
