
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/machine/butterfly_machine.cpp" "src/machine/CMakeFiles/ksr_machine.dir/butterfly_machine.cpp.o" "gcc" "src/machine/CMakeFiles/ksr_machine.dir/butterfly_machine.cpp.o.d"
  "/root/repo/src/machine/coherent_machine.cpp" "src/machine/CMakeFiles/ksr_machine.dir/coherent_machine.cpp.o" "gcc" "src/machine/CMakeFiles/ksr_machine.dir/coherent_machine.cpp.o.d"
  "/root/repo/src/machine/ksr_machine.cpp" "src/machine/CMakeFiles/ksr_machine.dir/ksr_machine.cpp.o" "gcc" "src/machine/CMakeFiles/ksr_machine.dir/ksr_machine.cpp.o.d"
  "/root/repo/src/machine/machine.cpp" "src/machine/CMakeFiles/ksr_machine.dir/machine.cpp.o" "gcc" "src/machine/CMakeFiles/ksr_machine.dir/machine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ksr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ksr_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
