// Stress and longevity tests for the barrier implementations: hundreds of
// episodes (exercising epoch wrap-around, e.g. MCS's one-byte arrival
// markers past 256 episodes), heavily skewed arrivals, and reuse across
// multiple run() calls on one machine.
#include <gtest/gtest.h>

#include "ksr/machine/ksr_machine.hpp"
#include "ksr/sync/barrier.hpp"

namespace ksr::sync {
namespace {

using machine::Cpu;
using machine::KsrMachine;
using machine::MachineConfig;

class BarrierStress : public testing::TestWithParam<BarrierKind> {};

std::string kind_name(const testing::TestParamInfo<BarrierKind>& info) {
  std::string n{to_string(info.param)};
  for (auto& c : n) {
    if (!isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return n;
}

// 300 episodes > 256: catches any epoch state narrower than the episode
// count (the MCS arrival bytes wrap and must keep working).
TEST_P(BarrierStress, SurvivesEpochWraparound) {
  KsrMachine m(MachineConfig::ksr1(5));
  auto barrier = make_barrier(m, GetParam());
  auto progress = m.alloc<std::uint32_t>(
      "progress", 5 * 32, machine::Placement::blocked(128));
  bool violated = false;
  m.run([&](Cpu& cpu) {
    for (std::uint32_t ep = 1; ep <= 300; ++ep) {
      cpu.write(progress, static_cast<std::size_t>(cpu.id()) * 32, ep);
      barrier->arrive(cpu);
      for (unsigned j = 0; j < cpu.nproc(); ++j) {
        if (cpu.read(progress, static_cast<std::size_t>(j) * 32) < ep) {
          violated = true;
        }
      }
    }
  });
  EXPECT_FALSE(violated);
}

// Extreme skew: one cell arrives milliseconds after everyone else, twice in
// alternating directions.
TEST_P(BarrierStress, ExtremeArrivalSkew) {
  KsrMachine m(MachineConfig::ksr1(6));
  auto barrier = make_barrier(m, GetParam());
  auto flag = m.alloc<std::uint32_t>("flag", 2);
  m.run([&](Cpu& cpu) {
    if (cpu.id() == 0) cpu.work(100000);  // 5 ms late
    barrier->arrive(cpu);
    if (cpu.id() == 0) cpu.write(flag, 0, 1);
    if (cpu.id() == 5) cpu.work(100000);
    barrier->arrive(cpu);
    EXPECT_EQ(cpu.read(flag, 0), 1u);  // everyone sees the first episode
  });
}

// One barrier object reused across separate run() calls on one machine.
TEST_P(BarrierStress, ReusableAcrossRuns) {
  KsrMachine m(MachineConfig::ksr1(4));
  auto barrier = make_barrier(m, GetParam());
  for (int r = 0; r < 3; ++r) {
    m.run([&](Cpu& cpu) {
      for (int e = 0; e < 5; ++e) {
        cpu.work(cpu.rng().below(300));
        barrier->arrive(cpu);
      }
    });
  }
  SUCCEED();  // completion (no deadlock/throw) is the assertion
}

INSTANTIATE_TEST_SUITE_P(AllKinds, BarrierStress,
                         testing::ValuesIn(all_barrier_kinds()), kind_name);

}  // namespace
}  // namespace ksr::sync
