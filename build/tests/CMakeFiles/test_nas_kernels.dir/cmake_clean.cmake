file(REMOVE_RECURSE
  "CMakeFiles/test_nas_kernels.dir/test_nas_kernels.cpp.o"
  "CMakeFiles/test_nas_kernels.dir/test_nas_kernels.cpp.o.d"
  "test_nas_kernels"
  "test_nas_kernels.pdb"
  "test_nas_kernels[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nas_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
