file(REMOVE_RECURSE
  "CMakeFiles/coherence_autopsy.dir/coherence_autopsy.cpp.o"
  "CMakeFiles/coherence_autopsy.dir/coherence_autopsy.cpp.o.d"
  "coherence_autopsy"
  "coherence_autopsy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coherence_autopsy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
