#pragma once

#include <array>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "ksr/sim/engine.hpp"
#include "ksr/sim/time.hpp"

// Deterministic multi-threaded discrete-event engine (docs/PARALLEL.md).
//
// The simulated machine is partitioned into *domains*; each domain is a
// complete serial Engine (its own event queue, observer lane, callback
// slab, fibers and tie-break sequence — all of the PR 1 fast-path
// machinery). Domains advance concurrently on host threads through
// *conservative time quanta* of width Δ (the ScaleSimulator recipe): within
// the quantum [kΔ, (k+1)Δ) a domain dispatches only its own events, and
// anything it wants to happen in another domain is appended to a per
// (src, dst) *boundary channel*. At the quantum barrier the coordinator
// merges every channel into its destination queue and the next quantum
// starts. The conservative rule — a boundary event's timestamp must be
// >= the end of the quantum that produced it — is what makes this safe:
// no domain can ever receive an event earlier than simulated time it has
// already executed past. Pick Δ as the minimum cross-domain latency of the
// model (for the slotted ring: one circulation, positions × hop_ns — a
// packet injected in quantum k is never delivered before quantum k+1);
// send() throws on any violation rather than silently breaking causality.
//
// Determinism contract (the PR 2 sweep-runner contract, now inside one
// simulation): results are bit-identical at any thread count, including
// the serial inline path. Three properties make this hold by construction:
//   1. a domain's intra-quantum execution is a serial Engine run — its
//      (time, seq) dispatch order depends only on its own inputs;
//   2. channels are appended by exactly one thread (the one advancing the
//      source domain) in that domain's deterministic execution order;
//   3. the barrier merge is a pure function of channel *contents*: packets
//      are ordered by (time, src domain, channel append order) and pushed
//      through the destination Engine's normal at() path, so same-time ties
//      land in the destination's (time, seq) order — and when a
//      sched_fuzz_seed is set, in the seed's hashed tie order (ksrfuzz
//      seeds replay exactly under any --sim-threads).
// Host thread scheduling can change *when* a domain's quantum slice runs,
// never *what* it computes.
//
// Degenerate shapes (all bit-identical to the general case):
//   * domains == 1, threads == 1 — run() is exactly domain(0).run(): the
//     serial engine inline, zero quantum/barrier overhead (the perf gate
//     covers this path).
//   * domains == 1, threads > 1 — the single domain runs to completion on
//     a worker thread in one quantum (no Δ constraint exists without a
//     second domain). This is what a coherent machine under --sim-threads
//     uses today: the ALLCACHE directory is machine-global functional
//     state with zero-latency invalidation, so cells cannot yet be split
//     across domains without changing the simulated protocol (see
//     docs/PARALLEL.md for the distributed-directory plan that lifts this).
//   * an empty domain simply arrives at every barrier without dispatching.
namespace ksr::sim {

class ParallelEngine {
 public:
  struct Config {
    unsigned domains = 1;
    unsigned threads = 1;     // host threads; 0 = one per hardware core
    Duration quantum_ns = 0;  // conservative quantum Δ; required > 0 when
                              // domains > 1 (derive from the model's minimum
                              // cross-domain latency)
  };

  explicit ParallelEngine(const Config& cfg);
  ~ParallelEngine();
  ParallelEngine(const ParallelEngine&) = delete;
  ParallelEngine& operator=(const ParallelEngine&) = delete;

  [[nodiscard]] unsigned domains() const noexcept {
    return static_cast<unsigned>(engines_.size());
  }
  /// Effective host thread count (after resolving threads == 0).
  [[nodiscard]] unsigned threads() const noexcept { return threads_; }
  [[nodiscard]] Duration quantum_ns() const noexcept { return cfg_.quantum_ns; }

  /// The serial engine owning domain `d`'s events and fibers. Components of
  /// domain `d` schedule local work directly on it (at/in/spawn/wake).
  [[nodiscard]] Engine& domain(unsigned d) { return *engines_.at(d); }
  [[nodiscard]] const Engine& domain(unsigned d) const {
    return *engines_.at(d);
  }

  /// Exclusive upper bound of the current quantum — the earliest legal
  /// timestamp for a mid-run send(). Stable for the whole phase: the
  /// coordinator writes it before releasing the workers into the phase
  /// (the release's mutex hand-off publishes it), so any thread advancing
  /// a domain may read it to stamp boundary packets. Between run() calls
  /// it holds the last quantum's bound and means nothing.
  [[nodiscard]] Time horizon() const noexcept { return horizon_; }

  /// Cross-domain boundary channel: run `fn` in domain `dst` at absolute
  /// simulated time `t`. Before run() any t >= 0 seeds the destination
  /// directly; during run() the caller must be the thread advancing domain
  /// `src` and `t` must be at or after the end of the current quantum
  /// (throws std::logic_error on a lookahead violation — the conservative
  /// guarantee would otherwise be silently broken). `src == dst` is allowed
  /// and still defers to the barrier (useful for uniform component code).
  void send(unsigned src, unsigned dst, Time t, InlineFn fn);

  /// Advance all domains to completion: quantum loop + barrier merges until
  /// every queue and channel drains, then per-domain end-of-run checks
  /// (deadlock detection, observer cleanup) in domain order. Rethrows the
  /// first failure by (quantum, domain index) — deterministic like
  /// everything else.
  void run();

  /// Sum of events dispatched across domains (the fingerprint; equals the
  /// serial engine's count when domains == 1).
  [[nodiscard]] std::uint64_t events_dispatched() const noexcept;

  /// Quantum barriers crossed during run() calls so far (host-side
  /// instrumentation; reported to BENCH_host.json as `quanta`).
  [[nodiscard]] std::uint64_t quanta() const noexcept { return quanta_; }

  /// Boundary packets merged at barriers so far.
  [[nodiscard]] std::uint64_t boundary_packets() const noexcept {
    return boundary_packets_;
  }

  /// Per-(src,dst) boundary-channel lifetime counters, maintained by the
  /// coordinator at every barrier merge — pure simulated data, so the
  /// values are bit-identical at any thread count. The slack histogram
  /// buckets (packet time − merge horizon) / Δ, clamped to the last bucket:
  /// bucket 0 = delivery in the immediately following quantum.
  struct ChannelStats {
    std::uint64_t packets = 0;
    std::uint64_t max_per_quantum = 0;  // peak packets in one barrier merge
    std::array<std::uint64_t, 8> slack_hist{};
  };
  /// Indexed [src * domains() + dst]; empty stats when domains() == 1.
  [[nodiscard]] const std::vector<ChannelStats>& channel_stats()
      const noexcept {
    return channel_stats_;
  }

  /// Host-side (wall-clock) parallel self-profiler. Unlike channel_stats(),
  /// these numbers vary run to run — they feed the [host] stderr line and
  /// BENCH_host.json only, never a byte-stable report file.
  struct HostProfile {
    unsigned threads = 1;
    std::uint64_t quanta = 0;
    std::uint64_t phase_wall_ns = 0;    // Σ per-quantum phase wall clock
    std::uint64_t barrier_wait_ns = 0;  // Σ per-slot idle at quantum barriers
    std::vector<std::uint64_t> domain_wall_ns;    // Σ run_until wall per domain
    std::vector<std::uint64_t> critical_quanta;   // quanta this domain was
                                                  // the slowest (critical path)
    /// Fraction of pool capacity spent waiting at quantum barriers, in parts
    /// per million: barrier_wait_ns / (threads · phase_wall_ns).
    [[nodiscard]] std::uint64_t barrier_wait_ppm() const noexcept {
      const std::uint64_t den = static_cast<std::uint64_t>(threads) *
                                phase_wall_ns;
      if (den == 0) return 0;
      return static_cast<std::uint64_t>(
          (static_cast<unsigned __int128>(barrier_wait_ns) * 1'000'000u) /
          den);
    }
    /// Domain with the most critical quanta (ties: lowest index); 0 when no
    /// quanta ran.
    [[nodiscard]] unsigned critical_domain() const noexcept {
      unsigned best = 0;
      for (unsigned d = 1; d < critical_quanta.size(); ++d) {
        if (critical_quanta[d] > critical_quanta[best]) best = d;
      }
      return best;
    }
  };
  [[nodiscard]] HostProfile host_profile() const;

  /// Forward the schedule-fuzz tie-break seed to every domain (each domain
  /// hashes its own insertion sequence; see Engine::set_tie_break_seed).
  void set_tie_break_seed(std::uint64_t seed) noexcept;

  /// --- Checkpoint support (docs/CHECKPOINT.md). ---

  /// Throw std::logic_error unless every domain is quiescent (no pending
  /// events, observers, or live fibers) and every boundary channel is empty.
  /// The diagnostic names the first offending domain or (src, dst) channel
  /// and its undelivered packet count — serializing mid-flight state would
  /// silently break the bit-exact restore contract, so capture refuses.
  void assert_quiescent(const char* what) const;

  /// Coordinator counters for checkpointing; restore only at a quiescent
  /// point so a restored run reports the same quanta / boundary-packet
  /// totals the uninterrupted run would.
  void restore_counters(std::uint64_t quanta,
                        std::uint64_t boundary_packets) noexcept {
    quanta_ = quanta;
    boundary_packets_ = boundary_packets;
  }

 private:
  struct Packet {
    Time t;
    InlineFn fn;
  };
  struct Channel {
    std::vector<Packet> q;
  };

  [[nodiscard]] Channel& channel(unsigned src, unsigned dst) noexcept {
    return channels_[src * domains() + dst];
  }

  /// Advance every domain assigned to pool slot `slot` (static round-robin:
  /// domain d belongs to slot d % threads_) up to `horizon_`. Exceptions
  /// are parked per domain and rethrown by the coordinator in domain order.
  void advance_slot(unsigned slot);

  /// Earliest pending event time across all domains (channels are empty at
  /// the call sites), or the Time maximum when fully drained.
  [[nodiscard]] Time next_event_time() const noexcept;

  /// Merge every channel into its destination queue: per destination,
  /// packets ordered by (time, src, append order) through Engine::at().
  void merge_channels();

  void start_pool();
  void stop_pool() noexcept;
  void worker_main(unsigned slot);
  void run_quantum_phase();  // one parallel phase + barrier

  Config cfg_;
  unsigned threads_ = 1;
  std::vector<std::unique_ptr<Engine>> engines_;
  std::vector<Channel> channels_;  // [src * domains + dst]
  std::vector<ChannelStats> channel_stats_;  // same indexing
  std::vector<std::exception_ptr> domain_errors_;
  std::uint64_t quanta_ = 0;
  std::uint64_t boundary_packets_ = 0;

  // Self-profiler state. Per-quantum scratch (slot_wall_ns_,
  // quantum_domain_wall_ns_) is written by the one thread advancing that
  // slot/domain during the phase and read by the coordinator after the
  // barrier (the arrived_ mutex hand-off publishes it); totals are
  // coordinator-only.
  std::vector<std::uint64_t> slot_wall_ns_;           // [threads_] scratch
  std::vector<std::uint64_t> quantum_domain_wall_ns_; // [domains] scratch
  std::vector<std::uint64_t> domain_wall_ns_;         // [domains] totals
  std::vector<std::uint64_t> critical_quanta_;        // [domains] totals
  std::uint64_t phase_wall_ns_ = 0;
  std::uint64_t barrier_wait_ns_ = 0;

  // Worker pool (lazy: only a multi-threaded run() starts it). Coordinator
  // and workers rendezvous on an epoch counter: bumping epoch_ releases
  // every worker into one quantum phase with the current horizon_; each
  // worker acks via arrived_ and the coordinator waits for all of them.
  // The coordinator itself advances the domains of the last pool slot.
  std::vector<std::thread> pool_;
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::uint64_t epoch_ = 0;
  unsigned arrived_ = 0;
  bool shutdown_ = false;
  Time horizon_ = 0;   // exclusive upper bound of the current quantum
  bool running_ = false;  // inside run()'s quantum loop (send() validation)
};

}  // namespace ksr::sim
