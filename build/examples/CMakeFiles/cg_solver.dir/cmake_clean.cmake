file(REMOVE_RECURSE
  "CMakeFiles/cg_solver.dir/cg_solver.cpp.o"
  "CMakeFiles/cg_solver.dir/cg_solver.cpp.o.d"
  "cg_solver"
  "cg_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cg_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
