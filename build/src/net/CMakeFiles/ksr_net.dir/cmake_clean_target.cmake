file(REMOVE_RECURSE
  "libksr_net.a"
)
