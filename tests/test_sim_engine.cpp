// Unit tests for the discrete-event engine and fiber scheduler.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <memory>
#include <stdexcept>
#include <vector>

#include "ksr/sim/callback.hpp"
#include "ksr/sim/engine.hpp"
#include "ksr/sim/event_heap.hpp"
#include "ksr/sim/rng.hpp"

namespace ksr::sim {
namespace {

TEST(Engine, DispatchesEventsInTimeOrder) {
  Engine eng;
  std::vector<int> order;
  eng.at(30, [&] { order.push_back(3); });
  eng.at(10, [&] { order.push_back(1); });
  eng.at(20, [&] { order.push_back(2); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eng.now(), 30u);
}

TEST(Engine, TiesBreakByInsertionOrder) {
  Engine eng;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    eng.at(100, [&order, i] { order.push_back(i); });
  }
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Engine, SchedulingIntoThePastThrows) {
  Engine eng;
  eng.at(50, [&] {
    EXPECT_THROW(eng.at(40, [] {}), std::logic_error);
  });
  eng.run();
}

TEST(Engine, NestedSchedulingFromEvents) {
  Engine eng;
  int hits = 0;
  eng.at(1, [&] {
    ++hits;
    eng.at(5, [&] {
      ++hits;
      eng.at(9, [&] { ++hits; });
    });
  });
  eng.run();
  EXPECT_EQ(hits, 3);
  EXPECT_EQ(eng.now(), 9u);
}

TEST(Engine, FiberRunsAndFinishes) {
  Engine eng;
  bool ran = false;
  eng.spawn([&] { ran = true; }, 7);
  eng.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(eng.live_fibers(), 0u);
}

TEST(Engine, FiberWaitUntilAdvancesTime) {
  Engine eng;
  Time seen = 0;
  eng.spawn([&] {
    eng.wait_until(1000);
    seen = eng.now();
    eng.wait_until(2500);
    seen = eng.now();
  });
  eng.run();
  EXPECT_EQ(seen, 2500u);
}

TEST(Engine, TwoFibersInterleaveDeterministically) {
  Engine eng;
  std::vector<int> trace;
  eng.spawn([&] {
    trace.push_back(1);
    eng.wait_until(100);
    trace.push_back(3);
    eng.wait_until(300);
    trace.push_back(5);
  });
  eng.spawn([&] {
    trace.push_back(2);
    eng.wait_until(200);
    trace.push_back(4);
  });
  eng.run();
  EXPECT_EQ(trace, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(Engine, BlockAndWake) {
  Engine eng;
  bool resumed = false;
  const FiberId f = eng.spawn([&] {
    eng.block();
    resumed = true;
    EXPECT_EQ(eng.now(), 500u);
  });
  eng.at(500, [&] { eng.wake(f, 500); });
  eng.run();
  EXPECT_TRUE(resumed);
}

TEST(Engine, WakingFinishedFiberThrows) {
  Engine eng;
  const FiberId f = eng.spawn([] {});
  eng.at(100, [&] { eng.wake(f, 200); });  // fiber finished long before t=100
  EXPECT_THROW(eng.run(), std::logic_error);
}

TEST(Engine, DeadlockDetected) {
  Engine eng;
  eng.spawn([&] { eng.block(); });  // nobody ever wakes it
  EXPECT_THROW(eng.run(), std::runtime_error);
}

TEST(Engine, FiberExceptionPropagates) {
  Engine eng;
  eng.spawn([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(eng.run(), std::runtime_error);
}

TEST(Engine, ManyFibersAllComplete) {
  Engine eng;
  int done = 0;
  for (int i = 0; i < 64; ++i) {
    eng.spawn([&eng, &done, i] {
      for (int k = 0; k < 10; ++k) {
        eng.wait_until(eng.now() + static_cast<Time>(i + 1));
      }
      ++done;
    });
  }
  eng.run();
  EXPECT_EQ(done, 64);
}

TEST(Engine, CurrentFiberIdVisible) {
  Engine eng;
  eng.spawn([&] {
    EXPECT_TRUE(eng.in_fiber());
    EXPECT_EQ(eng.current_fiber(), 0u);
  });
  eng.run();
  EXPECT_FALSE(eng.in_fiber());
}

TEST(Engine, NextEventTimeSentinelWhenIdle) {
  Engine eng;
  EXPECT_EQ(eng.next_event_time(), std::numeric_limits<Time>::max());
  eng.at(42, [] {});
  EXPECT_EQ(eng.next_event_time(), 42u);
  eng.run();
}

// ---- InlineFn: the three storage strategies -------------------------------

TEST(InlineFn, TrivialCaptureInvokesAndMoves) {
  int sink = 0;
  int* p = &sink;
  InlineFn f([p] { ++*p; });  // trivially copyable capture: inline, no ops
  ASSERT_TRUE(static_cast<bool>(f));
  f();
  EXPECT_EQ(sink, 1);
  InlineFn g(std::move(f));
  EXPECT_FALSE(static_cast<bool>(f));  // NOLINT(bugprone-use-after-move)
  g();
  EXPECT_EQ(sink, 2);
}

TEST(InlineFn, MoveOnlyCaptureStaysInline) {
  auto owned = std::make_unique<int>(7);
  int got = 0;
  InlineFn f([o = std::move(owned), &got] { got = *o; });
  InlineFn g(std::move(f));
  InlineFn h;
  h = std::move(g);
  h();
  EXPECT_EQ(got, 7);
  h.reset();  // releases the unique_ptr; must not leak or double-free
  EXPECT_FALSE(static_cast<bool>(h));
}

TEST(InlineFn, OversizedCaptureIsBoxed) {
  std::array<std::uint64_t, 32> big{};  // 256 B > kInlineBytes
  big[0] = 3;
  big[31] = 4;
  std::uint64_t got = 0;
  InlineFn f([big, &got] { got = big[0] + big[31]; });
  InlineFn g(std::move(f));
  g();
  EXPECT_EQ(got, 7u);
}

TEST(InlineFn, AssignmentReplacesExistingCallable) {
  int a = 0;
  int b = 0;
  InlineFn f([&a] { ++a; });
  f = InlineFn([&b] { ++b; });
  f();
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
}

// ---- EventQueue / DaryHeap: dispatch order vs a sorted reference ----------

struct Key {
  Time t;
  std::uint64_t seq;
};
struct KeyEarlier {
  bool operator()(const Key& a, const Key& b) const noexcept {
    return a.t != b.t ? a.t < b.t : a.seq < b.seq;
  }
};

// Random interleaving of monotone pushes (the engine's common case),
// out-of-order pushes, and interspersed pops. Returns the pop order.
template <typename Queue>
std::vector<std::uint64_t> exercise_queue(Queue& q) {
  Rng rng(1234);
  std::vector<std::uint64_t> popped;
  std::uint64_t seq = 0;
  Time now = 0;
  for (int round = 0; round < 2000; ++round) {
    const Time t = rng.below(10) < 7 ? now + rng.below(50)   // monotone-ish
                                     : now / 2 + rng.below(100);  // reordered
    q.push(Key{t, seq++});
    if (rng.below(10) < 4) popped.push_back(q.pop_top().seq);
    if (!q.empty()) now = q.top().t;
  }
  while (!q.empty()) popped.push_back(q.pop_top().seq);
  return popped;
}

TEST(EventQueue, MatchesSortedReferenceOnRandomWorkload) {
  // Drive the two-lane queue and the plain heap with the same pushes and
  // pops; they must produce the same dispatch order.
  EventQueue<Key, KeyEarlier, 4> lanes;
  DaryHeap<Key, KeyEarlier, 4> heap;
  const std::vector<std::uint64_t> a = exercise_queue(lanes);
  const std::vector<std::uint64_t> b = exercise_queue(heap);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
}

TEST(EventQueue, FullDrainIsTotallySorted) {
  EventQueue<Key, KeyEarlier, 4> q;
  Rng rng(99);
  std::vector<Key> ref;
  for (std::uint64_t i = 0; i < 5000; ++i) {
    const Key k{rng.below(500), i};
    q.push(k);
    ref.push_back(k);
  }
  std::sort(ref.begin(), ref.end(),
            [](const Key& x, const Key& y) { return KeyEarlier{}(x, y); });
  for (const Key& want : ref) {
    ASSERT_FALSE(q.empty());
    EXPECT_EQ(q.top().seq, want.seq);
    const Key got = q.pop_top();
    EXPECT_EQ(got.t, want.t);
    EXPECT_EQ(got.seq, want.seq);
  }
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, MonotonePushesAndSizeBookkeeping) {
  EventQueue<Key, KeyEarlier, 4> q;
  for (std::uint64_t i = 0; i < 10000; ++i) q.push(Key{i, i});
  EXPECT_EQ(q.size(), 10000u);
  for (std::uint64_t i = 0; i < 10000; ++i) {
    EXPECT_EQ(q.pop_top().seq, i);  // exercises the run-lane compaction
  }
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

}  // namespace
}  // namespace ksr::sim
