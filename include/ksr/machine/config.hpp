#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "ksr/cache/local_cache.hpp"
#include "ksr/cache/subcache.hpp"
#include "ksr/sim/time.hpp"

// Machine configuration and presets.
//
// Latency philosophy (paper §2 and §3.2.4): the KSR-2 differs from the KSR-1
// only in CPU clock (40 vs 20 MHz); ring and memory are identical. We
// therefore express *processor-coupled* costs in CPU cycles (instruction
// work, sub-cache hits) and *memory-system* costs in absolute nanoseconds
// (local-cache access, ring hops, protocol overheads), so a KSR-2 preset is
// literally "halve the cycle time".
namespace ksr::machine {

enum class MachineKind : std::uint8_t {
  kKsr1,       // COMA + slotted ring hierarchy
  kKsr2,       // same, 2x CPU clock
  kSymmetry,   // snooping caches on a serializing bus
  kButterfly,  // multistage network, no coherent caches
};

[[nodiscard]] constexpr const char* to_string(MachineKind k) noexcept {
  switch (k) {
    case MachineKind::kKsr1: return "KSR-1";
    case MachineKind::kKsr2: return "KSR-2";
    case MachineKind::kSymmetry: return "Symmetry";
    case MachineKind::kButterfly: return "Butterfly";
  }
  return "?";
}

struct MachineConfig {
  MachineKind kind = MachineKind::kKsr1;
  unsigned nproc = 32;

  // --- Processor ---
  sim::Duration cycle_ns = 50;        // 20 MHz KSR-1; 25 ns on KSR-2
  unsigned subcache_hit_cycles = 2;   // published first-level latency

  // --- Local cache (absolute time; published 18 cycles @ 50 ns) ---
  sim::Duration localcache_read_ns = 900;
  sim::Duration localcache_write_ns = 1000;  // writes slightly dearer (Fig. 2)
  sim::Duration block_alloc_ns = 450;   // 2 KB sub-cache block allocation (+~50%)
  sim::Duration page_alloc_ns = 5200;   // 16 KB local-cache page allocation (+~60%)

  // --- Leaf ring (published remote access ≈ 175 cycles = 8.75 us) ---
  unsigned cells_per_leaf = 32;
  unsigned ring_slots_per_subring = 12;
  sim::Duration ring_hop_ns = 100;       // 32 positions -> 3.2 us circulation
  sim::Duration ring_fixed_ns = 5400;    // protocol/lookup overhead per transaction

  // --- Level-1 ring (the "sudden jump" beyond one leaf, §3.2.4) ---
  unsigned ring1_slots_per_subring = 48;  // "rings of higher bandwidth"
  sim::Duration ring1_hop_ns = 50;
  sim::Duration ard_crossing_ns = 2500;   // per direction through the ARD pair

  // --- Caches ---
  cache::SubCache::Config subcache{};
  cache::LocalCache::Config localcache{};

  // --- Protocol features ---
  bool read_snarfing = true;
  bool has_prefetch = true;   // KSR prefetch instruction available
  bool has_poststore = true;  // KSR poststore instruction available
  unsigned prefetch_depth = 4;              // outstanding prefetches per cell
  sim::Duration atomic_backoff_ns = 2000;   // base retry delay after a NACK
  sim::Duration local_atomic_ns = 300;      // get/release on an Exclusive-held line

  // --- Single-simulation host parallelism (docs/PARALLEL.md) ---
  // sim_threads: host threads advancing this one simulation through the
  // conservative-quantum ParallelEngine (0 = one per hardware core).
  // Results are bit-identical at any value — the same determinism contract
  // --jobs carries for independent simulations, now inside one machine.
  // The build can move the default off the serial inline path
  // (-DKSR_SIM_THREADS_DEFAULT=N); CI's build-parallel job soaks the whole
  // tier-1 suite that way.
#ifndef KSR_SIM_THREADS_DEFAULT
#define KSR_SIM_THREADS_DEFAULT 1
#endif
  unsigned sim_threads = KSR_SIM_THREADS_DEFAULT;
  // cells_per_domain: requested partition width, 0 = all cells in one
  // domain. On ring machines (KSR-1/KSR-2) the partition is rounded to
  // whole leaf rings — the coherence directory is sharded by home leaf
  // ring, so a domain owns its leaves' shards outright and cross-domain
  // requests travel as explicit level-1-ring transactions through the
  // ParallelEngine's boundary channels (docs/PARALLEL.md). Single-domain
  // runs (the default) keep the seed's synchronous directory commit path
  // and its pinned fingerprints bit-identical; multi-domain runs trade
  // that compatibility for real wall-clock parallelism and home-routed
  // protocol latency. Bus/butterfly machines still run single-domain.
  unsigned cells_per_domain = 0;

  /// Domains the requested partition would produce for this machine size.
  [[nodiscard]] unsigned requested_domains() const noexcept {
    if (cells_per_domain == 0 || cells_per_domain >= nproc) return 1;
    return (nproc + cells_per_domain - 1) / cells_per_domain;
  }

  /// Ring machines can shard the directory by leaf ring and therefore run
  /// multi-domain; the bus and butterfly substrates serialize on a single
  /// shared medium and stay single-domain.
  [[nodiscard]] bool supports_partition() const noexcept {
    return kind == MachineKind::kKsr1 || kind == MachineKind::kKsr2;
  }

  /// Whole leaf rings per domain for a partitioned ring-machine run:
  /// cells_per_domain rounded *up* to the leaf size (a shard is owned by
  /// exactly one domain, so a domain boundary can never split a leaf).
  [[nodiscard]] unsigned planned_leaves_per_domain() const noexcept {
    if (cells_per_leaf == 0) return 1;  // validate() rejects; avoid /0 here
    const unsigned want = cells_per_domain == 0 ? nproc : cells_per_domain;
    return std::max(1u, (want + cells_per_leaf - 1) / cells_per_leaf);
  }

  /// Domains a Machine built from this config actually runs: the leaf-
  /// aligned partition for ring machines, 1 for everything else.
  [[nodiscard]] unsigned planned_domains() const noexcept {
    if (!supports_partition() || requested_domains() <= 1) return 1;
    const unsigned lpd = planned_leaves_per_domain();
    return std::max(1u, (leaf_rings() + lpd - 1) / lpd);
  }

  [[nodiscard]] unsigned domain_of_leaf(unsigned leaf) const noexcept {
    const unsigned d = leaf / planned_leaves_per_domain();
    const unsigned n = planned_domains();
    return d < n ? d : n - 1;
  }

  [[nodiscard]] unsigned domain_of_cell(unsigned cell) const noexcept {
    if (cells_per_leaf == 0) return 0;
    return domain_of_leaf(cell / cells_per_leaf);
  }

  /// Conservative quantum Δ for a partitioned run: the minimum cross-domain
  /// latency of the transport model. On the slotted ring any cross-cell
  /// interaction costs at least one full leaf circulation — a packet
  /// injected in quantum k cannot be delivered before quantum k+1 — so
  /// Δ = positions × hop_ns (the paper layout: 32 × 100 ns = 3.2 us).
  [[nodiscard]] sim::Duration sim_quantum_ns() const noexcept {
    return static_cast<sim::Duration>(cells_per_leaf) * ring_hop_ns;
  }

  /// Fluent copy for sweep call sites: cfg.with_sim_threads(o.sim_threads).
  [[nodiscard]] MachineConfig with_sim_threads(unsigned n) const {
    MachineConfig c = *this;
    c.sim_threads = n;
    return c;
  }

  /// Fluent copy for partitioned-run call sites.
  [[nodiscard]] MachineConfig with_cells_per_domain(unsigned n) const {
    MachineConfig c = *this;
    c.cells_per_domain = n;
    return c;
  }

  // --- Schedule fuzzing (ksrfuzz, docs/CHECKING.md) ---
  // Nonzero: perturb event tie-breaking order (Engine::set_tie_break_seed)
  // and, on ring machines, the slot phase of every ring, all derived
  // deterministically from this seed. 0 (the default) is the reference
  // schedule every fingerprint is pinned against.
  std::uint64_t sched_fuzz_seed = 0;

  // --- Symmetry / Butterfly substrate parameters (§3.2.3) ---
  sim::Duration bus_transaction_ns = 1000;
  sim::Duration bus_overhead_ns = 200;  // requester-side protocol overhead
  sim::Duration butterfly_link_ns = 300;
  sim::Duration butterfly_memory_ns = 600;
  sim::Duration butterfly_local_ns = 600;  // reference into the local module

  // -------- Presets --------

  static MachineConfig ksr1(unsigned nproc = 32) {
    MachineConfig c;
    c.kind = MachineKind::kKsr1;
    c.nproc = nproc;
    return c;
  }

  static MachineConfig ksr2(unsigned nproc = 64) {
    MachineConfig c = ksr1(nproc);
    c.kind = MachineKind::kKsr2;
    c.cycle_ns = 25;  // 40 MHz cells; memory system unchanged
    return c;
  }

  static MachineConfig symmetry(unsigned nproc = 16) {
    MachineConfig c;
    c.kind = MachineKind::kSymmetry;
    c.nproc = nproc;
    // The bus is a broadcast medium: a response passing on the bus can be
    // snooped by every cache holding an invalid copy. This "free broadcast"
    // is why the naive counter barrier is competitive on the Symmetry.
    c.read_snarfing = true;
    c.has_prefetch = false;
    c.has_poststore = false;
    c.bus_transaction_ns = 600;   // snoopy cache-to-cache line transfer
    c.atomic_backoff_ns = 500;    // bus retries are cheap
    return c;
  }

  static MachineConfig butterfly(unsigned nproc = 32) {
    MachineConfig c;
    c.kind = MachineKind::kButterfly;
    c.nproc = nproc;
    c.read_snarfing = false;
    c.has_prefetch = false;
    c.has_poststore = false;
    return c;
  }

  /// Shrink both cache capacities by `k` (problem sizes are scaled by the
  /// same factor in the NAS harnesses, preserving working-set/cache ratios —
  /// the quantity the paper's capacity effects depend on).
  [[nodiscard]] MachineConfig scaled_by(unsigned k) const {
    if (k == 0) throw std::invalid_argument("scaled_by(0)");
    MachineConfig c = *this;
    c.subcache.capacity_bytes = std::max<std::size_t>(
        c.subcache.capacity_bytes / k, c.subcache.ways * mem::kBlockBytes);
    c.localcache.capacity_bytes = std::max<std::size_t>(
        c.localcache.capacity_bytes / k, c.localcache.ways * mem::kPageBytes);
    return c;
  }

  /// The level-1 ring carries one ARD attachment point per leaf ring; the
  /// production KSR-1 ring had 34 of them (34 x 32 = 1088 cells, the
  /// machine's published maximum). Kept fixed so the level-1 circulation
  /// time is a property of the machine, not of how full it is.
  static constexpr unsigned kRing1Positions = 34;

  /// Number of leaf rings needed for nproc cells.
  [[nodiscard]] unsigned leaf_rings() const noexcept {
    if (cells_per_leaf == 0) return 1;  // validate() rejects; avoid /0 here
    return (nproc + cells_per_leaf - 1) / cells_per_leaf;
  }

  /// Slotted-ring positions on one leaf ring: its cells plus, when the
  /// machine has more than one leaf, the ARD that couples it to the
  /// level-1 ring. Shared by KsrMachine and study::RingModel so the
  /// analytic model can never drift from the simulated topology.
  [[nodiscard]] unsigned leaf_ring_positions() const noexcept {
    return cells_per_leaf + (leaf_rings() > 1 ? 1u : 0u);
  }

  /// Hop distance (in level-1 positions) from leaf `from`'s ARD to leaf
  /// `to`'s ARD — the ring is unidirectional, so distance is modular.
  [[nodiscard]] unsigned ring1_hops(unsigned from, unsigned to) const noexcept {
    return (to + kRing1Positions - from) % kRing1Positions;
  }

  [[nodiscard]] sim::Duration cycles(std::uint64_t n) const noexcept {
    return n * cycle_ns;
  }

  void validate() const {
    if (nproc == 0) throw std::invalid_argument("MachineConfig: nproc == 0");
    if (cycle_ns == 0 || ring_hop_ns == 0) {
      throw std::invalid_argument("MachineConfig: zero clock period");
    }
    if (supports_partition()) {
      if (cells_per_leaf == 0) {
        throw std::invalid_argument(
            "MachineConfig: cells_per_leaf == 0 (a leaf ring needs at least "
            "one cell position)");
      }
      if (leaf_rings() > kRing1Positions) {
        throw std::invalid_argument(
            "MachineConfig: nproc " + std::to_string(nproc) + " needs " +
            std::to_string(leaf_rings()) + " leaf rings of " +
            std::to_string(cells_per_leaf) +
            " cells, but the level-1 ring has only " +
            std::to_string(kRing1Positions) +
            " ARD positions (max nproc for this shape is " +
            std::to_string(kRing1Positions * cells_per_leaf) + ")");
      }
    } else if (nproc > 64) {
      // The bus and butterfly substrates model machines that never shipped
      // past this size; their directory/queue state also still uses
      // single-word cell masks.
      throw std::invalid_argument(
          "MachineConfig: at most 64 cells supported on " +
          std::string(to_string(kind)));
    }
  }
};

}  // namespace ksr::machine
