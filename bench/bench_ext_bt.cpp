// Extension: the Block Tridiagonal (BT) application of the paper's
// reference [6] ("Implementation of EP, SP and BT on the KSR-1"). BT is
// compute-dense (5x5 block operations per grid point), so it should scale
// at least as well as SP — the contrast quantifies how much of SP's
// behaviour is memory-system-bound.
#include "bench_common.hpp"
#include "ksr/machine/ksr_machine.hpp"
#include "ksr/nas/bt.hpp"
#include "ksr/nas/sp.hpp"

int main(int argc, char** argv) {
  using namespace ksr;         // NOLINT
  using namespace ksr::bench;  // NOLINT

  const BenchOptions opt = BenchOptions::parse(argc, argv);
  obs::Session session = make_obs_session(opt, "ext_bt");
  print_header("Extension: Block Tridiagonal application scalability",
               "reference [6]; contrast with Table 3 (SP)");

  nas::BtConfig bt;
  bt.n = opt.quick ? 8 : 16;
  bt.iterations = opt.quick ? 1 : 2;
  bt.use_prefetch = true;
  nas::SpConfig sp;
  sp.n = opt.quick ? 8 : 16;
  sp.iterations = bt.iterations;
  sp.padded_layout = true;
  sp.use_prefetch = true;
  const unsigned scale = 16;

  const std::vector<unsigned> procs =
      opt.quick ? std::vector<unsigned>{1, 4, 8}
                : std::vector<unsigned>{1, 2, 4, 8, 16};

  std::vector<std::pair<unsigned, double>> bt_m, sp_m;
  for (unsigned p : procs) {
    const std::string ps = std::to_string(p);
    machine::KsrMachine m1(machine::MachineConfig::ksr1(p).scaled_by(scale));
    {
      ScopedObs obs(session, m1, "bt p=" + ps);
      bt_m.emplace_back(p, run_bt(m1, bt).seconds_per_iteration);
    }
    machine::KsrMachine m2(machine::MachineConfig::ksr1(p).scaled_by(scale));
    {
      ScopedObs obs(session, m2, "sp p=" + ps);
      sp_m.emplace_back(p, run_sp(m2, sp).seconds_per_iteration);
    }
  }
  const auto bt_rows = study::scaling_rows(bt_m);
  const auto sp_rows = study::scaling_rows(sp_m);

  TextTable t({"procs", "BT t/iter (s)", "BT speedup", "SP t/iter (s)",
               "SP speedup"});
  for (std::size_t i = 0; i < procs.size(); ++i) {
    t.add_row({std::to_string(procs[i]),
               TextTable::num(bt_rows[i].seconds, 5),
               TextTable::num(bt_rows[i].speedup, 2),
               TextTable::num(sp_rows[i].seconds, 5),
               TextTable::num(sp_rows[i].speedup, 2)});
  }
  if (opt.csv) {
    t.print_csv();
  } else {
    t.print();
    std::cout << "\nExpected: BT's block-dense compute amortizes the same\n"
                 "communication pattern better than SP's scalar sweeps, so\n"
                 "its efficiency at a given processor count is >= SP's.\n";
  }
  return 0;
}
