// ksr/util/parse.hpp — the one strict integer parser shared by every tool
// (ksrsim, ksrfuzz, ksrprof, ksrtop), the bench-binary BenchOptions, and
// the serve/campaign JSON decoder. The predecessors were four divergent
// strtoull wrappers, each with its own edge-case bugs (the classic: strtoull
// silently wraps "-1" to UINT64_MAX); these tests pin the shared semantics.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>

#include "ksr/util/parse.hpp"

namespace ksr::util {
namespace {

std::uint64_t u64_of(std::string_view s) {
  std::uint64_t v = 0;
  EXPECT_TRUE(parse_u64(s, &v)) << s;
  return v;
}

std::int64_t i64_of(std::string_view s) {
  std::int64_t v = 0;
  EXPECT_TRUE(parse_i64(s, &v)) << s;
  return v;
}

bool u64_rejects(std::string_view s) {
  std::uint64_t v = 12345;
  const bool ok = parse_u64(s, &v);
  if (!ok) {
    EXPECT_EQ(v, 12345u) << "rejected parse must not clobber *out";
  }
  return !ok;
}

bool i64_rejects(std::string_view s) {
  std::int64_t v = 12345;
  const bool ok = parse_i64(s, &v);
  if (!ok) {
    EXPECT_EQ(v, 12345) << "rejected parse must not clobber *out";
  }
  return !ok;
}

TEST(ParseU64, AcceptsPlainAndPlusSignedDecimals) {
  EXPECT_EQ(u64_of("0"), 0u);
  EXPECT_EQ(u64_of("1"), 1u);
  EXPECT_EQ(u64_of("0042"), 42u);
  EXPECT_EQ(u64_of("+7"), 7u);
  EXPECT_EQ(u64_of("18446744073709551615"),
            std::numeric_limits<std::uint64_t>::max());
}

TEST(ParseU64, RejectsMalformedTokens) {
  EXPECT_TRUE(u64_rejects(""));
  EXPECT_TRUE(u64_rejects("+"));
  EXPECT_TRUE(u64_rejects(" 1"));   // strtoull would skip the space
  EXPECT_TRUE(u64_rejects("1 "));
  EXPECT_TRUE(u64_rejects("1x"));   // strtoull would stop at 'x'
  EXPECT_TRUE(u64_rejects("0x10"));
  EXPECT_TRUE(u64_rejects("1e3"));
  EXPECT_TRUE(u64_rejects("12.5"));
  EXPECT_TRUE(u64_rejects("++1"));
}

TEST(ParseU64, RejectsNegativesInsteadOfWrapping) {
  // The bug the consolidation fixes: strtoull("-1") "succeeds" and returns
  // 2^64-1, so `--procs -1` used to ask for eighteen quintillion cells.
  EXPECT_TRUE(u64_rejects("-1"));
  EXPECT_TRUE(u64_rejects("-0"));
  EXPECT_TRUE(u64_rejects("-18446744073709551615"));
}

TEST(ParseU64, RejectsOverflow) {
  EXPECT_TRUE(u64_rejects("18446744073709551616"));  // 2^64
  EXPECT_TRUE(u64_rejects("99999999999999999999"));
  EXPECT_TRUE(u64_rejects("184467440737095516150"));  // max * 10
}

TEST(ParseI64, AcceptsSignedDecimals) {
  EXPECT_EQ(i64_of("0"), 0);
  EXPECT_EQ(i64_of("-0"), 0);
  EXPECT_EQ(i64_of("-1"), -1);
  EXPECT_EQ(i64_of("+25"), 25);
  EXPECT_EQ(i64_of("9223372036854775807"),
            std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(i64_of("-9223372036854775808"),
            std::numeric_limits<std::int64_t>::min());
}

TEST(ParseI64, RejectsMalformedAndOverflow) {
  EXPECT_TRUE(i64_rejects(""));
  EXPECT_TRUE(i64_rejects("-"));
  EXPECT_TRUE(i64_rejects("+"));
  EXPECT_TRUE(i64_rejects("-+1"));
  EXPECT_TRUE(i64_rejects("1-"));
  EXPECT_TRUE(i64_rejects("9223372036854775808"));   // max + 1
  EXPECT_TRUE(i64_rejects("-9223372036854775809"));  // min - 1
}

TEST(ParseOr, FallbackKeepsDefaultAndParsesValid) {
  // The warn-and-fallback wrappers the tools use: valid tokens parse,
  // invalid ones keep the caller's default (the warning goes to stderr).
  EXPECT_EQ(to_u64_or("17", 5, "test", "field"), 17u);
  EXPECT_EQ(to_u64_or("bogus", 5, "test", "field"), 5u);
  EXPECT_EQ(to_u64_or("-3", 5, "test", "field"), 5u);
  EXPECT_EQ(to_i64_or("-17", 5, "test", "field"), -17);
  EXPECT_EQ(to_i64_or("junk", 5, "test", "field"), 5);
}

TEST(ParseU64, WorksAtCompileTime) {
  // constexpr-ness is part of the contract (table-driven tests and future
  // static configs rely on it).
  constexpr auto parsed = [] {
    std::uint64_t v = 0;
    const bool ok = parse_u64("123", &v);
    return ok ? v : 0;
  }();
  static_assert(parsed == 123);
  EXPECT_EQ(parsed, 123u);
}

}  // namespace
}  // namespace ksr::util
