#pragma once

#include <cstdint>
#include <vector>

#include "ksr/mem/geometry.hpp"
#include "ksr/sim/rng.hpp"

// First-level (sub-)cache model.
//
// The KSR-1 sub-cache holds 256 KB of data (the 256 KB instruction side is
// not modeled: programs are not instruction-accurate). It is 2-way set
// associative with *random* replacement. Allocation is per 2 KB block;
// transfer from the local cache is per 64 B sub-block, brought in on demand
// after the block is allocated (paper §2). The random replacement policy is
// load-bearing for the paper: it causes the SP application's base layout to
// thrash (§3.3.3), fixed by data padding.
namespace ksr::cache {

class SubCache {
 public:
  struct Config {
    std::size_t capacity_bytes = 256 * 1024;
    unsigned ways = 2;
  };

  struct Access {
    bool hit = false;             // sub-block was present
    bool block_allocated = false; // a 2 KB block frame had to be allocated
    bool block_evicted = false;   // ...displacing a valid block
  };

  SubCache() : SubCache(Config{}) {}
  explicit SubCache(const Config& cfg)
      : ways_(cfg.ways),
        sets_(cfg.capacity_bytes / (cfg.ways * mem::kBlockBytes)),
        frames_(sets_ * ways_) {}

  /// Touch the sub-block containing `a`; allocate block / fill sub-block as
  /// needed. Purely functional bookkeeping — the caller charges time.
  Access access(mem::Sva a, sim::Rng& rng) {
    const mem::BlockId blk = mem::block_of(a);
    const std::size_t sub =
        (a / mem::kSubBlockBytes) % mem::kSubBlocksPerBlock;
    const std::size_t set = static_cast<std::size_t>(blk) % sets_;
    Frame* frame = find(blk, set);
    Access out;
    if (frame == nullptr) {
      out.block_allocated = true;
      frame = victim(set, rng, out.block_evicted);
      frame->tag = blk;
      frame->valid = true;
      frame->present = 0;
    }
    const std::uint32_t bit = 1u << sub;
    out.hit = (frame->present & bit) != 0;
    frame->present |= bit;
    if (out.block_evicted) ++gen_;  // a resident block lost its sub-blocks
    return out;
  }

  /// Monotone counter bumped whenever resident data may have been removed
  /// (eviction, invalidation, clear). Lets callers hold a one-entry MRU
  /// "this sub-block is present" hint and revalidate it in O(1): the hint
  /// is trustworthy iff the generation is unchanged, because every mutation
  /// that can remove presence bumps it (additions never invalidate a hint).
  [[nodiscard]] std::uint64_t generation() const noexcept { return gen_; }

  /// True if the sub-block containing `a` is resident (no state change).
  [[nodiscard]] bool contains(mem::Sva a) const noexcept {
    const mem::BlockId blk = mem::block_of(a);
    const std::size_t set = static_cast<std::size_t>(blk) % sets_;
    for (std::size_t w = 0; w < ways_; ++w) {
      const Frame& f = frames_[set * ways_ + w];
      if (f.valid && f.tag == blk) {
        const std::size_t sub =
            (a / mem::kSubBlockBytes) % mem::kSubBlocksPerBlock;
        return (f.present & (1u << sub)) != 0;
      }
    }
    return false;
  }

  /// Coherence: drop the (two) sub-blocks of a sub-page.
  void invalidate_subpage(mem::SubPageId sp) noexcept {
    ++gen_;
    const mem::Sva base = mem::subpage_base(sp);
    const mem::BlockId blk = mem::block_of(base);
    const std::size_t set = static_cast<std::size_t>(blk) % sets_;
    for (std::size_t w = 0; w < ways_; ++w) {
      Frame& f = frames_[set * ways_ + w];
      if (f.valid && f.tag == blk) {
        const std::size_t first =
            (base / mem::kSubBlockBytes) % mem::kSubBlocksPerBlock;
        const auto per_subpage = mem::kSubPageBytes / mem::kSubBlockBytes;
        for (std::size_t i = 0; i < per_subpage; ++i) {
          f.present &= ~(1u << (first + i));
        }
        return;
      }
    }
  }

  /// Coherence/inclusion: drop an entire 2 KB block (used when the local
  /// cache evicts a page containing it).
  void invalidate_block(mem::BlockId blk) noexcept {
    ++gen_;
    const std::size_t set = static_cast<std::size_t>(blk) % sets_;
    for (std::size_t w = 0; w < ways_; ++w) {
      Frame& f = frames_[set * ways_ + w];
      if (f.valid && f.tag == blk) {
        f.valid = false;
        f.present = 0;
        return;
      }
    }
  }

  void clear() noexcept {
    ++gen_;
    for (auto& f : frames_) f = Frame{};
  }

  [[nodiscard]] std::size_t sets() const noexcept { return sets_; }
  [[nodiscard]] unsigned ways() const noexcept { return static_cast<unsigned>(ways_); }

  /// --- Checkpoint support (docs/CHECKPOINT.md). ---
  /// Frames are exposed positionally: storage order (set-major, way-minor)
  /// is part of machine state because victim() prefers the first invalid
  /// way, so restore must put each frame back into the same slot.
  [[nodiscard]] std::size_t frame_count() const noexcept { return frames_.size(); }

  /// Visit every frame slot in storage order as f(tag, present, valid).
  template <typename F>
  void for_each_frame(F&& f) const {
    for (const Frame& fr : frames_) f(fr.tag, fr.present, fr.valid);
  }

  void restore_frame(std::size_t i, mem::BlockId tag, std::uint32_t present,
                     bool valid) noexcept {
    Frame& f = frames_[i];
    f.tag = tag;
    f.present = present;
    f.valid = valid;
  }

  void restore_generation(std::uint64_t gen) noexcept { gen_ = gen; }

 private:
  struct Frame {
    mem::BlockId tag = 0;
    std::uint32_t present = 0;  // one bit per 64 B sub-block in the 2 KB block
    bool valid = false;
  };

  std::uint64_t gen_ = 0;

  Frame* find(mem::BlockId blk, std::size_t set) noexcept {
    for (std::size_t w = 0; w < ways_; ++w) {
      Frame& f = frames_[set * ways_ + w];
      if (f.valid && f.tag == blk) return &f;
    }
    return nullptr;
  }

  Frame* victim(std::size_t set, sim::Rng& rng, bool& evicted_valid) noexcept {
    // Prefer an invalid way; otherwise evict a random way (the KSR-1 policy).
    for (std::size_t w = 0; w < ways_; ++w) {
      Frame& f = frames_[set * ways_ + w];
      if (!f.valid) {
        evicted_valid = false;
        return &f;
      }
    }
    evicted_valid = true;
    return &frames_[set * ways_ + rng.below(ways_)];
  }

  std::size_t ways_;
  std::size_t sets_;
  std::vector<Frame> frames_;
};

}  // namespace ksr::cache
