# Empty compiler generated dependencies file for bench_ablation_ring.
# This may be replaced when dependencies are built.
