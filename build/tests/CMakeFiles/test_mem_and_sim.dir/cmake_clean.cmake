file(REMOVE_RECURSE
  "CMakeFiles/test_mem_and_sim.dir/test_mem_and_sim.cpp.o"
  "CMakeFiles/test_mem_and_sim.dir/test_mem_and_sim.cpp.o.d"
  "test_mem_and_sim"
  "test_mem_and_sim.pdb"
  "test_mem_and_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mem_and_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
