file(REMOVE_RECURSE
  "CMakeFiles/test_sync_helpers.dir/test_sync_helpers.cpp.o"
  "CMakeFiles/test_sync_helpers.dir/test_sync_helpers.cpp.o.d"
  "test_sync_helpers"
  "test_sync_helpers.pdb"
  "test_sync_helpers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sync_helpers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
