#pragma once

// Compile-time switch for the ALLCACHE invariant checker's hot-path hooks.
//
// The checker itself (ksr/check/checker.hpp) is always built and always
// usable — a test can construct one and call audit_all() after a run in any
// build. What this macro gates is the *per-transition* hooks inside the
// coherence commit paths: with KSR_CHECK=OFF (the default) those hooks
// compile to nothing, so release benches pay zero cost — not even a null
// test — and full-mode fingerprints are bit-identical to a tree without the
// checker. Configure with -DKSR_CHECK=ON to audit global protocol state
// after every coherence transition (see docs/CHECKING.md).
//
// The macro is defined globally by CMake (add_compile_definitions) so every
// translation unit in a build agrees on it; this header only supplies the
// OFF default.
#ifndef KSR_CHECK_ENABLED
#define KSR_CHECK_ENABLED 0
#endif

#if KSR_CHECK_ENABLED
#define KSR_CHECK_HOOK(expr) \
  do {                       \
    expr;                    \
  } while (0)
#else
#define KSR_CHECK_HOOK(expr) ((void)0)
#endif

namespace ksr::check {

/// True when per-transition checker hooks are compiled into the coherence
/// and ring hot paths (-DKSR_CHECK=ON).
inline constexpr bool kHooksCompiled = KSR_CHECK_ENABLED != 0;

}  // namespace ksr::check
