#pragma once

#include <cstddef>
#include <cstdint>

// Address geometry of the KSR-1 ALLCACHE memory system.
//
// The System Virtual Address (SVA) space is global to the machine; there is
// no fixed home location for any address (COMA). Four granularities matter:
//
//   sub-page  128 B  — unit of coherence and of transfer on the ring
//   page     16 KB  — unit of allocation in the 32 MB local cache
//   sub-block  64 B  — unit of transfer between local cache and sub-cache
//   block      2 KB  — unit of allocation in the 256 KB data sub-cache
//
// (KSR1 Principles of Operations, 1992; paper §2.)
namespace ksr::mem {

/// A byte address in the System Virtual Address space.
using Sva = std::uint64_t;

inline constexpr std::size_t kSubPageBytes = 128;
inline constexpr std::size_t kPageBytes = 16 * 1024;
inline constexpr std::size_t kSubBlockBytes = 64;
inline constexpr std::size_t kBlockBytes = 2 * 1024;

inline constexpr std::size_t kSubPagesPerPage = kPageBytes / kSubPageBytes;    // 128
inline constexpr std::size_t kSubBlocksPerBlock = kBlockBytes / kSubBlockBytes;  // 32

/// Identifier types: an Id is the address shifted down by the unit size.
using SubPageId = std::uint64_t;
using PageId = std::uint64_t;
using SubBlockId = std::uint64_t;
using BlockId = std::uint64_t;

[[nodiscard]] constexpr SubPageId subpage_of(Sva a) noexcept { return a / kSubPageBytes; }
[[nodiscard]] constexpr PageId page_of(Sva a) noexcept { return a / kPageBytes; }
[[nodiscard]] constexpr SubBlockId subblock_of(Sva a) noexcept { return a / kSubBlockBytes; }
[[nodiscard]] constexpr BlockId block_of(Sva a) noexcept { return a / kBlockBytes; }

[[nodiscard]] constexpr PageId page_of_subpage(SubPageId sp) noexcept {
  return sp / kSubPagesPerPage;
}
[[nodiscard]] constexpr Sva subpage_base(SubPageId sp) noexcept {
  return sp * kSubPageBytes;
}

/// The ring has two address-interleaved sub-rings; a sub-page travels on the
/// sub-ring selected by the low bit of its sub-page id (paper §2: "two
/// address interleaved sub-rings of 12 slots each").
[[nodiscard]] constexpr unsigned subring_of(SubPageId sp) noexcept {
  return static_cast<unsigned>(sp & 1u);
}

}  // namespace ksr::mem
