file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_cg.dir/bench_table1_cg.cpp.o"
  "CMakeFiles/bench_table1_cg.dir/bench_table1_cg.cpp.o.d"
  "bench_table1_cg"
  "bench_table1_cg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_cg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
