#pragma once

#include <algorithm>
#include <cmath>

#include "ksr/machine/config.hpp"

// Closed-form performance model of the slotted ring, used to cross-validate
// the simulator (tests compare simulated latencies/waits against these
// formulas) and to reason about the saturation point the paper observes.
//
// Model: S slots per sub-ring circulate over N positions with hop time h.
// A transaction occupies a slot for one full circulation T = N*h. With R
// independent requesters each issuing one blocking transaction every
// (T + overhead + think) seconds, per-sub-ring utilisation is
//
//   rho = (in-flight transactions * T) / (S * T) = in-flight / S
//
// and the expected injection wait is the empty-slot spacing plus an M/D/1-
// style queueing term that diverges as rho -> 1.
namespace ksr::study {

struct RingModel {
  unsigned positions = 32;
  unsigned slots_per_subring = 12;
  double hop_ns = 100.0;
  double fixed_overhead_ns = 5400.0;

  /// One full circulation.
  [[nodiscard]] double circulation_ns() const {
    return positions * hop_ns;
  }

  /// Uncontended remote-access latency: mean slot-passing wait + one
  /// circulation + protocol overhead. With S equally spaced slots a slot
  /// coordinate passes a given position every N/S hops, so the mean wait
  /// for the next (empty) slot is half that spacing.
  [[nodiscard]] double uncontended_latency_ns() const {
    const double spacing_hops =
        static_cast<double>(positions) / slots_per_subring;
    return 0.5 * spacing_hops * hop_ns + circulation_ns() +
           fixed_overhead_ns;
  }

  /// Peak data bandwidth in bytes/ns (both sub-rings, 128 B per slot per
  /// circulation) — the paper quotes "1 GByte/sec" for the full ring.
  [[nodiscard]] double peak_bandwidth_bytes_per_ns() const {
    return 2.0 * slots_per_subring * 128.0 / circulation_ns();
  }

  /// Sub-ring utilisation for `requesters` blocking cells with the given
  /// per-transaction think time (ns) between completions and next issues.
  [[nodiscard]] double utilization(unsigned requesters, double think_ns) const {
    const double period = uncontended_latency_ns() + think_ns;
    const double in_flight_per_subring =
        0.5 * requesters * circulation_ns() / period;
    return std::min(1.0, in_flight_per_subring / slots_per_subring);
  }

  /// Expected injection wait (ns) under utilisation rho: the empty-slot
  /// spacing inflated by an M/D/1-like factor rho/(2(1-rho)).
  [[nodiscard]] double expected_wait_ns(double rho) const {
    const double spacing =
        static_cast<double>(positions) / slots_per_subring * hop_ns;
    const double safe = std::min(rho, 0.999);
    return 0.5 * spacing + circulation_ns() * safe / (2.0 * (1.0 - safe));
  }

  /// Offered transactions per ns at which the ring saturates (both
  /// sub-rings): one slot serves one transaction per circulation.
  [[nodiscard]] double saturation_rate_per_ns() const {
    return 2.0 * slots_per_subring / circulation_ns();
  }

  /// Build from a machine config (leaf-ring parameters). Position count
  /// comes from the config's own topology accessor, so the analytic model
  /// tracks the simulator for any N-leaf hierarchy (cells + ARD interface
  /// whenever a level-1 ring exists).
  static RingModel from_config(const machine::MachineConfig& cfg) {
    RingModel m;
    m.positions = cfg.leaf_ring_positions();
    m.slots_per_subring = cfg.ring_slots_per_subring;
    m.hop_ns = static_cast<double>(cfg.ring_hop_ns);
    m.fixed_overhead_ns = static_cast<double>(cfg.ring_fixed_ns);
    return m;
  }

  /// The level-1 (ring-of-rings) analytic model for a multi-leaf config:
  /// fixed 34 ARD attachment positions regardless of how many are populated
  /// (the hardware always circulates the full ring).
  static RingModel level1_from_config(const machine::MachineConfig& cfg) {
    RingModel m;
    m.positions = machine::MachineConfig::kRing1Positions;
    m.slots_per_subring = cfg.ring1_slots_per_subring;
    m.hop_ns = static_cast<double>(cfg.ring1_hop_ns);
    m.fixed_overhead_ns = 2.0 * static_cast<double>(cfg.ard_crossing_ns);
    return m;
  }

  /// Closed-form uncontended latency of a cross-leaf transaction: both leaf
  /// circulations, the level-1 circulation, and the two ARD crossings —
  /// what TwoLeafRingsCommunicateThroughArds measures end to end.
  static double cross_leaf_latency_ns(const machine::MachineConfig& cfg) {
    const RingModel leaf = from_config(cfg);
    const RingModel l1 = level1_from_config(cfg);
    return 2.0 * leaf.uncontended_latency_ns() + l1.circulation_ns() +
           2.0 * static_cast<double>(cfg.ard_crossing_ns);
  }
};

}  // namespace ksr::study
