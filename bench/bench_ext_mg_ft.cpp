// Extension: the two NAS kernels the paper did not implement (MG, FT),
// completing the five-kernel suite. Their communication characters bracket
// the paper's kernels: MG's coarse levels are latency-bound fine-grain
// synchronization (like the barrier study writ small), while FT's
// per-iteration transpose moves the whole array across the partition — a
// heavier ring load than even IS's phase 2.
#include "bench_common.hpp"
#include "ksr/machine/ksr_machine.hpp"
#include "ksr/nas/ft.hpp"
#include "ksr/nas/mg.hpp"

int main(int argc, char** argv) {
  using namespace ksr;         // NOLINT
  using namespace ksr::bench;  // NOLINT

  const BenchOptions opt = BenchOptions::parse(argc, argv);
  obs::Session session = make_obs_session(opt, "ext_mg_ft");
  print_header("Extension: MG and FT kernel scalability",
               "the two NAS kernels beyond the paper's three");

  nas::MgConfig mg;
  mg.log2_n = opt.quick ? 4 : 5;
  mg.v_cycles = opt.quick ? 1 : 2;
  nas::FtConfig ft;
  ft.log2_n = opt.quick ? 3 : 4;

  const std::vector<unsigned> procs =
      opt.quick ? std::vector<unsigned>{1, 4, 8}
                : std::vector<unsigned>{1, 2, 4, 8, 16, 32};

  std::vector<std::pair<unsigned, double>> mg_m, ft_m;
  std::vector<double> ft_wait;
  for (unsigned p : procs) {
    const std::string ps = std::to_string(p);
    machine::KsrMachine m1(machine::MachineConfig::ksr1(p).scaled_by(16));
    {
      ScopedObs obs(session, m1, "mg p=" + ps);
      mg_m.emplace_back(p, run_mg(m1, mg).seconds);
    }
    machine::KsrMachine m2(machine::MachineConfig::ksr1(p).scaled_by(64));
    {
      ScopedObs obs(session, m2, "ft p=" + ps);
      ft_m.emplace_back(p, run_ft(m2, ft).seconds);
    }
    cache::PerfMonitor total;
    for (unsigned c = 0; c < p; ++c) total.add(m2.cell_pmon(c));
    ft_wait.push_back(total.ring_requests
                          ? static_cast<double>(total.inject_wait_ns) /
                                static_cast<double>(total.ring_requests)
                          : 0.0);
  }
  const auto mg_rows = study::scaling_rows(mg_m);
  const auto ft_rows = study::scaling_rows(ft_m);

  TextTable t({"procs", "MG time (s)", "MG speedup", "FT time (s)",
               "FT speedup", "FT ring wait/req (ns)"});
  for (std::size_t i = 0; i < procs.size(); ++i) {
    t.add_row({std::to_string(procs[i]),
               TextTable::num(mg_rows[i].seconds, 5),
               TextTable::num(mg_rows[i].speedup, 2),
               TextTable::num(ft_rows[i].seconds, 5),
               TextTable::num(ft_rows[i].speedup, 2),
               TextTable::num(ft_wait[i], 0)});
  }
  if (opt.csv) {
    t.print_csv();
  } else {
    t.print();
    std::cout
        << "\nExpected: MG speedup saturates early (the 2^3..8^3 coarse\n"
           "levels have less work than processors: latency floor); FT scales\n"
           "until its transpose saturates the ring — watch the wait column\n"
           "climb with P, the same diagnostic the paper reads for IS.\n";
  }
  return 0;
}
