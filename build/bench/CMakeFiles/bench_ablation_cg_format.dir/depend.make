# Empty dependencies file for bench_ablation_cg_format.
# This may be replaced when dependencies are built.
