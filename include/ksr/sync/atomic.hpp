#pragma once

#include "ksr/machine/cpu.hpp"
#include "ksr/mem/heap.hpp"
#include "ksr/sync/padded.hpp"

// Atomic read-modify-write built from the KSR primitive, exactly as the
// paper does: "Both these algorithms assume an atomic fetch_and_<op>
// instruction, which is implemented using the get_subpage primitive"
// (§3.2.2).
namespace ksr::sync {

/// Atomically add `delta` to element `i`; returns the *previous* value.
template <typename T>
T fetch_add(machine::Cpu& cpu, mem::SharedArray<T>& a, std::size_t i, T delta) {
  cpu.get_subpage(a.addr(i));
  const T old = cpu.read(a, i);
  cpu.write(a, i, static_cast<T>(old + delta));
  cpu.release_subpage(a.addr(i));
  return old;
}

template <typename T>
T fetch_add(machine::Cpu& cpu, Padded<T>& a, std::size_t i, T delta) {
  cpu.get_subpage(a.addr(i));
  const T old = a.read(cpu, i);
  a.write(cpu, i, static_cast<T>(old + delta));
  cpu.release_subpage(a.addr(i));
  return old;
}

/// Spin until `cond()` holds; `cond` should read shared state through the
/// Cpu so the polls are simulated. A couple of cycles of loop overhead are
/// charged per poll.
template <typename Cond>
void spin_until(machine::Cpu& cpu, Cond cond) {
  while (!cond()) cpu.work(2);
}

}  // namespace ksr::sync
