# Empty dependencies file for ksr_net.
# This may be replaced when dependencies are built.
