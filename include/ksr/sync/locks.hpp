#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ksr/machine/machine.hpp"
#include "ksr/sync/padded.hpp"

// The two lock families compared in §3.2.1 / Fig. 3.
namespace ksr::sync {

/// The naive hardware lock: get_subpage held for the whole critical section.
/// No FCFS guarantee (losers retry over the ring); forward progress only.
class HardwareLock {
 public:
  explicit HardwareLock(machine::Machine& m, std::string_view name = "hwlock")
      : word_(m, name, 1) {}

  void acquire(machine::Cpu& cpu) {
    obs::Tracer* tr = cpu.machine().tracer_for_cell(cpu.id());
    if (tr == nullptr) {
      cpu.get_subpage(word_.addr(0));
      return;
    }
    const sim::Time t0 = cpu.now();
    tr->log(t0, obs::kCatSync, obs::kEvLockAcquire, 0, cpu.id());
    cpu.get_subpage(word_.addr(0));
    tr->log(cpu.now(), obs::kCatSync, obs::kEvLockAcquired, 0, cpu.id(),
            static_cast<std::int64_t>(cpu.now() - t0));
  }
  void release(machine::Cpu& cpu) {
    cpu.release_subpage(word_.addr(0));
    if (obs::Tracer* tr = cpu.machine().tracer_for_cell(cpu.id())) {
      tr->log(cpu.now(), obs::kCatSync, obs::kEvLockRelease, 0, cpu.id());
    }
  }

 private:
  Padded<std::uint32_t> word_;
};

/// The paper's software read-write lock: a modified Anderson ticket lock.
/// Tickets are granted atomically (via get_subpage on the metadata
/// sub-page); consecutive read requests combine onto one ticket so readers
/// share the lock; writers wait for all readers; strict FCFS by ticket.
class TicketRwLock {
 public:
  /// `use_poststore`: push serving-counter updates to spinners (KSR only).
  explicit TicketRwLock(machine::Machine& m, std::string_view name = "rwlock",
                        bool use_poststore = true);

  // Tracing: acquisitions log sync/lock-acquire + lock-acquired, releases
  // lock-release (subject: 1 = read side, 0 = write side).
  void acquire_read(machine::Cpu& cpu);
  void release_read(machine::Cpu& cpu);
  void acquire_write(machine::Cpu& cpu);
  void release_write(machine::Cpu& cpu);

 private:
  void do_acquire_read(machine::Cpu& cpu);
  void do_acquire_write(machine::Cpu& cpu);
  // All metadata fields live on ONE sub-page guarded by get_subpage; the
  // public serving counter spins on its own sub-page.
  enum Field : std::size_t {
    kNextTicket = 0,
    kServing = 1,  // authoritative copy (under the meta lock)
    kTailIsRead = 2,
    kTailTicket = 3,
    kActiveReaders = 4,
    kFieldCount = 5,
  };

  // Reader count of each *pending* read-batch ticket, indexed by
  // ticket % kBatchSlots (at most one outstanding ticket per processor, so
  // 64 slots never collide). Nonzero iff that ticket is a read batch.
  static constexpr std::size_t kBatchSlots = 64;

  void lock_meta(machine::Cpu& cpu);
  void unlock_meta(machine::Cpu& cpu);
  /// Advance serving past a fully released ticket; caller holds meta.
  void advance(machine::Cpu& cpu);

  mem::SharedArray<std::uint32_t> meta_;  // kFieldCount words, one sub-page
  mem::SharedArray<std::uint32_t> batch_readers_;  // kBatchSlots words
  Padded<std::uint32_t> serving_pub_;              // spin target
  bool use_poststore_;
};

}  // namespace ksr::sync
