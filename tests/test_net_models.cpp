// Unit and property tests for the three interconnect models: the slotted
// pipelined ring (latency, capacity, fairness, saturation), the serializing
// bus, and the butterfly network (parallel paths, hot-spot contention).
#include <gtest/gtest.h>

#include <vector>

#include "ksr/net/bus.hpp"
#include "ksr/net/butterfly.hpp"
#include "ksr/net/ring.hpp"
#include "ksr/sim/engine.hpp"

namespace ksr::net {
namespace {

TEST(SlottedRing, UncontendedTransactionTakesOneCirculation) {
  sim::Engine eng;
  SlottedRing ring(eng, {}, "t");
  sim::Time done_at = 0;
  sim::Duration wait = 0;
  eng.at(0, [&] {
    ring.inject(5, 0, [&](sim::Duration w) {
      wait = w;
      done_at = eng.now();
    });
  });
  eng.run();
  // Injection may wait a few hops for a slot coordinate to pass position 5.
  EXPECT_EQ(done_at, wait + ring.circulation_ns());
  EXPECT_LT(wait, 10 * ring.config().hop_ns);
}

TEST(SlottedRing, PipelinesManySimultaneousTransactions) {
  sim::Engine eng;
  SlottedRing ring(eng, {}, "t");
  int done = 0;
  sim::Time last = 0;
  eng.at(0, [&] {
    for (unsigned p = 0; p < 24; ++p) {
      ring.inject(p, p % 2, [&](sim::Duration) {
        ++done;
        last = eng.now();
      });
    }
  });
  eng.run();
  EXPECT_EQ(done, 24);
  // 24 transactions across 24 slots: all pipelined, finishing within about
  // one circulation + injection spread — far less than 24 serial rounds.
  EXPECT_LT(last, 2 * ring.circulation_ns());
}

TEST(SlottedRing, CapacityBoundRespected) {
  sim::Engine eng;
  SlottedRing::Config cfg;
  cfg.slots_per_subring = 2;  // tiny ring: 2 slots per sub-ring
  SlottedRing ring(eng, cfg, "t");
  int done = 0;
  eng.at(0, [&] {
    for (int k = 0; k < 10; ++k) {
      ring.inject(0, 0, [&](sim::Duration) { ++done; });
    }
  });
  eng.run();
  EXPECT_EQ(done, 10);
  EXPECT_LE(ring.stats().max_in_flight, 2u);
}

TEST(SlottedRing, SamePositionRequestsServeFifo) {
  sim::Engine eng;
  SlottedRing ring(eng, {}, "t");
  std::vector<int> order;
  eng.at(0, [&] {
    for (int k = 0; k < 5; ++k) {
      ring.inject(3, 0, [&order, k](sim::Duration) { order.push_back(k); });
    }
  });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SlottedRing, SaturationRaisesWaits) {
  auto mean_wait = [](sim::Duration period) {
    sim::Engine eng;
    SlottedRing ring(eng, {}, "t");
    for (unsigned p = 0; p < 32; ++p) {
      for (int k = 0; k < 30; ++k) {
        // Spread arrivals across the period (not a synchronized burst).
        eng.at(static_cast<sim::Time>(k) * period + p * (period / 32),
               [&ring, p, k] { ring.inject(p, static_cast<unsigned>(k) % 2,
                                           [](sim::Duration) {}); });
      }
    }
    eng.run();
    return ring.stats().mean_wait_ns();
  };
  const double light = mean_wait(20000);  // well under capacity
  const double heavy = mean_wait(1000);   // beyond capacity
  EXPECT_LT(light, 500.0);
  EXPECT_GT(heavy, 5 * light);
}

TEST(SlottedRing, SubringsAreIndependent) {
  sim::Engine eng;
  SlottedRing::Config cfg;
  cfg.slots_per_subring = 1;
  SlottedRing ring(eng, cfg, "t");
  sim::Time done0 = 0, done1 = 0;
  eng.at(0, [&] {
    ring.inject(0, 0, [&](sim::Duration) { done0 = eng.now(); });
    ring.inject(0, 1, [&](sim::Duration) { done1 = eng.now(); });
  });
  eng.run();
  // One slot per sub-ring, but they do not contend with each other.
  EXPECT_LT(done0, 2 * ring.circulation_ns());
  EXPECT_LT(done1, 2 * ring.circulation_ns());
}

TEST(SlottedRing, InvalidInjectionRejected) {
  sim::Engine eng;
  SlottedRing ring(eng, {}, "t");
  EXPECT_THROW(ring.inject(99, 0, [](sim::Duration) {}), std::out_of_range);
  EXPECT_THROW(ring.inject(0, 7, [](sim::Duration) {}), std::out_of_range);
}

TEST(SlottedRing, ZeroSlotsPerSubringRejected) {
  // A slotless sub-ring has no coordinate to wait for: the first injection
  // would re-poll at the same simulated instant forever. Must be rejected
  // at construction, not discovered as a hang.
  sim::Engine eng;
  SlottedRing::Config cfg;
  cfg.slots_per_subring = 0;
  EXPECT_THROW(SlottedRing(eng, cfg, "t"), std::invalid_argument);
}

TEST(SlottedRing, PhaseRotationPreservesServiceGuarantees) {
  // The fuzzer's phase offset shifts which coordinates are slots, not how
  // many there are or how long a circulation takes: every phase must still
  // complete a transaction in wait + one circulation, with bounded wait.
  for (unsigned phase : {1u, 7u, 31u}) {
    sim::Engine eng;
    SlottedRing::Config cfg;
    cfg.phase = phase;
    SlottedRing ring(eng, cfg, "t");
    sim::Time done_at = 0;
    sim::Duration wait = 0;
    eng.at(0, [&] {
      ring.inject(5, 0, [&](sim::Duration w) {
        wait = w;
        done_at = eng.now();
      });
    });
    eng.run();
    EXPECT_EQ(done_at, wait + ring.circulation_ns()) << "phase=" << phase;
    EXPECT_LT(wait, static_cast<sim::Duration>(cfg.positions) * cfg.hop_ns)
        << "phase=" << phase;
  }
}

// ------------------------------------------------------------------ Bus ----

TEST(Bus, SerializesFcfs) {
  sim::Engine eng;
  Bus bus(eng, Bus::Config{1000});
  std::vector<sim::Time> completions;
  eng.at(0, [&] {
    for (int k = 0; k < 4; ++k) {
      bus.transact([&](sim::Duration) { completions.push_back(eng.now()); });
    }
  });
  eng.run();
  ASSERT_EQ(completions.size(), 4u);
  for (int k = 0; k < 4; ++k) {
    EXPECT_EQ(completions[static_cast<std::size_t>(k)],
              static_cast<sim::Time>(k + 1) * 1000);
  }
  EXPECT_EQ(bus.stats().transactions, 4u);
  EXPECT_EQ(bus.stats().busy_ns, 4000u);
}

TEST(Bus, IdleBusHasNoWait) {
  sim::Engine eng;
  Bus bus(eng, Bus::Config{1000});
  sim::Duration wait = 42;
  eng.at(5000, [&] { bus.transact([&](sim::Duration w) { wait = w; }); });
  eng.run();
  EXPECT_EQ(wait, 0u);
}

// ------------------------------------------------------------ Butterfly ----

TEST(Butterfly, StagesGrowWithPorts) {
  sim::Engine eng;
  Butterfly n16(eng, {16, 300, 600});
  EXPECT_EQ(n16.stages(), 2u);
  Butterfly n64(eng, {64, 300, 600});
  EXPECT_EQ(n64.stages(), 3u);
}

TEST(Butterfly, UncontendedRoundTripMatchesBase) {
  sim::Engine eng;
  Butterfly net(eng, {16, 300, 600});
  sim::Time done = 0;
  eng.at(0, [&] {
    net.transact(0, 7, [&](sim::Duration) { done = eng.now(); });
  });
  eng.run();
  EXPECT_EQ(done, net.base_round_trip());
}

TEST(Butterfly, DisjointPathsDoNotContend) {
  sim::Engine eng;
  Butterfly net(eng, {16, 300, 600});
  std::vector<sim::Time> done;
  eng.at(0, [&] {
    // src i -> dst i: omega link ids differ at every stage.
    for (unsigned i = 0; i < 4; ++i) {
      net.transact(i, i + 4, [&](sim::Duration) { done.push_back(eng.now()); });
    }
  });
  eng.run();
  for (sim::Time t : done) EXPECT_LE(t, net.base_round_trip() + 300);
}

TEST(Butterfly, HotSpotSerializesAtTheHomeModule) {
  sim::Engine eng;
  Butterfly net(eng, {16, 300, 600});
  std::vector<sim::Time> done;
  eng.at(0, [&] {
    for (unsigned i = 0; i < 8; ++i) {
      net.transact(i, 3, [&](sim::Duration) { done.push_back(eng.now()); });
    }
  });
  eng.run();
  // All eight target module 3: the final-stage link serializes them.
  sim::Time last = 0;
  for (sim::Time t : done) last = std::max(last, t);
  EXPECT_GT(last, net.base_round_trip() + 6 * 300);
}

}  // namespace
}  // namespace ksr::net
