// Observability-layer tests: Chrome trace exporter golden output and
// byte-stability, metrics registry aggregation and non-perturbation,
// session merge order, CLI option parsing, and the quantile clamp fix.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "ksr/machine/ksr_machine.hpp"
#include "ksr/obs/export.hpp"
#include "ksr/obs/metrics.hpp"
#include "ksr/obs/session.hpp"
#include "ksr/obs/tracer.hpp"
#include "ksr/sim/stats.hpp"
#include "ksr/study/table.hpp"
#include "ksr/sync/barrier.hpp"

namespace ksr {
namespace {

using machine::Cpu;
using machine::KsrMachine;
using machine::MachineConfig;

// ---------------------------------------------------------------- exporter

TEST(ChromeTrace, GoldenOutputForHandLoggedRecords) {
  obs::Tracer tracer;
  tracer.log(1500, obs::kCatRing, obs::kEvInject, 7, 0, 3);
  tracer.log(2000, obs::kCatSync, obs::kEvBarrierArrive, 1, 0, 0);
  tracer.log(2500, obs::kCatSync, obs::kEvBarrierDepart, 1, 0, 500);
  std::ostringstream os;
  obs::write_chrome_trace(tracer, os, "golden");
  EXPECT_EQ(
      os.str(),
      "{\"traceEvents\":[\n"
      "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":0,\"tid\":0,"
      "\"args\":{\"name\":\"golden\"}},\n"
      "{\"ph\":\"M\",\"name\":\"process_sort_index\",\"pid\":0,\"tid\":0,"
      "\"args\":{\"sort_index\":0}},\n"
      "{\"ph\":\"M\",\"name\":\"process_labels\",\"pid\":0,\"tid\":0,"
      "\"args\":{\"labels\":\"events=3 dropped=0\"}},\n"
      "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":0,\"tid\":0,"
      "\"args\":{\"name\":\"cell 0\"}},\n"
      "{\"ph\":\"i\",\"name\":\"inject\",\"cat\":\"ring\",\"ts\":1.500,"
      "\"pid\":0,\"tid\":0,\"s\":\"t\",\"args\":{\"subject\":7,\"detail\":3}},\n"
      "{\"ph\":\"B\",\"name\":\"barrier\",\"cat\":\"sync\",\"ts\":2.000,"
      "\"pid\":0,\"tid\":0,\"args\":{\"subject\":1,\"detail\":0}},\n"
      "{\"ph\":\"E\",\"name\":\"barrier\",\"cat\":\"sync\",\"ts\":2.500,"
      "\"pid\":0,\"tid\":0}\n"
      "],\"displayTimeUnit\":\"ns\"}\n");
}

TEST(ChromeTrace, NormalizesMixedClocksPerTrack) {
  // Sync/stall records carry cpu-local clocks that can run ahead of the
  // global engine clock used by ring/coherence records. In raw log order a
  // track may step backwards in time; the exporter must sort each track so
  // every thread timeline is monotone (without altering any timestamp).
  obs::Tracer tracer;
  tracer.log(9000, obs::kCatSync, obs::kEvBarrierArrive, 1, 0, 0);
  tracer.log(4000, obs::kCatRing, obs::kEvInject, 7, 0, 3);
  tracer.log(9500, obs::kCatSync, obs::kEvBarrierDepart, 1, 0, 500);
  tracer.log(2000, obs::kCatRing, obs::kEvInject, 8, 1, 3, 42);
  std::ostringstream os;
  obs::write_chrome_trace(tracer, os, "mixed");
  const std::string json = os.str();
  // Track 0 replays in timestamp order: inject (4 us) before barrier (9 us).
  const auto inject0 = json.find("\"ts\":4.000");
  const auto arrive0 = json.find("\"ts\":9.000");
  ASSERT_NE(inject0, std::string::npos);
  ASSERT_NE(arrive0, std::string::npos);
  EXPECT_LT(inject0, arrive0);
  // A nonzero aux (coherence witness) survives into the event args.
  EXPECT_NE(json.find("\"aux\":42"), std::string::npos);
  // Drop accounting rides along as process metadata.
  EXPECT_NE(json.find("\"labels\":\"events=4 dropped=0\""),
            std::string::npos);
}

std::string traced_run_json() {
  KsrMachine m(MachineConfig::ksr1(2));
  obs::Tracer tracer;
  m.attach_tracer(&tracer);
  auto arr = m.alloc<int>("a", 256);
  auto barrier = sync::make_barrier(m, sync::BarrierKind::kTournamentM);
  m.run([&](Cpu& cpu) {
    for (unsigned i = cpu.id(); i < 256; i += cpu.nproc()) cpu.write(arr, i, 1);
    barrier->arrive(cpu);
    for (unsigned i = 0; i < 256; i += 16) (void)cpu.read(arr, i);
    barrier->arrive(cpu);
  });
  std::ostringstream os;
  obs::write_chrome_trace(tracer, os, "run");
  return os.str();
}

TEST(ChromeTrace, ByteStableAcrossIdenticalRuns) {
  const std::string a = traced_run_json();
  const std::string b = traced_run_json();
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  // Well-formed enough for Perfetto: opens with the event array, closes it.
  EXPECT_EQ(a.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(a.find("],\"displayTimeUnit\":\"ns\"}"), std::string::npos);
}

// ----------------------------------------------------------------- metrics

TEST(Metrics, AggregateSumsEveryCell) {
  KsrMachine m(MachineConfig::ksr1(4));
  auto arr = m.alloc<int>("a", 1024);
  m.run([&](Cpu& cpu) {
    for (unsigned i = cpu.id(); i < 1024; i += cpu.nproc()) cpu.write(arr, i, 1);
  });
  cache::PerfMonitor manual;
  for (unsigned i = 0; i < m.nproc(); ++i) manual.add(m.cell_pmon(i));
  const cache::PerfMonitor agg = obs::MetricsRegistry::aggregate(m);
  EXPECT_EQ(agg.ring_requests, manual.ring_requests);
  EXPECT_EQ(agg.localcache_misses, manual.localcache_misses);
  EXPECT_EQ(agg.invalidations_received, manual.invalidations_received);
}

TEST(Metrics, SamplesOnSimulatedClockWithoutPerturbing) {
  auto run_once = [](obs::MetricsRegistry* reg) {
    KsrMachine m(MachineConfig::ksr1(2));
    if (reg) reg->attach(m, 50'000);
    auto arr = m.alloc<int>("a", 4096);
    m.run([&](Cpu& cpu) {
      for (unsigned i = cpu.id(); i < 4096; i += cpu.nproc()) {
        cpu.write(arr, i, 1);
        cpu.work(100);
      }
    });
    if (reg) reg->finish();
    return m.engine().events_dispatched();
  };
  const std::uint64_t bare = run_once(nullptr);
  obs::MetricsRegistry reg;
  const std::uint64_t sampled = run_once(&reg);
  EXPECT_EQ(bare, sampled);  // observers never count as dispatched events
  ASSERT_GE(reg.samples().size(), 2u);
  for (std::size_t i = 1; i < reg.samples().size(); ++i) {
    EXPECT_GT(reg.samples()[i].t, reg.samples()[i - 1].t);
    EXPECT_GE(reg.samples()[i].pmon.ring_requests,
              reg.samples()[i - 1].pmon.ring_requests);
  }
  std::ostringstream os;
  reg.write_csv(os, "jobX");
  EXPECT_EQ(os.str().rfind("job,time_ns,slot_util", 0), 0u);
  EXPECT_NE(os.str().find("\njobX,"), std::string::npos);
}

// ----------------------------------------------------------------- session

TEST(Session, MergesJobsInSubmissionOrder) {
  const std::string path = testing::TempDir() + "ksr_session_trace.json";
  obs::SessionOptions so;
  so.trace = true;
  so.trace_out = path;
  {
    obs::Session session(so, "test");
    ASSERT_TRUE(session.active());
    for (const char* label : {"job-a", "job-b"}) {
      KsrMachine m(MachineConfig::ksr1(2));
      obs::JobObs jo = session.job();
      jo.attach(m);
      auto arr = m.alloc<int>("a", 64);
      m.run([&](Cpu& cpu) {
        for (unsigned i = cpu.id(); i < 64; i += cpu.nproc()) cpu.write(arr, i, 1);
      });
      jo.finish();
      session.collect(std::move(jo), label);
    }
    session.close();
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string json = ss.str();
  const auto a = json.find("\"name\":\"job-a\"");
  const auto b = json.find("\"name\":\"job-b\"");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(b, std::string::npos);
  EXPECT_LT(a, b);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(json.find("],\"displayTimeUnit\":\"ns\"}"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Session, ReportSectionsFollowSubmissionOrderAndCsvCarriesRegions) {
  const std::string csv_path = testing::TempDir() + "ksr_session_trace.csv";
  const std::string rep_path = testing::TempDir() + "ksr_session_report.txt";
  obs::SessionOptions so;
  so.trace = true;
  so.trace_out = csv_path;
  so.report = rep_path;
  {
    obs::Session session(so, "test");
    ASSERT_TRUE(session.active());
    for (const char* label : {"first", "second"}) {
      KsrMachine m(MachineConfig::ksr1(2));
      obs::JobObs jo = session.job();
      jo.attach(m);
      auto arr = m.alloc<int>("named.region", 64);
      auto barrier = sync::make_barrier(m, sync::BarrierKind::kTournamentM);
      m.run([&](Cpu& cpu) {
        for (unsigned i = cpu.id(); i < 64; i += cpu.nproc()) {
          cpu.write(arr, i, 1);
        }
        barrier->arrive(cpu);
      });
      jo.finish();
      session.collect(std::move(jo), label);
    }
    session.close();
  }
  std::ifstream rin(rep_path);
  ASSERT_TRUE(rin.good());
  std::stringstream rss;
  rss << rin.rdbuf();
  const std::string report = rss.str();
  const auto a = report.find("=== job first ===");
  const auto b = report.find("=== job second ===");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(b, std::string::npos);
  EXPECT_LT(a, b);
  EXPECT_NE(report.find("## sharing"), std::string::npos);
  EXPECT_NE(report.find("## barriers"), std::string::npos);

  std::ifstream cin_(csv_path);
  ASSERT_TRUE(cin_.good());
  std::stringstream css;
  css << cin_.rdbuf();
  const std::string csv = css.str();
  EXPECT_EQ(csv.rfind("job,time_ns,category,event,subject,actor,detail,aux", 0),
            0u);
  EXPECT_NE(csv.find("name=named.region"), std::string::npos);
  EXPECT_NE(csv.find("# region job=first "), std::string::npos);
  EXPECT_NE(csv.find("# region job=second "), std::string::npos);
  std::remove(csv_path.c_str());
  std::remove(rep_path.c_str());
}

TEST(Session, InactiveSessionIsFreeAndInert) {
  obs::Session session(obs::SessionOptions{}, "idle");
  EXPECT_FALSE(session.active());
  KsrMachine m(MachineConfig::ksr1(2));
  obs::JobObs jo = session.job();
  jo.attach(m);  // no tracer, no metrics: must be a no-op
  EXPECT_EQ(m.tracer(), nullptr);
  jo.finish();
}

// ------------------------------------------------------------- CLI options

TEST(BenchOptions, ParsesObservabilityFlags) {
  const char* argv[] = {"bench", "--quick", "--trace=ring,sync",
                        "--trace-out=/tmp/t.json", "--metrics-csv",
                        "/tmp/m.csv", "--jobs=4"};
  const study::BenchOptions o =
      study::BenchOptions::parse(7, const_cast<char**>(argv));
  EXPECT_TRUE(o.quick);
  EXPECT_TRUE(o.trace);
  EXPECT_EQ(o.trace_cats, "ring,sync");
  EXPECT_EQ(o.trace_out, "/tmp/t.json");
  EXPECT_EQ(o.metrics_csv, "/tmp/m.csv");
  EXPECT_EQ(o.jobs, 4u);
}

TEST(BenchOptions, ParsesReportAndTraceCap) {
  const char* argv[] = {"bench", "--report=/tmp/r.txt", "--trace-cap", "4096"};
  const study::BenchOptions o =
      study::BenchOptions::parse(4, const_cast<char**>(argv));
  EXPECT_EQ(o.report, "/tmp/r.txt");
  EXPECT_EQ(o.trace_cap, 4096u);
  // --report alone does not force trace *output*; the session captures
  // records internally and only writes the profile report.
  EXPECT_FALSE(o.trace);
}

TEST(BenchOptions, RejectsZeroOrGarbageTraceCap) {
  const char* argv[] = {"bench", "--trace-cap=0", "--trace-cap=banana"};
  testing::internal::CaptureStderr();
  const study::BenchOptions o =
      study::BenchOptions::parse(3, const_cast<char**>(argv));
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_EQ(o.trace_cap, 0u);  // both rejected, default kept
  EXPECT_NE(err.find("--trace-cap"), std::string::npos);
}

TEST(BenchOptions, TraceOutImpliesTracing) {
  const char* argv[] = {"bench", "--trace-out=/tmp/t.json"};
  const study::BenchOptions o =
      study::BenchOptions::parse(2, const_cast<char**>(argv));
  EXPECT_TRUE(o.trace);
  EXPECT_TRUE(o.trace_cats.empty());
}

TEST(BenchOptions, UnknownArgumentsWarnButDoNotAbort) {
  const char* argv[] = {"bench", "--definitely-not-a-flag", "--csv"};
  testing::internal::CaptureStderr();
  const study::BenchOptions o =
      study::BenchOptions::parse(3, const_cast<char**>(argv));
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_TRUE(o.csv);  // later flags still parse
  EXPECT_NE(err.find("ignoring unknown argument"), std::string::npos);
  EXPECT_NE(err.find("--definitely-not-a-flag"), std::string::npos);
}

// -------------------------------------------------------- quantile clamping

TEST(Samples, QuantileClampsOutOfRangeArguments) {
  sim::Samples s;
  s.add(3.0);
  s.add(1.0);
  s.add(2.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 3.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 2.0);
  // The fix: out-of-range q used to index with a negative (UB) or
  // past-the-end position; now it clamps to the extremes.
  EXPECT_DOUBLE_EQ(s.quantile(-0.5), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(2.0), 3.0);
}

// ------------------------------------------------------------- determinism

TEST(Determinism, FingerprintIdenticalTracedAndUntraced) {
  auto fingerprint = [](bool traced, bool metrics) {
    KsrMachine m(MachineConfig::ksr1(4));
    obs::Tracer tracer;
    obs::MetricsRegistry reg;
    if (traced) m.attach_tracer(&tracer);
    if (metrics) reg.attach(m);
    auto arr = m.alloc<int>("a", 2048);
    auto barrier = sync::make_barrier(m, sync::BarrierKind::kTournamentM);
    m.run([&](Cpu& cpu) {
      for (int e = 0; e < 3; ++e) {
        for (unsigned i = cpu.id(); i < 2048; i += cpu.nproc()) {
          cpu.write(arr, i, e);
        }
        barrier->arrive(cpu);
      }
    });
    if (metrics) reg.finish();
    return m.engine().events_dispatched();
  };
  const std::uint64_t bare = fingerprint(false, false);
  EXPECT_EQ(bare, fingerprint(true, false));
  EXPECT_EQ(bare, fingerprint(false, true));
  EXPECT_EQ(bare, fingerprint(true, true));
}

}  // namespace
}  // namespace ksr
