#!/usr/bin/env bash
# Reproduce everything: build, run the full test suite, and regenerate every
# paper table/figure, capturing outputs at the repository root.
#
#   scripts/reproduce.sh [--quick|--full]
#
# The flag is forwarded to every bench binary (see README).
set -euo pipefail
cd "$(dirname "$0")/.."

FLAG="${1:-}"

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

: > bench_output.txt
for b in build/bench/bench_*; do
  [ -x "$b" ] || continue
  echo "===== $b $FLAG =====" | tee -a bench_output.txt
  "$b" $FLAG 2>&1 | tee -a bench_output.txt
done

echo "Done: test_output.txt, bench_output.txt"
