#pragma once

#include <cstdint>
#include <memory>
#include <string>

// Cell-set bitmask for directory state at ring-of-rings scale.
//
// The seed simulator capped machines at 64 cells so a directory entry's
// holder/placeholder sets fit one std::uint64_t. The full KSR-1 topology
// reaches 1088 cells (34 leaf rings x 32 cells), so CellMask widens the set
// while keeping the common case free: cells 0..63 live in an inline word,
// and the 16 overflow words (cells 64..1087) are heap-allocated only the
// first time such a cell is inserted. A <=64-cell machine therefore touches
// exactly the same single word the seed did, and directory entries stay
// small and cheap to move inside cache::FlatMap.
//
// Iteration order (for_each and friends) is ascending cell id — the order
// the seed's countr_zero loops produced — so snarf/invalidate visit order,
// and with it every pinned fingerprint, is unchanged on small machines.
namespace ksr::cache {

class CellMask {
 public:
  /// 34 leaf rings x 32 cells: the largest machine the ARD ring admits.
  static constexpr unsigned kMaxCells = 1088;
  static constexpr unsigned kHiWords = (kMaxCells - 64) / 64;  // 16

  CellMask() = default;

  // Move ops leave the source empty, not half-cleared. The defaulted moves
  // copied lo_ but nulled hi_, so a moved-from mask with high cells silently
  // became "low cells only" — any later read (count, serialization) saw a
  // corrupt set. FlatMap resets moved-from values, which masked the bug.
  CellMask(CellMask&& o) noexcept : lo_(o.lo_), hi_(std::move(o.hi_)) {
    o.lo_ = 0;
  }
  CellMask& operator=(CellMask&& o) noexcept {
    if (this == &o) return *this;
    lo_ = o.lo_;
    hi_ = std::move(o.hi_);
    o.lo_ = 0;
    return *this;
  }

  CellMask(const CellMask& o) : lo_(o.lo_) {
    if (o.hi_) {
      ensure_hi();
      for (unsigned w = 0; w < kHiWords; ++w) hi_[w] = o.hi_[w];
    }
  }
  CellMask& operator=(const CellMask& o) {
    if (this == &o) return *this;
    lo_ = o.lo_;
    if (o.hi_) {
      ensure_hi();
      for (unsigned w = 0; w < kHiWords; ++w) hi_[w] = o.hi_[w];
    } else if (hi_) {
      for (unsigned w = 0; w < kHiWords; ++w) hi_[w] = 0;
    }
    return *this;
  }

  void set(unsigned cell) { word_for(cell) |= bit_in_word(cell); }
  void clear(unsigned cell) {
    if (cell < 64) {
      lo_ &= ~bit_in_word(cell);
    } else if (hi_) {
      hi_[cell / 64 - 1] &= ~bit_in_word(cell);
    }
  }
  [[nodiscard]] bool test(unsigned cell) const noexcept {
    if (cell < 64) return (lo_ & bit_in_word(cell)) != 0;
    if (!hi_) return false;
    return (hi_[cell / 64 - 1] & bit_in_word(cell)) != 0;
  }

  /// Make this mask exactly {cell}.
  void assign_single(unsigned cell) {
    clear_all();
    set(cell);
  }

  void clear_all() noexcept {
    lo_ = 0;
    if (hi_) {
      for (unsigned w = 0; w < kHiWords; ++w) hi_[w] = 0;
    }
  }

  [[nodiscard]] bool none() const noexcept {
    if (lo_ != 0) return false;
    if (hi_) {
      for (unsigned w = 0; w < kHiWords; ++w) {
        if (hi_[w] != 0) return false;
      }
    }
    return true;
  }
  [[nodiscard]] bool any() const noexcept { return !none(); }

  /// True when no cell other than `cell` is set (`cell` itself may or may
  /// not be) — the "am I the sole holder?" test.
  [[nodiscard]] bool none_except(unsigned cell) const noexcept {
    for (unsigned w = 0; w < 1 + kHiWords; ++w) {
      std::uint64_t v = word(w);
      if (cell / 64 == w) v &= ~bit_in_word(cell);
      if (v != 0) return false;
    }
    return true;
  }

  [[nodiscard]] bool intersects(const CellMask& m) const noexcept {
    for (unsigned w = 0; w < 1 + kHiWords; ++w) {
      if ((word(w) & m.word(w)) != 0) return true;
    }
    return false;
  }

  /// intersects(m) ignoring `cell` on this side.
  [[nodiscard]] bool intersects_except(const CellMask& m,
                                       unsigned cell) const noexcept {
    for (unsigned w = 0; w < 1 + kHiWords; ++w) {
      std::uint64_t v = word(w);
      if (cell / 64 == w) v &= ~bit_in_word(cell);
      if ((v & m.word(w)) != 0) return true;
    }
    return false;
  }

  /// this &= ~m.
  void and_not(const CellMask& m) {
    lo_ &= ~m.lo_;
    if (hi_) {
      for (unsigned w = 0; w < kHiWords; ++w) hi_[w] &= ~m.word(w + 1);
    }
  }

  /// this &= m.
  void intersect(const CellMask& m) {
    lo_ &= m.lo_;
    if (hi_) {
      for (unsigned w = 0; w < kHiWords; ++w) hi_[w] &= m.word(w + 1);
    }
  }

  /// Keep only `cell` (if present): the seed's `mask &= bit(cell)`.
  void retain_only(unsigned cell) {
    const bool had = test(cell);
    clear_all();
    if (had) set(cell);
  }

  [[nodiscard]] unsigned count() const noexcept {
    unsigned n = popcount64(lo_);
    if (hi_) {
      for (unsigned w = 0; w < kHiWords; ++w) n += popcount64(hi_[w]);
    }
    return n;
  }

  /// Lowest set cell, or -1 when empty.
  [[nodiscard]] int first_set() const noexcept {
    for (unsigned w = 0; w < 1 + kHiWords; ++w) {
      const std::uint64_t v = word(w);
      if (v != 0) return static_cast<int>(w * 64 + ctz64(v));
    }
    return -1;
  }

  /// Visit set cells in ascending order.
  template <class F>
  void for_each(F&& f) const {
    for (unsigned w = 0; w < 1 + kHiWords; ++w) {
      std::uint64_t v = word(w);
      while (v != 0) {
        const unsigned b = ctz64(v);
        f(w * 64 + b);
        v &= v - 1;
      }
    }
  }

  /// Visit set cells except `cell`, ascending.
  template <class F>
  void for_each_except(unsigned cell, F&& f) const {
    for (unsigned w = 0; w < 1 + kHiWords; ++w) {
      std::uint64_t v = word(w);
      if (cell / 64 == w) v &= ~bit_in_word(cell);
      while (v != 0) {
        const unsigned b = ctz64(v);
        f(w * 64 + b);
        v &= v - 1;
      }
    }
  }

  /// Word `i` of the mask (0 = cells 0..63). Word 0 is the value every
  /// <=64-cell DirView / test compares against.
  [[nodiscard]] std::uint64_t word(unsigned i) const noexcept {
    if (i == 0) return lo_;
    return hi_ ? hi_[i - 1] : 0;
  }
  [[nodiscard]] std::uint64_t word0() const noexcept { return lo_; }

  [[nodiscard]] bool operator==(const CellMask& m) const noexcept {
    for (unsigned w = 0; w < 1 + kHiWords; ++w) {
      if (word(w) != m.word(w)) return false;
    }
    return true;
  }
  [[nodiscard]] bool operator!=(const CellMask& m) const noexcept {
    return !(*this == m);
  }

  /// Diagnostic form: "{0,3,65}" — readable at any machine size.
  [[nodiscard]] std::string to_string() const {
    std::string s = "{";
    bool first = true;
    for_each([&](unsigned c) {
      if (!first) s += ',';
      first = false;
      s += std::to_string(c);
    });
    s += '}';
    return s;
  }

 private:
  static constexpr std::uint64_t bit_in_word(unsigned cell) noexcept {
    return std::uint64_t{1} << (cell % 64);
  }
  static unsigned popcount64(std::uint64_t v) noexcept {
    return static_cast<unsigned>(__builtin_popcountll(v));
  }
  static unsigned ctz64(std::uint64_t v) noexcept {
    return static_cast<unsigned>(__builtin_ctzll(v));
  }

  void ensure_hi() {
    if (!hi_) hi_ = std::make_unique<std::uint64_t[]>(kHiWords);
  }
  std::uint64_t& word_for(unsigned cell) {
    if (cell < 64) return lo_;
    ensure_hi();
    return hi_[cell / 64 - 1];
  }

  std::uint64_t lo_ = 0;
  std::unique_ptr<std::uint64_t[]> hi_;  // cells 64..1087, lazily allocated
};

}  // namespace ksr::cache
