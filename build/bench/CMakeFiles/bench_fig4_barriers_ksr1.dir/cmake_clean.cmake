file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_barriers_ksr1.dir/bench_fig4_barriers_ksr1.cpp.o"
  "CMakeFiles/bench_fig4_barriers_ksr1.dir/bench_fig4_barriers_ksr1.cpp.o.d"
  "bench_fig4_barriers_ksr1"
  "bench_fig4_barriers_ksr1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_barriers_ksr1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
