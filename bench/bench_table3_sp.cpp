// Reproduces Table 3: Scalar Pentadiagonal time per iteration and speedup
// vs processors (optimised variant: padded layout + prefetch, as the paper's
// Table 3 configuration).
#include "bench_common.hpp"
#include "ksr/machine/ksr_machine.hpp"
#include "ksr/nas/sp.hpp"

int main(int argc, char** argv) {
  using namespace ksr;         // NOLINT
  using namespace ksr::bench;  // NOLINT

  const BenchOptions opt = BenchOptions::parse(argc, argv);
  obs::Session session = make_obs_session(opt, "table3_sp");
  print_header("Scalar Pentadiagonal application scalability",
               "Table 3, Section 3.3.3");

  nas::SpConfig cfg;
  cfg.n = opt.quick ? 16 : 32;  // paper: 64^3; scaled with the caches
  cfg.iterations = opt.quick ? 1 : 2;
  cfg.padded_layout = true;
  cfg.use_prefetch = true;
  const unsigned scale = 16;

  const std::vector<unsigned> procs =
      opt.quick ? std::vector<unsigned>{1, 4, 16}
                : std::vector<unsigned>{1, 2, 4, 8, 16, 31};

  std::vector<std::pair<unsigned, double>> measured;
  for (unsigned p : procs) {
    machine::KsrMachine m(machine::MachineConfig::ksr1(p).scaled_by(scale));
    ScopedObs obs(session, m, "sp p=" + std::to_string(p));
    const nas::SpResult r = run_sp(m, cfg);
    measured.emplace_back(p, r.seconds_per_iteration);
  }

  TextTable t({"Processors", "Time per iteration (s)", "Speedup"});
  for (const auto& row : study::scaling_rows(measured)) {
    t.add_row({std::to_string(row.p), TextTable::num(row.seconds, 5),
               row.p == 1 ? "-" : TextTable::num(row.speedup, 1)});
  }
  std::cout << "data-size = " << cfg.n << "x" << cfg.n << "x" << cfg.n
            << ", machine caches scaled by 1/" << scale << "\n";
  if (opt.csv) {
    t.print_csv();
  } else {
    t.print();
    std::cout
        << "\nPaper expectations (Table 3, 64^3 on real hardware): nearly\n"
           "linear scaling — 2.0x at 2, 3.9x at 4, 7.7x at 8, 15.3x at 16,\n"
           "27.8x at 31 processors.\n";
  }
  return 0;
}
