# Empty dependencies file for test_nas_kernels.
# This may be replaced when dependencies are built.
