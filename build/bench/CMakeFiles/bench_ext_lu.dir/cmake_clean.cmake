file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_lu.dir/bench_ext_lu.cpp.o"
  "CMakeFiles/bench_ext_lu.dir/bench_ext_lu.cpp.o.d"
  "bench_ext_lu"
  "bench_ext_lu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_lu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
