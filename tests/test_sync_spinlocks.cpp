// Correctness of the classic spin-lock family on all machine models:
// mutual exclusion under contention (parameterized sweep), FCFS for the
// queue-based locks, and the qualitative traffic ordering on the ring.
#include <gtest/gtest.h>

#include <string>

#include "ksr/machine/factory.hpp"
#include "ksr/sync/spinlocks.hpp"

namespace ksr::sync {
namespace {

using machine::Cpu;
using machine::MachineConfig;
using machine::MachineKind;

struct Param {
  SpinLockKind kind;
  MachineKind machine;
  unsigned nproc;
};

std::string param_name(const testing::TestParamInfo<Param>& info) {
  std::string n{to_string(info.param.kind)};
  n += "_";
  n += machine::to_string(info.param.machine);
  n += "_p" + std::to_string(info.param.nproc);
  for (auto& c : n) {
    if (!isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return n;
}

MachineConfig config_for(MachineKind k, unsigned p) {
  switch (k) {
    case MachineKind::kKsr1: return MachineConfig::ksr1(p);
    case MachineKind::kKsr2: return MachineConfig::ksr2(p);
    case MachineKind::kSymmetry: return MachineConfig::symmetry(p);
    case MachineKind::kButterfly: return MachineConfig::butterfly(p);
  }
  return MachineConfig::ksr1(p);
}

class SpinLockCorrectness : public testing::TestWithParam<Param> {};

TEST_P(SpinLockCorrectness, MutualExclusionAndNoLostUpdates) {
  const Param p = GetParam();
  auto m = machine::make_machine(config_for(p.machine, p.nproc));
  auto lock = make_spinlock(*m, p.kind);
  auto data = m->alloc<int>("data", 2);  // counter + in-section flag
  bool overlap = false;
  constexpr int kOps = 12;
  m->run([&](Cpu& cpu) {
    for (int i = 0; i < kOps; ++i) {
      lock->acquire(cpu);
      if (cpu.read(data, 1) != 0) overlap = true;
      cpu.write(data, 1, 1);
      cpu.write(data, 0, cpu.read(data, 0) + 1);
      cpu.work(250);
      cpu.write(data, 1, 0);
      lock->release(cpu);
      cpu.work(cpu.rng().below(900));
    }
  });
  EXPECT_FALSE(overlap);
  EXPECT_EQ(data.value(0), static_cast<int>(p.nproc) * kOps);
}

std::vector<Param> params_for(MachineKind machine,
                              std::initializer_list<unsigned> procs) {
  std::vector<Param> out;
  for (SpinLockKind k : all_spinlock_kinds()) {
    for (unsigned p : procs) out.push_back({k, machine, p});
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    Ksr1, SpinLockCorrectness,
    testing::ValuesIn(params_for(MachineKind::kKsr1, {1u, 2u, 5u, 8u})),
    param_name);
INSTANTIATE_TEST_SUITE_P(
    Symmetry, SpinLockCorrectness,
    testing::ValuesIn(params_for(MachineKind::kSymmetry, {4u})), param_name);
INSTANTIATE_TEST_SUITE_P(
    Butterfly, SpinLockCorrectness,
    testing::ValuesIn(params_for(MachineKind::kButterfly, {4u})), param_name);

// FCFS: ticket, Anderson and MCS-queue grant strictly in arrival order.
class SpinLockFcfs : public testing::TestWithParam<SpinLockKind> {};

TEST_P(SpinLockFcfs, GrantsInArrivalOrder) {
  machine::KsrMachine m(MachineConfig::ksr1(5));
  auto lock = make_spinlock(m, GetParam());
  auto order = m.alloc<int>("order", 8);
  m.run([&](Cpu& cpu) {
    cpu.work(30000 * (cpu.id() + 1));  // unambiguous staggered arrivals
    lock->acquire(cpu);
    const int k = cpu.read(order, 0);
    cpu.write(order, 0, k + 1);
    cpu.write(order, static_cast<std::size_t>(1 + k),
              static_cast<int>(cpu.id()));
    cpu.work(120000);  // hold long enough that everyone queues behind
    lock->release(cpu);
  });
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(order.value(static_cast<std::size_t>(1 + i)), i);
  }
}

INSTANTIATE_TEST_SUITE_P(QueueLocks, SpinLockFcfs,
                         testing::Values(SpinLockKind::kTicket,
                                         SpinLockKind::kAnderson,
                                         SpinLockKind::kMcsQueue),
                         [](const testing::TestParamInfo<SpinLockKind>& i) {
                           std::string n{to_string(i.param)};
                           for (auto& c : n) {
                             if (!isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return n;
                         });

// Qualitative claim behind the MCS paper: per-hand-off interconnect traffic
// is bounded for queue locks but grows with waiters for naive test&set.
TEST(SpinLockTraffic, QueueLockBeatsNaiveTasUnderContention) {
  auto ring_requests = [](SpinLockKind kind) {
    machine::KsrMachine m(MachineConfig::ksr1(8));
    auto lock = make_spinlock(m, kind);
    const auto res = m.run([&](Cpu& cpu) {
      for (int i = 0; i < 10; ++i) {
        lock->acquire(cpu);
        cpu.work(400);
        lock->release(cpu);
        cpu.work(cpu.rng().below(400));
      }
    });
    return res.pmon.ring_requests + res.pmon.ring_nacks;
  };
  EXPECT_LT(ring_requests(SpinLockKind::kMcsQueue),
            ring_requests(SpinLockKind::kTestAndSet));
}

}  // namespace
}  // namespace ksr::sync
