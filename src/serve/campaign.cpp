#include "ksr/serve/campaign.hpp"

#include <cstdio>

#include "ksr/ckpt/checkpoint.hpp"

namespace ksr::serve {

namespace {

/// Overlay `layer`'s members onto `base` (replace-or-append).
Json merge(const Json& base, const Json& layer) {
  Json out = base.is_object() ? base : Json::object();
  for (const auto& [k, v] : layer.members()) out.set(k, v);
  return out;
}

bool expand_sweep(const Json& manifest_base, const Json& sweep,
                  std::vector<JobSpec>* out, std::string* err) {
  if (!sweep.is_object()) {
    *err = "manifest: each sweep must be an object";
    return false;
  }
  Json base = manifest_base;
  if (const Json* sb = sweep.find("base"); sb != nullptr) {
    if (!sb->is_object()) {
      *err = "manifest: sweep 'base' must be an object";
      return false;
    }
    base = merge(base, *sb);
  }
  const Json* axes = sweep.find("axes");
  if (axes != nullptr && !axes->is_object()) {
    *err = "manifest: sweep 'axes' must be an object";
    return false;
  }
  for (const auto& [k, v] : sweep.members()) {
    if (k != "base" && k != "axes") {
      *err = "manifest: unknown sweep key '" + k + "'";
      return false;
    }
  }
  // Cross product of the axes, manifest order, later axes fastest — a
  // deterministic job order so the result database is byte-stable.
  std::vector<Json> combos{base};
  if (axes != nullptr) {
    for (const auto& [axis, values] : axes->members()) {
      if (!values.is_array() || values.items().empty()) {
        *err = "manifest: axis '" + axis + "' must be a non-empty array";
        return false;
      }
      std::vector<Json> next;
      next.reserve(combos.size() * values.items().size());
      for (const Json& c : combos) {
        for (const Json& v : values.items()) {
          Json merged = c;
          merged.set(axis, v);
          next.push_back(std::move(merged));
        }
      }
      combos = std::move(next);
    }
  }
  for (const Json& c : combos) {
    JobSpec spec;
    if (!JobSpec::from_json(c, &spec, err)) return false;
    const std::string bad = spec.validate();
    if (!bad.empty()) {
      *err = "manifest: " + bad;
      return false;
    }
    out->push_back(std::move(spec));
  }
  return true;
}

}  // namespace

bool expand_manifest(const Json& manifest, Campaign* out, std::string* err) {
  if (!manifest.is_object()) {
    *err = "manifest must be a JSON object";
    return false;
  }
  Campaign c;
  if (const Json* name = manifest.find("name"); name != nullptr) {
    if (!name->is_string()) {
      *err = "manifest: 'name' must be a string";
      return false;
    }
    c.name = name->as_string();
  } else {
    c.name = "campaign";
  }
  Json base = Json::object();
  if (const Json* b = manifest.find("base"); b != nullptr) {
    if (!b->is_object()) {
      *err = "manifest: 'base' must be an object";
      return false;
    }
    base = *b;
  }
  const Json* sweeps = manifest.find("sweeps");
  if (sweeps == nullptr || !sweeps->is_array() || sweeps->items().empty()) {
    *err = "manifest: 'sweeps' must be a non-empty array";
    return false;
  }
  for (const auto& [k, v] : manifest.members()) {
    if (k != "name" && k != "base" && k != "sweeps") {
      *err = "manifest: unknown key '" + k + "'";
      return false;
    }
  }
  for (const Json& sweep : sweeps->items()) {
    if (!expand_sweep(base, sweep, &c.jobs, err)) return false;
  }
  if (c.jobs.empty()) {
    *err = "manifest expanded to zero jobs";
    return false;
  }
  *out = std::move(c);
  return true;
}

CampaignOutcome run_campaign(const Campaign& campaign, ServeCore& core,
                             const std::string& out_prefix) {
  const std::vector<ServeCore::Response> rs = core.submit_batch(campaign.jobs);

  CampaignOutcome outcome;
  outcome.jobs = rs.size();
  // Deterministic result database: no wall clocks, no cached flags — a
  // resumed campaign must reproduce the cold run's files byte for byte.
  std::string jsonl;
  std::string csv =
      "index,workload,machine,procs,scale,key,events_dispatched,seconds\n";
  for (std::size_t i = 0; i < rs.size(); ++i) {
    const ServeCore::Response& r = rs[i];
    const JobSpec& spec = campaign.jobs[i];
    if (r.ok) {
      r.cached ? ++outcome.hits : ++outcome.executed;
    } else {
      ++outcome.failures;
    }
    std::fprintf(stderr, "[campaign] job=%zu/%zu key=%s %s\n", i + 1,
                 rs.size(), r.key.c_str(),
                 r.ok ? (r.cached ? "hit" : "run")
                      : ("FAILED: " + r.error).c_str());

    jsonl += "{\"index\":" + std::to_string(i) + ",\"key\":\"" + r.key +
             "\",\"spec\":";
    spec.to_json().write(&jsonl);
    if (r.ok) {
      jsonl += ",\"result\":";
      jsonl += r.result;  // verbatim cached bytes
    } else {
      jsonl += ",\"error\":";
      Json::str(r.error).write(&jsonl);
    }
    jsonl += "}\n";

    std::string events;
    std::string seconds;
    if (r.ok) {
      std::string perr;
      const Json result = Json::parse(r.result, &perr);
      if (const Json* e = result.find("events_dispatched"); e != nullptr) {
        events = e->dump();
      }
      if (const Json* s = result.find("seconds"); s != nullptr) {
        seconds = s->dump();
      }
    }
    csv += std::to_string(i) + ',' + spec.workload + ',' + spec.machine +
           ',' + std::to_string(spec.procs) + ',' +
           std::to_string(spec.scale) + ',' + r.key + ',' + events + ',' +
           seconds + '\n';
  }
  if (!out_prefix.empty()) {
    ckpt::atomic_write_file(out_prefix + ".jsonl", jsonl);
    ckpt::atomic_write_file(out_prefix + ".csv", csv);
  }
  std::fprintf(stderr,
               "[campaign] name=%s jobs=%zu hits=%zu executed=%zu "
               "failures=%zu hit_rate_pct=%u\n",
               campaign.name.c_str(), outcome.jobs, outcome.hits,
               outcome.executed, outcome.failures, outcome.hit_rate_pct());
  return outcome;
}

}  // namespace ksr::serve
