#!/usr/bin/env bash
# Host-side performance harness for the simulator itself.
#
#   scripts/bench_host.sh [--build-dir DIR] [--quick] [--out FILE]
#   scripts/bench_host.sh --check [--build-dir DIR]
#
# Runs the google-benchmark microbenches (bench_sim_throughput) plus the two
# event-heavy paper binaries (bench_table2_is, bench_fig4_barriers_ksr1) and
# merges everything into a single JSON report (default: BENCH_host.json at
# the repository root) via bench/report.py. Each paper binary prints a
#
#   [host] bench=<name> events_dispatched=<n> wall_ms=<ms>
#
# line on stderr (see bench/bench_common.hpp); events_dispatched is a
# bit-determinism fingerprint — host-side optimisation work must never
# change it.
#
# --check is a fast smoke mode for CI (the `perf-smoke` ctest label): it
# runs the quick variants, re-runs one binary to assert the fingerprint is
# reproducible, runs one paper binary with --jobs 1 and --jobs 4 to assert
# the parallel sweep runner's determinism contract (events_dispatched and
# the --csv stream must be byte-identical for any job count), and exits
# non-zero on any failure. It writes only to a temporary directory.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=build
QUICK=0
CHECK=0
OUT=BENCH_host.json

while [ $# -gt 0 ]; do
  case "$1" in
    --build-dir) BUILD_DIR="$2"; shift 2 ;;
    --quick)     QUICK=1; shift ;;
    --check)     CHECK=1; QUICK=1; shift ;;
    --out)       OUT="$2"; shift 2 ;;
    *) echo "unknown option: $1" >&2; exit 2 ;;
  esac
done

for bin in bench_sim_throughput bench_table2_is bench_fig4_barriers_ksr1 \
           bench_fig8_speedup; do
  if [ ! -x "$BUILD_DIR/bench/$bin" ]; then
    echo "bench_host.sh: $BUILD_DIR/bench/$bin not built (cmake --build $BUILD_DIR)" >&2
    exit 1
  fi
done

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

if [ "$CHECK" = 1 ]; then
  MIN_TIME=0.05
  GBENCH_FILTER='--benchmark_filter=BM_(EngineEventDispatch|FiberSwitch|RingTransaction|CoherentReadHit)'
else
  MIN_TIME=1
  GBENCH_FILTER='--benchmark_filter=.'
fi

echo "== bench_sim_throughput =="
"$BUILD_DIR/bench/bench_sim_throughput" "$GBENCH_FILTER" \
  "--benchmark_min_time=$MIN_TIME" \
  --benchmark_format=json > "$TMP/gbench.json"

PAPER_FLAG=""
[ "$QUICK" = 1 ] && PAPER_FLAG="--quick"

run_paper() {  # $1 = binary name, $2 = output tag, $3.. = extra flags
  local bin="$1" tag="$2"
  shift 2
  echo "== $bin $PAPER_FLAG $* =="
  "$BUILD_DIR/bench/$bin" $PAPER_FLAG "$@" --csv \
    > "$TMP/$tag.csv" 2> "$TMP/$tag.host"
  grep '^\[host\]' "$TMP/$tag.host"
}

fingerprint() {  # $1 = output tag
  sed -n 's/.*events_dispatched=\([0-9]*\).*/\1/p' "$TMP/$1.host"
}

run_paper bench_table2_is table2_is
run_paper bench_fig4_barriers_ksr1 fig4

if [ "$QUICK" = 0 ]; then
  # Seed compatibility: the sharded directory in single-domain mode must
  # reproduce the pre-shard protocol bit for bit (DESIGN.md §7). These are
  # the full-size pinned fingerprints; --check pins the quick table2_is
  # variant (574025) below.
  fp_t2=$(fingerprint table2_is)
  fp_f4=$(fingerprint fig4)
  if [ "$fp_t2" != "16218825" ] || [ "$fp_f4" != "8844467" ]; then
    echo "bench_host.sh FAILED: pinned seed fingerprints moved" \
         "(table2_is=$fp_t2 want 16218825, fig4=$fp_f4 want 8844467)" >&2
    exit 1
  fi
fi

if [ "$CHECK" = 1 ]; then
  # Determinism smoke: a second run must reproduce the fingerprint exactly.
  run_paper bench_fig4_barriers_ksr1 fig4_rerun
  fp1=$(fingerprint fig4)
  fp2=$(fingerprint fig4_rerun)
  if [ -z "$fp1" ] || [ "$fp1" != "$fp2" ]; then
    echo "bench_host.sh --check FAILED: events_dispatched not reproducible" \
         "($fp1 vs $fp2)" >&2
    exit 1
  fi
  if ! cmp -s "$TMP/fig4.csv" "$TMP/fig4_rerun.csv"; then
    echo "bench_host.sh --check FAILED: --csv output not reproducible" >&2
    exit 1
  fi
  # Parallel-runner determinism: sharding a sweep over 4 host threads must
  # change neither the event fingerprint nor a byte of the CSV output.
  run_paper bench_table2_is table2_is_j1 --jobs 1
  run_paper bench_table2_is table2_is_j4 --jobs 4
  fpj1=$(fingerprint table2_is_j1)
  fpj4=$(fingerprint table2_is_j4)
  if [ "$fpj1" != "574025" ]; then
    echo "bench_host.sh --check FAILED: pinned quick table2_is fingerprint" \
         "moved ($fpj1 want 574025)" >&2
    exit 1
  fi
  if [ -z "$fpj1" ] || [ "$fpj1" != "$fpj4" ]; then
    echo "bench_host.sh --check FAILED: events_dispatched differs between" \
         "--jobs 1 and --jobs 4 ($fpj1 vs $fpj4)" >&2
    exit 1
  fi
  if ! cmp -s "$TMP/table2_is_j1.csv" "$TMP/table2_is_j4.csv"; then
    echo "bench_host.sh --check FAILED: --csv output differs between" \
         "--jobs 1 and --jobs 4" >&2
    exit 1
  fi
  # Single-simulation parallel engine determinism (docs/PARALLEL.md):
  # threading one simulation over 4 host threads must change neither the
  # event fingerprint nor a byte of the CSV output vs --sim-threads 1.
  run_paper bench_table2_is table2_is_st1 --jobs 1 --sim-threads 1
  run_paper bench_table2_is table2_is_st4 --jobs 1 --sim-threads 4
  fpst1=$(fingerprint table2_is_st1)
  fpst4=$(fingerprint table2_is_st4)
  if [ -z "$fpst1" ] || [ "$fpst1" != "$fpst4" ]; then
    echo "bench_host.sh --check FAILED: events_dispatched differs between" \
         "--sim-threads 1 and --sim-threads 4 ($fpst1 vs $fpst4)" >&2
    exit 1
  fi
  if ! cmp -s "$TMP/table2_is_st1.csv" "$TMP/table2_is_st4.csv"; then
    echo "bench_host.sh --check FAILED: --csv output differs between" \
         "--sim-threads 1 and --sim-threads 4" >&2
    exit 1
  fi
  # Observability non-perturbation: tracing + metrics on must change neither
  # the event fingerprint nor a byte of the CSV stream, and the merged trace
  # must be a loadable Chrome trace-event document.
  run_paper bench_fig4_barriers_ksr1 fig4_traced \
    --trace "--trace-out=$TMP/fig4_trace.json" \
    "--metrics-csv=$TMP/fig4_metrics.csv"
  fpt=$(fingerprint fig4_traced)
  if [ -z "$fpt" ] || [ "$fp1" != "$fpt" ]; then
    echo "bench_host.sh --check FAILED: events_dispatched changes when" \
         "tracing is on ($fp1 vs $fpt)" >&2
    exit 1
  fi
  if ! cmp -s "$TMP/fig4.csv" "$TMP/fig4_traced.csv"; then
    echo "bench_host.sh --check FAILED: --csv output changes when tracing" \
         "is on" >&2
    exit 1
  fi
  if ! python3 -c "
import json, sys
d = json.load(open('$TMP/fig4_trace.json'))
assert isinstance(d['traceEvents'], list) and d['traceEvents'], 'empty trace'
"; then
    echo "bench_host.sh --check FAILED: fig4 trace JSON is not loadable" >&2
    exit 1
  fi
  if [ ! -s "$TMP/fig4_metrics.csv" ]; then
    echo "bench_host.sh --check FAILED: fig4 metrics CSV is empty" >&2
    exit 1
  fi
  # Profile-report non-perturbation: --report drives the same tracer but
  # must change neither the event fingerprint nor a byte of the CSV stream,
  # and the report itself must be byte-identical for any --jobs count (the
  # sweep merges per-job sections in submission order).
  run_paper bench_table2_is table2_is_rep_j1 --jobs 1 \
    "--report=$TMP/report_j1.txt"
  run_paper bench_table2_is table2_is_rep_j4 --jobs 4 \
    "--report=$TMP/report_j4.txt"
  fpr=$(fingerprint table2_is_rep_j1)
  if [ -z "$fpr" ] || [ "$fpj1" != "$fpr" ]; then
    echo "bench_host.sh --check FAILED: events_dispatched changes when" \
         "--report is on ($fpj1 vs $fpr)" >&2
    exit 1
  fi
  if ! cmp -s "$TMP/table2_is_j1.csv" "$TMP/table2_is_rep_j1.csv"; then
    echo "bench_host.sh --check FAILED: --csv output changes when --report" \
         "is on" >&2
    exit 1
  fi
  if [ ! -s "$TMP/report_j1.txt" ]; then
    echo "bench_host.sh --check FAILED: --report wrote no profile" >&2
    exit 1
  fi
  if ! cmp -s "$TMP/report_j1.txt" "$TMP/report_j4.txt"; then
    echo "bench_host.sh --check FAILED: profile report differs between" \
         "--jobs 1 and --jobs 4" >&2
    exit 1
  fi
  if ! grep -q '^## sharing' "$TMP/report_j1.txt"; then
    echo "bench_host.sh --check FAILED: profile report has no sharing" \
         "section" >&2
    exit 1
  fi
  # Scale-out determinism: a 128-cell sharded-directory machine partitioned
  # into four domains must produce the same fingerprint and CSV bytes
  # whether the domains run on one host thread or four (docs/PARALLEL.md).
  run_paper bench_fig8_speedup scaleout_st1 --scale-out --jobs 1 --sim-threads 1
  run_paper bench_fig8_speedup scaleout_st4 --scale-out --jobs 1 --sim-threads 4
  fpso1=$(fingerprint scaleout_st1)
  fpso4=$(fingerprint scaleout_st4)
  if [ -z "$fpso1" ] || [ "$fpso1" != "$fpso4" ]; then
    echo "bench_host.sh --check FAILED: scale-out events_dispatched differs" \
         "between --sim-threads 1 and 4 ($fpso1 vs $fpso4)" >&2
    exit 1
  fi
  if ! cmp -s "$TMP/scaleout_st1.csv" "$TMP/scaleout_st4.csv"; then
    echo "bench_host.sh --check FAILED: scale-out --csv output differs" \
         "between --sim-threads 1 and 4" >&2
    exit 1
  fi
  # Checkpoint round-trip (docs/CHECKPOINT.md): the warm-start fig8 sweep
  # (each no-prefetch IS point forks from a checkpoint captured at the
  # prefetch point's warm-up boundary) must print byte-identical results to
  # the cold-start sweep that re-simulates every warm-up, and its [host]
  # line must record the skipped warm-up wall time as warm_saved_ms=.
  run_paper bench_fig8_speedup fig8_cold --cold-start --jobs 1 --sim-threads 1
  run_paper bench_fig8_speedup fig8_warm --warm-start --jobs 1 --sim-threads 1
  fpc=$(fingerprint fig8_cold)
  fpw=$(fingerprint fig8_warm)
  if [ -z "$fpc" ] || [ "$fpc" != "$fpw" ]; then
    echo "bench_host.sh --check FAILED: warm-start events_dispatched differs" \
         "from cold-start ($fpw vs $fpc)" >&2
    exit 1
  fi
  if ! cmp -s "$TMP/fig8_cold.csv" "$TMP/fig8_warm.csv"; then
    echo "bench_host.sh --check FAILED: warm-start --csv output differs" \
         "from cold-start (checkpoint restore is not bit-exact)" >&2
    exit 1
  fi
  if ! grep -q 'warm_saved_ms=' "$TMP/fig8_warm.host"; then
    echo "bench_host.sh --check FAILED: warm-start [host] line records no" \
         "warm_saved_ms field" >&2
    exit 1
  fi
  # Topology-report determinism (docs/OBSERVABILITY.md): --topo-report must
  # not perturb the fingerprint or the --csv stream, and the report bytes
  # must be identical across --jobs counts (every field is a simulated
  # integer, merged in submission order).
  run_paper bench_table2_is table2_is_topo_j1 --jobs 1 \
    "--topo-report=$TMP/topo_j1.txt"
  run_paper bench_table2_is table2_is_topo_j4 --jobs 4 \
    "--topo-report=$TMP/topo_j4.txt"
  fptopo=$(fingerprint table2_is_topo_j1)
  if [ -z "$fptopo" ] || [ "$fpj1" != "$fptopo" ]; then
    echo "bench_host.sh --check FAILED: events_dispatched changes when" \
         "--topo-report is on ($fpj1 vs $fptopo)" >&2
    exit 1
  fi
  if ! cmp -s "$TMP/table2_is_j1.csv" "$TMP/table2_is_topo_j1.csv"; then
    echo "bench_host.sh --check FAILED: --csv output changes when" \
         "--topo-report is on" >&2
    exit 1
  fi
  if ! cmp -s "$TMP/topo_j1.txt" "$TMP/topo_j4.txt"; then
    echo "bench_host.sh --check FAILED: topo report differs between" \
         "--jobs 1 and --jobs 4" >&2
    exit 1
  fi
  if ! grep -q '^## topology' "$TMP/topo_j1.txt"; then
    echo "bench_host.sh --check FAILED: topo report has no topology" \
         "section" >&2
    exit 1
  fi
  # ... and across --sim-threads on the multi-domain scale-out machines,
  # including the traffic-heatmap CSV and the boundary-channel section that
  # only a multi-domain run can produce.
  run_paper bench_fig8_speedup scaleout_topo_st1 --scale-out --jobs 1 \
    --sim-threads 1 "--topo-report=$TMP/topo_st1.txt"
  run_paper bench_fig8_speedup scaleout_topo_st4 --scale-out --jobs 1 \
    --sim-threads 4 "--topo-report=$TMP/topo_st4.txt"
  fpsot1=$(fingerprint scaleout_topo_st1)
  if [ -z "$fpsot1" ] || [ "$fpso1" != "$fpsot1" ]; then
    echo "bench_host.sh --check FAILED: scale-out events_dispatched changes" \
         "when --topo-report is on ($fpso1 vs $fpsot1)" >&2
    exit 1
  fi
  if ! cmp -s "$TMP/topo_st1.txt" "$TMP/topo_st4.txt"; then
    echo "bench_host.sh --check FAILED: topo report differs between" \
         "--sim-threads 1 and --sim-threads 4" >&2
    exit 1
  fi
  if ! cmp -s "$TMP/topo_st1.txt.matrix.csv" "$TMP/topo_st4.txt.matrix.csv"; then
    echo "bench_host.sh --check FAILED: traffic matrix CSV differs between" \
         "--sim-threads 1 and --sim-threads 4" >&2
    exit 1
  fi
  if ! grep -q '^## boundary channels' "$TMP/topo_st1.txt"; then
    echo "bench_host.sh --check FAILED: multi-domain topo report has no" \
         "boundary-channel section" >&2
    exit 1
  fi
  if ! grep -q '^\[host\] point ' "$TMP/scaleout_topo_st1.host"; then
    echo "bench_host.sh --check FAILED: scale-out run printed no [host]" \
         "point telemetry lines" >&2
    exit 1
  fi
  # Serving-layer equivalence (docs/SERVING.md): the fig8_quick campaign
  # manifest expands to the same six points the direct bench sweeps, so the
  # sum of its per-job events_dispatched must equal the direct [host]
  # fingerprint; a second pass over the same store must be 100% cache hits
  # with a byte-identical result database.
  CAMPAIGN_ARGS=()
  if [ -x "$BUILD_DIR/tools/ksrsim" ]; then
    run_paper bench_fig8_speedup fig8_direct
    fpd=$(fingerprint fig8_direct)
    "$BUILD_DIR/tools/ksrsim" campaign presets/campaigns/fig8_quick.json \
      --store "$TMP/campaign_store" --out "$TMP/fig8_cold_db" \
      2> "$TMP/campaign_cold.log"
    "$BUILD_DIR/tools/ksrsim" campaign presets/campaigns/fig8_quick.json \
      --store "$TMP/campaign_store" --out "$TMP/fig8_warm_db" \
      2> "$TMP/campaign_warm.log"
    fpcamp=$(python3 -c "
import json, sys
print(sum(json.loads(l)['result']['events_dispatched']
          for l in open('$TMP/fig8_cold_db.jsonl') if l.strip()))
")
    if [ -z "$fpd" ] || [ "$fpcamp" != "$fpd" ]; then
      echo "bench_host.sh --check FAILED: campaign events_dispatched sum" \
           "differs from the direct fig8 sweep ($fpcamp vs $fpd)" >&2
      exit 1
    fi
    if ! grep -q 'hit_rate_pct=100' "$TMP/campaign_warm.log"; then
      echo "bench_host.sh --check FAILED: second campaign pass was not 100%" \
           "cache hits" >&2
      cat "$TMP/campaign_warm.log" >&2
      exit 1
    fi
    if ! cmp -s "$TMP/fig8_cold_db.jsonl" "$TMP/fig8_warm_db.jsonl" ||
       ! cmp -s "$TMP/fig8_cold_db.csv" "$TMP/fig8_warm_db.csv"; then
      echo "bench_host.sh --check FAILED: campaign result database differs" \
           "between the cold and cached pass" >&2
      exit 1
    fi
    CAMPAIGN_ARGS=(--campaign "fig8_campaign=$TMP/fig8_cold_db.jsonl")
  else
    echo "bench_host.sh --check: skipping campaign stage (ksrsim not built)" >&2
  fi
  # Host-performance gate: the simulator's hot loops must not have slowed
  # past tolerance relative to the committed BENCH_host.json baseline.
  python3 scripts/perf_gate.py --gbench "$TMP/gbench.json"
  python3 bench/report.py --gbench "$TMP/gbench.json" \
    --host "$TMP/table2_is.host" --host "$TMP/fig4.host" \
    ${CAMPAIGN_ARGS[@]+"${CAMPAIGN_ARGS[@]}"} \
    --mode quick --out "$TMP/BENCH_host.json"
  echo "bench_host.sh --check OK (fingerprint $fp1 reproducible," \
       "jobs-1/jobs-4 fingerprint $fpj1 identical, sim-threads-1/4" \
       "fingerprint $fpst1 identical, traced fingerprint $fpt identical)"
  exit 0
fi

# Serial baseline of the heaviest binary, so BENCH_host.json records the
# parallel speedup (table2_is wall_ms vs table2_is_jobs1 wall_ms) per PR,
# and a --sim-threads 4 run so the single-simulation parallel engine's
# wall time is tracked against the same serial baseline (docs/PARALLEL.md).
run_paper bench_table2_is table2_is_jobs1 --jobs 1
run_paper bench_table2_is table2_is_simthreads4 --jobs 1 --sim-threads 4

# Ring-of-rings scale-out (sharded coherence directory): coherent CG + IS at
# 128/512/1088 cells, four domains, at --sim-threads 1 and 4 so
# BENCH_host.json tracks the multi-domain engine's wall-clock trajectory on
# the same serial baseline.
run_paper bench_fig8_speedup fig8_scaleout_st1 --scale-out --jobs 1 --sim-threads 1
run_paper bench_fig8_speedup fig8_scaleout_st4 --scale-out --jobs 1 --sim-threads 4

# Warm-start fig8 (docs/CHECKPOINT.md): the IS points fork from warm-up
# checkpoints; BENCH_host.json records the skipped wall time (warm_saved_ms).
run_paper bench_fig8_speedup fig8_warmstart --warm-start --jobs 1 --sim-threads 1

python3 bench/report.py --gbench "$TMP/gbench.json" \
  --host "$TMP/table2_is.host" --host "$TMP/fig4.host" \
  --host "table2_is_jobs1=$TMP/table2_is_jobs1.host" \
  --host "table2_is_simthreads4=$TMP/table2_is_simthreads4.host" \
  --host "fig8_scaleout_st1=$TMP/fig8_scaleout_st1.host" \
  --host "fig8_scaleout_st4=$TMP/fig8_scaleout_st4.host" \
  --host "fig8_warmstart=$TMP/fig8_warmstart.host" \
  --mode "$([ "$QUICK" = 1 ] && echo quick || echo full)" \
  --out "$OUT"
echo "wrote $OUT"
