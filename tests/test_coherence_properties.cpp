// Property-based testing of the coherence protocol: random multiprocessor
// op streams (reads, writes, lock/unlock, prefetch, poststore) followed by
// whole-machine invariant checks over every touched sub-page — including
// under heavy eviction pressure from minimally sized caches.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "ksr/machine/ksr_machine.hpp"
#include "ksr/sync/atomic.hpp"

namespace ksr::machine {
namespace {

struct Param {
  unsigned nproc;
  unsigned scale;  // cache shrink factor (1 = full size)
  int ops;
  std::uint64_t seed;
};

std::string param_name(const testing::TestParamInfo<Param>& info) {
  return "p" + std::to_string(info.param.nproc) + "_scale" +
         std::to_string(info.param.scale) + "_ops" +
         std::to_string(info.param.ops) + "_seed" +
         std::to_string(info.param.seed);
}

class CoherenceInvariants : public testing::TestWithParam<Param> {};

TEST_P(CoherenceInvariants, HoldAfterRandomOpStream) {
  const Param prm = GetParam();
  MachineConfig cfg = MachineConfig::ksr1(prm.nproc);
  if (prm.scale > 1) cfg = cfg.scaled_by(prm.scale);
  KsrMachine m(cfg);

  constexpr std::size_t kInts = 64 * 1024;  // 256 KB spread over many pages
  auto data = m.alloc<std::uint32_t>("prop.data", kInts);
  auto locks = m.alloc<std::uint32_t>("prop.locks",
                                      8 * mem::kSubPageBytes / 4);
  auto counters = m.alloc<std::uint32_t>("prop.counters", 8);

  m.run([&](Cpu& cpu) {
    sim::Rng rng(prm.seed ^ (cpu.id() * 0x9E3779B9ull));
    for (int i = 0; i < prm.ops; ++i) {
      const std::size_t idx = rng.below(kInts);
      switch (rng.below(10)) {
        case 0:
        case 1:
        case 2:
        case 3:
          (void)cpu.read(data, idx);
          break;
        case 4:
        case 5:
        case 6:
          cpu.write(data, idx, static_cast<std::uint32_t>(i));
          break;
        case 7:
          cpu.prefetch(data.addr(idx));
          break;
        case 8: {
          cpu.write(data, idx, static_cast<std::uint32_t>(i));
          cpu.post_store(data.addr(idx));
          break;
        }
        case 9: {
          // Locked counter increment: the only cross-cell data race, made
          // safe by get_subpage.
          const std::size_t slot = rng.below(8);
          cpu.get_subpage(locks.addr(slot * mem::kSubPageBytes / 4));
          cpu.write(counters, slot, cpu.read(counters, slot) + 1);
          cpu.release_subpage(locks.addr(slot * mem::kSubPageBytes / 4));
          break;
        }
      }
      cpu.work(rng.below(50));
    }
  });

  // ---- Machine-wide invariants over every sub-page of the data region.
  const mem::SubPageId first = mem::subpage_of(data.addr(0));
  const mem::SubPageId last = mem::subpage_of(data.addr(kInts - 1));
  for (mem::SubPageId sp = first; sp <= last; ++sp) {
    const auto v = m.dir_view(sp);
    // 1. No cell is both holder and placeholder.
    EXPECT_EQ(v.holders & v.placeholders, 0u) << "sp=" << sp;
    // 2. An owner is a holder and is the only holder.
    if (v.owner >= 0) {
      EXPECT_EQ(v.holders, 1ull << v.owner) << "sp=" << sp;
    }
    // 3. Atomic implies a live owner.
    if (v.atomic) EXPECT_GE(v.owner, 0) << "sp=" << sp;
    for (unsigned c = 0; c < prm.nproc; ++c) {
      const cache::LineState st = m.cell_line_state(c, sp);
      const bool holder = (v.holders >> c) & 1;
      // 4. Directory holders and cache states agree exactly.
      EXPECT_EQ(cache::readable(st), holder)
          << "sp=" << sp << " cell=" << c << " state=" << to_string(st);
      // 5. Writable copies are unique and owned.
      if (cache::writable(st)) {
        EXPECT_EQ(v.owner, static_cast<int>(c)) << "sp=" << sp;
      }
    }
  }

  // 6. No lock left locked; counters saw every locked increment.
  for (std::size_t slot = 0; slot < 8; ++slot) {
    const auto lv = m.dir_view(mem::subpage_of(
        locks.addr(slot * mem::kSubPageBytes / 4)));
    EXPECT_FALSE(lv.atomic) << "slot=" << slot;
  }
  std::uint64_t total = 0;
  for (std::size_t slot = 0; slot < 8; ++slot) total += counters.value(slot);
  // Each op had 1/10 probability of a locked increment; we only require that
  // none were lost relative to the per-run tally, which the simulation
  // guarantees if get_subpage truly serialized: recompute from a replay.
  // (Exact expected count comes from the same deterministic RNG sequence.)
  std::uint64_t expected = 0;
  for (unsigned c = 0; c < prm.nproc; ++c) {
    sim::Rng rng(prm.seed ^ (c * 0x9E3779B9ull));
    for (int i = 0; i < prm.ops; ++i) {
      (void)rng.below(kInts);
      if (rng.below(10) == 9) {
        (void)rng.below(8);
        ++expected;
      }
      (void)rng.below(50);
    }
  }
  EXPECT_EQ(total, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CoherenceInvariants,
    testing::Values(Param{2, 1, 400, 1}, Param{4, 1, 400, 2},
                    Param{8, 1, 300, 3}, Param{16, 1, 200, 4},
                    Param{4, 4096, 400, 5},   // heavy eviction pressure
                    Param{8, 4096, 300, 6},   // heavy eviction pressure
                    Param{32, 64, 150, 7}, Param{64, 64, 80, 8}),
    param_name);

// Determinism property: identical seeds => bit-identical timing, across all
// the op kinds at once.
TEST(CoherenceInvariants, FullMachineDeterminism) {
  auto once = [] {
    KsrMachine m(MachineConfig::ksr1(8).scaled_by(64));
    auto data = m.alloc<std::uint32_t>("d", 4096);
    auto res = m.run([&](Cpu& cpu) {
      sim::Rng rng(99 + cpu.id());
      for (int i = 0; i < 300; ++i) {
        const std::size_t idx = rng.below(4096u);
        if (rng.chance(0.5)) {
          (void)cpu.read(data, idx);
        } else {
          cpu.write(data, idx, 1u);
        }
      }
    });
    return res.seconds;
  };
  EXPECT_DOUBLE_EQ(once(), once());
}

}  // namespace
}  // namespace ksr::machine
