# Empty dependencies file for bench_fig5_barriers_ksr2.
# This may be replaced when dependencies are built.
