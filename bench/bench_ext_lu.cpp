// Extension: the LU (SSOR) application — the third NAS application — whose
// Gauss-Seidel dependences force a 2-D software pipeline instead of
// barrier-split phases. The hand-off rate (one flag per processor per
// plane per sweep) makes it the finest-grain synchronization workload in
// the suite; poststore on the single-reader pipeline flags is the textbook
// GOOD use of the primitive, complementing SP's poststore pitfall.
#include "bench_common.hpp"
#include "ksr/machine/ksr_machine.hpp"
#include "ksr/nas/lu.hpp"

int main(int argc, char** argv) {
  using namespace ksr;         // NOLINT
  using namespace ksr::bench;  // NOLINT

  const BenchOptions opt = BenchOptions::parse(argc, argv);
  obs::Session session = make_obs_session(opt, "ext_lu");
  print_header("Extension: LU (SSOR) application scalability",
               "the third NAS application; pipelined wavefront structure");

  nas::LuConfig cfg;
  cfg.n = opt.quick ? 8 : 16;
  cfg.iterations = opt.quick ? 1 : 2;
  const unsigned scale = 16;

  const std::vector<unsigned> procs =
      opt.quick ? std::vector<unsigned>{1, 4, 8}
                : std::vector<unsigned>{1, 2, 4, 8, 16};

  std::vector<std::pair<unsigned, double>> measured;
  std::vector<double> no_post;
  for (unsigned p : procs) {
    const std::string ps = std::to_string(p);
    machine::KsrMachine m1(machine::MachineConfig::ksr1(p).scaled_by(scale));
    {
      ScopedObs obs(session, m1, "lu p=" + ps);
      measured.emplace_back(p, run_lu(m1, cfg).seconds_per_iteration);
    }
    nas::LuConfig c2 = cfg;
    c2.use_poststore = false;
    machine::KsrMachine m2(machine::MachineConfig::ksr1(p).scaled_by(scale));
    {
      ScopedObs obs(session, m2, "lu-nopoststore p=" + ps);
      no_post.push_back(run_lu(m2, c2).seconds_per_iteration);
    }
  }

  TextTable t({"procs", "t/iter (s)", "speedup", "no-poststore (s)",
               "poststore gain"});
  const auto rows = study::scaling_rows(measured);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    t.add_row({std::to_string(rows[i].p),
               TextTable::num(rows[i].seconds, 5),
               TextTable::num(rows[i].speedup, 2),
               TextTable::num(no_post[i], 5),
               TextTable::num((1.0 - rows[i].seconds / no_post[i]) * 100.0,
                              2) +
                   "%"});
  }
  if (opt.csv) {
    t.print_csv();
  } else {
    t.print();
    std::cout
        << "\nReading the table: speedup below the barrier-phased kernels is\n"
           "inherent (pipeline fill/drain), and the poststore column is the\n"
           "counterpoint to SP's Table 4 pitfall — pushing a single-reader\n"
           "pipeline flag to its one waiter is what the primitive is FOR.\n";
  }
  return 0;
}
