#include "ksr/machine/butterfly_machine.hpp"

#include <stdexcept>
#include <string>

namespace ksr::machine {

// ---------------------------------------------------------------------------
// ButterflyCpu
// ---------------------------------------------------------------------------

class ButterflyCpu final : public Cpu {
 public:
  ButterflyCpu(ButterflyMachine& m, unsigned cell)
      : Cpu(m, cell, m.cells_[cell].pmon, m.cells_[cell].prog_rng), bm_(m) {}

 protected:
  void access(mem::Sva a, std::size_t bytes, Op op) override {
    (void)op;  // reads and writes cost the same without caches
    const mem::Sva end = a + (bytes == 0 ? 1 : bytes);
    mem::Sva p = a;
    while (p < end) {
      reference(p);
      p = (p / mem::kSubBlockBytes + 1) * mem::kSubBlockBytes;
    }
  }

  void do_get_subpage(mem::Sva a) override {
    const mem::SubPageId sp = mem::subpage_of(a);
    constexpr unsigned kMaxRetries = 1'000'000;
    for (unsigned attempt = 0;; ++attempt) {
      if (attempt > kMaxRetries) {
        throw std::runtime_error(
            "Butterfly get_subpage: lock word never released (livelock)");
      }
      reference(a);  // atomic test&set executes at the home module
      std::uint8_t& lk = bm_.locked_[sp];
      if (lk == 0) {
        lk = 1;
        return;
      }
      ++pmon().atomic_retries;
      tick_ns(machine_.config().atomic_backoff_ns +
              rng().below(machine_.config().atomic_backoff_ns));
    }
  }

  void do_release_subpage(mem::Sva a) override {
    const mem::SubPageId sp = mem::subpage_of(a);
    {
      const auto it = bm_.locked_.find(sp);
      if (it == bm_.locked_.end() || it->second == 0) {
        throw std::logic_error("Butterfly release_subpage: not locked");
      }
    }
    reference(a);  // the clearing write travels to the home module
    // Re-resolve after blocking: other cells' get_subpage calls may have
    // rehashed the lock-word map in the meantime.
    bm_.locked_[sp] = 0;
  }

  // No caches: prefetch and poststore degenerate to hints with no effect.
  void do_prefetch(mem::Sva, bool) override { tick_cycles(1); }
  void do_post_store(mem::Sva) override { tick_cycles(1); }

 private:
  /// One memory reference: local-module access or network round trip.
  void reference(mem::Sva a) {
    lazy_sync();
    const unsigned home = bm_.home_of(a);
    if (home == id_) {
      tick_ns(machine_.config().butterfly_local_ns);
      return;
    }
    hard_sync();
    const sim::Time t0 = local_now_;
    ++pmon().ring_requests;
    bm_.net_->transact(id_, home, [this](sim::Duration w) {
      pmon().inject_wait_ns += w;
      wake_at(machine_.engine().now());
    });
    block_until_woken();
    pmon().ring_time_ns += local_now_ - t0;
  }

  ButterflyMachine& bm_;
};

// ---------------------------------------------------------------------------
// ButterflyMachine
// ---------------------------------------------------------------------------

ButterflyMachine::ButterflyMachine(const MachineConfig& cfg) : Machine(cfg) {
  net::Butterfly::Config nc;
  nc.ports = cfg_.nproc;
  nc.link_ns = cfg_.butterfly_link_ns;
  nc.memory_ns = cfg_.butterfly_memory_ns;
  net_ = std::make_unique<net::Butterfly>(engine_, nc);
  cells_.reserve(cfg_.nproc);
  std::uint64_t seed = 0xB0FF1E5ull;
  for (unsigned i = 0; i < cfg_.nproc; ++i) {
    cells_.emplace_back(sim::splitmix64(seed));
  }
}

ButterflyMachine::~ButterflyMachine() = default;

std::unique_ptr<Cpu> ButterflyMachine::make_cpu(unsigned cell) {
  return std::make_unique<ButterflyCpu>(*this, cell);
}

void ButterflyMachine::register_region(const mem::Region& region,
                                       const Placement& p) {
  if (p.kind == Placement::Kind::kBlocked && p.bytes_per_cell > 0) {
    blocked_regions_.push_back({region.base, region.base + region.bytes, p});
  }
}

unsigned ButterflyMachine::home_of(mem::Sva a) const noexcept {
  for (const auto& r : blocked_regions_) {
    if (a >= r.base && a < r.end) {
      const auto cell = (a - r.base) / r.placement.bytes_per_cell;
      return static_cast<unsigned>(cell) % cfg_.nproc;
    }
  }
  return static_cast<unsigned>(mem::page_of(a)) % cfg_.nproc;
}

}  // namespace ksr::machine
