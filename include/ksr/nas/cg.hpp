#pragma once

#include <cstdint>
#include <vector>

#include "ksr/machine/machine.hpp"

// NAS Conjugate Gradient (CG) kernel (paper §3.3.1, Table 1, Fig. 8).
//
// The paper profiles the NAS CG code, finds >90% of time in the sparse
// matrix-vector product y = Ax, and parallelises exactly that routine. Two
// sparse formats are implemented:
//
//   kColumnMajor — the original column-start / row-index format, whose
//                  parallelisation-by-columns scatters into y and needs a
//                  lock per update (the paper rejects it);
//   kRowMajor    — the row-start / column-index format the authors convert
//                  to: each processor owns contiguous rows of A and produces
//                  its slice of y with no synchronization (Fig. 7).
//
// Everything else (dot products, vector updates) stays serial on cell 0,
// exactly as in the paper — this is what makes the measured serial fraction
// meaningful and produces the 16→32 processor speedup drop.
namespace ksr::nas {

enum class SparseFormat { kRowMajor, kColumnMajor };

struct CgConfig {
  std::size_t n = 1400;            // paper: 14000 (machine scaled 1/10..1/64)
  std::size_t nnz_per_row = 15;    // paper: ~145 avg; scaled with cache size
  unsigned iterations = 8;         // CG steps in the timed region
  std::uint64_t seed = 314159;
  SparseFormat format = SparseFormat::kRowMajor;
  bool use_poststore = false;      // propagate q-slices as they are produced
  bool use_prefetch = true;        // pull the p vector before each mat-vec
  std::uint64_t work_per_nnz = 4;  // multiply-add + loop cycles
};

struct CgResult {
  double seconds = 0.0;        // timed region (slowest cell)
  double final_residual = 0.0; // ||r|| after the CG iterations
  double initial_residual = 0.0;
  std::uint64_t nnz = 0;
};

/// Run CG on the machine; all cells participate (cell 0 runs serial parts).
CgResult run_cg(machine::Machine& m, const CgConfig& cfg);

/// Host-side reference CG on the same generated system (for verification).
CgResult cg_reference(const CgConfig& cfg);

/// The generated sparse SPD system, exposed for tests.
struct SparseSystem {
  std::size_t n = 0;
  std::vector<std::size_t> row_start;  // CSR
  std::vector<std::uint32_t> col_index;
  std::vector<double> values;
  std::vector<double> b;
};
[[nodiscard]] SparseSystem make_sparse_system(const CgConfig& cfg);

}  // namespace ksr::nas
