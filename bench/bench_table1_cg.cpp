// Reproduces Table 1 + the CG curve of Fig. 8: Conjugate Gradient time,
// speedup, efficiency and Karp-Flatt serial fraction vs processors, plus
// the poststore ablation discussed in §3.3.1.
//
// Scaling: the paper ran n=14000 / nnz=2.03e6 against 0.25 MB + 32 MB
// caches. We scale problem and caches together (scaled_by(64)) so the
// working-set/cache ratios — which drive the poor small-P efficiency, the
// superunitary 8..16 region, and the 32-processor drop — are preserved.
//
// Every measurement is an independent simulation, sharded over host cores
// through SweepRunner and merged in submission order (bit-identical output
// for any --jobs).
#include "bench_common.hpp"
#include "ksr/machine/ksr_machine.hpp"
#include "ksr/nas/cg.hpp"

namespace {

struct CgPoint {
  double seconds = 0.0;
  std::uint64_t nnz = 0;
  ksr::obs::JobObs obs;
};

// One ablation run (base or variant) with its observability handle.
struct Run {
  double seconds = 0.0;
  ksr::obs::JobObs obs;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace ksr;         // NOLINT
  using namespace ksr::bench;  // NOLINT

  const BenchOptions opt = BenchOptions::parse(argc, argv);
  obs::Session session = make_obs_session(opt, "table1_cg");
  SweepRunner runner(opt.jobs);
  print_header("Conjugate Gradient scalability",
               "Table 1 and Fig. 8 (CG), Section 3.3.1");

  nas::CgConfig cfg;
  cfg.n = opt.quick ? 600 : 1750;
  cfg.nnz_per_row = opt.quick ? 24 : 72;  // ~126k nonzeros at default size
  cfg.iterations = opt.quick ? 3 : 6;
  const unsigned scale = 64;

  const std::vector<unsigned> procs =
      opt.quick ? std::vector<unsigned>{1, 2, 8}
                : std::vector<unsigned>{1, 2, 4, 8, 16, 32};

  std::vector<std::function<CgPoint()>> jobs;
  jobs.reserve(procs.size());
  for (unsigned p : procs) {
    jobs.emplace_back([p, scale, cfg, &session] {
      machine::KsrMachine m(machine::MachineConfig::ksr1(p).scaled_by(scale));
      CgPoint pt;
      pt.obs = session.job();
      pt.obs.attach(m);
      const nas::CgResult r = run_cg(m, cfg);
      pt.obs.finish();
      pt.seconds = r.seconds;
      pt.nnz = r.nnz;
      return pt;
    });
  }
  std::vector<CgPoint> points = runner.run(jobs);

  std::vector<std::pair<unsigned, double>> measured;
  std::uint64_t nnz = 0;
  for (std::size_t i = 0; i < procs.size(); ++i) {
    if (session.active()) {
      session.collect(std::move(points[i].obs),
                      "cg p=" + std::to_string(procs[i]));
    }
    measured.emplace_back(procs[i], points[i].seconds);
    nnz = points[i].nnz;
  }

  TextTable t({"Processors", "Time (s)", "Speedup", "Efficiency",
               "Serial Fraction"});
  for (const auto& row : study::scaling_rows(measured)) {
    t.add_row({std::to_string(row.p), TextTable::num(row.seconds, 5),
               TextTable::num(row.speedup, 5),
               row.p == 1 ? "-" : TextTable::num(row.efficiency, 3),
               row.p == 1 ? "-" : TextTable::num(row.serial_fraction, 6)});
  }
  std::cout << "datasize n = " << cfg.n << ", nonzeros = " << nnz
            << ", machine caches scaled by 1/" << scale << "\n";
  if (opt.csv) {
    t.print_csv();
  } else {
    t.print();
    std::cout
        << "\nPaper expectations (Table 1): modest efficiency up to 4 procs\n"
           "(working set exceeds per-cell caches), superunitary steps in the\n"
           "8..16 region once partitions fit in the local caches, and a drop\n"
           "at 32 as the serial section's remote references grow.\n";
  }

  const std::vector<unsigned> ab_procs =
      opt.quick ? std::vector<unsigned>{8} : std::vector<unsigned>{4, 8, 16, 32};

  // ---- Poststore ablation (§3.3.1): propagate q-slices as produced so the
  // serial section does not stall fetching them. Base and variant runs are
  // separate jobs (2 per processor count) for better host load balance.
  std::cout << "\n--- poststore ablation ---\n";
  std::vector<std::function<Run()>> ps_jobs;
  ps_jobs.reserve(2 * ab_procs.size());
  for (unsigned p : ab_procs) {
    ps_jobs.emplace_back([p, scale, cfg, &session] {
      machine::KsrMachine m(machine::MachineConfig::ksr1(p).scaled_by(scale));
      Run r;
      r.obs = session.job();
      r.obs.attach(m);
      r.seconds = run_cg(m, cfg).seconds;
      r.obs.finish();
      return r;
    });
    ps_jobs.emplace_back([p, scale, cfg, &session] {
      nas::CgConfig c2 = cfg;
      c2.use_poststore = true;
      machine::KsrMachine m(machine::MachineConfig::ksr1(p).scaled_by(scale));
      Run r;
      r.obs = session.job();
      r.obs.attach(m);
      r.seconds = run_cg(m, c2).seconds;
      r.obs.finish();
      return r;
    });
  }
  std::vector<Run> ps = runner.run(ps_jobs);

  TextTable pt({"Processors", "no poststore (s)", "poststore (s)", "gain"});
  for (std::size_t i = 0; i < ab_procs.size(); ++i) {
    if (session.active()) {
      const std::string p = std::to_string(ab_procs[i]);
      session.collect(std::move(ps[2 * i].obs), "cg-nopoststore p=" + p);
      session.collect(std::move(ps[2 * i + 1].obs), "cg-poststore p=" + p);
    }
    const double base = ps[2 * i].seconds, post = ps[2 * i + 1].seconds;
    pt.add_row({std::to_string(ab_procs[i]), TextTable::num(base, 5),
                TextTable::num(post, 5),
                TextTable::num((1.0 - post / base) * 100.0, 2) + "%"});
  }
  if (opt.csv) {
    pt.print_csv();
  } else {
    pt.print();
    std::cout << "\nPaper: poststore improves CG (~3% at 16 processors), with\n"
                 "smaller gains at high processor counts as the simultaneous\n"
                 "poststores approach ring saturation.\n";
  }

  // ---- Prefetch ablation: the implementation pulls the rewritten p vector
  // ahead of each mat-vec ("prefetch ... used quite extensively", §4).
  std::cout << "\n--- prefetch ablation ---\n";
  std::vector<std::function<Run()>> pf_jobs;
  pf_jobs.reserve(2 * ab_procs.size());
  for (unsigned p : ab_procs) {
    pf_jobs.emplace_back([p, scale, cfg, &session] {
      machine::KsrMachine m(machine::MachineConfig::ksr1(p).scaled_by(scale));
      Run r;
      r.obs = session.job();
      r.obs.attach(m);
      r.seconds = run_cg(m, cfg).seconds;
      r.obs.finish();
      return r;
    });
    pf_jobs.emplace_back([p, scale, cfg, &session] {
      nas::CgConfig c2 = cfg;
      c2.use_prefetch = false;
      machine::KsrMachine m(machine::MachineConfig::ksr1(p).scaled_by(scale));
      Run r;
      r.obs = session.job();
      r.obs.attach(m);
      r.seconds = run_cg(m, c2).seconds;
      r.obs.finish();
      return r;
    });
  }
  std::vector<Run> pf = runner.run(pf_jobs);

  TextTable ft({"Processors", "prefetch (s)", "no prefetch (s)", "gain"});
  for (std::size_t i = 0; i < ab_procs.size(); ++i) {
    if (session.active()) {
      const std::string p = std::to_string(ab_procs[i]);
      session.collect(std::move(pf[2 * i].obs), "cg-prefetch p=" + p);
      session.collect(std::move(pf[2 * i + 1].obs), "cg-noprefetch p=" + p);
    }
    const double with_pf = pf[2 * i].seconds, without = pf[2 * i + 1].seconds;
    ft.add_row({std::to_string(ab_procs[i]), TextTable::num(with_pf, 5),
                TextTable::num(without, 5),
                TextTable::num((1.0 - with_pf / without) * 100.0, 2) + "%"});
  }
  if (opt.csv) {
    ft.print_csv();
  } else {
    ft.print();
  }
  return 0;
}
