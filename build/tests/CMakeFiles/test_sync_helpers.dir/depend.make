# Empty dependencies file for test_sync_helpers.
# This may be replaced when dependencies are built.
