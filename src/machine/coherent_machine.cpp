#include "ksr/machine/coherent_machine.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <utility>

#include "ksr/check/checker.hpp"
#include "ksr/ckpt/checkpoint.hpp"

namespace ksr::machine {

// ---------------------------------------------------------------------------
// CoherentCpu: the per-cell timing front end shared by KSR and Symmetry.
// ---------------------------------------------------------------------------

class CoherentCpu final : public Cpu {
 public:
  CoherentCpu(CoherentMachine& m, unsigned cell)
      : Cpu(m, cell, m.cells_[cell].pmon, m.cells_[cell].prog_rng), cm_(m) {}

 protected:
  void access(mem::Sva a, std::size_t bytes, Op op) override {
    const mem::Sva end = a + (bytes == 0 ? 1 : bytes);
    mem::Sva p = a;
    while (p < end) {
      access_one(p, op);
      p = (p / mem::kSubBlockBytes + 1) * mem::kSubBlockBytes;
    }
  }

  void do_get_subpage(mem::Sva a) override;
  void do_release_subpage(mem::Sva a) override;
  void do_prefetch(mem::Sva a, bool exclusive) override;
  void do_post_store(mem::Sva a) override;

 private:
  using Acquire = CoherentMachine::Acquire;

  [[nodiscard]] CoherentMachine::Cell& cell() noexcept {
    return cm_.cells_[id_];
  }
  [[nodiscard]] const MachineConfig& cfg() const noexcept {
    return machine_.config();
  }

  /// True when this cell's domain owns the home shard of `sp` (always true
  /// single-domain) — the gate between the synchronous protocol path and
  /// the boundary-channel message path.
  [[nodiscard]] bool home_is_local(mem::SubPageId sp) const {
    return !cm_.multi_domain_ ||
           cfg().domain_of_leaf(cm_.home_leaf(sp)) ==
               machine_.domain_of_cell(id_);
  }

  void access_one(mem::Sva a, Op op);
  void load_line(mem::SubPageId sp, bool need_write, std::uint32_t witness);
  void first_touch(mem::SubPageId sp, bool atomic);
  void remote_acquire(mem::SubPageId sp, Acquire kind, std::uint32_t witness);

  /// Erase `sp`'s in-flight prefetch record on `me` and wake every fiber
  /// parked on it (runs on `me`'s domain engine).
  static void finish_prefetch(CoherentMachine* cm, unsigned me,
                              mem::SubPageId sp);

  /// Trace witness for a demand access: 1 + byte offset within the sub-page
  /// (0 is reserved for "no witness", e.g. prefetch).
  [[nodiscard]] static constexpr std::uint32_t witness_of(mem::Sva a) noexcept {
    return 1u + static_cast<std::uint32_t>(a % mem::kSubPageBytes);
  }
  sim::Duration transport_round_trip(mem::SubPageId sp, unsigned target_leaf);
  void fill_subcache(mem::Sva a);

  CoherentMachine& cm_;

  // One-entry MRU in front of the sub-cache hit check: remembers the last
  // sub-block that hit, revalidated in O(1) against the cache generation
  // counters (every mutation that could remove presence or downgrade write
  // rights bumps them). A valid MRU hit takes the exact same counter/timing
  // path as the full lookup, so simulated behaviour is unchanged.
  std::uint64_t mru_subblock_ = ~0ull;
  bool mru_writable_ = false;
  std::uint64_t mru_sub_gen_ = 0;
  std::uint64_t mru_local_gen_ = 0;
};

void CoherentCpu::fill_subcache(mem::Sva a) {
  auto& c = cell();
  const auto acc = c.sub.access(a, c.rng);
  if (acc.block_allocated) {
    ++c.pmon.subcache_block_allocs;
    tick_ns(cfg().block_alloc_ns);
  }
}

void CoherentCpu::access_one(mem::Sva a, Op op) {
  lazy_sync();
  auto& c = cell();
  const std::uint64_t blk = a / mem::kSubBlockBytes;

  if (blk == mru_subblock_ && mru_sub_gen_ == c.sub.generation() &&
      (op == Op::kRead ||
       (mru_writable_ && mru_local_gen_ == c.local.generation()))) {
    ++c.pmon.subcache_hits;
    tick_cycles(cfg().subcache_hit_cycles);
    return;
  }

  const mem::SubPageId sp = mem::subpage_of(a);

  if (op == Op::kRead) {
    if (c.sub.contains(a)) {
      ++c.pmon.subcache_hits;
      tick_cycles(cfg().subcache_hit_cycles);
      mru_subblock_ = blk;
      mru_sub_gen_ = c.sub.generation();
      mru_writable_ = false;  // write rights are established on first write
      return;
    }
    ++c.pmon.subcache_misses;
    load_line(sp, /*need_write=*/false, witness_of(a));
    fill_subcache(a);
    return;
  }

  // Write: exclusivity is required at the local-cache level even when the
  // data bytes sit in the sub-cache.
  const bool writable_here = cache::writable(c.local.state(sp));
  if (writable_here && c.sub.contains(a)) {
    ++c.pmon.subcache_hits;
    tick_cycles(cfg().subcache_hit_cycles);
    mru_subblock_ = blk;
    mru_sub_gen_ = c.sub.generation();
    mru_writable_ = true;
    mru_local_gen_ = c.local.generation();
    return;
  }
  ++c.pmon.subcache_misses;
  load_line(sp, /*need_write=*/true, witness_of(a));
  fill_subcache(a);
}

void CoherentCpu::first_touch(mem::SubPageId sp, bool atomic) {
  auto& e = cm_.dir_entry(sp);
  e.holders.assign_single(id_);
  e.owner = static_cast<std::int16_t>(id_);
  e.atomic = atomic;
  e.resident_leaf = static_cast<std::uint8_t>(cm_.leaf_of(id_));
  if (cm_.insert_line(id_, sp,
                      atomic ? cache::LineState::kAtomic
                             : cache::LineState::kExclusive)) {
    tick_ns(cfg().page_alloc_ns);
  }
  KSR_CHECK_HOOK(if (cm_.hooks_on()) cm_.checker_->on_transition(
      check::Ev::kFirstTouch, id_, sp));
}

void CoherentCpu::load_line(mem::SubPageId sp, bool need_write,
                            std::uint32_t witness) {
  auto& c = cell();
  for (;;) {
    const cache::LineState st = c.local.state(sp);
    const bool sufficient =
        need_write ? cache::writable(st) : cache::readable(st);
    if (sufficient) {
      ++c.pmon.localcache_hits;
      tick_ns(need_write ? cfg().localcache_write_ns
                         : cfg().localcache_read_ns);
      return;
    }

    // An asynchronous fetch for this sub-page may already be in flight
    // (prefetch): wait for it and re-check. hard_sync() can yield — the
    // fetch may complete (erasing its entry) during the wait, so the map
    // entry must be re-resolved afterwards.
    if (c.inflight.contains(sp)) {
      hard_sync();
      auto* waiters = c.inflight.find(sp);
      if (waiters == nullptr) continue;  // landed while we synced
      waiters->push_back(fiber_);
      block_until_woken();
      continue;
    }

    ++c.pmon.localcache_misses;
    if (home_is_local(sp) && !cm_.dir_contains(sp)) {
      // First touch machine-wide: the sub-page materialises in this cell's
      // cache with no network traffic (COMA first-touch ownership). When
      // the home shard lives in another domain only the home may decide
      // creation (two domains could first-touch concurrently), so that
      // case falls through to the acquire path below.
      first_touch(sp, /*atomic=*/false);
      tick_ns(need_write ? cfg().localcache_write_ns
                         : cfg().localcache_read_ns);
      return;
    }
    remote_acquire(sp, need_write ? Acquire::kExclusive : Acquire::kShared,
                   witness);
    return;
  }
}

sim::Duration CoherentCpu::transport_round_trip(mem::SubPageId sp,
                                                unsigned target_leaf) {
  sim::Duration wait = 0;
  cm_.transport(id_, sp, target_leaf, [this, &wait](sim::Duration w) {
    wait = w;
    wake_at(eng().now());
  });
  block_until_woken();
  return wait;
}

void CoherentCpu::remote_acquire(mem::SubPageId sp, Acquire kind,
                                 std::uint32_t witness) {
  auto& c = cell();
  constexpr unsigned kMaxRetries = 1'000'000;
  unsigned consecutive_nacks = 0;
  for (unsigned attempt = 0;; ++attempt) {
    if (attempt > kMaxRetries) {
      throw std::runtime_error(
          "remote_acquire: 1e6 NACK retries on sub-page " + std::to_string(sp) +
          " — atomic line never released (simulated livelock)");
    }
    hard_sync();
    const sim::Time t0 = local_now_;

    bool ok = false;
    bool page_alloc = false;
    bool crossed = false;

    if (!cm_.multi_domain_) {
      // Single-domain: the seed's synchronous path, reading the directory
      // directly (every shard is local).
      unsigned target_leaf = 0;
      {
        const auto* e = cm_.dir_find(sp);
        target_leaf = cm_.responder_leaf(
            id_, e != nullptr ? *e : CoherentMachine::DirEntry{});
      }
      crossed = target_leaf != cm_.leaf_of(id_);

      const sim::Duration wait = transport_round_trip(sp, target_leaf);
      ++c.pmon.ring_requests;
      c.pmon.inject_wait_ns += wait;
      if (obs::Tracer* tr = cm_.tracer_for_cell(id_); tr != nullptr && wait != 0) {
        // Stall attribution: this cpu lost `wait` ns to slot contention.
        tr->log(eng().now(), obs::kCatStall, obs::kEvInjectWait, sp,
                id_, static_cast<std::int64_t>(wait));
      }

      CoherentMachine::CommitResult res{};
      switch (kind) {
        case Acquire::kShared:
          res = cm_.commit_shared(id_, sp, witness);
          break;
        case Acquire::kExclusive:
          res = cm_.commit_exclusive(id_, sp, /*atomic=*/false, witness);
          break;
        case Acquire::kAtomic:
          res = cm_.commit_exclusive(id_, sp, /*atomic=*/true, witness);
          break;
      }
      ok = res.ok;
      page_alloc = res.page_alloc;
    } else if (home_is_local(sp)) {
      // Multi-domain, home shard in our own domain: ride the (domain-local)
      // ring to the home leaf and decide synchronously. Cross-domain
      // effects the decision emits ride the boundary channels; if any
      // revocation crossed, our own grant waits for the grant wave.
      const unsigned home = cm_.home_leaf(sp);
      crossed = home != cm_.leaf_of(id_);

      const sim::Duration wait = transport_round_trip(sp, home);
      ++c.pmon.ring_requests;
      c.pmon.inject_wait_ns += wait;

      const auto d = cm_.mb_decide(id_, sp, kind);
      ok = d.ok;
      if (d.ok) {
        // Cache state commits at decision time (single-domain semantics;
        // deferring it to grant_time could tie with a later decision's
        // synchronous revoke at the same instant). Only the *timing* of a
        // deferred grant waits for the cross-domain revocation wave.
        page_alloc = cm_.insert_line(id_, sp, d.state);
        if (d.deferred) {
          eng().wait_until(d.grant_time);
          local_now_ = std::max(local_now_, eng().now());
          // The entry's busy window ends exactly at grant_time, so the
          // next decision's synchronous revocation can land at the very
          // instant this wait ends — and same-time order carries no
          // meaning. If the grant did not survive the wait, treat it as
          // a NACK and retry.
          const cache::LineState st = c.local.state(sp);
          const bool kept = kind == Acquire::kShared ? cache::readable(st)
                                                     : cache::writable(st);
          if (!kept) ok = false;
        }
      }
    } else {
      // Multi-domain, remote home: leg 1 rides our own leaf ring to the
      // ARD, the request crosses on a boundary channel, the home decides
      // and replies. The reply event itself applies the grant (insert_line)
      // before waking us, so per-channel FIFO order protects the grant
      // against any later revocation the home emits for us.
      crossed = true;
      const sim::Duration wait = transport_round_trip(sp, cm_.leaf_of(id_));
      ++c.pmon.ring_requests;
      c.pmon.inject_wait_ns += wait;

      CoherentMachine::MbReply rep;
      CoherentMachine* cm = &cm_;
      CoherentMachine::MbReply* rp = &rep;
      const unsigned me = id_;
      const unsigned dr = machine_.domain_of_cell(id_);
      const unsigned dh = cfg().domain_of_leaf(cm_.home_leaf(sp));
      const sim::FiberId fid = fiber_;
      machine_.parallel_engine().send(
          dr, dh, machine_.parallel_engine().horizon(),
          [cm, me, dr, sp, kind, rp, fid] {
            cm->mb_home_request(me, dr, sp, kind, rp, fid);
          });
      block_until_woken();
      ok = rep.ok;
      page_alloc = rep.page_alloc;
    }

    if (ok) {
      tick_ns(cm_.transaction_overhead_ns(kind, crossed));
      if (page_alloc) tick_ns(cfg().page_alloc_ns);
      c.pmon.ring_time_ns += local_now_ - t0;
      if (obs::Tracer* tr = cm_.tracer_for_cell(id_)) {
        // Stall attribution: total time this cpu spent in the transaction.
        tr->log(eng().now(), obs::kCatStall, obs::kEvRemoteAcquire,
                sp, id_, static_cast<std::int64_t>(local_now_ - t0));
      }
      return;
    }

    // NACK: the sub-page is held Atomic somewhere (or its home entry is
    // busy applying a previous decision). Back off (bounded exponential,
    // randomized) and retry.
    ++c.pmon.ring_nacks;
    ++c.pmon.atomic_retries;
    c.pmon.ring_time_ns += local_now_ - t0;
    consecutive_nacks = std::min(consecutive_nacks + 1, 6u);
    const sim::Duration base = cfg().atomic_backoff_ns
                               << (consecutive_nacks - 1);
    const sim::Duration nap = base + cell().rng.below(base);
    if (obs::Tracer* tr = cm_.tracer_for_cell(id_)) {
      tr->log(eng().now(), obs::kCatStall, obs::kEvNackBackoff, sp,
              id_, static_cast<std::int64_t>(nap));
    }
    tick_ns(nap);
  }
}

void CoherentCpu::do_get_subpage(mem::Sva a) {
  lazy_sync();
  auto& c = cell();
  const mem::SubPageId sp = mem::subpage_of(a);

  if (!home_is_local(sp)) {
    // The home shard decides everything (including first touch); no local
    // shortcut is sound while revocations may be in flight toward us.
    remote_acquire(sp, Acquire::kAtomic, witness_of(a));
    return;
  }

  if (auto* pe = cm_.dir_find(sp)) {
    auto& e = *pe;
    if (!e.busy && e.owner == static_cast<std::int16_t>(id_) &&
        cache::writable(c.local.state(sp))) {
      // We already hold the only copy: lock it locally.
      e.atomic = true;
      c.local.set_state(sp, cache::LineState::kAtomic);
      KSR_CHECK_HOOK(if (cm_.hooks_on()) cm_.checker_->on_transition(
          check::Ev::kLocalAtomic, id_, sp));
      tick_ns(cfg().local_atomic_ns);
      return;
    }
    remote_acquire(sp, Acquire::kAtomic, witness_of(a));
    return;
  }

  // First touch machine-wide, directly into Atomic state.
  first_touch(sp, /*atomic=*/true);
  tick_ns(cfg().local_atomic_ns);
}

void CoherentCpu::do_release_subpage(mem::Sva a) {
  lazy_sync();
  const mem::SubPageId sp = mem::subpage_of(a);

  if (home_is_local(sp)) {
    auto* e = cm_.dir_find(sp);
    if (e == nullptr || !e->atomic ||
        e->owner != static_cast<std::int16_t>(id_)) {
      throw std::logic_error(
          "release_subpage: cell " + std::to_string(id_) +
          " does not hold sub-page " + std::to_string(sp) + " atomically");
    }
    e->atomic = false;
    cell().local.set_state(sp, cache::LineState::kExclusive);
    KSR_CHECK_HOOK(if (cm_.hooks_on()) cm_.checker_->on_transition(
        check::Ev::kReleaseAtomic, id_, sp));
    tick_ns(cfg().local_atomic_ns);
    return;
  }

  // Remote home: our local Atomic state is the proof of ownership (only
  // the home ever grants it). Unlock locally, then send the fix-up; the
  // home keeps NACKing acquires until it lands, which is exactly the
  // window a real unlock packet would leave.
  if (cell().local.state(sp) != cache::LineState::kAtomic) {
    throw std::logic_error(
        "release_subpage: cell " + std::to_string(id_) +
        " does not hold sub-page " + std::to_string(sp) + " atomically");
  }
  cell().local.set_state(sp, cache::LineState::kExclusive);
  hard_sync();
  CoherentMachine* cm = &cm_;
  const unsigned me = id_;
  const unsigned dr = machine_.domain_of_cell(id_);
  const unsigned dh = cfg().domain_of_leaf(cm_.home_leaf(sp));
  cm_.transport(me, sp, cm_.leaf_of(me), [cm, me, dr, dh, sp](sim::Duration) {
    cm->parallel_engine().send(dr, dh, cm->parallel_engine().horizon(),
                               [cm, me, sp] { cm->mb_release_home(me, sp); });
  });
  tick_ns(cfg().local_atomic_ns);
}

void CoherentCpu::finish_prefetch(CoherentMachine* cm, unsigned me,
                                  mem::SubPageId sp) {
  auto& c2 = cm->cells_[me];
  auto* entry = c2.inflight.find(sp);
  if (entry == nullptr) return;
  auto waiters = std::move(*entry);
  c2.inflight.erase(sp);
  --c2.inflight_count;
  sim::Engine& eng = cm->engine_of(cm->domain_of_cell(me));
  for (sim::FiberId f : waiters) {
    eng.wake(f, eng.now());
  }
}

void CoherentCpu::do_prefetch(mem::Sva a, bool exclusive) {
  lazy_sync();
  if (!cfg().has_prefetch) {
    tick_cycles(1);
    return;
  }
  auto& c = cell();
  const mem::SubPageId sp = mem::subpage_of(a);

  const cache::LineState st = c.local.state(sp);
  const bool sufficient =
      exclusive ? cache::writable(st) : cache::readable(st);
  if (sufficient || c.inflight.contains(sp) ||
      c.inflight_count >= cfg().prefetch_depth) {
    tick_cycles(1);  // issue slot only; dropped or unnecessary
    return;
  }

  if (!home_is_local(sp)) {
    // A prefetch is only a hint: a cross-domain round trip to the home is
    // not worth modelling for one, so it is dropped at the ARD.
    tick_cycles(1);
    return;
  }

  if (!cm_.dir_contains(sp)) {
    // Prefetching untouched memory: first-touch ownership, no ring traffic.
    auto& e = cm_.dir_entry(sp);
    e.holders.assign_single(id_);
    e.owner = static_cast<std::int16_t>(id_);
    e.resident_leaf = static_cast<std::uint8_t>(cm_.leaf_of(id_));
    cm_.insert_line(id_, sp, cache::LineState::kExclusive);
    KSR_CHECK_HOOK(if (cm_.hooks_on()) cm_.checker_->on_transition(
        check::Ev::kFirstTouch, id_, sp));
    tick_cycles(1);
    return;
  }

  ++c.pmon.prefetches_issued;
  ++c.inflight_count;
  c.inflight[sp];  // register the in-flight fetch (no waiters yet)
  hard_sync();

  CoherentMachine* cm = &cm_;
  const unsigned me = id_;

  if (cm_.multi_domain_) {
    // Home-local multi-domain: decide at the home shard so cross-domain
    // effects route correctly; a deferred grant lands with the grant wave.
    const unsigned home = cm_.home_leaf(sp);
    cm_.transport(me, sp, home, [cm, me, sp, exclusive](sim::Duration w) {
      auto& c2 = cm->cells_[me];
      ++c2.pmon.ring_requests;
      c2.pmon.inject_wait_ns += w;
      const auto d = cm->mb_decide(
          me, sp,
          exclusive ? CoherentMachine::Acquire::kExclusive
                    : CoherentMachine::Acquire::kShared);
      if (!d.ok) {  // Atomic elsewhere or busy: the hint is dropped
        finish_prefetch(cm, me, sp);
        return;
      }
      // Cache state commits at decision time (see remote_acquire); a
      // deferred grant only delays the waiters' wake-up.
      (void)cm->insert_line(me, sp, d.state);
      if (d.deferred) {
        cm->engine_of(cm->domain_of_cell(me)).at(
            d.grant_time, [cm, me, sp] { finish_prefetch(cm, me, sp); });
        return;
      }
      finish_prefetch(cm, me, sp);
    });
    tick_cycles(2);  // issue cost; the fetch itself is asynchronous
    return;
  }

  unsigned target_leaf = 0;
  {
    const auto* e = cm_.dir_find(sp);
    target_leaf = cm_.responder_leaf(
        id_, e != nullptr ? *e : CoherentMachine::DirEntry{});
  }
  cm_.transport(me, sp, target_leaf, [cm, me, sp, exclusive](sim::Duration w) {
    auto& c2 = cm->cells_[me];
    ++c2.pmon.ring_requests;
    c2.pmon.inject_wait_ns += w;
    // If the sub-page is Atomic elsewhere the prefetch is simply dropped
    // (no retry — it is only a hint).
    if (exclusive) {
      (void)cm->commit_exclusive(me, sp, /*atomic=*/false);
    } else {
      (void)cm->commit_shared(me, sp);
    }
    finish_prefetch(cm, me, sp);
  });
  tick_cycles(2);  // issue cost; the fetch itself is asynchronous
}

void CoherentCpu::do_post_store(mem::Sva a) {
  lazy_sync();
  if (!cfg().has_poststore) {
    tick_cycles(1);
    return;
  }
  auto& c = cell();
  const mem::SubPageId sp = mem::subpage_of(a);
  if (!cache::writable(c.local.state(sp))) {
    tick_cycles(1);  // nothing to broadcast: we do not own the line
    return;
  }
  ++c.pmon.poststores_issued;
  // The issuing processor stalls until the data is written out to the
  // second-level cache (§3.3.3); the packet then rides asynchronously.
  tick_ns(cfg().localcache_write_ns);
  hard_sync();

  CoherentMachine* cm = &cm_;
  const unsigned me = id_;

  if (cm_.multi_domain_) {
    if (home_is_local(sp)) {
      cm_.transport(me, sp, cm_.home_leaf(sp), [cm, me, sp](sim::Duration w) {
        auto& c2 = cm->cells_[me];
        c2.pmon.inject_wait_ns += w;
        ++c2.pmon.ring_requests;
        cm->mb_poststore_home(me, sp);
      });
      return;
    }
    // Remote home: ride our own ring to the ARD, then cross (fire and
    // forget — the issuer never waits on a poststore).
    const unsigned dr = machine_.domain_of_cell(id_);
    const unsigned dh = cfg().domain_of_leaf(cm_.home_leaf(sp));
    cm_.transport(me, sp, cm_.leaf_of(me),
                  [cm, me, dr, dh, sp](sim::Duration w) {
                    auto& c2 = cm->cells_[me];
                    c2.pmon.inject_wait_ns += w;
                    ++c2.pmon.ring_requests;
                    cm->parallel_engine().send(
                        dr, dh, cm->parallel_engine().horizon(),
                        [cm, me, sp] { cm->mb_poststore_home(me, sp); });
                  });
    return;
  }

  unsigned target_leaf = cm_.leaf_of(id_);
  if (const auto* e = cm_.dir_find(sp)) {
    for (unsigned l = 0; l < cm_.leaf_count(); ++l) {
      if (l != target_leaf &&
          e->placeholders.intersects(cm_.leaf_mask(l))) {
        target_leaf = l;
        break;
      }
    }
  }
  cm_.transport(me, sp, target_leaf, [cm, me, sp](sim::Duration w) {
    auto& c2 = cm->cells_[me];
    c2.pmon.inject_wait_ns += w;
    ++c2.pmon.ring_requests;
    cm->commit_poststore(me, sp);
  });
}

// ---------------------------------------------------------------------------
// CoherentMachine
// ---------------------------------------------------------------------------

CoherentMachine::CoherentMachine(const MachineConfig& cfg) : Machine(cfg) {
  multi_domain_ = Machine::multi_domain();
  cells_.reserve(cfg_.nproc);
  std::uint64_t seed =
      0xA11CAC8Eull ^ (static_cast<std::uint64_t>(cfg_.nproc) << 32);
  for (unsigned i = 0; i < cfg_.nproc; ++i) {
    cells_.emplace_back(cfg_.subcache, cfg_.localcache, sim::splitmix64(seed));
  }
}

CoherentMachine::~CoherentMachine() = default;

void CoherentMachine::ensure_topology() {
  if (!dir_shards_.empty()) return;
  const unsigned leaves = std::max(1u, leaf_count());
  dir_shards_.resize(leaves);
  shard_stats_.resize(leaves);
  leaf_masks_.assign(leaves, cache::CellMask{});
  for (unsigned i = 0; i < cfg_.nproc; ++i) {
    leaf_masks_[leaf_of(i)].set(i);
  }
}

std::unique_ptr<Cpu> CoherentMachine::make_cpu(unsigned cell) {
  // make_cpu runs serially before any fiber; the virtual topology is
  // available here (it is not in the base constructor).
  ensure_topology();
  return std::make_unique<CoherentCpu>(*this, cell);
}

void CoherentMachine::reset_memory_system() {
  for (auto& c : cells_) {
    c.sub.clear();
    c.local.clear();
    c.inflight.clear();
    c.inflight_count = 0;
  }
  for (auto& shard : dir_shards_) shard.clear();
  if (checker_ != nullptr) checker_->reset();
}

namespace {

void save_mask(ckpt::Writer& w, const cache::CellMask& m) {
  for (unsigned i = 0; i < 1 + cache::CellMask::kHiWords; ++i) w.u64(m.word(i));
}

void load_mask(ckpt::Reader& r, cache::CellMask& m) {
  m.clear_all();
  for (unsigned i = 0; i < 1 + cache::CellMask::kHiWords; ++i) {
    std::uint64_t v = r.u64();
    while (v != 0) {
      const unsigned b = static_cast<unsigned>(__builtin_ctzll(v));
      m.set(i * 64 + b);
      v &= v - 1;
    }
  }
}

void save_pmon(ckpt::Writer& w, const cache::PerfMonitor& p) {
  w.u64(p.subcache_hits);
  w.u64(p.subcache_misses);
  w.u64(p.subcache_block_allocs);
  w.u64(p.localcache_hits);
  w.u64(p.localcache_misses);
  w.u64(p.page_allocs);
  w.u64(p.pages_evicted);
  w.u64(p.ring_requests);
  w.u64(p.ring_nacks);
  w.u64(p.atomic_retries);
  w.u64(static_cast<std::uint64_t>(p.ring_time_ns));
  w.u64(static_cast<std::uint64_t>(p.inject_wait_ns));
  w.u64(p.invalidations_received);
  w.u64(p.snarfs);
  w.u64(p.prefetches_issued);
  w.u64(p.poststores_issued);
}

void load_pmon(ckpt::Reader& r, cache::PerfMonitor& p) {
  p.subcache_hits = r.u64();
  p.subcache_misses = r.u64();
  p.subcache_block_allocs = r.u64();
  p.localcache_hits = r.u64();
  p.localcache_misses = r.u64();
  p.page_allocs = r.u64();
  p.pages_evicted = r.u64();
  p.ring_requests = r.u64();
  p.ring_nacks = r.u64();
  p.atomic_retries = r.u64();
  p.ring_time_ns = static_cast<sim::Duration>(r.u64());
  p.inject_wait_ns = static_cast<sim::Duration>(r.u64());
  p.invalidations_received = r.u64();
  p.snarfs = r.u64();
  p.prefetches_issued = r.u64();
  p.poststores_issued = r.u64();
}

void save_rng(ckpt::Writer& w, const sim::Rng& rng) {
  std::uint64_t st[4];
  rng.save_state(st);
  for (const std::uint64_t word : st) w.u64(word);
}

void load_rng(ckpt::Reader& r, sim::Rng& rng) {
  std::uint64_t st[4];
  for (std::uint64_t& word : st) word = r.u64();
  rng.restore_state(st);
}

}  // namespace

void CoherentMachine::ckpt_assert_quiescent() const {
  for (std::size_t c = 0; c < cells_.size(); ++c) {
    if (cells_[c].inflight_count != 0 || !cells_[c].inflight.empty()) {
      throw std::logic_error(
          "CoherentMachine::checkpoint: cell " + std::to_string(c) + " has " +
          std::to_string(cells_[c].inflight_count) +
          " in-flight prefetch(es) — capture refused; checkpoints are only "
          "legal at a quiescent point");
    }
  }
  for (std::size_t shard = 0; shard < dir_shards_.size(); ++shard) {
    dir_shards_[shard].for_each([shard](mem::SubPageId sp, const DirEntry& e) {
      if (e.busy) {
        throw std::logic_error(
            "CoherentMachine::checkpoint: directory entry for sub-page " +
            std::to_string(sp) + " (home leaf " + std::to_string(shard) +
            ") is inside a busy window — effects of a prior home decision "
            "are still in flight; capture refused");
      }
    });
  }
}

void CoherentMachine::ckpt_save(ckpt::Writer& w) const {
  w.u32(static_cast<std::uint32_t>(cells_.size()));
  for (const Cell& c : cells_) {
    w.u64(c.sub.frame_count());
    c.sub.for_each_frame([&w](mem::BlockId tag, std::uint32_t present,
                              bool valid) {
      w.u64(tag);
      w.u32(present);
      w.boolean(valid);
    });
    w.u64(c.sub.generation());
    w.u64(c.local.frame_count());
    c.local.for_each_frame(
        [&w](mem::PageId tag, bool valid,
             const std::array<cache::LineState, mem::kSubPagesPerPage>& sp) {
          w.u64(tag);
          w.boolean(valid);
          for (const cache::LineState s : sp) {
            w.u8(static_cast<std::uint8_t>(s));
          }
        });
    w.u64(c.local.generation());
    save_pmon(w, c.pmon);
    save_rng(w, c.rng);
    save_rng(w, c.prog_rng);
  }

  // Directory shards: entries in ascending SubPageId order so the image is
  // canonical regardless of FlatMap probe layout. `busy` is asserted false
  // by ckpt_assert_quiescent and not stored.
  w.u32(static_cast<std::uint32_t>(dir_shards_.size()));
  std::vector<std::pair<mem::SubPageId, const DirEntry*>> entries;
  for (const auto& shard : dir_shards_) {
    entries.clear();
    shard.for_each([&entries](mem::SubPageId sp, const DirEntry& e) {
      entries.emplace_back(sp, &e);
    });
    std::sort(entries.begin(), entries.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    w.u64(entries.size());
    for (const auto& [sp, e] : entries) {
      w.u64(sp);
      save_mask(w, e->holders);
      save_mask(w, e->placeholders);
      w.i64(e->owner);
      w.boolean(e->atomic);
      w.u8(e->resident_leaf);
    }
  }
}

void CoherentMachine::ckpt_load(ckpt::Reader& r) {
  const std::uint32_t ncells = r.u32();
  if (ncells != cells_.size()) {
    throw std::runtime_error("CoherentMachine::restore: checkpoint has " +
                             std::to_string(ncells) + " cell(s), machine has " +
                             std::to_string(cells_.size()));
  }
  for (Cell& c : cells_) {
    const std::uint64_t nsub = r.u64();
    if (nsub != c.sub.frame_count()) {
      throw std::runtime_error(
          "CoherentMachine::restore: sub-cache frame count mismatch");
    }
    for (std::size_t i = 0; i < nsub; ++i) {
      const mem::BlockId tag = r.u64();
      const std::uint32_t present = r.u32();
      const bool valid = r.boolean();
      c.sub.restore_frame(i, tag, present, valid);
    }
    c.sub.restore_generation(r.u64());
    const std::uint64_t nloc = r.u64();
    if (nloc != c.local.frame_count()) {
      throw std::runtime_error(
          "CoherentMachine::restore: local-cache frame count mismatch");
    }
    std::array<cache::LineState, mem::kSubPagesPerPage> sp{};
    for (std::size_t i = 0; i < nloc; ++i) {
      const mem::PageId tag = r.u64();
      const bool valid = r.boolean();
      for (auto& s : sp) s = static_cast<cache::LineState>(r.u8());
      c.local.restore_frame(i, tag, valid, sp);
    }
    c.local.restore_generation(r.u64());
    load_pmon(r, c.pmon);
    load_rng(r, c.rng);
    load_rng(r, c.prog_rng);
    c.inflight.clear();
    c.inflight_count = 0;
  }

  const std::uint32_t nshards = r.u32();
  if (nshards > 0) {
    ensure_topology();
    if (nshards != dir_shards_.size()) {
      throw std::runtime_error(
          "CoherentMachine::restore: checkpoint has " +
          std::to_string(nshards) + " directory shard(s), machine topology "
          "has " + std::to_string(dir_shards_.size()));
    }
  }
  for (std::uint32_t s = 0; s < nshards; ++s) {
    auto& shard = dir_shards_[s];
    shard.clear();
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
      const mem::SubPageId sp = r.u64();
      DirEntry& e = shard[sp];
      load_mask(r, e.holders);
      load_mask(r, e.placeholders);
      e.owner = static_cast<std::int16_t>(r.i64());
      e.atomic = r.boolean();
      e.busy = false;
      e.resident_leaf = r.u8();
    }
  }
}

void CoherentMachine::topo_snapshot(obs::topo::Snapshot& s) const {
  Machine::topo_snapshot(s);
  s.leaves = std::max(1u, leaf_count());
  s.cells_per_leaf = cfg_.cells_per_leaf != 0 ? cfg_.cells_per_leaf : nproc();
  for (unsigned leaf = 0; leaf < shard_stats_.size(); ++leaf) {
    const ShardStats& st = shard_stats_[leaf];
    if (st.requests == 0) continue;
    obs::topo::ShardUse u;
    u.home_leaf = leaf;
    u.requests = st.requests;
    u.grants = st.grants;
    u.nacks = st.nacks;
    u.busy_ns = st.busy_ns;
    // FlatMap iterates in hash order; sort (count desc, sub-page asc) and
    // keep the top 8 so the report is deterministic and bounded.
    st.hot.for_each([&u](mem::SubPageId sp, std::uint64_t n) {
      u.hot.emplace_back(sp, n);
    });
    std::sort(u.hot.begin(), u.hot.end(),
              [](const auto& a, const auto& b) {
                return a.second != b.second ? a.second > b.second
                                            : a.first < b.first;
              });
    if (u.hot.size() > 8) u.hot.resize(8);
    s.shards.push_back(std::move(u));
  }
}

CoherentMachine::DirView CoherentMachine::dir_view(mem::SubPageId sp) const {
  const auto* e = dir_find(sp);
  if (e == nullptr) return {};
  return {e->holders.word0(), e->placeholders.word0(), e->owner, e->atomic};
}

cache::CellMask CoherentMachine::dir_holders(mem::SubPageId sp) const {
  const auto* e = dir_find(sp);
  return e != nullptr ? e->holders : cache::CellMask{};
}

cache::CellMask CoherentMachine::dir_placeholders(mem::SubPageId sp) const {
  const auto* e = dir_find(sp);
  return e != nullptr ? e->placeholders : cache::CellMask{};
}

unsigned CoherentMachine::responder_leaf(unsigned cell,
                                         const DirEntry& e) const {
  const unsigned my = leaf_of(cell);
  if (e.holders.none_except(cell)) {
    return e.holders.any() ? my : e.resident_leaf;  // we (or nobody) hold it
  }
  // If any copy lives on a remote leaf the transaction must reach it.
  for (unsigned l = 0; l < leaf_count(); ++l) {
    if (l != my && e.holders.intersects_except(leaf_mask(l), cell)) return l;
  }
  return my;
}

bool CoherentMachine::insert_line(unsigned cell, mem::SubPageId sp,
                                  cache::LineState st) {
  Cell& c = cells_[cell];
  const auto pa = c.local.touch(sp, st, c.rng);
  if (pa.allocated) ++c.pmon.page_allocs;
  if (pa.evicted) {
    ++c.pmon.pages_evicted;
    on_page_evicted(cell, pa.evicted_page);
    // Inclusion: the sub-cache may hold blocks of the evicted page.
    const mem::BlockId first_block =
        pa.evicted_page * (mem::kPageBytes / mem::kBlockBytes);
    for (std::size_t b = 0; b < mem::kPageBytes / mem::kBlockBytes; ++b) {
      c.sub.invalidate_block(first_block + b);
    }
    // The evicted page's directory fix-ups and sub-cache inclusion are both
    // done; the *requested* sub-page is audited by its own commit hook.
    KSR_CHECK_HOOK(if (hooks_on()) checker_->on_transition(
        check::Ev::kPageEvict, cell, pa.evicted_page * mem::kSubPagesPerPage));
  }
  return pa.allocated;
}

void CoherentMachine::mb_evict_fixup(unsigned cell, mem::SubPageId sp) {
  auto* pe = dir_find(sp);
  if (pe == nullptr) return;
  DirEntry& e = *pe;
  e.holders.clear(cell);
  e.placeholders.clear(cell);
  if (e.owner == static_cast<std::int16_t>(cell)) {
    e.owner = -1;
    e.atomic = false;  // evicting a locked line would be a program bug
  }
  if (e.holders.none()) {
    e.resident_leaf = static_cast<std::uint8_t>(leaf_of(cell));
  }
}

void CoherentMachine::on_page_evicted(unsigned cell, mem::PageId page) {
  const unsigned dc = domain_of_cell(cell);
  for (std::size_t idx = 0; idx < mem::kSubPagesPerPage; ++idx) {
    const mem::SubPageId sp = page * mem::kSubPagesPerPage + idx;
    const unsigned dh =
        multi_domain_ ? cfg_.domain_of_leaf(home_leaf(sp)) : dc;
    if (dh == dc) {
      mb_evict_fixup(cell, sp);
      continue;
    }
    // Remote home: idempotent fire-and-forget fix-up. Channel FIFO order
    // guarantees it lands before any later request from this domain.
    par_.send(dc, dh, par_.horizon(),
              [this, cell, sp] { mb_evict_fixup(cell, sp); });
  }
}

void CoherentMachine::invalidate_at(unsigned cell, mem::SubPageId sp) {
  Cell& c = cells_[cell];
  c.local.set_state(sp, cache::LineState::kInvalid);
  c.sub.invalidate_subpage(sp);
  ++c.pmon.invalidations_received;
  // Runs on `cell`'s domain thread in every mode (synchronously when the
  // revoker shares the domain, via a boundary-channel event otherwise), so
  // log to that domain's shard on that domain's clock.
  const unsigned db = domain_of_cell(cell);
  if (obs::Tracer* tr = tracer_of(db)) {
    tr->log(engine_of(db).now(), obs::kCatCoherence, obs::kEvInvalidate, sp,
            cell);
  }
}

CoherentMachine::CommitResult CoherentMachine::commit_shared(
    unsigned cell, mem::SubPageId sp, std::uint32_t witness) {
  DirEntry& e = dir_entry(sp);
  if (e.atomic && e.owner != static_cast<std::int16_t>(cell)) {
    shard_note(sp, /*granted=*/false);
    if (tracer_ != nullptr) {
      tracer_->log(engine_.now(), obs::kCatCoherence, obs::kEvNack, sp, cell);
    }
    KSR_CHECK_HOOK(if (hooks_on()) checker_->on_transition(
        check::Ev::kNack, cell, sp));
    return {false, false};
  }
  shard_note(sp, /*granted=*/true);
  if (tracer_ != nullptr) {
    tracer_->log(engine_.now(), obs::kCatCoherence, obs::kEvGrantShared, sp,
                 cell, static_cast<std::int64_t>(e.holders.word0()), witness);
  }
  // Downgrade a previous exclusive owner.
  if (e.owner >= 0 && e.owner != static_cast<std::int16_t>(cell)) {
    cells_[static_cast<unsigned>(e.owner)].local.set_state(
        sp, cache::LineState::kShared);
  }
  e.owner = -1;
  e.atomic = false;

  // Read-snarfing: the data passing on the ring refreshes every invalid
  // placeholder (paper §2, §3.2.2).
  if (cfg_.read_snarfing) {
    e.placeholders.for_each_except(cell, [&](unsigned b) {
      cells_[b].local.set_state(sp, cache::LineState::kShared);
      ++cells_[b].pmon.snarfs;
      if (tracer_ != nullptr) {
        tracer_->log(engine_.now(), obs::kCatCoherence, obs::kEvSnarf, sp, b);
      }
      e.holders.set(b);
    });
    e.placeholders.retain_only(cell);
  }

  e.placeholders.clear(cell);
  const bool sole = e.holders.none_except(cell);
  e.holders.set(cell);
  const cache::LineState st =
      sole ? cache::LineState::kExclusive : cache::LineState::kShared;
  if (sole) {
    e.owner = static_cast<std::int16_t>(cell);
    e.resident_leaf = static_cast<std::uint8_t>(leaf_of(cell));
  }
  const bool pa = insert_line(cell, sp, st);
  KSR_CHECK_HOOK(if (hooks_on()) checker_->on_transition(
      check::Ev::kGrantShared, cell, sp));
  return {true, pa};
}

CoherentMachine::CommitResult CoherentMachine::commit_exclusive(
    unsigned cell, mem::SubPageId sp, bool atomic, std::uint32_t witness) {
  DirEntry& e = dir_entry(sp);
  if (e.atomic && e.owner != static_cast<std::int16_t>(cell)) {
    shard_note(sp, /*granted=*/false);
    if (tracer_ != nullptr) {
      tracer_->log(engine_.now(), obs::kCatCoherence, obs::kEvNack, sp, cell);
    }
    KSR_CHECK_HOOK(if (hooks_on()) checker_->on_transition(
        check::Ev::kNack, cell, sp));
    return {false, false};
  }
  shard_note(sp, /*granted=*/true);
  if (tracer_ != nullptr) {
    tracer_->log(engine_.now(), obs::kCatCoherence,
                 atomic ? obs::kEvGrantAtomic : obs::kEvGrantExclusive, sp,
                 cell, static_cast<std::int64_t>(e.holders.word0()), witness);
  }
  e.holders.for_each_except(cell, [&](unsigned b) {
    invalidate_at(b, sp);
    e.placeholders.set(b);
  });
  e.placeholders.clear(cell);
  e.holders.assign_single(cell);
  e.owner = static_cast<std::int16_t>(cell);
  e.atomic = atomic;
  e.resident_leaf = static_cast<std::uint8_t>(leaf_of(cell));
  const bool pa = insert_line(
      cell, sp,
      atomic ? cache::LineState::kAtomic : cache::LineState::kExclusive);
  KSR_CHECK_HOOK(if (hooks_on()) checker_->on_transition(
      atomic ? check::Ev::kGrantAtomic : check::Ev::kGrantExclusive, cell,
      sp));
  return {true, pa};
}

void CoherentMachine::commit_poststore(unsigned cell, mem::SubPageId sp) {
  DirEntry& e = dir_entry(sp);
  cache::CellMask ph = e.placeholders;
  ph.clear(cell);
  if (tracer_ != nullptr) {
    tracer_->log(engine_.now(), obs::kCatCoherence, obs::kEvPoststore, sp,
                 cell, static_cast<std::int64_t>(ph.word0()));
  }
  if (e.atomic) {
    // The line was locked (get_subpage) by another cell while the poststore
    // packet was in flight — the issuer's own copy has already been
    // invalidated by that acquisition. Refreshing placeholders now would
    // hand out readable copies of an Atomic line, which every read and
    // acquire path NACKs against; the update is dropped instead.
    KSR_CHECK_HOOK(if (hooks_on()) checker_->on_transition(
        check::Ev::kPoststore, cell, sp));
    return;
  }
  if (ph.none()) {  // pure bandwidth waste: nobody was listening
    KSR_CHECK_HOOK(if (hooks_on()) checker_->on_transition(
        check::Ev::kPoststore, cell, sp));
    return;
  }
  ph.for_each([&](unsigned b) {
    cells_[b].local.set_state(sp, cache::LineState::kShared);
    ++cells_[b].pmon.snarfs;
    if (tracer_ != nullptr) {
      tracer_->log(engine_.now(), obs::kCatCoherence, obs::kEvSnarf, sp, b);
    }
    e.holders.set(b);
  });
  e.placeholders.retain_only(cell);
  // Multiple copies now exist: the writer loses exclusivity — the §3.3.3
  // poststore pitfall (next-phase writers must re-invalidate).
  if (e.owner >= 0) {
    cells_[static_cast<unsigned>(e.owner)].local.set_state(
        sp, cache::LineState::kShared);
    e.owner = -1;
  }
  KSR_CHECK_HOOK(if (hooks_on()) checker_->on_transition(
      check::Ev::kPoststore, cell, sp));
}

// ---------------------------------------------------------------------------
// Multi-domain home-shard protocol (docs/PARALLEL.md).
//
// All directory bookkeeping for a sub-page mutates on the home domain's
// thread, at decision time. Home-domain cache-state effects (the local
// requester's insert, snarf refreshes, revocations of home cells) commit
// synchronously — exactly the single-domain semantics. Only cross-domain
// effects travel: revocations (invalidate / downgrade-to-Shared) ride
// wave 1 at the current horizon h, grants (snarf refreshes, the
// requester's reply) ride wave 2 at h + Δ whenever any revocation crossed
// a domain (else at h). Horizons are Δ-multiples, so a revoked reader's
// last stale access and the grantee's first access are separated by a
// quantum barrier — no simulated-time overlap, no host race.
//
// Ordering rule: same-time event order carries NO protocol meaning (the
// schedule fuzzer permutes it freely), so a decision that put ANY effect
// on a boundary channel marks the entry `busy` until its last effect time.
// Conflicting requests NACK while busy; the next decision therefore runs
// at t >= that effect time and its own effects land at the *next* horizon
// — strictly later than everything in flight. Grant-then-revoke races on
// one cell are impossible by construction, not by channel-FIFO luck.
// ---------------------------------------------------------------------------

CoherentMachine::MbDecision CoherentMachine::mb_decide(unsigned cell,
                                                       mem::SubPageId sp,
                                                       Acquire kind) {
  const unsigned dh = cfg_.domain_of_leaf(home_leaf(sp));
  const sim::Time h = par_.horizon();
  const sim::Duration delta = par_.quantum_ns();

  const bool requester_cross = domain_of_cell(cell) != dh;
  DirEntry* pe = dir_find(sp);
  if (pe == nullptr) {
    // First touch machine-wide, serialized at the home shard.
    DirEntry& e = dir_entry(sp);
    e.holders.assign_single(cell);
    e.owner = static_cast<std::int16_t>(cell);
    e.atomic = (kind == Acquire::kAtomic);
    e.resident_leaf = static_cast<std::uint8_t>(leaf_of(cell));
    shard_note(sp, /*granted=*/true);
    if (obs::Tracer* tr = tracer_of(dh)) {
      tr->log(engine_of(dh).now(), obs::kCatCoherence,
              kind == Acquire::kAtomic ? obs::kEvGrantAtomic
              : kind == Acquire::kShared ? obs::kEvGrantShared
                                         : obs::kEvGrantExclusive,
              sp, cell);
    }
    MbDecision d;
    d.ok = true;
    d.deferred = false;
    d.grant_time = h;
    d.state = kind == Acquire::kAtomic ? cache::LineState::kAtomic
                                       : cache::LineState::kExclusive;
    if (requester_cross) {
      // The reply rides the channel; hold the entry until it has applied
      // so no later decision can emit a same-time effect toward `cell`.
      e.busy = true;
      shard_stats_[home_leaf(sp)].busy_ns +=
          static_cast<std::uint64_t>(h - engine_of(dh).now());
      engine_of(dh).at(h, [this, sp] {
        if (auto* p = dir_find(sp)) p->busy = false;
      });
    }
    return d;
  }
  DirEntry& e = *pe;
  if (e.busy || (e.atomic && e.owner != static_cast<std::int16_t>(cell))) {
    shard_note(sp, /*granted=*/false);
    if (obs::Tracer* tr = tracer_of(dh)) {
      tr->log(engine_of(dh).now(), obs::kCatCoherence, obs::kEvNack, sp, cell);
    }
    return {};  // NACK: locked elsewhere, or a prior decision is in flight
  }
  shard_note(sp, /*granted=*/true);
  if (obs::Tracer* tr = tracer_of(dh)) {
    tr->log(engine_of(dh).now(), obs::kCatCoherence,
            kind == Acquire::kAtomic ? obs::kEvGrantAtomic
            : kind == Acquire::kShared ? obs::kEvGrantShared
                                       : obs::kEvGrantExclusive,
            sp, cell, static_cast<std::int64_t>(e.holders.word0()));
  }

  MbDecision d;
  d.ok = true;
  bool cross_revoke = false;
  bool cross_effect = requester_cross;  // the reply itself rides the channel

  // Wave 1: revoke writability. Home-domain targets commit synchronously
  // (we are their thread); cross-domain targets ride the channel at h.
  const auto revoke = [&](unsigned b, cache::LineState to) {
    const unsigned db = domain_of_cell(b);
    if (db == dh) {
      if (to == cache::LineState::kInvalid) {
        invalidate_at(b, sp);
      } else {
        cells_[b].local.set_state(sp, to);
      }
      return;
    }
    cross_revoke = true;
    cross_effect = true;
    if (to == cache::LineState::kInvalid) {
      par_.send(dh, db, h, [this, b, sp] {
        invalidate_at(b, sp);
      });
    } else {
      par_.send(dh, db, h, [this, b, sp] {
        cells_[b].local.set_state(sp, cache::LineState::kShared);
      });
    }
  };

  // Wave 2: grant readability at `gt`. Home-domain snarfers commit at
  // decision time (single-domain semantics; a same-engine event at gt
  // could tie with a later decision's revoke, and same-time order carries
  // no meaning). Cross-domain grants ride the channel; pmon mutations
  // execute on the target's own thread, inside the routed event.
  const auto grant_shared = [&](unsigned b, sim::Time gt) {
    const unsigned db = domain_of_cell(b);
    if (db == dh) {
      cells_[b].local.set_state(sp, cache::LineState::kShared);
      ++cells_[b].pmon.snarfs;
      if (obs::Tracer* tr = tracer_of(dh)) {
        tr->log(engine_of(dh).now(), obs::kCatCoherence, obs::kEvSnarf, sp, b);
      }
    } else {
      cross_effect = true;
      par_.send(dh, db, gt, [this, b, db, sp] {
        cells_[b].local.set_state(sp, cache::LineState::kShared);
        ++cells_[b].pmon.snarfs;
        if (obs::Tracer* tr = tracer_of(db)) {
          tr->log(engine_of(db).now(), obs::kCatCoherence, obs::kEvSnarf, sp,
                  b);
        }
      });
    }
  };

  if (kind == Acquire::kShared) {
    if (e.owner >= 0 && e.owner != static_cast<std::int16_t>(cell)) {
      revoke(static_cast<unsigned>(e.owner), cache::LineState::kShared);
    }
    e.owner = -1;
    e.atomic = false;
    const sim::Time gt = cross_revoke ? h + delta : h;
    if (cfg_.read_snarfing) {
      e.placeholders.for_each_except(cell, [&](unsigned b) {
        grant_shared(b, gt);
        e.holders.set(b);
      });
      e.placeholders.retain_only(cell);
    }
    e.placeholders.clear(cell);
    const bool sole = e.holders.none_except(cell);
    e.holders.set(cell);
    d.state = sole ? cache::LineState::kExclusive : cache::LineState::kShared;
    if (sole) {
      e.owner = static_cast<std::int16_t>(cell);
      e.resident_leaf = static_cast<std::uint8_t>(leaf_of(cell));
    }
    d.deferred = cross_revoke;
    d.grant_time = gt;
  } else {
    e.holders.for_each_except(cell, [&](unsigned b) {
      revoke(b, cache::LineState::kInvalid);
      e.placeholders.set(b);
    });
    e.placeholders.clear(cell);
    e.holders.assign_single(cell);
    e.owner = static_cast<std::int16_t>(cell);
    e.atomic = (kind == Acquire::kAtomic);
    e.resident_leaf = static_cast<std::uint8_t>(leaf_of(cell));
    d.state = e.atomic ? cache::LineState::kAtomic
                       : cache::LineState::kExclusive;
    d.deferred = cross_revoke;
    d.grant_time = cross_revoke ? h + delta : h;
  }

  if (cross_effect) {
    // Hold the entry until the last in-flight effect (revokes at h, grants
    // and the reply at grant_time >= h) has applied; the next decision then
    // runs strictly after and its effects land at a strictly later horizon.
    e.busy = true;
    shard_stats_[home_leaf(sp)].busy_ns +=
        static_cast<std::uint64_t>(d.grant_time - engine_of(dh).now());
    // Re-find by id when clearing: FlatMap storage may move underneath.
    engine_of(dh).at(d.grant_time, [this, sp] {
      if (auto* p = dir_find(sp)) p->busy = false;
    });
  }
  return d;
}

void CoherentMachine::mb_home_request(unsigned cell, unsigned req_dom,
                                      mem::SubPageId sp, Acquire kind,
                                      MbReply* rep, sim::FiberId fid) {
  // Runs in the home domain at channel-delivery time: model the level-1
  // transit + home-ring transaction, then decide and reply. The reply event
  // applies the grant (insert_line) on the requester's thread *before*
  // waking the fiber, so the channel's FIFO order serializes it against any
  // later revocation the home emits toward the same domain.
  home_transport(
      leaf_of(cell), home_leaf(sp), sp,
      [this, cell, req_dom, sp, kind, rep, fid](sim::Duration) {
        const unsigned dh = cfg_.domain_of_leaf(home_leaf(sp));
        const MbDecision d = mb_decide(cell, sp, kind);
        const sim::Time rt =
            d.ok && d.deferred ? d.grant_time : par_.horizon();
        const bool ok = d.ok;
        const cache::LineState st = d.state;
        par_.send(dh, req_dom, rt,
                  [this, cell, sp, ok, st, rep, fid, req_dom] {
                    if (ok) {
                      rep->ok = true;
                      rep->state = st;
                      rep->page_alloc = insert_line(cell, sp, st);
                    } else {
                      rep->ok = false;
                    }
                    sim::Engine& e = engine_of(req_dom);
                    e.wake(fid, e.now());
                  });
      });
}

void CoherentMachine::mb_poststore_home(unsigned cell, mem::SubPageId sp) {
  DirEntry* pe = dir_find(sp);
  if (pe == nullptr) return;
  DirEntry& e = *pe;
  // Locked or mid-decision: the update is dropped (a poststore is only an
  // opportunistic broadcast — see the single-domain commit for the Atomic
  // rationale; `busy` additionally covers the in-flight-effects window).
  if (e.atomic || e.busy) return;
  if (e.placeholders.none_except(cell)) return;  // nobody listening

  const unsigned dh = cfg_.domain_of_leaf(home_leaf(sp));
  const sim::Time h = par_.horizon();
  const sim::Duration delta = par_.quantum_ns();
  bool cross_revoke = false;
  bool cross_effect = false;

  if (obs::Tracer* tr = tracer_of(dh)) {
    cache::CellMask ph = e.placeholders;
    ph.clear(cell);
    tr->log(engine_of(dh).now(), obs::kCatCoherence, obs::kEvPoststore, sp,
            cell, static_cast<std::int64_t>(ph.word0()));
  }

  // Wave 1: the writable copy (often the poststorer itself) loses
  // exclusivity — the §3.3.3 poststore pitfall.
  if (e.owner >= 0) {
    const unsigned o = static_cast<unsigned>(e.owner);
    const unsigned db = domain_of_cell(o);
    if (db == dh) {
      cells_[o].local.set_state(sp, cache::LineState::kShared);
    } else {
      cross_revoke = true;
      cross_effect = true;
      par_.send(dh, db, h, [this, o, sp] {
        cells_[o].local.set_state(sp, cache::LineState::kShared);
      });
    }
    e.owner = -1;
  }

  // Wave 2: refresh every placeholder. Home-domain refreshes commit at
  // decision time (see mb_decide's grant rule); cross-domain refreshes
  // ride the channel at gt.
  const sim::Time gt = cross_revoke ? h + delta : h;
  e.placeholders.for_each_except(cell, [&](unsigned b) {
    const unsigned db = domain_of_cell(b);
    if (db == dh) {
      cells_[b].local.set_state(sp, cache::LineState::kShared);
      ++cells_[b].pmon.snarfs;
      if (obs::Tracer* tr = tracer_of(dh)) {
        tr->log(engine_of(dh).now(), obs::kCatCoherence, obs::kEvSnarf, sp, b);
      }
    } else {
      cross_effect = true;
      par_.send(dh, db, gt, [this, b, db, sp] {
        cells_[b].local.set_state(sp, cache::LineState::kShared);
        ++cells_[b].pmon.snarfs;
        if (obs::Tracer* tr = tracer_of(db)) {
          tr->log(engine_of(db).now(), obs::kCatCoherence, obs::kEvSnarf, sp,
                  b);
        }
      });
    }
    e.holders.set(b);
  });
  e.placeholders.retain_only(cell);

  if (cross_effect) {
    e.busy = true;
    shard_stats_[home_leaf(sp)].busy_ns +=
        static_cast<std::uint64_t>(gt - engine_of(dh).now());
    engine_of(dh).at(gt, [this, sp] {
      if (auto* p = dir_find(sp)) p->busy = false;
    });
  }
}

void CoherentMachine::mb_release_home(unsigned cell, mem::SubPageId sp) {
  auto* pe = dir_find(sp);
  if (pe != nullptr && pe->atomic &&
      pe->owner == static_cast<std::int16_t>(cell)) {
    pe->atomic = false;  // acquires NACKed until this landed — as a real
                         // unlock packet in flight would behave
  }
}

}  // namespace ksr::machine
