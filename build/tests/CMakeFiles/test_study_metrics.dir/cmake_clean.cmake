file(REMOVE_RECURSE
  "CMakeFiles/test_study_metrics.dir/test_study_metrics.cpp.o"
  "CMakeFiles/test_study_metrics.dir/test_study_metrics.cpp.o.d"
  "test_study_metrics"
  "test_study_metrics.pdb"
  "test_study_metrics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_study_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
