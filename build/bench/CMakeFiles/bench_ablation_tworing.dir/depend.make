# Empty dependencies file for bench_ablation_tworing.
# This may be replaced when dependencies are built.
