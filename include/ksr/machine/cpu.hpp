#pragma once

#include <cstdint>
#include <functional>
#include <type_traits>

#include "ksr/cache/perf_monitor.hpp"
#include "ksr/mem/heap.hpp"
#include "ksr/sim/engine.hpp"
#include "ksr/sim/rng.hpp"
#include "ksr/sim/time.hpp"

// The processor-side programming interface.
//
// A simulated program is an ordinary C++ callable receiving a Cpu&. Every
// shared-memory operation goes through this interface, which charges the
// machine-specific timing model (caches + interconnect) and then performs
// the real data movement, so programs compute genuine results while their
// reference streams drive the simulated machine.
//
// Cost accounting: each Cpu keeps a local clock that may run ahead of the
// global event clock during pure compute; before any globally visible
// operation the Cpu "syncs" — if other events are pending earlier than its
// local time it parks until then, so cross-processor orderings (spins,
// invalidation, lock hand-off) are causally correct and runs deterministic.
namespace ksr::machine {

class Machine;

class Cpu {
 public:
  enum class Op : std::uint8_t { kRead, kWrite };

  virtual ~Cpu() = default;
  Cpu(const Cpu&) = delete;
  Cpu& operator=(const Cpu&) = delete;

  [[nodiscard]] unsigned id() const noexcept { return id_; }
  [[nodiscard]] unsigned nproc() const noexcept;
  [[nodiscard]] Machine& machine() noexcept { return machine_; }

  /// Local clock, absolute simulated nanoseconds.
  [[nodiscard]] sim::Time now() const noexcept { return local_now_; }

  /// Seconds since this run() started — the unit the paper plots.
  [[nodiscard]] double seconds() const noexcept {
    return sim::to_seconds(local_now_ - epoch_);
  }

  /// Pure local compute: `n` CPU cycles (scales with the machine's clock,
  /// i.e. it is twice as fast on the KSR-2).
  void work(std::uint64_t n);

  /// Advance the local clock by raw nanoseconds (clock-independent delays).
  void idle_ns(sim::Duration d) { local_now_ += d; }

  // ---- Typed element access ----

  template <typename T>
  [[nodiscard]] T read(const mem::SharedArray<T>& a, std::size_t i) {
    access(a.addr(i), sizeof(T), Op::kRead);
    return a.value(i);
  }

  template <typename T>
  void write(mem::SharedArray<T>& a, std::size_t i, std::type_identity_t<T> v) {
    access(a.addr(i), sizeof(T), Op::kWrite);
    a.set_value(i, v);
  }

  // ---- Bulk streaming access (timing only; one sub-block at a time).
  // Use for contiguous sweeps: equivalent to touching every sub-block in the
  // range. Per-element instruction cost should be added with work().
  void read_range(mem::Sva base, std::size_t bytes) { range(base, bytes, Op::kRead); }
  void write_range(mem::Sva base, std::size_t bytes) { range(base, bytes, Op::kWrite); }

  // ---- KSR-1 explicit primitives (portable: degraded but meaningful
  // semantics on the Symmetry and Butterfly substrates) ----

  /// Acquire the sub-page containing `a` in Atomic (locked-exclusive) state.
  /// Blocks, retrying over the interconnect, until no other cell holds it
  /// Atomic — the hardware primitive the paper builds all locks from.
  void get_subpage(mem::Sva a) { do_get_subpage(a); }

  /// Release Atomic state previously obtained with get_subpage.
  void release_subpage(mem::Sva a) { do_release_subpage(a); }

  /// Hint: fetch the sub-page of `a` into the local cache without blocking.
  /// `exclusive` requests write permission up front (the KSR prefetch
  /// instruction's exclusive mode) so a subsequent store avoids the upgrade
  /// transaction.
  void prefetch(mem::Sva a, bool exclusive = false) {
    do_prefetch(a, exclusive);
  }

  /// Broadcast the (already written) sub-page of `a` to all cells holding
  /// invalid placeholders for it. The issuing processor stalls only for the
  /// local-cache write; the packet rides the ring asynchronously.
  void post_store(mem::Sva a) { do_post_store(a); }

  /// write() followed by post_store() — the common idiom.
  template <typename T>
  void poststore(mem::SharedArray<T>& a, std::size_t i,
                 std::type_identity_t<T> v) {
    write(a, i, v);
    post_store(a.addr(i));
  }

  [[nodiscard]] cache::PerfMonitor& pmon() noexcept { return *pmon_; }
  [[nodiscard]] sim::Rng& rng() noexcept { return *rng_; }

  /// Internal: called by Machine::run before/after the program body.
  void begin_run(sim::Time epoch, sim::FiberId fid) {
    epoch_ = epoch;
    local_now_ = epoch;
    fiber_ = fid;
  }

  /// Internal: bind this Cpu to its domain's engine (Machine::run does this
  /// before spawning the fiber; every sync primitive below then schedules
  /// on the owning domain's queue).
  void bind_engine(sim::Engine& e) noexcept { eng_ = &e; }

 protected:
  Cpu(Machine& m, unsigned id, cache::PerfMonitor& pmon, sim::Rng& rng)
      : machine_(m), id_(id), pmon_(&pmon), rng_(&rng) {}

  /// Charge the timing model for one access touching [a, a+bytes).
  /// Implemented per machine kind; may block the fiber.
  virtual void access(mem::Sva a, std::size_t bytes, Op op) = 0;
  virtual void do_get_subpage(mem::Sva a) = 0;
  virtual void do_release_subpage(mem::Sva a) = 0;
  virtual void do_prefetch(mem::Sva a, bool exclusive) = 0;
  virtual void do_post_store(mem::Sva a) = 0;

  /// Yield if any event is pending earlier than the local clock.
  void lazy_sync();
  /// Park until the global clock catches up to the local clock (required
  /// before interacting with the interconnect).
  void hard_sync();
  /// Block the fiber until some completion wakes it; returns at wake time
  /// and pulls the local clock forward.
  void block_until_woken();
  /// Wake this Cpu's fiber at time `t` (callable from completion callbacks).
  void wake_at(sim::Time t);

  void tick_cycles(std::uint64_t n);
  void tick_ns(sim::Duration d) { local_now_ += d; }

  void range(mem::Sva base, std::size_t bytes, Op op);

  /// The engine owning this cell's domain (machine.cpp resolves it on
  /// first use when Machine::run has not bound one yet).
  [[nodiscard]] sim::Engine& eng();

  Machine& machine_;
  unsigned id_;
  cache::PerfMonitor* pmon_;
  sim::Rng* rng_;
  sim::Engine* eng_ = nullptr;  // this cell's domain engine (bind_engine)
  sim::Time local_now_ = 0;
  sim::Time epoch_ = 0;
  sim::FiberId fiber_ = 0;
};

}  // namespace ksr::machine
