#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

// Open-addressing hash map for the coherence hot path.
//
// The machine-wide directory and the per-cell prefetch tables are keyed by
// SubPageId and hit on every memory access that escapes the sub-cache.
// std::unordered_map costs a heap node per entry and a pointer chase per
// probe; this table keeps key/value pairs in one flat array with linear
// probing (power-of-two capacity, multiplicative hashing), so a lookup is
// one cache line in the common case. Deletion uses backward-shift instead
// of tombstones, so probe sequences never degrade over time.
//
// Deliberately minimal: the coherence code only ever uses point lookups,
// insert-or-default, erase-by-key, and clear. Iteration (for_each) exists
// solely for host-side audits — the order is hash order, so simulated
// behaviour must never depend on it.
namespace ksr::cache {

template <typename K, typename V>
class FlatMap {
 public:
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  [[nodiscard]] V* find(K key) noexcept {
    if (size_ == 0) return nullptr;
    for (std::size_t i = bucket(key);; i = (i + 1) & mask_) {
      if (!used_[i]) return nullptr;
      if (slots_[i].key == key) return &slots_[i].value;
    }
  }
  [[nodiscard]] const V* find(K key) const noexcept {
    return const_cast<FlatMap*>(this)->find(key);
  }
  [[nodiscard]] bool contains(K key) const noexcept {
    return find(key) != nullptr;
  }

  /// Insert-or-lookup: default-constructs the value on first touch.
  V& operator[](K key) {
    if (slots_.empty() || (size_ + 1) * 8 > capacity() * 7) grow();
    for (std::size_t i = bucket(key);; i = (i + 1) & mask_) {
      if (!used_[i]) {
        used_[i] = 1;
        slots_[i].key = key;
        slots_[i].value = V{};
        ++size_;
        return slots_[i].value;
      }
      if (slots_[i].key == key) return slots_[i].value;
    }
  }

  /// Remove `key` if present; backward-shifts the displaced cluster suffix.
  bool erase(K key) noexcept {
    if (size_ == 0) return false;
    std::size_t i = bucket(key);
    for (;; i = (i + 1) & mask_) {
      if (!used_[i]) return false;
      if (slots_[i].key == key) break;
    }
    --size_;
    for (;;) {
      used_[i] = 0;
      slots_[i].value = V{};  // release payload resources eagerly
      std::size_t j = i;
      for (;;) {
        j = (j + 1) & mask_;
        if (!used_[j]) return true;
        const std::size_t k = bucket(slots_[j].key);
        // Move j back into the hole iff its home bucket k does not lie
        // cyclically inside (i, j] — i.e. probing from k would pass i.
        const bool movable = (j > i) ? (k <= i || k > j) : (k <= i && k > j);
        if (movable) {
          slots_[i] = std::move(slots_[j]);
          used_[i] = 1;
          i = j;
          break;
        }
      }
    }
  }

  /// Visit every (key, value) pair in unspecified (hash) order. Host-side
  /// audits only (invariant checker, tests); the visited map must not be
  /// mutated during the sweep.
  template <typename F>
  void for_each(F&& f) const {
    for (std::size_t i = 0; i < used_.size(); ++i) {
      if (used_[i]) f(slots_[i].key, slots_[i].value);
    }
  }

  void clear() noexcept {
    for (std::size_t i = 0; i < used_.size(); ++i) {
      if (used_[i]) {
        used_[i] = 0;
        slots_[i].value = V{};
      }
    }
    size_ = 0;
  }

 private:
  struct Slot {
    K key{};
    V value{};
  };

  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }

  [[nodiscard]] std::size_t bucket(K key) const noexcept {
    // Fibonacci multiplicative hash; keys are dense small integers, so the
    // multiply spreads consecutive sub-page ids across the table.
    return static_cast<std::size_t>(
               (static_cast<std::uint64_t>(key) * 0x9e3779b97f4a7c15ull) >>
               32) &
           mask_;
  }

  void grow() {
    const std::size_t ncap = slots_.empty() ? 64 : capacity() * 2;
    std::vector<Slot> old_slots = std::move(slots_);
    std::vector<std::uint8_t> old_used = std::move(used_);
    slots_.assign(ncap, Slot{});
    used_.assign(ncap, 0);
    mask_ = ncap - 1;
    for (std::size_t i = 0; i < old_slots.size(); ++i) {
      if (!old_used[i]) continue;
      for (std::size_t j = bucket(old_slots[i].key);; j = (j + 1) & mask_) {
        if (!used_[j]) {
          used_[j] = 1;
          slots_[j] = std::move(old_slots[i]);
          break;
        }
      }
    }
  }

  std::vector<Slot> slots_;
  std::vector<std::uint8_t> used_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace ksr::cache
