#include "ksr/serve/job.hpp"

#include <cstdio>
#include <stdexcept>

#include "ksr/ckpt/checkpoint.hpp"
#include "ksr/machine/factory.hpp"
#include "ksr/nas/bt.hpp"
#include "ksr/nas/cg.hpp"
#include "ksr/nas/ep.hpp"
#include "ksr/nas/is.hpp"
#include "ksr/nas/sp.hpp"

namespace ksr::serve {

namespace {

bool known_machine(const std::string& m) {
  return m == "ksr1" || m == "ksr2" || m == "symmetry" || m == "butterfly";
}

bool known_workload(const std::string& w) {
  return w == "ep" || w == "cg" || w == "is" || w == "sp" || w == "bt";
}

machine::MachineConfig build_config(const JobSpec& s, unsigned sim_threads) {
  machine::MachineConfig cfg = machine::MachineConfig::ksr1(s.procs);
  if (s.machine == "ksr2") cfg = machine::MachineConfig::ksr2(s.procs);
  if (s.machine == "symmetry") cfg = machine::MachineConfig::symmetry(s.procs);
  if (s.machine == "butterfly") {
    cfg = machine::MachineConfig::butterfly(s.procs);
  }
  if (s.scale > 1) cfg = cfg.scaled_by(s.scale);
  if (!s.snarf) cfg.read_snarfing = false;
  cfg.sched_fuzz_seed = s.fuzz_seed;
  cfg.sim_threads = sim_threads;
  if (s.cells_per_leaf != 0) cfg.cells_per_leaf = s.cells_per_leaf;
  cfg.cells_per_domain = s.cells_per_domain;
  return cfg;
}

}  // namespace

std::string JobSpec::validate() const {
  if (!known_machine(machine)) {
    return "unknown machine '" + machine +
           "' (expected ksr1|ksr2|symmetry|butterfly)";
  }
  if (!known_workload(workload)) {
    return "unknown workload '" + workload + "' (expected ep|cg|is|sp|bt)";
  }
  if (procs == 0) return "procs must be >= 1";
  if (scale == 0) return "scale must be >= 1";
  if (!restore_from.empty() && workload != "is") {
    return "restore_from applies only to the split-phase 'is' workload";
  }
  try {
    build_config(*this, 1).validate();
  } catch (const std::exception& e) {
    return e.what();
  }
  return {};
}

std::string JobSpec::canonical() const {
  // Fixed field order, every field always present. This string — not the
  // JSON spelling the client sent — is what the cache key hashes and what
  // each store file records for verification, so field-order or whitespace
  // differences between clients can never split or alias a cache slot.
  std::string c;
  c.reserve(192);
  auto add = [&c](const char* k, const std::string& v) {
    c += k;
    c += '=';
    c += v;
    c += ';';
  };
  auto add_u = [&add](const char* k, std::uint64_t v) {
    add(k, std::to_string(v));
  };
  add("machine", machine);
  add_u("procs", procs);
  add_u("scale", scale);
  add_u("snarf", snarf ? 1 : 0);
  add_u("fuzz_seed", fuzz_seed);
  add_u("cells_per_leaf", cells_per_leaf);
  add_u("cells_per_domain", cells_per_domain);
  add("workload", workload);
  add_u("seed", seed);
  add_u("log2_keys", log2_keys);
  add_u("log2_buckets", log2_buckets);
  add_u("pad_buckets", pad_buckets ? 1 : 0);
  add_u("n", n);
  add_u("nnz_per_row", nnz_per_row);
  add_u("iters", iters);
  add_u("log2_pairs", log2_pairs);
  if (restore_from.empty()) {
    add("ckpt", "-");
  } else {
    // Content-addressed: the preset's bytes, not its path, feed the key —
    // moving the file changes nothing, regenerating it differently misses.
    const std::vector<std::byte> image = ckpt::read_file(restore_from);
    char buf[2 * 8 + 1];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(
                      ckpt::fnv1a(image.data(), image.size())));
    add("ckpt", buf);
  }
  return c;
}

Json JobSpec::to_json() const {
  Json j = Json::object();
  j.set("machine", Json::str(machine));
  j.set("procs", Json::uint(procs));
  j.set("scale", Json::uint(scale));
  j.set("snarf", Json::boolean(snarf));
  j.set("fuzz_seed", Json::uint(fuzz_seed));
  j.set("cells_per_leaf", Json::uint(cells_per_leaf));
  j.set("cells_per_domain", Json::uint(cells_per_domain));
  j.set("workload", Json::str(workload));
  j.set("seed", Json::uint(seed));
  j.set("log2_keys", Json::uint(log2_keys));
  j.set("log2_buckets", Json::uint(log2_buckets));
  j.set("pad_buckets", Json::boolean(pad_buckets));
  j.set("n", Json::uint(n));
  j.set("nnz_per_row", Json::uint(nnz_per_row));
  j.set("iters", Json::uint(iters));
  j.set("log2_pairs", Json::uint(log2_pairs));
  j.set("restore_from", Json::str(restore_from));
  return j;
}

bool JobSpec::from_json(const Json& j, JobSpec* out, std::string* err) {
  if (!j.is_object()) {
    *err = "job spec must be a JSON object";
    return false;
  }
  JobSpec s;
  for (const auto& [key, v] : j.members()) {
    auto want_str = [&](std::string* field) {
      if (!v.is_string()) {
        *err = "field '" + key + "' must be a string";
        return false;
      }
      *field = v.as_string();
      return true;
    };
    auto want_bool = [&](bool* field) {
      if (v.kind() != Json::Kind::kBool) {
        *err = "field '" + key + "' must be a boolean";
        return false;
      }
      *field = v.as_bool();
      return true;
    };
    auto want_u64 = [&](std::uint64_t* field) {
      if (!v.as_u64(field)) {
        *err = "field '" + key + "' must be a non-negative integer";
        return false;
      }
      return true;
    };
    auto want_u32 = [&](unsigned* field) {
      std::uint64_t u = 0;
      if (!v.as_u64(&u) || u > 0xffffffffull) {
        *err = "field '" + key + "' must be a 32-bit non-negative integer";
        return false;
      }
      *field = static_cast<unsigned>(u);
      return true;
    };
    bool ok = true;
    if (key == "machine") ok = want_str(&s.machine);
    else if (key == "procs") ok = want_u32(&s.procs);
    else if (key == "scale") ok = want_u32(&s.scale);
    else if (key == "snarf") ok = want_bool(&s.snarf);
    else if (key == "fuzz_seed") ok = want_u64(&s.fuzz_seed);
    else if (key == "cells_per_leaf") ok = want_u32(&s.cells_per_leaf);
    else if (key == "cells_per_domain") ok = want_u32(&s.cells_per_domain);
    else if (key == "workload") ok = want_str(&s.workload);
    else if (key == "seed") ok = want_u64(&s.seed);
    else if (key == "log2_keys") ok = want_u32(&s.log2_keys);
    else if (key == "log2_buckets") ok = want_u32(&s.log2_buckets);
    else if (key == "pad_buckets") ok = want_bool(&s.pad_buckets);
    else if (key == "n") ok = want_u32(&s.n);
    else if (key == "nnz_per_row") ok = want_u32(&s.nnz_per_row);
    else if (key == "iters") ok = want_u32(&s.iters);
    else if (key == "log2_pairs") ok = want_u32(&s.log2_pairs);
    else if (key == "restore_from") ok = want_str(&s.restore_from);
    else {
      *err = "unknown job field '" + key + "'";
      return false;
    }
    if (!ok) return false;
  }
  *out = s;
  return true;
}

std::string CacheKey::hex() const {
  char buf[2 * 8 + 1];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(value));
  return buf;
}

CacheKey derive_key(const JobSpec& spec, std::uint32_t code_version) {
  std::string bytes = spec.canonical();
  bytes += "|code_version=" + std::to_string(code_version);
  bytes += "|ckpt_format=" + std::to_string(ckpt::kVersion);
  return CacheKey{ckpt::fnv1a(
      reinterpret_cast<const std::byte*>(bytes.data()), bytes.size())};
}

JobOutcome execute(const JobSpec& spec, unsigned sim_threads) {
  const std::string bad = spec.validate();
  if (!bad.empty()) throw std::runtime_error("job: " + bad);
  auto m = machine::make_machine(build_config(spec, sim_threads));

  Json r = Json::object();
  r.set("workload", Json::str(spec.workload));
  r.set("machine", Json::str(spec.machine));
  r.set("procs", Json::uint(spec.procs));
  // Kernel dispatch mirrors ksrsim's kernel command — same defaults, same
  // split-phase checkpoint flow — so a served job's fingerprint is directly
  // comparable with a `ksrsim kernel` run of the same flags.
  if (spec.workload == "ep") {
    nas::EpConfig c;
    c.log2_pairs = spec.log2_pairs != 0 ? spec.log2_pairs : 13;
    if (spec.seed != 0) c.seed = spec.seed;
    const nas::EpResult res = run_ep(*m, c);
    r.set("seconds", Json::real(res.seconds));
    r.set("accepted", Json::uint(res.accepted));
    r.set("sum_x", Json::real(res.sum_x));
    r.set("sum_y", Json::real(res.sum_y));
  } else if (spec.workload == "cg") {
    nas::CgConfig c;
    c.n = spec.n != 0 ? spec.n : 1000;
    c.nnz_per_row = spec.nnz_per_row != 0 ? spec.nnz_per_row : 24;
    c.iterations = spec.iters != 0 ? spec.iters : 4;
    if (spec.seed != 0) c.seed = spec.seed;
    const nas::CgResult res = run_cg(*m, c);
    r.set("seconds", Json::real(res.seconds));
    r.set("initial_residual", Json::real(res.initial_residual));
    r.set("final_residual", Json::real(res.final_residual));
    r.set("nnz", Json::uint(res.nnz));
  } else if (spec.workload == "is") {
    nas::IsConfig c;
    c.log2_keys = spec.log2_keys != 0 ? spec.log2_keys : 15;
    c.log2_buckets = spec.log2_buckets != 0 ? spec.log2_buckets : 10;
    c.pad_buckets = spec.pad_buckets;
    if (spec.seed != 0) c.seed = spec.seed;
    nas::IsResult res;
    if (!spec.restore_from.empty()) {
      nas::IsSplit split(*m, c);
      m->restore_from(spec.restore_from);
      res = split.run_ranked();
    } else {
      res = run_is(*m, c);
    }
    r.set("seconds", Json::real(res.seconds));
    r.set("ranks_valid", Json::boolean(res.ranks_valid));
    r.set("serial_phase_seconds", Json::real(res.serial_phase_seconds));
  } else if (spec.workload == "sp") {
    nas::SpConfig c;
    c.n = spec.n != 0 ? spec.n : 16;
    c.iterations = spec.iters != 0 ? spec.iters : 2;
    const nas::SpResult res = run_sp(*m, c);
    r.set("seconds", Json::real(res.total_seconds));
    r.set("seconds_per_iteration", Json::real(res.seconds_per_iteration));
    r.set("checksum", Json::real(res.checksum));
  } else {  // bt
    nas::BtConfig c;
    c.n = spec.n != 0 ? spec.n : 10;
    c.iterations = spec.iters != 0 ? spec.iters : 2;
    const nas::BtResult res = run_bt(*m, c);
    r.set("seconds", Json::real(res.total_seconds));
    r.set("seconds_per_iteration", Json::real(res.seconds_per_iteration));
    r.set("checksum", Json::real(res.checksum));
  }

  JobOutcome out;
  out.events = m->engine().events_dispatched();
  r.set("events_dispatched", Json::uint(out.events));
  out.result = r.dump();
  return out;
}

}  // namespace ksr::serve
