// CG solver walkthrough: generate a sparse SPD system, solve it with the
// parallel conjugate-gradient kernel on the simulated KSR-1, and compare
// both sparse-matrix formats the paper discusses (§3.3.1).
//
//   $ ./cg_solver [n] [nnz_per_row] [iterations]
#include <cstdio>
#include <string>

#include "ksr/machine/ksr_machine.hpp"
#include "ksr/nas/cg.hpp"

int main(int argc, char** argv) {
  using namespace ksr;  // NOLINT

  nas::CgConfig cfg;
  cfg.n = argc > 1 ? std::stoul(argv[1]) : 800;
  cfg.nnz_per_row = argc > 2 ? std::stoul(argv[2]) : 15;
  cfg.iterations = argc > 3 ? static_cast<unsigned>(std::stoul(argv[3])) : 6;

  // Host-side reference first: what should the residual be?
  const nas::CgResult ref = cg_reference(cfg);
  std::printf("system: n=%zu, nnz=%llu\n", cfg.n,
              static_cast<unsigned long long>(ref.nnz));
  std::printf("reference: ||r0||=%.4e -> ||r||=%.4e after %u iterations\n\n",
              ref.initial_residual, ref.final_residual, cfg.iterations);

  // Row-start / column-index format (the paper's conversion, Fig. 7):
  // each processor owns rows, no synchronization.
  std::printf("row-major format (the paper's choice):\n");
  std::printf("%8s %12s %9s %14s\n", "procs", "time (s)", "speedup",
              "residual ok?");
  double t1 = 0;
  for (unsigned p : {1u, 2u, 4u, 8u, 16u}) {
    machine::KsrMachine m(machine::MachineConfig::ksr1(p).scaled_by(64));
    const nas::CgResult r = run_cg(m, cfg);
    if (p == 1) t1 = r.seconds;
    const bool ok =
        std::abs(r.final_residual - ref.final_residual) <
        1e-9 * ref.initial_residual + 1e-12;
    std::printf("%8u %12.5f %9.2f %14s\n", p, r.seconds, t1 / r.seconds,
                ok ? "yes" : "NO!");
  }

  // Original column-start / row-index format: scatters into y, so every
  // update needs a sub-page lock — the reason the paper converted.
  std::printf("\ncolumn-major format (needs a lock per update):\n");
  nas::CgConfig col = cfg;
  col.format = nas::SparseFormat::kColumnMajor;
  col.n = std::min<std::size_t>(cfg.n, 300);  // locks make it slow; keep small
  col.iterations = 2;
  std::printf("%8s %12s\n", "procs", "time (s)");
  for (unsigned p : {1u, 4u}) {
    machine::KsrMachine m(machine::MachineConfig::ksr1(p).scaled_by(64));
    const nas::CgResult r = run_cg(m, col);
    std::printf("%8u %12.5f\n", p, r.seconds);
  }
  std::printf("\nThe row format wins because a distinct set of rows per\n"
              "processor lets each produce its slice of y with no\n"
              "synchronization at all (paper Section 3.3.1).\n");
  return 0;
}
