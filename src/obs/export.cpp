#include "ksr/obs/export.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace ksr::obs {

namespace {

struct PhaseInfo {
  char ph;                 // 'B', 'E' or 'i'
  std::string_view name;   // slice name for paired events; empty = event name
};

[[nodiscard]] PhaseInfo phase_of(std::uint16_t ev) noexcept {
  switch (ev) {
    case kEvBarrierArrive: return {'B', "barrier"};
    case kEvBarrierDepart: return {'E', "barrier"};
    case kEvLockAcquire: return {'B', "lock"};
    case kEvLockRelease: return {'E', "lock"};
    default: return {'i', {}};
  }
}

[[nodiscard]] std::string escaped(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

/// Nanoseconds as microseconds with three decimals, integer math only (the
/// exporter's byte-stability depends on never touching floating point).
[[nodiscard]] std::string ts_us(sim::Time t) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%llu.%03llu",
                static_cast<unsigned long long>(t / 1000),
                static_cast<unsigned long long>(t % 1000));
  return std::string(buf);
}

}  // namespace

ChromeTraceWriter::ChromeTraceWriter(std::ostream& os) : os_(os) {
  os_ << "{\"traceEvents\":[";
}

ChromeTraceWriter::~ChromeTraceWriter() { finish(); }

void ChromeTraceWriter::event_prefix() {
  os_ << (any_event_ ? ",\n" : "\n");
  any_event_ = true;
}

int ChromeTraceWriter::add_process(const Tracer& t,
                                   std::string_view process_name) {
  return add_process_impl(t, process_name, nullptr);
}

int ChromeTraceWriter::add_process(const Tracer& t,
                                   std::string_view process_name,
                                   const std::vector<CellTopo>& cells) {
  return add_process_impl(t, process_name, &cells);
}

int ChromeTraceWriter::add_process_impl(const Tracer& t,
                                        std::string_view process_name,
                                        const std::vector<CellTopo>* cells) {
  const int pid = next_pid_++;
  event_prefix();
  os_ << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << pid
      << ",\"tid\":0,\"args\":{\"name\":\"" << escaped(process_name) << "\"}}";
  event_prefix();
  os_ << "{\"ph\":\"M\",\"name\":\"process_sort_index\",\"pid\":" << pid
      << ",\"tid\":0,\"args\":{\"sort_index\":" << pid << "}}";
  // Drop accounting as metadata: a truncated JSON trace must be as visibly
  // truncated as the CSV footer makes the CSV dump.
  event_prefix();
  os_ << "{\"ph\":\"M\",\"name\":\"process_labels\",\"pid\":" << pid
      << ",\"tid\":0,\"args\":{\"labels\":\"events=" << t.size()
      << " dropped=" << t.dropped() << "\"}}";

  // Group records by thread track and sort each track by timestamp (stable:
  // log order breaks ties). Sync/stall records carry cpu-local clocks that
  // run ahead of the global engine clock, so in raw log order a track can
  // step backwards in time — Perfetto renders that as negative-duration or
  // overlapping slices. Every clock *within* one track is monotone, so a
  // per-track sort restores a well-formed timeline without altering any
  // recorded timestamp (see docs/OBSERVABILITY.md, clock semantics).
  std::map<std::uint64_t, std::vector<const Tracer::Record*>> tracks;
  for (const Tracer::Record& r : t) tracks[r.actor].push_back(&r);
  for (auto& [tid, recs] : tracks) {
    std::stable_sort(recs.begin(), recs.end(),
                     [](const Tracer::Record* a, const Tracer::Record* b) {
                       return a->t < b->t;
                     });
    event_prefix();
    if (cells != nullptr && tid < cells->size()) {
      // Leaf-ring grouping: the name carries the topology and the explicit
      // sort index clusters the tracks of one leaf ring into a contiguous
      // band (Perfetto otherwise sorts by bare tid, interleaving leaves at
      // scale). 4096 > any per-leaf cell count, so (leaf, tid) order holds.
      const CellTopo& ct = (*cells)[static_cast<std::size_t>(tid)];
      os_ << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" << pid
          << ",\"tid\":" << tid << ",\"args\":{\"name\":\"cell " << tid
          << " (leaf " << ct.leaf << ", dom " << ct.domain << ")\"}}";
      event_prefix();
      os_ << "{\"ph\":\"M\",\"name\":\"thread_sort_index\",\"pid\":" << pid
          << ",\"tid\":" << tid << ",\"args\":{\"sort_index\":"
          << (static_cast<std::uint64_t>(ct.leaf) * 4096 + tid) << "}}";
    } else {
      os_ << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" << pid
          << ",\"tid\":" << tid << ",\"args\":{\"name\":\"cell " << tid
          << "\"}}";
    }
    for (const Tracer::Record* r : recs) {
      const PhaseInfo p = phase_of(r->ev);
      const std::string_view name =
          p.name.empty() ? t.event_name(r->ev) : p.name;
      event_prefix();
      os_ << "{\"ph\":\"" << p.ph << "\",\"name\":\"" << escaped(name)
          << "\",\"cat\":\"" << escaped(t.category_name(r->cat))
          << "\",\"ts\":" << ts_us(r->t) << ",\"pid\":" << pid
          << ",\"tid\":" << tid;
      if (p.ph == 'i') os_ << ",\"s\":\"t\"";
      if (p.ph != 'E') {
        os_ << ",\"args\":{\"subject\":" << r->subject
            << ",\"detail\":" << r->detail;
        if (r->aux != 0) os_ << ",\"aux\":" << r->aux;
        os_ << "}";
      }
      os_ << "}";
    }
  }
  return pid;
}

void ChromeTraceWriter::finish() {
  if (finished_) return;
  finished_ = true;
  os_ << "\n],\"displayTimeUnit\":\"ns\"}\n";
}

void write_chrome_trace(const Tracer& t, std::ostream& os,
                        std::string_view process_name) {
  ChromeTraceWriter w(os);
  w.add_process(t, process_name);
  w.finish();
}

}  // namespace ksr::obs
