#include "ksr/nas/sp.hpp"

#include <algorithm>
#include <cmath>

#include "ksr/sync/barrier.hpp"

namespace ksr::nas {

namespace {

/// Grid accessor over one flat shared array holding the five SP arrays
/// (u, rhs, lhsa, lhsb, lhsc). The per-array base offset implements the
/// base-vs-padded layouts.
struct Grid {
  mem::SharedArray<double> mem;
  std::size_t n = 0;
  std::size_t array_stride = 0;  // elements between consecutive arrays

  [[nodiscard]] std::size_t idx(unsigned arr, std::size_t x, std::size_t y,
                                std::size_t z) const noexcept {
    return arr * array_stride + (z * n + y) * n + x;
  }
};

enum : unsigned { kU = 0, kRhs = 1, kLhsA = 2, kLhsB = 3, kLhsC = 4 };

/// One pentadiagonal line solve along x at line coordinates (y, z): forward
/// elimination then backward substitution, touching all five arrays per
/// point — the access pattern that exposes the sub-cache's random
/// replacement when the five streams are set-aligned.
void solve_line_x(machine::Cpu& cpu, Grid& g, std::size_t y, std::size_t z,
                  std::uint64_t work) {
  const std::size_t n = g.n;
  auto at = [&](unsigned arr, std::size_t i) { return g.idx(arr, i, y, z); };
  // Forward elimination.
  for (std::size_t i = 2; i < n; ++i) {
    const double a = cpu.read(g.mem, at(kLhsA, i));
    const double b = cpu.read(g.mem, at(kLhsB, i));
    const double r1 = cpu.read(g.mem, at(kRhs, i - 1));
    const double r2 = cpu.read(g.mem, at(kRhs, i - 2));
    const double r = cpu.read(g.mem, at(kRhs, i));
    cpu.write(g.mem, at(kRhs, i), r - a * r1 - b * r2);
    cpu.work(work);
  }
  // Backward substitution + solution update.
  for (std::size_t ii = n - 2; ii-- > 0;) {
    const std::size_t i = ii;
    const double c = cpu.read(g.mem, at(kLhsC, i));
    const double a = cpu.read(g.mem, at(kLhsA, i));
    const double r1 = cpu.read(g.mem, at(kRhs, i + 1));
    const double r2 = cpu.read(g.mem, at(kRhs, i + 2));
    const double r = cpu.read(g.mem, at(kRhs, i)) - c * r1 - 0.25 * a * r2;
    cpu.write(g.mem, at(kRhs, i), r);
    const double u = cpu.read(g.mem, at(kU, i));
    cpu.write(g.mem, at(kU, i), u + 0.2 * r);
    cpu.work(work);
  }
}

/// Plane-oriented sweep along y (d==1) or z (d==2) for a fixed value of the
/// remaining coordinate `other` (z for the y sweep, y for the z sweep). All
/// x values advance together with x innermost, so accesses stay contiguous
/// within sub-blocks — the "contiguous access strides" the paper credits
/// for the allocation units never becoming a problem (§4). The recurrence
/// runs along the sweep axis only, so reordering x is value-preserving.
void sweep_plane(machine::Cpu& cpu, Grid& g, unsigned d, std::size_t other,
                 std::uint64_t work) {
  const std::size_t n = g.n;
  auto at = [&](unsigned arr, std::size_t x, std::size_t i) {
    return d == 1 ? g.idx(arr, x, i, other) : g.idx(arr, x, other, i);
  };
  for (std::size_t i = 2; i < n; ++i) {
    for (std::size_t x = 0; x < n; ++x) {
      const double a = cpu.read(g.mem, at(kLhsA, x, i));
      const double b = cpu.read(g.mem, at(kLhsB, x, i));
      const double r1 = cpu.read(g.mem, at(kRhs, x, i - 1));
      const double r2 = cpu.read(g.mem, at(kRhs, x, i - 2));
      const double r = cpu.read(g.mem, at(kRhs, x, i));
      cpu.write(g.mem, at(kRhs, x, i), r - a * r1 - b * r2);
      cpu.work(work);
    }
  }
  for (std::size_t ii = n - 2; ii-- > 0;) {
    const std::size_t i = ii;
    for (std::size_t x = 0; x < n; ++x) {
      const double c = cpu.read(g.mem, at(kLhsC, x, i));
      const double a = cpu.read(g.mem, at(kLhsA, x, i));
      const double r1 = cpu.read(g.mem, at(kRhs, x, i + 1));
      const double r2 = cpu.read(g.mem, at(kRhs, x, i + 2));
      const double r = cpu.read(g.mem, at(kRhs, x, i)) - c * r1 - 0.25 * a * r2;
      cpu.write(g.mem, at(kRhs, x, i), r);
      const double u = cpu.read(g.mem, at(kU, x, i));
      cpu.write(g.mem, at(kU, x, i), u + 0.2 * r);
      cpu.work(work);
    }
  }
}

/// Prefetch every rhs/u sub-page of the slab `[lo, hi)` (z-planes when
/// `by_z`, else y-planes). The prefetch queue holds only a few outstanding
/// fetches, so the loop is software-pipelined: after each queue-full batch
/// the processor overlaps enough work for the batch to land — exactly how
/// the paper's hand-tuned code interleaves prefetches with computation.
void prefetch_slab(machine::Cpu& cpu, Grid& g, unsigned arr, bool by_z,
                   std::size_t lo, std::size_t hi) {
  const std::size_t n = g.n;
  const unsigned depth = cpu.machine().config().prefetch_depth;
  unsigned issued = 0;
  for (std::size_t s = lo; s < hi; ++s) {
    const std::size_t first = by_z ? g.idx(arr, 0, 0, s) : g.idx(arr, 0, s, 0);
    const std::size_t count = by_z ? n * n : n;  // contiguous run
    const mem::Sva a0 = g.mem.addr(first);
    const mem::Sva a1 = g.mem.addr(first + count);
    for (mem::Sva a = a0; a < a1; a += mem::kSubPageBytes) {
      cpu.prefetch(a, /*exclusive=*/true);  // the sweep writes these lines
      if (++issued % depth == 0) cpu.work(190);  // let the batch land
    }
  }
}

/// The poststore experiment (§3.3.3, §4): broadcast every rhs sub-page this
/// cell just wrote. The copies scatter into placeholders as Shared — and the
/// *next* phase writes the same sub-pages, paying a ring upgrade each where
/// an Exclusive hit would have been free. The issuing processor also stalls
/// per poststore until the line reaches its local cache.
void poststore_slab(machine::Cpu& cpu, Grid& g, unsigned arr, bool by_z,
                    std::size_t lo, std::size_t hi) {
  const std::size_t n = g.n;
  for (std::size_t s = lo; s < hi; ++s) {
    const std::size_t first = by_z ? g.idx(arr, 0, 0, s) : g.idx(arr, 0, s, 0);
    const std::size_t count = by_z ? n * n : n;
    const mem::Sva a0 = g.mem.addr(first);
    const mem::Sva a1 = g.mem.addr(first + count);
    for (mem::Sva a = a0; a < a1; a += mem::kSubPageBytes) {
      cpu.post_store(a);
    }
  }
}

}  // namespace

SpResult run_sp(machine::Machine& m, const SpConfig& cfg) {
  const std::size_t n = cfg.n;
  const std::size_t n3 = n * n * n;
  const unsigned nproc = m.nproc();

  // One extra 2 KB block per array staggers the sub-cache set mapping.
  const std::size_t pad =
      cfg.padded_layout ? mem::kBlockBytes / sizeof(double) : 0;
  Grid g;
  g.n = n;
  g.array_stride = n3 + pad;
  g.mem = m.alloc<double>("sp.grid", 5 * g.array_stride);

  // Host-side initial conditions (inputs; ownership set by warm-up below).
  for (std::size_t z = 0; z < n; ++z) {
    for (std::size_t y = 0; y < n; ++y) {
      for (std::size_t x = 0; x < n; ++x) {
        const double v = std::sin(0.1 * static_cast<double>(x + 2 * y)) +
                         0.01 * static_cast<double>(z);
        g.mem.set_value(g.idx(kU, x, y, z), v);
        g.mem.set_value(g.idx(kRhs, x, y, z), 0.5 * v);
        g.mem.set_value(g.idx(kLhsA, x, y, z), 0.05);
        g.mem.set_value(g.idx(kLhsB, x, y, z), 0.02);
        g.mem.set_value(g.idx(kLhsC, x, y, z), 0.04);
      }
    }
  }

  auto barrier = sync::make_barrier(m, sync::BarrierKind::kSystem);
  SpResult out;
  double t_total_max = 0;

  m.run([&](machine::Cpu& cpu) {
    const unsigned me = cpu.id();
    // Phases x,y partition the grid by z-planes; the z phase repartitions
    // by y-planes — the communication at the start of each phase.
    const std::size_t z_lo = n * me / nproc;
    const std::size_t z_hi = n * (me + 1) / nproc;
    const std::size_t y_lo = n * me / nproc;
    const std::size_t y_hi = n * (me + 1) / nproc;

    // Warm-up: touch my z-slab of all five arrays (first-touch ownership).
    for (unsigned arr = 0; arr < 5; ++arr) {
      for (std::size_t z = z_lo; z < z_hi; ++z) {
        cpu.read_range(g.mem.addr(g.idx(arr, 0, 0, z)),
                       n * n * sizeof(double));
      }
    }
    barrier->arrive(cpu);
    const double t0 = cpu.seconds();

    for (unsigned it = 0; it < cfg.iterations; ++it) {
      // ---- Phase X: lines along x, my z-slab. After the previous
      // iteration's z phase, parts of my slab live in the y-owners' caches.
      if (cfg.use_prefetch && it > 0) {
        prefetch_slab(cpu, g, kRhs, /*by_z=*/true, z_lo, z_hi);
        prefetch_slab(cpu, g, kU, /*by_z=*/true, z_lo, z_hi);
      }
      for (std::size_t z = z_lo; z < z_hi; ++z) {
        for (std::size_t y = 0; y < n; ++y) {
          solve_line_x(cpu, g, y, z, cfg.work_per_point);
        }
      }
      if (cfg.use_poststore) {
        poststore_slab(cpu, g, kRhs, /*by_z=*/true, z_lo, z_hi);
      }
      barrier->arrive(cpu);

      // ---- Phase Y: sweeps along y, same z-slab (no repartition).
      for (std::size_t z = z_lo; z < z_hi; ++z) {
        sweep_plane(cpu, g, 1, z, cfg.work_per_point);
      }
      if (cfg.use_poststore) {
        poststore_slab(cpu, g, kRhs, /*by_z=*/true, z_lo, z_hi);
      }
      barrier->arrive(cpu);

      // ---- Phase Z: sweeps along z, repartitioned by y.
      if (cfg.use_prefetch) {
        prefetch_slab(cpu, g, kRhs, /*by_z=*/false, y_lo, y_hi);
        prefetch_slab(cpu, g, kU, /*by_z=*/false, y_lo, y_hi);
      }
      for (std::size_t y = y_lo; y < y_hi; ++y) {
        sweep_plane(cpu, g, 2, y, cfg.work_per_point);
      }
      if (cfg.use_poststore) {
        poststore_slab(cpu, g, kRhs, /*by_z=*/false, y_lo, y_hi);
      }
      barrier->arrive(cpu);
    }

    const double dt = cpu.seconds() - t0;
    if (dt > t_total_max) t_total_max = dt;
  });

  out.total_seconds = t_total_max;
  out.seconds_per_iteration = t_total_max / cfg.iterations;
  double checksum = 0;
  for (std::size_t i = 0; i < n3; ++i) {
    checksum += g.mem.value(g.idx(kU, 0, 0, 0) + i);
  }
  out.checksum = checksum;
  return out;
}

}  // namespace ksr::nas
