#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "ksr/machine/machine.hpp"
#include "ksr/sync/padded.hpp"

// The classic spin-lock alternatives of Anderson [1] and
// Mellor-Crummey/Scott [13], ported to the simulated machines.
//
// The paper builds its read-write lock from Anderson's ticket lock and cites
// both studies; this header provides the full family so the trade-offs those
// papers measured can be replayed on the KSR's ring, the Symmetry's bus and
// the Butterfly:
//
//   test&set            — one hot sub-page, hardware Atomic state per try;
//   test&set w/ backoff — same, with bounded exponential backoff;
//   ticket              — FCFS; spins on a hot "now serving" counter
//                         (read-snarfing makes the refresh cheap on KSR);
//   Anderson array      — FCFS; each waiter spins on its OWN slot
//                         (one sub-page per slot: no hot spot);
//   MCS queue           — FCFS; waiters form a linked queue, each spinning
//                         on a flag in its own sub-page; O(1) traffic per
//                         hand-off even without coherent broadcast.
namespace ksr::sync {

enum class SpinLockKind {
  kTestAndSet,
  kTestAndSetBackoff,
  kTicket,
  kAnderson,
  kMcsQueue,
};

[[nodiscard]] constexpr std::string_view to_string(SpinLockKind k) noexcept {
  switch (k) {
    case SpinLockKind::kTestAndSet: return "test&set";
    case SpinLockKind::kTestAndSetBackoff: return "test&set+backoff";
    case SpinLockKind::kTicket: return "ticket";
    case SpinLockKind::kAnderson: return "anderson";
    case SpinLockKind::kMcsQueue: return "mcs-queue";
  }
  return "?";
}

[[nodiscard]] std::vector<SpinLockKind> all_spinlock_kinds();

class SpinLock {
 public:
  virtual ~SpinLock() = default;
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  /// With a tracer attached, acquisition is bracketed with sync/lock-acquire
  /// (start of the attempt) and lock-acquired (lock held; detail = wait ns);
  /// release logs lock-release. Without one, a single null test each.
  void acquire(machine::Cpu& cpu) {
    obs::Tracer* tr = cpu.machine().tracer_for_cell(cpu.id());
    if (tr == nullptr) {
      do_acquire(cpu);
      return;
    }
    const sim::Time t0 = cpu.now();
    tr->log(t0, obs::kCatSync, obs::kEvLockAcquire, 0, cpu.id());
    do_acquire(cpu);
    tr->log(cpu.now(), obs::kCatSync, obs::kEvLockAcquired, 0, cpu.id(),
            static_cast<std::int64_t>(cpu.now() - t0));
  }

  void release(machine::Cpu& cpu) {
    do_release(cpu);
    if (obs::Tracer* tr = cpu.machine().tracer_for_cell(cpu.id())) {
      tr->log(cpu.now(), obs::kCatSync, obs::kEvLockRelease, 0, cpu.id());
    }
  }

  [[nodiscard]] virtual std::string_view name() const = 0;

 protected:
  SpinLock() = default;

  virtual void do_acquire(machine::Cpu& cpu) = 0;
  virtual void do_release(machine::Cpu& cpu) = 0;
};

/// Build a spin lock of `kind` sized for all cells of `m`.
[[nodiscard]] std::unique_ptr<SpinLock> make_spinlock(machine::Machine& m,
                                                      SpinLockKind kind);

}  // namespace ksr::sync
