#pragma once

#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <vector>

#include "ksr/sim/callback.hpp"
#include "ksr/sim/event_heap.hpp"
#include "ksr/sim/fiber_context.hpp"
#include "ksr/sim/time.hpp"

#if !KSR_HAVE_FAST_FIBERS
#include <ucontext.h>
#endif

// Deterministic discrete-event engine with cooperative fibers.
//
// Simulated processors run their programs on cooperative fibers. The engine
// owns a single event queue ordered by (time, insertion sequence); ties
// broken by sequence make every run bit-reproducible. Exactly one fiber runs
// at a time (the whole simulator is single-threaded), so simulated programs
// need no host-level synchronization.
//
// Host fast path: events carry an InlineFn (no allocation for engine-sized
// captures) in a 4-ary heap (see event_heap.hpp), and fiber switches use a
// hand-rolled register swap instead of swapcontext when KSR_FAST_FIBERS is
// on (see fiber_context.hpp). Neither changes simulated timing by a cycle.
//
// A fiber interacts with simulated time through three verbs:
//   * wait_until(t) — park until simulated time t (local compute, fixed-cost
//     cache access, backoff).
//   * block()       — park indefinitely; some component completes the fiber's
//     transaction later and calls wake().
//   * the engine-level at()/in() — schedule an arbitrary callback (used by
//     the interconnect models for slot ticks and packet delivery).
namespace ksr::sim {

/// Identifies a fiber spawned on an Engine. Stable for the engine's lifetime.
using FiberId = std::uint32_t;

class Engine {
 public:
  static constexpr std::size_t kDefaultStackBytes = 256 * 1024;

  Engine() { events_.reserve(1024); }
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine();

  /// Current simulated time: the timestamp of the event being dispatched.
  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Schedule `fn` at absolute simulated time `t` (>= now()).
  void at(Time t, InlineFn fn);

  /// Schedule `fn` after duration `d`.
  void in(Duration d, InlineFn fn) { at(now_ + d, std::move(fn)); }

  /// Schedule a host-side *observer* callback at simulated time `t`. The
  /// observer lane is a second queue drained just before the main event at
  /// or after `t` dispatches: observers never count toward
  /// events_dispatched(), never perturb the main queue's (time, seq) order,
  /// and must not mutate simulated state — they exist so instrumentation
  /// (e.g. obs::MetricsRegistry sampling on the simulated clock) is
  /// non-perturbing by construction. Observers still pending when the main
  /// queue drains are dropped without running (take a final sample
  /// explicitly instead of relying on one).
  void observe_at(Time t, InlineFn fn);

  /// observe_at(now() + d, fn).
  void observe_in(Duration d, InlineFn fn) { observe_at(now_ + d, std::move(fn)); }

  /// Create a fiber that starts running at time `start`.
  FiberId spawn(std::function<void()> body, Time start = 0,
                std::size_t stack_bytes = kDefaultStackBytes);

  /// Dispatch events until the queue drains. Throws if fibers are still
  /// blocked when the queue empties (simulated deadlock), or rethrows the
  /// first exception escaping a fiber body.
  void run();

  /// Dispatch every event with time < `horizon`, then return (leaving later
  /// events, pending observers, and blocked fibers untouched). This is the
  /// quantum slice primitive of ParallelEngine: a conservative quantum
  /// advances each domain with run_until(quantum_end), merges boundary
  /// events, and repeats. Dispatch order within the slice is exactly the
  /// (time, seq) order run() would use, so slicing a run into any sequence
  /// of horizons is bit-identical to one run() — finish_run() supplies
  /// run()'s end-of-run checks once the last slice is done.
  void run_until(Time horizon);

  /// End-of-run bookkeeping shared by run() and the quantum loop: drops
  /// (without running) observers scheduled past the last main event and
  /// throws if fibers are still blocked (simulated deadlock). Call after
  /// the final run_until() slice; run() calls it internally.
  void finish_run();

  /// --- Fiber-side API (must be called from inside a running fiber). ---

  /// Park the current fiber until simulated time `t`.
  void wait_until(Time t);

  /// Park the current fiber until some component calls wake() on it.
  void block();

  /// Wake a blocked fiber at time `t` (>= now()). Throws std::logic_error if
  /// the fiber's body has already returned — waking a finished fiber is
  /// always a component bug, not a race to be ignored.
  void wake(FiberId id, Time t);

  /// True when called from inside a fiber body.
  [[nodiscard]] bool in_fiber() const noexcept { return current_ != nullptr; }

  /// Id of the currently running fiber. Only valid when in_fiber().
  [[nodiscard]] FiberId current_fiber() const noexcept;

  /// Earliest pending event time, or the sentinel Time maximum when idle.
  [[nodiscard]] Time next_event_time() const noexcept;

  /// Number of spawned fibers whose bodies have not yet returned.
  [[nodiscard]] std::size_t live_fibers() const noexcept { return live_fibers_; }

  /// Total events dispatched so far (host-side instrumentation).
  [[nodiscard]] std::uint64_t events_dispatched() const noexcept { return dispatched_; }

  /// Schedule fuzzing (ksrfuzz, docs/CHECKING.md): when `seed` is nonzero,
  /// same-time ties in the main event lane are broken by a seeded bijective
  /// hash of the insertion sequence instead of the sequence itself. Every
  /// legal interleaving constraint (time order) is preserved — only the
  /// arbitrary tie order moves — and a given seed is fully deterministic.
  /// Set before scheduling any events; 0 restores insertion order.
  void set_tie_break_seed(std::uint64_t seed) noexcept { fuzz_seed_ = seed; }
  [[nodiscard]] std::uint64_t tie_break_seed() const noexcept {
    return fuzz_seed_;
  }

  /// True when this build switches fibers with the hand-rolled register
  /// swap rather than swapcontext (host-performance introspection).
  [[nodiscard]] static constexpr bool fast_fibers() noexcept {
    return KSR_HAVE_FAST_FIBERS != 0;
  }

  /// --- Checkpoint support (docs/CHECKPOINT.md). ---

  /// True when the engine holds no simulated state that would have to be
  /// serialized mid-flight: no pending events or observers, and every
  /// spawned fiber's body has returned. Between run() calls on a finished
  /// workload this is always true; a checkpoint is only legal then.
  [[nodiscard]] bool quiescent() const noexcept {
    return live_fibers_ == 0 && events_.empty() && observers_.empty();
  }

  /// Clock snapshot for checkpointing: current time, insertion sequence,
  /// and dispatched-event count. Only meaningful while quiescent().
  struct ClockState {
    Time now = 0;
    std::uint64_t seq = 0;
    std::uint64_t dispatched = 0;
  };
  [[nodiscard]] ClockState clock_state() const noexcept {
    return {now_, seq_, dispatched_};
  }

  /// Restore a clock snapshot taken by clock_state(). The engine must be
  /// quiescent (no events to re-time); subsequent at()/spawn() calls see
  /// the restored time and sequence, so a restored run schedules with
  /// exactly the (time, seq) keys the uninterrupted run would have used.
  void restore_clock_state(const ClockState& s) noexcept {
    now_ = s.now;
    seq_ = s.seq;
    dispatched_ = s.dispatched;
  }

  /// Fibers ever spawned on this engine. Spawn ids are assigned from this
  /// count, and ids continue across run() calls on a live machine — so a
  /// restored engine must resume the same numbering.
  [[nodiscard]] std::size_t fibers_spawned() const noexcept {
    return fibers_.size();
  }

  /// Pad the fiber table with completed placeholders until `n` fibers have
  /// "been spawned", so the next spawn() gets the same FiberId the
  /// uninterrupted run would have assigned. Placeholders hold no stack and
  /// can never be woken (wake() on a done fiber throws, as always).
  void restore_fibers_spawned(std::size_t n) {
    while (fibers_.size() < n) {
      auto f = std::make_unique<Fiber>();
      f->done = true;
      f->engine = this;
      f->id = static_cast<FiberId>(fibers_.size());
      fibers_.push_back(std::move(f));
    }
  }

 private:
  struct Fiber {
    std::function<void()> body;
    std::unique_ptr<std::byte[]> stack;
    std::size_t stack_bytes = 0;
#if KSR_HAVE_FAST_FIBERS
    void* sp = nullptr;  // saved stack pointer while suspended
#else
    ucontext_t ctx{};
#endif
    bool started = false;
    bool done = false;
    Engine* engine = nullptr;
    FiberId id = 0;
  };

  // Heap entries are 24 bytes: the callback lives in a slab pool, addressed
  // by slot, so sifting moves small trivially-copyable records and never
  // touches (or moves) the callbacks themselves. Slots are recycled through
  // a freelist — after warm-up the schedule path allocates nothing.
  struct Event {
    Time t;
    std::uint64_t seq;
    std::uint32_t slot;
  };
  struct EventEarlier {
    bool operator()(const Event& a, const Event& b) const noexcept {
      return a.t != b.t ? a.t < b.t : a.seq < b.seq;
    }
  };

#if KSR_HAVE_FAST_FIBERS
  static void fiber_main(void* arg);
#else
  static void trampoline(unsigned hi, unsigned lo);
#endif
  void resume(Fiber& f);
  void switch_to_scheduler();

  Time now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t fuzz_seed_ = 0;  // see set_tie_break_seed()
  std::uint64_t dispatched_ = 0;
  // Callback slab: fixed-size chunks give every slot a stable address, so a
  // callback can be invoked in place even while it schedules new events
  // (which may grow the chunk table but never moves existing slots).
  static constexpr std::uint32_t kPoolChunk = 256;  // slots per chunk
  InlineFn& pool_slot(std::uint32_t s) noexcept {
    return pool_[s / kPoolChunk][s % kPoolChunk];
  }

  std::uint32_t claim_slot(InlineFn fn);
  void drain_observers(Time horizon);

  EventQueue<Event, EventEarlier, 4> events_;
  EventQueue<Event, EventEarlier, 4> observers_;  // see observe_at()
  std::vector<std::unique_ptr<InlineFn[]>> pool_;  // chunked callback slots
  std::vector<std::uint32_t> free_slots_;          // recycled pool slots
  std::uint32_t pool_used_ = 0;                    // slots ever allocated
  std::vector<std::unique_ptr<Fiber>> fibers_;
  std::size_t live_fibers_ = 0;
  Fiber* current_ = nullptr;
#if KSR_HAVE_FAST_FIBERS
  void* sched_sp_ = nullptr;  // scheduler context while a fiber runs
#else
  ucontext_t sched_ctx_{};
#endif
  std::exception_ptr pending_exception_;
};

}  // namespace ksr::sim
