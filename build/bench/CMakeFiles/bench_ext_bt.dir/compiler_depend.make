# Empty compiler generated dependencies file for bench_ext_bt.
# This may be replaced when dependencies are built.
