# Empty dependencies file for test_ring_model.
# This may be replaced when dependencies are built.
