#pragma once

#include <cstdint>

#include "ksr/machine/machine.hpp"

// NAS 3-D FFT (FT) kernel — extension.
//
// With MG this completes the five NAS kernels (the paper implemented EP, CG
// and IS). FT forward-transforms an N^3 complex array, applies the
// time-evolution phase factors, and inverse-transforms. The x and y line
// FFTs run on a z-slab partition; the z-direction FFTs repartition by
// y-planes — the transpose-style, all-to-all communication that makes FT
// the classic network stress test: every iteration moves the entire array
// across the partition boundary, so this kernel drives the ring far harder
// per flop than CG or SP.
namespace ksr::nas {

struct FtConfig {
  unsigned log2_n = 4;      // grid edge 2^log2_n (paper-scale FT is 256^3)
  unsigned iterations = 1;  // evolve+inverse steps after the forward FFT
  std::uint64_t work_per_butterfly = 10;  // complex mul/add FP work
  std::uint64_t seed = 424243;
};

struct FtResult {
  double seconds = 0.0;          // timed region (slowest cell)
  double checksum = 0.0;         // sum |X|^2 after forward FFT (Parseval)
  double roundtrip_error = 0.0;  // max |ifft(fft(u)) - u| (must be ~0)
};

/// Run FT on the machine; all cells participate.
FtResult run_ft(machine::Machine& m, const FtConfig& cfg);

}  // namespace ksr::nas
