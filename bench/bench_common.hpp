#pragma once

// Shared helpers for the paper-reproduction bench binaries. Each binary
// regenerates one table or figure of the paper; `--csv` prints
// machine-readable output, `--quick` shrinks sizes for smoke runs and
// `--full` approaches paper-like sizes.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "ksr/host/sweep_runner.hpp"
#include "ksr/machine/factory.hpp"
#include "ksr/obs/session.hpp"
#include "ksr/study/metrics.hpp"
#include "ksr/study/table.hpp"
#include "ksr/sync/barrier.hpp"

namespace ksr::bench {

using host::SweepRunner;
using study::BenchOptions;
using study::TextTable;

/// Build the obs::Session options from the shared bench CLI flags. `name`
/// (the bench name) seeds the default trace filename.
inline obs::Session make_obs_session(const BenchOptions& o,
                                     const std::string& name) {
  obs::SessionOptions s;
  s.trace = o.trace;
  s.categories = o.trace_cats;
  s.trace_out = o.trace_out;
  s.metrics_csv = o.metrics_csv;
  s.report = o.report;
  s.topo_report = o.topo_report;
  if (o.trace_cap != 0) s.trace_capacity = o.trace_cap;
  return obs::Session(std::move(s), name);
}

/// RAII observability for machines built on the main thread: attaches a
/// JobObs to `m` for the current scope and streams it into the session on
/// destruction. Declare it right after the machine (so it is destroyed — and
/// takes its final metrics sample — while the machine is still alive).
class ScopedObs {
 public:
  ScopedObs(obs::Session& session, machine::Machine& m, std::string label)
      : session_(session), label_(std::move(label)) {
    if (session_.active()) {
      obs_ = session_.job();
      obs_.attach(m);
    }
  }
  ~ScopedObs() {
    if (session_.active()) {
      obs_.finish();
      session_.collect(std::move(obs_), label_);
    }
  }
  ScopedObs(const ScopedObs&) = delete;
  ScopedObs& operator=(const ScopedObs&) = delete;

 private:
  obs::Session& session_;
  std::string label_;
  obs::JobObs obs_;
};

inline void print_header(const std::string& title, const std::string& paper_ref) {
  std::cout << "==================================================================\n"
            << title << "\n"
            << "(reproduces " << paper_ref << ")\n"
            << "==================================================================\n";
}

/// Host-side (wall-clock) metrics for one paper bench binary. Accumulate
/// `events_dispatched()` from every machine the binary creates, then print a
/// single machine-parsable line at exit:
///
///   [host] bench=<name> events_dispatched=<n> wall_ms=<ms> jobs=<j>
///       sim_threads=<t> quanta=<q>
///
/// `scripts/bench_host.sh` greps these lines into BENCH_host.json; the
/// events_dispatched total doubles as a bit-determinism fingerprint (it must
/// be identical across host-side optimisation work, including any `--jobs`
/// or `--sim-threads` value). `quanta` counts conservative-quantum barriers
/// crossed by the parallel engine (0 on the serial inline path). The line
/// goes to stderr so that `--csv` stdout stays byte-for-byte diffable
/// between builds.
class HostMetrics {
 public:
  explicit HostMetrics(std::string name)
      : name_(std::move(name)), start_(std::chrono::steady_clock::now()) {}

  void add(machine::Machine& m) {
    events_ += m.engine().events_dispatched();
    quanta_ += m.parallel_engine().quanta();
  }

  /// Jobs run on pool threads and destroy their Machine before merging, so
  /// they report the engine's final event count through their result struct.
  void add_events(std::uint64_t n) { events_ += n; }

  /// Quantum-barrier count from a pool-thread job's parallel engine.
  void add_quanta(std::uint64_t n) { quanta_ += n; }

  /// Record the effective host worker count for the [host] line.
  void set_jobs(unsigned jobs) { jobs_ = jobs; }

  /// Record the per-simulation engine thread count for the [host] line.
  void set_sim_threads(unsigned n) { sim_threads_ = n; }

  /// Wall-clock milliseconds a warm-start fork saved by restoring a shared
  /// checkpoint instead of re-simulating the warm-up (docs/CHECKPOINT.md).
  /// Calling this at all (even with 0) adds ` warm_saved_ms=` to the [host]
  /// line; benches without a warm-start mode keep the original line.
  void add_warm_saved_ms(std::uint64_t ms) {
    warm_start_ = true;
    warm_saved_ms_ += ms;
  }

  ~HostMetrics() {
    const auto wall = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - start_);
    std::cerr << "[host] bench=" << name_ << " events_dispatched=" << events_
              << " wall_ms=" << wall.count() << " jobs=" << jobs_
              << " sim_threads=" << sim_threads_ << " quanta=" << quanta_;
    if (warm_start_) std::cerr << " warm_saved_ms=" << warm_saved_ms_;
    std::cerr << "\n";
  }

  HostMetrics(const HostMetrics&) = delete;
  HostMetrics& operator=(const HostMetrics&) = delete;

 private:
  std::string name_;
  std::chrono::steady_clock::time_point start_;
  std::uint64_t events_ = 0;
  std::uint64_t quanta_ = 0;
  unsigned jobs_ = 1;
  unsigned sim_threads_ = 1;
  bool warm_start_ = false;
  std::uint64_t warm_saved_ms_ = 0;
};

/// Mean barrier episode time on `m` using `kind`, over `episodes` episodes
/// with small random arrival skew (as the paper measures).
inline double barrier_episode_seconds(machine::Machine& m,
                                      sync::BarrierKind kind, int episodes) {
  auto barrier = sync::make_barrier(m, kind);
  double total = 0;
  m.run([&](machine::Cpu& cpu) {
    // One warm-up episode outside the timed region.
    barrier->arrive(cpu);
    const double t0 = cpu.seconds();
    for (int e = 0; e < episodes; ++e) {
      cpu.work(cpu.rng().below(500));
      barrier->arrive(cpu);
    }
    const double dt = cpu.seconds() - t0;
    if (dt > total) total = dt;
  });
  return total / episodes;
}

}  // namespace ksr::bench
