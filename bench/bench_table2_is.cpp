// Reproduces Table 2 + the IS curve of Fig. 8: Integer Sort time, speedup,
// efficiency and serial fraction vs processors (including the paper's P=30
// row), with the pmon-confirmed ring-saturation kink from 30 to 32.
#include "bench_common.hpp"
#include "ksr/machine/ksr_machine.hpp"
#include "ksr/nas/is.hpp"

int main(int argc, char** argv) {
  using namespace ksr;         // NOLINT
  using namespace ksr::bench;  // NOLINT

  const BenchOptions opt = BenchOptions::parse(argc, argv);
  HostMetrics host("table2_is");
  print_header("Integer Sort scalability",
               "Table 2 and Figs. 8 & 9, Section 3.3.2");

  nas::IsConfig cfg;
  cfg.log2_keys = opt.quick ? 14 : 17;  // paper: 2^23; scaled with the caches
  cfg.log2_buckets = opt.quick ? 9 : 11;
  const unsigned scale = 64;

  const std::vector<unsigned> procs =
      opt.quick ? std::vector<unsigned>{1, 2, 8}
                : std::vector<unsigned>{1, 2, 4, 8, 16, 30, 32};

  std::vector<std::pair<unsigned, double>> measured;
  std::vector<double> inject_wait_per_req;
  bool all_valid = true;
  for (unsigned p : procs) {
    machine::KsrMachine m(machine::MachineConfig::ksr1(p).scaled_by(scale));
    const nas::IsResult r = run_is(m, cfg);
    host.add(m);
    all_valid = all_valid && r.ranks_valid;
    measured.emplace_back(p, r.seconds);
    // Mean slot wait per ring transaction: the saturation indicator the
    // authors read off the hardware monitor.
    cache::PerfMonitor total;
    for (unsigned i = 0; i < p; ++i) total.add(m.cell_pmon(i));
    inject_wait_per_req.push_back(
        total.ring_requests
            ? static_cast<double>(total.inject_wait_ns) /
                  static_cast<double>(total.ring_requests)
            : 0.0);
  }

  TextTable t({"Processors", "Time (s)", "Speedup", "Efficiency",
               "Serial Fraction", "ring wait/req (ns)"});
  const auto rows = study::scaling_rows(measured);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& row = rows[i];
    t.add_row({std::to_string(row.p), TextTable::num(row.seconds, 5),
               TextTable::num(row.speedup, 5),
               row.p == 1 ? "-" : TextTable::num(row.efficiency, 3),
               row.p == 1 ? "-" : TextTable::num(row.serial_fraction, 6),
               TextTable::num(inject_wait_per_req[i], 0)});
  }
  std::cout << "Number of input keys = 2^" << cfg.log2_keys
            << ", buckets = 2^" << cfg.log2_buckets
            << ", machine caches scaled by 1/" << scale
            << ", ranks valid = " << (all_valid ? "yes" : "NO") << "\n";
  if (opt.csv) {
    t.print_csv();
  } else {
    t.print();
    std::cout
        << "\nPaper expectations (Table 2): near-linear speedup to 8\n"
           "processors (caching effects dominate), efficiency decaying and\n"
           "the serial fraction *increasing* with P (phases 4 and 6 of the\n"
           "algorithm), with a sharper serial-fraction step from 30 to 32 as\n"
           "simultaneous accesses push the ring toward saturation — visible\n"
           "here in the per-request slot-wait column.\n";
  }

  // ---- Prefetch ablation: phase 2 pulls the other processors' local
  // counts ahead of the all-to-all reduction ("prefetch ... used quite
  // extensively", §4).
  std::cout << "\n--- prefetch ablation (phase 2) ---\n";
  TextTable ft({"Processors", "prefetch (s)", "no prefetch (s)", "gain"});
  for (unsigned p : opt.quick ? std::vector<unsigned>{8}
                              : std::vector<unsigned>{8, 16, 32}) {
    machine::KsrMachine m1(machine::MachineConfig::ksr1(p).scaled_by(scale));
    const double with_pf = run_is(m1, cfg).seconds;
    host.add(m1);
    nas::IsConfig c2 = cfg;
    c2.use_prefetch = false;
    machine::KsrMachine m2(machine::MachineConfig::ksr1(p).scaled_by(scale));
    const double without = run_is(m2, c2).seconds;
    host.add(m2);
    ft.add_row({std::to_string(p), TextTable::num(with_pf, 5),
                TextTable::num(without, 5),
                TextTable::num((1.0 - with_pf / without) * 100.0, 2) + "%"});
  }
  if (opt.csv) {
    ft.print_csv();
  } else {
    ft.print();
  }
  return 0;
}
