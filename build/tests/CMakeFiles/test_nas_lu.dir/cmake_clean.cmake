file(REMOVE_RECURSE
  "CMakeFiles/test_nas_lu.dir/test_nas_lu.cpp.o"
  "CMakeFiles/test_nas_lu.dir/test_nas_lu.cpp.o.d"
  "test_nas_lu"
  "test_nas_lu.pdb"
  "test_nas_lu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nas_lu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
