# Empty compiler generated dependencies file for test_machine_misc.
# This may be replaced when dependencies are built.
