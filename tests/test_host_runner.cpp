// Host-side SweepRunner: submission-order merging, the error contract,
// bit-equality of sharded vs serial sweeps, and clean pool shutdown.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "ksr/host/sweep_runner.hpp"
#include "ksr/machine/ksr_machine.hpp"
#include "ksr/nas/is.hpp"

namespace {

using ksr::host::SweepRunner;

TEST(SweepRunner, DefaultJobsIsAtLeastOne) {
  EXPECT_GE(SweepRunner::default_jobs(), 1u);
  SweepRunner r;
  EXPECT_GE(r.jobs(), 1u);
  SweepRunner r0(0);
  EXPECT_EQ(r0.jobs(), SweepRunner::default_jobs());
}

// Results must come back in submission order even when later-submitted jobs
// finish first: job i sleeps longer the earlier it was submitted.
TEST(SweepRunner, MergesResultsInSubmissionOrder) {
  SweepRunner runner(4);
  constexpr int kJobs = 12;
  std::vector<std::function<int()>> jobs;
  jobs.reserve(kJobs);
  for (int i = 0; i < kJobs; ++i) {
    jobs.emplace_back([i] {
      std::this_thread::sleep_for(
          std::chrono::milliseconds((kJobs - i) * 2));
      return i * 10 + 1;
    });
  }
  const std::vector<int> out = runner.run(jobs);
  ASSERT_EQ(out.size(), static_cast<std::size_t>(kJobs));
  for (int i = 0; i < kJobs; ++i) EXPECT_EQ(out[i], i * 10 + 1);
}

TEST(SweepRunner, RunIndexedCoversEveryIndexExactlyOnce) {
  SweepRunner runner(3);
  constexpr std::size_t kCount = 97;
  std::vector<std::atomic<int>> hits(kCount);
  runner.run_indexed(kCount, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kCount; ++i) EXPECT_EQ(hits[i].load(), 1);
}

// With a pool, every job still runs and the earliest-submitted failure is
// rethrown — the same exception a serial run would have surfaced.
TEST(SweepRunner, PoolPropagatesEarliestSubmittedException) {
  SweepRunner runner(4);
  std::atomic<int> executed{0};
  std::vector<std::function<int()>> jobs;
  for (int i = 0; i < 8; ++i) {
    jobs.emplace_back([i, &executed]() -> int {
      executed.fetch_add(1, std::memory_order_relaxed);
      if (i == 2) throw std::runtime_error("boom 2");
      if (i == 5) throw std::runtime_error("boom 5");
      return i;
    });
  }
  try {
    (void)runner.run(jobs);
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom 2");
  }
  EXPECT_EQ(executed.load(), 8);  // a failing job does not cancel the batch
}

// Serial mode keeps classic semantics: the sweep aborts at the failing job.
TEST(SweepRunner, SerialModeAbortsAtFailingJob) {
  SweepRunner runner(1);
  std::atomic<int> executed{0};
  std::vector<std::function<int()>> jobs;
  for (int i = 0; i < 8; ++i) {
    jobs.emplace_back([i, &executed]() -> int {
      executed.fetch_add(1, std::memory_order_relaxed);
      if (i == 2) throw std::runtime_error("boom 2");
      return i;
    });
  }
  try {
    (void)runner.run(jobs);
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom 2");
  }
  EXPECT_EQ(executed.load(), 3);  // jobs 3..7 never ran
}

// The determinism contract on real simulations: a two-machine IS sweep must
// produce bit-identical simulated times and event fingerprints whether it
// runs serially or sharded over four host threads.
TEST(SweepRunner, TwoMachineSweepIsBitIdenticalAcrossJobCounts) {
  struct Point {
    double seconds = 0.0;
    std::uint64_t events = 0;
  };
  const auto sweep = [](unsigned host_jobs) {
    SweepRunner runner(host_jobs);
    std::vector<std::function<Point()>> jobs;
    for (unsigned p : {2u, 4u}) {
      jobs.emplace_back([p] {
        ksr::machine::KsrMachine m(
            ksr::machine::MachineConfig::ksr1(p).scaled_by(64));
        ksr::nas::IsConfig cfg;
        cfg.log2_keys = 11;
        cfg.log2_buckets = 7;
        const auto r = ksr::nas::run_is(m, cfg);
        return Point{r.seconds, m.engine().events_dispatched()};
      });
    }
    return runner.run(jobs);
  };
  const auto serial = sweep(1);
  const auto sharded = sweep(4);
  ASSERT_EQ(serial.size(), sharded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].seconds, sharded[i].seconds);  // exact, not near
    EXPECT_EQ(serial[i].events, sharded[i].events);
    EXPECT_GT(serial[i].events, 0u);
  }
}

// Regression for a stale-worker race: run_indexed must not return until
// every pool thread has left the batch, or a late-waking worker could invoke
// the previous (already destroyed) task and steal indices from the next
// batch. Each round's task and hit counters are batch-local, so under
// ASan/TSan a stale worker touches freed memory; in any build it breaks the
// exactly-once accounting below.
TEST(SweepRunner, BackToBackBatchesNeverLeakStaleWorkers) {
  SweepRunner runner(4);
  for (int round = 0; round < 200; ++round) {
    const std::size_t count = 2 + static_cast<std::size_t>(round % 7);
    std::vector<std::atomic<int>> hits(count);
    runner.run_indexed(count, [&](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < count; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "round " << round << " index " << i;
    }
  }
}

// Pool lifecycle: construction/destruction with no batch, repeated batches
// on one pool, empty and single-item batches, and more workers than jobs —
// all must shut down without hanging or leaking threads (ctest enforces the
// no-hang half via its timeout; ASan/TSan builds enforce the rest).
TEST(SweepRunner, ShutdownIsCleanInAllLifecycles) {
  { SweepRunner unused(4); }  // never ran a batch
  {
    SweepRunner runner(4);
    runner.run_indexed(0, [](std::size_t) { FAIL(); });  // empty batch
    std::atomic<int> n{0};
    runner.run_indexed(1, [&](std::size_t) { ++n; });  // inline path
    for (int round = 0; round < 3; ++round) {          // pool reuse
      runner.run_indexed(16, [&](std::size_t) { ++n; });
    }
    EXPECT_EQ(n.load(), 1 + 3 * 16);
  }
  {
    SweepRunner wide(8);  // more workers than jobs
    std::atomic<int> n{0};
    wide.run_indexed(2, [&](std::size_t) { ++n; });
    EXPECT_EQ(n.load(), 2);
  }
}

}  // namespace
