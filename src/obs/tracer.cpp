#include "ksr/obs/tracer.hpp"

#include <ostream>

namespace ksr::obs {

namespace {

constexpr std::string_view kBuiltinCatNames[kBuiltinCategories] = {
    "ring",
    "coherence",
    "sync",
    "stall",
};

constexpr std::string_view kBuiltinEvNames[kBuiltinEvents] = {
    "inject",
    "deliver",
    "invalidate",
    "nack",
    "grant-shared",
    "grant-exclusive",
    "grant-atomic",
    "poststore",
    "snarf",
    "barrier-arrive",
    "barrier-depart",
    "lock-acquire",
    "lock-acquired",
    "lock-release",
    "inject-wait",
    "nack-backoff",
    "remote-acquire",
};

}  // namespace

Tracer::Tracer(std::size_t capacity) {
  cat_names_.reserve(kBuiltinCategories);
  for (auto n : kBuiltinCatNames) cat_names_.emplace_back(n);
  ev_names_.reserve(kBuiltinEvents);
  for (auto n : kBuiltinEvNames) ev_names_.emplace_back(n);
  set_capacity(capacity);
}

void Tracer::set_capacity(std::size_t cap) {
  // make_unique_for_overwrite: don't zero what log() overwrites anyway.
  records_ = std::make_unique_for_overwrite<Record[]>(cap ? cap : 1);
  cap_ = cap;
  size_ = 0;
  dropped_ = 0;
}

std::uint16_t Tracer::find_or_add(std::vector<std::string>& v,
                                  std::string_view name) {
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (v[i] == name) return static_cast<std::uint16_t>(i);
  }
  v.emplace_back(name);
  return static_cast<std::uint16_t>(v.size() - 1);
}

std::uint16_t Tracer::intern_category(std::string_view name) {
  return find_or_add(cat_names_, name);
}

std::uint16_t Tracer::intern_event(std::string_view name) {
  return find_or_add(ev_names_, name);
}

std::string_view Tracer::category_name(std::uint16_t cat) const {
  return cat < cat_names_.size() ? std::string_view(cat_names_[cat])
                                 : std::string_view("?");
}

std::string_view Tracer::event_name(std::uint16_t ev) const {
  return ev < ev_names_.size() ? std::string_view(ev_names_[ev])
                               : std::string_view("?");
}

void Tracer::log(sim::Time t, std::string_view category,
                 std::string_view event, std::uint64_t subject,
                 std::uint64_t actor, std::int64_t detail, std::uint32_t aux) {
  log(t, intern_category(category), intern_event(event), subject, actor,
      detail, aux);
}

void Tracer::set_enabled_categories(std::string_view csv) {
  if (csv.empty()) {
    enable_all_categories();
    return;
  }
  std::uint64_t mask = 0;
  std::size_t pos = 0;
  while (pos <= csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::size_t end = comma == std::string_view::npos ? csv.size() : comma;
    std::string_view name = csv.substr(pos, end - pos);
    while (!name.empty() && name.front() == ' ') name.remove_prefix(1);
    while (!name.empty() && name.back() == ' ') name.remove_suffix(1);
    if (!name.empty()) mask |= 1ull << mask_bit(intern_category(name));
    if (comma == std::string_view::npos) break;
    pos = comma + 1;
  }
  mask_ = mask;
}

std::size_t Tracer::count(std::string_view category,
                          std::string_view event) const {
  std::size_t n = 0;
  for (std::size_t i = 0; i < size_; ++i) {
    const Record& r = records_[i];
    if (category_name(r.cat) != category) continue;
    if (!event.empty() && event_name(r.ev) != event) continue;
    ++n;
  }
  return n;
}

void Tracer::write_csv(std::ostream& os) const {
  os << "time_ns,category,event,subject,actor,detail,aux\n";
  for (std::size_t i = 0; i < size_; ++i) {
    const Record& r = records_[i];
    os << r.t << ',' << category_name(r.cat) << ',' << event_name(r.ev) << ','
       << r.subject << ',' << r.actor << ',' << r.detail << ',' << r.aux
       << '\n';
  }
  os << "# events=" << size_ << " dropped=" << dropped_ << '\n';
}

}  // namespace ksr::obs
