// ksrtop — offline analysis of topology reports.
//
// Consumes the byte-stable report written by `--topo-report FILE` (ksrsim
// and every bench binary; see docs/OBSERVABILITY.md) and, optionally, its
// `FILE.matrix.csv` traffic-heatmap sibling, and answers the scale-out
// questions the report's tables encode:
//
//   ksrtop report.txt                     # one summary line per job
//   ksrtop report.txt --job "is p=512"    # one job in full, plus rankings
//   ksrtop report.txt --top 5             # ranking depth (default 10)
//   ksrtop report.txt --matrix report.txt.matrix.csv
//                                         # hottest leaf->leaf pairs
//
// Rankings: rings by slot utilization, directory shards by request count,
// traffic pairs by packets (cross-leaf only). All parsing and rendering is
// integer math over the report's own integer fields, so output is
// byte-identical across hosts for the same report.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "ksr/util/parse.hpp"

namespace {

struct JobBlock {
  std::string label;
  std::vector<std::string> lines;
};

// "key=value" lookup inside a report line; value runs to the next space.
[[nodiscard]] std::string token_value(const std::string& line,
                                      const std::string& key) {
  const std::string pat = key + "=";
  std::size_t at = 0;
  for (;;) {
    at = line.find(pat, at);
    if (at == std::string::npos) return {};
    // Must start the line or follow a space (so "util=" never matches
    // "inject_wait_ns=" mid-token).
    if (at == 0 || line[at - 1] == ' ') break;
    at += pat.size();
  }
  const std::size_t v0 = at + pat.size();
  const std::size_t v1 = line.find(' ', v0);
  return line.substr(v0, v1 == std::string::npos ? v1 : v1 - v0);
}

// Report fields are machine-written, so a malformed one silently reads as
// 0 (a summary line is not worth aborting over); a trailing '%' is part of
// the report's own rendering and is tolerated.
[[nodiscard]] std::uint64_t to_u64(const std::string& s) {
  std::string_view v = s;
  if (!v.empty() && v.back() == '%') v.remove_suffix(1);
  std::uint64_t out = 0;
  return ksr::util::parse_u64(v, &out) ? out : 0;
}

// "12.3456%" -> 123456 ppm (the report renders ppm with 4 fixed decimals).
[[nodiscard]] std::uint64_t pct_to_ppm(const std::string& s) {
  std::string digits;
  for (char c : s) {
    if (c >= '0' && c <= '9') digits.push_back(c);
  }
  return to_u64(digits);
}

std::vector<JobBlock> parse_report(std::istream& is) {
  std::vector<JobBlock> jobs;
  std::string line;
  while (std::getline(is, line)) {
    if (line.rfind("=== job ", 0) == 0) {
      const std::size_t tail = line.rfind(" ===");
      jobs.push_back({line.substr(8, tail == std::string::npos
                                         ? tail
                                         : tail - 8),
                      {}});
      continue;
    }
    if (jobs.empty()) jobs.push_back({"", {}});  // headerless single report
    jobs.back().lines.push_back(line);
  }
  return jobs;
}

void summarize(const JobBlock& j) {
  std::string topo, quanta_line, hottest, traffic;
  std::uint64_t peak_l0 = 0;
  std::uint64_t peak_l1 = 0;
  for (const std::string& l : j.lines) {
    if (l.rfind("leaves=", 0) == 0) topo = l;
    if (l.rfind("quanta=", 0) == 0) quanta_line = l;
    if (l.rfind("hottest_shard ", 0) == 0) hottest = l;
    if (l.rfind("total=", 0) == 0) traffic = l;
    if (l.rfind("peak_util level=0 ", 0) == 0) {
      peak_l0 = pct_to_ppm(l.substr(l.rfind(' ') + 1));
    }
    if (l.rfind("peak_util level=1 ", 0) == 0) {
      peak_l1 = pct_to_ppm(l.substr(l.rfind(' ') + 1));
    }
  }
  std::cout << "job " << (j.label.empty() ? "(unnamed)" : j.label)
            << ": leaves=" << token_value(topo, "leaves")
            << " domains=" << token_value(topo, "domains")
            << " peak_util_ppm_l0=" << peak_l0
            << " peak_util_ppm_l1=" << peak_l1;
  if (!quanta_line.empty()) {
    std::cout << " quanta=" << token_value(quanta_line, "quanta")
              << " boundary_packets="
              << token_value(quanta_line, "boundary_packets");
  }
  if (!hottest.empty()) {
    std::cout << " hot_shard=" << token_value(hottest, "leaf")
              << " hot_shard_requests=" << token_value(hottest, "requests");
  }
  if (!traffic.empty()) {
    std::cout << " cross_leaf=" << token_value(traffic, "cross_leaf")
              << " cross_ratio=" << token_value(traffic, "cross_ratio");
  }
  std::cout << "\n";
}

void rank_job(const JobBlock& j, std::size_t top_n) {
  for (const std::string& l : j.lines) std::cout << l << "\n";

  // Rings by utilization (the report lists them in topology order).
  std::vector<std::pair<std::uint64_t, std::string>> rings;
  std::vector<std::pair<std::uint64_t, std::string>> shards;
  for (const std::string& l : j.lines) {
    if (l.rfind("shard ", 0) == 0) {
      shards.emplace_back(to_u64(token_value(l, "requests")), l);
    } else if (l.rfind("peak_util", 0) != 0 && !token_value(l, "util").empty()) {
      rings.emplace_back(pct_to_ppm(token_value(l, "util")), l);
    }
  }
  auto by_key_desc = [](const std::pair<std::uint64_t, std::string>& a,
                        const std::pair<std::uint64_t, std::string>& b) {
    return a.first != b.first ? a.first > b.first : a.second < b.second;
  };
  std::stable_sort(rings.begin(), rings.end(), by_key_desc);
  std::stable_sort(shards.begin(), shards.end(), by_key_desc);
  if (!rings.empty()) {
    std::cout << "\n## top rings by utilization\n";
    for (std::size_t i = 0; i < std::min(top_n, rings.size()); ++i) {
      std::cout << rings[i].second << "\n";
    }
  }
  if (!shards.empty()) {
    std::cout << "\n## top shards by requests\n";
    for (std::size_t i = 0; i < std::min(top_n, shards.size()); ++i) {
      std::cout << shards[i].second << "\n";
    }
  }
}

int rank_matrix(const std::string& path, const std::string& job,
                std::size_t top_n) {
  std::ifstream is(path);
  if (!is) {
    std::fprintf(stderr, "ksrtop: cannot open matrix CSV '%s'\n",
                 path.c_str());
    return 1;
  }
  std::string line;
  if (!std::getline(is, line)) return 0;
  const bool has_job = line.rfind("job,", 0) == 0;
  struct Pair {
    std::string job;
    std::uint64_t src = 0, dst = 0, packets = 0;
  };
  std::vector<Pair> pairs;
  while (std::getline(is, line)) {
    std::stringstream ss(line);
    Pair p;
    std::string f;
    if (has_job && !std::getline(ss, p.job, ',')) continue;
    if (!std::getline(ss, f, ',')) continue;
    p.src = to_u64(f);
    if (!std::getline(ss, f, ',')) continue;
    p.dst = to_u64(f);
    if (!std::getline(ss, f, ',')) continue;
    p.packets = to_u64(f);
    if (!job.empty() && p.job != job) continue;
    if (p.src == p.dst) continue;  // cross-leaf pressure is the question
    pairs.push_back(std::move(p));
  }
  std::stable_sort(pairs.begin(), pairs.end(), [](const Pair& a,
                                                  const Pair& b) {
    return a.packets != b.packets ? a.packets > b.packets
                                  : (a.src != b.src ? a.src < b.src
                                                    : a.dst < b.dst);
  });
  std::cout << "## top cross-leaf pairs by packets\n";
  for (std::size_t i = 0; i < std::min(top_n, pairs.size()); ++i) {
    const Pair& p = pairs[i];
    if (!p.job.empty()) std::cout << "job " << p.job << " ";
    std::cout << "pair " << p.src << "->" << p.dst
              << " packets=" << p.packets << "\n";
  }
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: ksrtop REPORT [--job LABEL] [--top N] "
               "[--matrix FILE.matrix.csv]\n"
               "\n"
               "REPORT is a --topo-report file (ksrsim / bench binaries).\n"
               "Default: one summary line per job. --job LABEL prints that\n"
               "job's full report plus ring/shard rankings. --matrix ranks\n"
               "the traffic heatmap's cross-leaf pairs.\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string report_path, job, matrix;
  std::size_t top_n = 10;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const char* val = i + 1 < argc ? argv[i + 1] : nullptr;
    if (a == "--job" && val != nullptr) {
      job = val;
      ++i;
    } else if (a == "--top" && val != nullptr) {
      top_n = static_cast<std::size_t>(to_u64(val));
      if (top_n == 0) return usage();
      ++i;
    } else if (a == "--matrix" && val != nullptr) {
      matrix = val;
      ++i;
    } else if (!a.empty() && a[0] != '-' && report_path.empty()) {
      report_path = a;
    } else {
      return usage();
    }
  }
  if (report_path.empty() && matrix.empty()) return usage();

  if (!report_path.empty()) {
    std::ifstream is(report_path);
    if (!is) {
      std::fprintf(stderr, "ksrtop: cannot open report '%s'\n",
                   report_path.c_str());
      return 1;
    }
    const std::vector<JobBlock> jobs = parse_report(is);
    bool matched = false;
    for (const JobBlock& j : jobs) {
      if (job.empty()) {
        summarize(j);
        matched = true;
      } else if (j.label == job) {
        rank_job(j, top_n);
        matched = true;
      }
    }
    if (!matched) {
      std::fprintf(stderr, "ksrtop: no job labelled '%s' in '%s'\n",
                   job.c_str(), report_path.c_str());
      return 1;
    }
  }
  if (!matrix.empty()) {
    const int rc = rank_matrix(matrix, job, top_n);
    if (rc != 0) return rc;
  }
  return 0;
}
