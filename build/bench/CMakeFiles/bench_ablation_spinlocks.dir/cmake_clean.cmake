file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_spinlocks.dir/bench_ablation_spinlocks.cpp.o"
  "CMakeFiles/bench_ablation_spinlocks.dir/bench_ablation_spinlocks.cpp.o.d"
  "bench_ablation_spinlocks"
  "bench_ablation_spinlocks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_spinlocks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
