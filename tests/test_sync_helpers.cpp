// Unit tests for the small synchronization building blocks: Padded<T>
// sub-page isolation, fetch_add semantics, and spin_until behaviour.
#include <gtest/gtest.h>

#include "ksr/machine/ksr_machine.hpp"
#include "ksr/sync/atomic.hpp"
#include "ksr/sync/padded.hpp"

namespace ksr::sync {
namespace {

using machine::Cpu;
using machine::KsrMachine;
using machine::MachineConfig;

TEST(Padded, ElementsLiveOnDistinctSubPages) {
  KsrMachine m(MachineConfig::ksr1(1));
  Padded<std::uint32_t> p(m, "pad", 8);
  for (std::size_t i = 0; i + 1 < 8; ++i) {
    EXPECT_NE(mem::subpage_of(p.addr(i)), mem::subpage_of(p.addr(i + 1)));
  }
  EXPECT_EQ(p.size(), 8u);
}

TEST(Padded, NoInvalidationCrossTalkBetweenElements) {
  // Two cells hammer adjacent Padded elements; neither should ever receive
  // an invalidation (that is the whole point of the padding).
  KsrMachine m(MachineConfig::ksr1(2));
  Padded<std::uint32_t> p(m, "pad", 2);
  m.run([&](Cpu& cpu) {
    for (int i = 0; i < 200; ++i) {
      p.write(cpu, cpu.id(), static_cast<std::uint32_t>(i));
      cpu.work(10);
    }
  });
  EXPECT_EQ(m.cell_pmon(0).invalidations_received, 0u);
  EXPECT_EQ(m.cell_pmon(1).invalidations_received, 0u);
}

TEST(Padded, ValueRoundTripHostSide) {
  KsrMachine m(MachineConfig::ksr1(1));
  Padded<std::uint32_t> p(m, "pad", 4);
  p.set_value(2, 77);
  EXPECT_EQ(p.value(2), 77u);
}

TEST(FetchAdd, ReturnsPreviousValue) {
  KsrMachine m(MachineConfig::ksr1(1));
  auto counter = m.alloc<std::uint32_t>("c", 1);
  m.run([&](Cpu& cpu) {
    EXPECT_EQ(fetch_add(cpu, counter, 0, 5u), 0u);
    EXPECT_EQ(fetch_add(cpu, counter, 0, 3u), 5u);
  });
  EXPECT_EQ(counter.value(0), 8u);
}

TEST(SpinUntil, AdvancesSimulatedTimeWhileWaiting) {
  KsrMachine m(MachineConfig::ksr1(2));
  auto flag = m.alloc<int>("f", 1);
  double waited = 0;
  m.run([&](Cpu& cpu) {
    if (cpu.id() == 0) {
      cpu.work(40000);  // 2 ms
      cpu.write(flag, 0, 1);
    } else {
      const double t0 = cpu.seconds();
      spin_until(cpu, [&] { return cpu.read(flag, 0) == 1; });
      waited = cpu.seconds() - t0;
    }
  });
  EXPECT_GT(waited, 1.5e-3);  // really waited for the writer
  EXPECT_LT(waited, 3e-3);    // ...and noticed promptly afterwards
}

}  // namespace
}  // namespace ksr::sync
