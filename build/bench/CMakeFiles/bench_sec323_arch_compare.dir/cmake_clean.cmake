file(REMOVE_RECURSE
  "CMakeFiles/bench_sec323_arch_compare.dir/bench_sec323_arch_compare.cpp.o"
  "CMakeFiles/bench_sec323_arch_compare.dir/bench_sec323_arch_compare.cpp.o.d"
  "bench_sec323_arch_compare"
  "bench_sec323_arch_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec323_arch_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
