file(REMOVE_RECURSE
  "CMakeFiles/ksr_sim.dir/engine.cpp.o"
  "CMakeFiles/ksr_sim.dir/engine.cpp.o.d"
  "CMakeFiles/ksr_sim.dir/fiber_context.cpp.o"
  "CMakeFiles/ksr_sim.dir/fiber_context.cpp.o.d"
  "libksr_sim.a"
  "libksr_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ksr_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
