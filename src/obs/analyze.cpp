#include "ksr/obs/analyze.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <map>
#include <ostream>

#include "ksr/mem/geometry.hpp"

namespace ksr::obs {

namespace {

[[nodiscard]] constexpr std::uint64_t bit(std::uint64_t cell) noexcept {
  return 1ull << (cell & 63u);
}

/// Byte offsets witnessed within one 128-B sub-page, as a 128-bit set.
struct WitnessSet {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  bool unknown = false;  // a grant carried no witness (e.g. prefetch)

  void add(std::uint32_t aux) noexcept {
    if (aux == 0) {
      unknown = true;
      return;
    }
    const std::uint32_t off = (aux - 1) & (mem::kSubPageBytes - 1);
    if (off < 64) {
      lo |= 1ull << off;
    } else {
      hi |= 1ull << (off - 64);
    }
  }

  /// Conservative: unknown offsets count as overlapping everything, so a
  /// falsely-shared verdict requires *every* write to be witnessed.
  [[nodiscard]] bool overlaps(const WitnessSet& o) const noexcept {
    return unknown || o.unknown || (lo & o.lo) != 0 || (hi & o.hi) != 0;
  }
};

struct SpState {
  std::uint64_t readers = 0;  // cell masks
  std::uint64_t writers = 0;
  std::uint64_t atomics = 0;
  std::map<unsigned, WitnessSet> write_witness;
  int last_owner = -1;
  SubpageProfile p;
};

constexpr sim::Time kNoTime = ~0ull;

struct LockKeyState {
  sim::Time pending_acquire = kNoTime;  // kEvLockAcquire awaiting acquired
  sim::Time acquired_at = kNoTime;      // held since (cpu-local clock)
};

struct LockState {
  LockProfile p;
  std::map<unsigned, LockKeyState> per_cpu;
  // Wait intervals [start, end] on this subject, for the depth sweep.
  std::vector<std::pair<sim::Time, sim::Time>> waits;
};

/// Index into `regions` (sorted by base) containing `sva`, or -1.
[[nodiscard]] int region_index(const std::vector<RegionSpan>& regions,
                               std::uint64_t sva) {
  auto it = std::upper_bound(
      regions.begin(), regions.end(), sva,
      [](std::uint64_t a, const RegionSpan& r) { return a < r.base; });
  if (it == regions.begin()) return -1;
  --it;
  if (sva >= it->base + it->bytes) return -1;
  return static_cast<int>(it - regions.begin());
}

void classify(SpState& s) {
  SubpageProfile& p = s.p;
  const unsigned nw = static_cast<unsigned>(std::popcount(s.writers));
  p.readers = static_cast<unsigned>(std::popcount(s.readers));
  p.writers = nw;
  p.score = p.invalidations + p.nacks + p.snarfs;
  const std::uint64_t all = s.readers | s.writers | s.atomics;
  if (std::popcount(all) <= 1) {
    p.pattern = SharingPattern::kPrivate;
    return;
  }
  if (nw >= 2) {
    bool overlap = false;
    for (auto i = s.write_witness.begin(); !overlap && i != s.write_witness.end();
         ++i) {
      for (auto j = std::next(i); j != s.write_witness.end(); ++j) {
        if (i->second.overlaps(j->second)) {
          overlap = true;
          break;
        }
      }
    }
    p.disjoint_writes = !overlap;
    p.pattern = (!overlap && p.owner_changes >= 2)
                    ? SharingPattern::kFalselyShared
                    : SharingPattern::kMigratory;
    return;
  }
  if (nw == 1 && (s.readers & ~s.writers) != 0) {
    p.pattern = SharingPattern::kProducerConsumer;
    return;
  }
  if (p.grants_atomic > 0) {
    p.pattern = SharingPattern::kLock;
    return;
  }
  p.pattern = SharingPattern::kReadOnly;
}

/// "name+0x0080" or the bare sub-page id when unmapped.
[[nodiscard]] std::string locus(const SubpageProfile& p) {
  if (p.region.empty()) return "sp:" + std::to_string(p.subpage);
  char buf[32];
  std::snprintf(buf, sizeof buf, "+0x%04llx",
                static_cast<unsigned long long>(p.region_offset));
  return p.region + buf;
}

void pad_to(std::string& s, std::size_t w) {
  if (s.size() < w) s.append(w - s.size(), ' ');
}

[[nodiscard]] std::string lpad(std::uint64_t v, std::size_t w) {
  std::string s = std::to_string(v);
  return s.size() < w ? std::string(w - s.size(), ' ') + s : s;
}

}  // namespace

std::string_view to_string(SharingPattern p) noexcept {
  switch (p) {
    case SharingPattern::kPrivate: return "private";
    case SharingPattern::kReadOnly: return "read-only";
    case SharingPattern::kProducerConsumer: return "producer-consumer";
    case SharingPattern::kMigratory: return "migratory";
    case SharingPattern::kFalselyShared: return "falsely-shared";
    case SharingPattern::kLock: return "lock";
  }
  return "?";
}

Analysis analyze(const Tracer::Record* begin, const Tracer::Record* end,
                 std::vector<RegionSpan> regions, std::uint64_t dropped) {
  Analysis a;
  a.dropped = dropped;
  std::sort(regions.begin(), regions.end(),
            [](const RegionSpan& x, const RegionSpan& y) {
              return x.base < y.base;
            });

  std::map<std::uint64_t, SpState> subpages;
  std::map<unsigned, std::uint64_t> barrier_arrivals;  // cpu -> episodes done
  std::vector<BarrierEpisode> episodes;
  std::map<std::uint64_t, LockState> locks;
  // (cpu, ev, region index) -> stall totals; -1 region sorts first.
  std::map<std::tuple<unsigned, std::uint16_t, int>,
           std::pair<std::uint64_t, std::uint64_t>>
      stalls;
  unsigned max_cpu = 0;
  bool any_cpu = false;

  for (const Tracer::Record* r = begin; r != end; ++r) {
    ++a.events;
    if (r->cat == kCatCoherence || r->cat == kCatSync || r->cat == kCatStall) {
      max_cpu = std::max(max_cpu, static_cast<unsigned>(r->actor));
      any_cpu = true;
    }
    if (r->cat == kCatCoherence) {
      SpState& s = subpages[r->subject];
      const unsigned cell = static_cast<unsigned>(r->actor);
      switch (r->ev) {
        case kEvGrantShared:
          ++s.p.grants_shared;
          s.readers |= bit(cell);
          s.last_owner = -1;  // grant downgrades any exclusive owner
          break;
        case kEvGrantExclusive:
          ++s.p.grants_exclusive;
          s.writers |= bit(cell);
          s.write_witness[cell].add(r->aux);
          if (s.last_owner >= 0 && s.last_owner != static_cast<int>(cell)) {
            ++s.p.owner_changes;
          }
          s.last_owner = static_cast<int>(cell);
          break;
        case kEvGrantAtomic:
          ++s.p.grants_atomic;
          s.atomics |= bit(cell);
          if (s.last_owner >= 0 && s.last_owner != static_cast<int>(cell)) {
            ++s.p.owner_changes;
          }
          s.last_owner = static_cast<int>(cell);
          break;
        case kEvInvalidate: ++s.p.invalidations; break;
        case kEvNack: ++s.p.nacks; break;
        case kEvSnarf:
          ++s.p.snarfs;
          s.readers |= bit(cell);
          break;
        case kEvPoststore: ++s.p.poststores; break;
        default: break;
      }
    } else if (r->cat == kCatSync) {
      const unsigned cpu = static_cast<unsigned>(r->actor);
      if (r->ev == kEvBarrierArrive) {
        // Barriers span all cpus, so every cpu walks the same global episode
        // sequence: its k-th arrive belongs to global episode k (robust to
        // episode-counter collisions between distinct barrier objects).
        const std::uint64_t k = barrier_arrivals[cpu]++;
        if (k >= episodes.size()) episodes.resize(k + 1);
        BarrierEpisode& e = episodes[k];
        e.index = k;
        if (e.arrivals == 0 || r->t < e.first_arrive) e.first_arrive = r->t;
        if (e.arrivals == 0 || r->t > e.last_arrive) {
          e.last_arrive = r->t;
          e.last_cpu = cpu;
        }
        ++e.arrivals;
      } else if (r->ev == kEvLockAcquire) {
        locks[r->subject].per_cpu[cpu].pending_acquire = r->t;
      } else if (r->ev == kEvLockAcquired) {
        LockState& l = locks[r->subject];
        LockKeyState& k = l.per_cpu[cpu];
        ++l.p.acquisitions;
        const std::uint64_t wait = static_cast<std::uint64_t>(
            r->detail < 0 ? 0 : r->detail);
        l.p.wait_ns += wait;
        l.p.max_wait_ns = std::max(l.p.max_wait_ns, wait);
        const sim::Time start =
            k.pending_acquire != kNoTime
                ? k.pending_acquire
                : (r->t >= wait ? r->t - wait : 0);
        if (r->t > start) l.waits.emplace_back(start, r->t);
        k.pending_acquire = kNoTime;
        k.acquired_at = r->t;
      } else if (r->ev == kEvLockRelease) {
        LockState& l = locks[r->subject];
        LockKeyState& k = l.per_cpu[cpu];
        if (k.acquired_at != kNoTime && r->t >= k.acquired_at) {
          l.p.hold_ns += r->t - k.acquired_at;
        }
        k.acquired_at = kNoTime;
      }
    } else if (r->cat == kCatStall) {
      const std::uint64_t sva = r->subject * mem::kSubPageBytes;
      auto& [ns, count] = stalls[{static_cast<unsigned>(r->actor), r->ev,
                                  region_index(regions, sva)}];
      ns += static_cast<std::uint64_t>(r->detail < 0 ? 0 : r->detail);
      ++count;
    }
  }
  a.cpus = any_cpu ? max_cpu + 1 : 0;

  // --- sub-pages: classify, resolve regions, rank ---
  a.subpages.reserve(subpages.size());
  for (auto& [sp, s] : subpages) {
    s.p.subpage = sp;
    const int ri = region_index(regions, sp * mem::kSubPageBytes);
    if (ri >= 0) {
      const RegionSpan& reg = regions[static_cast<std::size_t>(ri)];
      s.p.region = reg.name;
      s.p.region_offset = sp * mem::kSubPageBytes - reg.base;
    }
    classify(s);
    a.subpages.push_back(std::move(s.p));
  }
  std::sort(a.subpages.begin(), a.subpages.end(),
            [](const SubpageProfile& x, const SubpageProfile& y) {
              if (x.score != y.score) return x.score > y.score;
              return x.subpage < y.subpage;
            });

  // --- barriers ---
  for (BarrierEpisode& e : episodes) {
    e.skew = e.last_arrive - e.first_arrive;
    a.barriers.total_skew += e.skew;
    a.barriers.max_skew = std::max(a.barriers.max_skew, e.skew);
  }
  a.barriers.last_arriver.assign(a.cpus, 0);
  for (const BarrierEpisode& e : episodes) {
    if (e.arrivals >= 2 && e.last_cpu < a.cpus) {
      ++a.barriers.last_arriver[e.last_cpu];
    }
  }
  a.barriers.episodes = std::move(episodes);

  // --- locks: depth sweep over wait intervals ---
  for (auto& [subject, l] : locks) {
    l.p.subject = subject;
    // +1 at wait start, -1 at wait end; ends sort before starts at the same
    // instant so a back-to-back handoff does not count as overlap.
    std::vector<std::pair<sim::Time, int>> sweep;
    sweep.reserve(l.waits.size() * 2);
    for (const auto& [s0, s1] : l.waits) {
      sweep.emplace_back(s0, +1);
      sweep.emplace_back(s1, -1);
    }
    std::sort(sweep.begin(), sweep.end());
    int depth = 0;
    for (const auto& [t, d] : sweep) {
      depth += d;
      l.p.max_depth = std::max(l.p.max_depth, static_cast<unsigned>(depth));
    }
    a.locks.push_back(l.p);
  }

  // --- stalls ---
  for (const auto& [key, val] : stalls) {
    const auto& [cpu, ev, ri] = key;
    StallEntry e;
    e.cpu = cpu;
    e.ev = ev;
    e.kind = ev == kEvInjectWait     ? "inject-wait"
             : ev == kEvNackBackoff  ? "nack-backoff"
             : ev == kEvRemoteAcquire ? "remote-acquire"
                                      : "stall-" + std::to_string(ev);
    if (ri >= 0) e.region = regions[static_cast<std::size_t>(ri)].name;
    e.total_ns = val.first;
    e.count = val.second;
    a.stalls.push_back(std::move(e));
  }
  std::sort(a.stalls.begin(), a.stalls.end(),
            [](const StallEntry& x, const StallEntry& y) {
              if (x.total_ns != y.total_ns) return x.total_ns > y.total_ns;
              if (x.cpu != y.cpu) return x.cpu < y.cpu;
              if (x.ev != y.ev) return x.ev < y.ev;
              return x.region < y.region;
            });

  a.regions = std::move(regions);
  return a;
}

Analysis analyze(const Tracer& t, std::vector<RegionSpan> regions) {
  return analyze(t.begin(), t.end(), std::move(regions), t.dropped());
}

void write_report(std::ostream& os, const Analysis& a,
                  const ReportOptions& opt) {
  os << "# ksrprof simulated-time profile\n"
     << "events=" << a.events << " dropped=" << a.dropped
     << " cpus=" << a.cpus << " subpages=" << a.subpages.size()
     << " regions=" << a.regions.size() << "\n";

  // --- sharing ---
  const std::size_t top =
      std::min(opt.top_n, a.subpages.size());
  os << "\n## sharing: top " << top << " of " << a.subpages.size()
     << " sub-pages by contention (invalidations+nacks+snarfs)\n";
  if (top != 0) {
    os << "  locus                     pattern            rd  wr   gr-s   gr-x"
          "   gr-a    inv   nack  snarf   post  own-chg\n";
    for (std::size_t i = 0; i < top; ++i) {
      const SubpageProfile& p = a.subpages[i];
      std::string l = "  " + locus(p);
      pad_to(l, 28);
      std::string pat(to_string(p.pattern));
      pad_to(pat, 17);
      os << l << pat << lpad(p.readers, 4) << lpad(p.writers, 4)
         << lpad(p.grants_shared, 7) << lpad(p.grants_exclusive, 7)
         << lpad(p.grants_atomic, 7) << lpad(p.invalidations, 7)
         << lpad(p.nacks, 7) << lpad(p.snarfs, 7) << lpad(p.poststores, 7)
         << lpad(p.owner_changes, 9) << "\n";
    }
  }
  std::size_t nfalse = 0;
  for (const SubpageProfile& p : a.subpages) {
    if (p.pattern == SharingPattern::kFalselyShared) ++nfalse;
  }
  os << "falsely-shared sub-pages: " << nfalse << "\n";
  for (const SubpageProfile& p : a.subpages) {
    if (p.pattern != SharingPattern::kFalselyShared) continue;
    os << "  " << locus(p) << ": " << p.writers
       << " writers on disjoint offsets, " << p.owner_changes
       << " owner changes, " << p.invalidations << " invalidations\n";
  }

  // --- barriers ---
  os << "\n## barriers\n";
  const std::size_t neps = a.barriers.episodes.size();
  os << "episodes=" << neps << " max-skew-ns=" << a.barriers.max_skew
     << " avg-skew-ns=" << (neps != 0 ? a.barriers.total_skew /
                                            static_cast<sim::Duration>(neps)
                                      : 0)
     << "\n";
  if (neps != 0) {
    os << "last arriver:";
    bool first = true;
    for (std::size_t c = 0; c < a.barriers.last_arriver.size(); ++c) {
      if (a.barriers.last_arriver[c] == 0) continue;
      os << (first ? " " : ", ") << "cpu" << c << " x"
         << a.barriers.last_arriver[c];
      first = false;
    }
    if (first) os << " (none)";
    os << "\n";
    std::vector<const BarrierEpisode*> worst;
    worst.reserve(neps);
    for (const BarrierEpisode& e : a.barriers.episodes) worst.push_back(&e);
    std::sort(worst.begin(), worst.end(),
              [](const BarrierEpisode* x, const BarrierEpisode* y) {
                if (x->skew != y->skew) return x->skew > y->skew;
                return x->index < y->index;
              });
    const std::size_t wt = std::min(opt.top_n, worst.size());
    os << "worst episodes (top " << wt << "):\n"
       << "  episode  arrivals  skew-ns  last-cpu\n";
    for (std::size_t i = 0; i < wt; ++i) {
      const BarrierEpisode& e = *worst[i];
      os << lpad(e.index, 9) << lpad(e.arrivals, 10)
         << lpad(static_cast<std::uint64_t>(e.skew), 9)
         << lpad(e.last_cpu, 10) << "\n";
    }
  }

  // --- locks ---
  os << "\n## locks\n";
  if (a.locks.empty()) {
    os << "(no lock episodes)\n";
  } else {
    os << "  lock       acq    wait-ns    hold-ns  max-wait-ns  max-depth\n";
    for (const LockProfile& l : a.locks) {
      os << lpad(l.subject, 6) << lpad(l.acquisitions, 10)
         << lpad(l.wait_ns, 11) << lpad(l.hold_ns, 11)
         << lpad(l.max_wait_ns, 13) << lpad(l.max_depth, 11) << "\n";
    }
  }

  // --- stalls ---
  os << "\n## stalls (simulated ns lost, by cpu / kind / region)\n";
  if (a.stalls.empty()) {
    os << "(no stall events)\n";
  } else {
    std::uint64_t inject = 0, backoff = 0, remote = 0;
    for (const StallEntry& e : a.stalls) {
      if (e.ev == kEvInjectWait) inject += e.total_ns;
      if (e.ev == kEvNackBackoff) backoff += e.total_ns;
      if (e.ev == kEvRemoteAcquire) remote += e.total_ns;
    }
    // remote-acquire is the end-to-end transaction latency and *contains*
    // its inject-wait, so the kinds are reported side by side, never summed.
    os << "inject-wait-ns=" << inject << " nack-backoff-ns=" << backoff
       << " remote-acquire-ns=" << remote << "\n";
    const std::size_t st = std::min(opt.top_n, a.stalls.size());
    os << "top " << st << " of " << a.stalls.size() << ":\n"
       << "  cpu  kind            region                  total-ns    count\n";
    for (std::size_t i = 0; i < st; ++i) {
      const StallEntry& e = a.stalls[i];
      std::string kind = e.kind;
      pad_to(kind, 16);
      std::string reg = e.region.empty() ? "(unmapped)" : e.region;
      pad_to(reg, 20);
      os << lpad(e.cpu, 5) << "  " << kind << reg << lpad(e.total_ns, 12)
         << lpad(e.count, 9) << "\n";
    }
  }
}

void write_collapsed_stacks(std::ostream& os, const Analysis& a) {
  for (const StallEntry& e : a.stalls) {
    os << "cpu" << e.cpu << ';' << e.kind << ';'
       << (e.region.empty() ? "(unmapped)" : e.region) << ' ' << e.total_ns
       << '\n';
  }
}

}  // namespace ksr::obs
