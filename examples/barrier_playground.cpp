// Barrier playground: run any of the paper's nine barrier algorithms on any
// of the three simulated machines and watch what the memory system does.
//
//   $ ./barrier_playground [barrier] [machine] [procs] [episodes]
//   $ ./barrier_playground tournament-m ksr1 32 50
//   $ ./barrier_playground counter symmetry 16
//
// Machines: ksr1, ksr2, symmetry, butterfly.
// Barriers: counter, tree, tree-m, dissemination, tournament, tournament-m,
//           mcs, mcs-m, system.
#include <cstdio>
#include <iostream>
#include <map>
#include <string>

#include "ksr/machine/factory.hpp"
#include "ksr/sync/barrier.hpp"

namespace {

using namespace ksr;  // NOLINT

const std::map<std::string, sync::BarrierKind> kBarriers = {
    {"counter", sync::BarrierKind::kCounter},
    {"tree", sync::BarrierKind::kTree},
    {"tree-m", sync::BarrierKind::kTreeM},
    {"dissemination", sync::BarrierKind::kDissemination},
    {"tournament", sync::BarrierKind::kTournament},
    {"tournament-m", sync::BarrierKind::kTournamentM},
    {"mcs", sync::BarrierKind::kMcs},
    {"mcs-m", sync::BarrierKind::kMcsM},
    {"system", sync::BarrierKind::kSystem},
};

machine::MachineConfig config_for(const std::string& name, unsigned procs) {
  if (name == "ksr2") return machine::MachineConfig::ksr2(procs);
  if (name == "symmetry") return machine::MachineConfig::symmetry(procs);
  if (name == "butterfly") return machine::MachineConfig::butterfly(procs);
  return machine::MachineConfig::ksr1(procs);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string barrier_name = argc > 1 ? argv[1] : "tournament-m";
  const std::string machine_name = argc > 2 ? argv[2] : "ksr1";
  const unsigned procs = argc > 3 ? static_cast<unsigned>(std::stoul(argv[3]))
                                  : 16u;
  const int episodes = argc > 4 ? std::stoi(argv[4]) : 25;

  const auto it = kBarriers.find(barrier_name);
  if (it == kBarriers.end()) {
    std::fprintf(stderr, "unknown barrier '%s'; options:", barrier_name.c_str());
    for (const auto& [k, v] : kBarriers) std::fprintf(stderr, " %s", k.c_str());
    std::fprintf(stderr, "\n");
    return 1;
  }

  auto m = machine::make_machine(config_for(machine_name, procs));
  auto barrier = sync::make_barrier(*m, it->second);

  std::printf("%s barrier, %u processors on %s\n",
              std::string(barrier->name()).c_str(), procs,
              machine::to_string(m->config().kind));

  double total = 0;
  auto res = m->run([&](machine::Cpu& cpu) {
    barrier->arrive(cpu);  // warm-up
    const double t0 = cpu.seconds();
    for (int e = 0; e < episodes; ++e) {
      cpu.work(cpu.rng().below(500));  // arrival skew
      barrier->arrive(cpu);
    }
    if (cpu.seconds() - t0 > total) total = cpu.seconds() - t0;
  });

  std::printf("  %.1f us per episode (%d episodes)\n",
              total / episodes * 1e6, episodes);
  std::printf("  machine-wide during the run:\n");
  std::printf("    network transactions : %llu\n",
              static_cast<unsigned long long>(res.pmon.ring_requests));
  std::printf("    atomic NACK retries  : %llu\n",
              static_cast<unsigned long long>(res.pmon.ring_nacks));
  std::printf("    invalidations        : %llu\n",
              static_cast<unsigned long long>(res.pmon.invalidations_received));
  std::printf("    snarfs               : %llu\n",
              static_cast<unsigned long long>(res.pmon.snarfs));
  std::printf("    poststores           : %llu\n",
              static_cast<unsigned long long>(res.pmon.poststores_issued));
  return 0;
}
