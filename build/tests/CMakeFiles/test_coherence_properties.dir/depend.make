# Empty dependencies file for test_coherence_properties.
# This may be replaced when dependencies are built.
