# Empty compiler generated dependencies file for test_nas_bt.
# This may be replaced when dependencies are built.
