// Unit tests for the scalability metrics (speedup, efficiency, Karp-Flatt
// serial fraction, superunitary detection) — validated against the actual
// numbers printed in the paper's Tables 1 and 2.
#include <gtest/gtest.h>

#include <sstream>

#include "ksr/study/metrics.hpp"
#include "ksr/study/table.hpp"

namespace ksr::study {
namespace {

TEST(Metrics, SpeedupAndEfficiency) {
  EXPECT_DOUBLE_EQ(speedup(100.0, 25.0), 4.0);
  EXPECT_DOUBLE_EQ(efficiency(100.0, 25.0, 8), 0.5);
  EXPECT_DOUBLE_EQ(speedup(100.0, 0.0), 0.0);  // degenerate guarded
}

// Check Karp-Flatt against the paper's own Table 1 (CG) rows.
TEST(Metrics, KarpFlattMatchesPaperTable1) {
  // P=2: speedup 1.76131 -> f = 0.135518
  EXPECT_NEAR(karp_flatt(1.76131, 2), 0.135518, 1e-5);
  // P=8: speedup 6.31418 -> f = 0.038141
  EXPECT_NEAR(karp_flatt(6.31418, 8), 0.038141, 1e-5);
  // P=32: speedup 22.75930 -> f = 0.013097
  EXPECT_NEAR(karp_flatt(22.75930, 32), 0.013097, 1e-5);
}

// And against Table 2 (IS).
TEST(Metrics, KarpFlattMatchesPaperTable2) {
  EXPECT_NEAR(karp_flatt(1.97401, 2), 0.013166, 1e-5);
  EXPECT_NEAR(karp_flatt(12.64320, 16), 0.017700, 1e-5);
  EXPECT_NEAR(karp_flatt(18.91550, 32), 0.022314, 1e-5);
}

TEST(Metrics, ScalingRowsDeriveAllColumns) {
  const auto rows = scaling_rows({{1, 100.0}, {2, 60.0}, {4, 30.0}});
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_DOUBLE_EQ(rows[0].speedup, 1.0);
  EXPECT_NEAR(rows[1].speedup, 1.6667, 1e-3);
  EXPECT_NEAR(rows[2].efficiency, 100.0 / 30.0 / 4.0, 1e-9);
  EXPECT_GT(rows[1].serial_fraction, 0.0);
}

TEST(Metrics, SuperunitaryStepDetection) {
  // Paper: 4 -> 8 processors CG speedup 2.8995 -> 6.31418: the incremental
  // speedup (2.18x) exceeds the processor ratio (2x): superunitary.
  EXPECT_TRUE(superunitary_step(2.89950, 4, 6.31418, 8));
  // 16 -> 32 is NOT superunitary (12.9534 -> 22.7593 < 2x).
  EXPECT_FALSE(superunitary_step(12.95340, 16, 22.75930, 32));
}

TEST(TextTable, RendersAlignedGrid) {
  TextTable t({"a", "bb"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| a   | bb |"), std::string::npos);
  EXPECT_NE(out.find("| 333 | 4  |"), std::string::npos);
}

TEST(TextTable, CsvEscapeFreePath) {
  TextTable t({"p", "s"});
  t.add_row({"1", "2.5"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "p,s\n1,2.5\n");
}

TEST(TextTable, NumberFormatting) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::sci(12345.678, 2), "1.23e+04");
}

TEST(BenchOptions, ParsesFlags) {
  const char* argv[] = {"prog", "--csv", "--quick"};
  const auto o = BenchOptions::parse(3, const_cast<char**>(argv));
  EXPECT_TRUE(o.csv);
  EXPECT_TRUE(o.quick);
  EXPECT_FALSE(o.full);
}

}  // namespace
}  // namespace ksr::study
