file(REMOVE_RECURSE
  "CMakeFiles/test_coherence_properties.dir/test_coherence_properties.cpp.o"
  "CMakeFiles/test_coherence_properties.dir/test_coherence_properties.cpp.o.d"
  "test_coherence_properties"
  "test_coherence_properties.pdb"
  "test_coherence_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coherence_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
