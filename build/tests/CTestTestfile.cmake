# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sim_engine[1]_include.cmake")
include("/root/repo/build/tests/test_machine_coherence[1]_include.cmake")
include("/root/repo/build/tests/test_machine_latency[1]_include.cmake")
include("/root/repo/build/tests/test_sync_barriers[1]_include.cmake")
include("/root/repo/build/tests/test_sync_locks[1]_include.cmake")
include("/root/repo/build/tests/test_nas_kernels[1]_include.cmake")
include("/root/repo/build/tests/test_cache_models[1]_include.cmake")
include("/root/repo/build/tests/test_net_models[1]_include.cmake")
include("/root/repo/build/tests/test_mem_and_sim[1]_include.cmake")
include("/root/repo/build/tests/test_study_metrics[1]_include.cmake")
include("/root/repo/build/tests/test_coherence_properties[1]_include.cmake")
include("/root/repo/build/tests/test_machine_misc[1]_include.cmake")
include("/root/repo/build/tests/test_sync_spinlocks[1]_include.cmake")
include("/root/repo/build/tests/test_ring_model[1]_include.cmake")
include("/root/repo/build/tests/test_barrier_stress[1]_include.cmake")
include("/root/repo/build/tests/test_nas_bt[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_nas_mg_ft[1]_include.cmake")
include("/root/repo/build/tests/test_sync_helpers[1]_include.cmake")
include("/root/repo/build/tests/test_paper_shapes[1]_include.cmake")
include("/root/repo/build/tests/test_nas_lu[1]_include.cmake")
include("/root/repo/build/tests/test_determinism[1]_include.cmake")
if(CTEST_CONFIGURATION_TYPE MATCHES "^([Pp][Ee][Rr][Ff])$")
  add_test(perf_smoke "/root/repo/tests/../scripts/bench_host.sh" "--check" "--build-dir" "/root/repo/build")
  set_tests_properties(perf_smoke PROPERTIES  LABELS "perf-smoke" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;38;add_test;/root/repo/tests/CMakeLists.txt;0;")
endif()
