# Empty compiler generated dependencies file for sorting_race.
# This may be replaced when dependencies are built.
