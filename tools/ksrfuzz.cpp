// ksrfuzz — deterministic schedule fuzzer for the ALLCACHE protocol.
//
// The simulator's event engine breaks same-time ties by insertion order and
// the rings start at the paper's phase alignment, so every run explores one
// schedule. This tool perturbs both (MachineConfig::sched_fuzz_seed seeds a
// bijective hash over the tie-break order and rotates each ring's slot
// phase), runs the contended workloads the paper measures — Fig. 3 style
// lock ping-pong, Fig. 4 style barrier episodes, NAS IS class S — with the
// invariant checker attached (docs/CHECKING.md), and verifies both the
// protocol invariants and the workload's semantic result (lock counter
// total, barrier episode agreement, IS ranking validity).
//
// Everything is a pure function of the seed: a failure replays exactly with
//   ksrfuzz --workload <w> --procs <p> --seed-base <seed> --seeds 1
// and the same seed reproduces the same schedule in any build mode (the
// checker hooks never schedule events). In a -DKSR_CHECK=ON build every
// coherence transition is audited as it commits; in a default build the
// checker still audits the complete machine state at end of run.
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "ksr/check/checker.hpp"
#include "ksr/machine/coherent_machine.hpp"
#include "ksr/machine/factory.hpp"
#include "ksr/nas/is.hpp"
#include "ksr/obs/analyze.hpp"
#include "ksr/obs/tracer.hpp"
#include "ksr/sync/barrier.hpp"
#include "ksr/sync/locks.hpp"
#include "ksr/sync/padded.hpp"
#include "ksr/util/parse.hpp"

namespace {

using namespace ksr;

struct Options {
  std::string workload = "all";  // locks | barriers | is | all
  std::uint64_t seeds = 32;      // number of consecutive seeds to run
  std::uint64_t seed_base = 1;   // first seed (0 is the reference schedule)
  unsigned procs = 8;
  bool verbose = false;
};

// Host threads per simulation (--sim-threads, docs/PARALLEL.md). Outcomes —
// events, checker stats, semantic results — are bit-identical for any value,
// so a failure found at one thread count replays at any other.
unsigned g_sim_threads = 1;

// Ring-hierarchy shape overrides (--cells-per-leaf / --cells-per-domain,
// docs/PARALLEL.md): 0 keeps the ksr1 preset. Multi-ring and multi-domain
// coherent shapes exercise the sharded-directory and boundary-channel
// paths under the checker.
unsigned g_cells_per_leaf = 0;
unsigned g_cells_per_domain = 0;

// Checkpointing for the IS workload (docs/CHECKPOINT.md). --checkpoint-at P
// switches IS to the split-phase kernel and writes <P>.s<seed>.ckpt at the
// warm-up boundary of every seed; a FAIL replay line then includes
// --restore-from so the violating schedule replays from just before the
// contended ranking phases instead of from cold. --restore-from FILE skips
// the warm-up by restoring (same --procs/--sim-threads/seed required; use
// with --seeds 1).
std::string g_checkpoint_at;
std::string g_restore_from;

// Observability on failure (--trace / --report, docs/OBSERVABILITY.md):
// every run carries a tracer, and when a seed FAILs its trace of the
// violating schedule is written to <prefix>.<workload>.s<seed>.trace.csv
// (and/or a ksrprof profile to ....report.txt) so the diagnostic window is
// captured without re-running. Tracing never perturbs the schedule, so the
// replay line stays valid with or without these flags.
bool g_trace = false;
bool g_report = false;
std::string g_trace_cats;            // category filter; empty = all
std::string g_trace_out = "ksrfuzz"; // output path prefix

struct RunOutcome {
  bool ok = true;
  std::string detail;             // failure diagnostic when !ok
  std::uint64_t events = 0;       // engine events dispatched (determinism)
  std::string ckpt_file;          // checkpoint written by this run, if any
  check::InvariantChecker::Stats stats;
  std::unique_ptr<obs::Tracer> tracer;   // --trace/--report: the run's trace
  std::vector<obs::RegionSpan> regions;  // heap map for report name lookup
};

std::unique_ptr<obs::Tracer> make_fuzz_tracer() {
  if (!g_trace && !g_report) return nullptr;
  auto t = std::make_unique<obs::Tracer>(std::size_t{1} << 18);
  t->set_enabled_categories(g_trace_cats);
  return t;
}

// Capture the trace-support state that dies with the machine (the heap's
// region map); call while the machine is still alive.
void capture_obs(RunOutcome& out, machine::Machine& m) {
  if (!out.tracer) return;
  const mem::Heap& h = m.heap();
  out.regions.reserve(h.region_count());
  for (std::size_t i = 0; i < h.region_count(); ++i) {
    const mem::Region& r = h.region(i);
    out.regions.push_back({r.base, r.bytes, r.name});
  }
}

// On FAIL: dump the violating run's trace/report files and return the text
// naming them for the FAIL block.
std::string write_fail_obs(const RunOutcome& out, const std::string& w,
                           std::uint64_t seed) {
  if (!out.tracer) return {};
  std::string text;
  const std::string stem =
      g_trace_out + "." + w + ".s" + std::to_string(seed);
  if (g_trace) {
    const std::string path = stem + ".trace.csv";
    std::ofstream os(path);
    out.tracer->write_csv(os);
    for (const obs::RegionSpan& reg : out.regions) {
      os << "# region base=" << reg.base << " bytes=" << reg.bytes
         << " name=" << reg.name << '\n';
    }
    text += "trace: " + path + "\n";
  }
  if (g_report) {
    const std::string path = stem + ".report.txt";
    std::ofstream os(path);
    obs::write_report(os, obs::analyze(*out.tracer, out.regions));
    text += "report: " + path + "\n";
  }
  return text;
}

bool parse_u64(const char* s, std::uint64_t* out) {
  if (s == nullptr) return false;
  return util::parse_u64(s, out);
}

// One machine per run: fresh caches, fresh directory, fresh heap, and the
// seed folded into both the event tie-breaking and the ring phases.
std::unique_ptr<machine::Machine> make_fuzz_machine(std::uint64_t seed,
                                                    unsigned procs,
                                                    unsigned scale = 1) {
  machine::MachineConfig cfg = machine::MachineConfig::ksr1(procs);
  if (scale > 1) cfg = cfg.scaled_by(scale);
  cfg.sched_fuzz_seed = seed;
  cfg.sim_threads = g_sim_threads;
  if (g_cells_per_leaf != 0) cfg.cells_per_leaf = g_cells_per_leaf;
  cfg.cells_per_domain = g_cells_per_domain;
  return machine::make_machine(cfg);
}

// Fig. 3 style: every cell hammers one hardware lock (get_subpage /
// release_subpage) and increments a shared counter under it. The Atomic
// state, NACK-and-retry, and owner migration paths all light up. Semantic
// check: the counter ends at exactly procs * ops.
RunOutcome run_locks(std::uint64_t seed, unsigned procs) {
  RunOutcome out;
  auto m = make_fuzz_machine(seed, procs);
  auto& cm = dynamic_cast<machine::CoherentMachine&>(*m);
  check::InvariantChecker checker(cm);
  cm.attach_checker(&checker);
  out.tracer = make_fuzz_tracer();
  if (out.tracer) m->attach_tracer(out.tracer.get());

  constexpr std::uint32_t kOps = 24;
  sync::HardwareLock lock(*m, "fuzz.lock");
  sync::Padded<std::uint32_t> counter(*m, "fuzz.counter", 1);

  try {
    m->run([&](machine::Cpu& cpu) {
      for (std::uint32_t i = 0; i < kOps; ++i) {
        lock.acquire(cpu);
        counter.write(cpu, 0, counter.read(cpu, 0) + 1);
        lock.release(cpu);
        cpu.work(cpu.rng().below(800));
      }
    });
    checker.audit_all();
  } catch (const check::ViolationError& e) {
    out.ok = false;
    out.detail = e.what();
  }
  const std::uint32_t want = static_cast<std::uint32_t>(procs) * kOps;
  if (out.ok && counter.value(0) != want) {
    out.ok = false;
    out.detail = "semantic: lock-protected counter ended at " +
                 std::to_string(counter.value(0)) + ", expected " +
                 std::to_string(want) + " (lost update under HardwareLock)";
  }
  capture_obs(out, *m);
  out.events = m->engine().events_dispatched();
  out.stats = checker.stats();
  return out;
}

// Fig. 4 style: barrier episodes with a cross-check that the barrier
// actually separates them. Before episode e every cell publishes e in its
// own sub-page-padded slot; after the barrier every cell reads all slots and
// demands agreement; a second barrier closes the read phase before anyone
// starts episode e+1. The MCS(M) kind uses the intentionally false-shared
// packed flag word plus a poststore wake-up flag, the two riskiest protocol
// paths the barrier suite has.
RunOutcome run_barriers(std::uint64_t seed, unsigned procs) {
  RunOutcome out;
  auto m = make_fuzz_machine(seed, procs);
  auto& cm = dynamic_cast<machine::CoherentMachine&>(*m);
  check::InvariantChecker checker(cm);
  cm.attach_checker(&checker);
  out.tracer = make_fuzz_tracer();
  if (out.tracer) m->attach_tracer(out.tracer.get());

  constexpr std::uint32_t kEpisodes = 12;
  auto barrier = sync::make_barrier(*m, sync::BarrierKind::kMcsM);
  sync::Padded<std::uint32_t> slots(*m, "fuzz.slots", procs);
  std::string mismatch;  // cells run as fibers, one at a time: plain is fine

  try {
    m->run([&](machine::Cpu& cpu) {
      const std::size_t me = cpu.id();
      for (std::uint32_t e = 1; e <= kEpisodes; ++e) {
        cpu.work(cpu.rng().below(500));
        slots.write(cpu, me, e);
        barrier->arrive(cpu);
        for (unsigned j = 0; j < procs; ++j) {
          const std::uint32_t v = slots.read(cpu, j);
          if (v != e && mismatch.empty()) {
            mismatch = "semantic: after barrier episode " +
                       std::to_string(e) + " cpu " + std::to_string(me) +
                       " read slot[" + std::to_string(j) + "] = " +
                       std::to_string(v) + " (barrier admitted a straggler)";
          }
        }
        barrier->arrive(cpu);
      }
    });
    checker.audit_all();
  } catch (const check::ViolationError& e) {
    out.ok = false;
    out.detail = e.what();
  }
  if (out.ok && !mismatch.empty()) {
    out.ok = false;
    out.detail = mismatch;
  }
  capture_obs(out, *m);
  out.events = m->engine().events_dispatched();
  out.stats = checker.stats();
  return out;
}

// NAS IS, class S sized down for a 32-seed smoke run: the bucket histogram
// phase is all read-modify-write sharing, the ranking phase is lock plus
// barrier plus prefetch traffic. Semantic check: run_is verifies the final
// ranks itself (ranks_valid).
RunOutcome run_is(std::uint64_t seed, unsigned procs) {
  RunOutcome out;
  // Caches scaled down with the problem (as the NAS smoke tests do) so the
  // run also fuzzes capacity evictions (kPageEvict) and re-fetch paths.
  auto m = make_fuzz_machine(seed, procs, /*scale=*/64);
  auto& cm = dynamic_cast<machine::CoherentMachine&>(*m);
  check::InvariantChecker checker(cm);
  cm.attach_checker(&checker);
  out.tracer = make_fuzz_tracer();
  if (out.tracer) m->attach_tracer(out.tracer.get());

  nas::IsConfig cfg;
  cfg.log2_keys = 11;
  cfg.log2_buckets = 7;

  try {
    nas::IsResult res;
    if (!g_checkpoint_at.empty() || !g_restore_from.empty()) {
      // Split-phase flow: checkpoint (or restore) at the warm-up boundary,
      // then run the contended ranking phases.
      nas::IsSplit split(*m, cfg);
      if (!g_restore_from.empty()) {
        m->restore_from(g_restore_from);
      } else {
        split.run_warmup();
        out.ckpt_file = g_checkpoint_at + ".s" + std::to_string(seed) +
                        ".ckpt";
        m->checkpoint_to(out.ckpt_file);
      }
      res = split.run_ranked();
    } else {
      res = nas::run_is(*m, cfg);
    }
    if (!res.ranks_valid) {
      out.ok = false;
      out.detail = "semantic: IS full_verify failed (ranks out of order)";
    }
    checker.audit_all();
  } catch (const check::ViolationError& e) {
    out.ok = false;
    out.detail = e.what();
  } catch (const std::exception& e) {
    // Checkpoint I/O or restore validation failure — report, don't abort
    // the whole seed sweep.
    out.ok = false;
    out.detail = e.what();
  }
  capture_obs(out, *m);
  out.events = m->engine().events_dispatched();
  out.stats = checker.stats();
  return out;
}

RunOutcome run_workload(const std::string& w, std::uint64_t seed,
                        unsigned procs) {
  if (w == "locks") return run_locks(seed, procs);
  if (w == "barriers") return run_barriers(seed, procs);
  return run_is(seed, procs);
}

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--workload locks|barriers|is|all] [--seeds N]\n"
      "          [--seed-base S] [--procs P] [--sim-threads T]\n"
      "          [--cells-per-leaf C] [--cells-per-domain D] [--verbose]\n"
      "          [--checkpoint-at PREFIX] [--restore-from FILE]\n"
      "          [--trace] [--trace-cats ring,coherence,sync,stall]\n"
      "          [--trace-out PREFIX] [--report]\n"
      "\n"
      "Runs N consecutive schedule seeds (S, S+1, ...) of each workload on\n"
      "a KSR-1 machine with the ALLCACHE invariant checker attached.\n"
      "Seed 0 is the reference schedule the published fingerprints use;\n"
      "every nonzero seed is a distinct, exactly reproducible schedule.\n"
      "\n"
      "Replay a failure: --workload <w> --procs <p> --seed-base <seed> "
      "--seeds 1\n"
      "\n"
      "--checkpoint-at PREFIX switches the IS workload to the split-phase\n"
      "kernel and writes PREFIX.s<seed>.ckpt at each seed's warm-up\n"
      "boundary; a FAIL replay line then includes --restore-from so the\n"
      "violating schedule replays from just before the contended phases.\n"
      "--restore-from FILE restores instead of warming up (same --procs /\n"
      "--sim-threads / seed as the capture; use --seeds 1).\n"
      "\n"
      "--trace captures a structured event trace of every run and, on a\n"
      "FAIL, writes the violating schedule's window to\n"
      "PREFIX.<workload>.s<seed>.trace.csv (PREFIX from --trace-out,\n"
      "default 'ksrfuzz'; --trace-cats filters categories). --report\n"
      "additionally writes a ksrprof profile to ....report.txt. Tracing\n"
      "never perturbs the schedule, so replay lines stay valid either way.\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const char* val = i + 1 < argc ? argv[i + 1] : nullptr;
    if (a == "--workload" && val != nullptr) {
      opt.workload = val;
      ++i;
    } else if (a == "--seeds" && val != nullptr) {
      if (!parse_u64(val, &opt.seeds)) return usage(argv[0]);
      ++i;
    } else if (a == "--seed-base" && val != nullptr) {
      if (!parse_u64(val, &opt.seed_base)) return usage(argv[0]);
      ++i;
    } else if (a == "--procs" && val != nullptr) {
      std::uint64_t p = 0;
      if (!parse_u64(val, &p) || p == 0 || p > 1088) return usage(argv[0]);
      opt.procs = static_cast<unsigned>(p);
      ++i;
    } else if (a == "--sim-threads" && val != nullptr) {
      std::uint64_t t = 0;
      if (!parse_u64(val, &t) || t > 1024) return usage(argv[0]);
      g_sim_threads = static_cast<unsigned>(t);
      ++i;
    } else if (a == "--cells-per-leaf" && val != nullptr) {
      std::uint64_t c = 0;
      if (!parse_u64(val, &c) || c > 64) return usage(argv[0]);
      g_cells_per_leaf = static_cast<unsigned>(c);
      ++i;
    } else if (a == "--cells-per-domain" && val != nullptr) {
      std::uint64_t d = 0;
      if (!parse_u64(val, &d) || d > 1088) return usage(argv[0]);
      g_cells_per_domain = static_cast<unsigned>(d);
      ++i;
    } else if (a == "--checkpoint-at" && val != nullptr) {
      g_checkpoint_at = val;
      ++i;
    } else if (a == "--restore-from" && val != nullptr) {
      g_restore_from = val;
      ++i;
    } else if (a == "--trace") {
      g_trace = true;
    } else if (a == "--trace-cats" && val != nullptr) {
      g_trace_cats = val;
      ++i;
    } else if (a == "--trace-out" && val != nullptr) {
      g_trace = true;
      g_trace_out = val;
      ++i;
    } else if (a == "--report") {
      g_report = true;
    } else if (a == "--verbose") {
      opt.verbose = true;
    } else {
      return usage(argv[0]);
    }
  }

  std::vector<std::string> workloads;
  if (opt.workload == "all") {
    workloads = {"locks", "barriers", "is"};
  } else if (opt.workload == "locks" || opt.workload == "barriers" ||
             opt.workload == "is") {
    workloads = {opt.workload};
  } else {
    return usage(argv[0]);
  }

  std::uint64_t runs = 0;
  std::uint64_t failures = 0;
  std::uint64_t transitions = 0;
  std::uint64_t audits = 0;
  for (const std::string& w : workloads) {
    for (std::uint64_t k = 0; k < opt.seeds; ++k) {
      const std::uint64_t seed = opt.seed_base + k;
      const RunOutcome out = run_workload(w, seed, opt.procs);
      ++runs;
      transitions += out.stats.transitions;
      audits += out.stats.audits;
      if (!out.ok) {
        ++failures;
        std::string topo;  // non-default topology knobs, for exact replay
        if (g_cells_per_leaf != 0) {
          topo += " --cells-per-leaf " + std::to_string(g_cells_per_leaf);
        }
        if (g_cells_per_domain != 0) {
          topo += " --cells-per-domain " + std::to_string(g_cells_per_domain);
        }
        if (!out.ckpt_file.empty()) {
          // Replay from just before the contended phases: the checkpoint
          // captured at this seed's warm-up boundary.
          topo += " --restore-from " + out.ckpt_file;
        }
        const std::string obs_files = write_fail_obs(out, w, seed);
        std::fprintf(stderr,
                     "FAIL workload=%s seed=%" PRIu64 " procs=%u\n%s\n"
                     "%s"
                     "replay: ksrfuzz --workload %s --procs %u "
                     "--seed-base %" PRIu64 " --seeds 1%s\n",
                     w.c_str(), seed, opt.procs, out.detail.c_str(),
                     obs_files.c_str(),
                     w.c_str(), opt.procs, seed, topo.c_str());
      } else if (opt.verbose) {
        std::fprintf(stdout,
                     "ok workload=%s seed=%" PRIu64 " procs=%u events=%" PRIu64
                     " transitions=%" PRIu64 " audits=%" PRIu64 "\n",
                     w.c_str(), seed, opt.procs, out.events,
                     out.stats.transitions, out.stats.audits);
      }
    }
  }

  std::fprintf(stdout,
               "ksrfuzz: %" PRIu64 " runs (%zu workloads x %" PRIu64
               " seeds, procs=%u, hooks %s), %" PRIu64
               " failures, transitions=%" PRIu64 " audits=%" PRIu64 "\n",
               runs, workloads.size(), opt.seeds, opt.procs,
               check::kHooksCompiled ? "compiled-in" : "end-of-run only",
               failures, transitions, audits);
  return failures == 0 ? 0 : 1;
}
