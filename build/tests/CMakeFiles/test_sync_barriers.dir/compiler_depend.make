# Empty compiler generated dependencies file for test_sync_barriers.
# This may be replaced when dependencies are built.
