#include "ksr/ckpt/checkpoint.hpp"

#include <unistd.h>

#include <cerrno>
#include <cstdio>

namespace ksr::ckpt {

std::vector<std::byte> Writer::seal() const {
  std::vector<std::byte> out;
  out.reserve(kHeaderBytes + buf_.size());
  for (const char c : kMagic) out.push_back(static_cast<std::byte>(c));
  auto le = [&out](std::uint64_t v, std::size_t width) {
    for (std::size_t i = 0; i < width; ++i) {
      out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
    }
  };
  le(kVersion, 4);
  le(buf_.size(), 8);
  le(fnv1a(buf_.data(), buf_.size()), 8);
  out.insert(out.end(), buf_.begin(), buf_.end());
  return out;
}

Reader open(const std::byte* image, std::size_t n) {
  if (n < kHeaderBytes) {
    throw std::runtime_error("checkpoint: image too small for a header (" +
                             std::to_string(n) + " byte(s))");
  }
  if (std::memcmp(image, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error(
        "checkpoint: bad magic — not a KSR checkpoint image");
  }
  auto le = [image](std::size_t off, std::size_t width) {
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < width; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(image[off + i]))
           << (8 * i);
    }
    return v;
  };
  const std::uint64_t version = le(8, 4);
  if (version != kVersion) {
    throw std::runtime_error("checkpoint: format version " +
                             std::to_string(version) + " (this build reads " +
                             std::to_string(kVersion) + ")");
  }
  const std::uint64_t payload = le(12, 8);
  if (payload != n - kHeaderBytes) {
    throw std::runtime_error(
        "checkpoint: header claims " + std::to_string(payload) +
        " payload byte(s), image carries " + std::to_string(n - kHeaderBytes));
  }
  const std::uint64_t want = le(20, 8);
  const std::uint64_t got =
      fnv1a(image + kHeaderBytes, static_cast<std::size_t>(payload));
  if (want != got) {
    char buf[2 * 16 + 1];
    std::snprintf(buf, sizeof(buf), "%016llx/%016llx",
                  static_cast<unsigned long long>(want),
                  static_cast<unsigned long long>(got));
    throw std::runtime_error(
        std::string("checkpoint: payload fingerprint mismatch (header/actual "
                    "fnv1a ") +
        buf + ") — image corrupt, restore refused");
  }
  return Reader(image + kHeaderBytes, static_cast<std::size_t>(payload));
}

void atomic_write_file(const std::string& path, const void* data,
                       std::size_t n) {
  // The pid suffix keeps concurrent writers of the same path (two daemons
  // sharing a result-cache store) off each other's temp file; whichever
  // rename lands last wins with a complete image either way.
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    throw std::runtime_error("checkpoint: cannot open " + tmp +
                             " for writing: " + std::strerror(errno));
  }
  const std::size_t wrote = n == 0 ? 0 : std::fwrite(data, 1, n, f);
  // fclose flushes the stdio buffer; a full disk often only surfaces here.
  const bool flushed = std::fclose(f) == 0;
  if (wrote != n || !flushed) {
    std::remove(tmp.c_str());
    throw std::runtime_error("checkpoint: short write to " + tmp + ": " +
                             std::strerror(errno));
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const std::string why = std::strerror(errno);
    std::remove(tmp.c_str());
    throw std::runtime_error("checkpoint: cannot rename " + tmp + " to " +
                             path + ": " + why);
  }
}

void write_file(const std::string& path, const std::vector<std::byte>& image) {
  atomic_write_file(path, image.data(), image.size());
}

std::vector<std::byte> read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw std::runtime_error("checkpoint: cannot open " + path);
  }
  std::vector<std::byte> image;
  std::byte chunk[1 << 16];
  for (;;) {
    const std::size_t n = std::fread(chunk, 1, sizeof(chunk), f);
    image.insert(image.end(), chunk, chunk + n);
    if (n < sizeof(chunk)) break;
  }
  const bool err = std::ferror(f) != 0;
  std::fclose(f);
  if (err) {
    throw std::runtime_error("checkpoint: read error on " + path);
  }
  return image;
}

}  // namespace ksr::ckpt
