// Event-tracer tests: ring and coherence activity is captured with the
// right categories, timestamps are monotone, CSV renders with the drop
// footer, over-capacity logging is accounted (not silent), category masks
// filter, and an untraced machine behaves identically (timing unchanged).
#include <gtest/gtest.h>

#include <sstream>

#include "ksr/machine/ksr_machine.hpp"
#include "ksr/obs/tracer.hpp"
#include "ksr/sync/barrier.hpp"

namespace ksr {
namespace {

using machine::Cpu;
using machine::KsrMachine;
using machine::MachineConfig;

TEST(Trace, CapturesRingAndCoherenceEvents) {
  KsrMachine m(MachineConfig::ksr1(2));
  obs::Tracer tracer;
  m.attach_tracer(&tracer);
  auto arr = m.alloc<int>("a", 16);
  auto flag = m.alloc<int>("f", 1);
  m.run([&](Cpu& cpu) {
    if (cpu.id() == 0) {
      cpu.write(arr, 0, 1);
      cpu.write(flag, 0, 1);
    } else {
      while (cpu.read(flag, 0) == 0) cpu.work(10);
      (void)cpu.read(arr, 0);   // remote fetch: ring + grant-shared
      cpu.write(arr, 0, 2);     // upgrade: invalidate at cell 0
    }
  });
  EXPECT_GT(tracer.count("ring", "inject"), 0u);
  EXPECT_EQ(tracer.count("ring", "inject"), tracer.count("ring", "deliver"));
  EXPECT_GT(tracer.count("coherence", "grant-shared"), 0u);
  EXPECT_GT(tracer.count("coherence", "grant-exclusive"), 0u);
  EXPECT_GT(tracer.count("coherence", "invalidate"), 0u);
}

TEST(Trace, RingAndCoherenceTimestampsAreMonotone) {
  // Ring and coherence events carry the global engine clock, so they are
  // non-decreasing in log order. (Sync/stall events use the logging cpu's
  // local clock, which runs ahead of the engine — so the whole-buffer
  // property deliberately does NOT hold; restrict to the global-clock
  // categories.)
  KsrMachine m(MachineConfig::ksr1(4));
  obs::Tracer tracer;
  tracer.set_enabled_categories("ring,coherence");
  m.attach_tracer(&tracer);
  auto barrier = sync::make_barrier(m, sync::BarrierKind::kTournamentM);
  m.run([&](Cpu& cpu) {
    for (int e = 0; e < 3; ++e) barrier->arrive(cpu);
  });
  ASSERT_GT(tracer.size(), 0u);
  for (std::size_t i = 1; i < tracer.size(); ++i) {
    EXPECT_GE(tracer[i].t, tracer[i - 1].t);
  }
}

TEST(Trace, BarrierEpisodesAreBracketed) {
  KsrMachine m(MachineConfig::ksr1(4));
  obs::Tracer tracer;
  m.attach_tracer(&tracer);
  auto barrier = sync::make_barrier(m, sync::BarrierKind::kTournamentM);
  m.run([&](Cpu& cpu) {
    for (int e = 0; e < 3; ++e) barrier->arrive(cpu);
  });
  // Every arrive gets a depart: 3 episodes x 4 cpus each.
  EXPECT_EQ(tracer.count("sync", "barrier-arrive"), 12u);
  EXPECT_EQ(tracer.count("sync", "barrier-arrive"),
            tracer.count("sync", "barrier-depart"));
  // Departs carry the episode wait in detail (>= 0).
  for (const obs::Tracer::Record& r : tracer) {
    if (r.cat == obs::kCatSync && r.ev == obs::kEvBarrierDepart) {
      EXPECT_GE(r.detail, 0);
    }
  }
}

TEST(Trace, AtomicContentionProducesNacksAndStallEvents) {
  KsrMachine m(MachineConfig::ksr1(4));
  obs::Tracer tracer;
  m.attach_tracer(&tracer);
  auto lock = m.alloc<int>("lock", 1);
  m.run([&](Cpu& cpu) {
    for (int i = 0; i < 5; ++i) {
      cpu.get_subpage(lock.addr(0));
      cpu.work(2000);
      cpu.release_subpage(lock.addr(0));
    }
  });
  EXPECT_GT(tracer.count("coherence", "grant-atomic"), 0u);
  EXPECT_GT(tracer.count("coherence", "nack"), 0u);
  // Stall attribution: every NACKed attempt logs its backoff nap, and every
  // completed get_subpage its total acquire latency.
  EXPECT_GT(tracer.count("stall", "nack-backoff"), 0u);
  EXPECT_GT(tracer.count("stall", "remote-acquire"), 0u);
}

TEST(Trace, CsvHasHeaderRowsAndDropFooter) {
  obs::Tracer tracer;
  tracer.log(5, "ring", "inject", 1, 2, 3);
  std::ostringstream os;
  tracer.write_csv(os);
  EXPECT_EQ(os.str(),
            "time_ns,category,event,subject,actor,detail,aux\n"
            "5,ring,inject,1,2,3,0\n"
            "# events=1 dropped=0\n");
}

TEST(Trace, OverCapacityLoggingIsAccounted) {
  // The PR-3 bugfix: a full buffer used to swallow records silently, making
  // a truncated trace indistinguishable from a complete one.
  obs::Tracer tracer;
  tracer.set_capacity(10);
  for (int i = 0; i < 100; ++i) tracer.log(1, "x", "y", 0, 0);
  EXPECT_EQ(tracer.size(), 10u);
  EXPECT_EQ(tracer.dropped(), 90u);
  EXPECT_EQ(tracer.total_logged(), 100u);
  std::ostringstream os;
  tracer.write_csv(os);
  EXPECT_NE(os.str().find("# events=10 dropped=90"), std::string::npos);
}

TEST(Trace, CategoryMaskFilters) {
  obs::Tracer tracer;
  tracer.set_enabled_categories("ring");
  EXPECT_TRUE(tracer.category_enabled(obs::kCatRing));
  EXPECT_FALSE(tracer.category_enabled(obs::kCatSync));
  tracer.log(1, obs::kCatRing, obs::kEvInject, 0, 0);
  tracer.log(2, obs::kCatSync, obs::kEvBarrierArrive, 0, 0);
  EXPECT_EQ(tracer.size(), 1u);
  EXPECT_EQ(tracer.dropped(), 0u);  // masked records are skipped, not dropped
  tracer.enable_all_categories();
  tracer.log(3, obs::kCatSync, obs::kEvBarrierArrive, 0, 0);
  EXPECT_EQ(tracer.size(), 2u);
}

TEST(Trace, InterningRoundTrips) {
  obs::Tracer tracer;
  EXPECT_EQ(tracer.intern_category("ring"), obs::kCatRing);
  EXPECT_EQ(tracer.intern_event("grant-shared"), obs::kEvGrantShared);
  const std::uint16_t custom = tracer.intern_category("my-subsystem");
  EXPECT_GE(custom, obs::kBuiltinCategories);
  EXPECT_EQ(tracer.category_name(custom), "my-subsystem");
  EXPECT_EQ(tracer.intern_category("my-subsystem"), custom);
}

TEST(Trace, TracingDoesNotPerturbTiming) {
  auto run_once = [](bool traced) {
    KsrMachine m(MachineConfig::ksr1(4));
    obs::Tracer tracer;
    if (traced) m.attach_tracer(&tracer);
    auto arr = m.alloc<int>("a", 1024);
    auto res = m.run([&](Cpu& cpu) {
      for (unsigned i = cpu.id(); i < 1024; i += cpu.nproc()) {
        cpu.write(arr, i, 1);
      }
      for (unsigned i = 0; i < 1024; i += 32) (void)cpu.read(arr, i);
    });
    return res.seconds;
  };
  EXPECT_DOUBLE_EQ(run_once(false), run_once(true));
}

}  // namespace
}  // namespace ksr
