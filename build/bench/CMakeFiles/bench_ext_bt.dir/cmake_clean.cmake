file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_bt.dir/bench_ext_bt.cpp.o"
  "CMakeFiles/bench_ext_bt.dir/bench_ext_bt.cpp.o.d"
  "bench_ext_bt"
  "bench_ext_bt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_bt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
