file(REMOVE_RECURSE
  "CMakeFiles/ksrsim.dir/ksrsim.cpp.o"
  "CMakeFiles/ksrsim.dir/ksrsim.cpp.o.d"
  "ksrsim"
  "ksrsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ksrsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
