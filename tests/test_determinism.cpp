// Bit-determinism guarantees of the simulation core.
//
// The host-side fast paths (allocation-free event queue, table-driven ring
// retries, coherence MRU hint) are pure optimisations: for a fixed seed a
// run must dispatch exactly the same events and report exactly the same
// simulated cycle counts every time. These tests pin that contract:
//  - identical repeated runs (events_dispatched + simulated time) for a
//    barrier episode and a small Integer Sort;
//  - the event-driven ring against a line-by-line reimplementation of the
//    original polled model (O(positions) scan per retry), asserting
//    identical per-transaction completion times and slot waits.
#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "ksr/machine/ksr_machine.hpp"
#include "ksr/nas/is.hpp"
#include "ksr/net/ring.hpp"
#include "ksr/sim/engine.hpp"
#include "ksr/sync/barrier.hpp"

namespace ksr {
namespace {

struct RunFingerprint {
  std::uint64_t events = 0;
  sim::Time end_time = 0;
  double seconds = 0;

  bool operator==(const RunFingerprint& o) const {
    return events == o.events && end_time == o.end_time && seconds == o.seconds;
  }
};

RunFingerprint barrier_run() {
  machine::KsrMachine m(machine::MachineConfig::ksr1(16));
  auto barrier = sync::make_barrier(m, sync::BarrierKind::kTournamentM);
  double last = 0;
  m.run([&](machine::Cpu& cpu) {
    for (int e = 0; e < 5; ++e) {
      cpu.work(cpu.rng().below(500));
      barrier->arrive(cpu);
    }
    last = cpu.seconds();
  });
  return {m.engine().events_dispatched(), m.engine().now(), last};
}

TEST(Determinism, BarrierEpisodeIsBitReproducible) {
  const RunFingerprint a = barrier_run();
  const RunFingerprint b = barrier_run();
  EXPECT_GT(a.events, 0u);
  EXPECT_GT(a.end_time, 0u);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.seconds, b.seconds);
}

RunFingerprint is_run() {
  machine::KsrMachine m(machine::MachineConfig::ksr1(4).scaled_by(64));
  nas::IsConfig cfg;
  cfg.log2_keys = 12;
  cfg.log2_buckets = 8;
  const nas::IsResult r = run_is(m, cfg);
  EXPECT_TRUE(r.ranks_valid);
  return {m.engine().events_dispatched(), m.engine().now(), r.seconds};
}

TEST(Determinism, IntegerSortIsBitReproducible) {
  const RunFingerprint a = is_run();
  const RunFingerprint b = is_run();
  EXPECT_GT(a.events, 0u);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.seconds, b.seconds);
}

// ---------------------------------------------------------------------------
// Reference ring: the original polled implementation, kept verbatim (modulo
// the removed Stats/Tracer plumbing). Every failed attempt rescans the ring
// for the next passing slot coordinate; the production SlottedRing replaced
// that scan with a precomputed delta table. Both run on the same engine
// semantics, so any divergence in the table logic shows up as a different
// per-transaction latency or wait.
class PolledRing {
 public:
  using Done = net::SlottedRing::Done;

  PolledRing(sim::Engine& engine, const net::SlottedRing::Config& cfg)
      : engine_(engine), cfg_(cfg) {
    const unsigned n = cfg_.positions;
    const unsigned s = std::min(cfg_.slots_per_subring, n);
    subrings_.resize(cfg_.subrings);
    for (auto& sr : subrings_) {
      sr.coord_to_slot.assign(n, -1);
      for (unsigned i = 0; i < s; ++i) {
        const unsigned coord =
            static_cast<unsigned>((static_cast<std::uint64_t>(i) * n) / s);
        if (sr.coord_to_slot[coord] < 0) {
          sr.coord_to_slot[coord] = static_cast<std::int32_t>(i);
        }
      }
      sr.occupied.assign(s, 0);
      sr.waiting.resize(n);
    }
  }

  void inject(unsigned src_pos, unsigned subring, Done done) {
    auto& sr = subrings_[subring];
    sr.waiting[src_pos].push_back(
        Pending{std::move(done), engine_.now(), false});
    Pending& head = sr.waiting[src_pos].front();
    if (!head.polling) {
      head.polling = true;
      const std::uint64_t tick =
          (engine_.now() + cfg_.hop_ns - 1) / cfg_.hop_ns;
      engine_.at(tick * cfg_.hop_ns,
                 [this, subring, src_pos] { try_head(subring, src_pos); });
    }
  }

 private:
  struct Pending {
    Done done;
    sim::Time enqueued = 0;
    bool polling = false;
  };
  struct SubRing {
    std::vector<std::int32_t> coord_to_slot;
    std::vector<std::uint8_t> occupied;
    std::vector<std::deque<Pending>> waiting;
  };

  std::uint64_t next_passing_tick(const SubRing& sr, unsigned pos,
                                  std::uint64_t tick) const {
    const unsigned n = cfg_.positions;
    for (std::uint64_t d = 1; d <= n; ++d) {
      const unsigned coord =
          (pos + n - static_cast<unsigned>((tick + d) % n)) % n;
      if (sr.coord_to_slot[coord] >= 0) return tick + d;
    }
    return tick + 1;
  }

  void try_head(unsigned subring, unsigned pos) {
    auto& sr = subrings_[subring];
    auto& queue = sr.waiting[pos];
    if (queue.empty()) return;
    queue.front().polling = false;

    const unsigned n = cfg_.positions;
    const std::uint64_t tick = engine_.now() / cfg_.hop_ns;
    const unsigned coord = (pos + n - static_cast<unsigned>(tick % n)) % n;
    const std::int32_t slot = sr.coord_to_slot[coord];

    if (slot >= 0 && sr.occupied[static_cast<std::size_t>(slot)] == 0) {
      sr.occupied[static_cast<std::size_t>(slot)] = 1;
      Pending claimed = std::move(queue.front());
      queue.pop_front();
      const sim::Duration wait = engine_.now() - claimed.enqueued;
      engine_.in(cfg_.positions * cfg_.hop_ns,
                 [this, subring, slot, done = std::move(claimed.done), wait] {
                   subrings_[subring].occupied[static_cast<std::size_t>(slot)] =
                       0;
                   done(wait);
                 });
    }

    if (!queue.empty() && !queue.front().polling) {
      queue.front().polling = true;
      const std::uint64_t next = next_passing_tick(sr, pos, tick);
      engine_.at(next * cfg_.hop_ns,
                 [this, subring, pos] { try_head(subring, pos); });
    }
  }

  sim::Engine& engine_;
  net::SlottedRing::Config cfg_;
  std::vector<SubRing> subrings_;
};

// One completed transaction: who, when it finished, how long it waited.
struct Txn {
  unsigned src;
  sim::Time completed;
  sim::Duration wait;

  bool operator==(const Txn& o) const {
    return src == o.src && completed == o.completed && wait == o.wait;
  }
};

// A deterministic, contended injection schedule: bursts from every position
// plus a trickle of stragglers at awkward (non-tick-aligned) times.
std::vector<std::pair<sim::Time, unsigned>> injection_schedule(unsigned n) {
  std::vector<std::pair<sim::Time, unsigned>> plan;
  for (unsigned p = 0; p < n; ++p) {
    for (int k = 0; k < 6; ++k) {
      plan.emplace_back(static_cast<sim::Time>(k) * 450 + p * 17, p);
    }
  }
  for (unsigned p = 0; p < n; p += 3) {
    plan.emplace_back(12345 + p * 7, p);
  }
  return plan;
}

template <typename Ring>
std::vector<Txn> drive(const net::SlottedRing::Config& cfg) {
  sim::Engine eng;
  Ring ring(eng, cfg);
  std::vector<Txn> log;
  for (const auto& [when, pos] : injection_schedule(cfg.positions)) {
    const unsigned p = pos;
    eng.at(when, [&ring, &eng, &log, p] {
      ring.inject(p, p % 2, [&eng, &log, p](sim::Duration wait) {
        log.push_back({p, eng.now(), wait});
      });
    });
  }
  eng.run();
  return log;
}

// Adapter so drive<> can construct the production ring (extra name arg).
class ProductionRing : public net::SlottedRing {
 public:
  ProductionRing(sim::Engine& eng, const Config& cfg)
      : net::SlottedRing(eng, cfg, "xval") {}
};

TEST(Determinism, RingMatchesPolledReferenceModel) {
  const net::SlottedRing::Config cfg{};  // KSR-1 leaf ring: 32 pos, 2x12 slots
  const std::vector<Txn> got = drive<ProductionRing>(cfg);
  const std::vector<Txn> want = drive<PolledRing>(cfg);
  ASSERT_EQ(got.size(), injection_schedule(cfg.positions).size());
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i], want[i]) << "transaction " << i << " diverged: src="
                               << got[i].src << " completed=" << got[i].completed
                               << " wait=" << got[i].wait << " vs reference src="
                               << want[i].src << " completed="
                               << want[i].completed << " wait=" << want[i].wait;
  }
}

TEST(Determinism, RingMatchesPolledReferenceOnOddGeometry) {
  // Non-default geometry: odd position count, slots that don't divide it.
  net::SlottedRing::Config cfg;
  cfg.positions = 13;
  cfg.slots_per_subring = 5;
  cfg.subrings = 2;
  cfg.hop_ns = 70;
  const std::vector<Txn> got = drive<ProductionRing>(cfg);
  const std::vector<Txn> want = drive<PolledRing>(cfg);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i], want[i]) << "transaction " << i;
  }
}

}  // namespace
}  // namespace ksr
