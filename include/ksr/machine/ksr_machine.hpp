#pragma once

#include <memory>
#include <vector>

#include "ksr/machine/coherent_machine.hpp"
#include "ksr/net/ring.hpp"

// The KSR-1/KSR-2 machine: COMA ALLCACHE memory over a hierarchy of slotted
// rings.
//
// Timing comes from the slot-accurate ring model; coherence from the shared
// CoherentMachine core. Behaviours that fall out of the combination:
//
//  * a remote access costs one full ring circulation no matter where the
//    responder sits (unidirectional ring, paper footnote 3);
//  * an access crossing to another leaf ring additionally circulates the
//    level-1 ring and the remote leaf ring through the ARDs (§3.2.4);
//  * get_subpage is refused (NACK) while any cell holds the sub-page Atomic,
//    so contended locks retry over the ring — the serialization of Fig. 3;
//  * read-snarfing refreshes every invalid placeholder when data passes;
//  * poststore pushes an updated sub-page into placeholders, downgrading the
//    writer to Shared (the §3.3.3 poststore pitfall falls out of this).
namespace ksr::machine {

class KsrMachine final : public CoherentMachine {
 public:
  explicit KsrMachine(const MachineConfig& cfg);
  ~KsrMachine() override;

  // --- Topology ---
  [[nodiscard]] unsigned leaf_of(unsigned cell) const noexcept override {
    return cell / cfg_.cells_per_leaf;
  }
  [[nodiscard]] unsigned leaf_count() const noexcept override {
    return static_cast<unsigned>(leaf_rings_.size());
  }
  [[nodiscard]] unsigned pos_of(unsigned cell) const noexcept {
    return cell % cfg_.cells_per_leaf;
  }
  [[nodiscard]] net::SlottedRing& leaf_ring(unsigned leaf) {
    return *leaf_rings_[leaf];
  }
  [[nodiscard]] net::SlottedRing* level1_ring() noexcept { return ring1_.get(); }

  void attach_tracer(sim::Tracer* tracer) override {
    // The base builds per-domain shards on multi-domain machines; each ring
    // logs to its owning domain's tracer so every record is written by the
    // thread advancing that ring's engine.
    Machine::attach_tracer(tracer);
    for (unsigned l = 0; l < leaf_rings_.size(); ++l) {
      leaf_rings_[l]->set_tracer(tracer_of(domain_of_leaf(l)));
    }
    if (ring1_) ring1_->set_tracer(tracer_);
  }

  /// Registers the leaf rings and level-1 ring for the I6 liveness audit.
  void attach_checker(check::InvariantChecker* checker) override;

  [[nodiscard]] NetSnapshot net_snapshot() const override {
    NetSnapshot s;
    for (const auto& r : leaf_rings_) fold_ring(s, *r);
    if (ring1_) fold_ring(s, *ring1_);
    return s;
  }

  /// Domain-local slice: only the leaf rings owned by domain `d` (the
  /// level-1 ring exists single-domain only and belongs to domain 0).
  [[nodiscard]] NetSnapshot net_snapshot_of(unsigned d) const override {
    if (!multi_domain()) return d == 0 ? net_snapshot() : NetSnapshot{};
    NetSnapshot s;
    for (unsigned l = 0; l < leaf_rings_.size(); ++l) {
      if (domain_of_leaf(l) == d) fold_ring(s, *leaf_rings_[l]);
    }
    return s;
  }

  /// Per-ring slot utilization + the leaf-to-leaf traffic matrix, on top of
  /// the coherent core's shard table and the base's domain plan.
  void topo_snapshot(obs::topo::Snapshot& s) const override;

 protected:
  /// Checkpoint hooks: the coherent core's state plus per-ring Stats.
  /// Capture additionally requires every ring idle — no occupied slot, no
  /// waiting injector (docs/CHECKPOINT.md).
  void ckpt_assert_quiescent() const override;
  void ckpt_save(ckpt::Writer& w) const override;
  void ckpt_load(ckpt::Reader& r) override;

  void transport(unsigned cell, mem::SubPageId sp, unsigned target_leaf,
                 std::function<void(sim::Duration)> done) override;
  void home_transport(unsigned from_leaf, unsigned home, mem::SubPageId sp,
                      std::function<void(sim::Duration)> done) override;
  [[nodiscard]] sim::Duration transaction_overhead_ns(
      Acquire kind, bool crossed_leaf) const override;

 private:
  [[nodiscard]] unsigned domain_of_leaf(unsigned leaf) const noexcept {
    return multi_domain() ? cfg_.domain_of_leaf(leaf) : 0;
  }

  static void fold_ring(NetSnapshot& s, const net::SlottedRing& r) noexcept {
    const net::SlottedRing::Stats& st = r.stats();
    s.in_flight += st.in_flight;
    s.slots += r.slot_count();
    s.packets += st.packets;
    s.retries += st.retries;
    s.inject_wait_ns += st.total_inject_wait_ns;
  }

  std::vector<std::unique_ptr<net::SlottedRing>> leaf_rings_;
  std::unique_ptr<net::SlottedRing> ring1_;
  // Leaf-to-leaf transport counts (row-major src×dst), sharded one matrix
  // per domain so each is written only by its domain's thread;
  // topo_snapshot folds them. Observability only — never checkpointed.
  std::vector<std::vector<std::uint64_t>> traffic_shards_;
};

}  // namespace ksr::machine
