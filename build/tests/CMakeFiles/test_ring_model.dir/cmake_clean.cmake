file(REMOVE_RECURSE
  "CMakeFiles/test_ring_model.dir/test_ring_model.cpp.o"
  "CMakeFiles/test_ring_model.dir/test_ring_model.cpp.o.d"
  "test_ring_model"
  "test_ring_model.pdb"
  "test_ring_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ring_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
