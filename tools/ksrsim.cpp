// ksrsim — command-line driver for the simulated KSR-1 and its experiment
// suite. Lets a user run any kernel, barrier or probe on any machine model
// without writing code:
//
//   ksrsim probe     --machine ksr1 --procs 32
//   ksrsim barrier   --kind tournament-m --procs 32 --episodes 50
//   ksrsim lock      --kind rw --read-pct 60 --procs 16 --ops 100
//   ksrsim kernel    --name cg --procs 16 --scale 64
//   ksrsim sweep     --name is --procs 1,2,4,8,16,32 --scale 64
//
// Run `ksrsim help` for the full reference.
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "ksr/host/sweep_runner.hpp"
#include "ksr/machine/factory.hpp"
#include "ksr/nas/bt.hpp"
#include "ksr/nas/cg.hpp"
#include "ksr/nas/ep.hpp"
#include "ksr/nas/is.hpp"
#include "ksr/nas/sp.hpp"
#include "ksr/study/metrics.hpp"
#include "ksr/study/table.hpp"
#include "ksr/sync/barrier.hpp"
#include "ksr/sync/locks.hpp"
#include "ksr/sync/spinlocks.hpp"

namespace {

using namespace ksr;  // NOLINT

// ----------------------------------------------------------- flag parsing

class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      std::string a = argv[i];
      if (a.rfind("--", 0) == 0) {
        const std::string key = a.substr(2);
        if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
          kv_[key] = argv[++i];
        } else {
          kv_[key] = "1";
        }
      }
    }
  }

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& def = "") const {
    const auto it = kv_.find(key);
    return it == kv_.end() ? def : it->second;
  }
  [[nodiscard]] unsigned get_u(const std::string& key, unsigned def) const {
    const auto it = kv_.find(key);
    if (it == kv_.end()) return def;
    const char* s = it->second.c_str();
    char* end = nullptr;
    errno = 0;
    const unsigned long v = std::strtoul(s, &end, 10);
    if (end == s || *end != '\0' || errno == ERANGE ||
        v > std::numeric_limits<unsigned>::max()) {
      std::cerr << "warning: ignoring invalid --" << key << " value '" << s
                << "' (expected a non-negative integer)\n";
      return def;
    }
    return static_cast<unsigned>(v);
  }
  [[nodiscard]] bool has(const std::string& key) const {
    return kv_.count(key) > 0;
  }
  [[nodiscard]] std::vector<unsigned> get_list(const std::string& key,
                                               std::vector<unsigned> def) const {
    const auto it = kv_.find(key);
    if (it == kv_.end()) return def;
    std::vector<unsigned> out;
    std::stringstream ss(it->second);
    std::string tok;
    while (std::getline(ss, tok, ',')) {
      out.push_back(static_cast<unsigned>(std::stoul(tok)));
    }
    return out;
  }

 private:
  std::map<std::string, std::string> kv_;
};

machine::MachineConfig make_config(const Args& args, unsigned procs) {
  const std::string name = args.get("machine", "ksr1");
  machine::MachineConfig cfg = machine::MachineConfig::ksr1(procs);
  if (name == "ksr2") cfg = machine::MachineConfig::ksr2(procs);
  if (name == "symmetry") cfg = machine::MachineConfig::symmetry(procs);
  if (name == "butterfly") cfg = machine::MachineConfig::butterfly(procs);
  const unsigned scale = args.get_u("scale", 1);
  if (scale > 1) cfg = cfg.scaled_by(scale);
  if (args.has("no-snarf")) cfg.read_snarfing = false;
  return cfg;
}

// ------------------------------------------------------------- commands

int cmd_probe(const Args& args) {
  const unsigned procs = args.get_u("procs", 2);
  auto m = machine::make_machine(make_config(args, std::max(procs, 2u)));
  auto arr = m->alloc<double>("probe", 4096);
  auto flag = m->alloc<int>("flag", 1);
  double sub = 0, local = 0, remote = 0;
  m->run([&](machine::Cpu& cpu) {
    if (cpu.id() == 0) {
      for (std::size_t i = 0; i < 4096; i += 16) cpu.write(arr, i, 1.0);
      // Sub-cache hit.
      (void)cpu.read(arr, 0);
      double t0 = cpu.seconds();
      for (int r = 0; r < 100; ++r) (void)cpu.read(arr, 0);
      sub = (cpu.seconds() - t0) / 100;
      // Local-cache-ish: stride sub-blocks.
      t0 = cpu.seconds();
      std::size_t k = 0;
      for (std::size_t i = 0; i < 4096; i += 8, ++k) (void)cpu.read(arr, i);
      local = (cpu.seconds() - t0) / static_cast<double>(k);
      cpu.write(flag, 0, 1);
    } else if (cpu.id() == 1) {
      while (cpu.read(flag, 0) == 0) cpu.work(10);
      const double t0 = cpu.seconds();
      std::size_t k = 0;
      for (std::size_t i = 0; i < 4096; i += 16, ++k) (void)cpu.read(arr, i);
      remote = (cpu.seconds() - t0) / static_cast<double>(k);
    }
  });
  std::printf("machine: %s, %u cells\n",
              machine::to_string(m->config().kind), m->nproc());
  std::printf("  repeat-read (sub-cache)   : %7.3f us\n", sub * 1e6);
  std::printf("  stride-read (local level) : %7.3f us\n", local * 1e6);
  std::printf("  remote read               : %7.3f us\n", remote * 1e6);
  return 0;
}

int cmd_barrier(const Args& args) {
  static const std::map<std::string, sync::BarrierKind> kinds = {
      {"counter", sync::BarrierKind::kCounter},
      {"tree", sync::BarrierKind::kTree},
      {"tree-m", sync::BarrierKind::kTreeM},
      {"dissemination", sync::BarrierKind::kDissemination},
      {"tournament", sync::BarrierKind::kTournament},
      {"tournament-m", sync::BarrierKind::kTournamentM},
      {"mcs", sync::BarrierKind::kMcs},
      {"mcs-m", sync::BarrierKind::kMcsM},
      {"system", sync::BarrierKind::kSystem}};
  const auto it = kinds.find(args.get("kind", "tournament-m"));
  if (it == kinds.end()) {
    std::fprintf(stderr, "unknown barrier kind\n");
    return 1;
  }
  const unsigned procs = args.get_u("procs", 16);
  const int episodes = static_cast<int>(args.get_u("episodes", 25));
  auto m = machine::make_machine(make_config(args, procs));
  auto barrier = sync::make_barrier(*m, it->second);
  sim::Tracer tracer;
  const std::string trace_path = args.get("trace");
  if (!trace_path.empty()) m->attach_tracer(&tracer);
  double total = 0;
  auto res = m->run([&](machine::Cpu& cpu) {
    barrier->arrive(cpu);
    const double t0 = cpu.seconds();
    for (int e = 0; e < episodes; ++e) {
      cpu.work(cpu.rng().below(500));
      barrier->arrive(cpu);
    }
    if (cpu.seconds() - t0 > total) total = cpu.seconds() - t0;
  });
  std::printf("%s on %s, %u procs: %.1f us/episode "
              "(%llu network transactions total)\n",
              std::string(barrier->name()).c_str(),
              machine::to_string(m->config().kind), procs,
              total / episodes * 1e6,
              static_cast<unsigned long long>(res.pmon.ring_requests));
  if (!trace_path.empty()) {
    std::ofstream out(trace_path);
    tracer.write_csv(out);
    std::printf("wrote %zu trace events to %s\n", tracer.size(),
                trace_path.c_str());
  }
  return 0;
}

int cmd_lock(const Args& args) {
  const unsigned procs = args.get_u("procs", 8);
  const int ops = static_cast<int>(args.get_u("ops", 50));
  const std::string kind = args.get("kind", "hw");
  const unsigned read_pct = args.get_u("read-pct", 0);
  auto m = machine::make_machine(make_config(args, procs));
  double t = 0;
  if (kind == "rw") {
    sync::TicketRwLock lock(*m);
    m->run([&](machine::Cpu& cpu) {
      for (int i = 0; i < ops; ++i) {
        const bool rd = cpu.rng().below(100) < read_pct;
        if (rd) {
          lock.acquire_read(cpu);
          cpu.work(6000);
          lock.release_read(cpu);
        } else {
          lock.acquire_write(cpu);
          cpu.work(6000);
          lock.release_write(cpu);
        }
        cpu.work(20000);
      }
      if (cpu.seconds() > t) t = cpu.seconds();
    });
  } else if (kind == "hw") {
    sync::HardwareLock lock(*m);
    m->run([&](machine::Cpu& cpu) {
      for (int i = 0; i < ops; ++i) {
        lock.acquire(cpu);
        cpu.work(6000);
        lock.release(cpu);
        cpu.work(20000);
      }
      if (cpu.seconds() > t) t = cpu.seconds();
    });
  } else {
    static const std::map<std::string, sync::SpinLockKind> kinds = {
        {"tas", sync::SpinLockKind::kTestAndSet},
        {"tas-backoff", sync::SpinLockKind::kTestAndSetBackoff},
        {"ticket", sync::SpinLockKind::kTicket},
        {"anderson", sync::SpinLockKind::kAnderson},
        {"mcs-queue", sync::SpinLockKind::kMcsQueue}};
    const auto it = kinds.find(kind);
    if (it == kinds.end()) {
      std::fprintf(stderr, "unknown lock kind '%s'\n", kind.c_str());
      return 1;
    }
    auto lock = sync::make_spinlock(*m, it->second);
    m->run([&](machine::Cpu& cpu) {
      for (int i = 0; i < ops; ++i) {
        lock->acquire(cpu);
        cpu.work(6000);
        lock->release(cpu);
        cpu.work(20000);
      }
      if (cpu.seconds() > t) t = cpu.seconds();
    });
  }
  std::printf("%s lock, %u procs, %d ops/proc: %.4f s total, %.1f us/op\n",
              kind.c_str(), procs, ops, t,
              t / ops * 1e6);
  return 0;
}

double run_kernel_once(const Args& args, const std::string& name,
                       unsigned procs) {
  auto m = machine::make_machine(make_config(args, procs));
  if (name == "ep") {
    nas::EpConfig c;
    c.log2_pairs = args.get_u("log2-pairs", 13);
    return run_ep(*m, c).seconds;
  }
  if (name == "cg") {
    nas::CgConfig c;
    c.n = args.get_u("n", 1000);
    c.nnz_per_row = args.get_u("nnz-per-row", 24);
    c.iterations = args.get_u("iters", 4);
    return run_cg(*m, c).seconds;
  }
  if (name == "is") {
    nas::IsConfig c;
    c.log2_keys = args.get_u("log2-keys", 15);
    c.log2_buckets = args.get_u("log2-buckets", 10);
    return run_is(*m, c).seconds;
  }
  if (name == "sp") {
    nas::SpConfig c;
    c.n = args.get_u("n", 16);
    c.iterations = args.get_u("iters", 2);
    c.padded_layout = !args.has("no-padding");
    c.use_prefetch = !args.has("no-prefetch");
    return run_sp(*m, c).total_seconds;
  }
  if (name == "bt") {
    nas::BtConfig c;
    c.n = args.get_u("n", 10);
    c.iterations = args.get_u("iters", 2);
    return run_bt(*m, c).total_seconds;
  }
  throw std::runtime_error("unknown kernel '" + name + "'");
}

int cmd_kernel(const Args& args) {
  const std::string name = args.get("name", "cg");
  const unsigned procs = args.get_u("procs", 8);
  const double t = run_kernel_once(args, name, procs);
  std::printf("%s on %u procs: %.5f simulated seconds\n", name.c_str(), procs,
              t);
  return 0;
}

int cmd_sweep(const Args& args) {
  const std::string name = args.get("name", "cg");
  const std::vector<unsigned> procs =
      args.get_list("procs", {1, 2, 4, 8, 16});
  // Every processor count is an independent simulation: shard them over
  // host threads (--jobs N, default one per core). Results merge in
  // submission order, so the table is bit-identical for any --jobs value.
  host::SweepRunner runner(args.get_u("jobs", 0));
  std::vector<std::function<double()>> jobs;
  jobs.reserve(procs.size());
  for (unsigned p : procs) {
    jobs.emplace_back([&args, name, p] {
      return run_kernel_once(args, name, p);
    });
  }
  const std::vector<double> seconds = runner.run(jobs);
  std::vector<std::pair<unsigned, double>> measured;
  for (std::size_t i = 0; i < procs.size(); ++i) {
    measured.emplace_back(procs[i], seconds[i]);
  }
  study::TextTable t({"procs", "time (s)", "speedup", "efficiency",
                      "serial fraction"});
  for (const auto& row : study::scaling_rows(measured)) {
    t.add_row({std::to_string(row.p), study::TextTable::num(row.seconds, 5),
               study::TextTable::num(row.speedup, 3),
               row.p == 1 ? "-" : study::TextTable::num(row.efficiency, 3),
               row.p == 1 ? "-"
                          : study::TextTable::num(row.serial_fraction, 6)});
  }
  std::printf("%s scaling sweep:\n", name.c_str());
  if (args.has("csv")) {
    t.print_csv();
  } else {
    t.print();
  }
  return 0;
}

int cmd_help() {
  std::puts(
      "ksrsim — drive the simulated KSR-1 from the command line\n"
      "\n"
      "commands:\n"
      "  probe    latency probes            [--machine M --procs P]\n"
      "  barrier  time a barrier algorithm  [--kind K --procs P --episodes E]\n"
      "  lock     time a lock               [--kind hw|rw|tas|tas-backoff|\n"
      "                                       ticket|anderson|mcs-queue\n"
      "                                       --read-pct N --ops N]\n"
      "  kernel   run one NAS kernel        [--name ep|cg|is|sp|bt --procs P]\n"
      "  sweep    scaling table             [--name K --procs 1,2,4,...\n"
      "                                       --jobs N  shard the sweep over\n"
      "                                       N host threads (default: one\n"
      "                                       per core; output is identical\n"
      "                                       for any N)]\n"
      "\n"
      "common flags:\n"
      "  --machine ksr1|ksr2|symmetry|butterfly   (default ksr1)\n"
      "  --scale N      shrink caches by N (pair with smaller problems)\n"
      "  --no-snarf     disable read-snarfing\n"
      "  --csv          CSV output where applicable\n"
      "\n"
      "kernel size flags: --log2-pairs (ep), --n/--nnz-per-row/--iters (cg),\n"
      "  --log2-keys/--log2-buckets (is), --n/--iters/--no-padding/\n"
      "  --no-prefetch (sp), --n/--iters (bt)");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return cmd_help();
  const std::string cmd = argv[1];
  const Args args(argc, argv);
  try {
    if (cmd == "probe") return cmd_probe(args);
    if (cmd == "barrier") return cmd_barrier(args);
    if (cmd == "lock") return cmd_lock(args);
    if (cmd == "kernel") return cmd_kernel(args);
    if (cmd == "sweep") return cmd_sweep(args);
    return cmd_help();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ksrsim: %s\n", e.what());
    return 1;
  }
}
