// Machine-level odds and ends: per-cell programs, run-result accounting,
// the Symmetry and Butterfly machines, bulk range accesses, prefetch-queue
// bounds, and configuration validation.
#include <gtest/gtest.h>

#include "ksr/machine/bus_machine.hpp"
#include "ksr/machine/butterfly_machine.hpp"
#include "ksr/machine/factory.hpp"
#include "ksr/machine/ksr_machine.hpp"
#include "ksr/sync/atomic.hpp"

namespace ksr::machine {
namespace {

TEST(MachineRun, DistinctProgramsPerCell) {
  KsrMachine m(MachineConfig::ksr1(3));
  auto out = m.alloc<int>("out", 3 * 32);
  std::vector<Machine::Program> programs;
  for (int k = 0; k < 3; ++k) {
    programs.emplace_back([&out, k](Cpu& cpu) {
      cpu.write(out, static_cast<std::size_t>(k) * 32, 100 + k);
      cpu.work(static_cast<std::uint64_t>(1000) * (k + 1));
    });
  }
  const RunResult res = m.run(programs);
  for (int k = 0; k < 3; ++k) {
    EXPECT_EQ(out.value(static_cast<std::size_t>(k) * 32), 100 + k);
  }
  // Cell 2 worked 3x as long as cell 0.
  EXPECT_GT(res.cell_seconds[2], res.cell_seconds[0]);
  EXPECT_DOUBLE_EQ(res.seconds, res.cell_seconds[2]);
}

TEST(MachineRun, WrongProgramCountRejected) {
  KsrMachine m(MachineConfig::ksr1(2));
  std::vector<Machine::Program> programs(3, [](Cpu&) {});
  EXPECT_THROW(m.run(programs), std::invalid_argument);
}

TEST(MachineRun, PmonDeltasArePerRun) {
  KsrMachine m(MachineConfig::ksr1(2));
  auto a = m.alloc<int>("a", 64);
  auto prog = [&](Cpu& cpu) {
    if (cpu.id() == 0) {
      for (std::size_t i = 0; i < 64; ++i) (void)cpu.read(a, i);
    }
  };
  const RunResult r1 = m.run(prog);
  const RunResult r2 = m.run(prog);
  EXPECT_GT(r1.pmon.subcache_misses, 0u);
  // Second run is warm: strictly fewer misses, and the delta is not
  // contaminated by the first run's counters.
  EXPECT_LT(r2.pmon.subcache_misses, r1.pmon.subcache_misses);
  EXPECT_EQ(r2.pmon.subcache_hits + r2.pmon.subcache_misses,
            r1.pmon.subcache_hits + r1.pmon.subcache_misses);
}

TEST(MachineRun, SecondRunStartsAtLaterEpochButReportsRelativeSeconds) {
  KsrMachine m(MachineConfig::ksr1(1));
  auto prog = [](Cpu& cpu) { cpu.work(1000); };
  const RunResult r1 = m.run(prog);
  const RunResult r2 = m.run(prog);
  EXPECT_DOUBLE_EQ(r1.seconds, r2.seconds);
}

TEST(Config, ValidationRejectsBadShapes) {
  MachineConfig c = MachineConfig::ksr1(0);
  EXPECT_THROW(c.validate(), std::invalid_argument);
  // 65 cells is now a legal three-leaf hierarchy; the limits are derived
  // from the topology itself (34 ARD positions on the level-1 ring).
  c = MachineConfig::ksr1(65);
  EXPECT_NO_THROW(c.validate());
  c = MachineConfig::ksr1(MachineConfig::kRing1Positions * 32);  // 1088
  EXPECT_NO_THROW(c.validate());
  c = MachineConfig::ksr1(MachineConfig::kRing1Positions * 32 + 1);
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = MachineConfig::ksr1(8);
  c.cells_per_leaf = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  // The bus/butterfly substrates keep the historical 64-cell ceiling.
  c = MachineConfig::symmetry(65);
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = MachineConfig::butterfly(65);
  EXPECT_THROW(c.validate(), std::invalid_argument);
  EXPECT_THROW((void)MachineConfig::ksr1(4).scaled_by(0),
               std::invalid_argument);
}

TEST(Config, ScaledByPreservesUnitsAndFloors) {
  const MachineConfig c = MachineConfig::ksr1(4).scaled_by(1u << 20);
  // Floors: associativity * allocation unit.
  EXPECT_EQ(c.subcache.capacity_bytes, 2 * mem::kBlockBytes);
  EXPECT_EQ(c.localcache.capacity_bytes, 16 * mem::kPageBytes);
}

TEST(Config, LeafRingCount) {
  EXPECT_EQ(MachineConfig::ksr1(32).leaf_rings(), 1u);
  EXPECT_EQ(MachineConfig::ksr2(33).leaf_rings(), 2u);
  EXPECT_EQ(MachineConfig::ksr2(64).leaf_rings(), 2u);
}

TEST(Factory, BuildsTheRightMachine) {
  EXPECT_NE(dynamic_cast<KsrMachine*>(
                make_machine(MachineConfig::ksr1(2)).get()),
            nullptr);
  EXPECT_NE(dynamic_cast<KsrMachine*>(
                make_machine(MachineConfig::ksr2(2)).get()),
            nullptr);
  EXPECT_NE(dynamic_cast<BusMachine*>(
                make_machine(MachineConfig::symmetry(2)).get()),
            nullptr);
  EXPECT_NE(dynamic_cast<ButterflyMachine*>(
                make_machine(MachineConfig::butterfly(2)).get()),
            nullptr);
}

TEST(RangeAccess, BulkReadTouchesEverySubBlockOnce) {
  KsrMachine m(MachineConfig::ksr1(1));
  auto a = m.alloc<double>("a", 1024);  // 8 KB = 128 sub-blocks
  m.run([&](Cpu& cpu) {
    const auto misses0 = cpu.pmon().subcache_misses;
    cpu.read_range(a.addr(0), 1024 * sizeof(double));
    EXPECT_EQ(cpu.pmon().subcache_misses - misses0, 128u);
    // Second pass: all hits.
    const auto hits0 = cpu.pmon().subcache_hits;
    cpu.read_range(a.addr(0), 1024 * sizeof(double));
    EXPECT_EQ(cpu.pmon().subcache_hits - hits0, 128u);
  });
}

TEST(Prefetch, QueueDepthBoundsOutstandingFetches) {
  MachineConfig cfg = MachineConfig::ksr1(2);
  cfg.prefetch_depth = 2;
  KsrMachine m(cfg);
  auto a = m.alloc<double>("a", 4096);
  auto flag = m.alloc<int>("f", 1);
  m.run([&](Cpu& cpu) {
    if (cpu.id() == 0) {
      for (std::size_t i = 0; i < 4096; i += 16) cpu.write(a, i, 1.0);
      cpu.write(flag, 0, 1);
    } else {
      sync::spin_until(cpu, [&] { return cpu.read(flag, 0) == 1; });
      // Fire 10 prefetches back-to-back; only `depth` can be in flight, the
      // rest are dropped hints.
      for (std::size_t i = 0; i < 10; ++i) {
        cpu.prefetch(a.addr(i * mem::kSubPageBytes / sizeof(double) * 8));
      }
      EXPECT_LE(cpu.pmon().prefetches_issued, 2u);
    }
  });
}

TEST(Poststore, WithoutOwnershipIsAHintOnly) {
  KsrMachine m(MachineConfig::ksr1(2));
  auto a = m.alloc<int>("a", 16);
  m.run([&](Cpu& cpu) {
    if (cpu.id() == 1) {
      cpu.post_store(a.addr(0));  // never wrote it: nothing to broadcast
      EXPECT_EQ(cpu.pmon().poststores_issued, 0u);
    }
  });
}

// ------------------------------------------------------------ Symmetry ----

TEST(BusMachine, CoherentAndAtomicOpsWork) {
  BusMachine m(MachineConfig::symmetry(4));
  auto counter = m.alloc<std::uint32_t>("c", 1);
  m.run([&](Cpu& cpu) {
    for (int i = 0; i < 20; ++i) {
      sync::fetch_add(cpu, counter, 0, 1u);
      cpu.work(cpu.rng().below(200));
    }
  });
  EXPECT_EQ(counter.value(0), 80u);
  EXPECT_GT(m.bus().stats().transactions, 0u);
}

TEST(BusMachine, EverythingSerializesOnTheBus) {
  // Four cells streaming distinct remote data: on the ring these pipeline,
  // on the bus they queue. Check queue waits accumulate.
  BusMachine m(MachineConfig::symmetry(4));
  auto a = m.alloc<std::uint32_t>("a", 4 * 4096);
  m.run([&](Cpu& cpu) {
    const std::size_t mine = static_cast<std::size_t>(cpu.id()) * 4096;
    for (std::size_t i = 0; i < 4096; i += 32) {
      cpu.write(a, mine + i, 1u);
    }
  });
  m.run([&](Cpu& cpu) {
    const std::size_t other =
        static_cast<std::size_t>((cpu.id() + 1) % 4) * 4096;
    for (std::size_t i = 0; i < 4096; i += 32) {
      (void)cpu.read(a, other + i);
    }
  });
  EXPECT_GT(m.bus().stats().total_wait_ns, 0u);
}

// ----------------------------------------------------------- Butterfly ----

TEST(ButterflyMachine, HomePlacementHonoursBlockedRegions) {
  ButterflyMachine m(MachineConfig::butterfly(8));
  auto flags = m.alloc<std::uint32_t>(
      "flags", 8 * 32, Placement::blocked(mem::kSubPageBytes));
  for (unsigned c = 0; c < 8; ++c) {
    EXPECT_EQ(m.home_of(flags.addr(static_cast<std::size_t>(c) * 32)), c);
  }
}

TEST(ButterflyMachine, LocalReferencesAreCheap) {
  ButterflyMachine m(MachineConfig::butterfly(4));
  auto flags = m.alloc<std::uint32_t>(
      "flags", 4 * 32, Placement::blocked(mem::kSubPageBytes));
  double local_t = 0, remote_t = 0;
  m.run([&](Cpu& cpu) {
    if (cpu.id() != 0) return;
    double t0 = cpu.seconds();
    for (int i = 0; i < 100; ++i) (void)cpu.read(flags, 0);  // home = 0
    local_t = cpu.seconds() - t0;
    t0 = cpu.seconds();
    for (int i = 0; i < 100; ++i) (void)cpu.read(flags, 3 * 32);  // home = 3
    remote_t = cpu.seconds() - t0;
  });
  EXPECT_LT(local_t * 2, remote_t);
}

TEST(ButterflyMachine, GetSubpageMutualExclusion) {
  ButterflyMachine m(MachineConfig::butterfly(8));
  auto lock = m.alloc<std::uint32_t>("lock", 1);
  auto data = m.alloc<std::uint32_t>("data", 1);
  m.run([&](Cpu& cpu) {
    for (int i = 0; i < 15; ++i) {
      cpu.get_subpage(lock.addr(0));
      cpu.write(data, 0, cpu.read(data, 0) + 1);
      cpu.release_subpage(lock.addr(0));
      cpu.work(cpu.rng().below(500));
    }
  });
  EXPECT_EQ(data.value(0), 8u * 15u);
}

TEST(ButterflyMachine, ReleaseWithoutLockThrows) {
  ButterflyMachine m(MachineConfig::butterfly(2));
  auto lock = m.alloc<std::uint32_t>("lock", 1);
  EXPECT_THROW(
      m.run([&](Cpu& cpu) { cpu.release_subpage(lock.addr(0)); }),
      std::logic_error);
}

}  // namespace
}  // namespace ksr::machine
