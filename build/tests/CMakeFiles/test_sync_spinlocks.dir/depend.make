# Empty dependencies file for test_sync_spinlocks.
# This may be replaced when dependencies are built.
