#pragma once

#include <array>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "ksr/check/check.hpp"
#include "ksr/mem/geometry.hpp"
#include "ksr/sim/time.hpp"

// ALLCACHE protocol invariant checker (docs/CHECKING.md).
//
// Every number the experiment suite reports is only as trustworthy as the
// coherence protocol underneath it, and end-to-end fingerprints prove
// determinism, not legality. This checker audits *global* machine state —
// the directory, every cell's two cache levels, the heap bytes, the ring
// injection queues — against the protocol's invariants:
//
//   I1  ownership   at most one cell holds a sub-page writable
//                   (Exclusive/Atomic); a writable copy is the *only* copy;
//                   dir.owner names exactly the writable holder (or the sole
//                   holder left behind by a sole-reader grant).
//   I2  atomicity   dir.atomic <=> the owner's line state is Atomic; no
//                   other cell holds any copy of an Atomic line (get_subpage
//                   and reads NACK against it, so copies cannot legally
//                   appear).
//   I3  copy-set    dir.holders == the set of cells whose local cache has a
//                   readable state for the sub-page; dir.placeholders only
//                   names cells with an allocated page frame holding an
//                   Invalid placeholder; the two sets never overlap.
//   I4  inclusion   a sub-cache never holds sub-blocks of a sub-page the
//                   local cache cannot read (stale first-level data).
//   I5  values      while a sub-page is read-shared (no writable copy), its
//                   heap bytes are frozen: snarf/poststore-refreshed copies
//                   stay value-equal to the owner's bytes because nobody may
//                   write without an exclusive grant (which is audited before
//                   the bytes can change).
//   I6  liveness    no ring position strands a waiting injector without a
//                   scheduled retry (a non-polling queue head would wait
//                   forever); audit timestamps are monotone in simulated
//                   time (the engine additionally refuses to schedule into
//                   the past).
//
// A violation throws ViolationError with a trace-backed diagnostic: the
// failing invariant, the cell and sub-page, the heap region name, the
// directory entry, every cell's line state, and the last 8 protocol events.
//
// Wiring: construct one against a CoherentMachine and attach_checker() it.
// In a -DKSR_CHECK=ON build the machine calls on_transition() after every
// committed coherence transition; in a default build the hooks compile to
// nothing (see check.hpp) and the checker is still usable as an end-of-run
// audit via audit_all().
namespace ksr::machine {
class CoherentMachine;
}
namespace ksr::net {
class SlottedRing;
}

namespace ksr::check {

/// An invariant violation. The what() string is the full diagnostic.
class ViolationError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Committed protocol transitions the machine reports to the checker.
enum class Ev : std::uint8_t {
  kGrantShared,
  kGrantExclusive,
  kGrantAtomic,
  kNack,
  kPoststore,
  kLocalAtomic,    // get_subpage satisfied from an already-owned line
  kReleaseAtomic,  // release_subpage
  kFirstTouch,     // sub-page materialised with no network traffic
  kPageEvict,      // a local-cache page frame was reclaimed
};

[[nodiscard]] const char* to_string(Ev ev) noexcept;

class InvariantChecker {
 public:
  struct Config {
    bool check_values = true;  // I5: freeze-hash audit of read-shared bytes
    bool check_rings = true;   // I6: stranded-head audit of ring queues
  };

  struct Stats {
    std::uint64_t transitions = 0;  // on_transition() calls
    std::uint64_t audits = 0;       // audit_subpage() calls
    std::uint64_t full_audits = 0;  // audit_all() calls
  };

  explicit InvariantChecker(machine::CoherentMachine& m);
  InvariantChecker(machine::CoherentMachine& m, Config cfg);

  InvariantChecker(const InvariantChecker&) = delete;
  InvariantChecker& operator=(const InvariantChecker&) = delete;

  /// Register an interconnect to include in the I6 liveness audit
  /// (KsrMachine::attach_checker registers its rings automatically).
  void add_ring(const net::SlottedRing* ring);

  /// Hook: the machine committed a protocol transition on `sp` at `cell`.
  /// Records the event in the diagnostic trail and audits the sub-page.
  void on_transition(Ev ev, unsigned cell, mem::SubPageId sp);

  /// Audit one sub-page against I1–I5 (and update the I5 freeze record).
  /// Throws ViolationError on the first violated invariant.
  void audit_subpage(mem::SubPageId sp);

  /// Audit the whole machine: every directory entry, plus every resident
  /// line in every cell (catching copies the directory does not know), plus
  /// the ring queues. Intended at end-of-run or from tests.
  void audit_all();

  /// Forget all freeze/trail state (call when the machine's memory system
  /// is reset between experiments).
  void reset();

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  struct TrailEvent {
    sim::Time t = 0;
    Ev ev = Ev::kGrantShared;
    unsigned cell = 0;
    mem::SubPageId sp = 0;
  };

  void audit_rings() const;
  [[noreturn]] void fail(const std::string& invariant, unsigned cell,
                         mem::SubPageId sp, const std::string& detail) const;
  [[nodiscard]] std::string describe_subpage(mem::SubPageId sp) const;
  [[nodiscard]] std::string trail_to_string() const;
  [[nodiscard]] std::uint64_t subpage_hash(mem::SubPageId sp,
                                           bool* mapped) const;

  machine::CoherentMachine& m_;
  Config cfg_;
  Stats stats_;
  std::vector<const net::SlottedRing*> rings_;
  // I5 freeze records: sub-page id -> FNV-1a hash of its 128 heap bytes,
  // present exactly while the sub-page is read-shared (no writable copy).
  std::unordered_map<mem::SubPageId, std::uint64_t> frozen_;
  // Last 8 protocol events, newest last (diagnostic trail).
  std::array<TrailEvent, 8> trail_{};
  std::size_t trail_len_ = 0;
  std::size_t trail_next_ = 0;
  sim::Time last_audit_time_ = 0;
};

}  // namespace ksr::check
