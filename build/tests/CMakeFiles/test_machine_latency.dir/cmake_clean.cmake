file(REMOVE_RECURSE
  "CMakeFiles/test_machine_latency.dir/test_machine_latency.cpp.o"
  "CMakeFiles/test_machine_latency.dir/test_machine_latency.cpp.o.d"
  "test_machine_latency"
  "test_machine_latency.pdb"
  "test_machine_latency[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_machine_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
