# Empty compiler generated dependencies file for bench_fig4_barriers_ksr1.
# This may be replaced when dependencies are built.
