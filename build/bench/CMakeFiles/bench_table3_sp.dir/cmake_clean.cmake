file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_sp.dir/bench_table3_sp.cpp.o"
  "CMakeFiles/bench_table3_sp.dir/bench_table3_sp.cpp.o.d"
  "bench_table3_sp"
  "bench_table3_sp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_sp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
