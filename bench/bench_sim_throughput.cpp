// Host-side performance of the simulator itself (google-benchmark): event
// dispatch rate, cache-model access path, ring transactions, and a whole
// barrier episode. These are real wall-clock measurements (unlike the
// paper-table binaries, which report simulated seconds).
#include <benchmark/benchmark.h>

#include <array>

#include "ksr/cache/local_cache.hpp"
#include "ksr/cache/subcache.hpp"
#include "ksr/machine/ksr_machine.hpp"
#include "ksr/net/ring.hpp"
#include "ksr/sim/engine.hpp"
#include "ksr/sim/parallel_engine.hpp"
#include "ksr/sync/barrier.hpp"

namespace {

using namespace ksr;  // NOLINT

void BM_EngineEventDispatch(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine eng;
    int sink = 0;
    for (int i = 0; i < 10000; ++i) {
      eng.at(static_cast<sim::Time>(i), [&sink] { ++sink; });
    }
    eng.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EngineEventDispatch);

void BM_FiberSwitch(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine eng;
    eng.spawn([&eng] {
      for (int i = 0; i < 1000; ++i) eng.wait_until(eng.now() + 1);
    });
    eng.run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_FiberSwitch);

void BM_ParallelEngineDispatch(benchmark::State& state) {
  // Conservative-quantum multi-domain dispatch (docs/PARALLEL.md): four
  // domains each burn through a local event chain, with every 64th event
  // crossing a boundary channel into the next domain one quantum ahead.
  // Arg = host threads; the events_dispatched total (and every sink) is
  // identical at any thread count — this measures barrier/merge overhead
  // and, on multi-core hosts, the parallel speedup.
  const auto threads = static_cast<unsigned>(state.range(0));
  constexpr unsigned kDomains = 4;
  constexpr int kEventsPerDomain = 10000;
  sim::ParallelEngine::Config cfg;
  cfg.domains = kDomains;
  cfg.threads = threads;
  cfg.quantum_ns = 1000;
  for (auto _ : state) {
    sim::ParallelEngine pe(cfg);
    struct alignas(64) Sink { int v = 0; };  // one cache line per domain
    std::array<Sink, kDomains> sinks{};
    for (unsigned d = 0; d < kDomains; ++d) {
      Sink* sink = &sinks[d];
      Sink* peer = &sinks[(d + 1) % kDomains];
      for (int i = 0; i < kEventsPerDomain; ++i) {
        const auto t = static_cast<sim::Time>(i) * 10;
        if (i % 64 == 0) {
          const unsigned dst = (d + 1) % kDomains;
          pe.domain(d).at(t, [&pe, d, dst, t, sink, peer] {
            ++sink->v;
            pe.send(d, dst, t + 1000, [peer] { ++peer->v; });
          });
        } else {
          pe.domain(d).at(t, [sink] { ++sink->v; });
        }
      }
    }
    pe.run();
    benchmark::DoNotOptimize(sinks);
  }
  state.SetItemsProcessed(state.iterations() * kDomains * kEventsPerDomain);
}
BENCHMARK(BM_ParallelEngineDispatch)->Arg(1)->Arg(2)->Arg(4);

void BM_SubCacheHit(benchmark::State& state) {
  cache::SubCache sc;
  sim::Rng rng(1);
  (void)sc.access(0x1000, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sc.contains(0x1000));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SubCacheHit);

void BM_LocalCacheTouch(benchmark::State& state) {
  cache::LocalCache lc;
  sim::Rng rng(1);
  mem::SubPageId sp = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lc.touch(sp++ % 100000, cache::LineState::kShared,
                                      rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LocalCacheTouch);

void BM_RingTransaction(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine eng;
    net::SlottedRing ring(eng, {}, "bm");
    int done = 0;
    for (int i = 0; i < 1000; ++i) {
      ring.inject(static_cast<unsigned>(i) % 32, static_cast<unsigned>(i) % 2,
                  [&done](sim::Duration) { ++done; });
    }
    eng.run();
    benchmark::DoNotOptimize(done);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_RingTransaction);

void BM_SimulatedSharedReads(benchmark::State& state) {
  const auto nproc = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    machine::KsrMachine m(machine::MachineConfig::ksr1(nproc));
    auto arr = m.alloc<double>("bm", 4096);
    m.run([&](machine::Cpu& cpu) {
      for (unsigned i = cpu.id(); i < 4096; i += cpu.nproc()) {
        cpu.write(arr, i, 1.0);
      }
      for (unsigned rep = 0; rep < 4; ++rep) {
        for (unsigned i = 0; i < 4096; i += 16) {
          benchmark::DoNotOptimize(cpu.read(arr, i));
        }
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * nproc * (4096 / 16) * 4);
}
BENCHMARK(BM_SimulatedSharedReads)->Arg(2)->Arg(8)->Arg(32);

void BM_CoherentReadHit(benchmark::State& state) {
  // The coherence fast path: one cell, repeated sub-cache-hit reads of one
  // element through the full Cpu::read API (MRU + sub-cache + timing).
  machine::KsrMachine m(machine::MachineConfig::ksr1(1));
  auto arr = m.alloc<double>("bm", 64);
  for (auto _ : state) {
    m.run([&](machine::Cpu& cpu) {
      cpu.write(arr, 0, 1.0);
      for (int i = 0; i < 10000; ++i) {
        benchmark::DoNotOptimize(cpu.read(arr, 0));
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_CoherentReadHit);

void BM_BarrierEpisode(benchmark::State& state) {
  const auto nproc = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    machine::KsrMachine m(machine::MachineConfig::ksr1(nproc));
    auto barrier = sync::make_barrier(m, sync::BarrierKind::kTournamentM);
    m.run([&](machine::Cpu& cpu) {
      for (int e = 0; e < 10; ++e) barrier->arrive(cpu);
    });
  }
  state.SetItemsProcessed(state.iterations() * 10);
}
BENCHMARK(BM_BarrierEpisode)->Arg(8)->Arg(32);

}  // namespace

BENCHMARK_MAIN();
