file(REMOVE_RECURSE
  "CMakeFiles/ksr_net.dir/ring.cpp.o"
  "CMakeFiles/ksr_net.dir/ring.cpp.o.d"
  "libksr_net.a"
  "libksr_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ksr_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
