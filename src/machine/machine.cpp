#include "ksr/machine/machine.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace ksr::machine {

sim::ParallelEngine::Config Machine::domain_plan(const MachineConfig& cfg) {
  // Coherent machine models run as one domain until the ALLCACHE directory
  // is distributed (docs/PARALLEL.md): invalidations commit machine-wide
  // with zero simulated latency, so no partition of the cells satisfies
  // the conservative engine's "cross-domain effects ride >= Δ of latency"
  // precondition without changing the simulated protocol — and with it the
  // pinned fingerprints. The quantum is still derived and recorded so the
  // ROADMAP item 2 topology work can flip requested_domains() on directly.
  if (cfg.requested_domains() > 1) {
    static bool warned = false;
    if (!warned) {
      warned = true;
      std::fprintf(stderr,
                   "warning: cells_per_domain=%u requests %u domains, but "
                   "coherent machine models currently run single-domain "
                   "(machine-global directory; see docs/PARALLEL.md)\n",
                   cfg.cells_per_domain, cfg.requested_domains());
    }
  }
  sim::ParallelEngine::Config pc;
  pc.domains = 1;
  pc.threads = cfg.sim_threads;
  pc.quantum_ns = cfg.sim_quantum_ns();
  return pc;
}

unsigned Cpu::nproc() const noexcept { return machine_.nproc(); }

void Cpu::work(std::uint64_t n) { tick_cycles(n); }

void Cpu::tick_cycles(std::uint64_t n) {
  local_now_ += machine_.config().cycles(n);
}

void Cpu::lazy_sync() {
  sim::Engine& eng = machine_.engine();
  if (eng.next_event_time() < local_now_) eng.wait_until(local_now_);
}

void Cpu::hard_sync() {
  sim::Engine& eng = machine_.engine();
  if (eng.now() < local_now_ || eng.next_event_time() < local_now_) {
    eng.wait_until(local_now_);
  }
}

void Cpu::block_until_woken() {
  sim::Engine& eng = machine_.engine();
  eng.block();
  local_now_ = std::max(local_now_, eng.now());
}

void Cpu::wake_at(sim::Time t) { machine_.engine().wake(fiber_, t); }

void Cpu::range(mem::Sva base, std::size_t bytes, Op op) {
  if (bytes == 0) return;
  const mem::Sva end = base + bytes;
  mem::Sva a = base;
  while (a < end) {
    access(a, 1, op);
    // Advance to the next sub-block boundary.
    a = (a / mem::kSubBlockBytes + 1) * mem::kSubBlockBytes;
  }
}

RunResult Machine::run(const Program& program) {
  std::vector<Program> programs(nproc(), program);
  return run(programs);
}

RunResult Machine::run(const std::vector<Program>& programs) {
  if (programs.size() != nproc()) {
    throw std::invalid_argument("Machine::run: one program per cell required");
  }
  const sim::Time epoch = engine_.now();

  std::vector<cache::PerfMonitor> pmon_before(nproc());
  for (unsigned i = 0; i < nproc(); ++i) pmon_before[i] = cell_pmon(i);

  std::vector<std::unique_ptr<Cpu>> cpus;
  cpus.reserve(nproc());
  for (unsigned i = 0; i < nproc(); ++i) cpus.push_back(make_cpu(i));

  for (unsigned i = 0; i < nproc(); ++i) {
    Cpu* cpu = cpus[i].get();
    const Program* body = &programs[i];
    const sim::FiberId fid = engine_.spawn(
        [cpu, body] { (*body)(*cpu); }, epoch);
    cpu->begin_run(epoch, fid);
  }
  par_.run();

  RunResult res;
  res.cell_seconds.resize(nproc());
  res.cell_pmon.resize(nproc());
  for (unsigned i = 0; i < nproc(); ++i) {
    res.cell_seconds[i] = sim::to_seconds(cpus[i]->now() - epoch);
    res.seconds = std::max(res.seconds, res.cell_seconds[i]);

    // Counter deltas for this run.
    cache::PerfMonitor delta = cell_pmon(i);
    delta.sub(pmon_before[i]);
    res.cell_pmon[i] = delta;
    res.pmon.add(delta);
  }
  return res;
}

}  // namespace ksr::machine
