#include "ksr/machine/machine.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "ksr/ckpt/checkpoint.hpp"

namespace ksr::machine {

sim::ParallelEngine::Config Machine::domain_plan(const MachineConfig& cfg) {
  sim::ParallelEngine::Config pc;
  pc.domains = 1;
  pc.threads = cfg.sim_threads;
  pc.quantum_ns = cfg.sim_quantum_ns();
  if (cfg.requested_domains() <= 1) return pc;
  if (!cfg.supports_partition()) {
    static bool warned_kind = false;
    if (!warned_kind) {
      warned_kind = true;
      std::fprintf(stderr,
                   "warning: cells_per_domain=%u requests %u domains, but "
                   "%s machines serialize on a shared medium and run "
                   "single-domain (see docs/PARALLEL.md)\n",
                   cfg.cells_per_domain, cfg.requested_domains(),
                   to_string(cfg.kind));
    }
    return pc;
  }
  // Ring machines partition by whole leaf rings: a directory shard is owned
  // by exactly one domain, so a domain boundary can never split a leaf.
  if (cfg.cells_per_leaf != 0 && cfg.cells_per_domain % cfg.cells_per_leaf != 0) {
    static bool warned_round = false;
    if (!warned_round) {
      warned_round = true;
      std::fprintf(stderr,
                   "warning: cells_per_domain=%u is not a multiple of "
                   "cells_per_leaf=%u; rounding up to %u cells (%u whole "
                   "leaf rings) per domain\n",
                   cfg.cells_per_domain, cfg.cells_per_leaf,
                   cfg.planned_leaves_per_domain() * cfg.cells_per_leaf,
                   cfg.planned_leaves_per_domain());
    }
  }
  pc.domains = cfg.planned_domains();
  return pc;
}

void Machine::attach_tracer(sim::Tracer* tracer) {
  tracer_ = tracer;
  tracer_shards_.clear();
  if (tracer_ == nullptr || !multi_domain()) return;
  tracer_shards_.reserve(domains() - 1);
  for (unsigned d = 1; d < domains(); ++d) {
    auto shard = std::make_unique<obs::Tracer>(tracer_->capacity());
    shard->set_enabled_mask(tracer_->enabled_mask());
    tracer_shards_.push_back(std::move(shard));
  }
}

void Machine::merge_tracer_shards() {
  if (tracer_ == nullptr || tracer_shards_.empty()) return;
  std::size_t total = tracer_->size();
  for (const auto& s : tracer_shards_) total += s->size();
  std::vector<obs::Tracer::Record> all;
  all.reserve(total);
  all.insert(all.end(), tracer_->begin(), tracer_->end());
  for (const auto& s : tracer_shards_) {
    all.insert(all.end(), s->begin(), s->end());
  }
  // (time, domain, append) order: each shard's contents are one domain's
  // deterministic execution log, and stable_sort keeps the domain-major
  // concatenation order for same-time records — so the merged buffer is a
  // pure function of simulated data, bit-identical at any thread count.
  std::stable_sort(all.begin(), all.end(),
                   [](const obs::Tracer::Record& a,
                      const obs::Tracer::Record& b) { return a.t < b.t; });
  std::uint64_t dropped = tracer_->dropped();
  for (auto& s : tracer_shards_) {
    dropped += s->dropped();
    s->clear();
  }
  tracer_->clear();
  for (const auto& r : all) tracer_->append(r);
  tracer_->add_dropped(dropped);
}

void Machine::topo_snapshot(obs::topo::Snapshot& s) const {
  s.domains = par_.domains();
  s.quantum_ns = static_cast<std::uint64_t>(par_.quantum_ns());
  if (s.domains <= 1) return;
  // The quantum loop only runs multi-domain; single-domain paths (serial
  // inline, or one unbounded quantum on a pool thread) count quanta
  // differently per --sim-threads, so reporting them would break the
  // byte-equality contract. Multi-domain counts are pure simulated data.
  s.quanta = par_.quanta();
  s.boundary_packets = par_.boundary_packets();
  const auto& stats = par_.channel_stats();
  for (unsigned src = 0; src < s.domains; ++src) {
    for (unsigned dst = 0; dst < s.domains; ++dst) {
      const auto& c = stats[static_cast<std::size_t>(src) * s.domains + dst];
      if (c.packets == 0) continue;
      obs::topo::ChannelUse u;
      u.src = src;
      u.dst = dst;
      u.packets = c.packets;
      u.max_per_quantum = c.max_per_quantum;
      u.slack_hist = c.slack_hist;
      s.channels.push_back(std::move(u));
    }
  }
}

unsigned Cpu::nproc() const noexcept { return machine_.nproc(); }

void Cpu::work(std::uint64_t n) { tick_cycles(n); }

void Cpu::tick_cycles(std::uint64_t n) {
  local_now_ += machine_.config().cycles(n);
}

sim::Engine& Cpu::eng() {
  if (eng_ == nullptr) {
    eng_ = &machine_.engine_of(machine_.domain_of_cell(id_));
  }
  return *eng_;
}

void Cpu::lazy_sync() {
  sim::Engine& e = eng();
  if (e.next_event_time() < local_now_) {
    e.wait_until(local_now_);
    return;
  }
  // Multi-domain: a cache hit is only safe to take without yielding while
  // the local clock stays inside the conservative quantum. Cross-domain
  // traffic (an invalidation of the very line being spun on, say) merges
  // into this domain's queue at the quantum barrier, and the engine can
  // only reach that barrier when this fiber parks. Without this bound a
  // hit-spinning fiber runs its local clock arbitrarily far ahead and
  // never observes remote writes. The strict `>` matches the single-domain
  // rule above: an event at exactly local_now_ is not waited for.
  if (machine_.multi_domain() &&
      local_now_ > machine_.parallel_engine().horizon()) {
    e.wait_until(local_now_);
  }
}

void Cpu::hard_sync() {
  sim::Engine& e = eng();
  if (e.now() < local_now_ || e.next_event_time() < local_now_) {
    e.wait_until(local_now_);
  }
}

void Cpu::block_until_woken() {
  sim::Engine& e = eng();
  e.block();
  local_now_ = std::max(local_now_, e.now());
}

void Cpu::wake_at(sim::Time t) { eng().wake(fiber_, t); }

void Cpu::range(mem::Sva base, std::size_t bytes, Op op) {
  if (bytes == 0) return;
  const mem::Sva end = base + bytes;
  mem::Sva a = base;
  while (a < end) {
    access(a, 1, op);
    // Advance to the next sub-block boundary.
    a = (a / mem::kSubBlockBytes + 1) * mem::kSubBlockBytes;
  }
}

namespace {

// The config section lists every MachineConfig field in a fixed order. On
// restore each value is compared against the restoring machine's own config
// — a checkpoint only makes sense on an identically configured machine, and
// naming the first mismatched field beats diagnosing a divergent run later.
template <typename Emit>
void each_config_field(const MachineConfig& c, Emit&& emit) {
  emit(static_cast<std::uint64_t>(c.kind), "kind");
  emit(c.nproc, "nproc");
  emit(static_cast<std::uint64_t>(c.cycle_ns), "cycle_ns");
  emit(c.subcache_hit_cycles, "subcache_hit_cycles");
  emit(static_cast<std::uint64_t>(c.localcache_read_ns), "localcache_read_ns");
  emit(static_cast<std::uint64_t>(c.localcache_write_ns), "localcache_write_ns");
  emit(static_cast<std::uint64_t>(c.block_alloc_ns), "block_alloc_ns");
  emit(static_cast<std::uint64_t>(c.page_alloc_ns), "page_alloc_ns");
  emit(c.cells_per_leaf, "cells_per_leaf");
  emit(c.ring_slots_per_subring, "ring_slots_per_subring");
  emit(static_cast<std::uint64_t>(c.ring_hop_ns), "ring_hop_ns");
  emit(static_cast<std::uint64_t>(c.ring_fixed_ns), "ring_fixed_ns");
  emit(c.ring1_slots_per_subring, "ring1_slots_per_subring");
  emit(static_cast<std::uint64_t>(c.ring1_hop_ns), "ring1_hop_ns");
  emit(static_cast<std::uint64_t>(c.ard_crossing_ns), "ard_crossing_ns");
  emit(c.subcache.capacity_bytes, "subcache.capacity_bytes");
  emit(c.subcache.ways, "subcache.ways");
  emit(c.localcache.capacity_bytes, "localcache.capacity_bytes");
  emit(c.localcache.ways, "localcache.ways");
  emit(c.read_snarfing ? 1u : 0u, "read_snarfing");
  emit(c.has_prefetch ? 1u : 0u, "has_prefetch");
  emit(c.has_poststore ? 1u : 0u, "has_poststore");
  emit(c.prefetch_depth, "prefetch_depth");
  emit(static_cast<std::uint64_t>(c.atomic_backoff_ns), "atomic_backoff_ns");
  emit(static_cast<std::uint64_t>(c.local_atomic_ns), "local_atomic_ns");
  emit(c.sim_threads, "sim_threads");
  emit(c.cells_per_domain, "cells_per_domain");
  emit(c.sched_fuzz_seed, "sched_fuzz_seed");
  emit(static_cast<std::uint64_t>(c.bus_transaction_ns), "bus_transaction_ns");
  emit(static_cast<std::uint64_t>(c.bus_overhead_ns), "bus_overhead_ns");
  emit(static_cast<std::uint64_t>(c.butterfly_link_ns), "butterfly_link_ns");
  emit(static_cast<std::uint64_t>(c.butterfly_memory_ns), "butterfly_memory_ns");
  emit(static_cast<std::uint64_t>(c.butterfly_local_ns), "butterfly_local_ns");
}

}  // namespace

std::vector<std::byte> Machine::checkpoint() {
  par_.assert_quiescent("Machine::checkpoint");
  ckpt_assert_quiescent();

  ckpt::Writer w;
  each_config_field(cfg_, [&w](std::uint64_t v, const char*) { w.u64(v); });

  // Engine clocks: one record per domain, then the coordinator counters.
  // fibers_spawned keeps FiberId numbering continuous across the restore —
  // ids assigned by the next run() must match the uninterrupted machine's.
  w.u32(par_.domains());
  for (unsigned d = 0; d < par_.domains(); ++d) {
    const sim::Engine::ClockState cs = par_.domain(d).clock_state();
    w.u64(cs.now);
    w.u64(cs.seq);
    w.u64(cs.dispatched);
    w.u64(par_.domain(d).fibers_spawned());
  }
  w.u64(par_.quanta());
  w.u64(par_.boundary_packets());

  // Heap regions in allocation order: geometry plus the raw data bytes.
  w.u64(heap_.region_count());
  for (std::size_t i = 0; i < heap_.region_count(); ++i) {
    const mem::Region& reg = heap_.region(i);
    w.u64(reg.base);
    w.u64(reg.bytes);
    w.str(reg.name);
    w.bytes(reg.data.get(), reg.bytes);
  }

  ckpt_save(w);
  return w.seal();
}

void Machine::restore(const std::vector<std::byte>& image) {
  par_.assert_quiescent("Machine::restore");
  ckpt_assert_quiescent();

  ckpt::Reader r = ckpt::open(image);
  each_config_field(cfg_, [&r](std::uint64_t have, const char* field) {
    const std::uint64_t want = r.u64();
    if (want != have) {
      throw std::runtime_error(
          "Machine::restore: config mismatch on " + std::string(field) +
          " (checkpoint " + std::to_string(want) + ", this machine " +
          std::to_string(have) + ") — restore needs an identically "
          "configured machine");
    }
  });

  const std::uint32_t ndom = r.u32();
  if (ndom != par_.domains()) {
    throw std::runtime_error("Machine::restore: checkpoint has " +
                             std::to_string(ndom) + " domain(s), machine has " +
                             std::to_string(par_.domains()));
  }
  for (unsigned d = 0; d < par_.domains(); ++d) {
    sim::Engine::ClockState cs;
    cs.now = r.u64();
    cs.seq = r.u64();
    cs.dispatched = r.u64();
    par_.domain(d).restore_clock_state(cs);
    par_.domain(d).restore_fibers_spawned(
        static_cast<std::size_t>(r.u64()));
  }
  const std::uint64_t quanta = r.u64();
  const std::uint64_t boundary = r.u64();
  par_.restore_counters(quanta, boundary);

  // Heap: the restoring machine's regions must be a prefix of the image's
  // (same bases, sizes, names — the driver re-issued its alloc() calls, or
  // issued none). Existing regions are overwritten in place so live
  // SharedArray handles stay valid; missing ones are re-allocated, which
  // reproduces the same bases because allocation is bump-pointer.
  const std::uint64_t nregions = r.u64();
  if (heap_.region_count() > nregions) {
    throw std::runtime_error(
        "Machine::restore: machine has " +
        std::to_string(heap_.region_count()) + " heap region(s), checkpoint " +
        std::to_string(nregions) + " — the driver allocated more than the "
        "checkpointed machine ever did");
  }
  for (std::uint64_t i = 0; i < nregions; ++i) {
    const std::uint64_t base = r.u64();
    const std::uint64_t bytes = r.u64();
    const std::string name = r.str();
    const mem::Region* reg;
    if (i < heap_.region_count()) {
      reg = &heap_.region(static_cast<std::size_t>(i));
      if (reg->base != base || reg->bytes != bytes || reg->name != name) {
        throw std::runtime_error(
            "Machine::restore: heap region " + std::to_string(i) +
            " mismatch — checkpoint has '" + name + "' (base " +
            std::to_string(base) + ", " + std::to_string(bytes) +
            " bytes), machine has '" + reg->name + "' (base " +
            std::to_string(reg->base) + ", " + std::to_string(reg->bytes) +
            " bytes); the driver must re-issue the same alloc() sequence");
      }
    } else {
      reg = &heap_.alloc(static_cast<std::size_t>(bytes), name);
      if (reg->base != base) {
        throw std::runtime_error(
            "Machine::restore: re-allocated region '" + name + "' at base " +
            std::to_string(reg->base) + ", checkpoint expects " +
            std::to_string(base));
      }
    }
    r.bytes(reg->data.get(), static_cast<std::size_t>(bytes));
  }

  ckpt_load(r);
  r.expect_end();
}

void Machine::checkpoint_to(const std::string& path) {
  ckpt::write_file(path, checkpoint());
}

void Machine::restore_from(const std::string& path) {
  restore(ckpt::read_file(path));
}

RunResult Machine::run(const Program& program) {
  std::vector<Program> programs(nproc(), program);
  return run(programs);
}

RunResult Machine::run(const std::vector<Program>& programs) {
  if (programs.size() != nproc()) {
    throw std::invalid_argument("Machine::run: one program per cell required");
  }
  // Domain engines may sit at different times after a previous run; start
  // every fiber at the latest of them so no domain is asked to schedule in
  // its past.
  sim::Time epoch = engine_.now();
  for (unsigned d = 1; d < par_.domains(); ++d) {
    epoch = std::max(epoch, par_.domain(d).now());
  }

  std::vector<cache::PerfMonitor> pmon_before(nproc());
  for (unsigned i = 0; i < nproc(); ++i) pmon_before[i] = cell_pmon(i);

  std::vector<std::unique_ptr<Cpu>> cpus;
  cpus.reserve(nproc());
  for (unsigned i = 0; i < nproc(); ++i) cpus.push_back(make_cpu(i));

  for (unsigned i = 0; i < nproc(); ++i) {
    Cpu* cpu = cpus[i].get();
    const Program* body = &programs[i];
    sim::Engine& eng = engine_of(domain_of_cell(i));
    cpu->bind_engine(eng);
    const sim::FiberId fid = eng.spawn([cpu, body] { (*body)(*cpu); }, epoch);
    cpu->begin_run(epoch, fid);
  }
  par_.run();
  merge_tracer_shards();

  RunResult res;
  res.cell_seconds.resize(nproc());
  res.cell_pmon.resize(nproc());
  for (unsigned i = 0; i < nproc(); ++i) {
    res.cell_seconds[i] = sim::to_seconds(cpus[i]->now() - epoch);
    res.seconds = std::max(res.seconds, res.cell_seconds[i]);

    // Counter deltas for this run.
    cache::PerfMonitor delta = cell_pmon(i);
    delta.sub(pmon_before[i]);
    res.cell_pmon[i] = delta;
    res.pmon.add(delta);
  }
  return res;
}

}  // namespace ksr::machine
