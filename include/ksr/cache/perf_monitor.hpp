#pragma once

#include <cstdint>

#include "ksr/sim/time.hpp"

// Per-cell hardware performance monitor.
//
// Each KSR-1 node has a hardware monitor reporting sub-cache and local-cache
// misses and time spent in ring accesses (paper §2); the authors used it
// extensively to attribute effects. This struct is our equivalent: the cache
// and coherence models bump these counters as a side effect of simulation.
namespace ksr::cache {

struct PerfMonitor {
  // Sub-cache (first level).
  std::uint64_t subcache_hits = 0;
  std::uint64_t subcache_misses = 0;
  std::uint64_t subcache_block_allocs = 0;  // 2 KB block allocations

  // Local cache (second level).
  std::uint64_t localcache_hits = 0;
  std::uint64_t localcache_misses = 0;  // went to the interconnect
  std::uint64_t page_allocs = 0;        // 16 KB page allocations
  std::uint64_t pages_evicted = 0;

  // Interconnect.
  std::uint64_t ring_requests = 0;      // transactions issued
  std::uint64_t ring_nacks = 0;         // atomic-state rejections
  std::uint64_t atomic_retries = 0;     // get_subpage retry loops
  ksr::sim::Duration ring_time_ns = 0;  // total stall time in remote accesses
  ksr::sim::Duration inject_wait_ns = 0;  // portion spent waiting for a slot

  // Coherence events observed by this cell.
  std::uint64_t invalidations_received = 0;
  std::uint64_t snarfs = 0;  // invalid placeholders refreshed by passing data

  // Explicit communication primitives.
  std::uint64_t prefetches_issued = 0;
  std::uint64_t poststores_issued = 0;

  /// Subtract a baseline snapshot (for per-run counter deltas).
  void sub(const PerfMonitor& o) noexcept {
    subcache_hits -= o.subcache_hits;
    subcache_misses -= o.subcache_misses;
    subcache_block_allocs -= o.subcache_block_allocs;
    localcache_hits -= o.localcache_hits;
    localcache_misses -= o.localcache_misses;
    page_allocs -= o.page_allocs;
    pages_evicted -= o.pages_evicted;
    ring_requests -= o.ring_requests;
    ring_nacks -= o.ring_nacks;
    atomic_retries -= o.atomic_retries;
    ring_time_ns -= o.ring_time_ns;
    inject_wait_ns -= o.inject_wait_ns;
    invalidations_received -= o.invalidations_received;
    snarfs -= o.snarfs;
    prefetches_issued -= o.prefetches_issued;
    poststores_issued -= o.poststores_issued;
  }

  void add(const PerfMonitor& o) noexcept {
    subcache_hits += o.subcache_hits;
    subcache_misses += o.subcache_misses;
    subcache_block_allocs += o.subcache_block_allocs;
    localcache_hits += o.localcache_hits;
    localcache_misses += o.localcache_misses;
    page_allocs += o.page_allocs;
    pages_evicted += o.pages_evicted;
    ring_requests += o.ring_requests;
    ring_nacks += o.ring_nacks;
    atomic_retries += o.atomic_retries;
    ring_time_ns += o.ring_time_ns;
    inject_wait_ns += o.inject_wait_ns;
    invalidations_received += o.invalidations_received;
    snarfs += o.snarfs;
    prefetches_issued += o.prefetches_issued;
    poststores_issued += o.poststores_issued;
  }

  [[nodiscard]] std::uint64_t subcache_accesses() const noexcept {
    return subcache_hits + subcache_misses;
  }
  [[nodiscard]] double subcache_miss_ratio() const noexcept {
    const auto n = subcache_accesses();
    return n ? static_cast<double>(subcache_misses) / static_cast<double>(n) : 0.0;
  }
  [[nodiscard]] double localcache_miss_ratio() const noexcept {
    const auto n = localcache_hits + localcache_misses;
    return n ? static_cast<double>(localcache_misses) / static_cast<double>(n) : 0.0;
  }
};

}  // namespace ksr::cache
