#include "ksr/sim/engine.hpp"

#include <cstdlib>

#include "ksr/sim/rng.hpp"
#include <limits>
#include <stdexcept>
#include <string>

namespace ksr::sim {

Engine::~Engine() = default;

std::uint32_t Engine::claim_slot(InlineFn fn) {
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = pool_used_++;
    if (slot % kPoolChunk == 0) {
      pool_.push_back(std::make_unique<InlineFn[]>(kPoolChunk));
    }
  }
  pool_slot(slot) = std::move(fn);
  return slot;
}

void Engine::at(Time t, InlineFn fn) {
  if (t < now_) {
    throw std::logic_error("Engine::at: scheduling into the past");
  }
  // Schedule fuzzing: a nonzero seed replaces the insertion sequence with a
  // seeded bijective hash of it, permuting same-time tie order while the
  // injectivity of mix64 keeps (t, seq) a strict total order.
  const std::uint64_t c = seq_++;
  const std::uint64_t seq = fuzz_seed_ == 0 ? c : mix64(fuzz_seed_ + c);
  events_.push(Event{t, seq, claim_slot(std::move(fn))});
}

void Engine::observe_at(Time t, InlineFn fn) {
  if (t < now_) {
    throw std::logic_error("Engine::observe_at: scheduling into the past");
  }
  // Observers share the callback slab and the seq counter with the main
  // lane; sharing seq_ keeps the code simple and cannot reorder main-lane
  // events (their relative seq order is unchanged) nor touch
  // events_dispatched().
  observers_.push(Event{t, seq_++, claim_slot(std::move(fn))});
}

void Engine::drain_observers(Time horizon) {
  while (!observers_.empty() && observers_.top().t <= horizon) {
    const Event oe = observers_.pop_top();
    if (oe.t > now_) now_ = oe.t;
    InlineFn& fn = pool_slot(oe.slot);
    fn();
    fn.reset();
    free_slots_.push_back(oe.slot);
  }
}

FiberId Engine::spawn(std::function<void()> body, Time start, std::size_t stack_bytes) {
  auto fiber = std::make_unique<Fiber>();
  fiber->body = std::move(body);
  fiber->stack_bytes = stack_bytes;
  fiber->stack = std::make_unique<std::byte[]>(stack_bytes);
  fiber->engine = this;
  fiber->id = static_cast<FiberId>(fibers_.size());
  Fiber* raw = fiber.get();
  fibers_.push_back(std::move(fiber));
  ++live_fibers_;
  at(start, [this, raw] { resume(*raw); });
  return raw->id;
}

#if KSR_HAVE_FAST_FIBERS

void Engine::fiber_main(void* arg) {
  auto* f = static_cast<Fiber*>(arg);
  try {
    f->body();
  } catch (...) {
    if (!f->engine->pending_exception_) {
      f->engine->pending_exception_ = std::current_exception();
    }
  }
  f->done = true;
  // One-way switch back to the scheduler; this context is never resumed.
  void* dead = nullptr;
  ksr_ctx_swap(&dead, f->engine->sched_sp_);
  std::abort();  // unreachable
}

void Engine::resume(Fiber& f) {
  if (f.done) return;
  if (!f.started) {
    f.sp = detail::make_fiber_context(f.stack.get(), f.stack_bytes,
                                      &Engine::fiber_main, &f);
    f.started = true;
  }
  Fiber* prev = current_;
  current_ = &f;
  ksr_ctx_swap(&sched_sp_, f.sp);
  current_ = prev;
  if (f.done && f.stack) {
    f.stack.reset();  // release the stack eagerly; the Fiber record remains
    --live_fibers_;
  }
}

void Engine::switch_to_scheduler() {
  ksr_ctx_swap(&current_->sp, sched_sp_);
}

#else  // ucontext fallback

void Engine::trampoline(unsigned hi, unsigned lo) {
  const auto bits =
      (static_cast<std::uintptr_t>(hi) << 32) | static_cast<std::uintptr_t>(lo);
  auto* f = reinterpret_cast<Fiber*>(bits);  // NOLINT: makecontext ABI
  try {
    f->body();
  } catch (...) {
    if (!f->engine->pending_exception_) {
      f->engine->pending_exception_ = std::current_exception();
    }
  }
  f->done = true;
  // Returning transfers control to uc_link (the scheduler context).
}

void Engine::resume(Fiber& f) {
  if (f.done) return;
  if (!f.started) {
    getcontext(&f.ctx);
    f.ctx.uc_stack.ss_sp = f.stack.get();
    f.ctx.uc_stack.ss_size = f.stack_bytes;
    f.ctx.uc_link = &sched_ctx_;
    const auto bits = reinterpret_cast<std::uintptr_t>(&f);  // NOLINT
    makecontext(&f.ctx, reinterpret_cast<void (*)()>(&Engine::trampoline), 2,
                static_cast<unsigned>(bits >> 32),
                static_cast<unsigned>(bits & 0xffffffffu));
    f.started = true;
  }
  Fiber* prev = current_;
  current_ = &f;
  swapcontext(&sched_ctx_, &f.ctx);
  current_ = prev;
  if (f.done && f.stack) {
    f.stack.reset();  // release the stack eagerly; the Fiber record remains
    --live_fibers_;
  }
}

void Engine::switch_to_scheduler() {
  Fiber* f = current_;
  swapcontext(&f->ctx, &sched_ctx_);
}

#endif  // KSR_HAVE_FAST_FIBERS

void Engine::wait_until(Time t) {
  if (!in_fiber()) throw std::logic_error("wait_until outside fiber");
  if (t < now_) t = now_;
  Fiber* raw = current_;
  at(t, [this, raw] { resume(*raw); });
  switch_to_scheduler();
}

void Engine::block() {
  if (!in_fiber()) throw std::logic_error("block outside fiber");
  switch_to_scheduler();
}

void Engine::wake(FiberId id, Time t) {
  Fiber* raw = fibers_.at(id).get();
  if (raw->done) {
    throw std::logic_error("Engine::wake: fiber " + std::to_string(id) +
                           " has already finished");
  }
  at(t, [this, raw] { resume(*raw); });
}

FiberId Engine::current_fiber() const noexcept { return current_->id; }

Time Engine::next_event_time() const noexcept {
  return events_.empty() ? std::numeric_limits<Time>::max() : events_.top().t;
}

void Engine::run() {
  run_until(std::numeric_limits<Time>::max());
  finish_run();
}

void Engine::run_until(Time horizon) {
  while (!events_.empty() && events_.top().t < horizon) {
    const Event ev = events_.pop_top();
    // Observers due at or before this event run first (the sample "at t"
    // sees the world before the event at t mutates it).
    drain_observers(ev.t);
    now_ = ev.t;
    ++dispatched_;
    // Invoke in place: chunk addresses are stable, and the slot is recycled
    // only after the call, so the callback may freely schedule new events.
    InlineFn& fn = pool_slot(ev.slot);
    fn();
    fn.reset();
    free_slots_.push_back(ev.slot);
    if (pending_exception_) {
      auto ex = pending_exception_;
      pending_exception_ = nullptr;
      std::rethrow_exception(ex);
    }
  }
}

void Engine::finish_run() {
  // Drop (without running) observers scheduled past the last main event:
  // simulated time never reaches them. Their slots are recycled so a later
  // run() on the same engine starts clean.
  while (!observers_.empty()) {
    const Event oe = observers_.pop_top();
    pool_slot(oe.slot).reset();
    free_slots_.push_back(oe.slot);
  }
  if (live_fibers_ != 0) {
    throw std::runtime_error(
        "Engine::run: simulated deadlock — event queue drained with " +
        std::to_string(live_fibers_) + " fiber(s) still blocked");
  }
}

}  // namespace ksr::sim
