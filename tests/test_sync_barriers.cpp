// Correctness of all nine barrier algorithms on all three machine models,
// across processor counts — parameterized sweep (TEST_P).
#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "ksr/machine/factory.hpp"
#include "ksr/sync/barrier.hpp"

namespace ksr::sync {
namespace {

using machine::Cpu;
using machine::MachineConfig;
using machine::MachineKind;

struct Param {
  BarrierKind kind;
  MachineKind machine;
  unsigned nproc;
};

std::string param_name(const testing::TestParamInfo<Param>& info) {
  std::string n{to_string(info.param.kind)};
  n += "_";
  n += machine::to_string(info.param.machine);
  n += "_p" + std::to_string(info.param.nproc);
  for (auto& c : n) {
    if (!isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return n;
}

MachineConfig config_for(MachineKind k, unsigned p) {
  switch (k) {
    case MachineKind::kKsr1: return MachineConfig::ksr1(p);
    case MachineKind::kKsr2: return MachineConfig::ksr2(p);
    case MachineKind::kSymmetry: return MachineConfig::symmetry(p);
    case MachineKind::kButterfly: return MachineConfig::butterfly(p);
  }
  return MachineConfig::ksr1(p);
}

class BarrierCorrectness : public testing::TestWithParam<Param> {};

// The fundamental barrier property: no cell enters episode k+1 before every
// cell has finished episode k. We check it by having each cell bump its own
// slot and, right after each barrier, verify every slot reached the episode.
TEST_P(BarrierCorrectness, NoCellRunsAhead) {
  const Param p = GetParam();
  auto m = machine::make_machine(config_for(p.machine, p.nproc));
  auto barrier = make_barrier(*m, p.kind);
  constexpr int kEpisodes = 8;

  // progress[i] is written only by cell i (each on its own sub-page).
  auto progress = m->alloc<std::uint32_t>(
      "progress", static_cast<std::size_t>(p.nproc) * 32,
      machine::Placement::blocked(128));

  bool violated = false;
  m->run([&](Cpu& cpu) {
    for (std::uint32_t ep = 1; ep <= kEpisodes; ++ep) {
      // Skew arrivals so the barrier is exercised under uneven load.
      cpu.work(cpu.rng().below(2000));
      cpu.write(progress, static_cast<std::size_t>(cpu.id()) * 32, ep);
      barrier->arrive(cpu);
      for (unsigned j = 0; j < cpu.nproc(); ++j) {
        if (cpu.read(progress, static_cast<std::size_t>(j) * 32) < ep) {
          violated = true;
        }
      }
    }
  });
  EXPECT_FALSE(violated);
}

std::vector<Param> params_for(MachineKind machine,
                              std::initializer_list<unsigned> procs) {
  std::vector<Param> out;
  for (BarrierKind k : all_barrier_kinds()) {
    for (unsigned p : procs) out.push_back({k, machine, p});
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    AllKindsKsr1, BarrierCorrectness,
    testing::ValuesIn(params_for(MachineKind::kKsr1, {1u, 2u, 3u, 7u, 16u})),
    param_name);

INSTANTIATE_TEST_SUITE_P(
    AllKindsSymmetry, BarrierCorrectness,
    testing::ValuesIn(params_for(MachineKind::kSymmetry, {2u, 8u})),
    param_name);

INSTANTIATE_TEST_SUITE_P(
    AllKindsButterfly, BarrierCorrectness,
    testing::ValuesIn(params_for(MachineKind::kButterfly, {2u, 8u})),
    param_name);

INSTANTIATE_TEST_SUITE_P(
    AllKindsKsr2TwoRings, BarrierCorrectness,
    testing::ValuesIn(params_for(MachineKind::kKsr2, {40u})), param_name);

// Qualitative shape on the KSR-1 (Fig. 4): at 16 processors the tournament
// with global wake-up flag beats the naive counter by a wide margin.
TEST(BarrierShape, TournamentMBeatsCounterOnKsr1) {
  auto time_barrier = [](BarrierKind kind) {
    machine::KsrMachine m(MachineConfig::ksr1(16));
    auto barrier = make_barrier(m, kind);
    constexpr int kEpisodes = 10;
    double total = 0;
    m.run([&](Cpu& cpu) {
      for (int ep = 0; ep < kEpisodes; ++ep) {
        cpu.work(500);
        barrier->arrive(cpu);
      }
      if (cpu.id() == 0) total = cpu.seconds();
    });
    return total / kEpisodes;
  };
  const double counter = time_barrier(BarrierKind::kCounter);
  const double tm = time_barrier(BarrierKind::kTournamentM);
  EXPECT_LT(tm * 2, counter);
}

}  // namespace
}  // namespace ksr::sync
