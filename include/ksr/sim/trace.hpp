#pragma once

#include <cstdint>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "ksr/sim/time.hpp"

// Structured event tracing.
//
// Components log (time, category, event, subject, actor, detail) tuples
// when a Tracer is attached; with no tracer attached the hot paths pay one
// null-pointer test. Traces dump as CSV for offline inspection — the
// equivalent of putting a logic analyser on the ring, which is how one
// audits e.g. a barrier episode's exact coherence traffic.
namespace ksr::sim {

class Tracer {
 public:
  struct Event {
    Time t = 0;
    std::string category;  // "ring", "coherence", "atomic", ...
    std::string event;     // "inject", "deliver", "invalidate", ...
    std::uint64_t subject = 0;  // sub-page id, slot id, ...
    std::uint64_t actor = 0;    // cell id, position, ...
    std::int64_t detail = 0;    // wait ns, holder mask, ...
  };

  void log(Time t, std::string_view category, std::string_view event,
           std::uint64_t subject, std::uint64_t actor,
           std::int64_t detail = 0) {
    if (events_.size() >= cap_) return;  // bounded: never OOM a long run
    events_.push_back(Event{t, std::string(category), std::string(event),
                            subject, actor, detail});
  }

  [[nodiscard]] const std::vector<Event>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
  void clear() noexcept { events_.clear(); }

  /// Maximum retained events (default 1M); further logs are dropped.
  void set_capacity(std::size_t cap) noexcept { cap_ = cap; }

  /// Count events matching a category (and optionally an event name).
  [[nodiscard]] std::size_t count(std::string_view category,
                                  std::string_view event = {}) const {
    std::size_t n = 0;
    for (const auto& e : events_) {
      if (e.category == category && (event.empty() || e.event == event)) ++n;
    }
    return n;
  }

  void write_csv(std::ostream& os) const {
    os << "time_ns,category,event,subject,actor,detail\n";
    for (const auto& e : events_) {
      os << e.t << ',' << e.category << ',' << e.event << ',' << e.subject
         << ',' << e.actor << ',' << e.detail << '\n';
    }
  }

 private:
  std::vector<Event> events_;
  std::size_t cap_ = 1'000'000;
};

}  // namespace ksr::sim
