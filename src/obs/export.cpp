#include "ksr/obs/export.hpp"

#include <cstdio>
#include <ostream>
#include <string>

namespace ksr::obs {

namespace {

struct PhaseInfo {
  char ph;                 // 'B', 'E' or 'i'
  std::string_view name;   // slice name for paired events; empty = event name
};

[[nodiscard]] PhaseInfo phase_of(std::uint16_t ev) noexcept {
  switch (ev) {
    case kEvBarrierArrive: return {'B', "barrier"};
    case kEvBarrierDepart: return {'E', "barrier"};
    case kEvLockAcquire: return {'B', "lock"};
    case kEvLockRelease: return {'E', "lock"};
    default: return {'i', {}};
  }
}

[[nodiscard]] std::string escaped(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

/// Nanoseconds as microseconds with three decimals, integer math only (the
/// exporter's byte-stability depends on never touching floating point).
[[nodiscard]] std::string ts_us(sim::Time t) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%llu.%03llu",
                static_cast<unsigned long long>(t / 1000),
                static_cast<unsigned long long>(t % 1000));
  return std::string(buf);
}

}  // namespace

ChromeTraceWriter::ChromeTraceWriter(std::ostream& os) : os_(os) {
  os_ << "{\"traceEvents\":[";
}

ChromeTraceWriter::~ChromeTraceWriter() { finish(); }

void ChromeTraceWriter::event_prefix() {
  os_ << (any_event_ ? ",\n" : "\n");
  any_event_ = true;
}

int ChromeTraceWriter::add_process(const Tracer& t,
                                   std::string_view process_name) {
  const int pid = next_pid_++;
  event_prefix();
  os_ << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << pid
      << ",\"tid\":0,\"args\":{\"name\":\"" << escaped(process_name) << "\"}}";
  event_prefix();
  os_ << "{\"ph\":\"M\",\"name\":\"process_sort_index\",\"pid\":" << pid
      << ",\"tid\":0,\"args\":{\"sort_index\":" << pid << "}}";

  std::set<std::uint64_t> tids;
  for (const Tracer::Record& r : t) {
    if (tids.insert(r.actor).second) {
      event_prefix();
      os_ << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" << pid
          << ",\"tid\":" << r.actor << ",\"args\":{\"name\":\"cell " << r.actor
          << "\"}}";
    }
    const PhaseInfo p = phase_of(r.ev);
    const std::string_view name = p.name.empty() ? t.event_name(r.ev) : p.name;
    event_prefix();
    os_ << "{\"ph\":\"" << p.ph << "\",\"name\":\"" << escaped(name)
        << "\",\"cat\":\"" << escaped(t.category_name(r.cat))
        << "\",\"ts\":" << ts_us(r.t) << ",\"pid\":" << pid
        << ",\"tid\":" << r.actor;
    if (p.ph == 'i') os_ << ",\"s\":\"t\"";
    if (p.ph != 'E') {
      os_ << ",\"args\":{\"subject\":" << r.subject
          << ",\"detail\":" << r.detail << "}";
    }
    os_ << "}";
  }
  return pid;
}

void ChromeTraceWriter::finish() {
  if (finished_) return;
  finished_ = true;
  os_ << "\n],\"displayTimeUnit\":\"ns\"}\n";
}

void write_chrome_trace(const Tracer& t, std::ostream& os,
                        std::string_view process_name) {
  ChromeTraceWriter w(os);
  w.add_process(t, process_name);
  w.finish();
}

}  // namespace ksr::obs
