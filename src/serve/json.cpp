#include "ksr/serve/json.hpp"

#include <cstdio>
#include <cstdlib>

#include "ksr/util/parse.hpp"

namespace ksr::serve {

namespace {

// Recursive-descent parser over a string_view. Depth-limited so a
// pathological request can't blow the daemon's stack.
class Parser {
 public:
  Parser(std::string_view text, std::string* err) : s_(text), err_(err) {}

  bool run(Json* out) {
    skip_ws();
    if (!value(out, 0)) return false;
    skip_ws();
    if (pos_ != s_.size()) return fail("trailing bytes after document");
    return true;
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool fail(const std::string& what) {
    if (err_ != nullptr && err_->empty()) {
      *err_ = "json: " + what + " at byte " + std::to_string(pos_);
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] bool eat(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (s_.substr(pos_, word.size()) != word) {
      return fail("bad literal");
    }
    pos_ += word.size();
    return true;
  }

  bool string_token(std::string* out) {
    if (!eat('"')) return fail("expected string");
    out->clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("raw control byte in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) break;
      const char e = s_[pos_++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          std::uint32_t cp = 0;
          if (!hex4(&cp)) return false;
          // Basic-plane code points only; surrogate pairs are rejected
          // rather than half-decoded (job specs never need them).
          if (cp >= 0xD800 && cp <= 0xDFFF) {
            return fail("surrogate escapes unsupported");
          }
          append_utf8(cp, out);
          break;
        }
        default: return fail("bad escape");
      }
    }
    return fail("unterminated string");
  }

  bool hex4(std::uint32_t* out) {
    std::uint32_t v = 0;
    for (int k = 0; k < 4; ++k) {
      if (pos_ >= s_.size()) return fail("truncated \\u escape");
      const char c = s_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<std::uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<std::uint32_t>(c - 'A' + 10);
      else return fail("bad \\u escape");
    }
    *out = v;
    return true;
  }

  static void append_utf8(std::uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  bool number(Json* out) {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() && s_[pos_] >= '0' && s_[pos_] <= '9') ++pos_;
    bool integral = pos_ > start && s_[pos_ - 1] >= '0';
    if (pos_ < s_.size() && (s_[pos_] == '.' || s_[pos_] == 'e' ||
                             s_[pos_] == 'E')) {
      integral = false;
      // Fractional / exponent tail: validated loosely, decoded by strtod.
      while (pos_ < s_.size() &&
             (s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
              s_[pos_] == '+' || s_[pos_] == '-' ||
              (s_[pos_] >= '0' && s_[pos_] <= '9'))) {
        ++pos_;
      }
    }
    const std::string_view tok = s_.substr(start, pos_ - start);
    if (tok.empty() || tok == "-") return fail("bad number");
    // JSON forbids leading zeros ("01"): the integer part is either a lone
    // 0 or starts with 1-9.
    const std::string_view mag =
        tok[0] == '-' ? tok.substr(1) : tok;
    if (mag.size() > 1 && mag[0] == '0' && mag[1] >= '0' && mag[1] <= '9') {
      return fail("bad number");
    }
    if (integral) {
      if (tok[0] == '-') {
        std::int64_t v = 0;
        if (!util::parse_i64(tok, &v)) return fail("integer out of range");
        *out = Json::integer(v);
      } else {
        std::uint64_t v = 0;
        if (!util::parse_u64(tok, &v)) return fail("integer out of range");
        *out = Json::uint(v);
      }
      return true;
    }
    const std::string z(tok);
    char* end = nullptr;
    const double d = std::strtod(z.c_str(), &end);
    if (end != z.c_str() + z.size()) return fail("bad number");
    *out = Json::real(d);
    return true;
  }

  bool value(Json* out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    if (pos_ >= s_.size()) return fail("unexpected end of input");
    const char c = s_[pos_];
    if (c == '{') {
      ++pos_;
      *out = Json::object();
      skip_ws();
      if (eat('}')) return true;
      for (;;) {
        skip_ws();
        std::string key;
        if (!string_token(&key)) return false;
        skip_ws();
        if (!eat(':')) return fail("expected ':'");
        skip_ws();
        Json v;
        if (!value(&v, depth + 1)) return false;
        out->set(key, std::move(v));
        skip_ws();
        if (eat(',')) continue;
        if (eat('}')) return true;
        return fail("expected ',' or '}'");
      }
    }
    if (c == '[') {
      ++pos_;
      *out = Json::array();
      skip_ws();
      if (eat(']')) return true;
      for (;;) {
        skip_ws();
        Json v;
        if (!value(&v, depth + 1)) return false;
        out->push(std::move(v));
        skip_ws();
        if (eat(',')) continue;
        if (eat(']')) return true;
        return fail("expected ',' or ']'");
      }
    }
    if (c == '"') {
      std::string sv;
      if (!string_token(&sv)) return false;
      *out = Json::str(std::move(sv));
      return true;
    }
    if (c == 't') {
      if (!literal("true")) return false;
      *out = Json::boolean(true);
      return true;
    }
    if (c == 'f') {
      if (!literal("false")) return false;
      *out = Json::boolean(false);
      return true;
    }
    if (c == 'n') {
      if (!literal("null")) return false;
      *out = Json::null();
      return true;
    }
    return number(out);
  }

  std::string_view s_;
  std::string* err_;
  std::size_t pos_ = 0;
};

void write_escaped(const std::string& s, std::string* out) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\b': out->append("\\b"); break;
      case '\f': out->append("\\f"); break;
      case '\n': out->append("\\n"); break;
      case '\r': out->append("\\r"); break;
      case '\t': out->append("\\t"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

Json& Json::set(std::string_view key, Json v) {
  for (auto& [k, existing] : obj_) {
    if (k == key) {
      existing = std::move(v);
      return *this;
    }
  }
  obj_.emplace_back(std::string(key), std::move(v));
  return *this;
}

const Json* Json::find(std::string_view key) const {
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void Json::write(std::string* out) const {
  switch (kind_) {
    case Kind::kNull: out->append("null"); return;
    case Kind::kBool: out->append(b_ ? "true" : "false"); return;
    case Kind::kUint: {
      char buf[24];
      std::snprintf(buf, sizeof(buf), "%llu",
                    static_cast<unsigned long long>(u_));
      out->append(buf);
      return;
    }
    case Kind::kInt: {
      char buf[24];
      std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(i_));
      out->append(buf);
      return;
    }
    case Kind::kDouble: {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.17g", d_);
      out->append(buf);
      return;
    }
    case Kind::kString: write_escaped(s_, out); return;
    case Kind::kArray: {
      out->push_back('[');
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i != 0) out->push_back(',');
        arr_[i].write(out);
      }
      out->push_back(']');
      return;
    }
    case Kind::kObject: {
      out->push_back('{');
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i != 0) out->push_back(',');
        write_escaped(obj_[i].first, out);
        out->push_back(':');
        obj_[i].second.write(out);
      }
      out->push_back('}');
      return;
    }
  }
}

Json Json::parse(std::string_view text, std::string* err) {
  Json out;
  Parser p(text, err);
  if (!p.run(&out)) return Json();
  return out;
}

}  // namespace ksr::serve
