#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "ksr/cache/perf_monitor.hpp"
#include "ksr/machine/config.hpp"
#include "ksr/machine/cpu.hpp"
#include "ksr/mem/heap.hpp"
#include "ksr/obs/topo.hpp"
#include "ksr/sim/engine.hpp"
#include "ksr/sim/parallel_engine.hpp"
#include "ksr/sim/trace.hpp"

namespace ksr::ckpt {
class Writer;
class Reader;
}  // namespace ksr::ckpt

// The whole-machine abstraction.
//
// A Machine owns the event engine, the data heap, and the machine-specific
// memory system (caches + interconnect + coherence). Programs are launched
// with run(): one fiber per cell, each receiving a Cpu bound to that cell.
// Machine state (cache contents, coherence state) persists across run()
// calls on the same instance, so multi-phase experiments can control warmth.
namespace ksr::machine {

/// Data placement policy. The KSR (COMA) and Symmetry (caches) ignore it —
/// data migrates to where it is used. The Butterfly has no caches, so the
/// home memory module of an address matters: kBlocked homes consecutive
/// chunks of `bytes_per_cell` on consecutive cells (the "allocate my flags
/// in my own memory" idiom every Butterfly barrier depends on).
struct Placement {
  enum class Kind : std::uint8_t { kInterleaved, kBlocked };
  Kind kind = Kind::kInterleaved;
  std::size_t bytes_per_cell = 0;  // for kBlocked

  static Placement blocked(std::size_t bytes_per_cell) {
    return Placement{Kind::kBlocked, bytes_per_cell};
  }
};

/// Instantaneous interconnect counters for the metrics sampler (slot
/// utilization, cumulative inject wait, retry rate). Machines without a
/// modelled interconnect report all-zero.
struct NetSnapshot {
  std::uint64_t in_flight = 0;        // packets currently holding a slot
  std::uint64_t slots = 0;            // total slots machine-wide
  std::uint64_t packets = 0;          // cumulative injected packets
  std::uint64_t retries = 0;          // cumulative failed slot grabs
  sim::Duration inject_wait_ns = 0;   // cumulative slot-wait time
};

/// Everything measured during one run() call.
struct RunResult {
  double seconds = 0.0;              // completion time of the slowest cell
  std::vector<double> cell_seconds;  // per-cell completion times
  cache::PerfMonitor pmon;           // machine-wide counter deltas
  std::vector<cache::PerfMonitor> cell_pmon;  // per-cell counter deltas
};

class Machine {
 public:
  using Program = std::function<void(Cpu&)>;

  explicit Machine(const MachineConfig& cfg)
      : cfg_(cfg), par_(domain_plan(cfg_)), engine_(par_.domain(0)) {
    cfg_.validate();
    par_.set_tie_break_seed(cfg_.sched_fuzz_seed);
  }
  virtual ~Machine() = default;
  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  [[nodiscard]] const MachineConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] unsigned nproc() const noexcept { return cfg_.nproc; }

  /// Domain 0's serial engine. Single-domain machines (the default) put
  /// every component here; multi-domain ring machines use engine_of() per
  /// leaf-ring owner and keep this as the coordinator-side default.
  [[nodiscard]] sim::Engine& engine() noexcept { return engine_; }

  /// The serial engine owning domain `d`.
  [[nodiscard]] sim::Engine& engine_of(unsigned d) { return par_.domain(d); }

  /// How many domains this machine actually runs (1 unless a ring machine
  /// was configured with cells_per_domain; see MachineConfig).
  [[nodiscard]] unsigned domains() const noexcept { return par_.domains(); }

  /// Domain owning `cell` (leaf-ring aligned on ring machines, always 0 on
  /// single-domain machines).
  [[nodiscard]] unsigned domain_of_cell(unsigned cell) const noexcept {
    return par_.domains() == 1 ? 0 : cfg_.domain_of_cell(cell);
  }

  /// True when the machine runs more than one domain: the coherence
  /// protocol then commits through home-shard messages rather than the
  /// seed's synchronous path (docs/PARALLEL.md).
  [[nodiscard]] bool multi_domain() const noexcept {
    return par_.domains() > 1;
  }

  /// The quantum engine advancing this machine's domains across
  /// cfg.sim_threads host threads (docs/PARALLEL.md). run() drives it;
  /// expose it for host-side instrumentation (quanta/boundary counts).
  [[nodiscard]] sim::ParallelEngine& parallel_engine() noexcept { return par_; }
  [[nodiscard]] mem::Heap& heap() noexcept { return heap_; }

  /// Allocate a shared array of `n` elements of T (page-aligned, zeroed).
  template <typename T>
  mem::SharedArray<T> alloc(std::string_view name, std::size_t n,
                            const Placement& p = {}) {
    const mem::Region& r = heap_.alloc(n * sizeof(T), name);
    register_region(r, p);
    return mem::SharedArray<T>(r, n);
  }

  /// Run `program` on every cell; returns when all cells complete.
  RunResult run(const Program& program);

  /// Run a distinct program per cell (size must equal nproc()).
  RunResult run(const std::vector<Program>& programs);

  /// Per-cell perf-monitor access (hardware monitor equivalent).
  [[nodiscard]] virtual cache::PerfMonitor& cell_pmon(unsigned cell) = 0;

  /// Attach (or detach with nullptr) a structured event tracer. The
  /// coherence engine and interconnects log to it; hot paths pay only a
  /// null test when no tracer is attached. On a multi-domain machine the
  /// base implementation also builds one private shard per extra domain
  /// (mode B observer lane): each domain's components log to their own
  /// shard on their own thread, and run() merges every shard back into the
  /// attached tracer in (time, domain, append) order at the end — so the
  /// merged buffer is bit-identical at any --sim-threads. Shards clone the
  /// attached tracer's capacity and category mask; they rely on the builtin
  /// category/event ids, so runtime-interned custom names must only be
  /// logged through the primary tracer (host-side region markers do).
  virtual void attach_tracer(sim::Tracer* tracer);
  [[nodiscard]] sim::Tracer* tracer() const noexcept { return tracer_; }

  /// The tracer domain `d`'s components must log to: the attached tracer
  /// for domain 0 (and for single-domain machines), domain d's private
  /// shard otherwise. Null whenever no tracer is attached.
  [[nodiscard]] sim::Tracer* tracer_of(unsigned d) const noexcept {
    if (d == 0 || tracer_shards_.empty()) return tracer_;
    return tracer_shards_[d - 1].get();
  }

  /// Shorthand for tracer_of(domain_of_cell(cell)) — the sync primitives
  /// and per-cpu stall sites log through this so a record is always written
  /// by the thread advancing the logging cell's domain.
  [[nodiscard]] sim::Tracer* tracer_for_cell(unsigned cell) const noexcept {
    return tracer_of(domain_of_cell(cell));
  }

  /// Instantaneous interconnect counters (see NetSnapshot). Read-only and
  /// side-effect free, so the obs::MetricsRegistry sampler may call it from
  /// the engine's observer lane.
  [[nodiscard]] virtual NetSnapshot net_snapshot() const { return {}; }

  /// Domain-local slice of net_snapshot(): only interconnect owned by
  /// domain `d` (its leaf rings). The mode-B metrics sampler calls this
  /// from domain d's observer lane, so it must touch no other domain's
  /// state. Default: everything is domain 0's.
  [[nodiscard]] virtual NetSnapshot net_snapshot_of(unsigned d) const {
    return d == 0 ? net_snapshot() : NetSnapshot{};
  }

  /// Fill `s` with this machine's topology counters (docs/OBSERVABILITY.md).
  /// The base contributes the domain plan: domain count, quantum width and —
  /// on multi-domain machines only, where the quantum loop actually runs —
  /// quanta, boundary packets and per-channel stats. Subclasses add rings,
  /// the traffic matrix and directory-shard pressure. Integer simulated
  /// data only: the rendered report is byte-identical across hosts, --jobs
  /// and --sim-threads.
  virtual void topo_snapshot(obs::topo::Snapshot& s) const;

  /// --- Checkpoint/restore (docs/CHECKPOINT.md). ---
  ///
  /// checkpoint() serializes the complete machine state — engine clocks and
  /// tie-break seeds, heap region bytes, caches, directory, interconnect
  /// counters — into a versioned, fingerprinted image (ksr::ckpt format).
  /// It is only legal at a quiescent point: between run() calls, with every
  /// domain drained, every boundary channel empty, no directory entry busy,
  /// and every ring idle; anything else throws with a diagnostic naming the
  /// offender, never serializing mid-flight state.
  ///
  /// restore() loads an image into a freshly constructed machine of the
  /// *same configuration* (every config field is validated) whose driver
  /// has re-issued the same alloc() calls, or whose heap is still empty
  /// (regions are then re-allocated from the image). After restore, the
  /// machine is bit-exact with the one that was checkpointed: subsequent
  /// run() calls produce the same events_dispatched fingerprint, trace
  /// bytes, and I1–I6 audit results as the uninterrupted run.
  [[nodiscard]] std::vector<std::byte> checkpoint();
  void restore(const std::vector<std::byte>& image);

  /// File convenience wrappers around checkpoint()/restore().
  void checkpoint_to(const std::string& path);
  void restore_from(const std::string& path);

 protected:
  /// Machine-specific quiescence veto: throw if any subsystem still holds
  /// in-flight simulated state (busy directory entries, occupied ring
  /// slots, pending prefetches). Called by checkpoint() after the engine-
  /// level checks pass.
  virtual void ckpt_assert_quiescent() const {}

  /// Serialize / restore machine-specific state (caches, directory, ring
  /// stats). Writer and reader must consume the stream in lock-step.
  virtual void ckpt_save(ckpt::Writer& w) const { (void)w; }
  virtual void ckpt_load(ckpt::Reader& r) { (void)r; }
  /// Construct the machine-specific Cpu for `cell`.
  virtual std::unique_ptr<Cpu> make_cpu(unsigned cell) = 0;

  /// Hook for machines that care about placement (Butterfly).
  virtual void register_region(const mem::Region& region, const Placement& p) {
    (void)region;
    (void)p;
  }

  /// Map the config's partition request onto a ParallelEngine plan:
  /// leaf-aligned domains on ring machines (the sharded directory makes the
  /// partition protocol-correct), one domain everywhere else. Defined out
  /// of line (machine.cpp); warns once when a request is rounded to leaf
  /// boundaries or refused (bus/butterfly).
  [[nodiscard]] static sim::ParallelEngine::Config domain_plan(
      const MachineConfig& cfg);

  /// Fold every per-domain tracer shard back into the attached tracer in
  /// (time, domain, append) order. run() calls this after the engines
  /// drain; idempotent (shards are left empty).
  void merge_tracer_shards();

  MachineConfig cfg_;
  sim::ParallelEngine par_;
  sim::Engine& engine_;  // = par_.domain(0); keeps subclass call sites flat
  mem::Heap heap_;
  sim::Tracer* tracer_ = nullptr;
  // Mode-B observer shards for domains 1..D-1 (domain 0 logs straight to
  // tracer_); empty on single-domain machines or with no tracer attached.
  std::vector<std::unique_ptr<obs::Tracer>> tracer_shards_;
};

}  // namespace ksr::machine
