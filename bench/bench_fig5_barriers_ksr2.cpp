// Reproduces Fig. 5 ("Performance of the barriers on 64-node KSR-2"):
// the same nine barriers, on the two-level ring (two 32-cell leaf rings
// joined through ARDs by the level-1 ring), 2x CPU clock.
//
// One SweepRunner job per (barrier, P) cell, merged in submission order.
#include "bench_common.hpp"
#include "ksr/machine/ksr_machine.hpp"

namespace {

struct Cell {
  double seconds = 0.0;
  ksr::obs::JobObs obs;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace ksr;         // NOLINT
  using namespace ksr::bench;  // NOLINT

  const BenchOptions opt = BenchOptions::parse(argc, argv);
  obs::Session session = make_obs_session(opt, "fig5_barriers_ksr2");
  SweepRunner runner(opt.jobs);
  const int episodes = opt.quick ? 5 : 20;
  print_header("Barrier performance on the 64-node KSR-2 (two-level ring)",
               "Fig. 5, Sections 3.2.4 and 4");

  const std::vector<unsigned> procs =
      opt.quick ? std::vector<unsigned>{16, 32, 48, 64}
                : std::vector<unsigned>{16, 20, 24, 28, 32, 36, 40, 48, 56, 64};

  std::vector<std::string> headers{"barrier \\ procs"};
  for (unsigned p : procs) headers.push_back(std::to_string(p));
  TextTable t(headers);

  const auto kinds = sync::all_barrier_kinds();
  std::vector<std::function<Cell()>> jobs;
  jobs.reserve(kinds.size() * procs.size());
  for (sync::BarrierKind kind : kinds) {
    for (unsigned p : procs) {
      jobs.emplace_back([kind, p, episodes, &session] {
        machine::KsrMachine m(machine::MachineConfig::ksr2(p));
        Cell c;
        c.obs = session.job();
        c.obs.attach(m);
        c.seconds = barrier_episode_seconds(m, kind, episodes);
        c.obs.finish();
        return c;
      });
    }
  }
  std::vector<Cell> cells = runner.run(jobs);

  std::size_t j = 0;
  for (sync::BarrierKind kind : kinds) {
    std::vector<std::string> row{std::string(to_string(kind))};
    for (unsigned p : procs) {
      Cell& c = cells[j++];
      if (session.active()) {
        session.collect(std::move(c.obs), std::string(to_string(kind)) +
                                              " p=" + std::to_string(p));
      }
      row.push_back(TextTable::num(c.seconds * 1e6, 1));
    }
    t.add_row(row);
  }

  if (opt.csv) {
    t.print_csv();
  } else {
    t.print();
    std::cout
        << "\n(all entries in microseconds per barrier episode)\n"
        << "\nPaper expectations (Fig. 5 / Section 3.2.4): the same trends as"
           " the\n32-node KSR-1 carry over to the two-level ring, with a"
           " jump in\nexecution time once the barrier spans more than 32"
           " processors\n(communication crosses the ARDs);"
           " tournament(M) remains best,\nclosely followed by system and"
           " tree(M).\n";
  }
  return 0;
}
