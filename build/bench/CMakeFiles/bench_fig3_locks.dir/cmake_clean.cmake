file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_locks.dir/bench_fig3_locks.cpp.o"
  "CMakeFiles/bench_fig3_locks.dir/bench_fig3_locks.cpp.o.d"
  "bench_fig3_locks"
  "bench_fig3_locks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_locks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
