#pragma once

#include <cstddef>
#include <vector>

// Scalability metrics used throughout the paper's tables.
namespace ksr::study {

/// Speedup S(p) = T(1) / T(p).
[[nodiscard]] constexpr double speedup(double t1, double tp) noexcept {
  return tp > 0 ? t1 / tp : 0.0;
}

/// Efficiency E(p) = S(p) / p.
[[nodiscard]] constexpr double efficiency(double t1, double tp,
                                          unsigned p) noexcept {
  return p > 0 ? speedup(t1, tp) / static_cast<double>(p) : 0.0;
}

/// Karp–Flatt experimentally determined serial fraction [12]:
///   f = (1/S - 1/p) / (1 - 1/p)
/// The paper reports this as "Serial Fraction" in Tables 1 and 2; a serial
/// fraction that *grows* with p exposes overheads the speedup curve hides.
[[nodiscard]] constexpr double karp_flatt(double s, unsigned p) noexcept {
  if (p <= 1 || s <= 0) return 0.0;
  const double inv_p = 1.0 / static_cast<double>(p);
  return (1.0 / s - inv_p) / (1.0 - inv_p);
}

/// One row of a paper-style scaling table.
struct ScalingRow {
  unsigned p = 1;
  double seconds = 0.0;
  double speedup = 1.0;
  double efficiency = 1.0;
  double serial_fraction = 0.0;
};

/// Build the derived columns from (p, seconds) measurements. The first
/// entry's time is the serial baseline.
[[nodiscard]] inline std::vector<ScalingRow> scaling_rows(
    const std::vector<std::pair<unsigned, double>>& measured) {
  std::vector<ScalingRow> rows;
  if (measured.empty()) return rows;
  const double t1 = measured.front().second;
  rows.reserve(measured.size());
  for (const auto& [p, t] : measured) {
    ScalingRow r;
    r.p = p;
    r.seconds = t;
    r.speedup = speedup(t1, t);
    r.efficiency = efficiency(t1, t, p);
    r.serial_fraction = karp_flatt(r.speedup, p);
    rows.push_back(r);
  }
  return rows;
}

/// Superunitary-speedup test of Helmbold/McDowell [9]: between two points
/// the incremental speedup exceeds the processor ratio.
[[nodiscard]] constexpr bool superunitary_step(double s_lo, unsigned p_lo,
                                               double s_hi,
                                               unsigned p_hi) noexcept {
  if (p_lo == 0 || s_lo <= 0) return false;
  return (s_hi / s_lo) >
         (static_cast<double>(p_hi) / static_cast<double>(p_lo));
}

}  // namespace ksr::study
