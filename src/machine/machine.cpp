#include "ksr/machine/machine.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace ksr::machine {

sim::ParallelEngine::Config Machine::domain_plan(const MachineConfig& cfg) {
  sim::ParallelEngine::Config pc;
  pc.domains = 1;
  pc.threads = cfg.sim_threads;
  pc.quantum_ns = cfg.sim_quantum_ns();
  if (cfg.requested_domains() <= 1) return pc;
  if (!cfg.supports_partition()) {
    static bool warned_kind = false;
    if (!warned_kind) {
      warned_kind = true;
      std::fprintf(stderr,
                   "warning: cells_per_domain=%u requests %u domains, but "
                   "%s machines serialize on a shared medium and run "
                   "single-domain (see docs/PARALLEL.md)\n",
                   cfg.cells_per_domain, cfg.requested_domains(),
                   to_string(cfg.kind));
    }
    return pc;
  }
  // Ring machines partition by whole leaf rings: a directory shard is owned
  // by exactly one domain, so a domain boundary can never split a leaf.
  if (cfg.cells_per_leaf != 0 && cfg.cells_per_domain % cfg.cells_per_leaf != 0) {
    static bool warned_round = false;
    if (!warned_round) {
      warned_round = true;
      std::fprintf(stderr,
                   "warning: cells_per_domain=%u is not a multiple of "
                   "cells_per_leaf=%u; rounding up to %u cells (%u whole "
                   "leaf rings) per domain\n",
                   cfg.cells_per_domain, cfg.cells_per_leaf,
                   cfg.planned_leaves_per_domain() * cfg.cells_per_leaf,
                   cfg.planned_leaves_per_domain());
    }
  }
  pc.domains = cfg.planned_domains();
  return pc;
}

unsigned Cpu::nproc() const noexcept { return machine_.nproc(); }

void Cpu::work(std::uint64_t n) { tick_cycles(n); }

void Cpu::tick_cycles(std::uint64_t n) {
  local_now_ += machine_.config().cycles(n);
}

sim::Engine& Cpu::eng() {
  if (eng_ == nullptr) {
    eng_ = &machine_.engine_of(machine_.domain_of_cell(id_));
  }
  return *eng_;
}

void Cpu::lazy_sync() {
  sim::Engine& e = eng();
  if (e.next_event_time() < local_now_) {
    e.wait_until(local_now_);
    return;
  }
  // Multi-domain: a cache hit is only safe to take without yielding while
  // the local clock stays inside the conservative quantum. Cross-domain
  // traffic (an invalidation of the very line being spun on, say) merges
  // into this domain's queue at the quantum barrier, and the engine can
  // only reach that barrier when this fiber parks. Without this bound a
  // hit-spinning fiber runs its local clock arbitrarily far ahead and
  // never observes remote writes. The strict `>` matches the single-domain
  // rule above: an event at exactly local_now_ is not waited for.
  if (machine_.multi_domain() &&
      local_now_ > machine_.parallel_engine().horizon()) {
    e.wait_until(local_now_);
  }
}

void Cpu::hard_sync() {
  sim::Engine& e = eng();
  if (e.now() < local_now_ || e.next_event_time() < local_now_) {
    e.wait_until(local_now_);
  }
}

void Cpu::block_until_woken() {
  sim::Engine& e = eng();
  e.block();
  local_now_ = std::max(local_now_, e.now());
}

void Cpu::wake_at(sim::Time t) { eng().wake(fiber_, t); }

void Cpu::range(mem::Sva base, std::size_t bytes, Op op) {
  if (bytes == 0) return;
  const mem::Sva end = base + bytes;
  mem::Sva a = base;
  while (a < end) {
    access(a, 1, op);
    // Advance to the next sub-block boundary.
    a = (a / mem::kSubBlockBytes + 1) * mem::kSubBlockBytes;
  }
}

RunResult Machine::run(const Program& program) {
  std::vector<Program> programs(nproc(), program);
  return run(programs);
}

RunResult Machine::run(const std::vector<Program>& programs) {
  if (programs.size() != nproc()) {
    throw std::invalid_argument("Machine::run: one program per cell required");
  }
  // Domain engines may sit at different times after a previous run; start
  // every fiber at the latest of them so no domain is asked to schedule in
  // its past.
  sim::Time epoch = engine_.now();
  for (unsigned d = 1; d < par_.domains(); ++d) {
    epoch = std::max(epoch, par_.domain(d).now());
  }

  std::vector<cache::PerfMonitor> pmon_before(nproc());
  for (unsigned i = 0; i < nproc(); ++i) pmon_before[i] = cell_pmon(i);

  std::vector<std::unique_ptr<Cpu>> cpus;
  cpus.reserve(nproc());
  for (unsigned i = 0; i < nproc(); ++i) cpus.push_back(make_cpu(i));

  for (unsigned i = 0; i < nproc(); ++i) {
    Cpu* cpu = cpus[i].get();
    const Program* body = &programs[i];
    sim::Engine& eng = engine_of(domain_of_cell(i));
    cpu->bind_engine(eng);
    const sim::FiberId fid = eng.spawn([cpu, body] { (*body)(*cpu); }, epoch);
    cpu->begin_run(epoch, fid);
  }
  par_.run();

  RunResult res;
  res.cell_seconds.resize(nproc());
  res.cell_pmon.resize(nproc());
  for (unsigned i = 0; i < nproc(); ++i) {
    res.cell_seconds[i] = sim::to_seconds(cpus[i]->now() - epoch);
    res.seconds = std::max(res.seconds, res.cell_seconds[i]);

    // Counter deltas for this run.
    cache::PerfMonitor delta = cell_pmon(i);
    delta.sub(pmon_before[i]);
    res.cell_pmon[i] = delta;
    res.pmon.add(delta);
  }
  return res;
}

}  // namespace ksr::machine
