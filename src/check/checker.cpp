#include "ksr/check/checker.hpp"

#include <sstream>

#include "ksr/cache/cell_mask.hpp"
#include "ksr/cache/state.hpp"
#include "ksr/machine/coherent_machine.hpp"
#include "ksr/net/ring.hpp"

namespace ksr::check {

namespace {

[[nodiscard]] std::uint64_t fnv1a(const std::byte* p, std::size_t n) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<std::uint64_t>(p[i]);
    h *= 0x100000001b3ull;
  }
  return h;
}

/// First cell of a mask, clamped for diagnostics (masks here are non-empty
/// at every call site, but a defensive 0 beats UB in an error path).
[[nodiscard]] unsigned first_cell(const cache::CellMask& m) noexcept {
  const int b = m.first_set();
  return b >= 0 ? static_cast<unsigned>(b) : 0u;
}

}  // namespace

const char* to_string(Ev ev) noexcept {
  switch (ev) {
    case Ev::kGrantShared: return "grant-shared";
    case Ev::kGrantExclusive: return "grant-exclusive";
    case Ev::kGrantAtomic: return "grant-atomic";
    case Ev::kNack: return "nack";
    case Ev::kPoststore: return "poststore";
    case Ev::kLocalAtomic: return "local-atomic";
    case Ev::kReleaseAtomic: return "release-atomic";
    case Ev::kFirstTouch: return "first-touch";
    case Ev::kPageEvict: return "page-evict";
  }
  return "?";
}

InvariantChecker::InvariantChecker(machine::CoherentMachine& m)
    : InvariantChecker(m, Config{}) {}

InvariantChecker::InvariantChecker(machine::CoherentMachine& m, Config cfg)
    : m_(m), cfg_(cfg) {}

void InvariantChecker::add_ring(const net::SlottedRing* ring) {
  if (ring != nullptr) rings_.push_back(ring);
}

void InvariantChecker::reset() {
  frozen_.clear();
  trail_len_ = 0;
  trail_next_ = 0;
  last_audit_time_ = 0;
}

void InvariantChecker::on_transition(Ev ev, unsigned cell, mem::SubPageId sp) {
  ++stats_.transitions;
  const sim::Time now = m_.engine().now();
  trail_[trail_next_] = TrailEvent{now, ev, cell, sp};
  trail_next_ = (trail_next_ + 1) % trail_.size();
  if (trail_len_ < trail_.size()) ++trail_len_;

  if (now < last_audit_time_) {
    fail("I6.monotone-time", cell, sp,
         "transition committed at t=" + std::to_string(now) +
             " ns after an audit at t=" + std::to_string(last_audit_time_) +
             " ns (event-queue timestamps ran backwards)");
  }
  last_audit_time_ = now;

  if (ev == Ev::kPageEvict) {
    // `sp` is the first sub-page of the reclaimed page: the eviction fix-up
    // touched (up to) all 128 of its sub-pages, so audit each one the
    // directory knows. The sub-page of the transaction that triggered the
    // eviction belongs to a *different* page and is still mid-commit — it is
    // audited by its own hook when the commit completes.
    const mem::PageId pg = mem::page_of_subpage(sp);
    for (std::size_t i = 0; i < mem::kSubPagesPerPage; ++i) {
      const mem::SubPageId psp = pg * mem::kSubPagesPerPage + i;
      if (m_.dir_contains(psp)) audit_subpage(psp);
    }
  } else {
    audit_subpage(sp);
  }
  if (cfg_.check_rings) audit_rings();
}

void InvariantChecker::audit_subpage(mem::SubPageId sp) {
  ++stats_.audits;
  using cache::CellMask;
  using cache::LineState;
  const unsigned n = m_.nproc();

  CellMask readable_m;       // cells with a readable copy
  CellMask writable_m;       // cells with Exclusive/Atomic
  CellMask atomic_m;         // cells with Atomic
  CellMask invalid_frame_m;  // cells with an Invalid placeholder frame
  for (unsigned c = 0; c < n; ++c) {
    const auto lk = m_.cells_[c].local.lookup(sp);
    const LineState st = lk.page_present ? lk.state : LineState::kInvalid;
    if (cache::readable(st)) readable_m.set(c);
    if (cache::writable(st)) writable_m.set(c);
    if (st == LineState::kAtomic) atomic_m.set(c);
    if (lk.page_present && st == LineState::kInvalid) {
      invalid_frame_m.set(c);
    }
    if (!cache::readable(st)) {
      // I4: the first-level cache must not serve data the second level
      // cannot read (a missed invalidation would leave stale bytes here).
      const mem::Sva base = mem::subpage_base(sp);
      for (std::size_t off = 0; off < mem::kSubPageBytes;
           off += mem::kSubBlockBytes) {
        if (m_.cells_[c].sub.contains(base + off)) {
          fail("I4.inclusion", c, sp,
               "sub-cache holds sub-block at +" + std::to_string(off) +
                   " of a sub-page whose local-cache state is " +
                   std::string(cache::to_string(st)));
        }
      }
    }
  }

  const auto* e = m_.dir_find(sp);
  if (e == nullptr) {
    if (readable_m.any()) {
      fail("I3.copy-set", first_cell(readable_m), sp,
           "cells " + readable_m.to_string() +
               " hold copies of a sub-page the directory does not know");
    }
    return;
  }

  // I1: ownership.
  if (writable_m.count() > 1) {
    fail("I1.ownership", first_cell(writable_m), sp,
         "two or more writable copies: " + writable_m.to_string());
  }
  if (writable_m.any() && readable_m != writable_m) {
    fail("I1.ownership", first_cell(writable_m), sp,
         "a writable copy must be the only copy, but readable copies are " +
             readable_m.to_string());
  }
  if (e->owner >= 0) {
    const unsigned owner = static_cast<unsigned>(e->owner);
    CellMask only_owner;
    only_owner.assign_single(owner);
    if (readable_m != only_owner) {
      fail("I1.ownership", owner, sp,
           "dir.owner=" + std::to_string(owner) +
               " but the actual copy set is " + readable_m.to_string());
    }
    if (!writable_m.test(owner)) {
      fail("I1.ownership", owner, sp,
           "dir.owner=" + std::to_string(owner) +
               " holds the line in a non-writable state");
    }
  } else if (writable_m.any()) {
    fail("I1.ownership", first_cell(writable_m), sp,
         "writable copy exists but dir.owner is unset");
  }

  // I2: atomicity.
  if (e->atomic) {
    CellMask only_owner;
    if (e->owner >= 0) {
      only_owner.assign_single(static_cast<unsigned>(e->owner));
    }
    if (e->owner < 0 || atomic_m != only_owner) {
      fail("I2.atomicity",
           e->owner >= 0 ? static_cast<unsigned>(e->owner) : 0u, sp,
           "dir.atomic set but the Atomic line states are " +
               atomic_m.to_string());
    }
  } else if (atomic_m.any()) {
    fail("I2.atomicity", first_cell(atomic_m), sp,
         "cell holds the line Atomic but dir.atomic is clear");
  }

  // I3: copy-set.
  if (e->holders != readable_m) {
    CellMask diff = e->holders;
    diff.and_not(readable_m);
    if (diff.none()) {
      diff = readable_m;
      diff.and_not(e->holders);
    }
    fail("I3.copy-set", first_cell(diff), sp,
         "dir.holders=" + e->holders.to_string() +
             " but the readable copies are " + readable_m.to_string());
  }
  if (e->placeholders.intersects(e->holders)) {
    CellMask both = e->placeholders;
    both.intersect(e->holders);
    fail("I3.copy-set", first_cell(both), sp,
         "a cell is both holder and placeholder");
  }
  {
    CellMask ghost = e->placeholders;  // placeholders without a real frame
    ghost.and_not(invalid_frame_m);
    if (ghost.any()) {
      fail("I3.copy-set", first_cell(ghost), sp,
           "dir.placeholders=" + e->placeholders.to_string() +
               " but only cells " + invalid_frame_m.to_string() +
               " have an Invalid placeholder frame");
    }
  }

  // I5: read-shared bytes are frozen until an exclusive grant.
  if (cfg_.check_values) {
    bool mapped = false;
    const std::uint64_t h = subpage_hash(sp, &mapped);
    const auto it = frozen_.find(sp);
    if (it != frozen_.end() && mapped && it->second != h) {
      fail("I5.values",
           readable_m.any() ? first_cell(readable_m) : 0u, sp,
           "heap bytes of a read-shared sub-page changed without an "
           "exclusive grant (refreshed copies are no longer value-equal)");
    }
    if (mapped && writable_m.none() && readable_m.any()) {
      frozen_[sp] = h;
    } else if (it != frozen_.end()) {
      frozen_.erase(sp);
    }
  }
}

void InvariantChecker::audit_all() {
  ++stats_.full_audits;
  // Multi-domain runs audit only at quiescent points — no per-transition
  // hooks record exclusive grants in between, so a surviving freeze record
  // would flag perfectly legal writes. Start from live state instead.
  if (m_.multi_domain_) frozen_.clear();
  m_.dir_for_each(
      [this](mem::SubPageId sp, const machine::CoherentMachine::DirEntry&) {
        audit_subpage(sp);
      });
  // Copies the directory does not know about: sweep every resident line.
  const unsigned n = m_.nproc();
  for (unsigned c = 0; c < n; ++c) {
    m_.cells_[c].local.for_each_subpage(
        [this, c](mem::SubPageId sp, cache::LineState st) {
          if (cache::readable(st) && !m_.dir_contains(sp)) {
            fail("I3.copy-set", c, sp,
                 "cell holds a " + std::string(cache::to_string(st)) +
                     " copy of a sub-page the directory does not know");
          }
        });
  }
  if (cfg_.check_rings) audit_rings();
}

void InvariantChecker::audit_rings() const {
  for (const net::SlottedRing* r : rings_) {
    unsigned subring = 0, pos = 0;
    if (r->find_stranded_head(&subring, &pos)) {
      throw ViolationError(
          "ALLCACHE invariant violated: I6.liveness — ring '" + r->name() +
          "' sub-ring " + std::to_string(subring) + " position " +
          std::to_string(pos) +
          " has a waiting injector with no retry event scheduled (stranded "
          "queue head would wait forever)\n" +
          trail_to_string());
    }
  }
}

std::uint64_t InvariantChecker::subpage_hash(mem::SubPageId sp,
                                             bool* mapped) const {
  const mem::Sva base = mem::subpage_base(sp);
  try {
    const mem::Region& r = m_.heap().region_of(base);
    const std::byte* p = r.data.get() + (base - r.base);
    *mapped = true;
    return fnv1a(p, mem::kSubPageBytes);
  } catch (const std::out_of_range&) {
    *mapped = false;
    return 0;
  }
}

std::string InvariantChecker::describe_subpage(mem::SubPageId sp) const {
  std::ostringstream os;
  const mem::Sva base = mem::subpage_base(sp);
  os << "  sub-page " << sp << " (sva 0x" << std::hex << base << std::dec;
  try {
    const mem::Region& r = m_.heap().region_of(base);
    os << " = " << r.name << "+" << (base - r.base);
  } catch (const std::out_of_range&) {
    os << " = <unmapped>";
  }
  os << ")\n";
  if (const auto* e = m_.dir_find(sp)) {
    os << "  directory: holders=" << e->holders.to_string()
       << " placeholders=" << e->placeholders.to_string()
       << " owner=" << e->owner << " atomic=" << (e->atomic ? "yes" : "no")
       << "\n";
  } else {
    os << "  directory: <no entry>\n";
  }
  os << "  cells:";
  for (unsigned c = 0; c < m_.nproc(); ++c) {
    const auto lk = m_.cells_[c].local.lookup(sp);
    if (!lk.page_present) continue;  // no frame: uninteresting
    os << ' ' << c << ':' << cache::to_string(lk.state);
  }
  os << " (cells without a page frame omitted)\n";
  return os.str();
}

std::string InvariantChecker::trail_to_string() const {
  std::ostringstream os;
  os << "  last " << trail_len_ << " protocol events (oldest first):\n";
  for (std::size_t i = 0; i < trail_len_; ++i) {
    const std::size_t idx =
        (trail_next_ + trail_.size() - trail_len_ + i) % trail_.size();
    const TrailEvent& te = trail_[idx];
    os << "    [" << te.t << " ns] " << to_string(te.ev) << " cpu=" << te.cell
       << " sp=" << te.sp << "\n";
  }
  return os.str();
}

void InvariantChecker::fail(const std::string& invariant, unsigned cell,
                            mem::SubPageId sp,
                            const std::string& detail) const {
  std::ostringstream os;
  os << "ALLCACHE invariant violated: " << invariant << " — " << detail
     << "\n  at t=" << m_.engine().now() << " ns, cpu=" << cell << "\n"
     << describe_subpage(sp) << trail_to_string();
  throw ViolationError(os.str());
}

}  // namespace ksr::check
