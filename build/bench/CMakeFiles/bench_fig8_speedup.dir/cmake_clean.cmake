file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_speedup.dir/bench_fig8_speedup.cpp.o"
  "CMakeFiles/bench_fig8_speedup.dir/bench_fig8_speedup.cpp.o.d"
  "bench_fig8_speedup"
  "bench_fig8_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
