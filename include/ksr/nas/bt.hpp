#pragma once

#include <cstdint>

#include "ksr/machine/machine.hpp"

// NAS Block Tridiagonal (BT) application — extension.
//
// The paper's KSR implementation report (reference [6], "Implementation of
// EP, SP and BT on the KSR-1") covers BT alongside the kernels the paper
// analyses; we include it as the natural extension of the SP study. BT has
// the same ADI structure as SP — three phases of line solves per iteration —
// but each grid point carries a 5-component state vector and the line
// systems are *block* tridiagonal: each elimination step applies 5x5 block
// operations, so BT is far more compute-dense per point than SP
// (correspondingly less sensitive to memory-system effects — which the
// scaling results show).
namespace ksr::nas {

struct BtConfig {
  unsigned n = 12;          // grid edge (paper-scale BT runs 64^3)
  unsigned iterations = 2;  // timed iterations
  bool use_prefetch = false;
  std::uint64_t work_per_block_op = 150;  // ~5x5 block multiply/solve cycles
};

struct BtResult {
  double seconds_per_iteration = 0.0;
  double total_seconds = 0.0;
  double checksum = 0.0;  // invariant across processor counts
};

/// Run BT on the machine; all cells participate.
BtResult run_bt(machine::Machine& m, const BtConfig& cfg);

}  // namespace ksr::nas
