#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "ksr/cache/flat_map.hpp"
#include "ksr/cache/local_cache.hpp"
#include "ksr/cache/perf_monitor.hpp"
#include "ksr/cache/state.hpp"
#include "ksr/cache/subcache.hpp"
#include "ksr/machine/machine.hpp"

// Shared core of the cache-coherent machines (KSR ring hierarchy, Symmetry
// bus): per-cell two-level caches, a machine-wide coherence directory, and
// the protocol commit logic. What differs between machines — how a
// transaction physically travels and what it costs — is expressed through
// two virtual hooks (transport / transaction_overhead_ns).
//
// The directory is *functional* bookkeeping (who holds what, in which
// state); all *timing* flows from the transport model plus the fixed
// latencies in MachineConfig. State changes commit when the transaction
// completes, so overlapping transactions interleave realistically.
namespace ksr::check {
class InvariantChecker;
}

namespace ksr::machine {

class CoherentMachine : public Machine {
 public:
  explicit CoherentMachine(const MachineConfig& cfg);
  ~CoherentMachine() override;

  [[nodiscard]] cache::PerfMonitor& cell_pmon(unsigned cell) override {
    return cells_[cell].pmon;
  }

  /// Drop all cached state (cold start between experiments).
  virtual void reset_memory_system();

  /// Directory introspection for tests.
  struct DirView {
    std::uint64_t holders = 0;
    std::uint64_t placeholders = 0;
    int owner = -1;
    bool atomic = false;
  };
  [[nodiscard]] DirView dir_view(mem::SubPageId sp) const;

  /// Coherence state of `sp` in one cell's local cache (test introspection).
  [[nodiscard]] cache::LineState cell_line_state(unsigned cell,
                                                 mem::SubPageId sp) const {
    return cells_[cell].local.state(sp);
  }

  /// Leaf-ring index of a cell (always 0 on single-network machines).
  [[nodiscard]] virtual unsigned leaf_of(unsigned cell) const noexcept {
    (void)cell;
    return 0;
  }
  [[nodiscard]] virtual unsigned leaf_count() const noexcept { return 1; }

  /// Attach an invariant checker (docs/CHECKING.md). In a -DKSR_CHECK=ON
  /// build the machine reports every committed coherence transition to it;
  /// in a default build the hooks compile to nothing and the checker is
  /// only driven explicitly (audit_all). Derived machines override to also
  /// register their interconnects for the I6 liveness audit. Pass nullptr
  /// to detach. The checker must outlive the machine (or be detached first).
  virtual void attach_checker(check::InvariantChecker* checker) {
    checker_ = checker;
  }
  [[nodiscard]] check::InvariantChecker* checker() const noexcept {
    return checker_;
  }

 protected:
  friend class CoherentCpu;
  friend class ::ksr::check::InvariantChecker;

  struct Cell {
    cache::SubCache sub;
    cache::LocalCache local;
    cache::PerfMonitor pmon;
    sim::Rng rng;       // replacement decisions
    sim::Rng prog_rng;  // program-visible randomness (kept separate so that
                        // workload draws do not perturb replacement)
    // Sub-pages with an in-flight asynchronous fetch (prefetch), mapping to
    // fibers blocked waiting for that fetch.
    cache::FlatMap<mem::SubPageId, std::vector<sim::FiberId>> inflight;
    unsigned inflight_count = 0;
    Cell(const cache::SubCache::Config& sc, const cache::LocalCache::Config& lc,
         std::uint64_t seed)
        : sub(sc), local(lc), rng(seed), prog_rng(~seed) {}
  };

  struct DirEntry {
    std::uint64_t holders = 0;       // cells with a readable copy
    std::uint64_t placeholders = 0;  // cells with an Invalid placeholder
    std::int16_t owner = -1;         // holder when Exclusive/Atomic
    bool atomic = false;
    std::uint8_t resident_leaf = 0;  // last leaf the data lived on (used when
                                     // every copy has been evicted)
  };

  enum class Acquire : std::uint8_t { kShared, kExclusive, kAtomic };

  struct CommitResult {
    bool ok = false;          // false: NACK (sub-page Atomic elsewhere)
    bool page_alloc = false;  // requester had to allocate a page frame
  };

  std::unique_ptr<Cpu> make_cpu(unsigned cell) override;

  // ---- Machine-specific hooks ----

  /// Carry one coherence transaction from `cell` toward `target_leaf`;
  /// `done(total_queue_or_slot_wait)` fires at completion time.
  virtual void transport(unsigned cell, mem::SubPageId sp, unsigned target_leaf,
                         std::function<void(sim::Duration)> done) = 0;

  /// Fixed per-transaction protocol overhead charged to the requester on a
  /// successful commit (beyond the transport time itself).
  [[nodiscard]] virtual sim::Duration transaction_overhead_ns(
      Acquire kind, bool crossed_leaf) const = 0;

  // ---- Shared protocol machinery ----

  /// Mask of cell ids attached to `leaf`.
  [[nodiscard]] std::uint64_t leaf_mask(unsigned leaf) const noexcept;

  /// Leaf holding a responder for `sp` from `cell`'s point of view.
  [[nodiscard]] unsigned responder_leaf(unsigned cell, const DirEntry& e) const;

  /// Protocol commits (state changes at transaction completion time).
  /// `witness` is 1 + the byte offset (within the sub-page) of the demand
  /// access that triggered the transaction, or 0 when there is none
  /// (prefetch). It is pure trace metadata — logged as the grant record's
  /// aux word for the sharing-pattern classifier, never read by the
  /// protocol itself.
  CommitResult commit_shared(unsigned cell, mem::SubPageId sp,
                             std::uint32_t witness = 0);
  CommitResult commit_exclusive(unsigned cell, mem::SubPageId sp, bool atomic,
                                std::uint32_t witness = 0);
  void commit_poststore(unsigned cell, mem::SubPageId sp);

  /// Insert/refresh the line in `cell`'s local cache; handles page
  /// allocation and eviction fix-ups. Returns true if a page was allocated.
  bool insert_line(unsigned cell, mem::SubPageId sp, cache::LineState st);

  void on_page_evicted(unsigned cell, mem::PageId page);
  void invalidate_at(unsigned cell, mem::SubPageId sp);

  std::vector<Cell> cells_;
  cache::FlatMap<mem::SubPageId, DirEntry> dir_;
  check::InvariantChecker* checker_ = nullptr;
};

}  // namespace ksr::machine
