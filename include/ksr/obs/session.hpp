#pragma once

#include <cstddef>
#include <fstream>
#include <memory>
#include <string>
#include <string_view>

#include <vector>

#include "ksr/machine/machine.hpp"
#include "ksr/obs/analyze.hpp"
#include "ksr/obs/export.hpp"
#include "ksr/obs/metrics.hpp"
#include "ksr/obs/topo.hpp"
#include "ksr/obs/tracer.hpp"

// Observability wiring shared by the bench binaries and ksrsim.
//
// A Session owns the output files named by --trace-out / --metrics-csv and
// hands out one JobObs per simulation. Jobs may run on SweepRunner pool
// threads: JobObs is self-contained (its own Tracer + MetricsRegistry, no
// shared state), travels through the job's result struct, and the caller
// collect()s it on the main thread *in submission order* — so merged trace
// and metrics files are byte-identical for any --jobs value, exactly like
// the tables themselves. collect() streams the job out and frees its
// buffer, so a long sweep never holds more than the in-flight jobs' traces.
//
// Everything a Session prints goes to files or stderr; stdout (the tables /
// --csv output) stays byte-for-byte identical with observability on or off.
namespace ksr::obs {

struct SessionOptions {
  bool trace = false;          // capture a trace (--trace)
  std::string categories;      // comma-separated filter; empty = all
  std::string trace_out;       // output path; empty = "<name>_trace.json"
  std::string metrics_csv;     // metrics time-series path; empty = off
  std::string report;          // ksrprof profile report path; empty = off
                               // (implies trace capture, not trace output)
  std::string topo_report;     // topology report path; empty = off. Also
                               // writes "<path>.matrix.csv" (traffic heatmap)
  sim::Duration metrics_period_ns = MetricsRegistry::kDefaultPeriodNs;
  // Per-job record capacity (40 B each). Overflow is counted, not silent.
  // Overridable via --trace-cap.
  std::size_t trace_capacity = 1u << 18;
};

/// Per-simulation observability handle. Default-constructed it is inert
/// (attach()/finish() are no-ops), so result structs can always carry one.
class JobObs {
 public:
  JobObs() = default;
  JobObs(JobObs&&) noexcept = default;
  JobObs& operator=(JobObs&&) noexcept = default;

  /// Attach tracer + metrics sampler to `m`. Call right after constructing
  /// the machine, before Machine::run().
  void attach(machine::Machine& m) {
    if (tracer_) m.attach_tracer(tracer_.get());
    if (metrics_) metrics_->attach(m, period_);
    machine_ = &m;
  }

  /// Take the final metrics sample, snapshot the heap's region map (the
  /// job's allocations happen after attach(), so name resolution for
  /// reports and offline analysis must wait until the job is done) and,
  /// when topo reporting or tracing is on, the machine's topo::Snapshot.
  /// Call after the last run(), while the machine is still alive.
  void finish() {
    if (metrics_) metrics_->finish();
    if (machine_ != nullptr && tracer_) {
      const mem::Heap& h = machine_->heap();
      regions_.reserve(h.region_count());
      for (std::size_t i = 0; i < h.region_count(); ++i) {
        const mem::Region& r = h.region(i);
        regions_.push_back({r.base, r.bytes, r.name});
      }
    }
    if (machine_ != nullptr && (topo_wanted_ || tracer_)) {
      machine_->topo_snapshot(topo_);
      has_topo_ = true;
      // Per-cell (leaf, domain) for the Chrome exporter's leaf-ring
      // grouping; only worth emitting on a multi-leaf machine (single-leaf
      // traces keep the seed's exact byte layout).
      if (tracer_ && topo_.leaves > 1 && topo_.cells_per_leaf > 0) {
        cells_.resize(machine_->nproc());
        for (unsigned c = 0; c < machine_->nproc(); ++c) {
          cells_[c].leaf = c / topo_.cells_per_leaf;
          cells_[c].domain = machine_->domain_of_cell(c);
        }
      }
    }
    machine_ = nullptr;
  }

  [[nodiscard]] Tracer* tracer() noexcept { return tracer_.get(); }
  [[nodiscard]] const std::vector<RegionSpan>& regions() const noexcept {
    return regions_;
  }
  [[nodiscard]] const topo::Snapshot& topo() const noexcept { return topo_; }
  [[nodiscard]] bool has_topo() const noexcept { return has_topo_; }

 private:
  friend class Session;
  std::unique_ptr<Tracer> tracer_;
  std::unique_ptr<MetricsRegistry> metrics_;
  std::vector<RegionSpan> regions_;
  topo::Snapshot topo_;
  std::vector<ChromeTraceWriter::CellTopo> cells_;
  machine::Machine* machine_ = nullptr;
  sim::Duration period_ = MetricsRegistry::kDefaultPeriodNs;
  bool topo_wanted_ = false;
  bool has_topo_ = false;
};

class Session {
 public:
  /// `name` seeds the default trace filename ("<name>_trace.json").
  Session(SessionOptions opt, std::string name);
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  [[nodiscard]] bool tracing() const noexcept { return opt_.trace; }
  [[nodiscard]] bool metrics() const noexcept {
    return !opt_.metrics_csv.empty();
  }
  [[nodiscard]] bool reporting() const noexcept {
    return !opt_.report.empty();
  }
  [[nodiscard]] bool topo_reporting() const noexcept {
    return !opt_.topo_report.empty();
  }
  [[nodiscard]] bool active() const noexcept {
    return tracing() || metrics() || reporting() || topo_reporting();
  }

  /// Create the observability handle for one job. Thread-safe in the trivial
  /// way: it mutates nothing in the Session. Returns an inert handle when
  /// neither tracing nor metrics is requested.
  [[nodiscard]] JobObs job() const;

  /// Stream one finished job into the merged outputs. Must be called on the
  /// submitting thread, in submission order (iterate SweepRunner results in
  /// order, exactly as the tables do).
  void collect(JobObs obs, const std::string& label);

  /// Flush and close the outputs (idempotent; the destructor calls it).
  void close();

  /// False once any output failed to open or write (full disk, bad path).
  /// Every failure is also reported on stderr with the offending path; the
  /// tools fold this into their exit status after close(), so a truncated
  /// trace or metrics file can never look like a successful run.
  [[nodiscard]] bool ok() const noexcept { return ok_; }

 private:
  [[nodiscard]] bool trace_as_csv() const;
  [[nodiscard]] std::string trace_path() const;

  SessionOptions opt_;
  std::string name_;
  std::ofstream trace_os_;
  std::ofstream metrics_os_;
  std::ofstream report_os_;
  std::ofstream topo_os_;
  std::ofstream matrix_os_;
  std::unique_ptr<ChromeTraceWriter> writer_;  // JSON mode
  bool trace_header_done_ = false;             // CSV mode
  bool metrics_header_done_ = false;
  bool matrix_header_done_ = false;
  std::uint64_t total_events_ = 0;
  std::uint64_t total_dropped_ = 0;
  std::size_t jobs_collected_ = 0;
  bool closed_ = false;
  bool ok_ = true;
};

}  // namespace ksr::obs
