file(REMOVE_RECURSE
  "CMakeFiles/ksr_nas.dir/bt.cpp.o"
  "CMakeFiles/ksr_nas.dir/bt.cpp.o.d"
  "CMakeFiles/ksr_nas.dir/cg.cpp.o"
  "CMakeFiles/ksr_nas.dir/cg.cpp.o.d"
  "CMakeFiles/ksr_nas.dir/ep.cpp.o"
  "CMakeFiles/ksr_nas.dir/ep.cpp.o.d"
  "CMakeFiles/ksr_nas.dir/ft.cpp.o"
  "CMakeFiles/ksr_nas.dir/ft.cpp.o.d"
  "CMakeFiles/ksr_nas.dir/is.cpp.o"
  "CMakeFiles/ksr_nas.dir/is.cpp.o.d"
  "CMakeFiles/ksr_nas.dir/lu.cpp.o"
  "CMakeFiles/ksr_nas.dir/lu.cpp.o.d"
  "CMakeFiles/ksr_nas.dir/mg.cpp.o"
  "CMakeFiles/ksr_nas.dir/mg.cpp.o.d"
  "CMakeFiles/ksr_nas.dir/sp.cpp.o"
  "CMakeFiles/ksr_nas.dir/sp.cpp.o.d"
  "libksr_nas.a"
  "libksr_nas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ksr_nas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
