file(REMOVE_RECURSE
  "CMakeFiles/ksr_sync.dir/barriers.cpp.o"
  "CMakeFiles/ksr_sync.dir/barriers.cpp.o.d"
  "CMakeFiles/ksr_sync.dir/locks.cpp.o"
  "CMakeFiles/ksr_sync.dir/locks.cpp.o.d"
  "CMakeFiles/ksr_sync.dir/spinlocks.cpp.o"
  "CMakeFiles/ksr_sync.dir/spinlocks.cpp.o.d"
  "libksr_sync.a"
  "libksr_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ksr_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
