
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nas/bt.cpp" "src/nas/CMakeFiles/ksr_nas.dir/bt.cpp.o" "gcc" "src/nas/CMakeFiles/ksr_nas.dir/bt.cpp.o.d"
  "/root/repo/src/nas/cg.cpp" "src/nas/CMakeFiles/ksr_nas.dir/cg.cpp.o" "gcc" "src/nas/CMakeFiles/ksr_nas.dir/cg.cpp.o.d"
  "/root/repo/src/nas/ep.cpp" "src/nas/CMakeFiles/ksr_nas.dir/ep.cpp.o" "gcc" "src/nas/CMakeFiles/ksr_nas.dir/ep.cpp.o.d"
  "/root/repo/src/nas/ft.cpp" "src/nas/CMakeFiles/ksr_nas.dir/ft.cpp.o" "gcc" "src/nas/CMakeFiles/ksr_nas.dir/ft.cpp.o.d"
  "/root/repo/src/nas/is.cpp" "src/nas/CMakeFiles/ksr_nas.dir/is.cpp.o" "gcc" "src/nas/CMakeFiles/ksr_nas.dir/is.cpp.o.d"
  "/root/repo/src/nas/lu.cpp" "src/nas/CMakeFiles/ksr_nas.dir/lu.cpp.o" "gcc" "src/nas/CMakeFiles/ksr_nas.dir/lu.cpp.o.d"
  "/root/repo/src/nas/mg.cpp" "src/nas/CMakeFiles/ksr_nas.dir/mg.cpp.o" "gcc" "src/nas/CMakeFiles/ksr_nas.dir/mg.cpp.o.d"
  "/root/repo/src/nas/sp.cpp" "src/nas/CMakeFiles/ksr_nas.dir/sp.cpp.o" "gcc" "src/nas/CMakeFiles/ksr_nas.dir/sp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/machine/CMakeFiles/ksr_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/sync/CMakeFiles/ksr_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ksr_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ksr_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
