#!/usr/bin/env python3
"""Merge host-side benchmark outputs into one JSON report.

Inputs (all produced by scripts/bench_host.sh):
  --gbench FILE   google-benchmark --benchmark_format=json output
  --host FILE     file containing one "[host] bench=... events_dispatched=...
                  wall_ms=... jobs=..." line (repeatable). An "alias=FILE"
                  form records the entry under "alias" instead of the bench
                  name on the line (used for the --jobs 1 serial baseline,
                  whose bench name collides with the parallel run).
  --campaign SPEC "alias=FILE.jsonl" (repeatable): a `ksrsim campaign` result
                  database (docs/SERVING.md). Folded in as a paper_bench
                  entry whose events_dispatched is the sum over the
                  campaign's jobs — directly comparable to the equivalent
                  direct sweep's fingerprint — plus per-job points keyed
                  <workload>_p<procs>.
  --mode MODE     "quick" or "full" (recorded verbatim)
  --out FILE      where to write the merged JSON

Output schema (BENCH_host.json):
  {
    "mode": "full",
    "host_cores": 8,           # os.cpu_count() on the measuring host
    "microbench": {            # from google-benchmark, one entry per bench
      "BM_EngineEventDispatch": {"items_per_second": ..., "cpu_ns": ...},
      ...
    },
    "paper_bench": {           # from the [host] lines
      "table2_is": {"events_dispatched": ..., "wall_ms": ..., "jobs": ...,
                    "sim_threads": ..., "quanta": ...},
      "table2_is_jobs1": {...},   # serial baseline of the same binary; the
      ...                         # wall_ms ratio is the parallel speedup
      "fig8_scaleout_st1": {...,  # 128/512/1088-cell sharded-directory CG+IS
        "points": {               # per-(kernel, procs) scale-out telemetry
          "cg_p128": {"quanta": ..., "barrier_wait_ppm": ...,
                      "ring_util_ppm_l0": ..., "ring_util_ppm_l1": ...,
                      "hot_shard": ..., "hot_shard_requests": ...},
          ...}},
      "fig8_scaleout_st4": {...}, # ... same machines on 4 engine threads;
                                  # wall_ms ratio = multi-domain speedup
      "fig8_warmstart": {...,     # --warm-start sweep: IS points forked from
        "warm_saved_ms": ...}     # warm-up checkpoints; warm_saved_ms is the
    }                             # wall clock the forks skipped
  }

Only the standard library is used.
"""
from __future__ import annotations

import argparse
import json
import os
import re
import sys

# jobs=, sim_threads=, quanta= and warm_saved_ms= are optional so reports can
# still be built from pre-runner [host] lines (older binaries, older
# branches). warm_saved_ms appears only on --warm-start runs and records the
# wall-clock the checkpoint forks saved (docs/CHECKPOINT.md).
HOST_RE = re.compile(
    r"^\[host\] bench=(\S+) events_dispatched=(\d+) wall_ms=(\d+)"
    r"(?: jobs=(\d+))?(?: sim_threads=(\d+))?(?: quanta=(\d+))?"
    r"(?: warm_saved_ms=(\d+))?\s*$"
)

# Per-point scale-out telemetry (bench_fig8_speedup --scale-out): one line
# per (kernel, procs) with the quantum-barrier wait fraction (host wall
# clock, ppm), peak per-level ring utilization (simulated, ppm) and the
# hottest directory shard. hot_shard is -1 on single-leaf points.
POINT_RE = re.compile(
    r"^\[host\] point bench=(\S+) kernel=(\S+) procs=(\d+) quanta=(\d+)"
    r" barrier_wait_ppm=(\d+) ring_util_ppm_l0=(\d+) ring_util_ppm_l1=(\d+)"
    r" hot_shard=(-?\d+) hot_shard_requests=(\d+)\s*$"
)


def parse_gbench(path: str) -> dict:
    try:
        with open(path, encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        raise SystemExit(f"report.py: bad google-benchmark json {path}: {e}")
    benchmarks = data.get("benchmarks")
    if not isinstance(benchmarks, list):
        raise SystemExit(
            f"report.py: {path}: no 'benchmarks' array — not a "
            f"google-benchmark --benchmark_format=json file?")
    out = {}
    for b in benchmarks:
        if b.get("run_type") == "aggregate":
            continue
        name = b.get("name")
        if name is None:
            # Fail with the offending entry rather than a bare KeyError
            # stack trace: a truncated or hand-edited baseline should say
            # which record is broken.
            raise SystemExit(
                f"report.py: {path}: benchmark entry missing the 'name' "
                f"key: {json.dumps(b)[:200]}")
        out[name] = entry = {"cpu_ns": b.get("cpu_time")}
        if "items_per_second" in b:
            entry["items_per_second"] = b["items_per_second"]
    return out


def parse_host(spec: str) -> dict:
    alias, sep, path = spec.partition("=")
    if not sep:
        alias, path = "", spec
    entry = None
    name = None
    points = {}
    with open(path, encoding="utf-8") as f:
        for line in f:
            m = POINT_RE.match(line.strip())
            if m:
                points[f"{m.group(2)}_p{m.group(3)}"] = {
                    "quanta": int(m.group(4)),
                    "barrier_wait_ppm": int(m.group(5)),
                    "ring_util_ppm_l0": int(m.group(6)),
                    "ring_util_ppm_l1": int(m.group(7)),
                    "hot_shard": int(m.group(8)),
                    "hot_shard_requests": int(m.group(9)),
                }
                continue
            m = HOST_RE.match(line.strip())
            if m and entry is None:
                name = alias or m.group(1)
                entry = {
                    "events_dispatched": int(m.group(2)),
                    "wall_ms": int(m.group(3)),
                }
                if m.group(4) is not None:
                    entry["jobs"] = int(m.group(4))
                if m.group(5) is not None:
                    entry["sim_threads"] = int(m.group(5))
                if m.group(6) is not None:
                    entry["quanta"] = int(m.group(6))
                if m.group(7) is not None:
                    entry["warm_saved_ms"] = int(m.group(7))
    if entry is None:
        raise SystemExit(f"report.py: no [host] line found in {path}")
    if points:
        entry["points"] = points
    return {name: entry}


def parse_campaign(spec: str) -> dict:
    alias, sep, path = spec.partition("=")
    if not sep:
        raise SystemExit(
            f"report.py: --campaign needs alias=FILE.jsonl, got '{spec}'")
    total_events = 0
    jobs = 0
    points = {}
    try:
        with open(path, encoding="utf-8") as f:
            for n, line in enumerate(f, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except json.JSONDecodeError as e:
                    raise SystemExit(
                        f"report.py: {path}:{n}: bad campaign record: {e}")
                result = rec.get("result")
                if not isinstance(result, dict):
                    # Failed jobs carry an "error" member instead; a report
                    # built from a half-failed campaign would be misleading.
                    raise SystemExit(
                        f"report.py: {path}:{n}: job has no result "
                        f"({rec.get('error', 'missing result object')})")
                spec_obj = rec.get("spec", {})
                jobs += 1
                events = int(result.get("events_dispatched", 0))
                total_events += events
                key = f"{spec_obj.get('workload')}_p{spec_obj.get('procs')}"
                points[key] = {
                    "events_dispatched": events,
                    "seconds": result.get("seconds"),
                    "cache_key": rec.get("key"),
                }
    except OSError as e:
        raise SystemExit(f"report.py: cannot read campaign db {path}: {e}")
    if jobs == 0:
        raise SystemExit(f"report.py: no campaign records in {path}")
    return {alias: {"events_dispatched": total_events, "jobs": jobs,
                    "points": points}}


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--gbench", required=True)
    ap.add_argument("--host", action="append", default=[])
    ap.add_argument("--campaign", action="append", default=[])
    ap.add_argument("--mode", default="full")
    ap.add_argument("--out", required=True)
    args = ap.parse_args()

    report = {"mode": args.mode, "host_cores": os.cpu_count(),
              "microbench": parse_gbench(args.gbench), "paper_bench": {}}
    for path in args.host:
        report["paper_bench"].update(parse_host(path))
    for spec in args.campaign:
        report["paper_bench"].update(parse_campaign(spec))

    with open(args.out, "w", encoding="utf-8") as f:
        json.dump(report, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"report.py: {len(report['microbench'])} microbenches, "
          f"{len(report['paper_bench'])} paper benches -> {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
