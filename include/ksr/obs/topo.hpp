#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

// Topology-aware scale-out observability (docs/OBSERVABILITY.md).
//
// A topo::Snapshot is the machine's answer to "where does the hierarchy
// saturate?": per-level ring utilization, the leaf-to-leaf traffic matrix,
// per-home-leaf directory-shard pressure, and per-(src,dst)-domain boundary
// channel statistics. Every field is integer simulated data — counters the
// machine increments deterministically — so the rendered report is
// byte-identical across hosts, `--jobs` and `--sim-threads` values.
//
// Host wall-clock numbers (the parallel self-profiler) deliberately live
// elsewhere (sim::ParallelEngine::HostProfile → the [host] stderr line and
// BENCH_host.json): they vary run to run and must never enter these
// byte-stable files.
namespace ksr::obs::topo {

/// One slotted ring's lifetime counters. `busy_slot_ns` is the integral of
/// in-flight packets over simulated time (slot·ns), so
/// busy_slot_ns / (slots · elapsed_ns) is the mean slot utilization.
struct RingUse {
  std::string name;                  // "ring0.3", "ring:1"
  unsigned level = 0;                // 0 = leaf ring, 1 = ARD ring
  std::uint64_t slots = 0;           // slot_count()
  std::uint64_t packets = 0;
  std::uint64_t retries = 0;
  std::uint64_t inject_wait_ns = 0;
  std::uint64_t busy_slot_ns = 0;    // ∫ in_flight dt
  std::uint64_t elapsed_ns = 0;      // engine now() at snapshot
};

/// One home-leaf directory shard's request counters plus its hottest
/// sub-pages (sorted by count descending, sub-page id ascending).
struct ShardUse {
  unsigned home_leaf = 0;
  std::uint64_t requests = 0;   // decide/commit entries routed to this shard
  std::uint64_t grants = 0;
  std::uint64_t nacks = 0;
  std::uint64_t busy_ns = 0;    // simulated ns entries spent busy (mode B)
  std::vector<std::pair<std::uint64_t, std::uint64_t>> hot;  // (subpage, n)
};

/// One boundary channel's per-quantum delivery profile. The slack histogram
/// buckets (packet delivery time − merge horizon) in units of the quantum:
/// bucket 0 = lands in the very next quantum, bucket 7 = ≥7 quanta out.
struct ChannelUse {
  unsigned src = 0;
  unsigned dst = 0;
  std::uint64_t packets = 0;
  std::uint64_t max_per_quantum = 0;
  std::array<std::uint64_t, 8> slack_hist{};
};

struct Snapshot {
  unsigned leaves = 0;
  unsigned domains = 1;
  unsigned cells_per_leaf = 0;
  std::uint64_t quantum_ns = 0;
  std::uint64_t quanta = 0;            // conservative-quantum barriers crossed
  std::uint64_t boundary_packets = 0;  // total cross-domain packets merged
  std::vector<RingUse> rings;
  std::vector<std::uint64_t> traffic;  // leaves × leaves, row-major src→dst
  std::vector<ShardUse> shards;
  std::vector<ChannelUse> channels;

  [[nodiscard]] std::uint64_t traffic_at(unsigned src, unsigned dst) const {
    return traffic[static_cast<std::size_t>(src) * leaves + dst];
  }
};

/// Mean slot utilization in parts per million: busy_slot_ns · 10^6 /
/// (slots · elapsed_ns), computed in 128-bit integer math (a 1088-cell full
/// run overflows u64 at the multiply).
[[nodiscard]] std::uint64_t util_ppm(const RingUse& r) noexcept;

/// Peak utilization (ppm) across all rings of `level`; 0 if none.
[[nodiscard]] std::uint64_t peak_util_ppm(const Snapshot& s, unsigned level);

/// The shard with the most requests (ties: lowest home leaf); nullptr when
/// the snapshot carries no shard data.
[[nodiscard]] const ShardUse* hottest_shard(const Snapshot& s);

/// Byte-stable plain-text report: topology header, per-level ring table,
/// shard table (top sub-pages inline), boundary-channel table, and a
/// condensed traffic summary. Integer math only.
void write_report(std::ostream& os, const Snapshot& s);

/// Long-format heatmap CSV (`src_leaf,dst_leaf,packets`, non-zero cells
/// only), with an optional leading `job` label column for merged sweeps.
void write_matrix_csv(std::ostream& os, const Snapshot& s,
                      const std::string& job_label = {});

/// Header line for a merged matrix CSV (written once per file).
void write_matrix_csv_header(std::ostream& os, bool with_job_column);

}  // namespace ksr::obs::topo
