#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "ksr/machine/machine.hpp"
#include "ksr/net/butterfly.hpp"

// The BBN-Butterfly-like machine of §3.2.3: processors reach interleaved
// memory modules through a multistage network with parallel paths, but there
// are *no coherent caches* — every reference to shared data is a network
// round trip to the address's home module (references into the local module
// are cheap). Spinning on one global flag therefore hammers one module
// (tree saturation), which is why dissemination — whose flags live in each
// spinner's own module — wins on this machine.
namespace ksr::machine {

class ButterflyMachine final : public Machine {
 public:
  explicit ButterflyMachine(const MachineConfig& cfg);
  ~ButterflyMachine() override;

  [[nodiscard]] cache::PerfMonitor& cell_pmon(unsigned cell) override {
    return cells_[cell].pmon;
  }

  [[nodiscard]] net::Butterfly& network() noexcept { return *net_; }

  /// Home memory module of an address: honoring Placement::kBlocked regions,
  /// otherwise page-interleaved across modules.
  [[nodiscard]] unsigned home_of(mem::Sva a) const noexcept;

 protected:
  std::unique_ptr<Cpu> make_cpu(unsigned cell) override;
  void register_region(const mem::Region& region, const Placement& p) override;

 private:
  friend class ButterflyCpu;

  struct Cell {
    cache::PerfMonitor pmon;
    sim::Rng prog_rng;
    explicit Cell(std::uint64_t seed) : prog_rng(seed) {}
  };

  struct PlacedRegion {
    mem::Sva base = 0;
    mem::Sva end = 0;
    Placement placement;
  };

  std::unique_ptr<net::Butterfly> net_;
  std::vector<Cell> cells_;
  std::vector<PlacedRegion> blocked_regions_;
  // Home-module lock words for get_subpage emulation (atomic ops are
  // performed at the memory module on the Butterfly).
  std::unordered_map<mem::SubPageId, std::uint8_t> locked_;
};

}  // namespace ksr::machine
