// Unit tests for the memory substrate (geometry, heap, shared arrays) and
// the small sim utilities (rng determinism, stats accumulators).
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "ksr/mem/geometry.hpp"
#include "ksr/mem/heap.hpp"
#include "ksr/sim/rng.hpp"
#include "ksr/sim/stats.hpp"
#include "ksr/sim/time.hpp"

namespace ksr {
namespace {

// ------------------------------------------------------------ geometry ----

TEST(Geometry, UnitSizesMatchTheRealMachine) {
  EXPECT_EQ(mem::kSubPageBytes, 128u);
  EXPECT_EQ(mem::kPageBytes, 16384u);
  EXPECT_EQ(mem::kSubBlockBytes, 64u);
  EXPECT_EQ(mem::kBlockBytes, 2048u);
  EXPECT_EQ(mem::kSubPagesPerPage, 128u);
  EXPECT_EQ(mem::kSubBlocksPerBlock, 32u);
}

TEST(Geometry, IdMappingsAreConsistent) {
  const mem::Sva a = 3 * mem::kPageBytes + 5 * mem::kSubPageBytes + 17;
  EXPECT_EQ(mem::page_of(a), 3u);
  EXPECT_EQ(mem::subpage_of(a), 3u * 128 + 5);
  EXPECT_EQ(mem::page_of_subpage(mem::subpage_of(a)), mem::page_of(a));
  EXPECT_EQ(mem::subpage_base(mem::subpage_of(a)) + 17 % 128,
            a - (17 - 17 % 128));
}

TEST(Geometry, SubringInterleavesAlternateSubpages) {
  EXPECT_NE(mem::subring_of(0), mem::subring_of(1));
  EXPECT_EQ(mem::subring_of(0), mem::subring_of(2));
}

// ---------------------------------------------------------------- heap ----

TEST(Heap, AllocationsArePageAlignedAndDisjoint) {
  mem::Heap heap;
  const auto& r1 = heap.alloc(100, "a");
  const auto& r2 = heap.alloc(20000, "b");
  EXPECT_EQ(r1.base % mem::kPageBytes, 0u);
  EXPECT_EQ(r2.base % mem::kPageBytes, 0u);
  EXPECT_GE(r2.base, r1.base + r1.bytes);
  EXPECT_EQ(r1.bytes, mem::kPageBytes);      // rounded up
  EXPECT_EQ(r2.bytes, 2 * mem::kPageBytes);  // 20000 -> 32768
}

TEST(Heap, AddressZeroStaysUnmapped) {
  mem::Heap heap;
  const auto& r = heap.alloc(8, "a");
  EXPECT_GE(r.base, mem::kPageBytes);
  EXPECT_THROW((void)heap.region_of(0), std::out_of_range);
}

TEST(Heap, RegionLookupFindsOwner) {
  mem::Heap heap;
  const auto& r1 = heap.alloc(100, "alpha");
  (void)heap.alloc(100, "beta");
  EXPECT_EQ(heap.region_of(r1.base + 50).name, "alpha");
}

TEST(Heap, RegionLookupBoundaryAddresses) {
  mem::Heap heap;
  const auto& a = heap.alloc(1, "a");
  const auto& b = heap.alloc(3 * mem::kPageBytes, "b");
  const auto& c = heap.alloc(10, "c");
  // First and last byte of every region resolve to that region.
  EXPECT_EQ(&heap.region_of(a.base), &a);
  EXPECT_EQ(&heap.region_of(a.base + a.bytes - 1), &a);
  EXPECT_EQ(&heap.region_of(b.base), &b);
  EXPECT_EQ(&heap.region_of(b.base + b.bytes - 1), &b);
  EXPECT_EQ(&heap.region_of(c.base), &c);
  EXPECT_EQ(&heap.region_of(c.base + c.bytes - 1), &c);
  // Bump allocation: one past a region's end is the next region's base;
  // past the high-water mark is unmapped.
  EXPECT_EQ(&heap.region_of(a.base + a.bytes), &b);
  EXPECT_THROW((void)heap.region_of(c.base + c.bytes), std::out_of_range);
  // The guard page below the first region stays unmapped.
  EXPECT_THROW((void)heap.region_of(a.base - 1), std::out_of_range);
}

TEST(Heap, RegionLookupBinarySearchOverManyRegions) {
  mem::Heap heap;
  std::vector<const mem::Region*> regions;
  for (int i = 0; i < 100; ++i) {
    regions.push_back(&heap.alloc(1 + static_cast<std::size_t>(i) * 57,
                                  "r" + std::to_string(i)));
  }
  for (const mem::Region* r : regions) {
    EXPECT_EQ(&heap.region_of(r->base), r);
    EXPECT_EQ(&heap.region_of(r->base + r->bytes / 2), r);
    EXPECT_EQ(&heap.region_of(r->base + r->bytes - 1), r);
  }
}

TEST(SharedArray, ValueRoundTrip) {
  mem::Heap heap;
  const auto& r = heap.alloc(64 * sizeof(double), "v");
  mem::SharedArray<double> arr(r, 64);
  arr.set_value(7, 2.5);
  EXPECT_DOUBLE_EQ(arr.value(7), 2.5);
  EXPECT_EQ(arr.addr(7), r.base + 7 * sizeof(double));
  EXPECT_EQ(arr.size(), 64u);
  EXPECT_TRUE(arr.valid());
  EXPECT_FALSE(mem::SharedArray<double>{}.valid());
}

TEST(SharedArray, OversizedViewRejected) {
  mem::Heap heap;
  const auto& r = heap.alloc(16, "v");  // rounds to one page
  EXPECT_THROW((mem::SharedArray<double>(r, 3000)), std::length_error);
}

TEST(SharedArray, ZeroInitialized) {
  mem::Heap heap;
  const auto& r = heap.alloc(8 * sizeof(std::uint64_t), "z");
  mem::SharedArray<std::uint64_t> arr(r, 8);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(arr.value(i), 0u);
}

// ----------------------------------------------------------------- rng ----

TEST(Rng, DeterministicForEqualSeeds) {
  sim::Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  sim::Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange) {
  sim::Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.below(13), 13u);
  }
}

TEST(Rng, UniformCoversUnitIntervalRoughly) {
  sim::Rng r(9);
  double lo = 1.0, hi = 0.0, sum = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double u = r.uniform();
    lo = std::min(lo, u);
    hi = std::max(hi, u);
    sum += u;
  }
  EXPECT_LT(lo, 0.01);
  EXPECT_GT(hi, 0.99);
  EXPECT_NEAR(sum / kN, 0.5, 0.02);
}

// --------------------------------------------------------------- stats ----

TEST(RunningStat, MeanVarianceMinMax) {
  sim::RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Samples, QuantilesOnSortedCopy) {
  sim::Samples s;
  for (int i = 100; i >= 1; --i) s.add(i);
  EXPECT_DOUBLE_EQ(s.median(), 50.5);  // interpolated between 50 and 51
  EXPECT_GE(s.quantile(0.99), 99.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
}

TEST(Time, ConversionsExact) {
  EXPECT_DOUBLE_EQ(sim::to_seconds(1'000'000'000ull), 1.0);
  EXPECT_EQ(sim::usec(3), 3000u);
  EXPECT_EQ(sim::msec(2), 2'000'000u);
}

}  // namespace
}  // namespace ksr
