// Correctness of the NAS kernels on the simulated machine: EP matches the
// serial reference bit-for-bit for every processor count; CG converges to
// the reference residual; IS produces a valid sorted ranking; SP's checksum
// is invariant across layouts, optimizations and processor counts.
#include <gtest/gtest.h>

#include <cmath>

#include "ksr/machine/ksr_machine.hpp"
#include "ksr/nas/cg.hpp"
#include "ksr/nas/ep.hpp"
#include "ksr/nas/is.hpp"
#include "ksr/nas/sp.hpp"

namespace ksr::nas {
namespace {

using machine::KsrMachine;
using machine::MachineConfig;

// ---------------------------------------------------------------- EP ----

class EpAnyProcs : public testing::TestWithParam<unsigned> {};

TEST_P(EpAnyProcs, MatchesSerialReference) {
  EpConfig cfg;
  cfg.log2_pairs = 10;
  const EpResult ref = ep_reference(cfg);
  KsrMachine m(MachineConfig::ksr1(GetParam()));
  const EpResult got = run_ep(m, cfg);
  // Integer tallies are exact; the sums differ only by the reduction's
  // floating-point association across chunks.
  EXPECT_NEAR(got.sum_x, ref.sum_x, 1e-12 * std::fabs(ref.sum_x) + 1e-12);
  EXPECT_NEAR(got.sum_y, ref.sum_y, 1e-12 * std::fabs(ref.sum_y) + 1e-12);
  EXPECT_EQ(got.accepted, ref.accepted);
  EXPECT_EQ(got.annulus_counts, ref.annulus_counts);
  EXPECT_GT(got.seconds, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Procs, EpAnyProcs, testing::Values(1u, 2u, 3u, 8u));

TEST(Ep, ScalesNearlyLinearly) {
  EpConfig cfg;
  cfg.log2_pairs = 12;
  auto time_at = [&](unsigned p) {
    KsrMachine m(MachineConfig::ksr1(p));
    return run_ep(m, cfg).seconds;
  };
  const double t1 = time_at(1);
  const double t8 = time_at(8);
  const double s8 = t1 / t8;
  EXPECT_GT(s8, 6.5);  // paper: linear speedup
  EXPECT_LE(s8, 8.5);
}

// ---------------------------------------------------------------- CG ----

TEST(Cg, GeneratorBuildsSymmetricDiagonallyDominantSystem) {
  CgConfig cfg;
  cfg.n = 200;
  cfg.nnz_per_row = 9;
  const SparseSystem s = make_sparse_system(cfg);
  ASSERT_EQ(s.row_start.size(), cfg.n + 1);
  // Column indices in range, rows sorted, diagonal present and dominant.
  for (std::size_t i = 0; i < s.n; ++i) {
    double diag = 0, off = 0;
    for (std::size_t k = s.row_start[i]; k < s.row_start[i + 1]; ++k) {
      ASSERT_LT(s.col_index[k], s.n);
      if (k > s.row_start[i]) {
        EXPECT_LT(s.col_index[k - 1], s.col_index[k]);
      }
      if (s.col_index[k] == i) {
        diag = s.values[k];
      } else {
        off += std::fabs(s.values[k]);
      }
    }
    EXPECT_GT(diag, off);  // strict dominance => SPD
  }
}

TEST(Cg, ReferenceResidualDecreasesMonotonically) {
  CgConfig cfg;
  cfg.n = 300;
  cfg.iterations = 6;
  const CgResult r = cg_reference(cfg);
  EXPECT_LT(r.final_residual, r.initial_residual * 1e-2);
}

class CgAnyProcs : public testing::TestWithParam<unsigned> {};

TEST_P(CgAnyProcs, SimulatedRunMatchesReference) {
  CgConfig cfg;
  cfg.n = 300;
  cfg.nnz_per_row = 7;
  cfg.iterations = 4;
  const CgResult ref = cg_reference(cfg);
  KsrMachine m(MachineConfig::ksr1(GetParam()).scaled_by(64));
  const CgResult got = run_cg(m, cfg);
  // Same arithmetic in the same order: results agree to rounding.
  EXPECT_NEAR(got.final_residual, ref.final_residual,
              1e-9 * ref.initial_residual);
  EXPECT_GT(got.seconds, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Procs, CgAnyProcs, testing::Values(1u, 2u, 4u, 8u));

TEST(Cg, ColumnFormatNeedsLocksButGetsSameAnswer) {
  CgConfig cfg;
  cfg.n = 120;
  cfg.nnz_per_row = 5;
  cfg.iterations = 2;
  const CgResult ref = cg_reference(cfg);
  cfg.format = SparseFormat::kColumnMajor;
  KsrMachine m(MachineConfig::ksr1(4).scaled_by(64));
  const CgResult got = run_cg(m, cfg);
  // Scatter order differs => only approximate agreement.
  EXPECT_NEAR(got.final_residual, ref.final_residual,
              1e-6 * ref.initial_residual);
  EXPECT_GT(m.cell_pmon(1).atomic_retries + m.cell_pmon(1).ring_nacks +
                m.cell_pmon(0).ring_requests,
            0u);
}

// ---------------------------------------------------------------- IS ----

class IsAnyProcs : public testing::TestWithParam<unsigned> {};

TEST_P(IsAnyProcs, RanksFormASortedPermutation) {
  IsConfig cfg;
  cfg.log2_keys = 10;
  cfg.log2_buckets = 6;
  KsrMachine m(MachineConfig::ksr1(GetParam()).scaled_by(64));
  const IsResult r = run_is(m, cfg);
  EXPECT_TRUE(r.ranks_valid);
  EXPECT_GT(r.seconds, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Procs, IsAnyProcs, testing::Values(1u, 2u, 3u, 8u));

TEST(Is, SerialPhaseGrowsWithProcessors) {
  IsConfig cfg;
  cfg.log2_keys = 11;
  cfg.log2_buckets = 7;
  auto serial_at = [&](unsigned p) {
    KsrMachine m(MachineConfig::ksr1(p).scaled_by(64));
    return run_is(m, cfg).serial_phase_seconds;
  };
  // Phase 4 accumulates one partial sum per processor, fetched remotely.
  EXPECT_GT(serial_at(8), serial_at(2));
}

// ---------------------------------------------------------------- SP ----

TEST(Sp, ChecksumInvariantAcrossLayoutAndProcs) {
  SpConfig cfg;
  cfg.n = 8;
  cfg.iterations = 2;
  double expect = 0;
  {
    KsrMachine m(MachineConfig::ksr1(1).scaled_by(16));
    expect = run_sp(m, cfg).checksum;
  }
  for (unsigned p : {2u, 4u}) {
    for (bool padded : {false, true}) {
      for (bool pf : {false, true}) {
        SpConfig c = cfg;
        c.padded_layout = padded;
        c.use_prefetch = pf;
        KsrMachine m(MachineConfig::ksr1(p).scaled_by(16));
        EXPECT_NEAR(run_sp(m, c).checksum, expect, 1e-9)
            << "p=" << p << " padded=" << padded << " prefetch=" << pf;
      }
    }
  }
}

TEST(Sp, PaddedLayoutAvoidsSubcacheThrash) {
  SpConfig cfg;
  cfg.n = 16;  // 16^3 doubles = 32 KB per array: way-span aligned when scaled
  cfg.iterations = 1;
  auto run_with = [&](bool padded) {
    SpConfig c = cfg;
    c.padded_layout = padded;
    KsrMachine m(MachineConfig::ksr1(4).scaled_by(16));
    run_sp(m, c);
    std::uint64_t allocs = 0;
    for (unsigned i = 0; i < 4; ++i) {
      allocs += m.cell_pmon(i).subcache_block_allocs;
    }
    return allocs;
  };
  const auto base = run_with(false);
  const auto padded = run_with(true);
  EXPECT_LT(padded, base) << "padding should reduce sub-cache block churn";
}

}  // namespace
}  // namespace ksr::nas
