file(REMOVE_RECURSE
  "CMakeFiles/test_nas_bt.dir/test_nas_bt.cpp.o"
  "CMakeFiles/test_nas_bt.dir/test_nas_bt.cpp.o.d"
  "test_nas_bt"
  "test_nas_bt.pdb"
  "test_nas_bt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nas_bt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
