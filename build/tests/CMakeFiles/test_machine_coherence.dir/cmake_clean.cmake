file(REMOVE_RECURSE
  "CMakeFiles/test_machine_coherence.dir/test_machine_coherence.cpp.o"
  "CMakeFiles/test_machine_coherence.dir/test_machine_coherence.cpp.o.d"
  "test_machine_coherence"
  "test_machine_coherence.pdb"
  "test_machine_coherence[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_machine_coherence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
