#pragma once

#include <cstdint>
#include <string_view>

// Coherence states of a sub-page in a local cache (paper §2): the ALLCACHE
// invalidation protocol keeps each 128-byte sub-page in one of four states.
// Atomic is Exclusive plus a lock bit: a get_subpage request succeeds only if
// no cache currently holds the sub-page Atomic.
namespace ksr::cache {

enum class LineState : std::uint8_t {
  kInvalid,    // placeholder: page frame allocated, data not valid
  kShared,     // one of possibly many read copies
  kExclusive,  // only copy, writable
  kAtomic,     // exclusive + locked by get_subpage
};

[[nodiscard]] constexpr bool readable(LineState s) noexcept {
  return s != LineState::kInvalid;
}
[[nodiscard]] constexpr bool writable(LineState s) noexcept {
  return s == LineState::kExclusive || s == LineState::kAtomic;
}

[[nodiscard]] constexpr std::string_view to_string(LineState s) noexcept {
  switch (s) {
    case LineState::kInvalid: return "Invalid";
    case LineState::kShared: return "Shared";
    case LineState::kExclusive: return "Exclusive";
    case LineState::kAtomic: return "Atomic";
  }
  return "?";
}

}  // namespace ksr::cache
