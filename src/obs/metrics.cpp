#include "ksr/obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <string>

namespace ksr::obs {

cache::PerfMonitor MetricsRegistry::aggregate(machine::Machine& m) {
  cache::PerfMonitor total;
  for (unsigned c = 0; c < m.nproc(); ++c) total.add(m.cell_pmon(c));
  return total;
}

void MetricsRegistry::sample_now() {
  MetricsSample s;
  s.t = machine_->engine().now();
  s.pmon = aggregate(*machine_);
  s.net = machine_->net_snapshot();
  samples_.push_back(s);
}

void MetricsRegistry::arm() {
  machine_->engine().observe_in(period_, [this] {
    sample_now();
    arm();
  });
}

void MetricsRegistry::sample_domain(unsigned d) {
  MetricsSample s;
  s.t = machine_->engine_of(d).now();
  s.domain = d;
  for (unsigned c = 0; c < machine_->nproc(); ++c) {
    if (machine_->domain_of_cell(c) == d) s.pmon.add(machine_->cell_pmon(c));
  }
  s.net = machine_->net_snapshot_of(d);
  domain_samples_[d].push_back(s);
}

void MetricsRegistry::arm_domain(unsigned d) {
  machine_->engine_of(d).observe_in(period_, [this, d] {
    sample_domain(d);
    arm_domain(d);
  });
}

void MetricsRegistry::attach(machine::Machine& m, sim::Duration period_ns) {
  machine_ = &m;
  period_ = period_ns ? period_ns : kDefaultPeriodNs;
  if (m.multi_domain()) {
    // Mode B: one observer chain per domain, on that domain's engine,
    // reading only domain-owned state (its cells' pmon, its rings). Each
    // chain is deterministic on the simulated clock; finish() merges the
    // per-domain series in (time, domain) order.
    multi_ = true;
    domains_ = m.domains();
    domain_samples_.assign(domains_, {});
    for (unsigned d = 0; d < domains_; ++d) arm_domain(d);
    return;
  }
  arm();
}

void MetricsRegistry::finish() {
  if (machine_ == nullptr) return;
  if (!multi_) {
    if (samples_.empty() || samples_.back().t != machine_->engine().now()) {
      sample_now();
    }
    return;
  }
  // Tail sample per domain (the observer lane drops samples past a
  // domain's last event), then the (time, domain)-ordered merge.
  for (unsigned d = 0; d < domains_; ++d) {
    if (domain_samples_[d].empty() ||
        domain_samples_[d].back().t != machine_->engine_of(d).now()) {
      sample_domain(d);
    }
  }
  samples_.clear();
  for (const auto& ds : domain_samples_) {
    samples_.insert(samples_.end(), ds.begin(), ds.end());
  }
  std::stable_sort(samples_.begin(), samples_.end(),
                   [](const MetricsSample& a, const MetricsSample& b) {
                     return a.t != b.t ? a.t < b.t : a.domain < b.domain;
                   });
}

void MetricsRegistry::write_csv(std::ostream& os, std::string_view label,
                                bool header) const {
  if (header) {
    if (!label.empty()) os << "job,";
    os << "time_ns,";
    if (multi_) os << "domain,";
    os << "slot_util,d_ring_requests,d_ring_nacks,nack_rate,"
          "d_inject_wait_ns,wait_per_req_ns,d_localcache_misses,"
          "d_invalidations,d_snarfs\n";
  }
  // One delta lane per domain (mode A only ever touches lane 0): every
  // sample covers one domain's counters, so deltas are per-domain too.
  std::vector<cache::PerfMonitor> prev_pmon(multi_ ? domains_ : 1);
  std::vector<machine::NetSnapshot> prev_net(multi_ ? domains_ : 1);
  char buf[64];
  auto ratio = [&buf](std::uint64_t num, std::uint64_t den) {
    std::snprintf(buf, sizeof buf, "%.6f",
                  den ? static_cast<double>(num) / static_cast<double>(den)
                      : 0.0);
    return std::string(buf);
  };
  for (const MetricsSample& s : samples_) {
    cache::PerfMonitor& pp = prev_pmon[multi_ ? s.domain : 0];
    machine::NetSnapshot& pn = prev_net[multi_ ? s.domain : 0];
    const std::uint64_t d_req = s.pmon.ring_requests - pp.ring_requests;
    const std::uint64_t d_nack = s.pmon.ring_nacks - pp.ring_nacks;
    const sim::Duration d_wait = s.net.inject_wait_ns - pn.inject_wait_ns;
    if (!label.empty()) os << label << ',';
    os << s.t << ',';
    if (multi_) os << s.domain << ',';
    os << ratio(s.net.in_flight, s.net.slots) << ',' << d_req
       << ',' << d_nack << ',' << ratio(d_nack, d_req) << ',' << d_wait << ','
       << ratio(d_wait, d_req) << ','
       << s.pmon.localcache_misses - pp.localcache_misses << ','
       << s.pmon.invalidations_received - pp.invalidations_received
       << ',' << s.pmon.snarfs - pp.snarfs << '\n';
    pp = s.pmon;
    pn = s.net;
  }
}

}  // namespace ksr::obs
