// Reproduces the EP result of §3.3: "Our implementation showed linear
// speedup", with a sustained-MFLOPS estimate per processor (the paper quotes
// ~11 MFlops/cell for EP against the 40 MFlops peak).
#include "bench_common.hpp"
#include "ksr/machine/ksr_machine.hpp"
#include "ksr/nas/ep.hpp"

int main(int argc, char** argv) {
  using namespace ksr;         // NOLINT
  using namespace ksr::bench;  // NOLINT

  const BenchOptions opt = BenchOptions::parse(argc, argv);
  obs::Session session = make_obs_session(opt, "sec33_ep");
  print_header("Embarrassingly Parallel kernel scalability",
               "Section 3.3 (EP), first paragraph");

  nas::EpConfig cfg;
  cfg.log2_pairs = opt.quick ? 12 : 15;
  // ~50 FP operations per generated pair (transform + tally), matching the
  // instruction mix that sustains ~11 of the 40 peak MFlops per cell.
  constexpr double kFlopsPerPair = 50.0;

  const nas::EpResult ref = nas::ep_reference(cfg);

  const std::vector<unsigned> procs =
      opt.quick ? std::vector<unsigned>{1, 4, 16}
                : std::vector<unsigned>{1, 2, 4, 8, 16, 32};

  TextTable t({"Processors", "Time (s)", "Speedup", "Efficiency",
               "MFLOPS/cell", "bit-identical"});
  std::vector<std::pair<unsigned, double>> measured;
  for (unsigned p : procs) {
    machine::KsrMachine m(machine::MachineConfig::ksr1(p));
    ScopedObs obs(session, m, "ep p=" + std::to_string(p));
    const nas::EpResult r = run_ep(m, cfg);
    measured.emplace_back(p, r.seconds);
    const bool same = r.accepted == ref.accepted &&
                      r.annulus_counts == ref.annulus_counts;
    const double mflops = static_cast<double>(1ull << cfg.log2_pairs) *
                          kFlopsPerPair / r.seconds / p / 1e6;
    const auto& row = study::scaling_rows(measured).back();
    t.add_row({std::to_string(p), TextTable::num(r.seconds, 5),
               TextTable::num(row.speedup, 3),
               p == 1 ? "-" : TextTable::num(row.efficiency, 3),
               TextTable::num(mflops, 1), same ? "yes" : "NO!"});
  }
  if (opt.csv) {
    t.print_csv();
  } else {
    t.print();
    std::cout << "\nPaper: linear speedup ('this result was not surprising'),\n"
                 "~11 MFlops sustained per 40-MFlops cell.\n";
  }
  return 0;
}
