#include "ksr/machine/coherent_machine.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <string>
#include <utility>

#include "ksr/check/checker.hpp"

namespace ksr::machine {

namespace {
[[nodiscard]] constexpr std::uint64_t bit(unsigned cell) noexcept {
  return 1ull << cell;
}
}  // namespace

// ---------------------------------------------------------------------------
// CoherentCpu: the per-cell timing front end shared by KSR and Symmetry.
// ---------------------------------------------------------------------------

class CoherentCpu final : public Cpu {
 public:
  CoherentCpu(CoherentMachine& m, unsigned cell)
      : Cpu(m, cell, m.cells_[cell].pmon, m.cells_[cell].prog_rng), cm_(m) {}

 protected:
  void access(mem::Sva a, std::size_t bytes, Op op) override {
    const mem::Sva end = a + (bytes == 0 ? 1 : bytes);
    mem::Sva p = a;
    while (p < end) {
      access_one(p, op);
      p = (p / mem::kSubBlockBytes + 1) * mem::kSubBlockBytes;
    }
  }

  void do_get_subpage(mem::Sva a) override;
  void do_release_subpage(mem::Sva a) override;
  void do_prefetch(mem::Sva a, bool exclusive) override;
  void do_post_store(mem::Sva a) override;

 private:
  using Acquire = CoherentMachine::Acquire;

  [[nodiscard]] CoherentMachine::Cell& cell() noexcept {
    return cm_.cells_[id_];
  }
  [[nodiscard]] const MachineConfig& cfg() const noexcept {
    return machine_.config();
  }

  void access_one(mem::Sva a, Op op);
  void load_line(mem::SubPageId sp, bool need_write, std::uint32_t witness);
  void remote_acquire(mem::SubPageId sp, Acquire kind, std::uint32_t witness);

  /// Trace witness for a demand access: 1 + byte offset within the sub-page
  /// (0 is reserved for "no witness", e.g. prefetch).
  [[nodiscard]] static constexpr std::uint32_t witness_of(mem::Sva a) noexcept {
    return 1u + static_cast<std::uint32_t>(a % mem::kSubPageBytes);
  }
  sim::Duration transport_round_trip(mem::SubPageId sp, unsigned target_leaf);
  void fill_subcache(mem::Sva a);

  CoherentMachine& cm_;

  // One-entry MRU in front of the sub-cache hit check: remembers the last
  // sub-block that hit, revalidated in O(1) against the cache generation
  // counters (every mutation that could remove presence or downgrade write
  // rights bumps them). A valid MRU hit takes the exact same counter/timing
  // path as the full lookup, so simulated behaviour is unchanged.
  std::uint64_t mru_subblock_ = ~0ull;
  bool mru_writable_ = false;
  std::uint64_t mru_sub_gen_ = 0;
  std::uint64_t mru_local_gen_ = 0;
};

void CoherentCpu::fill_subcache(mem::Sva a) {
  auto& c = cell();
  const auto acc = c.sub.access(a, c.rng);
  if (acc.block_allocated) {
    ++c.pmon.subcache_block_allocs;
    tick_ns(cfg().block_alloc_ns);
  }
}

void CoherentCpu::access_one(mem::Sva a, Op op) {
  lazy_sync();
  auto& c = cell();
  const std::uint64_t blk = a / mem::kSubBlockBytes;

  if (blk == mru_subblock_ && mru_sub_gen_ == c.sub.generation() &&
      (op == Op::kRead ||
       (mru_writable_ && mru_local_gen_ == c.local.generation()))) {
    ++c.pmon.subcache_hits;
    tick_cycles(cfg().subcache_hit_cycles);
    return;
  }

  const mem::SubPageId sp = mem::subpage_of(a);

  if (op == Op::kRead) {
    if (c.sub.contains(a)) {
      ++c.pmon.subcache_hits;
      tick_cycles(cfg().subcache_hit_cycles);
      mru_subblock_ = blk;
      mru_sub_gen_ = c.sub.generation();
      mru_writable_ = false;  // write rights are established on first write
      return;
    }
    ++c.pmon.subcache_misses;
    load_line(sp, /*need_write=*/false, witness_of(a));
    fill_subcache(a);
    return;
  }

  // Write: exclusivity is required at the local-cache level even when the
  // data bytes sit in the sub-cache.
  const bool writable_here = cache::writable(c.local.state(sp));
  if (writable_here && c.sub.contains(a)) {
    ++c.pmon.subcache_hits;
    tick_cycles(cfg().subcache_hit_cycles);
    mru_subblock_ = blk;
    mru_sub_gen_ = c.sub.generation();
    mru_writable_ = true;
    mru_local_gen_ = c.local.generation();
    return;
  }
  ++c.pmon.subcache_misses;
  load_line(sp, /*need_write=*/true, witness_of(a));
  fill_subcache(a);
}

void CoherentCpu::load_line(mem::SubPageId sp, bool need_write,
                            std::uint32_t witness) {
  auto& c = cell();
  for (;;) {
    const cache::LineState st = c.local.state(sp);
    const bool sufficient =
        need_write ? cache::writable(st) : cache::readable(st);
    if (sufficient) {
      ++c.pmon.localcache_hits;
      tick_ns(need_write ? cfg().localcache_write_ns
                         : cfg().localcache_read_ns);
      return;
    }

    // An asynchronous fetch for this sub-page may already be in flight
    // (prefetch): wait for it and re-check. hard_sync() can yield — the
    // fetch may complete (erasing its entry) during the wait, so the map
    // entry must be re-resolved afterwards.
    if (c.inflight.contains(sp)) {
      hard_sync();
      auto* waiters = c.inflight.find(sp);
      if (waiters == nullptr) continue;  // landed while we synced
      waiters->push_back(fiber_);
      block_until_woken();
      continue;
    }

    ++c.pmon.localcache_misses;
    if (!cm_.dir_.contains(sp)) {
      // First touch machine-wide: the sub-page materialises in this cell's
      // cache with no network traffic (COMA first-touch ownership).
      auto& e = cm_.dir_[sp];
      e.holders = bit(id_);
      e.owner = static_cast<std::int16_t>(id_);
      e.resident_leaf = static_cast<std::uint8_t>(cm_.leaf_of(id_));
      if (cm_.insert_line(id_, sp, cache::LineState::kExclusive)) {
        tick_ns(cfg().page_alloc_ns);
      }
      KSR_CHECK_HOOK(if (cm_.checker_ != nullptr) cm_.checker_->on_transition(
          check::Ev::kFirstTouch, id_, sp));
      tick_ns(need_write ? cfg().localcache_write_ns
                         : cfg().localcache_read_ns);
      return;
    }
    remote_acquire(sp, need_write ? Acquire::kExclusive : Acquire::kShared,
                   witness);
    return;
  }
}

sim::Duration CoherentCpu::transport_round_trip(mem::SubPageId sp,
                                                unsigned target_leaf) {
  sim::Duration wait = 0;
  cm_.transport(id_, sp, target_leaf, [this, &wait](sim::Duration w) {
    wait = w;
    wake_at(machine_.engine().now());
  });
  block_until_woken();
  return wait;
}

void CoherentCpu::remote_acquire(mem::SubPageId sp, Acquire kind,
                                 std::uint32_t witness) {
  auto& c = cell();
  constexpr unsigned kMaxRetries = 1'000'000;
  unsigned consecutive_nacks = 0;
  for (unsigned attempt = 0;; ++attempt) {
    if (attempt > kMaxRetries) {
      throw std::runtime_error(
          "remote_acquire: 1e6 NACK retries on sub-page " + std::to_string(sp) +
          " — atomic line never released (simulated livelock)");
    }
    hard_sync();
    const sim::Time t0 = local_now_;

    unsigned target_leaf = 0;
    {
      const auto* e = cm_.dir_.find(sp);
      target_leaf =
          cm_.responder_leaf(id_, e != nullptr ? *e : CoherentMachine::DirEntry{});
    }
    const bool crossed = target_leaf != cm_.leaf_of(id_);

    const sim::Duration wait = transport_round_trip(sp, target_leaf);
    ++c.pmon.ring_requests;
    c.pmon.inject_wait_ns += wait;
    if (cm_.tracer() != nullptr && wait != 0) {
      // Stall attribution: this cpu lost `wait` ns to slot contention.
      cm_.tracer()->log(machine_.engine().now(), obs::kCatStall,
                        obs::kEvInjectWait, sp, id_,
                        static_cast<std::int64_t>(wait));
    }

    CoherentMachine::CommitResult res{};
    switch (kind) {
      case Acquire::kShared:
        res = cm_.commit_shared(id_, sp, witness);
        break;
      case Acquire::kExclusive:
        res = cm_.commit_exclusive(id_, sp, /*atomic=*/false, witness);
        break;
      case Acquire::kAtomic:
        res = cm_.commit_exclusive(id_, sp, /*atomic=*/true, witness);
        break;
    }

    if (res.ok) {
      tick_ns(cm_.transaction_overhead_ns(kind, crossed));
      if (res.page_alloc) tick_ns(cfg().page_alloc_ns);
      c.pmon.ring_time_ns += local_now_ - t0;
      if (cm_.tracer() != nullptr) {
        // Stall attribution: total time this cpu spent in the transaction.
        cm_.tracer()->log(machine_.engine().now(), obs::kCatStall,
                          obs::kEvRemoteAcquire, sp, id_,
                          static_cast<std::int64_t>(local_now_ - t0));
      }
      return;
    }

    // NACK: the sub-page is held Atomic somewhere. Back off (bounded
    // exponential, randomized) and retry.
    ++c.pmon.ring_nacks;
    ++c.pmon.atomic_retries;
    c.pmon.ring_time_ns += local_now_ - t0;
    consecutive_nacks = std::min(consecutive_nacks + 1, 6u);
    const sim::Duration base = cfg().atomic_backoff_ns
                               << (consecutive_nacks - 1);
    const sim::Duration nap = base + cell().rng.below(base);
    if (cm_.tracer() != nullptr) {
      cm_.tracer()->log(machine_.engine().now(), obs::kCatStall,
                        obs::kEvNackBackoff, sp, id_,
                        static_cast<std::int64_t>(nap));
    }
    tick_ns(nap);
  }
}

void CoherentCpu::do_get_subpage(mem::Sva a) {
  lazy_sync();
  auto& c = cell();
  const mem::SubPageId sp = mem::subpage_of(a);

  if (auto* pe = cm_.dir_.find(sp)) {
    auto& e = *pe;
    if (e.owner == static_cast<std::int16_t>(id_) &&
        cache::writable(c.local.state(sp))) {
      // We already hold the only copy: lock it locally.
      e.atomic = true;
      c.local.set_state(sp, cache::LineState::kAtomic);
      KSR_CHECK_HOOK(if (cm_.checker_ != nullptr) cm_.checker_->on_transition(
          check::Ev::kLocalAtomic, id_, sp));
      tick_ns(cfg().local_atomic_ns);
      return;
    }
    remote_acquire(sp, Acquire::kAtomic, witness_of(a));
    return;
  }

  // First touch machine-wide, directly into Atomic state.
  auto& e = cm_.dir_[sp];
  e.holders = bit(id_);
  e.owner = static_cast<std::int16_t>(id_);
  e.atomic = true;
  e.resident_leaf = static_cast<std::uint8_t>(cm_.leaf_of(id_));
  if (cm_.insert_line(id_, sp, cache::LineState::kAtomic)) {
    tick_ns(cfg().page_alloc_ns);
  }
  KSR_CHECK_HOOK(if (cm_.checker_ != nullptr) cm_.checker_->on_transition(
      check::Ev::kFirstTouch, id_, sp));
  tick_ns(cfg().local_atomic_ns);
}

void CoherentCpu::do_release_subpage(mem::Sva a) {
  lazy_sync();
  const mem::SubPageId sp = mem::subpage_of(a);
  auto* e = cm_.dir_.find(sp);
  if (e == nullptr || !e->atomic ||
      e->owner != static_cast<std::int16_t>(id_)) {
    throw std::logic_error(
        "release_subpage: cell " + std::to_string(id_) +
        " does not hold sub-page " + std::to_string(sp) + " atomically");
  }
  e->atomic = false;
  cell().local.set_state(sp, cache::LineState::kExclusive);
  KSR_CHECK_HOOK(if (cm_.checker_ != nullptr) cm_.checker_->on_transition(
      check::Ev::kReleaseAtomic, id_, sp));
  tick_ns(cfg().local_atomic_ns);
}

void CoherentCpu::do_prefetch(mem::Sva a, bool exclusive) {
  lazy_sync();
  if (!cfg().has_prefetch) {
    tick_cycles(1);
    return;
  }
  auto& c = cell();
  const mem::SubPageId sp = mem::subpage_of(a);

  const cache::LineState st = c.local.state(sp);
  const bool sufficient =
      exclusive ? cache::writable(st) : cache::readable(st);
  if (sufficient || c.inflight.contains(sp) ||
      c.inflight_count >= cfg().prefetch_depth) {
    tick_cycles(1);  // issue slot only; dropped or unnecessary
    return;
  }

  if (!cm_.dir_.contains(sp)) {
    // Prefetching untouched memory: first-touch ownership, no ring traffic.
    auto& e = cm_.dir_[sp];
    e.holders = bit(id_);
    e.owner = static_cast<std::int16_t>(id_);
    e.resident_leaf = static_cast<std::uint8_t>(cm_.leaf_of(id_));
    cm_.insert_line(id_, sp, cache::LineState::kExclusive);
    KSR_CHECK_HOOK(if (cm_.checker_ != nullptr) cm_.checker_->on_transition(
        check::Ev::kFirstTouch, id_, sp));
    tick_cycles(1);
    return;
  }

  ++c.pmon.prefetches_issued;
  ++c.inflight_count;
  c.inflight[sp];  // register the in-flight fetch (no waiters yet)
  hard_sync();

  unsigned target_leaf = 0;
  {
    const auto* e = cm_.dir_.find(sp);
    target_leaf = cm_.responder_leaf(
        id_, e != nullptr ? *e : CoherentMachine::DirEntry{});
  }
  CoherentMachine* cm = &cm_;
  const unsigned me = id_;
  cm_.transport(me, sp, target_leaf, [cm, me, sp, exclusive](sim::Duration w) {
    auto& c2 = cm->cells_[me];
    ++c2.pmon.ring_requests;
    c2.pmon.inject_wait_ns += w;
    // If the sub-page is Atomic elsewhere the prefetch is simply dropped
    // (no retry — it is only a hint).
    if (exclusive) {
      (void)cm->commit_exclusive(me, sp, /*atomic=*/false);
    } else {
      (void)cm->commit_shared(me, sp);
    }
    auto* entry = c2.inflight.find(sp);
    if (entry != nullptr) {
      auto waiters = std::move(*entry);
      c2.inflight.erase(sp);
      --c2.inflight_count;
      for (sim::FiberId f : waiters) {
        cm->engine().wake(f, cm->engine().now());
      }
    }
  });
  tick_cycles(2);  // issue cost; the fetch itself is asynchronous
}

void CoherentCpu::do_post_store(mem::Sva a) {
  lazy_sync();
  if (!cfg().has_poststore) {
    tick_cycles(1);
    return;
  }
  auto& c = cell();
  const mem::SubPageId sp = mem::subpage_of(a);
  if (!cache::writable(c.local.state(sp))) {
    tick_cycles(1);  // nothing to broadcast: we do not own the line
    return;
  }
  ++c.pmon.poststores_issued;
  // The issuing processor stalls until the data is written out to the
  // second-level cache (§3.3.3); the packet then rides asynchronously.
  tick_ns(cfg().localcache_write_ns);
  hard_sync();

  unsigned target_leaf = cm_.leaf_of(id_);
  if (const auto* e = cm_.dir_.find(sp)) {
    for (unsigned l = 0; l < cm_.leaf_count(); ++l) {
      if (l != target_leaf && (e->placeholders & cm_.leaf_mask(l))) {
        target_leaf = l;
        break;
      }
    }
  }
  CoherentMachine* cm = &cm_;
  const unsigned me = id_;
  cm_.transport(me, sp, target_leaf, [cm, me, sp](sim::Duration w) {
    auto& c2 = cm->cells_[me];
    c2.pmon.inject_wait_ns += w;
    ++c2.pmon.ring_requests;
    cm->commit_poststore(me, sp);
  });
}

// ---------------------------------------------------------------------------
// CoherentMachine
// ---------------------------------------------------------------------------

CoherentMachine::CoherentMachine(const MachineConfig& cfg) : Machine(cfg) {
  cells_.reserve(cfg_.nproc);
  std::uint64_t seed =
      0xA11CAC8Eull ^ (static_cast<std::uint64_t>(cfg_.nproc) << 32);
  for (unsigned i = 0; i < cfg_.nproc; ++i) {
    cells_.emplace_back(cfg_.subcache, cfg_.localcache, sim::splitmix64(seed));
  }
}

CoherentMachine::~CoherentMachine() = default;

std::unique_ptr<Cpu> CoherentMachine::make_cpu(unsigned cell) {
  return std::make_unique<CoherentCpu>(*this, cell);
}

void CoherentMachine::reset_memory_system() {
  for (auto& c : cells_) {
    c.sub.clear();
    c.local.clear();
    c.inflight.clear();
    c.inflight_count = 0;
  }
  dir_.clear();
  if (checker_ != nullptr) checker_->reset();
}

CoherentMachine::DirView CoherentMachine::dir_view(mem::SubPageId sp) const {
  const auto* e = dir_.find(sp);
  if (e == nullptr) return {};
  return {e->holders, e->placeholders, e->owner, e->atomic};
}

std::uint64_t CoherentMachine::leaf_mask(unsigned leaf) const noexcept {
  std::uint64_t m = 0;
  for (unsigned i = 0; i < cfg_.nproc; ++i) {
    if (leaf_of(i) == leaf) m |= bit(i);
  }
  return m;
}

unsigned CoherentMachine::responder_leaf(unsigned cell,
                                         const DirEntry& e) const {
  const unsigned my = leaf_of(cell);
  const std::uint64_t others = e.holders & ~bit(cell);
  if (others == 0) {
    return e.holders != 0 ? my : e.resident_leaf;  // we (or nobody) hold it
  }
  // If any copy lives on a remote leaf the transaction must reach it.
  for (unsigned l = 0; l < leaf_count(); ++l) {
    if (l != my && (others & leaf_mask(l)) != 0) return l;
  }
  return my;
}

bool CoherentMachine::insert_line(unsigned cell, mem::SubPageId sp,
                                  cache::LineState st) {
  Cell& c = cells_[cell];
  const auto pa = c.local.touch(sp, st, c.rng);
  if (pa.allocated) ++c.pmon.page_allocs;
  if (pa.evicted) {
    ++c.pmon.pages_evicted;
    on_page_evicted(cell, pa.evicted_page);
    // Inclusion: the sub-cache may hold blocks of the evicted page.
    const mem::BlockId first_block =
        pa.evicted_page * (mem::kPageBytes / mem::kBlockBytes);
    for (std::size_t b = 0; b < mem::kPageBytes / mem::kBlockBytes; ++b) {
      c.sub.invalidate_block(first_block + b);
    }
    // The evicted page's directory fix-ups and sub-cache inclusion are both
    // done; the *requested* sub-page is audited by its own commit hook.
    KSR_CHECK_HOOK(if (checker_ != nullptr) checker_->on_transition(
        check::Ev::kPageEvict, cell, pa.evicted_page * mem::kSubPagesPerPage));
  }
  return pa.allocated;
}

void CoherentMachine::on_page_evicted(unsigned cell, mem::PageId page) {
  for (std::size_t idx = 0; idx < mem::kSubPagesPerPage; ++idx) {
    const mem::SubPageId sp = page * mem::kSubPagesPerPage + idx;
    auto* pe = dir_.find(sp);
    if (pe == nullptr) continue;
    DirEntry& e = *pe;
    e.holders &= ~bit(cell);
    e.placeholders &= ~bit(cell);
    if (e.owner == static_cast<std::int16_t>(cell)) {
      e.owner = -1;
      e.atomic = false;  // evicting a locked line would be a program bug
    }
    if (e.holders == 0) {
      e.resident_leaf = static_cast<std::uint8_t>(leaf_of(cell));
    }
  }
}

void CoherentMachine::invalidate_at(unsigned cell, mem::SubPageId sp) {
  Cell& c = cells_[cell];
  c.local.set_state(sp, cache::LineState::kInvalid);
  c.sub.invalidate_subpage(sp);
  ++c.pmon.invalidations_received;
  if (tracer_ != nullptr) {
    tracer_->log(engine_.now(), obs::kCatCoherence, obs::kEvInvalidate, sp,
                 cell);
  }
}

CoherentMachine::CommitResult CoherentMachine::commit_shared(
    unsigned cell, mem::SubPageId sp, std::uint32_t witness) {
  DirEntry& e = dir_[sp];
  if (e.atomic && e.owner != static_cast<std::int16_t>(cell)) {
    if (tracer_ != nullptr) {
      tracer_->log(engine_.now(), obs::kCatCoherence, obs::kEvNack, sp, cell);
    }
    KSR_CHECK_HOOK(if (checker_ != nullptr) checker_->on_transition(
        check::Ev::kNack, cell, sp));
    return {false, false};
  }
  if (tracer_ != nullptr) {
    tracer_->log(engine_.now(), obs::kCatCoherence, obs::kEvGrantShared, sp,
                 cell, static_cast<std::int64_t>(e.holders), witness);
  }
  // Downgrade a previous exclusive owner.
  if (e.owner >= 0 && e.owner != static_cast<std::int16_t>(cell)) {
    cells_[static_cast<unsigned>(e.owner)].local.set_state(
        sp, cache::LineState::kShared);
  }
  e.owner = -1;
  e.atomic = false;

  // Read-snarfing: the data passing on the ring refreshes every invalid
  // placeholder (paper §2, §3.2.2).
  if (cfg_.read_snarfing) {
    std::uint64_t ph = e.placeholders & ~bit(cell);
    while (ph != 0) {
      const unsigned b = static_cast<unsigned>(std::countr_zero(ph));
      ph &= ph - 1;
      cells_[b].local.set_state(sp, cache::LineState::kShared);
      ++cells_[b].pmon.snarfs;
      if (tracer_ != nullptr) {
        tracer_->log(engine_.now(), obs::kCatCoherence, obs::kEvSnarf, sp, b);
      }
      e.holders |= bit(b);
    }
    e.placeholders &= bit(cell);
  }

  e.placeholders &= ~bit(cell);
  const bool sole = (e.holders & ~bit(cell)) == 0;
  e.holders |= bit(cell);
  const cache::LineState st =
      sole ? cache::LineState::kExclusive : cache::LineState::kShared;
  if (sole) {
    e.owner = static_cast<std::int16_t>(cell);
    e.resident_leaf = static_cast<std::uint8_t>(leaf_of(cell));
  }
  const bool pa = insert_line(cell, sp, st);
  KSR_CHECK_HOOK(if (checker_ != nullptr) checker_->on_transition(
      check::Ev::kGrantShared, cell, sp));
  return {true, pa};
}

CoherentMachine::CommitResult CoherentMachine::commit_exclusive(
    unsigned cell, mem::SubPageId sp, bool atomic, std::uint32_t witness) {
  DirEntry& e = dir_[sp];
  if (e.atomic && e.owner != static_cast<std::int16_t>(cell)) {
    if (tracer_ != nullptr) {
      tracer_->log(engine_.now(), obs::kCatCoherence, obs::kEvNack, sp, cell);
    }
    KSR_CHECK_HOOK(if (checker_ != nullptr) checker_->on_transition(
        check::Ev::kNack, cell, sp));
    return {false, false};
  }
  if (tracer_ != nullptr) {
    tracer_->log(engine_.now(), obs::kCatCoherence,
                 atomic ? obs::kEvGrantAtomic : obs::kEvGrantExclusive, sp,
                 cell, static_cast<std::int64_t>(e.holders), witness);
  }
  std::uint64_t others = e.holders & ~bit(cell);
  while (others != 0) {
    const unsigned b = static_cast<unsigned>(std::countr_zero(others));
    others &= others - 1;
    invalidate_at(b, sp);
    e.placeholders |= bit(b);
  }
  e.placeholders &= ~bit(cell);
  e.holders = bit(cell);
  e.owner = static_cast<std::int16_t>(cell);
  e.atomic = atomic;
  e.resident_leaf = static_cast<std::uint8_t>(leaf_of(cell));
  const bool pa = insert_line(
      cell, sp,
      atomic ? cache::LineState::kAtomic : cache::LineState::kExclusive);
  KSR_CHECK_HOOK(if (checker_ != nullptr) checker_->on_transition(
      atomic ? check::Ev::kGrantAtomic : check::Ev::kGrantExclusive, cell,
      sp));
  return {true, pa};
}

void CoherentMachine::commit_poststore(unsigned cell, mem::SubPageId sp) {
  DirEntry& e = dir_[sp];
  std::uint64_t ph = e.placeholders & ~bit(cell);
  if (tracer_ != nullptr) {
    tracer_->log(engine_.now(), obs::kCatCoherence, obs::kEvPoststore, sp,
                 cell, static_cast<std::int64_t>(ph));
  }
  if (e.atomic) {
    // The line was locked (get_subpage) by another cell while the poststore
    // packet was in flight — the issuer's own copy has already been
    // invalidated by that acquisition. Refreshing placeholders now would
    // hand out readable copies of an Atomic line, which every read and
    // acquire path NACKs against; the update is dropped instead.
    KSR_CHECK_HOOK(if (checker_ != nullptr) checker_->on_transition(
        check::Ev::kPoststore, cell, sp));
    return;
  }
  if (ph == 0) {  // pure bandwidth waste: nobody was listening
    KSR_CHECK_HOOK(if (checker_ != nullptr) checker_->on_transition(
        check::Ev::kPoststore, cell, sp));
    return;
  }
  while (ph != 0) {
    const unsigned b = static_cast<unsigned>(std::countr_zero(ph));
    ph &= ph - 1;
    cells_[b].local.set_state(sp, cache::LineState::kShared);
    ++cells_[b].pmon.snarfs;
    if (tracer_ != nullptr) {
      tracer_->log(engine_.now(), obs::kCatCoherence, obs::kEvSnarf, sp, b);
    }
    e.holders |= bit(b);
  }
  e.placeholders &= bit(cell);
  // Multiple copies now exist: the writer loses exclusivity — the §3.3.3
  // poststore pitfall (next-phase writers must re-invalidate).
  if (e.owner >= 0) {
    cells_[static_cast<unsigned>(e.owner)].local.set_state(
        sp, cache::LineState::kShared);
    e.owner = -1;
  }
  KSR_CHECK_HOOK(if (checker_ != nullptr) checker_->on_transition(
      check::Ev::kPoststore, cell, sp));
}

}  // namespace ksr::machine
