#include "ksr/nas/ep.hpp"

#include <cmath>

#include "ksr/sync/atomic.hpp"
#include "ksr/sync/barrier.hpp"
#include "ksr/sync/padded.hpp"

namespace ksr::nas {

namespace {

// NAS LCG: x_{k+1} = a * x_k mod 2^46, a = 5^13.
constexpr std::uint64_t kA = 1220703125ull;  // 5^13
constexpr std::uint64_t kMask = (1ull << 46) - 1;

[[nodiscard]] constexpr std::uint64_t mul46(std::uint64_t a, std::uint64_t b) {
  // 46-bit operands produce up to 92-bit products: widen before reducing.
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(a) * b) & kMask);
}

/// a^n mod 2^46 — skip-ahead so each cell starts its chunk independently.
[[nodiscard]] constexpr std::uint64_t pow46(std::uint64_t a, std::uint64_t n) {
  std::uint64_t r = 1;
  std::uint64_t base = a & kMask;
  while (n != 0) {
    if (n & 1) r = mul46(r, base);
    base = mul46(base, base);
    n >>= 1;
  }
  return r;
}

struct Lcg {
  std::uint64_t x;
  double next() {
    x = mul46(kA, x);
    return static_cast<double>(x) * 0x1.0p-46;
  }
};

/// Tally one chunk of pairs into a local accumulator.
struct Accum {
  double sx = 0, sy = 0;
  std::array<std::uint64_t, 10> bins{};
  std::uint64_t accepted = 0;

  void pair(double u1, double u2) {
    const double x = 2.0 * u1 - 1.0;
    const double y = 2.0 * u2 - 1.0;
    const double t = x * x + y * y;
    if (t > 1.0 || t == 0.0) return;
    const double f = std::sqrt(-2.0 * std::log(t) / t);
    const double gx = x * f;
    const double gy = y * f;
    sx += gx;
    sy += gy;
    const auto l =
        static_cast<std::size_t>(std::max(std::fabs(gx), std::fabs(gy)));
    if (l < bins.size()) ++bins[l];
    ++accepted;
  }
};

}  // namespace

EpResult ep_reference(const EpConfig& cfg) {
  const std::uint64_t pairs = 1ull << cfg.log2_pairs;
  Lcg g{cfg.seed & kMask};
  Accum acc;
  for (std::uint64_t i = 0; i < pairs; ++i) {
    const double u1 = g.next();
    const double u2 = g.next();
    acc.pair(u1, u2);
  }
  EpResult r;
  r.sum_x = acc.sx;
  r.sum_y = acc.sy;
  r.annulus_counts = acc.bins;
  r.accepted = acc.accepted;
  return r;
}

EpResult run_ep(machine::Machine& m, const EpConfig& cfg) {
  const unsigned nproc = m.nproc();
  const std::uint64_t pairs = 1ull << cfg.log2_pairs;

  // Per-cell partial results, each cell's slice on its own sub-pages.
  sync::Padded<double> psx(m, "ep.sx", nproc);
  sync::Padded<double> psy(m, "ep.sy", nproc);
  auto pbins = m.alloc<std::uint64_t>(
      "ep.bins", static_cast<std::size_t>(nproc) * 16,
      machine::Placement::blocked(128));
  sync::Padded<std::uint64_t> pacc(m, "ep.acc", nproc);
  auto barrier = sync::make_barrier(m, sync::BarrierKind::kSystem);

  EpResult result;
  double t_end = 0;

  m.run([&](machine::Cpu& cpu) {
    const unsigned me = cpu.id();
    const std::uint64_t chunk = pairs / nproc;
    const std::uint64_t begin = me * chunk;
    const std::uint64_t end = me + 1 == nproc ? pairs : begin + chunk;

    barrier->arrive(cpu);
    const double t0 = cpu.seconds();

    // Skip ahead: pair i consumes randoms 2i and 2i+1.
    Lcg g{mul46(pow46(kA, 2 * begin), cfg.seed & kMask)};
    Accum acc;
    for (std::uint64_t i = begin; i < end; ++i) {
      const double u1 = g.next();
      const double u2 = g.next();
      acc.pair(u1, u2);
      cpu.work(cfg.work_per_pair);
    }

    // Publish partials (each to its own sub-page: no false sharing).
    psx.write(cpu, me, acc.sx);
    psy.write(cpu, me, acc.sy);
    for (std::size_t b = 0; b < acc.bins.size(); ++b) {
      cpu.write(pbins, static_cast<std::size_t>(me) * 16 + b, acc.bins[b]);
    }
    pacc.write(cpu, me, acc.accepted);
    barrier->arrive(cpu);

    // Cell 0 reduces — the only remote communication in the kernel.
    if (me == 0) {
      for (unsigned p = 0; p < nproc; ++p) {
        result.sum_x += psx.read(cpu, p);
        result.sum_y += psy.read(cpu, p);
        result.accepted += pacc.read(cpu, p);
        for (std::size_t b = 0; b < result.annulus_counts.size(); ++b) {
          result.annulus_counts[b] +=
              cpu.read(pbins, static_cast<std::size_t>(p) * 16 + b);
        }
      }
    }
    barrier->arrive(cpu);
    if (cpu.seconds() - t0 > t_end) t_end = cpu.seconds() - t0;
  });

  result.seconds = t_end;
  return result;
}

}  // namespace ksr::nas
