// Ablation: how the slotted ring's design parameters shape the results —
// slot count (pipelining depth) and the saturation behaviour under
// simultaneous all-remote traffic (§3.1's observation that the ring holds
// up until a fully populated ring issues simultaneous remote accesses).
#include "bench_common.hpp"
#include "ksr/machine/ksr_machine.hpp"

namespace {

using namespace ksr;         // NOLINT
using namespace ksr::bench;  // NOLINT
using machine::Cpu;
using machine::KsrMachine;
using machine::MachineConfig;

/// All `nproc` cells stream each other's data simultaneously; returns the
/// mean per-access latency and mean slot wait.
struct Load {
  double per_access = 0;
  double wait_per_req = 0;
};

Load all_remote_load(obs::Session& session, unsigned nproc, unsigned slots,
                     std::size_t kb) {
  MachineConfig cfg = MachineConfig::ksr1(nproc);
  cfg.ring_slots_per_subring = slots;
  KsrMachine m(cfg);
  ScopedObs obs(session, m,
                "p=" + std::to_string(nproc) +
                    " slots=" + std::to_string(slots));
  const std::size_t ints = kb * 1024 / sizeof(std::uint32_t);
  const std::size_t stride = mem::kSubPageBytes / sizeof(std::uint32_t);
  auto data =
      m.alloc<std::uint32_t>("abl.data", static_cast<std::size_t>(nproc) * ints);
  auto barrier = sync::make_barrier(m, sync::BarrierKind::kSystem);
  double per_access = 0;
  m.run([&](Cpu& cpu) {
    const std::size_t base = static_cast<std::size_t>(cpu.id()) * ints;
    for (std::size_t i = 0; i < ints; i += stride) {
      cpu.write(data, base + i, 1u);
    }
    barrier->arrive(cpu);
    const std::size_t nb =
        static_cast<std::size_t>((cpu.id() + 1) % nproc) * ints;
    const double t0 = cpu.seconds();
    std::size_t n = 0;
    for (std::size_t i = 0; i < ints; i += stride, ++n) {
      (void)cpu.read(data, nb + i);
    }
    if (cpu.id() == 0) {
      per_access = (cpu.seconds() - t0) / static_cast<double>(n);
    }
  });
  cache::PerfMonitor total;
  for (unsigned i = 0; i < nproc; ++i) total.add(m.cell_pmon(i));
  return {per_access,
          total.ring_requests
              ? static_cast<double>(total.inject_wait_ns) /
                    static_cast<double>(total.ring_requests)
              : 0.0};
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opt = BenchOptions::parse(argc, argv);
  obs::Session session = make_obs_session(opt, "ablation_ring");
  print_header("Ablation: ring slot count and saturation",
               "design-choice ablation for Section 3.1's network results");

  const std::size_t kb = opt.quick ? 8 : 32;

  std::cout << "\n--- slot count (pipelining depth), 32 procs all-remote ---\n";
  TextTable t1({"slots/subring", "per-access (us)", "slot wait/req (ns)"});
  for (unsigned slots : {1u, 2u, 4u, 8u, 12u, 24u}) {
    const Load l = all_remote_load(session, 32, slots, kb);
    t1.add_row({std::to_string(slots), TextTable::num(l.per_access * 1e6, 3),
                TextTable::num(l.wait_per_req, 0)});
  }
  if (opt.csv) {
    t1.print_csv();
  } else {
    t1.print();
    std::cout << "Fewer slots = less pipelining: waits blow up as the 32\n"
                 "simultaneous requesters fight for slots. The production\n"
                 "value (12 per sub-ring) keeps the all-remote penalty mild\n"
                 "— the paper's ~8% rise.\n";
  }

  std::cout << "\n--- offered load vs processors (12 slots) ---\n";
  TextTable t2({"procs", "per-access (us)", "slot wait/req (ns)"});
  for (unsigned p : {2u, 8u, 16u, 24u, 32u}) {
    const Load l = all_remote_load(session, p, 12, kb);
    t2.add_row({std::to_string(p), TextTable::num(l.per_access * 1e6, 3),
                TextTable::num(l.wait_per_req, 0)});
  }
  if (opt.csv) {
    t2.print_csv();
  } else {
    t2.print();
    std::cout << "The fully populated ring (32 simultaneous requesters) is\n"
                 "where waits climb — the saturation the paper blames for\n"
                 "IS's 30->32 serial-fraction step.\n";
  }
  return 0;
}
