# Empty compiler generated dependencies file for test_mem_and_sim.
# This may be replaced when dependencies are built.
