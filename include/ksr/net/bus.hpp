#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>

#include "ksr/sim/engine.hpp"
#include "ksr/sim/time.hpp"

// Single shared split-transaction bus — the Sequent Symmetry model (§3.2.3).
//
// Exactly one transaction occupies the bus at a time; requests are served in
// FCFS order. Snooping and invalidation piggy-back on the occupying
// transaction at no extra cost. Because the bus serializes *everything*,
// algorithms that exploit parallel communication paths (dissemination,
// tournament, MCS) gain nothing here, which is why the naive counter barrier
// wins on the Symmetry — the qualitative claim this model exists to check.
namespace ksr::net {

class Bus {
 public:
  struct Config {
    sim::Duration transaction_ns = 1000;  // one coherence transaction + line transfer
  };

  using Done = std::function<void(sim::Duration queue_wait)>;

  Bus(sim::Engine& engine, const Config& cfg) : engine_(engine), cfg_(cfg) {}

  Bus(const Bus&) = delete;
  Bus& operator=(const Bus&) = delete;

  /// Queue a transaction; `done(wait)` fires at completion. FCFS is exact:
  /// the analytic free-at pointer advances in submission order, which equals
  /// simulated-time order because the engine dispatches events in order.
  void transact(Done done) {
    const sim::Time start = std::max(engine_.now(), free_at_);
    const sim::Duration wait = start - engine_.now();
    free_at_ = start + cfg_.transaction_ns;
    ++stats_.transactions;
    stats_.total_wait_ns += wait;
    stats_.busy_ns += cfg_.transaction_ns;
    engine_.at(free_at_, [done = std::move(done), wait] { done(wait); });
  }

  struct Stats {
    std::uint64_t transactions = 0;
    sim::Duration total_wait_ns = 0;
    sim::Duration busy_ns = 0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] const Config& config() const noexcept { return cfg_; }

 private:
  sim::Engine& engine_;
  Config cfg_;
  sim::Time free_at_ = 0;
  Stats stats_;
};

}  // namespace ksr::net
