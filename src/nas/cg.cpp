#include "ksr/nas/cg.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "ksr/sim/rng.hpp"
#include "ksr/sync/barrier.hpp"
#include "ksr/sync/padded.hpp"

namespace ksr::nas {

namespace {

/// Balanced contiguous row partition by nonzero count.
std::vector<std::size_t> partition_rows(const std::vector<std::size_t>& row_start,
                                        unsigned nproc) {
  const std::size_t n = row_start.size() - 1;
  const std::size_t nnz = row_start[n];
  std::vector<std::size_t> bounds(nproc + 1, n);
  bounds[0] = 0;
  std::size_t row = 0;
  for (unsigned p = 1; p < nproc; ++p) {
    const std::size_t target = nnz * p / nproc;
    while (row < n && row_start[row] < target) ++row;
    bounds[p] = row;
  }
  bounds[nproc] = n;
  return bounds;
}

}  // namespace

SparseSystem make_sparse_system(const CgConfig& cfg) {
  SparseSystem s;
  s.n = cfg.n;
  sim::Rng rng(cfg.seed);

  // Random symmetric pattern with diagonal dominance (=> SPD).
  std::vector<std::vector<std::pair<std::uint32_t, double>>> rows(cfg.n);
  for (std::size_t i = 0; i < cfg.n; ++i) {
    const std::size_t offdiag = cfg.nnz_per_row / 2;
    for (std::size_t k = 0; k < offdiag; ++k) {
      const auto j = static_cast<std::uint32_t>(rng.below(cfg.n));
      if (j == i) continue;
      const double v = 0.5 * rng.uniform();
      rows[i].emplace_back(j, v);
      rows[j].emplace_back(static_cast<std::uint32_t>(i), v);
    }
  }
  s.row_start.assign(cfg.n + 1, 0);
  for (std::size_t i = 0; i < cfg.n; ++i) {
    auto& r = rows[i];
    std::sort(r.begin(), r.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    // Merge duplicates; accumulate the row sum for the dominant diagonal.
    double row_sum = 0;
    std::vector<std::pair<std::uint32_t, double>> merged;
    for (const auto& [j, v] : r) {
      if (!merged.empty() && merged.back().first == j) {
        merged.back().second += v;
      } else {
        merged.emplace_back(j, v);
      }
    }
    for (const auto& [j, v] : merged) row_sum += std::fabs(v);

    s.row_start[i + 1] = s.row_start[i] + merged.size() + 1;  // + diagonal
    bool diag_done = false;
    for (const auto& [j, v] : merged) {
      if (!diag_done && j > i) {
        s.col_index.push_back(static_cast<std::uint32_t>(i));
        s.values.push_back(row_sum + 1.0);
        diag_done = true;
      }
      s.col_index.push_back(j);
      s.values.push_back(v);
    }
    if (!diag_done) {
      s.col_index.push_back(static_cast<std::uint32_t>(i));
      s.values.push_back(row_sum + 1.0);
    }
  }
  s.b.assign(cfg.n, 1.0);
  return s;
}

CgResult cg_reference(const CgConfig& cfg) {
  const SparseSystem s = make_sparse_system(cfg);
  const std::size_t n = s.n;
  std::vector<double> x(n, 0.0), r = s.b, p = s.b, q(n, 0.0);

  auto dot = [&](const std::vector<double>& u, const std::vector<double>& v) {
    double acc = 0;
    for (std::size_t i = 0; i < n; ++i) acc += u[i] * v[i];
    return acc;
  };

  CgResult out;
  out.nnz = s.values.size();
  double rho = dot(r, r);
  out.initial_residual = std::sqrt(rho);
  for (unsigned it = 0; it < cfg.iterations; ++it) {
    for (std::size_t i = 0; i < n; ++i) {
      double acc = 0;
      for (std::size_t k = s.row_start[i]; k < s.row_start[i + 1]; ++k) {
        acc += s.values[k] * p[s.col_index[k]];
      }
      q[i] = acc;
    }
    const double alpha = rho / dot(p, q);
    for (std::size_t i = 0; i < n; ++i) x[i] += alpha * p[i];
    for (std::size_t i = 0; i < n; ++i) r[i] -= alpha * q[i];
    const double rho_new = dot(r, r);
    const double beta = rho_new / rho;
    rho = rho_new;
    for (std::size_t i = 0; i < n; ++i) p[i] = r[i] + beta * p[i];
  }
  out.final_residual = std::sqrt(rho);
  return out;
}

CgResult run_cg(machine::Machine& m, const CgConfig& cfg) {
  const SparseSystem s = make_sparse_system(cfg);
  const std::size_t n = s.n;
  const unsigned nproc = m.nproc();

  // Shared state. Matrix arrays are written host-side (they are inputs);
  // ownership is established by each worker's warm-up touch of its slice.
  auto a = m.alloc<double>("cg.a", s.values.size());
  auto col = m.alloc<std::uint32_t>("cg.col", s.values.size());
  auto row_start = m.alloc<std::uint64_t>("cg.rows", n + 1);
  auto vx = m.alloc<double>("cg.x", n);
  auto vr = m.alloc<double>("cg.r", n);
  auto vp = m.alloc<double>("cg.p", n);
  auto vq = m.alloc<double>("cg.q", n);
  auto vb = m.alloc<double>("cg.b", n);
  auto scalars = m.alloc<double>("cg.scalars", 4);  // rho, alpha, beta, rho0
  for (std::size_t k = 0; k < s.values.size(); ++k) {
    a.set_value(k, s.values[k]);
    col.set_value(k, s.col_index[k]);
  }
  for (std::size_t i = 0; i <= n; ++i) row_start.set_value(i, s.row_start[i]);
  for (std::size_t i = 0; i < n; ++i) vb.set_value(i, s.b[i]);

  const std::vector<std::size_t> bounds = partition_rows(s.row_start, nproc);
  auto barrier = sync::make_barrier(m, sync::BarrierKind::kSystem);

  // Column-format partition (by matrix column; the CSR of a symmetric matrix
  // doubles as its CSC, so the same arrays serve both layouts).
  const bool column_format = cfg.format == SparseFormat::kColumnMajor;

  CgResult out;
  out.nnz = s.values.size();
  double t_max = 0;

  m.run([&](machine::Cpu& cpu) {
    const unsigned me = cpu.id();
    const std::size_t lo = bounds[me];
    const std::size_t hi = bounds[me + 1];

    // ---- Warm-up (untimed): claim ownership of my matrix slice; cell 0
    // initialises the vectors (it runs the serial sections).
    for (std::size_t i = lo; i < hi; ++i) {
      (void)cpu.read(row_start, i);
      for (std::size_t k = s.row_start[i]; k < s.row_start[i + 1]; ++k) {
        (void)cpu.read(a, k);
        (void)cpu.read(col, k);
      }
    }
    if (me == 0) {
      for (std::size_t i = 0; i < n; ++i) {
        const double bi = cpu.read(vb, i);
        cpu.write(vx, i, 0.0);
        cpu.write(vr, i, bi);
        cpu.write(vp, i, bi);
        cpu.write(vq, i, 0.0);
        cpu.work(4);
      }
      double rho = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const double ri = cpu.read(vr, i);
        rho += ri * ri;
        cpu.work(2);
      }
      cpu.write(scalars, 0, rho);
      out.initial_residual = std::sqrt(rho);
    }
    barrier->arrive(cpu);
    const double t0 = cpu.seconds();

    for (unsigned it = 0; it < cfg.iterations; ++it) {
      // The p vector was rewritten by cell 0 in the previous serial
      // section; prefetch it before the mat-vec instead of taking a demand
      // miss on every indirection (the paper's "extensive" prefetch use).
      if (cfg.use_prefetch && me != 0 && lo < hi) {
        const unsigned depth = m.config().prefetch_depth;
        unsigned issued = 0;
        for (mem::Sva a = vp.addr(0); a < vp.addr(n);
             a += mem::kSubPageBytes) {
          cpu.prefetch(a);
          if (++issued % depth == 0) cpu.work(190);
        }
      }
      // ---- Parallel sparse mat-vec: q = A p ----
      if (!column_format) {
        // Row format (Fig. 7): each processor produces its slice of q with
        // no synchronization.
        mem::Sva last_subpage = 0;
        for (std::size_t i = lo; i < hi; ++i) {
          const auto k0 = cpu.read(row_start, i);
          const auto k1 = cpu.read(row_start, i + 1);
          double acc = 0;
          for (std::uint64_t k = k0; k < k1; ++k) {
            const std::uint32_t j = cpu.read(col, k);
            acc += cpu.read(a, k) * cpu.read(vp, j);
            cpu.work(cfg.work_per_nnz);
          }
          cpu.write(vq, i, acc);
          if (cfg.use_poststore) {
            const mem::Sva sp = mem::subpage_of(vq.addr(i));
            if (sp != last_subpage && last_subpage != 0) {
              cpu.post_store(mem::subpage_base(last_subpage));
            }
            last_subpage = sp;
          }
        }
        if (cfg.use_poststore && last_subpage != 0) {
          cpu.post_store(mem::subpage_base(last_subpage));
        }
      } else {
        // Original column format: scatter updates into q need a lock per
        // touched sub-page — the synchronization the paper's conversion
        // eliminates. Cell 0 zeroes q first.
        if (me == 0) {
          for (std::size_t i = 0; i < n; ++i) cpu.write(vq, i, 0.0);
        }
        barrier->arrive(cpu);
        for (std::size_t j = lo; j < hi; ++j) {  // my columns
          const auto k0 = cpu.read(row_start, j);
          const auto k1 = cpu.read(row_start, j + 1);
          const double pj = cpu.read(vp, j);
          for (std::uint64_t k = k0; k < k1; ++k) {
            const std::uint32_t i = cpu.read(col, k);
            const mem::Sva qa = vq.addr(i);
            cpu.get_subpage(qa);
            cpu.write(vq, i, cpu.read(vq, i) + cpu.read(a, k) * pj);
            cpu.release_subpage(qa);
            cpu.work(cfg.work_per_nnz);
          }
        }
      }
      barrier->arrive(cpu);

      // ---- Serial section on cell 0 (as in the paper: only the mat-vec
      // was parallelised). More processors => more of q is remote here.
      if (me == 0) {
        const double rho = cpu.read(scalars, 0);
        double pq = 0;
        for (std::size_t i = 0; i < n; ++i) {
          pq += cpu.read(vp, i) * cpu.read(vq, i);
          cpu.work(2);
        }
        const double alpha = rho / pq;
        double rho_new = 0;
        for (std::size_t i = 0; i < n; ++i) {
          cpu.write(vx, i, cpu.read(vx, i) + alpha * cpu.read(vp, i));
          const double ri = cpu.read(vr, i) - alpha * cpu.read(vq, i);
          cpu.write(vr, i, ri);
          rho_new += ri * ri;
          cpu.work(6);
        }
        const double beta = rho_new / rho;
        for (std::size_t i = 0; i < n; ++i) {
          cpu.write(vp, i, cpu.read(vr, i) + beta * cpu.read(vp, i));
          cpu.work(3);
        }
        cpu.write(scalars, 0, rho_new);
      }
      barrier->arrive(cpu);
    }

    const double dt = cpu.seconds() - t0;
    if (dt > t_max) t_max = dt;
  });

  out.seconds = t_max;
  out.final_residual = std::sqrt(scalars.value(0));
  return out;
}

}  // namespace ksr::nas
