# Empty dependencies file for ksr_machine.
# This may be replaced when dependencies are built.
