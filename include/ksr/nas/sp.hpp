#pragma once

#include <cstdint>

#include "ksr/machine/machine.hpp"

// NAS Scalar Pentadiagonal (SP) application (paper §3.3.3, Tables 3 & 4).
//
// An ADI-style iterative PDE solver: each iteration performs three phases of
// line solves (x, y and z sweeps) over an N^3 grid. The x and y sweeps use a
// z-plane partition; the z sweep repartitions by y-planes, so data changes
// hands at phase boundaries — "communication between processors occurs at
// the beginning of each phase" (§3.3.3). The paper's optimization story is
// reproduced:
//
//   kBase    — the five grid arrays are laid out back to back; at the scaled
//              sizes their bases are congruent modulo the sub-cache way
//              span, so the five streams of every sweep iteration collide in
//              the 2-way random-replacement sub-cache and thrash;
//   kPadded  — each array is offset by one extra 2 KB block ("data padding
//              and alignment"), staggering the set mapping;
//   prefetch — at the start of the phases whose partition changed, each
//              processor prefetches the remote sub-pages it is about to
//              consume ("prefetching appropriate data");
//   poststore— each processor broadcasts its phase results; this *hurts*
//              (Table 4 discussion): the next phase writes the same data, so
//              the writer pays a ring latency to re-invalidate the copies.
namespace ksr::nas {

struct SpConfig {
  unsigned n = 16;         // grid edge (paper: 64)
  unsigned iterations = 2; // timed iterations (paper runs 400)
  bool padded_layout = false;
  bool use_prefetch = false;
  bool use_poststore = false;
  std::uint64_t work_per_point = 12;  // FP work per grid point per sweep
};

struct SpResult {
  double seconds_per_iteration = 0.0;
  double total_seconds = 0.0;
  double checksum = 0.0;  // layout-invariant result digest
};

/// Run SP on the machine; all cells participate.
SpResult run_sp(machine::Machine& m, const SpConfig& cfg);

}  // namespace ksr::nas
