#include "ksr/serve/core.hpp"

#include <chrono>

namespace ksr::serve {

ServeCore::ServeCore(const Options& opt)
    : opt_(opt), cache_(opt.store_dir), runner_(opt.jobs) {}

ServeCore::Response ServeCore::submit(const JobSpec& spec) {
  const auto t0 = std::chrono::steady_clock::now();
  auto stamp_wall = [&t0](Response* r) {
    r->wall_ms = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
  };

  Response resp;
  const std::string bad = spec.validate();
  if (!bad.empty()) {
    resp.error = "job: " + bad;
    std::lock_guard<std::mutex> lk(inflight_mu_);
    ++failures_;
    return resp;
  }
  std::string canonical;
  CacheKey key;
  try {
    canonical = spec.canonical();  // reads the checkpoint preset, may throw
    key = derive_key(spec, opt_.code_version);
  } catch (const std::exception& e) {
    resp.error = e.what();
    std::lock_guard<std::mutex> lk(inflight_mu_);
    ++failures_;
    return resp;
  }
  resp.key = key.hex();

  for (;;) {
    if (cache_.lookup(key, canonical, &resp.result)) {
      resp.ok = true;
      resp.cached = true;
      stamp_wall(&resp);
      return resp;
    }
    std::shared_ptr<Inflight> fl;
    {
      std::lock_guard<std::mutex> lk(inflight_mu_);
      const auto it = inflight_.find(key.value);
      if (it == inflight_.end()) {
        fl = std::make_shared<Inflight>();
        inflight_[key.value] = fl;
        break;  // we own the execution
      }
      fl = it->second;
      ++inflight_dedup_;
    }
    // A peer is simulating this exact spec right now: wait for its result
    // instead of burning a second run.
    std::unique_lock<std::mutex> lk(fl->mu);
    fl->cv.wait(lk, [&fl] { return fl->done; });
    Response peer = fl->resp;
    peer.cached = true;
    stamp_wall(&peer);
    return peer;
  }

  // Owner path: execute, store, publish to any waiters.
  Response done;
  done.key = resp.key;
  try {
    const JobOutcome out = execute(spec, opt_.sim_threads);
    done.ok = true;
    done.result = out.result;
    cache_.store(key, canonical, out.result);
    std::lock_guard<std::mutex> lk(inflight_mu_);
    ++executed_;
  } catch (const std::exception& e) {
    // Failures are never cached: the next submission retries.
    done.error = e.what();
    std::lock_guard<std::mutex> lk(inflight_mu_);
    ++failures_;
  }
  std::shared_ptr<Inflight> fl;
  {
    std::lock_guard<std::mutex> lk(inflight_mu_);
    const auto it = inflight_.find(key.value);
    fl = it->second;
    inflight_.erase(it);
  }
  {
    std::lock_guard<std::mutex> lk(fl->mu);
    fl->resp = done;
    fl->done = true;
  }
  fl->cv.notify_all();
  stamp_wall(&done);
  return done;
}

std::vector<ServeCore::Response> ServeCore::submit_batch(
    const std::vector<JobSpec>& specs) {
  std::vector<Response> out(specs.size());
  // One batch at a time: SweepRunner's claim protocol supports a single
  // in-flight run_indexed() call. Duplicate specs inside (or across) batches
  // still dedup through the inflight table — a waiting worker blocks while
  // the owning worker simulates, then both report the same bytes.
  std::lock_guard<std::mutex> lk(batch_mu_);
  runner_.run_indexed(specs.size(),
                      [this, &specs, &out](std::size_t i) {
                        out[i] = submit(specs[i]);
                      });
  return out;
}

ServeCore::Counters ServeCore::counters() const {
  Counters c;
  c.cache = cache_.stats();
  std::lock_guard<std::mutex> lk(inflight_mu_);
  c.executed = executed_;
  c.inflight_dedup = inflight_dedup_;
  c.failures = failures_;
  return c;
}

Json ServeCore::stats_json() const {
  const Counters c = counters();
  Json j = Json::object();
  j.set("hits", Json::uint(c.cache.hits));
  j.set("misses", Json::uint(c.cache.misses));
  j.set("stores", Json::uint(c.cache.stores));
  j.set("load_errors", Json::uint(c.cache.load_errors));
  j.set("inflight_dedup", Json::uint(c.inflight_dedup));
  j.set("executed", Json::uint(c.executed));
  j.set("failures", Json::uint(c.failures));
  j.set("code_version", Json::uint(opt_.code_version));
  j.set("store_dir", Json::str(opt_.store_dir));
  return j;
}

void ServeCore::write_stats_csv(std::ostream& os) const {
  const Counters c = counters();
  os << "counter,value\n"
     << "serve_cache_hits," << c.cache.hits << "\n"
     << "serve_cache_misses," << c.cache.misses << "\n"
     << "serve_cache_stores," << c.cache.stores << "\n"
     << "serve_cache_load_errors," << c.cache.load_errors << "\n"
     << "serve_inflight_dedup," << c.inflight_dedup << "\n"
     << "serve_executed," << c.executed << "\n"
     << "serve_failures," << c.failures << "\n";
}

}  // namespace ksr::serve
