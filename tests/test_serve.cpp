// ksr::serve (docs/SERVING.md) — the simulation-as-a-service layer.
//
// The contracts under test:
//   * the content-addressed result cache returns byte-identical results for
//     repeated submissions, in-process and across a "restart" (a fresh
//     ServeCore over the same store directory);
//   * the cache key is sensitive to every job-spec field, the seed, the
//     checkpoint preset's *contents*, and the build's code-version stamp;
//   * concurrent submissions of the same spec dedup to exactly ONE
//     execution, all callers receiving the same bytes;
//   * corrupt or mismatched store files degrade to a miss (and re-execute),
//     never to a wrong result served as a hit, and failures are never
//     cached;
//   * the AF_UNIX daemon round-trips jobs from parallel clients with the
//     same bytes a serial in-process run produces;
//   * a campaign killed halfway resumes from the cache, and its result
//     database is byte-identical between a cold and a resumed run.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "ksr/ckpt/checkpoint.hpp"
#include "ksr/serve/campaign.hpp"
#include "ksr/serve/core.hpp"
#include "ksr/serve/server.hpp"

namespace ksr::serve {
namespace {

// Small-but-real jobs: scaled machines, tiny problem sizes, ~ms each.
JobSpec small_is(unsigned procs = 2) {
  JobSpec s;
  s.workload = "is";
  s.procs = procs;
  s.scale = 64;
  s.log2_keys = 10;
  s.log2_buckets = 6;
  return s;
}

JobSpec small_cg(unsigned procs = 2) {
  JobSpec s;
  s.workload = "cg";
  s.procs = procs;
  s.scale = 64;
  s.n = 120;
  s.nnz_per_row = 6;
  s.iters = 1;
  return s;
}

// Unique per run: a stale store directory from a previous test invocation
// would turn the cold-miss assertions below into hits.
std::string temp_dir(const std::string& leaf) {
  return ::testing::TempDir() + "ksr_serve_" + std::to_string(::getpid()) +
         "_" + leaf;
}

// ------------------------------------------------------------- JSON layer

TEST(ServeJson, ParsesAndDumpsStably) {
  std::string err;
  const Json j = Json::parse(
      R"({"name":"x","n":18446744073709551615,"neg":-3,"f":0.5,)"
      R"("arr":[1,true,null,"s"],"obj":{"k":"v"}})",
      &err);
  ASSERT_TRUE(err.empty()) << err;
  const std::string once = j.dump();
  const Json back = Json::parse(once, &err);
  ASSERT_TRUE(err.empty()) << err;
  // Insertion-ordered objects: dump is a fixed point after one round trip.
  EXPECT_EQ(back.dump(), once);
  // 64-bit integers survive exactly (no double rounding).
  std::uint64_t big = 0;
  ASSERT_NE(back.find("n"), nullptr);
  ASSERT_TRUE(back.find("n")->as_u64(&big));
  EXPECT_EQ(big, 18446744073709551615ull);
}

TEST(ServeJson, RejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "[1,", "{\"k\":}", "tru", "\"unterminated", "{\"a\":1,}",
        "01", "1e", "{\"k\" 1}", "[1 2]"}) {
    std::string err;
    (void)Json::parse(bad, &err);
    EXPECT_FALSE(err.empty()) << "accepted: '" << bad << "'";
  }
}

// ------------------------------------------------------------ cache keys

TEST(ServeKey, SensitiveToEveryFieldAndVersionStamp) {
  const JobSpec base = small_is();
  const std::uint64_t k0 = derive_key(base).value;

  using Mut = void (*)(JobSpec*);
  const std::vector<std::pair<const char*, Mut>> mutations = {
      {"machine", [](JobSpec* s) { s->machine = "ksr2"; }},
      {"procs", [](JobSpec* s) { s->procs = 4; }},
      {"scale", [](JobSpec* s) { s->scale = 32; }},
      {"snarf", [](JobSpec* s) { s->snarf = false; }},
      {"fuzz_seed", [](JobSpec* s) { s->fuzz_seed = 7; }},
      {"cells_per_leaf", [](JobSpec* s) { s->cells_per_leaf = 2; }},
      {"cells_per_domain", [](JobSpec* s) { s->cells_per_domain = 2; }},
      {"workload", [](JobSpec* s) { s->workload = "cg"; }},
      {"seed", [](JobSpec* s) { s->seed = 99; }},
      {"log2_keys", [](JobSpec* s) { s->log2_keys = 11; }},
      {"log2_buckets", [](JobSpec* s) { s->log2_buckets = 7; }},
      {"pad_buckets", [](JobSpec* s) { s->pad_buckets = true; }},
      {"n", [](JobSpec* s) { s->n = 64; }},
      {"nnz_per_row", [](JobSpec* s) { s->nnz_per_row = 5; }},
      {"iters", [](JobSpec* s) { s->iters = 3; }},
      {"log2_pairs", [](JobSpec* s) { s->log2_pairs = 9; }},
  };
  std::set<std::uint64_t> keys{k0};
  for (const auto& [name, mutate] : mutations) {
    JobSpec s = base;
    mutate(&s);
    const std::uint64_t k = derive_key(s).value;
    EXPECT_NE(k, k0) << "field '" << name << "' not keyed";
    keys.insert(k);
  }
  // All mutations landed on distinct keys (no accidental aliasing).
  EXPECT_EQ(keys.size(), mutations.size() + 1);

  // A code-version bump (simulated-semantics change) invalidates every key.
  EXPECT_NE(derive_key(base, kCodeVersion + 1).value, k0);
}

TEST(ServeKey, CheckpointPresetIsContentAddressed) {
  const std::string a = temp_dir("preset_a.ckpt");
  const std::string b = temp_dir("preset_b.ckpt");
  ckpt::atomic_write_file(a, "preset bytes one");
  ckpt::atomic_write_file(b, "preset bytes two");

  JobSpec s = small_is();
  s.restore_from = a;
  const std::uint64_t ka = derive_key(s).value;
  s.restore_from = b;
  const std::uint64_t kb = derive_key(s).value;
  EXPECT_NE(ka, kb);

  // Same contents at a different path: same key (the bytes are the
  // identity, not the filename).
  const std::string a2 = temp_dir("preset_a_copy.ckpt");
  ckpt::atomic_write_file(a2, "preset bytes one");
  s.restore_from = a2;
  EXPECT_EQ(derive_key(s).value, ka);

  // Unreadable preset: keying throws (and ServeCore turns it into a
  // failure, below), it must not silently key on an empty image.
  s.restore_from = temp_dir("no_such_preset.ckpt");
  EXPECT_THROW((void)derive_key(s), std::exception);

  std::remove(a.c_str());
  std::remove(a2.c_str());
  std::remove(b.c_str());
}

// ---------------------------------------------------------------- caching

TEST(ServeCache, RepeatSubmissionIsAByteIdenticalHit) {
  ServeCore::Options opt;
  opt.store_dir = temp_dir("hit_store");
  opt.jobs = 1;
  ServeCore core(opt);

  const JobSpec spec = small_is();
  const ServeCore::Response cold = core.submit(spec);
  ASSERT_TRUE(cold.ok) << cold.error;
  EXPECT_FALSE(cold.cached);
  EXPECT_FALSE(cold.result.empty());

  const ServeCore::Response hit = core.submit(spec);
  ASSERT_TRUE(hit.ok) << hit.error;
  EXPECT_TRUE(hit.cached);
  EXPECT_EQ(hit.result, cold.result);
  EXPECT_EQ(hit.key, cold.key);

  const ServeCore::Counters c = core.counters();
  EXPECT_EQ(c.executed, 1u);
  EXPECT_EQ(c.cache.hits, 1u);
  EXPECT_EQ(c.cache.misses, 1u);
  EXPECT_EQ(c.cache.stores, 1u);

  // "Restart": a fresh core over the same store directory hits from disk.
  ServeCore core2(opt);
  const ServeCore::Response warm = core2.submit(spec);
  ASSERT_TRUE(warm.ok) << warm.error;
  EXPECT_TRUE(warm.cached);
  EXPECT_EQ(warm.result, cold.result);
  EXPECT_EQ(core2.counters().executed, 0u);
}

TEST(ServeCache, CorruptStoreFileDegradesToMissAndHeals) {
  ServeCore::Options opt;
  opt.store_dir = temp_dir("corrupt_store");
  opt.jobs = 1;
  const JobSpec spec = small_cg();
  std::string reference;
  {
    ServeCore core(opt);
    const ServeCore::Response cold = core.submit(spec);
    ASSERT_TRUE(cold.ok) << cold.error;
    reference = cold.result;
  }
  // Corrupt the entry on disk; a fresh core must not serve it as a hit.
  ResultCache probe(opt.store_dir);
  const std::string path = probe.path_of(derive_key(spec));
  ckpt::atomic_write_file(path, "ksr-serve-cache v1 key=feedfacefeedface\n"
                                "machine=bogus;\n{\"not\":\"the result\"}\n");
  ServeCore core(opt);
  const ServeCore::Response r = core.submit(spec);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_FALSE(r.cached);
  EXPECT_EQ(r.result, reference);
  const ServeCore::Counters c = core.counters();
  EXPECT_EQ(c.executed, 1u);
  EXPECT_GE(c.cache.load_errors, 1u);
  // The re-execution healed the entry: next submission hits again.
  const ServeCore::Response healed = core.submit(spec);
  EXPECT_TRUE(healed.cached);
  EXPECT_EQ(healed.result, reference);
}

TEST(ServeCache, FailuresAreNeverCached) {
  ServeCore::Options opt;  // memory-only store
  opt.jobs = 1;
  ServeCore core(opt);
  JobSpec bad = small_is();
  bad.restore_from = temp_dir("missing_preset.ckpt");
  const ServeCore::Response r1 = core.submit(bad);
  EXPECT_FALSE(r1.ok);
  EXPECT_FALSE(r1.cached);
  EXPECT_FALSE(r1.error.empty());
  const ServeCore::Response r2 = core.submit(bad);
  EXPECT_FALSE(r2.ok);
  EXPECT_FALSE(r2.cached);
  const ServeCore::Counters c = core.counters();
  EXPECT_EQ(c.failures, 2u);
  EXPECT_EQ(c.cache.stores, 0u);
  EXPECT_EQ(c.executed, 0u);
}

TEST(ServeCache, ConcurrentDuplicatesDedupToOneExecution) {
  ServeCore::Options opt;  // memory-only
  opt.jobs = 1;
  ServeCore core(opt);
  const JobSpec spec = small_is();

  constexpr std::size_t kClients = 4;
  std::vector<ServeCore::Response> rs(kClients);
  {
    std::vector<std::thread> ts;
    ts.reserve(kClients);
    for (std::size_t i = 0; i < kClients; ++i) {
      ts.emplace_back([&core, &rs, &spec, i] { rs[i] = core.submit(spec); });
    }
    for (auto& t : ts) t.join();
  }
  int uncached = 0;
  for (const ServeCore::Response& r : rs) {
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.result, rs[0].result);
    if (!r.cached) ++uncached;
  }
  // Exactly one caller simulated; everyone else was served its bytes
  // (in-flight wait or cache hit, depending on arrival time).
  EXPECT_EQ(uncached, 1);
  const ServeCore::Counters c = core.counters();
  EXPECT_EQ(c.executed, 1u);
  EXPECT_EQ(c.cache.stores, 1u);
  EXPECT_EQ(c.inflight_dedup + c.cache.hits,
            static_cast<std::uint64_t>(kClients - 1));
}

TEST(ServeCache, BatchMatchesSerialSubmission) {
  const std::vector<JobSpec> specs = {small_is(2), small_cg(2), small_is(4)};

  ServeCore::Options opt;
  opt.jobs = 1;
  ServeCore serial(opt);
  std::vector<std::string> want;
  for (const JobSpec& s : specs) {
    const ServeCore::Response r = serial.submit(s);
    ASSERT_TRUE(r.ok) << r.error;
    want.push_back(r.result);
  }

  opt.jobs = 3;
  ServeCore pooled(opt);
  const std::vector<ServeCore::Response> rs = pooled.submit_batch(specs);
  ASSERT_EQ(rs.size(), specs.size());
  for (std::size_t i = 0; i < rs.size(); ++i) {
    ASSERT_TRUE(rs[i].ok) << rs[i].error;
    EXPECT_EQ(rs[i].result, want[i]) << "batch result " << i;
  }
}

// ---------------------------------------------------------------- daemon

TEST(ServeDaemon, ParallelClientsMatchSerialBytes) {
  const JobSpec spec = small_is();

  ServeCore::Options ref_opt;
  ref_opt.jobs = 1;
  ServeCore ref(ref_opt);
  const ServeCore::Response want = ref.submit(spec);
  ASSERT_TRUE(want.ok) << want.error;

  SocketServer::Options opt;
  opt.socket_path = temp_dir("daemon.sock");
  opt.core.jobs = 1;
  SocketServer server(opt);
  std::thread accept_thread([&server] { server.run(); });

  Json req = Json::object();
  req.set("op", Json::str("submit"));
  req.set("job", spec.to_json());
  const std::string line = req.dump();

  constexpr std::size_t kClients = 3;
  std::vector<std::string> responses(kClients);
  {
    std::vector<std::thread> ts;
    ts.reserve(kClients);
    for (std::size_t i = 0; i < kClients; ++i) {
      ts.emplace_back([&opt, &line, &responses, i] {
        Client c(opt.socket_path);
        c.send_line(line);
        responses[i] = c.read_line();
      });
    }
    for (auto& t : ts) t.join();
  }
  for (const std::string& r : responses) {
    std::string err;
    const Json j = Json::parse(r, &err);
    ASSERT_TRUE(err.empty()) << err << " in " << r;
    ASSERT_NE(j.find("ok"), nullptr);
    EXPECT_TRUE(j.find("ok")->as_bool()) << r;
    ASSERT_NE(j.find("result"), nullptr);
    // The served result is the exact bytes the in-process run produced.
    EXPECT_EQ(j.find("result")->dump(), want.result);
  }

  // Protocol ops: ping, a batch submit (ordered responses), stats, then a
  // clean shutdown that unblocks the accept loop.
  {
    Client c(opt.socket_path);
    c.send_line(R"({"op":"ping"})");
    EXPECT_NE(c.read_line().find("\"op\":\"ping\""), std::string::npos);

    Json batch = Json::object();
    batch.set("op", Json::str("submit"));
    Json jobs = Json::array();
    jobs.push(small_cg().to_json());
    jobs.push(spec.to_json());
    batch.set("jobs", jobs);
    c.send_line(batch.dump());
    const std::string r0 = c.read_line();
    const std::string r1 = c.read_line();
    EXPECT_NE(r0.find("\"index\":0"), std::string::npos) << r0;
    EXPECT_NE(r1.find("\"index\":1"), std::string::npos) << r1;
    EXPECT_NE(r1.find(want.result), std::string::npos) << r1;

    c.send_line(R"({"op":"stats"})");
    EXPECT_NE(c.read_line().find("\"executed\":"), std::string::npos);

    c.send_line(R"({"op":"shutdown"})");
    EXPECT_NE(c.read_line().find("\"ok\":true"), std::string::npos);
  }
  accept_thread.join();
  EXPECT_EQ(server.core().counters().executed, 2u);  // is + cg, once each
}

TEST(ServeDaemon, MalformedRequestsGetErrorLines) {
  SocketServer::Options opt;
  opt.socket_path = temp_dir("daemon_err.sock");
  SocketServer server(opt);
  std::thread accept_thread([&server] { server.run(); });
  {
    Client c(opt.socket_path);
    c.send_line("this is not json");
    EXPECT_NE(c.read_line().find("\"ok\":false"), std::string::npos);
  }
  {
    Client c(opt.socket_path);
    c.send_line(R"({"op":"submit","job":{"workload":"bogus"}})");
    const std::string r = c.read_line();
    EXPECT_NE(r.find("\"ok\":false"), std::string::npos) << r;
    EXPECT_NE(r.find("bogus"), std::string::npos) << r;
    c.send_line(R"({"op":"submit","job":{"procz":1}})");
    EXPECT_NE(c.read_line().find("unknown job field"), std::string::npos);
  }
  server.shutdown();
  accept_thread.join();
  EXPECT_EQ(server.core().counters().executed, 0u);
}

// --------------------------------------------------------------- campaign

Campaign tiny_campaign() {
  std::string err;
  const Json manifest = Json::parse(
      R"({"name":"tiny",)"
      R"("base":{"machine":"ksr1","scale":64},)"
      R"("sweeps":[)"
      R"({"base":{"workload":"is","log2_keys":10,"log2_buckets":6},)"
      R"("axes":{"procs":[1,2]}},)"
      R"({"base":{"workload":"cg","n":120,"nnz_per_row":6,"iters":1},)"
      R"("axes":{"procs":[2]}})"
      R"(]})",
      &err);
  EXPECT_TRUE(err.empty()) << err;
  Campaign c;
  EXPECT_TRUE(expand_manifest(manifest, &c, &err)) << err;
  return c;
}

TEST(ServeCampaign, ManifestExpandsInDeterministicOrder) {
  const Campaign c = tiny_campaign();
  ASSERT_EQ(c.jobs.size(), 3u);
  EXPECT_EQ(c.name, "tiny");
  EXPECT_EQ(c.jobs[0].workload, "is");
  EXPECT_EQ(c.jobs[0].procs, 1u);
  EXPECT_EQ(c.jobs[1].workload, "is");
  EXPECT_EQ(c.jobs[1].procs, 2u);
  EXPECT_EQ(c.jobs[2].workload, "cg");
  EXPECT_EQ(c.jobs[2].procs, 2u);
  // Every job inherits the manifest base.
  for (const JobSpec& j : c.jobs) EXPECT_EQ(j.scale, 64u);
}

TEST(ServeCampaign, ManifestSchemaViolationsAreRejected) {
  const char* bad[] = {
      R"({"sweeps":[{"axes":{"procs":[1]}}],"typo":1})",
      R"({"sweeps":[{"axes":{"procs":[]}}]})",
      R"({"sweeps":[{"axes":{"procz":[1]}}]})",
      R"({"sweeps":[]})",
      R"({"sweeps":[{"base":{"workload":"nope"}}]})",
      R"({"base":7,"sweeps":[{}]})",
  };
  for (const char* text : bad) {
    std::string err;
    const Json manifest = Json::parse(text, &err);
    ASSERT_TRUE(err.empty()) << text;
    Campaign c;
    err.clear();
    EXPECT_FALSE(expand_manifest(manifest, &c, &err)) << text;
    EXPECT_FALSE(err.empty()) << text;
  }
}

TEST(ServeCampaign, ResumesFromCacheWithByteIdenticalDatabase) {
  const Campaign campaign = tiny_campaign();
  ServeCore::Options opt;
  opt.store_dir = temp_dir("campaign_store");
  opt.jobs = 1;

  // "Kill halfway": seed the store with only the first two jobs done, the
  // way an interrupted campaign run leaves it.
  {
    ServeCore head(opt);
    ASSERT_TRUE(head.submit(campaign.jobs[0]).ok);
    ASSERT_TRUE(head.submit(campaign.jobs[1]).ok);
  }

  const std::string out1 = temp_dir("campaign_resumed");
  ServeCore resumed_core(opt);
  const CampaignOutcome resumed =
      run_campaign(campaign, resumed_core, out1);
  EXPECT_EQ(resumed.jobs, 3u);
  EXPECT_EQ(resumed.hits, 2u);       // the pre-killed prefix came from disk
  EXPECT_EQ(resumed.executed, 1u);   // only the tail simulated
  EXPECT_EQ(resumed.failures, 0u);

  // A second full pass is 100% hits and reproduces the database bytes.
  const std::string out2 = temp_dir("campaign_replayed");
  ServeCore replay_core(opt);
  const CampaignOutcome replayed =
      run_campaign(campaign, replay_core, out2);
  EXPECT_EQ(replayed.hits, 3u);
  EXPECT_EQ(replayed.hit_rate_pct(), 100u);

  const auto slurp = [](const std::string& p) {
    const std::vector<std::byte> b = ckpt::read_file(p);
    return std::string(reinterpret_cast<const char*>(b.data()), b.size());
  };
  EXPECT_EQ(slurp(out1 + ".jsonl"), slurp(out2 + ".jsonl"));
  EXPECT_EQ(slurp(out1 + ".csv"), slurp(out2 + ".csv"));
  EXPECT_FALSE(slurp(out1 + ".jsonl").empty());
}

}  // namespace
}  // namespace ksr::serve
