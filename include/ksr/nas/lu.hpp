#pragma once

#include <cstdint>

#include "ksr/machine/machine.hpp"

// NAS LU application — extension.
//
// LU (SSOR) completes the trio of NAS applications (SP and BT being the
// other two). Its parallel structure is unlike anything else in the suite:
// the lower-triangular sweep updates point (x,y,z) using the *already
// updated* values at (x−1,y,z), (x,y−1,z) and (x,y,z−1) — a Gauss-Seidel
// dependence — so processors cannot simply split the grid and meet at
// barriers. The classic shared-memory parallelisation is a 2-D software
// pipeline: partition by y-slabs; a processor may process its rows of
// z-plane k only after its lower neighbour has finished that plane, so
// computation flows as a diagonal wavefront with one flag hand-off per
// (processor, plane). The upper-triangular sweep runs the mirrored
// pipeline. Fine-grain producer/consumer synchronization at this rate is
// exactly the traffic pattern the paper's barrier study reasons about.
namespace ksr::nas {

struct LuConfig {
  unsigned n = 12;          // grid edge (paper-scale LU runs 64^3)
  unsigned iterations = 2;  // SSOR iterations (one lower+upper pair each)
  std::uint64_t work_per_point = 60;  // 5x5 block arithmetic per point
  bool use_poststore = true;          // push pipeline flags to the waiter
};

struct LuResult {
  double seconds_per_iteration = 0.0;
  double total_seconds = 0.0;
  double checksum = 0.0;  // invariant across processor counts
};

/// Run LU on the machine; all cells participate.
LuResult run_lu(machine::Machine& m, const LuConfig& cfg);

}  // namespace ksr::nas
