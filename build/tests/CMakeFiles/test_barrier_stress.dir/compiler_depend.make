# Empty compiler generated dependencies file for test_barrier_stress.
# This may be replaced when dependencies are built.
