#pragma once

#include <cstdint>
#include <vector>

#include "ksr/machine/machine.hpp"

// NAS Multigrid (MG) kernel — extension.
//
// The paper implemented three of the five NAS kernels (EP, CG, IS); MG and
// FT complete the set. MG approximately solves the discrete Poisson problem
// with V-cycles: smooth, compute the residual, restrict it to a coarser
// grid, recurse, prolongate the correction back and smooth again. On a
// shared-memory machine the natural partition is by z-planes at *every*
// level; each smoothing/restriction step reads one halo plane from each
// neighbouring slab. The interesting scalability property is the coarse
// levels: at 2^3 or 4^3 points there is less work than processors, so the
// communication/synchronization floor shows up exactly as COMA remote
// latencies — a good stress of the ring at fine grain.
namespace ksr::nas {

struct MgConfig {
  unsigned log2_n = 5;      // grid edge 2^log2_n (paper-scale MG is 256^3)
  unsigned v_cycles = 2;    // timed V-cycles
  unsigned smooth_steps = 2;
  std::uint64_t work_per_point = 8;  // stencil FP work
  std::uint64_t seed = 7001;
};

struct MgResult {
  double seconds = 0.0;           // timed region (slowest cell)
  double initial_residual = 0.0;  // ||r|| before the V-cycles
  double final_residual = 0.0;    // ||r|| after (must shrink)
  double checksum = 0.0;          // invariant across processor counts
};

/// Run MG on the machine; all cells participate.
MgResult run_mg(machine::Machine& m, const MgConfig& cfg);

/// Host-side reference with identical arithmetic (for verification).
MgResult mg_reference(const MgConfig& cfg);

}  // namespace ksr::nas
