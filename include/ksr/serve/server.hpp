#pragma once

#include <atomic>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "ksr/serve/core.hpp"

// `ksrsim serve` — simulation-as-a-service over a local AF_UNIX stream
// socket (docs/SERVING.md). The protocol is newline-delimited JSON: one
// request object per line in, one response object per line out, on the same
// connection, in submission order. Operations:
//
//   {"op":"ping"}                      → {"ok":true,"op":"ping",...}
//   {"op":"submit","job":{...}}        → one result line
//   {"op":"submit","jobs":[{...},...]} → one result line per job, in order
//   {"op":"stats"}                     → cache/dedup counters
//   {"op":"shutdown"}                  → ack, then the daemon exits
//
// Each connection gets its own thread; job batches dispatch through the
// shared ServeCore (SweepRunner pool + content-addressed result cache), so
// concurrent clients submitting the same spec dedup to one execution.
namespace ksr::serve {

class SocketServer {
 public:
  struct Options {
    std::string socket_path;
    ServeCore::Options core;
  };

  /// Binds and listens (replacing a stale socket file at the path).
  /// Throws std::runtime_error with the path on any socket failure.
  explicit SocketServer(const Options& opt);
  ~SocketServer();
  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Accept loop; returns after shutdown() (from a handler or another
  /// thread) once every connection thread has drained.
  void run();

  /// Stop accepting, wake blocked connections, and make run() return.
  void shutdown();

  [[nodiscard]] ServeCore& core() noexcept { return core_; }
  [[nodiscard]] const std::string& socket_path() const noexcept {
    return path_;
  }

 private:
  void handle_connection(int fd);
  /// Handle one request line; returns false when the connection should
  /// close (protocol error or shutdown).
  bool handle_request(int fd, const std::string& line);

  ServeCore core_;
  std::string path_;
  int listen_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::mutex conn_mu_;
  std::vector<std::thread> conn_threads_;
  std::set<int> live_fds_;
};

/// Minimal blocking client for the daemon protocol — used by `ksrsim
/// submit`, the CI smoke stage and the tests. One request line out, N
/// response lines back.
class Client {
 public:
  explicit Client(const std::string& socket_path);  // throws on connect
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  void send_line(const std::string& line);
  /// One newline-terminated response (without the newline). Throws on EOF.
  [[nodiscard]] std::string read_line();

 private:
  int fd_ = -1;
  std::string buf_;
};

}  // namespace ksr::serve
