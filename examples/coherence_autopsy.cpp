// Coherence autopsy: put a logic analyser on the ring. Runs ONE episode of
// a chosen barrier with the event tracer attached and prints the complete,
// annotated timeline of ring packets and coherence transitions — the
// clearest way to see *why* the algorithms differ (hot-spot serialization
// for the counter, parallel pair traffic for the tournament, the packed
// word ping-pong for MCS).
//
//   $ ./coherence_autopsy [barrier] [procs]
//   $ ./coherence_autopsy counter 4
//   $ ./coherence_autopsy mcs 8
#include <cstdio>
#include <map>
#include <string>

#include "ksr/machine/ksr_machine.hpp"
#include "ksr/sim/trace.hpp"
#include "ksr/sync/barrier.hpp"

int main(int argc, char** argv) {
  using namespace ksr;  // NOLINT

  const std::map<std::string, sync::BarrierKind> kinds = {
      {"counter", sync::BarrierKind::kCounter},
      {"tree", sync::BarrierKind::kTree},
      {"tree-m", sync::BarrierKind::kTreeM},
      {"dissemination", sync::BarrierKind::kDissemination},
      {"tournament", sync::BarrierKind::kTournament},
      {"tournament-m", sync::BarrierKind::kTournamentM},
      {"mcs", sync::BarrierKind::kMcs},
      {"mcs-m", sync::BarrierKind::kMcsM},
      {"system", sync::BarrierKind::kSystem}};
  const std::string name = argc > 1 ? argv[1] : "tournament-m";
  const unsigned procs =
      argc > 2 ? static_cast<unsigned>(std::stoul(argv[2])) : 4u;
  const auto it = kinds.find(name);
  if (it == kinds.end()) {
    std::fprintf(stderr, "unknown barrier '%s'\n", name.c_str());
    return 1;
  }

  machine::KsrMachine m(machine::MachineConfig::ksr1(procs));
  auto barrier = sync::make_barrier(m, it->second);
  sim::Tracer tracer;

  // Warm-up episode untraced, then trace exactly one episode.
  m.run([&](machine::Cpu& cpu) { barrier->arrive(cpu); });
  m.attach_tracer(&tracer);
  double episode_us = 0;
  m.run([&](machine::Cpu& cpu) {
    const double t0 = cpu.seconds();
    barrier->arrive(cpu);
    if (cpu.seconds() - t0 > episode_us) episode_us = cpu.seconds() - t0;
  });
  episode_us *= 1e6;

  std::printf("%s barrier, %u processors — one episode, %.1f us\n\n",
              std::string(barrier->name()).c_str(), procs, episode_us);
  std::printf("%10s  %-10s %-16s %8s %6s %10s\n", "t (ns)", "category",
              "event", "subject", "actor", "detail");
  for (const auto& e : tracer) {
    const std::string cat(tracer.category_name(e.cat));
    const std::string ev(tracer.event_name(e.ev));
    std::printf("%10llu  %-10s %-16s %8llu %6llu %10lld\n",
                static_cast<unsigned long long>(e.t), cat.c_str(), ev.c_str(),
                static_cast<unsigned long long>(e.subject),
                static_cast<unsigned long long>(e.actor),
                static_cast<long long>(e.detail));
  }

  std::printf("\nsummary: %zu events | ring inject/deliver %zu/%zu | "
              "grants s/e/a %zu/%zu/%zu | invalidations %zu | NACKs %zu\n",
              tracer.size(), tracer.count("ring", "inject"),
              tracer.count("ring", "deliver"),
              tracer.count("coherence", "grant-shared"),
              tracer.count("coherence", "grant-exclusive"),
              tracer.count("coherence", "grant-atomic"),
              tracer.count("coherence", "invalidate"),
              tracer.count("coherence", "nack"));
  std::printf("\nTry: ./coherence_autopsy counter %u   (watch the NACK storm\n"
              "on one sub-page) vs ./coherence_autopsy dissemination %u\n"
              "(disjoint pairs riding the ring in parallel).\n",
              procs, procs);
  return 0;
}
