#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "ksr/obs/tracer.hpp"

// Trace analysis and simulated-time profiling.
//
// analyze() folds a Tracer record stream (in-process buffer or records
// re-parsed from an exported CSV — see tools/ksrprof) into three reports:
//
//  * a per-subpage contention profile that classifies each sub-page's
//    sharing pattern (read-only, migratory, producer-consumer,
//    falsely-shared, lock) from the coherence event stream, ranked by
//    invalidations + nacks + snarfs. False sharing is detected from the
//    demand-access witnesses carried in the grant records' aux word: two or
//    more writers whose witnessed byte offsets never overlap, with ownership
//    ping-ponging between them, are fighting over the coherence unit rather
//    than the data — the paper's IS bucket-array diagnosis, automated.
//
//  * a sync critical-path report: per-episode barrier arrival skew with
//    last-arriver attribution, and per-lock hold-vs-wait decomposition with
//    contention depth (max concurrently-waiting cpus).
//
//  * a stall profile folding the per-cpu stall events (inject-wait,
//    nack-backoff, remote-acquire) into simulated-ns attribution by
//    (cpu, kind, region), exportable as collapsed stacks for
//    speedscope / inferno flamegraph tools.
//
// All rendering is integer-math only, so reports are byte-identical across
// hosts for the same trace. Sync and stall events carry cpu-local clocks
// that run ahead of the global engine clock (docs/OBSERVABILITY.md); the
// analyzer only ever compares those timestamps *within* one episode or one
// lock subject, where the skew itself is the quantity being measured.
namespace ksr::obs {

/// Named SVA range (a heap region) used to resolve sub-page ids to
/// human-readable names. Spans must be non-overlapping; heap allocation
/// order (ascending base) is the natural input.
struct RegionSpan {
  std::uint64_t base = 0;
  std::uint64_t bytes = 0;
  std::string name;
};

enum class SharingPattern : std::uint8_t {
  kPrivate,           // at most one cell ever touched it
  kReadOnly,          // >= 2 readers, nobody writes
  kProducerConsumer,  // exactly one writer, >= 1 distinct reader
  kMigratory,         // >= 2 writers to the *same* words (true sharing)
  kFalselyShared,     // >= 2 writers to provably disjoint words, ownership
                      // ping-pong: the 128-B coherence unit is the conflict
  kLock,              // atomic (get_subpage) protocol traffic dominates
};

[[nodiscard]] std::string_view to_string(SharingPattern p) noexcept;

struct SubpageProfile {
  std::uint64_t subpage = 0;
  std::string region;               // resolved name; "" when unmapped
  std::uint64_t region_offset = 0;  // sub-page base offset within the region
  SharingPattern pattern = SharingPattern::kPrivate;
  unsigned readers = 0;  // distinct cells granted a readable copy
  unsigned writers = 0;  // distinct cells granted exclusive (non-atomic)
  std::uint64_t grants_shared = 0;
  std::uint64_t grants_exclusive = 0;
  std::uint64_t grants_atomic = 0;
  std::uint64_t invalidations = 0;
  std::uint64_t nacks = 0;
  std::uint64_t snarfs = 0;
  std::uint64_t poststores = 0;
  std::uint64_t owner_changes = 0;  // exclusive ownership moved cells
  std::uint64_t score = 0;          // invalidations + nacks + snarfs
  bool disjoint_writes = false;     // writers' witnessed offsets never overlap
};

struct BarrierEpisode {
  std::uint64_t index = 0;  // k-th global episode in the trace
  sim::Time first_arrive = 0;
  sim::Time last_arrive = 0;
  sim::Duration skew = 0;  // last_arrive - first_arrive
  unsigned last_cpu = 0;   // the straggler this episode waited for
  unsigned arrivals = 0;
};

struct BarrierReport {
  std::vector<BarrierEpisode> episodes;
  std::vector<std::uint64_t> last_arriver;  // episodes lost to cpu i
  sim::Duration total_skew = 0;
  sim::Duration max_skew = 0;
};

struct LockProfile {
  std::uint64_t subject = 0;  // lock id as logged (0 = write, 1 = read side
                              // for the rw-lock family)
  std::uint64_t acquisitions = 0;
  std::uint64_t wait_ns = 0;  // summed acquire latency across cpus
  std::uint64_t hold_ns = 0;  // summed acquired->release time
  std::uint64_t max_wait_ns = 0;
  unsigned max_depth = 0;  // max cpus waiting simultaneously
};

struct StallEntry {
  unsigned cpu = 0;
  std::uint16_t ev = 0;  // kEvInjectWait / kEvNackBackoff / kEvRemoteAcquire
  std::string kind;      // its name ("inject-wait", ...)
  std::string region;    // region of the stalled-on sub-page; "" unmapped
  std::uint64_t total_ns = 0;
  std::uint64_t count = 0;
};

struct Analysis {
  std::uint64_t events = 0;   // records analyzed
  std::uint64_t dropped = 0;  // source-tracer drop count, when known
  unsigned cpus = 0;          // 1 + highest cpu id seen
  std::vector<SubpageProfile> subpages;  // score desc, then subpage asc
  BarrierReport barriers;
  std::vector<LockProfile> locks;   // subject asc
  std::vector<StallEntry> stalls;   // total_ns desc, then cpu/ev/region asc
  std::vector<RegionSpan> regions;  // as passed in (for the report header)
};

/// Analyze a record stream. `regions` maps sub-pages to names (may be
/// empty); `dropped` is carried into the report so truncated traces stay
/// visibly truncated.
[[nodiscard]] Analysis analyze(const Tracer::Record* begin,
                               const Tracer::Record* end,
                               std::vector<RegionSpan> regions = {},
                               std::uint64_t dropped = 0);

[[nodiscard]] Analysis analyze(const Tracer& t,
                               std::vector<RegionSpan> regions = {});

struct ReportOptions {
  std::size_t top_n = 10;  // hot sub-pages listed in the ranking table
};

/// Render the human-readable profile. Integer math only: byte-identical
/// across hosts for identical traces.
void write_report(std::ostream& os, const Analysis& a,
                  const ReportOptions& opt = {});

/// Collapsed-stack stall attribution ("cpu0;remote-acquire;is.keyden 1234"
/// per line, value = simulated ns), loadable by speedscope and inferno.
void write_collapsed_stacks(std::ostream& os, const Analysis& a);

}  // namespace ksr::obs
