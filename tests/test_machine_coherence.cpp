// Coherence-protocol behaviour of the simulated KSR machine: state
// migration, invalidation, snarfing, atomic (get_subpage) semantics,
// poststore, prefetch, and determinism.
#include <gtest/gtest.h>

#include <memory>

#include "ksr/machine/ksr_machine.hpp"

namespace ksr::machine {
namespace {

using mem::SharedArray;

MachineConfig small_ksr(unsigned nproc) {
  return MachineConfig::ksr1(nproc);
}

TEST(Coherence, FirstTouchCreatesExclusiveOwnership) {
  KsrMachine m(small_ksr(2));
  auto arr = m.alloc<double>("a", 16);
  m.run([&](Cpu& cpu) {
    if (cpu.id() == 0) cpu.write(arr, 0, 1.5);
  });
  const auto v = m.dir_view(mem::subpage_of(arr.addr(0)));
  EXPECT_EQ(v.holders, 0b01u);
  EXPECT_EQ(v.owner, 0);
  EXPECT_FALSE(v.atomic);
  EXPECT_DOUBLE_EQ(arr.value(0), 1.5);
}

TEST(Coherence, ReadBySecondCellSharesTheLine) {
  KsrMachine m(small_ksr(2));
  auto arr = m.alloc<double>("a", 16);
  auto flag = m.alloc<int>("flag", 1);
  m.run([&](Cpu& cpu) {
    if (cpu.id() == 0) {
      cpu.write(arr, 0, 2.25);
      cpu.write(flag, 0, 1);
    } else {
      while (cpu.read(flag, 0) == 0) cpu.work(10);
      EXPECT_DOUBLE_EQ(cpu.read(arr, 0), 2.25);
    }
  });
  const auto v = m.dir_view(mem::subpage_of(arr.addr(0)));
  EXPECT_EQ(v.holders, 0b11u);
  EXPECT_EQ(v.owner, -1);  // no exclusive owner once shared
}

TEST(Coherence, WriteInvalidatesOtherCopies) {
  KsrMachine m(small_ksr(3));
  auto arr = m.alloc<int>("a", 16);
  auto phase = m.alloc<int>("phase", 64);  // one flag per sub-page... index 0 only
  m.run([&](Cpu& cpu) {
    if (cpu.id() == 0) {
      cpu.write(arr, 0, 7);
      cpu.write(phase, 0, 1);
    } else if (cpu.id() == 1) {
      while (cpu.read(phase, 0) < 1) cpu.work(10);
      EXPECT_EQ(cpu.read(arr, 0), 7);  // now shared by 0 and 1
      cpu.write(phase, 0, 2);
    } else {
      while (cpu.read(phase, 0) < 2) cpu.work(10);
      cpu.write(arr, 0, 9);  // invalidates cells 0 and 1
    }
  });
  const auto v = m.dir_view(mem::subpage_of(arr.addr(0)));
  EXPECT_EQ(v.holders, 0b100u);
  EXPECT_EQ(v.owner, 2);
  // The previous holders keep placeholders for the line.
  EXPECT_EQ(v.placeholders & 0b11u, 0b11u);
  EXPECT_EQ(arr.value(0), 9);
  EXPECT_GE(m.cell_pmon(0).invalidations_received, 1u);
  EXPECT_GE(m.cell_pmon(1).invalidations_received, 1u);
}

TEST(Coherence, ReadSnarfingRefreshesAllPlaceholders) {
  KsrMachine m(small_ksr(4));
  auto arr = m.alloc<int>("a", 16);
  auto phase = m.alloc<int>("phase", 1);
  m.run([&](Cpu& cpu) {
    // Everyone reads; then cell 0 writes (invalidating 1..3); then cell 1
    // re-reads — snarfing should refresh 2 and 3 as well.
    if (cpu.id() != 0) {
      (void)cpu.read(arr, 0);
      if (cpu.id() == 1) {
        while (cpu.read(phase, 0) < 1) cpu.work(10);
        EXPECT_EQ(cpu.read(arr, 0), 5);
        cpu.write(phase, 0, 2);
      }
    } else {
      cpu.work(50000);  // let the others cache the line first
      cpu.write(arr, 0, 5);
      cpu.write(phase, 0, 1);
      while (cpu.read(phase, 0) < 2) cpu.work(10);
    }
  });
  const auto v = m.dir_view(mem::subpage_of(arr.addr(0)));
  // After cell 1's re-read, snarfing gave 2 and 3 fresh copies too.
  EXPECT_EQ(v.holders, 0b1111u);
  EXPECT_GE(m.cell_pmon(2).snarfs + m.cell_pmon(3).snarfs, 2u);
}

TEST(Coherence, SnarfingCanBeDisabled) {
  auto cfg = small_ksr(4);
  cfg.read_snarfing = false;
  KsrMachine m(cfg);
  auto arr = m.alloc<int>("a", 16);
  auto phase = m.alloc<int>("phase", 1);
  m.run([&](Cpu& cpu) {
    if (cpu.id() != 0) {
      (void)cpu.read(arr, 0);
      if (cpu.id() == 1) {
        while (cpu.read(phase, 0) < 1) cpu.work(10);
        (void)cpu.read(arr, 0);
        cpu.write(phase, 0, 2);
      }
    } else {
      cpu.work(50000);
      cpu.write(arr, 0, 5);
      cpu.write(phase, 0, 1);
      while (cpu.read(phase, 0) < 2) cpu.work(10);
    }
  });
  const auto v = m.dir_view(mem::subpage_of(arr.addr(0)));
  EXPECT_EQ(v.holders & 0b1100u, 0u);  // cells 2,3 still invalid
  EXPECT_EQ(m.cell_pmon(2).snarfs + m.cell_pmon(3).snarfs, 0u);
}

TEST(Coherence, GetSubpageSerializesContenders) {
  KsrMachine m(small_ksr(2));
  auto lock = m.alloc<int>("lock", 1);
  auto data = m.alloc<int>("data", 1);
  m.run([&](Cpu& cpu) {
    for (int i = 0; i < 50; ++i) {
      cpu.get_subpage(lock.addr(0));
      const int v = cpu.read(data, 0);
      cpu.work(100);
      cpu.write(data, 0, v + 1);
      cpu.release_subpage(lock.addr(0));
      cpu.work(200);
    }
  });
  EXPECT_EQ(data.value(0), 100);  // no lost updates despite contention
  // Contention must have caused NACK retries on at least one cell.
  EXPECT_GT(m.cell_pmon(0).ring_nacks + m.cell_pmon(1).ring_nacks, 0u);
}

TEST(Coherence, ReleaseWithoutHoldThrows) {
  KsrMachine m(small_ksr(1));
  auto lock = m.alloc<int>("lock", 1);
  EXPECT_THROW(m.run([&](Cpu& cpu) { cpu.release_subpage(lock.addr(0)); }),
               std::logic_error);
}

TEST(Coherence, PoststorePushesToPlaceholders) {
  KsrMachine m(small_ksr(3));
  auto arr = m.alloc<int>("a", 16);
  auto phase = m.alloc<int>("phase", 1);
  m.run([&](Cpu& cpu) {
    if (cpu.id() == 0) {
      cpu.work(50000);             // others read first
      cpu.poststore(arr, 0, 42);   // write + broadcast
      cpu.work(50000);             // let the packet land
      cpu.write(phase, 0, 1);
    } else {
      (void)cpu.read(arr, 0);  // establish a copy (then invalidated by 0)
      while (cpu.read(phase, 0) < 1) cpu.work(10);
    }
  });
  const auto v = m.dir_view(mem::subpage_of(arr.addr(0)));
  // The poststore refreshed both placeholder cells; writer downgraded.
  EXPECT_EQ(v.holders, 0b111u);
  EXPECT_EQ(v.owner, -1);
  EXPECT_GE(m.cell_pmon(0).poststores_issued, 1u);
}

TEST(Coherence, PrefetchAvoidsDemandStall) {
  KsrMachine m(small_ksr(2));
  auto arr = m.alloc<double>("a", 512);  // several sub-pages
  auto flag = m.alloc<int>("flag", 1);
  double prefetched_cost = 0;
  double cold_cost = 0;
  m.run([&](Cpu& cpu) {
    if (cpu.id() == 0) {
      for (std::size_t i = 0; i < 512; ++i) cpu.write(arr, i, 1.0);
      cpu.write(flag, 0, 1);
    } else {
      while (cpu.read(flag, 0) == 0) cpu.work(10);
      // Cold remote read of sub-page A.
      const double t0 = cpu.seconds();
      (void)cpu.read(arr, 0);
      cold_cost = cpu.seconds() - t0;
      // Prefetch sub-page B, wait ample time, then read it.
      cpu.prefetch(arr.addr(64));  // 64 doubles = 512 B away
      cpu.work(1000);              // 50 us: fetch completes in background
      const double t1 = cpu.seconds();
      (void)cpu.read(arr, 64);
      prefetched_cost = cpu.seconds() - t1;
    }
  });
  EXPECT_GT(cold_cost, 5e-6);         // a ring transaction
  EXPECT_LT(prefetched_cost, 2e-6);   // a local-cache hit
  EXPECT_GE(m.cell_pmon(1).prefetches_issued, 1u);
}

TEST(Coherence, ExclusivePrefetchAvoidsTheWriteUpgrade) {
  KsrMachine m(small_ksr(2));
  auto arr = m.alloc<double>("a", 512);
  auto flag = m.alloc<int>("flag", 1);
  double shared_write_cost = 0;
  double exclusive_write_cost = 0;
  m.run([&](Cpu& cpu) {
    if (cpu.id() == 0) {
      for (std::size_t i = 0; i < 512; ++i) cpu.write(arr, i, 1.0);
      cpu.write(flag, 0, 1);
    } else {
      while (cpu.read(flag, 0) == 0) cpu.work(10);
      // Shared prefetch: the later write still needs an upgrade.
      cpu.prefetch(arr.addr(0));
      cpu.work(1000);
      double t0 = cpu.seconds();
      cpu.write(arr, 0, 2.0);
      shared_write_cost = cpu.seconds() - t0;
      // Exclusive prefetch: the later write hits locally.
      cpu.prefetch(arr.addr(64), /*exclusive=*/true);
      cpu.work(1000);
      t0 = cpu.seconds();
      cpu.write(arr, 64, 2.0);
      exclusive_write_cost = cpu.seconds() - t0;
    }
  });
  EXPECT_GT(shared_write_cost, 5e-6);   // upgrade = ring transaction
  EXPECT_LT(exclusive_write_cost, 2e-6);  // local
}

TEST(Coherence, DeterministicAcrossIdenticalRuns) {
  auto run_once = [] {
    KsrMachine m(MachineConfig::ksr1(8));
    auto arr = m.alloc<int>("a", 4096);
    auto res = m.run([&](Cpu& cpu) {
      for (int rep = 0; rep < 20; ++rep) {
        for (unsigned i = cpu.id(); i < 4096; i += cpu.nproc()) {
          cpu.write(arr, i, static_cast<int>(i));
        }
        cpu.work(cpu.rng().below(100));
      }
    });
    return res.seconds;
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

TEST(Coherence, TwoLeafRingsCommunicateThroughArds) {
  KsrMachine m(MachineConfig::ksr1(64));
  ASSERT_EQ(m.leaf_count(), 2u);
  ASSERT_NE(m.level1_ring(), nullptr);
  auto arr = m.alloc<int>("a", 16);
  auto flag = m.alloc<int>("flag", 1);
  double cross_cost = 0;
  m.run([&](Cpu& cpu) {
    if (cpu.id() == 0) {
      cpu.write(arr, 0, 11);
      cpu.write(flag, 0, 1);
    } else if (cpu.id() == 63) {  // other leaf ring
      while (cpu.read(flag, 0) == 0) cpu.work(10);
      const double t0 = cpu.seconds();
      EXPECT_EQ(cpu.read(arr, 0), 11);
      cross_cost = cpu.seconds() - t0;
    }
  });
  // Crossing the ARDs must cost clearly more than a same-ring access.
  EXPECT_GT(cross_cost, 12e-6);
}

TEST(Coherence, AtomicLineSurvivesEvictionPressure) {
  // Regression: while a cell holds a sub-page Atomic, streaming enough data
  // to churn its whole (minimally sized) local cache must not evict the
  // locked line — the release would otherwise fault.
  KsrMachine m(MachineConfig::ksr1(2).scaled_by(1u << 20));  // floor-size caches
  auto lock = m.alloc<int>("lock", 1);
  auto big = m.alloc<double>("big", 256 * 1024 / 8 * 4);  // >> local cache
  m.run([&](Cpu& cpu) {
    if (cpu.id() != 0) return;
    cpu.get_subpage(lock.addr(0));
    cpu.read_range(big.addr(0), big.size() * sizeof(double));
    cpu.release_subpage(lock.addr(0));  // must not throw
  });
  EXPECT_FALSE(m.dir_view(mem::subpage_of(lock.addr(0))).atomic);
}

TEST(Coherence, ResetMemorySystemForgetsEverything) {
  KsrMachine m(small_ksr(2));
  auto arr = m.alloc<int>("a", 16);
  m.run([&](Cpu& cpu) {
    if (cpu.id() == 0) cpu.write(arr, 0, 3);
  });
  EXPECT_NE(m.dir_view(mem::subpage_of(arr.addr(0))).holders, 0u);
  m.reset_memory_system();
  EXPECT_EQ(m.dir_view(mem::subpage_of(arr.addr(0))).holders, 0u);
  EXPECT_EQ(arr.value(0), 3);  // data survives; only cache state is dropped
}

}  // namespace
}  // namespace ksr::machine
