#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "ksr/sim/time.hpp"

// Allocation-free structured event tracing.
//
// Components log (time, category, event, subject, actor, detail) tuples when
// a Tracer is attached; with no tracer attached the hot paths pay one
// null-pointer test. The attached path is just as cheap: categories and
// events are interned to small integer ids at attach/startup time, a record
// is a fixed 40-byte POD written into a buffer preallocated up front, and a
// per-category enable mask turns a disabled category into a single branch.
// Tracer::log never allocates, so attaching a tracer cannot perturb host
// behaviour mid-run (and, by construction, it never touches simulated state
// at all — see docs/OBSERVABILITY.md for the non-perturbation contract).
//
// Capacity is bounded (never OOM a long run), but truncation is *accounted*:
// records past the capacity bump dropped() instead of vanishing silently,
// and every CSV dump ends with a "# events=N dropped=M" footer so a partial
// trace is distinguishable from a complete one.
namespace ksr::obs {

/// Builtin trace categories. The value is both the index into the interned
/// name table and the bit position in the tracer's category enable mask.
enum : std::uint16_t {
  kCatRing = 0,       // slotted-ring slot traffic
  kCatCoherence = 1,  // directory transitions: grants, invalidates, snarfs
  kCatSync = 2,       // lock / barrier episodes
  kCatStall = 3,      // per-cpu stall attribution (inject waits, backoffs)
  kBuiltinCategories = 4,
};

/// Builtin event ids (shared across categories; the (cat, ev) pair is the
/// full event identity). Runtime-interned names continue after these.
enum : std::uint16_t {
  // ring
  kEvInject = 0,
  kEvDeliver,
  // coherence
  kEvInvalidate,
  kEvNack,
  kEvGrantShared,
  kEvGrantExclusive,
  kEvGrantAtomic,
  kEvPoststore,
  kEvSnarf,
  // sync
  kEvBarrierArrive,
  kEvBarrierDepart,
  kEvLockAcquire,
  kEvLockAcquired,
  kEvLockRelease,
  // stall
  kEvInjectWait,
  kEvNackBackoff,
  kEvRemoteAcquire,
  kBuiltinEvents,
};

class Tracer {
 public:
  /// One logged event: 40 bytes, trivially copyable, no indirection.
  struct Record {
    sim::Time t = 0;
    std::uint64_t subject = 0;  // sub-page id, slot id, episode, ...
    std::uint64_t actor = 0;    // cell id, ring position, ...
    std::int64_t detail = 0;    // wait ns, holder mask, duration ns, ...
    std::uint16_t cat = 0;
    std::uint16_t ev = 0;
    // Event-specific auxiliary word; 0 = none. Coherence grants store
    // 1 + the byte offset (within the sub-page) of the demand access that
    // triggered the transaction — the witness the sharing-pattern
    // classifier uses to tell false sharing from true sharing.
    std::uint32_t aux = 0;
  };
  static_assert(sizeof(Record) == 40);

  static constexpr std::size_t kDefaultCapacity = 1u << 20;

  explicit Tracer(std::size_t capacity = kDefaultCapacity);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Hot path: one mask test, one bounds test, one 40-byte store. Never
  /// allocates; over-capacity records are counted in dropped().
  void log(sim::Time t, std::uint16_t cat, std::uint16_t ev,
           std::uint64_t subject, std::uint64_t actor,
           std::int64_t detail = 0, std::uint32_t aux = 0) noexcept {
    if (((mask_ >> mask_bit(cat)) & 1u) == 0) return;
    if (size_ == cap_) {
      ++dropped_;
      return;
    }
    records_[size_++] = Record{t, subject, actor, detail, cat, ev, aux};
  }

  /// Name-based convenience overload (string lookup per call — for cold
  /// paths and tests; unknown names are interned on first use).
  void log(sim::Time t, std::string_view category, std::string_view event,
           std::uint64_t subject, std::uint64_t actor,
           std::int64_t detail = 0, std::uint32_t aux = 0);

  /// Append an already-filtered record verbatim (no category mask test).
  /// Used by the multi-domain shard merge: the source shard applied the
  /// mask when the record was first logged.
  void append(const Record& r) noexcept {
    if (size_ == cap_) {
      ++dropped_;
      return;
    }
    records_[size_++] = r;
  }

  /// Fold another buffer's drop count into this one (shard merge).
  void add_dropped(std::uint64_t n) noexcept { dropped_ += n; }

  [[nodiscard]] const Record* begin() const noexcept { return records_.get(); }
  [[nodiscard]] const Record* end() const noexcept {
    return records_.get() + size_;
  }
  [[nodiscard]] const Record& operator[](std::size_t i) const noexcept {
    return records_[i];
  }

  /// Records retained in the buffer.
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  /// Records rejected because the buffer was full (the truncation that used
  /// to be silent).
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }
  /// Every log() call that passed the category mask: size() + dropped().
  [[nodiscard]] std::uint64_t total_logged() const noexcept {
    return size_ + dropped_;
  }
  [[nodiscard]] std::size_t capacity() const noexcept { return cap_; }

  void clear() noexcept {
    size_ = 0;
    dropped_ = 0;
  }

  /// Resize the preallocated buffer (existing records are discarded — call
  /// before the run). The allocation happens here, never in log().
  void set_capacity(std::size_t cap);

  // --- Category filtering ---

  /// Enable exactly the categories named in a comma-separated list (e.g.
  /// "ring,sync"); empty enables everything. Unknown names are interned so a
  /// filter can be installed before any custom category is first logged.
  void set_enabled_categories(std::string_view csv);
  void enable_all_categories() noexcept { mask_ = ~0ull; }
  /// Raw mask accessors, so a multi-domain machine can clone the attached
  /// tracer's filter onto its per-domain shards.
  [[nodiscard]] std::uint64_t enabled_mask() const noexcept { return mask_; }
  void set_enabled_mask(std::uint64_t m) noexcept { mask_ = m; }
  [[nodiscard]] bool category_enabled(std::uint16_t cat) const noexcept {
    return ((mask_ >> mask_bit(cat)) & 1u) != 0;
  }

  // --- Interning ---

  /// Resolve (interning on first use) a category / event name to its id.
  /// Intended for setup time, not per-record.
  [[nodiscard]] std::uint16_t intern_category(std::string_view name);
  [[nodiscard]] std::uint16_t intern_event(std::string_view name);

  [[nodiscard]] std::string_view category_name(std::uint16_t cat) const;
  [[nodiscard]] std::string_view event_name(std::uint16_t ev) const;

  /// Count retained events matching a category (and optionally an event
  /// name). Names unknown to this tracer count zero.
  [[nodiscard]] std::size_t count(std::string_view category,
                                  std::string_view event = {}) const;

  /// CSV dump: the classic header/rows (including the aux column) plus a
  /// trailing "# events=N dropped=M" footer so truncation is always visible.
  void write_csv(std::ostream& os) const;

 private:
  [[nodiscard]] static constexpr unsigned mask_bit(std::uint16_t cat) noexcept {
    return cat < 64 ? cat : 63u;
  }
  [[nodiscard]] static std::uint16_t find_or_add(std::vector<std::string>& v,
                                                 std::string_view name);

  std::unique_ptr<Record[]> records_;
  std::size_t size_ = 0;
  std::size_t cap_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t mask_ = ~0ull;  // all categories enabled by default
  std::vector<std::string> cat_names_;
  std::vector<std::string> ev_names_;
};

}  // namespace ksr::obs
