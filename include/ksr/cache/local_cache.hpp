#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "ksr/cache/state.hpp"
#include "ksr/mem/geometry.hpp"
#include "ksr/sim/rng.hpp"

// Second-level (local) cache model.
//
// 32 MB per cell, 16-way set associative, random replacement. Allocation is
// per 16 KB page; on allocation only the accessed sub-page is brought in,
// the other 127 sub-pages of the page become Invalid *placeholders* that are
// filled on demand (paper §2). Placeholders matter twice in the paper:
// read-snarfing refreshes them when matching data passes on the ring, and
// poststore pushes updates into them.
namespace ksr::cache {

class LocalCache {
 public:
  struct Config {
    std::size_t capacity_bytes = 32ull * 1024 * 1024;
    unsigned ways = 16;
  };

  /// Result of looking up a sub-page.
  struct Lookup {
    bool page_present = false;       // a frame for the page exists
    LineState state = LineState::kInvalid;
  };

  /// Result of making a frame available for a page.
  struct PageAlloc {
    bool allocated = false;  // a new frame was claimed
    bool evicted = false;    // ...displacing a valid page
    mem::PageId evicted_page = 0;
    // States of the 128 sub-pages of the evicted page (by index within the
    // page); the coherence layer removes this cell from their copy sets.
    std::array<LineState, mem::kSubPagesPerPage> evicted_states{};
  };

  LocalCache() : LocalCache(Config{}) {}
  explicit LocalCache(const Config& cfg)
      : ways_(cfg.ways),
        sets_(cfg.capacity_bytes / (cfg.ways * mem::kPageBytes)),
        frames_(sets_ * ways_) {}

  [[nodiscard]] Lookup lookup(mem::SubPageId sp) const noexcept {
    const mem::PageId pg = mem::page_of_subpage(sp);
    const Frame* f = find(pg);
    if (f == nullptr) return {};
    return {true, f->sp[index_in_page(sp)]};
  }

  /// Ensure a frame exists for the page of `sp` (allocating/evicting if
  /// necessary) and set the sub-page's state.
  PageAlloc touch(mem::SubPageId sp, LineState st, sim::Rng& rng) {
    ++gen_;
    const mem::PageId pg = mem::page_of_subpage(sp);
    PageAlloc out;
    Frame* f = find(pg);
    if (f == nullptr) {
      out.allocated = true;
      f = victim(pg, rng, out);
      f->tag = pg;
      f->valid = true;
      f->sp.fill(LineState::kInvalid);
    }
    f->sp[index_in_page(sp)] = st;
    return out;
  }

  /// Change the state of a resident sub-page. No-op if the page frame is
  /// absent (e.g. already evicted).
  void set_state(mem::SubPageId sp, LineState st) noexcept {
    ++gen_;
    Frame* f = find(mem::page_of_subpage(sp));
    if (f != nullptr) f->sp[index_in_page(sp)] = st;
  }

  /// Monotone counter bumped on every state mutation (touch, set_state,
  /// clear). A cached "this sub-page is writable here" hint stays valid
  /// exactly while the generation is unchanged.
  [[nodiscard]] std::uint64_t generation() const noexcept { return gen_; }

  [[nodiscard]] LineState state(mem::SubPageId sp) const noexcept {
    const Frame* f = find(mem::page_of_subpage(sp));
    return f ? f->sp[index_in_page(sp)] : LineState::kInvalid;
  }

  void clear() noexcept {
    ++gen_;
    for (auto& f : frames_) {
      f.valid = false;
      f.sp.fill(LineState::kInvalid);
    }
  }

  /// Visit every non-Invalid resident sub-page as f(sub_page_id, state).
  /// Host-side audits only (invariant checker); frame order is placement
  /// order, so simulated behaviour must never depend on it.
  template <typename F>
  void for_each_subpage(F&& f) const {
    for (const Frame& fr : frames_) {
      if (!fr.valid) continue;
      for (std::size_t i = 0; i < fr.sp.size(); ++i) {
        if (fr.sp[i] != LineState::kInvalid) {
          f(static_cast<mem::SubPageId>(fr.tag * mem::kSubPagesPerPage + i),
            fr.sp[i]);
        }
      }
    }
  }

  [[nodiscard]] std::size_t sets() const noexcept { return sets_; }
  [[nodiscard]] unsigned ways() const noexcept { return static_cast<unsigned>(ways_); }

  /// --- Checkpoint support (docs/CHECKPOINT.md). ---
  /// Positional frame access: storage order is part of machine state
  /// (victim() prefers the first invalid way), so restore is by slot index.
  [[nodiscard]] std::size_t frame_count() const noexcept { return frames_.size(); }

  /// Visit every frame slot in storage order as f(tag, valid, states) where
  /// `states` is the per-sub-page LineState array.
  template <typename F>
  void for_each_frame(F&& f) const {
    for (const Frame& fr : frames_) f(fr.tag, fr.valid, fr.sp);
  }

  void restore_frame(std::size_t i, mem::PageId tag, bool valid,
                     const std::array<LineState, mem::kSubPagesPerPage>& sp) noexcept {
    Frame& f = frames_[i];
    f.tag = tag;
    f.valid = valid;
    f.sp = sp;
  }

  void restore_generation(std::uint64_t gen) noexcept { gen_ = gen; }

  [[nodiscard]] static std::size_t index_in_page(mem::SubPageId sp) noexcept {
    return static_cast<std::size_t>(sp % mem::kSubPagesPerPage);
  }

 private:
  struct Frame {
    mem::PageId tag = 0;
    bool valid = false;
    std::array<LineState, mem::kSubPagesPerPage> sp{};
  };

  [[nodiscard]] std::size_t set_of(mem::PageId pg) const noexcept {
    return static_cast<std::size_t>(pg) % sets_;
  }

  Frame* find(mem::PageId pg) noexcept {
    const std::size_t set = set_of(pg);
    for (std::size_t w = 0; w < ways_; ++w) {
      Frame& f = frames_[set * ways_ + w];
      if (f.valid && f.tag == pg) return &f;
    }
    return nullptr;
  }
  const Frame* find(mem::PageId pg) const noexcept {
    return const_cast<LocalCache*>(this)->find(pg);
  }

  Frame* victim(mem::PageId pg, sim::Rng& rng, PageAlloc& out) noexcept {
    const std::size_t set = set_of(pg);
    for (std::size_t w = 0; w < ways_; ++w) {
      Frame& f = frames_[set * ways_ + w];
      if (!f.valid) return &f;
    }
    // Random replacement, but never evict a page holding an Atomic
    // (locked) sub-page — the hardware keeps locked lines resident.
    std::size_t candidates[64];
    std::size_t n = 0;
    for (std::size_t w = 0; w < ways_ && n < 64; ++w) {
      const Frame& f = frames_[set * ways_ + w];
      bool locked = false;
      for (const LineState s : f.sp) {
        if (s == LineState::kAtomic) {
          locked = true;
          break;
        }
      }
      if (!locked) candidates[n++] = w;
    }
    const std::size_t pick =
        n > 0 ? candidates[rng.below(n)] : rng.below(ways_);
    Frame& f = frames_[set * ways_ + pick];
    out.evicted = true;
    out.evicted_page = f.tag;
    out.evicted_states = f.sp;
    return &f;
  }

  std::size_t ways_;
  std::size_t sets_;
  std::vector<Frame> frames_;
  std::uint64_t gen_ = 0;
};

}  // namespace ksr::cache
