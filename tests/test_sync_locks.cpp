// Lock correctness: mutual exclusion, reader sharing, writer exclusion,
// FCFS ordering of the ticket lock, and the qualitative Fig. 3 shape.
#include <gtest/gtest.h>

#include <cmath>

#include <vector>

#include "ksr/machine/ksr_machine.hpp"
#include "ksr/sync/atomic.hpp"
#include "ksr/sync/locks.hpp"

namespace ksr::sync {
namespace {

using machine::Cpu;
using machine::KsrMachine;
using machine::MachineConfig;

TEST(HardwareLock, MutualExclusionUnderContention) {
  KsrMachine m(MachineConfig::ksr1(8));
  HardwareLock lock(m);
  auto data = m.alloc<int>("data", 2);  // counter + in-section flag
  bool overlap = false;
  m.run([&](Cpu& cpu) {
    for (int i = 0; i < 25; ++i) {
      lock.acquire(cpu);
      if (cpu.read(data, 1) != 0) overlap = true;
      cpu.write(data, 1, 1);
      cpu.write(data, 0, cpu.read(data, 0) + 1);
      cpu.work(200);
      cpu.write(data, 1, 0);
      lock.release(cpu);
      cpu.work(cpu.rng().below(400));
    }
  });
  EXPECT_FALSE(overlap);
  EXPECT_EQ(data.value(0), 8 * 25);
}

TEST(TicketRwLock, WritersAreMutuallyExclusive) {
  KsrMachine m(MachineConfig::ksr1(8));
  TicketRwLock lock(m);
  auto data = m.alloc<int>("data", 2);
  bool overlap = false;
  m.run([&](Cpu& cpu) {
    for (int i = 0; i < 20; ++i) {
      lock.acquire_write(cpu);
      if (cpu.read(data, 1) != 0) overlap = true;
      cpu.write(data, 1, 1);
      cpu.write(data, 0, cpu.read(data, 0) + 1);
      cpu.work(150);
      cpu.write(data, 1, 0);
      lock.release_write(cpu);
      cpu.work(cpu.rng().below(500));
    }
  });
  EXPECT_FALSE(overlap);
  EXPECT_EQ(data.value(0), 8 * 20);
}

TEST(TicketRwLock, ReadersOverlapButExcludeWriters) {
  KsrMachine m(MachineConfig::ksr1(8));
  TicketRwLock lock(m);
  // readers_inside / writers_inside / max_concurrent_readers / violations —
  // all updated under get_subpage so the bookkeeping itself is atomic.
  auto s = m.alloc<int>("state", 4);
  auto bump = [&](Cpu& cpu, auto&& fn) {
    cpu.get_subpage(s.addr(0));
    fn();
    cpu.release_subpage(s.addr(0));
  };
  m.run([&](Cpu& cpu) {
    const bool writer = cpu.id() < 2;
    for (int i = 0; i < 10; ++i) {
      if (writer) {
        lock.acquire_write(cpu);
        bump(cpu, [&] {
          if (cpu.read(s, 0) != 0 || cpu.read(s, 1) != 0) {
            cpu.write(s, 3, cpu.read(s, 3) + 1);
          }
          cpu.write(s, 1, 1);
        });
        cpu.work(3000);
        bump(cpu, [&] { cpu.write(s, 1, 0); });
        lock.release_write(cpu);
      } else {
        lock.acquire_read(cpu);
        bump(cpu, [&] {
          if (cpu.read(s, 1) != 0) cpu.write(s, 3, cpu.read(s, 3) + 1);
          const int inside = cpu.read(s, 0) + 1;
          cpu.write(s, 0, inside);
          if (inside > cpu.read(s, 2)) cpu.write(s, 2, inside);
        });
        cpu.work(3000);
        bump(cpu, [&] { cpu.write(s, 0, cpu.read(s, 0) - 1); });
        lock.release_read(cpu);
      }
      cpu.work(cpu.rng().below(700));
    }
  });
  EXPECT_EQ(s.value(3), 0) << "reader/writer overlap detected";
  EXPECT_GT(s.value(2), 1) << "readers never actually shared the lock";
}

TEST(TicketRwLock, FcfsOrderAmongWriters) {
  // Cells acquire in a forced arrival order (staggered by compute);
  // the grant order must match the arrival order.
  KsrMachine m(MachineConfig::ksr1(6));
  TicketRwLock lock(m);
  auto order = m.alloc<int>("order", 8);
  m.run([&](Cpu& cpu) {
    cpu.work(20000 * (cpu.id() + 1));  // 1 ms apart: unambiguous arrival order
    lock.acquire_write(cpu);
    const int k = cpu.read(order, 0);
    cpu.write(order, 0, k + 1);
    cpu.write(order, static_cast<std::size_t>(1 + k), static_cast<int>(cpu.id()));
    cpu.work(100000);  // hold long enough that everyone queues behind
    lock.release_write(cpu);
  });
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(order.value(static_cast<std::size_t>(1 + i)), i);
  }
}

TEST(FetchAdd, AtomicUnderFullContention) {
  KsrMachine m(MachineConfig::ksr1(16));
  auto counter = m.alloc<std::uint32_t>("counter", 1);
  m.run([&](Cpu& cpu) {
    for (int i = 0; i < 30; ++i) {
      fetch_add(cpu, counter, 0, 1u);
      cpu.work(cpu.rng().below(300));
    }
  });
  EXPECT_EQ(counter.value(0), 16u * 30u);
}

// Fig. 3 qualitative shape at one point: with mostly-read workloads the
// software RW lock clearly beats serializing every request exclusively.
TEST(LockShape, ReadSharingBeatsExclusiveSerialization) {
  constexpr unsigned kProcs = 8;
  constexpr int kOps = 12;
  auto run_exclusive = [&] {
    KsrMachine m(MachineConfig::ksr1(kProcs));
    HardwareLock lock(m);
    double t = 0;
    m.run([&](Cpu& cpu) {
      for (int i = 0; i < kOps; ++i) {
        lock.acquire(cpu);
        cpu.work(3000);
        lock.release(cpu);
        cpu.work(10000);
      }
      if (cpu.seconds() > t) t = cpu.seconds();
    });
    return t;
  };
  auto run_readers = [&] {
    KsrMachine m(MachineConfig::ksr1(kProcs));
    TicketRwLock lock(m);
    double t = 0;
    m.run([&](Cpu& cpu) {
      for (int i = 0; i < kOps; ++i) {
        lock.acquire_read(cpu);
        cpu.work(3000);
        lock.release_read(cpu);
        cpu.work(10000);
      }
      if (cpu.seconds() > t) t = cpu.seconds();
    });
    return t;
  };
  EXPECT_LT(run_readers(), run_exclusive());
}

}  // namespace
}  // namespace ksr::sync
