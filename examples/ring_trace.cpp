// Ring trace: a slot's-eye view of the interconnect. Drives the slotted
// ring directly (no caches) and prints per-slot utilisation, wait
// distributions, and the saturation knee as offered load rises — useful for
// understanding why the paper's Fig. 2 curve is flat and where IS's
// 32-processor kink comes from.
//
//   $ ./ring_trace [positions] [slots_per_subring]
#include <cstdio>
#include <string>
#include <vector>

#include "ksr/net/ring.hpp"
#include "ksr/sim/engine.hpp"
#include "ksr/sim/stats.hpp"

int main(int argc, char** argv) {
  using namespace ksr;  // NOLINT

  net::SlottedRing::Config cfg;
  cfg.positions = argc > 1 ? static_cast<unsigned>(std::stoul(argv[1])) : 32u;
  cfg.slots_per_subring =
      argc > 2 ? static_cast<unsigned>(std::stoul(argv[2])) : 12u;

  std::printf("slotted ring: %u positions, 2 x %u slots, hop %llu ns, "
              "circulation %.2f us\n\n",
              cfg.positions, cfg.slots_per_subring,
              static_cast<unsigned long long>(cfg.hop_ns),
              static_cast<double>(cfg.positions * cfg.hop_ns) / 1000.0);

  std::printf("%16s %12s %12s %10s %12s\n", "inject every", "packets",
              "mean wait", "p99 wait", "retries");

  // Sweep offered load: every position injects periodically.
  for (sim::Duration period : {20000u, 10000u, 5000u, 3000u, 2000u, 1500u,
                               1200u, 1000u, 800u}) {
    sim::Engine eng;
    net::SlottedRing ring(eng, cfg, "trace");
    sim::Samples waits;
    const int per_position = 40;

    for (unsigned pos = 0; pos < cfg.positions; ++pos) {
      for (int k = 0; k < per_position; ++k) {
        const sim::Time when = static_cast<sim::Time>(k) * period +
                               pos * 37;  // slight phase offset per position
        eng.at(when, [&ring, &waits, pos, k] {
          ring.inject(pos, static_cast<unsigned>(k) % 2,
                      [&waits](sim::Duration w) {
                        waits.add(static_cast<double>(w));
                      });
        });
      }
    }
    eng.run();
    std::printf("%13llu ns %12llu %9.0f ns %7.0f ns %12llu\n",
                static_cast<unsigned long long>(period),
                static_cast<unsigned long long>(ring.stats().packets),
                waits.mean(), waits.quantile(0.99),
                static_cast<unsigned long long>(ring.stats().retries));
  }

  std::printf(
      "\nReading the knee: one transaction holds a slot for a full\n"
      "circulation (%.2f us). With %u slots per sub-ring the ring absorbs\n"
      "~%.1f transactions per microsecond; beyond that, waits explode —\n"
      "the saturation the paper hits with 32 simultaneous requesters.\n",
      static_cast<double>(cfg.positions * cfg.hop_ns) / 1000.0,
      cfg.slots_per_subring,
      2.0 * cfg.slots_per_subring /
          (static_cast<double>(cfg.positions * cfg.hop_ns) / 1000.0));
  return 0;
}
