#pragma once

#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "ksr/sim/time.hpp"

#include <ucontext.h>

// Deterministic discrete-event engine with cooperative fibers.
//
// Simulated processors run their programs on ucontext fibers. The engine owns
// a single event queue ordered by (time, insertion sequence); ties broken by
// sequence make every run bit-reproducible. Exactly one fiber runs at a time
// (the whole simulator is single-threaded), so simulated programs need no
// host-level synchronization.
//
// A fiber interacts with simulated time through three verbs:
//   * wait_until(t) — park until simulated time t (local compute, fixed-cost
//     cache access, backoff).
//   * block()       — park indefinitely; some component completes the fiber's
//     transaction later and calls wake().
//   * the engine-level at()/in() — schedule an arbitrary callback (used by
//     the interconnect models for slot ticks and packet delivery).
namespace ksr::sim {

/// Identifies a fiber spawned on an Engine. Stable for the engine's lifetime.
using FiberId = std::uint32_t;

class Engine {
 public:
  static constexpr std::size_t kDefaultStackBytes = 256 * 1024;

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine();

  /// Current simulated time: the timestamp of the event being dispatched.
  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Schedule `fn` at absolute simulated time `t` (>= now()).
  void at(Time t, std::function<void()> fn);

  /// Schedule `fn` after duration `d`.
  void in(Duration d, std::function<void()> fn) { at(now_ + d, std::move(fn)); }

  /// Create a fiber that starts running at time `start`.
  FiberId spawn(std::function<void()> body, Time start = 0,
                std::size_t stack_bytes = kDefaultStackBytes);

  /// Dispatch events until the queue drains. Throws if fibers are still
  /// blocked when the queue empties (simulated deadlock), or rethrows the
  /// first exception escaping a fiber body.
  void run();

  /// --- Fiber-side API (must be called from inside a running fiber). ---

  /// Park the current fiber until simulated time `t`.
  void wait_until(Time t);

  /// Park the current fiber until some component calls wake() on it.
  void block();

  /// Wake a blocked fiber at time `t` (>= now()).
  void wake(FiberId id, Time t);

  /// True when called from inside a fiber body.
  [[nodiscard]] bool in_fiber() const noexcept { return current_ != nullptr; }

  /// Id of the currently running fiber. Only valid when in_fiber().
  [[nodiscard]] FiberId current_fiber() const noexcept;

  /// Earliest pending event time, or the sentinel Time maximum when idle.
  [[nodiscard]] Time next_event_time() const noexcept;

  /// Number of spawned fibers whose bodies have not yet returned.
  [[nodiscard]] std::size_t live_fibers() const noexcept { return live_fibers_; }

  /// Total events dispatched so far (host-side instrumentation).
  [[nodiscard]] std::uint64_t events_dispatched() const noexcept { return dispatched_; }

 private:
  struct Fiber {
    std::function<void()> body;
    std::unique_ptr<std::byte[]> stack;
    std::size_t stack_bytes = 0;
    ucontext_t ctx{};
    bool started = false;
    bool done = false;
    Engine* engine = nullptr;
    FiberId id = 0;
  };

  struct Event {
    Time t;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const noexcept {
      return a.t != b.t ? a.t > b.t : a.seq > b.seq;
    }
  };

  static void trampoline(unsigned hi, unsigned lo);
  void resume(Fiber& f);
  void switch_to_scheduler();

  Time now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t dispatched_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventLater> events_;
  std::vector<std::unique_ptr<Fiber>> fibers_;
  std::size_t live_fibers_ = 0;
  Fiber* current_ = nullptr;
  ucontext_t sched_ctx_{};
  std::exception_ptr pending_exception_;
};

}  // namespace ksr::sim
