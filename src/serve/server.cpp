#include "ksr/serve/server.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace ksr::serve {

namespace {

constexpr std::size_t kMaxLineBytes = 1u << 20;  // 1 MiB request cap

void write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    // MSG_NOSIGNAL: a client that hung up mid-response must surface as an
    // error on this connection, not a SIGPIPE for the whole daemon.
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("serve: send failed: " +
                               std::string(std::strerror(errno)));
    }
    off += static_cast<std::size_t>(n);
  }
}

sockaddr_un make_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("serve: socket path too long (" +
                             std::to_string(path.size()) + " bytes, max " +
                             std::to_string(sizeof(addr.sun_path) - 1) +
                             "): " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

/// Response line for one submitted job. The cached result bytes are
/// embedded *verbatim* (not re-parsed), so a hit is byte-identical to the
/// cold run that produced it.
std::string result_line(const ServeCore::Response& r, long index) {
  std::string line = "{\"ok\":";
  line += r.ok ? "true" : "false";
  if (index >= 0) {
    line += ",\"index\":";
    line += std::to_string(index);
  }
  if (!r.key.empty()) {
    line += ",\"key\":\"";
    line += r.key;  // fixed 16-hex alphabet, never needs escaping
    line += '"';
  }
  if (r.ok) {
    line += ",\"cached\":";
    line += r.cached ? "true" : "false";
    line += ",\"wall_ms\":";
    line += std::to_string(r.wall_ms);
    line += ",\"result\":";
    line += r.result;
  } else {
    line += ",\"error\":";
    Json::str(r.error).write(&line);
  }
  line += "}\n";
  return line;
}

std::string error_line(const std::string& what) {
  std::string line = "{\"ok\":false,\"error\":";
  Json::str(what).write(&line);
  line += "}\n";
  return line;
}

}  // namespace

SocketServer::SocketServer(const Options& opt)
    : core_(opt.core), path_(opt.socket_path) {
  const sockaddr_un addr = make_addr(path_);
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error("serve: socket() failed: " +
                             std::string(std::strerror(errno)));
  }
  // A previous daemon's socket file would make bind fail with EADDRINUSE
  // even though nobody is listening; replace it. (A *live* daemon is the
  // operator's problem — same contract as every pidfile-less service.)
  ::unlink(path_.c_str());
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("serve: cannot listen on '" + path_ +
                             "': " + why);
  }
}

SocketServer::~SocketServer() {
  shutdown();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  ::unlink(path_.c_str());
  // run() joins the connection threads; if run() was never called, join
  // whatever accumulated (none, since accepts happen inside run()).
  for (auto& t : conn_threads_) {
    if (t.joinable()) t.join();
  }
}

void SocketServer::shutdown() {
  if (stopping_.exchange(true)) return;
  // Closing the listen fd pops the blocking accept(); shutting down the
  // live connections pops their blocking reads.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  std::lock_guard<std::mutex> lk(conn_mu_);
  for (const int fd : live_fds_) ::shutdown(fd, SHUT_RDWR);
}

void SocketServer::run() {
  while (!stopping_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listen socket shut down
    }
    std::lock_guard<std::mutex> lk(conn_mu_);
    if (stopping_.load()) {
      ::close(fd);
      break;
    }
    live_fds_.insert(fd);
    conn_threads_.emplace_back([this, fd] { handle_connection(fd); });
  }
  std::vector<std::thread> drain;
  {
    std::lock_guard<std::mutex> lk(conn_mu_);
    drain.swap(conn_threads_);
  }
  for (auto& t : drain) t.join();
}

void SocketServer::handle_connection(int fd) {
  std::string buf;
  char chunk[4096];
  bool open = true;
  while (open) {
    const std::size_t nl = buf.find('\n');
    if (nl != std::string::npos) {
      const std::string line = buf.substr(0, nl);
      buf.erase(0, nl + 1);
      if (line.empty()) continue;
      try {
        open = handle_request(fd, line);
      } catch (const std::exception&) {
        open = false;  // client hung up mid-response
      }
      continue;
    }
    if (buf.size() > kMaxLineBytes) {
      try {
        write_all(fd, error_line("request line exceeds 1 MiB"));
      } catch (const std::exception&) {
      }
      break;
    }
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // EOF or shutdown()
    buf.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  std::lock_guard<std::mutex> lk(conn_mu_);
  live_fds_.erase(fd);
}

bool SocketServer::handle_request(int fd, const std::string& line) {
  std::string err;
  const Json req = Json::parse(line, &err);
  if (!err.empty() || !req.is_object()) {
    write_all(fd, error_line(err.empty() ? "request must be a JSON object"
                                         : err));
    return true;
  }
  const Json* op_v = req.find("op");
  const std::string op =
      op_v != nullptr && op_v->is_string() ? op_v->as_string() : "";
  if (op == "ping") {
    std::string out = "{\"ok\":true,\"op\":\"ping\",\"code_version\":";
    out += std::to_string(core_.options().code_version);
    out += "}\n";
    write_all(fd, out);
    return true;
  }
  if (op == "stats") {
    std::string out = "{\"ok\":true,\"op\":\"stats\",\"stats\":";
    core_.stats_json().write(&out);
    out += "}\n";
    write_all(fd, out);
    return true;
  }
  if (op == "shutdown") {
    write_all(fd, "{\"ok\":true,\"op\":\"shutdown\"}\n");
    shutdown();
    return false;
  }
  if (op == "submit") {
    const Json* job = req.find("job");
    const Json* jobs = req.find("jobs");
    if (job != nullptr) {
      JobSpec spec;
      if (!JobSpec::from_json(*job, &spec, &err)) {
        write_all(fd, error_line(err));
        return true;
      }
      write_all(fd, result_line(core_.submit(spec), -1));
      return true;
    }
    if (jobs != nullptr && jobs->is_array()) {
      std::vector<JobSpec> specs(jobs->items().size());
      for (std::size_t i = 0; i < specs.size(); ++i) {
        if (!JobSpec::from_json(jobs->items()[i], &specs[i], &err)) {
          write_all(fd, error_line("jobs[" + std::to_string(i) + "]: " + err));
          return true;
        }
      }
      const std::vector<ServeCore::Response> rs = core_.submit_batch(specs);
      std::string out;
      for (std::size_t i = 0; i < rs.size(); ++i) {
        out += result_line(rs[i], static_cast<long>(i));
      }
      write_all(fd, out);
      return true;
    }
    write_all(fd, error_line("submit needs a 'job' object or 'jobs' array"));
    return true;
  }
  write_all(fd, error_line("unknown op '" + op +
                           "' (expected ping|submit|stats|shutdown)"));
  return true;
}

Client::Client(const std::string& socket_path) {
  const sockaddr_un addr = make_addr(socket_path);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw std::runtime_error("serve: socket() failed: " +
                             std::string(std::strerror(errno)));
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("serve: cannot connect to '" + socket_path +
                             "': " + why);
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

void Client::send_line(const std::string& line) {
  write_all(fd_, line.back() == '\n' ? line : line + "\n");
}

std::string Client::read_line() {
  for (;;) {
    const std::size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buf_.substr(0, nl);
      buf_.erase(0, nl + 1);
      return line;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      throw std::runtime_error("serve: connection closed by daemon");
    }
    buf_.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace ksr::serve
