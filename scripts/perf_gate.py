#!/usr/bin/env python3
"""Host-performance regression gate.

Compares a fresh google-benchmark JSON (scripts/bench_host.sh --check) against
the committed baseline report (BENCH_host.json at the repository root) and
fails if a gated microbench slowed down past the tolerance:

    perf_gate.py --gbench TMP/gbench.json [--baseline BENCH_host.json]

For every gated bench present in BOTH files, the fresh items_per_second must
be at least MIN_RATIO x the baseline's. The default tolerance is deliberately
loose (0.5: flag halvings, ignore noise) because CI containers are slow,
share cores, and differ from the machine that wrote the baseline; tighten via
the KSR_PERF_GATE_MIN_RATIO environment variable when the host is quiet.

Missing baseline file or missing entries are a SKIP, not a failure — the
gate must not brick CI on a fresh clone or after a bench rename. Only the
standard library is used.
"""
from __future__ import annotations

import argparse
import json
import os
import sys

# The simulator's hot loops, in the order they dominate wall time. Keep this
# list short: every entry is a potential false positive on a noisy host.
GATED = [
    "BM_EngineEventDispatch",
    "BM_FiberSwitch",
    "BM_RingTransaction",
    "BM_CoherentReadHit",
]


def load_rates(path: str, microbench_key: bool) -> dict[str, float]:
    try:
        with open(path, encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        raise SystemExit(f"perf_gate.py: cannot read {path}: {e}")
    out: dict[str, float] = {}
    if microbench_key:  # BENCH_host.json report schema
        for name, entry in data.get("microbench", {}).items():
            if "items_per_second" in entry:
                out[name] = float(entry["items_per_second"])
    else:  # raw google-benchmark schema
        for b in data.get("benchmarks", []):
            if b.get("run_type") == "aggregate":
                continue
            if "items_per_second" in b:
                out[b["name"]] = float(b["items_per_second"])
    return out


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--gbench", required=True,
                    help="fresh google-benchmark JSON output")
    ap.add_argument("--baseline", default="BENCH_host.json",
                    help="committed baseline report (default: BENCH_host.json)")
    args = ap.parse_args()

    if not os.path.exists(args.baseline):
        print(f"perf_gate.py: no baseline {args.baseline} — skipping gate")
        return 0
    min_ratio = float(os.environ.get("KSR_PERF_GATE_MIN_RATIO", "0.5"))
    fresh = load_rates(args.gbench, microbench_key=False)
    base = load_rates(args.baseline, microbench_key=True)

    failures = []
    checked = 0
    for name in GATED:
        # Raw gbench names carry /min_time: etc. suffixes in some configs;
        # match on the exact name first, then on a prefix.
        fresh_rate = fresh.get(name)
        if fresh_rate is None:
            cands = [v for k, v in fresh.items() if k.split("/")[0] == name]
            fresh_rate = cands[0] if cands else None
        base_rate = base.get(name)
        if base_rate is None:
            cands = [v for k, v in base.items() if k.split("/")[0] == name]
            base_rate = cands[0] if cands else None
        if fresh_rate is None or base_rate is None or base_rate <= 0:
            print(f"perf_gate.py: {name}: no comparable data — skipped")
            continue
        checked += 1
        ratio = fresh_rate / base_rate
        status = "ok" if ratio >= min_ratio else "REGRESSED"
        print(f"perf_gate.py: {name}: {fresh_rate:.3e} vs baseline "
              f"{base_rate:.3e} items/s (ratio {ratio:.2f}, "
              f"min {min_ratio:.2f}) {status}")
        if ratio < min_ratio:
            failures.append(name)

    if failures:
        print(f"perf_gate.py: FAILED — regressed: {', '.join(failures)}",
              file=sys.stderr)
        return 1
    print(f"perf_gate.py: OK ({checked} bench(es) within tolerance)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
