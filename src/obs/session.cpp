#include "ksr/obs/session.hpp"

#include <iostream>
#include <utility>

namespace ksr::obs {

Session::Session(SessionOptions opt, std::string name)
    : opt_(std::move(opt)), name_(std::move(name)) {}

Session::~Session() { close(); }

bool Session::trace_as_csv() const {
  const std::string p = trace_path();
  return p.size() >= 4 && p.compare(p.size() - 4, 4, ".csv") == 0;
}

std::string Session::trace_path() const {
  return opt_.trace_out.empty() ? name_ + "_trace.json" : opt_.trace_out;
}

JobObs Session::job() const {
  JobObs o;
  if (tracing() || reporting()) {
    o.tracer_ = std::make_unique<Tracer>(opt_.trace_capacity);
    o.tracer_->set_enabled_categories(opt_.categories);
  }
  if (metrics()) {
    o.metrics_ = std::make_unique<MetricsRegistry>();
    o.period_ = opt_.metrics_period_ns;
  }
  o.topo_wanted_ = topo_reporting();
  return o;
}

void Session::collect(JobObs obs, const std::string& label) {
  ++jobs_collected_;
  if (obs.tracer_) {
    const Tracer& t = *obs.tracer_;
    total_events_ += t.size();
    total_dropped_ += t.dropped();
    if (tracing()) {
      if (!trace_os_.is_open()) {
        trace_os_.open(trace_path(), std::ios::out | std::ios::trunc);
        if (!trace_os_) {
          std::cerr << "[obs] ERROR: cannot open trace output '"
                    << trace_path() << "'\n";
          ok_ = false;
        }
      }
      if (trace_os_) {
        if (trace_as_csv()) {
          if (!trace_header_done_) {
            trace_os_
                << "job,time_ns,category,event,subject,actor,detail,aux\n";
            trace_header_done_ = true;
          }
          for (const Tracer::Record& r : t) {
            trace_os_ << label << ',' << r.t << ',' << t.category_name(r.cat)
                      << ',' << t.event_name(r.ev) << ',' << r.subject << ','
                      << r.actor << ',' << r.detail << ',' << r.aux << '\n';
          }
          // Region map + drop accounting as comment footers, so offline
          // analysis (tools/ksrprof) can resolve sub-pages to region names.
          for (const RegionSpan& reg : obs.regions_) {
            trace_os_ << "# region job=" << label << " base=" << reg.base
                      << " bytes=" << reg.bytes << " name=" << reg.name
                      << '\n';
          }
          trace_os_ << "# job=" << label << " events=" << t.size()
                    << " dropped=" << t.dropped() << '\n';
        } else {
          if (!writer_) {
            writer_ = std::make_unique<ChromeTraceWriter>(trace_os_);
          }
          // Multi-leaf jobs carry per-cell (leaf, domain) so Perfetto
          // groups the cell tracks by leaf ring.
          if (obs.cells_.empty()) {
            writer_->add_process(t, label);
          } else {
            writer_->add_process(t, label, obs.cells_);
          }
        }
      }
    }
    if (reporting()) {
      if (!report_os_.is_open()) {
        report_os_.open(opt_.report, std::ios::out | std::ios::trunc);
        if (!report_os_) {
          std::cerr << "[obs] ERROR: cannot open report output '"
                    << opt_.report << "'\n";
          ok_ = false;
        }
      }
      if (report_os_) {
        const Analysis a = analyze(t, obs.regions_);
        report_os_ << "=== job " << label << " ===\n";
        write_report(report_os_, a);
        report_os_ << '\n';
      }
    }
  }
  if (topo_reporting() && obs.has_topo_) {
    if (!topo_os_.is_open()) {
      topo_os_.open(opt_.topo_report, std::ios::out | std::ios::trunc);
      if (!topo_os_) {
        std::cerr << "[obs] ERROR: cannot open topo report output '"
                  << opt_.topo_report << "'\n";
        ok_ = false;
      }
    }
    if (topo_os_) {
      topo_os_ << "=== job " << label << " ===\n";
      topo::write_report(topo_os_, obs.topo_);
      topo_os_ << '\n';
    }
    // The traffic heatmap rides in a sibling CSV: long format, ready for
    // pivoting, merged across jobs exactly like the metrics CSV.
    if (!obs.topo_.traffic.empty()) {
      if (!matrix_os_.is_open()) {
        matrix_os_.open(opt_.topo_report + ".matrix.csv",
                        std::ios::out | std::ios::trunc);
        if (!matrix_os_) {
          std::cerr << "[obs] ERROR: cannot open traffic matrix output '"
                    << opt_.topo_report << ".matrix.csv'\n";
          ok_ = false;
        }
      }
      if (matrix_os_) {
        if (!matrix_header_done_) {
          topo::write_matrix_csv_header(matrix_os_, /*with_job_column=*/true);
          matrix_header_done_ = true;
        }
        topo::write_matrix_csv(matrix_os_, obs.topo_, label);
      }
    }
  }
  if (obs.metrics_) {
    if (!metrics_os_.is_open()) {
      metrics_os_.open(opt_.metrics_csv, std::ios::out | std::ios::trunc);
      if (!metrics_os_) {
        std::cerr << "[obs] ERROR: cannot open metrics output '"
                  << opt_.metrics_csv << "'\n";
        ok_ = false;
      }
    }
    if (metrics_os_) {
      obs.metrics_->write_csv(metrics_os_, label, !metrics_header_done_);
      metrics_header_done_ = true;
    }
  }
}

void Session::close() {
  if (closed_) return;
  closed_ = true;
  if (writer_) {
    writer_->finish();
    writer_.reset();
  }
  // Flush-then-verify each output: an ofstream swallows short writes (full
  // disk, yanked mount) until the final flush, so the stream state after
  // close() is the only trustworthy signal the file actually holds what we
  // streamed into it.
  const auto finish = [this](std::ofstream& os, const std::string& path,
                             const char* what) -> bool {
    if (!os.is_open()) return false;
    os.close();
    if (!os) {
      std::cerr << "[obs] ERROR: short write to " << what << " output '"
                << path << "'\n";
      ok_ = false;
      return false;
    }
    return true;
  };
  if (finish(trace_os_, trace_path(), "trace")) {
    std::cerr << "[obs] trace: " << total_events_ << " events ("
              << total_dropped_ << " dropped) from " << jobs_collected_
              << " job(s) -> " << trace_path() << "\n";
  }
  if (finish(metrics_os_, opt_.metrics_csv, "metrics")) {
    std::cerr << "[obs] metrics -> " << opt_.metrics_csv << "\n";
  }
  if (finish(report_os_, opt_.report, "report")) {
    std::cerr << "[obs] report -> " << opt_.report << "\n";
  }
  if (finish(topo_os_, opt_.topo_report, "topo report")) {
    std::cerr << "[obs] topo -> " << opt_.topo_report << "\n";
  }
  if (finish(matrix_os_, opt_.topo_report + ".matrix.csv",
             "traffic matrix")) {
    std::cerr << "[obs] traffic matrix -> " << opt_.topo_report
              << ".matrix.csv\n";
  }
}

}  // namespace ksr::obs
