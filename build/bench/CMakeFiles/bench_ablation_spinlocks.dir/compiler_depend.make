# Empty compiler generated dependencies file for bench_ablation_spinlocks.
# This may be replaced when dependencies are built.
