#include "ksr/sim/engine.hpp"

#include <limits>
#include <stdexcept>
#include <string>

namespace ksr::sim {

Engine::~Engine() = default;

void Engine::at(Time t, std::function<void()> fn) {
  if (t < now_) {
    throw std::logic_error("Engine::at: scheduling into the past");
  }
  events_.push(Event{t, seq_++, std::move(fn)});
}

FiberId Engine::spawn(std::function<void()> body, Time start, std::size_t stack_bytes) {
  auto fiber = std::make_unique<Fiber>();
  fiber->body = std::move(body);
  fiber->stack_bytes = stack_bytes;
  fiber->stack = std::make_unique<std::byte[]>(stack_bytes);
  fiber->engine = this;
  fiber->id = static_cast<FiberId>(fibers_.size());
  Fiber* raw = fiber.get();
  fibers_.push_back(std::move(fiber));
  ++live_fibers_;
  at(start, [this, raw] { resume(*raw); });
  return raw->id;
}

void Engine::trampoline(unsigned hi, unsigned lo) {
  const auto bits =
      (static_cast<std::uintptr_t>(hi) << 32) | static_cast<std::uintptr_t>(lo);
  auto* f = reinterpret_cast<Fiber*>(bits);  // NOLINT: makecontext ABI
  try {
    f->body();
  } catch (...) {
    if (!f->engine->pending_exception_) {
      f->engine->pending_exception_ = std::current_exception();
    }
  }
  f->done = true;
  // Returning transfers control to uc_link (the scheduler context).
}

void Engine::resume(Fiber& f) {
  if (f.done) return;
  if (!f.started) {
    getcontext(&f.ctx);
    f.ctx.uc_stack.ss_sp = f.stack.get();
    f.ctx.uc_stack.ss_size = f.stack_bytes;
    f.ctx.uc_link = &sched_ctx_;
    const auto bits = reinterpret_cast<std::uintptr_t>(&f);  // NOLINT
    makecontext(&f.ctx, reinterpret_cast<void (*)()>(&Engine::trampoline), 2,
                static_cast<unsigned>(bits >> 32),
                static_cast<unsigned>(bits & 0xffffffffu));
    f.started = true;
  }
  Fiber* prev = current_;
  current_ = &f;
  swapcontext(&sched_ctx_, &f.ctx);
  current_ = prev;
  if (f.done && f.stack) {
    f.stack.reset();  // release the stack eagerly; the Fiber record remains
    --live_fibers_;
  }
}

void Engine::switch_to_scheduler() {
  Fiber* f = current_;
  swapcontext(&f->ctx, &sched_ctx_);
}

void Engine::wait_until(Time t) {
  if (!in_fiber()) throw std::logic_error("wait_until outside fiber");
  if (t < now_) t = now_;
  Fiber* raw = current_;
  at(t, [this, raw] { resume(*raw); });
  switch_to_scheduler();
}

void Engine::block() {
  if (!in_fiber()) throw std::logic_error("block outside fiber");
  switch_to_scheduler();
}

void Engine::wake(FiberId id, Time t) {
  Fiber* raw = fibers_.at(id).get();
  at(t, [this, raw] { resume(*raw); });
}

FiberId Engine::current_fiber() const noexcept { return current_->id; }

Time Engine::next_event_time() const noexcept {
  return events_.empty() ? std::numeric_limits<Time>::max() : events_.top().t;
}

void Engine::run() {
  while (!events_.empty()) {
    Event ev = std::move(const_cast<Event&>(events_.top()));
    events_.pop();
    now_ = ev.t;
    ++dispatched_;
    ev.fn();
    if (pending_exception_) {
      auto ex = pending_exception_;
      pending_exception_ = nullptr;
      std::rethrow_exception(ex);
    }
  }
  if (live_fibers_ != 0) {
    throw std::runtime_error(
        "Engine::run: simulated deadlock — event queue drained with " +
        std::to_string(live_fibers_) + " fiber(s) still blocked");
  }
}

}  // namespace ksr::sim
