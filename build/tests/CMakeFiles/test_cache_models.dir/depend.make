# Empty dependencies file for test_cache_models.
# This may be replaced when dependencies are built.
