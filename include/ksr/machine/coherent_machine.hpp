#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "ksr/cache/cell_mask.hpp"
#include "ksr/cache/flat_map.hpp"
#include "ksr/cache/local_cache.hpp"
#include "ksr/cache/perf_monitor.hpp"
#include "ksr/cache/state.hpp"
#include "ksr/cache/subcache.hpp"
#include "ksr/machine/machine.hpp"

// Shared core of the cache-coherent machines (KSR ring hierarchy, Symmetry
// bus): per-cell two-level caches, a *sharded* coherence directory, and the
// protocol commit logic. What differs between machines — how a transaction
// physically travels and what it costs — is expressed through virtual hooks
// (transport / home_transport / transaction_overhead_ns).
//
// The directory is *functional* bookkeeping (who holds what, in which
// state); all *timing* flows from the transport model plus the fixed
// latencies in MachineConfig.
//
// Directory sharding (docs/PARALLEL.md): every sub-page has a *home leaf
// ring* — pages interleave across leaves — and its directory entry lives in
// that leaf's shard. Two execution modes share the shards:
//
//  * Single-domain (the default, and the only mode for <=64-cell seed
//    configs): every shard is reached synchronously from the one engine
//    thread, exactly like the seed's machine-global map. Behaviour and all
//    pinned fingerprints are bit-identical — sharding is purely structural.
//
//  * Multi-domain (ring machines with cells_per_domain set): each domain
//    owns the shards of its leaf rings outright. A requester whose home is
//    in another domain sends an explicit request over the ParallelEngine's
//    boundary channels; the home decides (serializing all transactions on
//    that sub-page), emits revocations (invalidate/downgrade) to holder
//    domains, and replies with the grant. Revocations ride one quantum
//    earlier than grants whenever both cross domains (the "two-wave" rule),
//    so a stale reader's last host-level access is barrier-separated from
//    the new owner's first write, and a directory entry stays `busy` until
//    its in-flight effects land, NACKing conflicting requests meanwhile —
//    that keeps per-sub-page effects applied in home decision order.
namespace ksr::check {
class InvariantChecker;
}

namespace ksr::machine {

class CoherentMachine : public Machine {
 public:
  explicit CoherentMachine(const MachineConfig& cfg);
  ~CoherentMachine() override;

  [[nodiscard]] cache::PerfMonitor& cell_pmon(unsigned cell) override {
    return cells_[cell].pmon;
  }

  /// Drop all cached state (cold start between experiments).
  virtual void reset_memory_system();

  /// Directory introspection for tests. The masks are word 0 of the cell
  /// set (cells 0..63) — every <=64-cell expectation reads unchanged; use
  /// dir_holders()/dir_placeholders() for the full masks at scale.
  struct DirView {
    std::uint64_t holders = 0;
    std::uint64_t placeholders = 0;
    int owner = -1;
    bool atomic = false;
  };
  [[nodiscard]] DirView dir_view(mem::SubPageId sp) const;
  [[nodiscard]] cache::CellMask dir_holders(mem::SubPageId sp) const;
  [[nodiscard]] cache::CellMask dir_placeholders(mem::SubPageId sp) const;

  /// Coherence state of `sp` in one cell's local cache (test introspection).
  [[nodiscard]] cache::LineState cell_line_state(unsigned cell,
                                                 mem::SubPageId sp) const {
    return cells_[cell].local.state(sp);
  }

  /// Leaf-ring index of a cell (always 0 on single-network machines).
  [[nodiscard]] virtual unsigned leaf_of(unsigned cell) const noexcept {
    (void)cell;
    return 0;
  }
  [[nodiscard]] virtual unsigned leaf_count() const noexcept { return 1; }

  /// Home leaf ring of a sub-page: its directory shard's owner. Pages
  /// interleave across leaves so shard load balances with footprint.
  [[nodiscard]] unsigned home_leaf(mem::SubPageId sp) const noexcept {
    const unsigned n = static_cast<unsigned>(dir_shards_.size());
    return n <= 1 ? 0
                  : static_cast<unsigned>(mem::page_of_subpage(sp) % n);
  }

  /// Per-home-leaf directory-shard pressure + per-domain ring counters
  /// (base Machine fills the domain plan; see docs/OBSERVABILITY.md).
  void topo_snapshot(obs::topo::Snapshot& s) const override;

  /// Attach an invariant checker (docs/CHECKING.md). In a -DKSR_CHECK=ON
  /// build the machine reports every committed coherence transition to it;
  /// in a default build the hooks compile to nothing and the checker is
  /// only driven explicitly (audit_all). Derived machines override to also
  /// register their interconnects for the I6 liveness audit. Pass nullptr
  /// to detach. The checker must outlive the machine (or be detached
  /// first). Multi-domain runs report no per-transition events (several
  /// threads commit concurrently); audit_all() at quiescent points — after
  /// run() returns — still checks I1–I6 in full.
  virtual void attach_checker(check::InvariantChecker* checker) {
    checker_ = checker;
  }
  [[nodiscard]] check::InvariantChecker* checker() const noexcept {
    return checker_;
  }

 protected:
  friend class CoherentCpu;
  friend class ::ksr::check::InvariantChecker;

  /// Checkpoint hooks (docs/CHECKPOINT.md): per-cell caches, perf counters
  /// and RNG streams, plus the sharded directory (entries serialized in
  /// ascending SubPageId order — FlatMap iteration is hash order, which
  /// must never leak into an image). Capture refuses while any directory
  /// entry is inside a busy window or any cell has an in-flight prefetch.
  void ckpt_assert_quiescent() const override;
  void ckpt_save(ckpt::Writer& w) const override;
  void ckpt_load(ckpt::Reader& r) override;

  struct Cell {
    cache::SubCache sub;
    cache::LocalCache local;
    cache::PerfMonitor pmon;
    sim::Rng rng;       // replacement decisions
    sim::Rng prog_rng;  // program-visible randomness (kept separate so that
                        // workload draws do not perturb replacement)
    // Sub-pages with an in-flight asynchronous fetch (prefetch), mapping to
    // fibers blocked waiting for that fetch.
    cache::FlatMap<mem::SubPageId, std::vector<sim::FiberId>> inflight;
    unsigned inflight_count = 0;
    Cell(const cache::SubCache::Config& sc, const cache::LocalCache::Config& lc,
         std::uint64_t seed)
        : sub(sc), local(lc), rng(seed), prog_rng(~seed) {}
  };

  struct DirEntry {
    cache::CellMask holders;       // cells with a readable copy
    cache::CellMask placeholders;  // cells with an Invalid placeholder
    std::int16_t owner = -1;       // holder when Exclusive/Atomic
    bool atomic = false;
    bool busy = false;  // multi-domain: effects of a prior decision are
                        // still in flight; conflicting requests NACK
    std::uint8_t resident_leaf = 0;  // last leaf the data lived on (used
                                     // when every copy has been evicted)
  };

  enum class Acquire : std::uint8_t { kShared, kExclusive, kAtomic };

  struct CommitResult {
    bool ok = false;          // false: NACK (sub-page Atomic elsewhere)
    bool page_alloc = false;  // requester had to allocate a page frame
  };

  std::unique_ptr<Cpu> make_cpu(unsigned cell) override;

  // ---- Machine-specific hooks ----

  /// Carry one coherence transaction from `cell` toward `target_leaf`;
  /// `done(total_queue_or_slot_wait)` fires at completion time. In a
  /// multi-domain run this is only ever called for targets inside `cell`'s
  /// own domain (cross-domain travel goes through home_transport and the
  /// boundary channels).
  virtual void transport(unsigned cell, mem::SubPageId sp, unsigned target_leaf,
                         std::function<void(sim::Duration)> done) = 0;

  /// Multi-domain home-side arrival: model the level-1 transit from
  /// `from_leaf`'s ARD and the home ring transaction for a request that
  /// just crossed a boundary channel; `done` fires (on the home domain's
  /// engine) when the directory lookup may commit. Default: immediate.
  virtual void home_transport(unsigned from_leaf, unsigned home,
                              mem::SubPageId sp,
                              std::function<void(sim::Duration)> done) {
    (void)from_leaf;
    (void)home;
    (void)sp;
    done(0);
  }

  /// Fixed per-transaction protocol overhead charged to the requester on a
  /// successful commit (beyond the transport time itself).
  [[nodiscard]] virtual sim::Duration transaction_overhead_ns(
      Acquire kind, bool crossed_leaf) const = 0;

  // ---- Sharded directory access ----

  /// Size the shards and leaf masks from the (virtual) topology. Called
  /// from make_cpu — serially, before any fiber runs — because leaf_of /
  /// leaf_count are not available in the base constructor.
  void ensure_topology();

  [[nodiscard]] DirEntry* dir_find(mem::SubPageId sp) noexcept {
    if (dir_shards_.empty()) return nullptr;
    return dir_shards_[home_leaf(sp)].find(sp);
  }
  [[nodiscard]] const DirEntry* dir_find(mem::SubPageId sp) const noexcept {
    if (dir_shards_.empty()) return nullptr;
    return dir_shards_[home_leaf(sp)].find(sp);
  }
  [[nodiscard]] bool dir_contains(mem::SubPageId sp) const noexcept {
    return dir_find(sp) != nullptr;
  }
  /// Insert-or-find in the home shard (topology must be initialized).
  [[nodiscard]] DirEntry& dir_entry(mem::SubPageId sp) {
    return dir_shards_[home_leaf(sp)][sp];
  }
  /// Host-side sweep over every entry in every shard (audits only; shard
  /// then hash order, so simulated behaviour must never depend on it).
  template <typename F>
  void dir_for_each(F&& f) const {
    for (const auto& shard : dir_shards_) shard.for_each(f);
  }

  /// Mask of cell ids attached to `leaf` (precomputed by ensure_topology).
  [[nodiscard]] const cache::CellMask& leaf_mask(unsigned leaf) const noexcept {
    return leaf_masks_[leaf];
  }

  /// Leaf holding a responder for `sp` from `cell`'s point of view
  /// (single-domain transport targeting).
  [[nodiscard]] unsigned responder_leaf(unsigned cell, const DirEntry& e) const;

  /// Per-transition checker hooks fire only single-domain (multi-domain
  /// commits happen on several threads; audits run at quiescence instead).
  [[nodiscard]] bool hooks_on() const noexcept {
    return checker_ != nullptr && !multi_domain_;
  }

  // ---- Single-domain protocol commits (synchronous, the seed path) ----

  /// `witness` is 1 + the byte offset (within the sub-page) of the demand
  /// access that triggered the transaction, or 0 when there is none
  /// (prefetch). It is pure trace metadata — logged as the grant record's
  /// aux word for the sharing-pattern classifier, never read by the
  /// protocol itself.
  CommitResult commit_shared(unsigned cell, mem::SubPageId sp,
                             std::uint32_t witness = 0);
  CommitResult commit_exclusive(unsigned cell, mem::SubPageId sp, bool atomic,
                                std::uint32_t witness = 0);
  void commit_poststore(unsigned cell, mem::SubPageId sp);

  // ---- Multi-domain protocol (home-shard messages; docs/PARALLEL.md) ----

  /// Reply slot living on the requesting fiber's stack; written only by
  /// events running in the requester's domain.
  struct MbReply {
    bool ok = false;
    bool page_alloc = false;
    cache::LineState state = cache::LineState::kInvalid;
  };
  /// Outcome of a home-shard decision.
  struct MbDecision {
    bool ok = false;                // false: NACK (atomic elsewhere or busy)
    bool deferred = false;          // cross-domain revocations were emitted;
                                    // the grant must wait until grant_time
    sim::Time grant_time = 0;       // earliest time the grant may apply
    cache::LineState state = cache::LineState::kInvalid;
  };

  /// Serialize one acquire on the home shard (run on the home domain's
  /// thread): NACK/grant bookkeeping, revocations to holder domains (wave
  /// 1, at the current horizon), snarf refreshes (wave 2). The caller
  /// applies the requester-side grant no earlier than grant_time.
  MbDecision mb_decide(unsigned cell, mem::SubPageId sp, Acquire kind);

  /// Home-side entry for a cross-domain acquire: home_transport, then
  /// mb_decide, then the grant/NACK reply back over the boundary channel
  /// (insert_line runs requester-side inside the reply event, preserving
  /// per-sub-page effect order against later revocations).
  void mb_home_request(unsigned cell, unsigned req_dom, mem::SubPageId sp,
                       Acquire kind, MbReply* rep, sim::FiberId fid);

  /// Home-side poststore commit: wave-1 owner downgrade, wave-2 refreshes.
  void mb_poststore_home(unsigned cell, mem::SubPageId sp);

  /// Home-side release_subpage fix-up (fire and forget from the releaser).
  void mb_release_home(unsigned cell, mem::SubPageId sp);

  /// Home-side eviction fix-up: clear `cell`'s directory bits for `sp`.
  /// Idempotent; ordered before any later request from the same domain by
  /// the boundary channels' FIFO discipline.
  void mb_evict_fixup(unsigned cell, mem::SubPageId sp);

  // ---- Shared cache plumbing ----

  /// Insert/refresh the line in `cell`'s local cache; handles page
  /// allocation and eviction fix-ups. Returns true if a page was allocated.
  bool insert_line(unsigned cell, mem::SubPageId sp, cache::LineState st);

  void on_page_evicted(unsigned cell, mem::PageId page);
  void invalidate_at(unsigned cell, mem::SubPageId sp);

  /// Lifetime request counters for one directory shard (observability only:
  /// never checkpointed, never read by the protocol). Mutated exclusively on
  /// the home domain's thread — single-domain commits and mode-B decisions
  /// both run there — so the counts are pure simulated data, identical at
  /// any --sim-threads. `hot` counts requests per sub-page (hash order;
  /// topo_snapshot sorts before reporting).
  struct ShardStats {
    std::uint64_t requests = 0;
    std::uint64_t grants = 0;
    std::uint64_t nacks = 0;
    std::uint64_t busy_ns = 0;  // Σ busy-window length (mode B only)
    cache::FlatMap<mem::SubPageId, std::uint64_t> hot;
  };

  /// Count one acquire arriving at `sp`'s home shard.
  void shard_note(mem::SubPageId sp, bool granted) {
    ShardStats& st = shard_stats_[home_leaf(sp)];
    ++st.requests;
    ++(granted ? st.grants : st.nacks);
    ++st.hot[sp];
  }

  std::vector<Cell> cells_;
  std::vector<cache::FlatMap<mem::SubPageId, DirEntry>> dir_shards_;
  std::vector<ShardStats> shard_stats_;  // [leaf_count()], by home leaf
  std::vector<cache::CellMask> leaf_masks_;
  bool multi_domain_ = false;
  check::InvariantChecker* checker_ = nullptr;
};

}  // namespace ksr::machine
