#pragma once

#include <cstdint>

// Deterministic random number generation for the simulator.
//
// Every stochastic choice in the model (random cache replacement, workload
// key generation, arrival skew) draws from an explicitly seeded generator so
// that whole-machine runs are bit-reproducible. We use xoshiro256** seeded
// through SplitMix64, the standard pairing recommended by the xoshiro
// authors; <random> engines are avoided because their results are not
// guaranteed identical across standard library implementations.
namespace ksr::sim {

/// SplitMix64 finalizer as a standalone mixer. Bijective on 64-bit values
/// (every step is invertible), so distinct inputs always map to distinct
/// outputs — the engine's schedule fuzzer relies on this to keep seeded
/// event tie-breaking a strict total order.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// SplitMix64 step; used for seeding and as a cheap stateless mixer.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  return mix64(state);
}

/// xoshiro256** 1.0 — fast, high-quality 64-bit generator.
class Rng {
 public:
  explicit constexpr Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept { reseed(seed); }

  constexpr void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  /// Next uniformly distributed 64-bit value.
  constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). `bound` must be nonzero. Uses Lemire's
  /// multiply-shift reduction (slightly biased for astronomically large
  /// bounds, irrelevant at simulator scales).
  constexpr std::uint64_t below(std::uint64_t bound) noexcept {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability `p`.
  constexpr bool chance(double p) noexcept { return uniform() < p; }

  /// Raw generator state, for checkpoint serialization (docs/CHECKPOINT.md).
  /// Restoring the four words restores the exact output sequence.
  constexpr void save_state(std::uint64_t out[4]) const noexcept {
    for (int i = 0; i < 4; ++i) out[i] = state_[i];
  }
  constexpr void restore_state(const std::uint64_t in[4]) noexcept {
    for (int i = 0; i < 4; ++i) state_[i] = in[i];
  }

 private:
  [[nodiscard]] static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace ksr::sim
