#include "ksr/sync/spinlocks.hpp"

#include "ksr/sync/atomic.hpp"

namespace ksr::sync {

namespace {

using machine::Cpu;
using machine::Machine;

constexpr std::uint32_t kNil = 0xFFFFFFFFu;

// ---------------------------------------------------------------------------
// test&set (optionally with bounded exponential backoff). Every attempt is a
// hardware Atomic acquisition of one hot sub-page.
// ---------------------------------------------------------------------------
class TasLock final : public SpinLock {
 public:
  TasLock(Machine& m, bool backoff)
      : backoff_(backoff), word_(m, backoff ? "tasb" : "tas", 1) {}

  void do_acquire(Cpu& cpu) override {
    std::uint64_t delay = 200;  // cycles
    for (;;) {
      cpu.get_subpage(word_.addr(0));
      const std::uint32_t v = word_.read(cpu, 0);
      if (v == 0) {
        word_.write(cpu, 0, 1);
        cpu.release_subpage(word_.addr(0));
        return;
      }
      cpu.release_subpage(word_.addr(0));
      if (backoff_) {
        cpu.work(delay + cpu.rng().below(delay));
        delay = std::min<std::uint64_t>(delay * 2, 12800);
      } else {
        // Naive: spin-read until it looks free, then try again.
        spin_until(cpu, [&] { return word_.read(cpu, 0) == 0; });
      }
    }
  }

  void do_release(Cpu& cpu) override { word_.write(cpu, 0, 0); }

  [[nodiscard]] std::string_view name() const override {
    return backoff_ ? "test&set+backoff" : "test&set";
  }

 private:
  bool backoff_;
  Padded<std::uint32_t> word_;
};

// ---------------------------------------------------------------------------
// Ticket lock with proportional backoff (Anderson [1] / MCS [13] style):
// FCFS; all waiters spin on one "now serving" counter — read-snarfing turns
// the refresh after each hand-off into a single ring transaction.
// ---------------------------------------------------------------------------
class TicketLock final : public SpinLock {
 public:
  explicit TicketLock(Machine& m)
      : next_(m, "ticket.next", 1), serving_(m, "ticket.serving", 1) {}

  void do_acquire(Cpu& cpu) override {
    const std::uint32_t me = fetch_add(cpu, next_, 0, 1u);
    for (;;) {
      const std::uint32_t s = serving_.read(cpu, 0);
      if (s == me) return;
      // Proportional backoff: the further back in line, the longer the nap.
      cpu.work(50 * (me - s));
    }
  }

  void do_release(Cpu& cpu) override {
    serving_.write(cpu, 0, serving_.read(cpu, 0) + 1);
  }

  [[nodiscard]] std::string_view name() const override { return "ticket"; }

 private:
  Padded<std::uint32_t> next_;
  Padded<std::uint32_t> serving_;
};

// ---------------------------------------------------------------------------
// Anderson's array lock: FCFS, each waiter spins on its own sub-page slot,
// so a hand-off invalidates exactly one spinner.
// ---------------------------------------------------------------------------
class AndersonLock final : public SpinLock {
 public:
  explicit AndersonLock(Machine& m)
      : nslots_(m.nproc()),
        tail_(m, "anderson.tail", 1),
        flags_(m, "anderson.flags", m.nproc(), 1),
        my_slot_(m.nproc(), 0) {
    flags_.set_value(0, 1);  // slot 0 starts granted
  }

  void do_acquire(Cpu& cpu) override {
    const std::uint32_t slot = fetch_add(cpu, tail_, 0, 1u) % nslots_;
    my_slot_[cpu.id()] = slot;
    spin_until(cpu, [&] { return flags_.read(cpu, slot) != 0; });
    flags_.write(cpu, slot, 0);  // consume the grant
  }

  void do_release(Cpu& cpu) override {
    const std::uint32_t next = (my_slot_[cpu.id()] + 1) % nslots_;
    flags_.write(cpu, next, 1);
  }

  [[nodiscard]] std::string_view name() const override { return "anderson"; }

 private:
  std::uint32_t nslots_;
  Padded<std::uint32_t> tail_;
  Padded<std::uint32_t> flags_;
  std::vector<std::uint32_t> my_slot_;  // register state, host-side
};

// ---------------------------------------------------------------------------
// MCS queue lock: waiters form a linked queue; each spins on a flag in its
// own sub-page; O(1) remote traffic per hand-off. The atomic swap/CAS on the
// tail pointer is built from get_subpage, as all KSR atomics are.
// ---------------------------------------------------------------------------
class McsQueueLock final : public SpinLock {
 public:
  explicit McsQueueLock(Machine& m)
      : tail_(m, "mcsq.tail", 1),
        next_(m, "mcsq.next", m.nproc(), 1),
        locked_(m, "mcsq.locked", m.nproc(), 1) {
    tail_.set_value(0, kNil);
  }

  void do_acquire(Cpu& cpu) override {
    const std::uint32_t me = cpu.id();
    next_.write(cpu, me, kNil);
    locked_.write(cpu, me, 1);
    // swap(tail, me)
    cpu.get_subpage(tail_.addr(0));
    const std::uint32_t prev = tail_.read(cpu, 0);
    tail_.write(cpu, 0, me);
    cpu.release_subpage(tail_.addr(0));
    if (prev == kNil) return;  // lock was free
    next_.write(cpu, prev, me);
    spin_until(cpu, [&] { return locked_.read(cpu, me) == 0; });
  }

  void do_release(Cpu& cpu) override {
    const std::uint32_t me = cpu.id();
    if (next_.read(cpu, me) == kNil) {
      // compare&swap(tail, me -> nil)
      cpu.get_subpage(tail_.addr(0));
      if (tail_.read(cpu, 0) == me) {
        tail_.write(cpu, 0, kNil);
        cpu.release_subpage(tail_.addr(0));
        return;
      }
      cpu.release_subpage(tail_.addr(0));
      // A successor is in the middle of linking in: wait for it.
      spin_until(cpu, [&] { return next_.read(cpu, me) != kNil; });
    }
    locked_.write(cpu, next_.read(cpu, me), 0);
  }

  [[nodiscard]] std::string_view name() const override { return "mcs-queue"; }

 private:
  Padded<std::uint32_t> tail_;
  Padded<std::uint32_t> next_;
  Padded<std::uint32_t> locked_;
};

}  // namespace

std::vector<SpinLockKind> all_spinlock_kinds() {
  return {SpinLockKind::kTestAndSet, SpinLockKind::kTestAndSetBackoff,
          SpinLockKind::kTicket, SpinLockKind::kAnderson,
          SpinLockKind::kMcsQueue};
}

std::unique_ptr<SpinLock> make_spinlock(machine::Machine& m,
                                        SpinLockKind kind) {
  switch (kind) {
    case SpinLockKind::kTestAndSet:
      return std::make_unique<TasLock>(m, false);
    case SpinLockKind::kTestAndSetBackoff:
      return std::make_unique<TasLock>(m, true);
    case SpinLockKind::kTicket:
      return std::make_unique<TicketLock>(m);
    case SpinLockKind::kAnderson:
      return std::make_unique<AndersonLock>(m);
    case SpinLockKind::kMcsQueue:
      return std::make_unique<McsQueueLock>(m);
  }
  return nullptr;
}

}  // namespace ksr::sync
