// Cross-validation of the closed-form ring model against the slot-accurate
// simulator: uncontended latency, bandwidth, and the shape of the
// wait-vs-load curve.
#include <gtest/gtest.h>

#include "ksr/net/ring.hpp"
#include "ksr/sim/engine.hpp"
#include "ksr/sim/stats.hpp"
#include "ksr/study/ring_model.hpp"

namespace ksr::study {
namespace {

TEST(RingModel, PublishedNumbersFallOut) {
  const RingModel m = RingModel::from_config(machine::MachineConfig::ksr1(32));
  // ~175 cycles = 8750 ns uncontended remote access.
  EXPECT_NEAR(m.uncontended_latency_ns(), 8750.0, 200.0);
  // "The lowest level ring has a capacity of 1 GBytes/sec" ~ 0.96 GB/s.
  EXPECT_NEAR(m.peak_bandwidth_bytes_per_ns(), 0.96, 0.05);
}

TEST(RingModel, MatchesSimulatorWhenUncontended) {
  sim::Engine eng;
  net::SlottedRing ring(eng, {}, "t");
  sim::RunningStat lat;
  // Sparse, spread-out injections: effectively zero load.
  for (unsigned p = 0; p < 32; ++p) {
    const sim::Time when = p * 50000;
    eng.at(when, [&ring, &lat, &eng, p, when] {
      ring.inject(p, p % 2, [&lat, &eng, when](sim::Duration) {
        lat.add(static_cast<double>(eng.now() - when));
      });
    });
  }
  eng.run();
  const RingModel m = RingModel::from_config(machine::MachineConfig::ksr1(32));
  // Simulated = wait + circulation; model adds the protocol overhead which
  // the raw ring does not include.
  EXPECT_NEAR(lat.mean() + m.fixed_overhead_ns, m.uncontended_latency_ns(),
              150.0);
}

TEST(RingModel, WaitCurveShapesMatchSimulator) {
  // Sweep offered load; both the model and the simulator must agree that
  // waits stay flat below ~60% utilisation and blow up near saturation.
  const RingModel model = RingModel::from_config(machine::MachineConfig::ksr1(32));
  auto simulate = [](sim::Duration period) {
    sim::Engine eng;
    net::SlottedRing ring(eng, {}, "t");
    for (unsigned p = 0; p < 32; ++p) {
      for (int k = 0; k < 40; ++k) {
        eng.at(static_cast<sim::Time>(k) * period + p * (period / 32),
               [&ring, p, k] {
                 ring.inject(p, static_cast<unsigned>(k) % 2,
                             [](sim::Duration) {});
               });
      }
    }
    eng.run();
    return ring.stats().mean_wait_ns();
  };

  // Offered rate = 32 / period transactions per ns.
  const double sat = model.saturation_rate_per_ns();
  const double low_period = 32.0 / (0.3 * sat);   // 30% of saturation
  const double high_period = 32.0 / (1.5 * sat);  // 150% of saturation
  const double w_low = simulate(static_cast<sim::Duration>(low_period));
  const double w_high = simulate(static_cast<sim::Duration>(high_period));
  EXPECT_LT(w_low, 800.0);
  EXPECT_GT(w_high, 4.0 * w_low);

  // The analytic curve shows the same ordering.
  EXPECT_LT(model.expected_wait_ns(0.3), model.expected_wait_ns(0.9));
}

TEST(RingModel, UtilizationSaturatesAtOne) {
  const RingModel m = RingModel::from_config(machine::MachineConfig::ksr1(32));
  EXPECT_LE(m.utilization(32, 0.0), 1.0);
  EXPECT_LT(m.utilization(2, 100000.0), 0.05);
  EXPECT_GT(m.utilization(32, 0.0), m.utilization(8, 0.0));
}

}  // namespace
}  // namespace ksr::study
