// Quickstart: build a simulated KSR-1, run a small program on every cell,
// and read the machine's vital signs — the 60-second tour of the API.
//
//   $ ./quickstart
//
// Topics: machine construction, shared arrays, the Cpu program interface,
// per-cell timing, and the hardware performance monitor.
#include <cstdio>
#include <iostream>

#include "ksr/machine/ksr_machine.hpp"
#include "ksr/sync/barrier.hpp"

int main() {
  using namespace ksr;  // NOLINT

  // A 8-cell KSR-1: COMA memory over one slotted ring.
  machine::KsrMachine m(machine::MachineConfig::ksr1(8));

  // Shared arrays live in the System Virtual Address space; any cell can
  // touch any element, and the ALLCACHE protocol moves the data around.
  auto data = m.alloc<double>("data", 1024);
  auto barrier = sync::make_barrier(m, sync::BarrierKind::kTournamentM);

  // One program body runs on every cell. Reads/writes charge the simulated
  // memory system (sub-cache -> local cache -> ring) and move real data.
  auto result = m.run([&](machine::Cpu& cpu) {
    // Each cell initialises its slice (first touch => it owns those pages).
    for (std::size_t i = cpu.id(); i < data.size(); i += cpu.nproc()) {
      cpu.write(data, i, static_cast<double>(i));
    }
    barrier->arrive(cpu);

    // Cell 0 now sums the whole array: 7/8 of it is in remote caches, so
    // watch the ring counters below.
    if (cpu.id() == 0) {
      double sum = 0;
      for (std::size_t i = 0; i < data.size(); ++i) {
        sum += cpu.read(data, i);
        cpu.work(2);  // the add
      }
      std::printf("sum computed on cell 0: %.0f (expected %.0f)\n", sum,
                  1023.0 * 1024.0 / 2.0);
    }
    barrier->arrive(cpu);
  });

  std::printf("\nsimulated wall time: %.6f s (%.0f cell cycles)\n",
              result.seconds, result.seconds / 50e-9);

  // The per-cell hardware performance monitor (the paper's measurement
  // instrument) accumulated during the run:
  const auto& pm = result.cell_pmon[0];
  std::printf("\ncell 0 monitor:\n");
  std::printf("  sub-cache   hits/misses : %llu / %llu\n",
              static_cast<unsigned long long>(pm.subcache_hits),
              static_cast<unsigned long long>(pm.subcache_misses));
  std::printf("  local-cache hits/misses : %llu / %llu\n",
              static_cast<unsigned long long>(pm.localcache_hits),
              static_cast<unsigned long long>(pm.localcache_misses));
  std::printf("  ring transactions       : %llu (%.2f us stalled)\n",
              static_cast<unsigned long long>(pm.ring_requests),
              static_cast<double>(pm.ring_time_ns) / 1000.0);
  std::printf("  snarfs received         : %llu\n",
              static_cast<unsigned long long>(pm.snarfs));

  std::printf("\nring stats: %llu packets, mean slot wait %.0f ns\n",
              static_cast<unsigned long long>(m.leaf_ring(0).stats().packets),
              m.leaf_ring(0).stats().mean_wait_ns());
  return 0;
}
