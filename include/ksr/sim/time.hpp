#pragma once

#include <cstdint>

// Simulated-time base types.
//
// All simulated time is kept in integer nanoseconds. The KSR-1 cell clock is
// 20 MHz (50 ns/cycle) and the KSR-2 cell clock 40 MHz (25 ns/cycle); the ring
// runs at the same absolute speed on both machines, so nanoseconds are the
// common denominator that keeps every latency an exact integer.
namespace ksr::sim {

/// Absolute simulated time in nanoseconds since the start of the run.
using Time = std::uint64_t;

/// A duration in nanoseconds.
using Duration = std::uint64_t;

/// Convert simulated time to seconds for reporting (the unit used by every
/// figure and table in the paper).
[[nodiscard]] constexpr double to_seconds(Time t) noexcept {
  return static_cast<double>(t) * 1e-9;
}

/// Convert a duration in microseconds to nanoseconds.
[[nodiscard]] constexpr Duration usec(std::uint64_t us) noexcept { return us * 1000; }

/// Convert a duration in milliseconds to nanoseconds.
[[nodiscard]] constexpr Duration msec(std::uint64_t ms) noexcept { return ms * 1'000'000; }

}  // namespace ksr::sim
