#include "ksr/machine/ksr_machine.hpp"

#include <stdexcept>
#include <string>
#include <utility>

#include "ksr/check/checker.hpp"
#include "ksr/ckpt/checkpoint.hpp"
#include "ksr/sim/rng.hpp"

namespace ksr::machine {

namespace {

void save_ring_stats(ckpt::Writer& w, const net::SlottedRing& r) {
  const net::SlottedRing::Stats& s = r.stats();
  w.u64(s.packets);
  w.u64(static_cast<std::uint64_t>(s.total_inject_wait_ns));
  w.u64(s.retries);
  w.u64(s.max_in_flight);
  w.u64(s.in_flight);
}

void load_ring_stats(ckpt::Reader& r, net::SlottedRing& ring) {
  net::SlottedRing::Stats s;
  s.packets = r.u64();
  s.total_inject_wait_ns = static_cast<sim::Duration>(r.u64());
  s.retries = r.u64();
  s.max_in_flight = r.u64();
  s.in_flight = r.u64();
  ring.restore_stats(s);
}

}  // namespace

KsrMachine::KsrMachine(const MachineConfig& cfg) : CoherentMachine(cfg) {
  const unsigned leaves = cfg_.leaf_rings();
  const bool multi = leaves > 1;
  // Schedule fuzzing: derive a deterministic slot-phase rotation per ring
  // from the fuzz seed (0 keeps every phase 0, the paper layout).
  std::uint64_t phase_seed = cfg_.sched_fuzz_seed;
  leaf_rings_.reserve(leaves);
  for (unsigned l = 0; l < leaves; ++l) {
    net::SlottedRing::Config rc;
    rc.positions = cfg_.leaf_ring_positions();  // cells + ARD interface
    rc.slots_per_subring = cfg_.ring_slots_per_subring;
    rc.subrings = 2;
    rc.hop_ns = cfg_.ring_hop_ns;
    if (cfg_.sched_fuzz_seed != 0) {
      rc.phase = static_cast<unsigned>(sim::splitmix64(phase_seed) %
                                       rc.positions);
    }
    // Each ring lives on the engine of the domain owning its leaf: all of
    // its events then dispatch on that domain's thread (single-domain maps
    // every leaf to engine 0, exactly the seed shape).
    sim::Engine& eng =
        multi_domain_ ? engine_of(cfg_.domain_of_leaf(l)) : engine_;
    leaf_rings_.push_back(std::make_unique<net::SlottedRing>(
        eng, rc, "ring0." + std::to_string(l)));
  }
  if (multi && !multi_domain_) {
    // The explicit level-1 ring exists only single-domain; a multi-domain
    // run models level-1 transit analytically (transport/home_transport)
    // because one shared ring object would serialize every domain thread.
    net::SlottedRing::Config rc;
    rc.positions = MachineConfig::kRing1Positions;  // ARD attachment points
    rc.slots_per_subring = cfg_.ring1_slots_per_subring;
    rc.subrings = 2;
    rc.hop_ns = cfg_.ring1_hop_ns;
    if (cfg_.sched_fuzz_seed != 0) {
      rc.phase = static_cast<unsigned>(sim::splitmix64(phase_seed) %
                                       rc.positions);
    }
    ring1_ = std::make_unique<net::SlottedRing>(engine_, rc, "ring1");
  }
  traffic_shards_.assign(
      domains(), std::vector<std::uint64_t>(
                     static_cast<std::size_t>(leaves) * leaves, 0));
}

KsrMachine::~KsrMachine() = default;

void KsrMachine::topo_snapshot(obs::topo::Snapshot& s) const {
  CoherentMachine::topo_snapshot(s);
  auto ring_use = [](const net::SlottedRing& r, unsigned level,
                     sim::Time elapsed) {
    const net::SlottedRing::Stats& st = r.stats();
    obs::topo::RingUse u;
    u.name = r.name();
    u.level = level;
    u.slots = r.slot_count();
    u.packets = st.packets;
    u.retries = st.retries;
    u.inject_wait_ns = static_cast<std::uint64_t>(st.total_inject_wait_ns);
    u.busy_slot_ns = st.busy_slot_ns;
    u.elapsed_ns = static_cast<std::uint64_t>(elapsed);
    return u;
  };
  for (unsigned l = 0; l < leaf_rings_.size(); ++l) {
    // Elapsed time on the ring's own engine: the occupancy integral's
    // denominator (simulated, so identical at any --sim-threads).
    s.rings.push_back(ring_use(*leaf_rings_[l], 0,
                               par_.domain(domain_of_leaf(l)).now()));
  }
  if (ring1_) s.rings.push_back(ring_use(*ring1_, 1, par_.domain(0).now()));

  const unsigned leaves = leaf_count();
  if (leaves > 1) {
    s.traffic.assign(static_cast<std::size_t>(leaves) * leaves, 0);
    for (const auto& shard : traffic_shards_) {
      for (std::size_t i = 0; i < shard.size(); ++i) s.traffic[i] += shard[i];
    }
  }
}

void KsrMachine::attach_checker(check::InvariantChecker* checker) {
  CoherentMachine::attach_checker(checker);
  if (checker != nullptr) {
    for (auto& r : leaf_rings_) checker->add_ring(r.get());
    if (ring1_) checker->add_ring(ring1_.get());
  }
}

void KsrMachine::ckpt_assert_quiescent() const {
  CoherentMachine::ckpt_assert_quiescent();
  auto check = [](const net::SlottedRing& r) {
    if (!r.idle()) {
      throw std::logic_error(
          "KsrMachine::checkpoint: ring " + r.name() +
          " is not idle (occupied slot or waiting injector) — capture "
          "refused; checkpoints are only legal at a quiescent point");
    }
  };
  for (const auto& r : leaf_rings_) check(*r);
  if (ring1_) check(*ring1_);
}

void KsrMachine::ckpt_save(ckpt::Writer& w) const {
  CoherentMachine::ckpt_save(w);
  w.u32(static_cast<std::uint32_t>(leaf_rings_.size()));
  for (const auto& r : leaf_rings_) save_ring_stats(w, *r);
  w.boolean(ring1_ != nullptr);
  if (ring1_) save_ring_stats(w, *ring1_);
}

void KsrMachine::ckpt_load(ckpt::Reader& r) {
  CoherentMachine::ckpt_load(r);
  const std::uint32_t nrings = r.u32();
  if (nrings != leaf_rings_.size()) {
    throw std::runtime_error("KsrMachine::restore: checkpoint has " +
                             std::to_string(nrings) +
                             " leaf ring(s), machine has " +
                             std::to_string(leaf_rings_.size()));
  }
  for (auto& ring : leaf_rings_) load_ring_stats(r, *ring);
  const bool has_ring1 = r.boolean();
  if (has_ring1 != (ring1_ != nullptr)) {
    throw std::runtime_error(
        "KsrMachine::restore: level-1 ring presence mismatch");
  }
  if (ring1_) load_ring_stats(r, *ring1_);
}

void KsrMachine::transport(unsigned cell, mem::SubPageId sp,
                           unsigned target_leaf,
                           std::function<void(sim::Duration)> done) {
  const unsigned my_leaf = leaf_of(cell);
  const unsigned sr = mem::subring_of(sp);
  // Traffic matrix: one transport from my_leaf toward target_leaf, counted
  // in the source domain's shard (this runs on the source cell's thread).
  ++traffic_shards_[domain_of_cell(cell)]
                   [static_cast<std::size_t>(my_leaf) * leaf_count() +
                    target_leaf];
  if (target_leaf == my_leaf || leaf_rings_.size() == 1) {
    leaf_rings_[my_leaf]->inject(pos_of(cell), sr, std::move(done));
    return;
  }
  const unsigned ard_pos = cfg_.cells_per_leaf;  // ARD interface index
  if (multi_domain_) {
    // Same-domain cross-leaf hop: own ring to the ARD, an analytic level-1
    // circulation (the shared ring1 object cannot be touched from domain
    // threads), then the target leaf ring from its ARD. Only ever called
    // with a target inside this cell's domain.
    sim::Engine* eng = &engine_of(domain_of_cell(cell));
    const sim::Duration l1 =
        static_cast<sim::Duration>(MachineConfig::kRing1Positions) *
        cfg_.ring1_hop_ns;
    leaf_rings_[my_leaf]->inject(
        pos_of(cell), sr,
        [this, eng, l1, sr, target_leaf, ard_pos,
         done = std::move(done)](sim::Duration w1) mutable {
          eng->in(l1, [this, sr, target_leaf, ard_pos, w1,
                       done = std::move(done)]() mutable {
            leaf_rings_[target_leaf]->inject(
                ard_pos, sr, [w1, done = std::move(done)](sim::Duration w3) {
                  done(w1 + w3);
                });
          });
        });
    return;
  }
  // Three legs: my leaf ring (to our ARD), the level-1 ring, the remote
  // leaf ring — each a full circulation with its own slot acquisition.
  leaf_rings_[my_leaf]->inject(
      pos_of(cell), sr,
      [this, sr, my_leaf, target_leaf, ard_pos,
       done = std::move(done)](sim::Duration w1) mutable {
        ring1_->inject(
            my_leaf, sr,
            [this, sr, target_leaf, ard_pos, w1,
             done = std::move(done)](sim::Duration w2) mutable {
              leaf_rings_[target_leaf]->inject(
                  ard_pos, sr,
                  [w1, w2, done = std::move(done)](sim::Duration w3) {
                    done(w1 + w2 + w3);
                  });
            });
      });
}

void KsrMachine::home_transport(unsigned from_leaf, unsigned home,
                                mem::SubPageId sp,
                                std::function<void(sim::Duration)> done) {
  // Home-side arrival of a boundary-channel request: the level-1 transit
  // from the requester's ARD (analytic circulation — see transport), then
  // the home leaf ring entered at its ARD. Runs on the home domain's
  // engine — so the cross-domain leg lands in the home domain's traffic
  // shard.
  ++traffic_shards_[cfg_.domain_of_leaf(home)]
                   [static_cast<std::size_t>(from_leaf) * leaf_count() + home];
  const unsigned ard_pos = cfg_.cells_per_leaf;
  const unsigned sr = mem::subring_of(sp);
  sim::Engine& eng = engine_of(cfg_.domain_of_leaf(home));
  const sim::Duration l1 =
      static_cast<sim::Duration>(MachineConfig::kRing1Positions) *
      cfg_.ring1_hop_ns;
  eng.in(l1, [this, home, sr, ard_pos, done = std::move(done)]() mutable {
    leaf_rings_[home]->inject(ard_pos, sr, std::move(done));
  });
}

sim::Duration KsrMachine::transaction_overhead_ns(Acquire kind,
                                                  bool crossed_leaf) const {
  sim::Duration t = cfg_.ring_fixed_ns;
  if (kind != Acquire::kShared) {
    // Fig. 2: network writes are slightly dearer than network reads.
    t += cfg_.localcache_write_ns - cfg_.localcache_read_ns;
  }
  if (crossed_leaf) t += 2 * cfg_.ard_crossing_ns;
  return t;
}

}  // namespace ksr::machine
