// Trace-analyzer tests: sharing-pattern classification on synthetic record
// streams (read-only, migratory ping-pong, deliberate false sharing),
// barrier skew / last-arriver attribution, lock hold-vs-wait decomposition
// with contention depth, stall aggregation and collapsed-stack export,
// report byte-stability, and the end-to-end payoff: the profiler flags the
// IS bucket array as falsely shared exactly when it is unpadded.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "ksr/machine/ksr_machine.hpp"
#include "ksr/mem/geometry.hpp"
#include "ksr/nas/is.hpp"
#include "ksr/obs/analyze.hpp"
#include "ksr/obs/tracer.hpp"

namespace ksr {
namespace {

using machine::KsrMachine;
using machine::MachineConfig;
using obs::Analysis;
using obs::SharingPattern;
using obs::Tracer;

Tracer::Record rec(sim::Time t, std::uint16_t cat, std::uint16_t ev,
                   std::uint64_t subject, std::uint64_t actor,
                   std::int64_t detail = 0, std::uint32_t aux = 0) {
  Tracer::Record r;
  r.t = t;
  r.subject = subject;
  r.actor = actor;
  r.detail = detail;
  r.cat = cat;
  r.ev = ev;
  r.aux = aux;
  return r;
}

Analysis run(const std::vector<Tracer::Record>& recs,
             std::vector<obs::RegionSpan> regions = {}) {
  return obs::analyze(recs.data(), recs.data() + recs.size(),
                      std::move(regions));
}

/// Witness encoding used by the coherence layer: 1 + byte offset of the
/// demand access within its sub-page (0 = no witness).
constexpr std::uint32_t witness(std::uint32_t byte_off) { return 1 + byte_off; }

// ----------------------------------------------------------- classifier

TEST(Classifier, SingleCellIsPrivate) {
  const Analysis a = run({
      rec(10, obs::kCatCoherence, obs::kEvGrantExclusive, 5, 0, 0, witness(0)),
      rec(20, obs::kCatCoherence, obs::kEvGrantExclusive, 5, 0, 0, witness(4)),
  });
  ASSERT_EQ(a.subpages.size(), 1u);
  EXPECT_EQ(a.subpages[0].pattern, SharingPattern::kPrivate);
}

TEST(Classifier, SharedGrantsWithoutWritersAreReadOnly) {
  const Analysis a = run({
      rec(10, obs::kCatCoherence, obs::kEvGrantShared, 5, 0),
      rec(20, obs::kCatCoherence, obs::kEvGrantShared, 5, 1),
      rec(30, obs::kCatCoherence, obs::kEvGrantShared, 5, 2),
  });
  ASSERT_EQ(a.subpages.size(), 1u);
  EXPECT_EQ(a.subpages[0].pattern, SharingPattern::kReadOnly);
  EXPECT_EQ(a.subpages[0].readers, 3u);
  EXPECT_EQ(a.subpages[0].writers, 0u);
}

TEST(Classifier, OneWriterWithReadersIsProducerConsumer) {
  const Analysis a = run({
      rec(10, obs::kCatCoherence, obs::kEvGrantExclusive, 5, 0, 0, witness(0)),
      rec(20, obs::kCatCoherence, obs::kEvGrantShared, 5, 1),
      rec(30, obs::kCatCoherence, obs::kEvGrantShared, 5, 2),
  });
  ASSERT_EQ(a.subpages.size(), 1u);
  EXPECT_EQ(a.subpages[0].pattern, SharingPattern::kProducerConsumer);
}

TEST(Classifier, SnarfCountsTheSnarferAsAReader) {
  const Analysis a = run({
      rec(10, obs::kCatCoherence, obs::kEvGrantExclusive, 5, 0, 0, witness(0)),
      rec(20, obs::kCatCoherence, obs::kEvSnarf, 5, 3),
  });
  ASSERT_EQ(a.subpages.size(), 1u);
  EXPECT_EQ(a.subpages[0].pattern, SharingPattern::kProducerConsumer);
  EXPECT_EQ(a.subpages[0].snarfs, 1u);
  EXPECT_EQ(a.subpages[0].score, 1u);  // snarfs count toward contention
}

TEST(Classifier, SameWordPingPongIsMigratory) {
  // Two cells alternately take exclusive ownership witnessing the *same*
  // byte: true sharing, not a layout artifact.
  const Analysis a = run({
      rec(10, obs::kCatCoherence, obs::kEvGrantExclusive, 5, 0, 0, witness(4)),
      rec(20, obs::kCatCoherence, obs::kEvGrantExclusive, 5, 1, 0, witness(4)),
      rec(30, obs::kCatCoherence, obs::kEvGrantExclusive, 5, 0, 0, witness(4)),
      rec(40, obs::kCatCoherence, obs::kEvInvalidate, 5, 0),
  });
  ASSERT_EQ(a.subpages.size(), 1u);
  EXPECT_EQ(a.subpages[0].pattern, SharingPattern::kMigratory);
  EXPECT_FALSE(a.subpages[0].disjoint_writes);
  EXPECT_EQ(a.subpages[0].owner_changes, 2u);
}

TEST(Classifier, DisjointWordPingPongIsFalselyShared) {
  // Same ownership ping-pong, but the witnessed offsets never overlap: the
  // cells are fighting over the 128-B coherence unit, not the data.
  const Analysis a = run({
      rec(10, obs::kCatCoherence, obs::kEvGrantExclusive, 5, 0, 0, witness(0)),
      rec(20, obs::kCatCoherence, obs::kEvGrantExclusive, 5, 1, 0,
          witness(64)),
      rec(30, obs::kCatCoherence, obs::kEvGrantExclusive, 5, 0, 0, witness(4)),
      rec(40, obs::kCatCoherence, obs::kEvGrantExclusive, 5, 1, 0,
          witness(68)),
  });
  ASSERT_EQ(a.subpages.size(), 1u);
  EXPECT_EQ(a.subpages[0].pattern, SharingPattern::kFalselyShared);
  EXPECT_TRUE(a.subpages[0].disjoint_writes);
  EXPECT_EQ(a.subpages[0].owner_changes, 3u);
}

TEST(Classifier, UnwitnessedWriteBlocksFalseSharingVerdict) {
  // One grant carries no witness (aux = 0, e.g. a prefetch): the classifier
  // must stay conservative and call it migratory.
  const Analysis a = run({
      rec(10, obs::kCatCoherence, obs::kEvGrantExclusive, 5, 0, 0, witness(0)),
      rec(20, obs::kCatCoherence, obs::kEvGrantExclusive, 5, 1, 0, 0),
      rec(30, obs::kCatCoherence, obs::kEvGrantExclusive, 5, 0, 0, witness(0)),
  });
  ASSERT_EQ(a.subpages.size(), 1u);
  EXPECT_EQ(a.subpages[0].pattern, SharingPattern::kMigratory);
  EXPECT_FALSE(a.subpages[0].disjoint_writes);
}

TEST(Classifier, SingleOwnershipHandoffIsNotFalseSharing) {
  // Disjoint offsets but ownership moved only once — a hand-off, not a
  // ping-pong. Stays migratory.
  const Analysis a = run({
      rec(10, obs::kCatCoherence, obs::kEvGrantExclusive, 5, 0, 0, witness(0)),
      rec(20, obs::kCatCoherence, obs::kEvGrantExclusive, 5, 1, 0,
          witness(64)),
  });
  ASSERT_EQ(a.subpages.size(), 1u);
  EXPECT_EQ(a.subpages[0].pattern, SharingPattern::kMigratory);
  EXPECT_TRUE(a.subpages[0].disjoint_writes);
  EXPECT_EQ(a.subpages[0].owner_changes, 1u);
}

TEST(Classifier, AtomicTrafficClassifiesAsLock) {
  const Analysis a = run({
      rec(10, obs::kCatCoherence, obs::kEvGrantAtomic, 5, 0),
      rec(20, obs::kCatCoherence, obs::kEvGrantAtomic, 5, 1),
      rec(30, obs::kCatCoherence, obs::kEvGrantAtomic, 5, 0),
  });
  ASSERT_EQ(a.subpages.size(), 1u);
  EXPECT_EQ(a.subpages[0].pattern, SharingPattern::kLock);
  EXPECT_EQ(a.subpages[0].grants_atomic, 3u);
}

TEST(Classifier, RanksByContentionScoreThenSubpage) {
  const Analysis a = run({
      rec(10, obs::kCatCoherence, obs::kEvGrantShared, 5, 0),
      rec(20, obs::kCatCoherence, obs::kEvGrantShared, 9, 0),
      rec(30, obs::kCatCoherence, obs::kEvInvalidate, 9, 1),
      rec(40, obs::kCatCoherence, obs::kEvNack, 9, 1),
      rec(50, obs::kCatCoherence, obs::kEvInvalidate, 2, 1),
  });
  ASSERT_EQ(a.subpages.size(), 3u);
  EXPECT_EQ(a.subpages[0].subpage, 9u);  // score 2
  EXPECT_EQ(a.subpages[1].subpage, 2u);  // score 1
  EXPECT_EQ(a.subpages[2].subpage, 5u);  // score 0
}

TEST(Classifier, ResolvesRegionNamesFromSpans) {
  // Sub-page 2 sits at SVA 256 — inside "arr" (base 0, 512 bytes); sub-page
  // 100 maps nowhere.
  const Analysis a = run(
      {
          rec(10, obs::kCatCoherence, obs::kEvGrantShared, 2, 0),
          rec(20, obs::kCatCoherence, obs::kEvGrantShared, 100, 0),
      },
      {{0, 512, "arr"}});
  ASSERT_EQ(a.subpages.size(), 2u);
  for (const obs::SubpageProfile& p : a.subpages) {
    if (p.subpage == 2) {
      EXPECT_EQ(p.region, "arr");
      EXPECT_EQ(p.region_offset, 2 * mem::kSubPageBytes);
    } else {
      EXPECT_TRUE(p.region.empty());
    }
  }
}

// ------------------------------------------------------------- barriers

TEST(Barriers, EpisodeSkewAndLastArriverAttribution) {
  // Two cpus, two episodes. Arrivals are matched by per-cpu order (each
  // cpu's k-th arrive is global episode k), so interleaved log order and
  // colliding episode counters cannot confuse the grouping.
  const Analysis a = run({
      rec(100, obs::kCatSync, obs::kEvBarrierArrive, 0, 0),
      rec(150, obs::kCatSync, obs::kEvBarrierArrive, 0, 1),
      rec(300, obs::kCatSync, obs::kEvBarrierArrive, 0, 1),
      rec(380, obs::kCatSync, obs::kEvBarrierArrive, 0, 0),
  });
  ASSERT_EQ(a.barriers.episodes.size(), 2u);
  EXPECT_EQ(a.barriers.episodes[0].skew, 50u);
  EXPECT_EQ(a.barriers.episodes[0].last_cpu, 1u);
  EXPECT_EQ(a.barriers.episodes[0].arrivals, 2u);
  EXPECT_EQ(a.barriers.episodes[1].skew, 80u);
  EXPECT_EQ(a.barriers.episodes[1].last_cpu, 0u);
  EXPECT_EQ(a.barriers.max_skew, 80u);
  EXPECT_EQ(a.barriers.total_skew, 130u);
  ASSERT_EQ(a.barriers.last_arriver.size(), 2u);
  EXPECT_EQ(a.barriers.last_arriver[0], 1u);
  EXPECT_EQ(a.barriers.last_arriver[1], 1u);
}

// ---------------------------------------------------------------- locks

TEST(Locks, WaitHoldDecompositionAndContentionDepth) {
  // cpu0 takes the lock uncontended; cpu1 and cpu2 queue behind it with
  // overlapping wait intervals ([1100,1500] and [1200,1800] overlap on
  // [1200,1500] -> depth 2).
  const Analysis a = run({
      rec(1000, obs::kCatSync, obs::kEvLockAcquire, 7, 0),
      rec(1000, obs::kCatSync, obs::kEvLockAcquired, 7, 0, 0),
      rec(1100, obs::kCatSync, obs::kEvLockAcquire, 7, 1),
      rec(1200, obs::kCatSync, obs::kEvLockAcquire, 7, 2),
      rec(1500, obs::kCatSync, obs::kEvLockRelease, 7, 0),
      rec(1500, obs::kCatSync, obs::kEvLockAcquired, 7, 1, 400),
      rec(1800, obs::kCatSync, obs::kEvLockRelease, 7, 1),
      rec(1800, obs::kCatSync, obs::kEvLockAcquired, 7, 2, 600),
      rec(2000, obs::kCatSync, obs::kEvLockRelease, 7, 2),
  });
  ASSERT_EQ(a.locks.size(), 1u);
  const obs::LockProfile& l = a.locks[0];
  EXPECT_EQ(l.subject, 7u);
  EXPECT_EQ(l.acquisitions, 3u);
  EXPECT_EQ(l.wait_ns, 1000u);  // 0 + 400 + 600
  EXPECT_EQ(l.hold_ns, 1000u);  // 500 + 300 + 200
  EXPECT_EQ(l.max_wait_ns, 600u);
  EXPECT_EQ(l.max_depth, 2u);
}

TEST(Locks, BackToBackHandoffDoesNotInflateDepth) {
  // cpu1's wait ends exactly when cpu2's begins; ends sort before starts at
  // the same instant, so the depth never reads 2.
  const Analysis a = run({
      rec(100, obs::kCatSync, obs::kEvLockAcquire, 3, 1),
      rec(200, obs::kCatSync, obs::kEvLockAcquired, 3, 1, 100),
      rec(200, obs::kCatSync, obs::kEvLockAcquire, 3, 2),
      rec(300, obs::kCatSync, obs::kEvLockAcquired, 3, 2, 100),
  });
  ASSERT_EQ(a.locks.size(), 1u);
  EXPECT_EQ(a.locks[0].max_depth, 1u);
}

// --------------------------------------------------------------- stalls

TEST(Stalls, AggregatesByCpuKindRegionAndExportsCollapsedStacks) {
  const Analysis a = run(
      {
          rec(10, obs::kCatStall, obs::kEvRemoteAcquire, 0, 0, 100),
          rec(20, obs::kCatStall, obs::kEvRemoteAcquire, 1, 0, 50),
          rec(30, obs::kCatStall, obs::kEvInjectWait, 100, 1, 60),
      },
      {{0, 256, "arr"}});
  ASSERT_EQ(a.stalls.size(), 2u);
  EXPECT_EQ(a.stalls[0].kind, "remote-acquire");
  EXPECT_EQ(a.stalls[0].region, "arr");
  EXPECT_EQ(a.stalls[0].total_ns, 150u);
  EXPECT_EQ(a.stalls[0].count, 2u);
  EXPECT_EQ(a.stalls[1].kind, "inject-wait");
  EXPECT_TRUE(a.stalls[1].region.empty());  // sub-page 100 maps nowhere
  std::ostringstream os;
  obs::write_collapsed_stacks(os, a);
  EXPECT_EQ(os.str(),
            "cpu0;remote-acquire;arr 150\n"
            "cpu1;inject-wait;(unmapped) 60\n");
}

// --------------------------------------------------------------- report

TEST(Report, ByteStableAcrossRepeatedRendering) {
  const std::vector<Tracer::Record> recs = {
      rec(10, obs::kCatCoherence, obs::kEvGrantExclusive, 5, 0, 0, witness(0)),
      rec(20, obs::kCatCoherence, obs::kEvGrantExclusive, 5, 1, 0, witness(64)),
      rec(30, obs::kCatCoherence, obs::kEvGrantExclusive, 5, 0, 0, witness(0)),
      rec(100, obs::kCatSync, obs::kEvBarrierArrive, 0, 0),
      rec(150, obs::kCatSync, obs::kEvBarrierArrive, 0, 1),
      rec(200, obs::kCatSync, obs::kEvLockAcquire, 7, 0),
      rec(250, obs::kCatSync, obs::kEvLockAcquired, 7, 0, 50),
      rec(300, obs::kCatSync, obs::kEvLockRelease, 7, 0),
      rec(400, obs::kCatStall, obs::kEvNackBackoff, 5, 1, 75),
  };
  auto render = [&recs] {
    std::ostringstream os;
    obs::write_report(os, run(recs, {{0, 1024, "arr"}}));
    return os.str();
  };
  const std::string a = render();
  EXPECT_EQ(a, render());
  EXPECT_NE(a.find("## sharing"), std::string::npos);
  EXPECT_NE(a.find("falsely-shared sub-pages: 1"), std::string::npos);
  EXPECT_NE(a.find("arr+0x0280"), std::string::npos);  // sub-page 5 * 128
  EXPECT_NE(a.find("## barriers"), std::string::npos);
  EXPECT_NE(a.find("## locks"), std::string::npos);
  EXPECT_NE(a.find("## stalls"), std::string::npos);
  EXPECT_NE(a.find("nack-backoff-ns=75"), std::string::npos);
}

TEST(Report, CarriesDropAccounting) {
  std::ostringstream os;
  const std::vector<Tracer::Record> recs = {
      rec(10, obs::kCatCoherence, obs::kEvGrantShared, 5, 0),
  };
  obs::write_report(
      os, obs::analyze(recs.data(), recs.data() + recs.size(), {}, 42));
  EXPECT_NE(os.str().find("events=1 dropped=42"), std::string::npos);
}

// ------------------------------------------------- end-to-end IS payoff

/// Run IS with a tracer attached and classify every sub-page of the global
/// bucket array ("is.keyden").
struct IsProfile {
  bool ranks_valid = false;
  std::size_t keyden_falsely_shared = 0;
  std::size_t falsely_shared_total = 0;
};

IsProfile profile_is(bool padded) {
  nas::IsConfig cfg;
  cfg.log2_keys = 11;
  cfg.log2_buckets = 7;
  cfg.pad_buckets = padded;
  KsrMachine m(MachineConfig::ksr1(6).scaled_by(64));
  obs::Tracer tracer;
  m.attach_tracer(&tracer);
  const nas::IsResult r = nas::run_is(m, cfg);
  std::vector<obs::RegionSpan> regions;
  for (std::size_t i = 0; i < m.heap().region_count(); ++i) {
    const mem::Region& reg = m.heap().region(i);
    regions.push_back({reg.base, reg.bytes, reg.name});
  }
  const Analysis a = obs::analyze(tracer, std::move(regions));
  IsProfile out;
  out.ranks_valid = r.ranks_valid;
  for (const obs::SubpageProfile& p : a.subpages) {
    if (p.pattern != SharingPattern::kFalselyShared) continue;
    ++out.falsely_shared_total;
    if (p.region == "is.keyden") ++out.keyden_falsely_shared;
  }
  return out;
}

TEST(IsPayoff, UnpaddedBucketArrayIsFlaggedFalselyShared) {
  // 128 buckets over 6 processors: every portion boundary lands mid-sub-page,
  // so neighbouring processors' exclusive writes ping-pong each boundary
  // sub-page while witnessing disjoint bytes. The profiler must say so.
  const IsProfile p = profile_is(false);
  EXPECT_TRUE(p.ranks_valid);
  EXPECT_GE(p.keyden_falsely_shared, 1u);
}

TEST(IsPayoff, PaddingTheBucketArrayClearsTheClassification) {
  // With each portion starting on a fresh sub-page no coherence unit is
  // written by two processors — the falsely-shared verdict must disappear
  // (and the sort must still be correct).
  const IsProfile p = profile_is(true);
  EXPECT_TRUE(p.ranks_valid);
  EXPECT_EQ(p.falsely_shared_total, 0u);
}

}  // namespace
}  // namespace ksr
