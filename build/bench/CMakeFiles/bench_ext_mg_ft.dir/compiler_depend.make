# Empty compiler generated dependencies file for bench_ext_mg_ft.
# This may be replaced when dependencies are built.
