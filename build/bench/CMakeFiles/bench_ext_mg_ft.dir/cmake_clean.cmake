file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_mg_ft.dir/bench_ext_mg_ft.cpp.o"
  "CMakeFiles/bench_ext_mg_ft.dir/bench_ext_mg_ft.cpp.o.d"
  "bench_ext_mg_ft"
  "bench_ext_mg_ft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_mg_ft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
