// Checkpoint/restore (ksr/ckpt, docs/CHECKPOINT.md) round-trip tests.
//
// The contract under test: restoring a checkpoint into a freshly
// constructed machine of the same configuration is bit-exact — the forked
// run finishes with the same events_dispatched fingerprint, the same
// simulated clock, the same kernel result, and the same event trace as the
// uninterrupted run, with the ALLCACHE invariant auditor passing at the
// capture point and on the restored machine. Corrupt images (flipped byte,
// truncation, bad magic) and config mismatches must be rejected before any
// state is touched, and capture must refuse a non-quiescent machine
// (in-flight prefetches, busy directory windows).
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "ksr/check/checker.hpp"
#include "ksr/ckpt/checkpoint.hpp"
#include "ksr/machine/coherent_machine.hpp"
#include "ksr/machine/ksr_machine.hpp"
#include "ksr/nas/is.hpp"
#include "ksr/obs/tracer.hpp"

namespace ksr::machine {
namespace {

nas::IsConfig small_is() {
  nas::IsConfig cfg;
  cfg.log2_keys = 11;
  cfg.log2_buckets = 7;
  return cfg;
}

MachineConfig machine_cfg(unsigned procs, unsigned sim_threads) {
  return MachineConfig::ksr1(procs).scaled_by(procs).with_sim_threads(
      sim_threads);
}

struct Fingerprint {
  std::uint64_t events = 0;
  sim::Time end_time = 0;
  double seconds = 0;
  std::string trace_csv;  // captured over the ranked phase only
};

// The uninterrupted reference: warm-up and ranked phase on one machine,
// with the invariant checker attached for the whole run and the tracer (at
// sim_threads == 1; the parallel engine does not trace) covering the ranked
// phase — the same window the forked run can record.
Fingerprint run_uninterrupted(const MachineConfig& mc,
                              const nas::IsConfig& is) {
  KsrMachine m(mc);
  check::InvariantChecker checker(m);
  m.attach_checker(&checker);
  nas::IsSplit split(m, is);
  split.run_warmup();
  checker.audit_all();
  obs::Tracer tracer;
  if (mc.sim_threads <= 1) m.attach_tracer(&tracer);
  const nas::IsResult r = split.run_ranked();
  EXPECT_TRUE(r.ranks_valid);
  checker.audit_all();
  Fingerprint fp{m.engine().events_dispatched(), m.engine().now(), r.seconds,
                 {}};
  if (mc.sim_threads <= 1) {
    std::ostringstream os;
    tracer.write_csv(os);
    fp.trace_csv = os.str();
  }
  return fp;
}

// Donor: identical to the reference but captures a checkpoint at the
// warm-up boundary. Capturing must not perturb the donor's own ranked
// phase, and the capture point must audit clean.
Fingerprint run_donor(const MachineConfig& mc, const nas::IsConfig& is,
                      std::vector<std::byte>* image) {
  KsrMachine m(mc);
  check::InvariantChecker checker(m);
  m.attach_checker(&checker);
  nas::IsSplit split(m, is);
  split.run_warmup();
  checker.audit_all();
  *image = m.checkpoint();
  const nas::IsResult r = split.run_ranked();
  EXPECT_TRUE(r.ranks_valid);
  checker.audit_all();
  return {m.engine().events_dispatched(), m.engine().now(), r.seconds, {}};
}

// Fork: a fresh machine re-issues the donor's allocations (the IsSplit
// constructor), restores the image instead of re-simulating the warm-up,
// and runs the ranked phase with a fresh checker attached.
Fingerprint run_fork(const MachineConfig& mc, const nas::IsConfig& is,
                     const std::vector<std::byte>& image) {
  KsrMachine m(mc);
  nas::IsSplit split(m, is);
  m.restore(image);
  check::InvariantChecker checker(m);
  m.attach_checker(&checker);
  checker.audit_all();
  obs::Tracer tracer;
  if (mc.sim_threads <= 1) m.attach_tracer(&tracer);
  const nas::IsResult r = split.run_ranked();
  EXPECT_TRUE(r.ranks_valid);
  checker.audit_all();
  Fingerprint fp{m.engine().events_dispatched(), m.engine().now(), r.seconds,
                 {}};
  if (mc.sim_threads <= 1) {
    std::ostringstream os;
    tracer.write_csv(os);
    fp.trace_csv = os.str();
  }
  return fp;
}

void expect_round_trip_bit_exact(unsigned procs, unsigned sim_threads) {
  const nas::IsConfig is = small_is();
  const MachineConfig mc = machine_cfg(procs, sim_threads);
  const Fingerprint cold = run_uninterrupted(mc, is);
  std::vector<std::byte> image;
  const Fingerprint donor = run_donor(mc, is, &image);
  const Fingerprint fork = run_fork(mc, is, image);

  // Capturing must not move the donor off the reference schedule.
  EXPECT_EQ(donor.events, cold.events);
  EXPECT_EQ(donor.end_time, cold.end_time);
  EXPECT_EQ(donor.seconds, cold.seconds);

  // The fork resumes the donor's event counters, so its final fingerprint
  // equals the uninterrupted run's — not just the ranked-phase delta.
  EXPECT_EQ(fork.events, cold.events);
  EXPECT_EQ(fork.end_time, cold.end_time);
  EXPECT_EQ(fork.seconds, cold.seconds);
  EXPECT_EQ(fork.trace_csv, cold.trace_csv);
  if (sim_threads <= 1) {
    EXPECT_FALSE(cold.trace_csv.empty());
  }
}

TEST(CkptRoundTrip, BitExact64CellsSerial) {
  expect_round_trip_bit_exact(64, 1);
}

TEST(CkptRoundTrip, BitExact64CellsSimThreads4) {
  expect_round_trip_bit_exact(64, 4);
}

TEST(CkptRoundTrip, BitExact128CellsSerial) {
  expect_round_trip_bit_exact(128, 1);
}

TEST(CkptRoundTrip, BitExact128CellsSimThreads4) {
  expect_round_trip_bit_exact(128, 4);
}

// Serial and 4-thread engines restore each other's images: the image
// records sim_threads as part of the config, so this must be rejected —
// a checkpoint is only valid for the exact configuration that wrote it.
TEST(CkptRoundTrip, SimThreadsMismatchRejected) {
  const nas::IsConfig is = small_is();
  std::vector<std::byte> image;
  (void)run_donor(machine_cfg(64, 1), is, &image);
  KsrMachine m(machine_cfg(64, 4));
  nas::IsSplit split(m, is);
  EXPECT_THROW(m.restore(image), std::runtime_error);
}

TEST(CkptRoundTrip, ConfigMismatchRejected) {
  const nas::IsConfig is = small_is();
  std::vector<std::byte> image;
  (void)run_donor(machine_cfg(64, 1), is, &image);
  KsrMachine m(machine_cfg(32, 1));
  nas::IsSplit split(m, small_is());
  EXPECT_THROW(m.restore(image), std::runtime_error);
}

// ------------------------------------------------------- image validation

std::vector<std::byte> capture_small_image() {
  KsrMachine m(machine_cfg(4, 1));
  nas::IsSplit split(m, small_is());
  split.run_warmup();
  return m.checkpoint();
}

TEST(CkptImage, FlippedPayloadByteRejected) {
  std::vector<std::byte> image = capture_small_image();
  ASSERT_GT(image.size(), ckpt::kHeaderBytes);
  // Flip one bit in the middle of the payload: the FNV fingerprint in the
  // header no longer matches and open() must reject before any state moves.
  const std::size_t at = ckpt::kHeaderBytes + (image.size() / 2);
  image[at] ^= std::byte{0x10};
  EXPECT_THROW((void)ckpt::open(image), std::runtime_error);
  KsrMachine m(machine_cfg(4, 1));
  nas::IsSplit split(m, small_is());
  EXPECT_THROW(m.restore(image), std::runtime_error);
}

TEST(CkptImage, TruncationRejected) {
  std::vector<std::byte> image = capture_small_image();
  image.resize(image.size() - 1);
  EXPECT_THROW((void)ckpt::open(image), std::runtime_error);
  image.resize(ckpt::kHeaderBytes - 4);
  EXPECT_THROW((void)ckpt::open(image), std::runtime_error);
}

TEST(CkptImage, BadMagicAndVersionRejected) {
  std::vector<std::byte> image = capture_small_image();
  std::vector<std::byte> bad = image;
  bad[0] = std::byte{'X'};
  EXPECT_THROW((void)ckpt::open(bad), std::runtime_error);
  bad = image;
  bad[8] = std::byte{0xff};  // version field (little-endian u32 at offset 8)
  EXPECT_THROW((void)ckpt::open(bad), std::runtime_error);
}

TEST(CkptImage, WriterReaderRoundTripAndSchemaMismatch) {
  ckpt::Writer w;
  w.u8(7);
  w.u32(0xdeadbeefu);
  w.u64(0x0123456789abcdefull);
  w.i64(-42);
  w.boolean(true);
  w.str("holders");
  const std::vector<std::byte> image = w.seal();
  ckpt::Reader r = ckpt::open(image);
  EXPECT_EQ(r.u8(), 7u);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_TRUE(r.boolean());
  EXPECT_EQ(r.str(), "holders");
  r.expect_end();
  // A reader that stops early must fail expect_end (schema mismatch).
  ckpt::Reader r2 = ckpt::open(image);
  EXPECT_EQ(r2.u8(), 7u);
  EXPECT_THROW(r2.expect_end(), std::runtime_error);
}

// ---------------------------------------------------- quiescence refusal

// CoherentMachine keeps cells_/dir_find protected; this test subclass adds
// the two corruption handles needed to fabricate a non-quiescent capture
// point (the same pattern test_check.cpp uses for protocol corruption).
class NonQuiescentMachine : public CoherentMachine {
 public:
  explicit NonQuiescentMachine(const MachineConfig& cfg)
      : CoherentMachine(cfg) {}

  /// Pretend cell 0 still has a prefetch in flight for `sp`.
  void fake_inflight(mem::SubPageId sp) {
    cells_[0].inflight[sp];
    ++cells_[0].inflight_count;
  }
  void clear_inflight() {
    cells_[0].inflight.clear();
    cells_[0].inflight_count = 0;
  }
  /// Mark `sp`'s directory entry as inside a busy (decision) window.
  void fake_busy(mem::SubPageId sp, bool busy) { dir_find(sp)->busy = busy; }

 protected:
  void transport(unsigned cell, mem::SubPageId sp, unsigned target_leaf,
                 std::function<void(sim::Duration)> done) override {
    (void)cell;
    (void)sp;
    (void)target_leaf;
    engine_.at(engine_.now() + 200, [done = std::move(done)] { done(0); });
  }
  [[nodiscard]] sim::Duration transaction_overhead_ns(
      Acquire kind, bool crossed_leaf) const override {
    (void)kind;
    (void)crossed_leaf;
    return 100;
  }
};

TEST(CkptQuiescence, RefusesInflightAndBusyCaptures) {
  NonQuiescentMachine m(MachineConfig::ksr1(2));
  auto arr = m.alloc<int>("a", 16);
  m.run([&](Cpu& cpu) {
    if (cpu.id() == 0) cpu.write(arr, 0, 1);
  });
  const mem::SubPageId sp = mem::subpage_of(arr.addr(0));

  m.fake_inflight(sp);
  EXPECT_THROW((void)m.checkpoint(), std::logic_error);
  m.clear_inflight();

  m.fake_busy(sp, true);
  EXPECT_THROW((void)m.checkpoint(), std::logic_error);
  m.fake_busy(sp, false);

  // Quiescent again: capture succeeds and round-trips.
  const std::vector<std::byte> image = m.checkpoint();
  EXPECT_GT(image.size(), ckpt::kHeaderBytes);
}

// ------------------------------------------------------- durable writes
//
// Checkpoints (and everything else ckpt::atomic_write_file backs: the serve
// result store, campaign databases) are written temp-then-rename: a reader
// polling the final name can only ever see a complete image, and a failed
// write leaves neither a final file nor a temp file behind.

[[nodiscard]] bool file_exists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

[[nodiscard]] std::string tmp_name_of(const std::string& path) {
  return path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
}

TEST(AtomicWrite, FailedWriteNeverAppearsAtFinalName) {
  const std::string dir = ::testing::TempDir() + "ksr_no_such_dir_12345";
  const std::string path = dir + "/image.ckpt";
  try {
    ckpt::atomic_write_file(path, "payload");
    FAIL() << "write into a nonexistent directory must throw";
  } catch (const std::runtime_error& e) {
    // The diagnostic names the offending path, not just errno text.
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos)
        << e.what();
  }
  EXPECT_FALSE(file_exists(path));
  EXPECT_FALSE(file_exists(tmp_name_of(path)));
}

TEST(AtomicWrite, RenameFailureCleansTempAndNamesBothPaths) {
  // The final name is an existing directory, so the temp file writes fine
  // but the rename must fail — the temp file must be cleaned up and the
  // exception must name both ends of the failed rename.
  const std::string path = ::testing::TempDir() + "ksr_atomic_dir_tgt";
  ASSERT_EQ(::mkdir(path.c_str(), 0755), 0) << std::strerror(errno);
  try {
    ckpt::atomic_write_file(path, "payload");
    FAIL() << "rename onto a directory must throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos)
        << e.what();
  }
  EXPECT_FALSE(file_exists(tmp_name_of(path)));
  ::rmdir(path.c_str());
}

TEST(AtomicWrite, OverwriteReplacesWholeFileAndLeavesNoTemp) {
  const std::string path = ::testing::TempDir() + "ksr_atomic_overwrite";
  ckpt::atomic_write_file(path, "the old, longer content");
  ckpt::atomic_write_file(path, "new");
  const std::vector<std::byte> got = ckpt::read_file(path);
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(got.data()),
                        got.size()),
            "new");
  EXPECT_FALSE(file_exists(tmp_name_of(path)));
  std::remove(path.c_str());
}

TEST(AtomicWrite, CheckpointToBadPathThrowsWithPathAndWritesNothing) {
  const nas::IsConfig is = small_is();
  KsrMachine m(machine_cfg(2, 1));
  nas::IsSplit split(m, is);
  split.run_warmup();
  const std::string path =
      ::testing::TempDir() + "ksr_no_such_dir_67890/is.ckpt";
  try {
    m.checkpoint_to(path);
    FAIL() << "checkpoint into a nonexistent directory must throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos)
        << e.what();
  }
  EXPECT_FALSE(file_exists(path));
  // The machine is unharmed by the failed write: a good path still works
  // and the image restores bit-exactly.
  const std::string good = ::testing::TempDir() + "ksr_atomic_good.ckpt";
  m.checkpoint_to(good);
  EXPECT_TRUE(file_exists(good));
  EXPECT_FALSE(file_exists(tmp_name_of(good)));
  KsrMachine m2(machine_cfg(2, 1));
  nas::IsSplit split2(m2, is);
  m2.restore_from(good);
  EXPECT_TRUE(split2.run_ranked().ranks_valid);
  std::remove(good.c_str());
}

}  // namespace
}  // namespace ksr::machine
