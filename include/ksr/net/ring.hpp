#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "ksr/sim/engine.hpp"
#include "ksr/sim/time.hpp"
#include "ksr/sim/trace.hpp"

// Slotted, pipelined, unidirectional ring (paper §2).
//
// The KSR-1 leaf ring has 24 slots organised as two address-interleaved
// sub-rings of 12 slots each; slots circulate past the ring interfaces, and a
// node injects a packet by claiming an *empty slot as it passes*. Because a
// response must travel the rest of the way around to reach the requester, a
// transaction occupies its slot for exactly one full circulation regardless
// of where the responder sits (paper footnote 3: any remote access costs the
// same as accessing the neighbour). The protocol guarantees round-robin
// fairness and forward progress; pipelining means many transactions can be
// in flight at once — the property that makes tournament-style barriers win.
//
// Model: time is divided into hop periods. S equally spaced slots circulate
// over N interface positions. In the rotating frame a slot is a fixed
// coordinate, so injection at position s at tick T succeeds iff coordinate
// (s - T) mod N is a slot and it is free; the packet is delivered (and the
// slot freed) N ticks later, back at the source. Waiting injectors at a
// position form a FIFO with round-robin fairness and the paper's saturation
// behaviour.
//
// Host fast path: the model is fully event-driven — an idle ring (no waiting
// injector) schedules nothing at all; attempt events exist only while a
// position's FIFO head is waiting for a slot. Slot arrival times are
// computed closed-form at inject()/retry time from a precomputed per-
// coordinate delta table (in the rotating frame the passing coordinate
// decreases by one per tick, so "ticks until the next slot passes" is a
// single table lookup), replacing an O(positions) scan per failed attempt.
// The attempt cadence itself — one event per slot-passing tick per waiting
// head — is deliberately preserved: the engine's (time, seq) order, and
// with it every simulated cycle and events_dispatched() count, stays
// bit-identical to the original polled model.
namespace ksr::net {

class SlottedRing {
 public:
  struct Config {
    unsigned positions = 32;        // ring interface positions (cells + ARDs)
    unsigned slots_per_subring = 12;
    unsigned subrings = 2;          // address-interleaved by sub-page id bit
    sim::Duration hop_ns = 100;     // 2 KSR-1 cycles per hop
    // Rotate every slot coordinate by this many positions. 0 is the paper
    // layout; the schedule fuzzer (ksrfuzz) sets nonzero values to shift
    // which positions face an empty slot first, perturbing injection order
    // without changing slot count, spacing, or circulation time.
    unsigned phase = 0;
  };

  /// Completion callback: `inject_wait` is the time spent waiting for an
  /// empty slot (the contention component the paper's Fig. 2 measures as the
  /// ~8% rise at 32 processors, and the saturation component for IS).
  using Done = std::function<void(sim::Duration inject_wait)>;

  SlottedRing(sim::Engine& engine, const Config& cfg, std::string name);

  SlottedRing(const SlottedRing&) = delete;
  SlottedRing& operator=(const SlottedRing&) = delete;

  /// Submit a packet at `src_pos` on `subring`; `done` fires one full
  /// circulation after the packet wins a slot.
  void inject(unsigned src_pos, unsigned subring, Done done);

  /// Time for one full circulation (N hops).
  [[nodiscard]] sim::Duration circulation_ns() const noexcept {
    return cfg_.positions * cfg_.hop_ns;
  }

  [[nodiscard]] const Config& config() const noexcept { return cfg_; }

  /// Total circulating slots across all sub-rings (denominator of the slot
  /// utilization the metrics sampler reports).
  [[nodiscard]] std::uint64_t slot_count() const noexcept {
    const unsigned s = std::min(cfg_.slots_per_subring, cfg_.positions);
    return static_cast<std::uint64_t>(s) * cfg_.subrings;
  }

  struct Stats {
    std::uint64_t packets = 0;
    sim::Duration total_inject_wait_ns = 0;
    std::uint64_t retries = 0;       // failed slot-grab attempts
    std::uint64_t max_in_flight = 0;
    std::uint64_t in_flight = 0;
    // Slot-occupancy integral ∫ in_flight dt (slot·ns), maintained at every
    // in_flight transition; busy_slot_ns / (slot_count · elapsed) is the
    // mean slot utilization the topo report prints. These two fields are
    // host-side observability only — the frozen 5-field checkpoint format
    // (docs/CHECKPOINT.md) neither saves nor restores them.
    std::uint64_t busy_slot_ns = 0;
    sim::Time last_change_ns = 0;
    [[nodiscard]] double mean_wait_ns() const noexcept {
      return packets ? static_cast<double>(total_inject_wait_ns) /
                           static_cast<double>(packets)
                     : 0.0;
    }
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = Stats{}; }

  /// --- Checkpoint support (docs/CHECKPOINT.md). ---

  /// True when no slot is occupied and no injector is waiting on any
  /// position: the ring holds no in-flight simulated state. Checkpoints
  /// require every ring to be idle (the quiescent-point rule).
  [[nodiscard]] bool idle() const noexcept {
    for (const SubRing& sr : subrings_) {
      for (const std::uint8_t occ : sr.occupied) {
        if (occ) return false;
      }
      for (const auto& q : sr.waiting) {
        if (!q.empty()) return false;
      }
    }
    return true;
  }

  /// Restore host-side counters captured by stats(). Only meaningful while
  /// idle() — in-flight counts must be zero in any checkpointed Stats.
  void restore_stats(const Stats& s) noexcept { stats_ = s; }

  /// Attach a tracer ("ring" category: inject with its slot wait, deliver).
  void set_tracer(sim::Tracer* tracer) noexcept { tracer_ = tracer; }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Audit accessor (invariant checker, I6 liveness): reports the first
  /// waiting queue whose head has no retry event scheduled — such an
  /// injector would wait forever. Only meaningful between engine events
  /// (the flag is transiently clear inside try_head itself).
  [[nodiscard]] bool find_stranded_head(unsigned* subring,
                                        unsigned* pos) const noexcept;

 private:
  struct Pending {
    Done done;
    sim::Time enqueued = 0;
    bool polling = false;  // a retry event is scheduled for this entry
  };

  struct SubRing {
    std::vector<std::int32_t> coord_to_slot;  // N entries; -1 = not a slot
    std::vector<std::uint32_t> next_pass_delta;  // N entries; ticks to next pass
    std::vector<std::uint8_t> occupied;       // S entries
    std::vector<std::deque<Pending>> waiting;  // per position FIFO
  };

  [[nodiscard]] std::uint64_t tick_of(sim::Time t) const noexcept {
    return (t + cfg_.hop_ns - 1) / cfg_.hop_ns;  // next tick boundary >= t
  }

  /// Attempt to inject the head of `sr.waiting[pos]` at the current tick; on
  /// failure schedule a retry at the next slot-passing tick (table lookup).
  void try_head(unsigned subring, unsigned pos);

  sim::Engine& engine_;
  Config cfg_;
  std::string name_;
  std::vector<SubRing> subrings_;
  Stats stats_;
  sim::Tracer* tracer_ = nullptr;
};

}  // namespace ksr::net
