// Reproduces Table 4: the SP optimization ladder at 30 processors —
// base layout -> data padding/alignment -> prefetching — plus the poststore
// experiment the paper reports as a slowdown (§3.3.3).
#include "bench_common.hpp"
#include "ksr/machine/ksr_machine.hpp"
#include "ksr/nas/sp.hpp"

int main(int argc, char** argv) {
  using namespace ksr;         // NOLINT
  using namespace ksr::bench;  // NOLINT

  const BenchOptions opt = BenchOptions::parse(argc, argv);
  obs::Session session = make_obs_session(opt, "table4_sp_opt");
  print_header("Scalar Pentadiagonal optimization ladder (30 processors)",
               "Table 4, Section 3.3.3");

  const unsigned nproc = opt.quick ? 8 : 30;
  const unsigned scale = 16;
  nas::SpConfig base;
  base.n = opt.quick ? 16 : 32;
  base.iterations = opt.quick ? 1 : 2;

  struct Variant {
    const char* name;
    bool padded;
    bool prefetch;
    bool poststore;
    const char* paper;
  };
  const Variant variants[] = {
      {"Base version", false, false, false, "2.54 s/iter"},
      {"Data padding and alignment", true, false, false, "2.14 (-15.7%)"},
      {"  + prefetching appropriate data", true, true, false, "1.89 (-11.7%)"},
      {"  + poststore (pitfall)", true, true, true, "slowdown"},
  };

  TextTable t({"Optimization", "Time per iteration (s)", "vs previous",
               "paper (64^3, 30 procs)"});
  double prev = 0;
  std::uint64_t base_allocs = 0, padded_allocs = 0;
  for (const Variant& v : variants) {
    nas::SpConfig cfg = base;
    cfg.padded_layout = v.padded;
    cfg.use_prefetch = v.prefetch;
    cfg.use_poststore = v.poststore;
    machine::KsrMachine m(machine::MachineConfig::ksr1(nproc).scaled_by(scale));
    nas::SpResult r;
    {
      ScopedObs obs(session, m, v.name);
      r = run_sp(m, cfg);
    }
    std::string delta = "-";
    if (prev > 0) {
      delta = TextTable::num((1.0 - r.seconds_per_iteration / prev) * 100.0, 1) +
              "%";
    }
    std::uint64_t allocs = 0;
    for (unsigned i = 0; i < nproc; ++i) {
      allocs += m.cell_pmon(i).subcache_block_allocs;
    }
    if (!v.padded) base_allocs = allocs;
    if (v.padded && !v.prefetch && !v.poststore) padded_allocs = allocs;
    t.add_row({v.name, TextTable::num(r.seconds_per_iteration, 5), delta,
               v.paper});
    prev = r.seconds_per_iteration;
  }
  if (opt.csv) {
    t.print_csv();
  } else {
    t.print();
    std::cout
        << "\nMechanism check: 2 KB sub-cache block allocations fell from "
        << base_allocs << " (base)\nto " << padded_allocs
        << " (padded) — the random-replacement thrash the paper found\nwith"
           " the hardware monitor and fixed by data re-organisation. The\n"
           "poststore row should be SLOWER than its predecessor: the next\n"
           "phase writes the same sub-pages and must re-invalidate all the\n"
           "copies poststore just distributed.\n";
  }
  return 0;
}
