// Latency calibration against the published KSR-1 numbers (paper Fig. 1):
// sub-cache 2 cycles, local cache 18 cycles, same-ring remote ~175 cycles.
#include <gtest/gtest.h>

#include "ksr/machine/ksr_machine.hpp"

namespace ksr::machine {
namespace {

constexpr double kCycle = 50e-9;  // KSR-1: 20 MHz

TEST(Latency, SubcacheHitIsTwoCycles) {
  KsrMachine m(MachineConfig::ksr1(1));
  auto arr = m.alloc<double>("a", 8);
  double per_access = 0;
  m.run([&](Cpu& cpu) {
    (void)cpu.read(arr, 0);  // warm everything
    const double t0 = cpu.seconds();
    for (int i = 0; i < 1000; ++i) (void)cpu.read(arr, 0);
    per_access = (cpu.seconds() - t0) / 1000.0;
  });
  EXPECT_NEAR(per_access, 2 * kCycle, 1e-12);
}

TEST(Latency, LocalCacheReadIsEighteenCycles) {
  KsrMachine m(MachineConfig::ksr1(1));
  // Arrays too large for the sub-cache (256 KB): stride one sub-block so
  // every access misses the (previously evicted) sub-cache but hits the
  // local cache. Mirrors the paper's A/B experiment.
  constexpr std::size_t kDoubles = (1u << 20) / sizeof(double);  // 1 MB
  auto a = m.alloc<double>("A", kDoubles);
  auto b = m.alloc<double>("B", kDoubles);
  double per_access = 0;
  m.run([&](Cpu& cpu) {
    constexpr std::size_t kStride = mem::kSubBlockBytes / sizeof(double);
    // Touch all of A once (now resident in local cache).
    for (std::size_t i = 0; i < kDoubles; i += kStride) (void)cpu.read(a, i);
    // Fill the sub-cache with B, repeatedly (random replacement!).
    for (int rep = 0; rep < 4; ++rep) {
      for (std::size_t i = 0; i < kDoubles; i += kStride) (void)cpu.read(b, i);
    }
    // Now measure A again: sub-cache misses, local-cache hits.
    const std::uint64_t misses0 = cpu.pmon().localcache_misses;
    const double t0 = cpu.seconds();
    std::size_t n = 0;
    for (std::size_t i = 0; i < kDoubles; i += kStride, ++n) {
      (void)cpu.read(a, i);
    }
    per_access = (cpu.seconds() - t0) / static_cast<double>(n);
    // A stayed resident: no ring traffic in the measured loop.
    EXPECT_EQ(cpu.pmon().localcache_misses, misses0);
  });
  // 18 cycles = 0.9 us, plus amortized 2 KB block-allocation overhead.
  EXPECT_GT(per_access, 17 * kCycle);
  EXPECT_LT(per_access, 22 * kCycle);
}

TEST(Latency, RemoteReadIsAbout175Cycles) {
  KsrMachine m(MachineConfig::ksr1(2));
  constexpr std::size_t kInts = 64 * 1024;
  auto arr = m.alloc<int>("a", kInts);
  auto flag = m.alloc<int>("flag", 1);
  double per_access = 0;
  m.run([&](Cpu& cpu) {
    constexpr std::size_t kStride = mem::kSubPageBytes / sizeof(int);
    if (cpu.id() == 0) {
      for (std::size_t i = 0; i < kInts; i += kStride) cpu.write(arr, i, 1);
      cpu.write(flag, 0, 1);
    } else {
      while (cpu.read(flag, 0) == 0) cpu.work(10);
      // Touch one sub-page per page first so page allocation is done.
      for (std::size_t i = 0; i < kInts;
           i += mem::kPageBytes / sizeof(int)) {
        (void)cpu.read(arr, i);
      }
      const double t0 = cpu.seconds();
      std::size_t n = 0;
      for (std::size_t i = kStride; i < kInts; i += kStride) {
        if (i % (mem::kPageBytes / sizeof(int)) == 0) continue;  // warmed
        (void)cpu.read(arr, i);
        ++n;
      }
      per_access = (cpu.seconds() - t0) / static_cast<double>(n);
    }
  });
  // Published: 175 cycles = 8.75 us. Allow the model's slot-wait spread.
  EXPECT_GT(per_access, 165 * kCycle);
  EXPECT_LT(per_access, 190 * kCycle);
}

TEST(Latency, LocalCacheWritesDearerThanReads) {
  auto measure = [](bool write_pass) {
    KsrMachine m(MachineConfig::ksr1(1));
    constexpr std::size_t kDoubles = (1u << 20) / sizeof(double);
    auto a = m.alloc<double>("A", kDoubles);
    auto b = m.alloc<double>("B", kDoubles);
    double per_access = 0;
    m.run([&](Cpu& cpu) {
      constexpr std::size_t kStride = mem::kSubBlockBytes / sizeof(double);
      for (std::size_t i = 0; i < kDoubles; i += kStride) (void)cpu.read(a, i);
      for (int rep = 0; rep < 4; ++rep) {
        for (std::size_t i = 0; i < kDoubles; i += kStride) {
          (void)cpu.read(b, i);
        }
      }
      const double t0 = cpu.seconds();
      std::size_t n = 0;
      for (std::size_t i = 0; i < kDoubles; i += kStride, ++n) {
        if (write_pass) {
          cpu.write(a, i, 1.0);
        } else {
          (void)cpu.read(a, i);
        }
      }
      per_access = (cpu.seconds() - t0) / static_cast<double>(n);
    });
    return per_access;
  };
  const double rd = measure(false);
  const double wr = measure(true);
  EXPECT_GT(wr, rd);            // Fig. 2: writes slightly more expensive
  EXPECT_LT(wr, rd * 1.3);      // ...but only slightly
}

TEST(Latency, BlockAllocationStrideCostsExtra) {
  // Paper §3.1: striding so each access touches a new 2 KB block costs ~50%
  // more at local-cache level than striding within allocated blocks.
  KsrMachine m(MachineConfig::ksr1(1));
  constexpr std::size_t kDoubles = (2u << 20) / sizeof(double);
  auto a = m.alloc<double>("A", kDoubles);
  double dense_cost = 0;
  double block_stride_cost = 0;
  m.run([&](Cpu& cpu) {
    constexpr std::size_t kSub = mem::kSubBlockBytes / sizeof(double);
    constexpr std::size_t kBlk = mem::kBlockBytes / sizeof(double);
    // Warm the local cache with all of A.
    for (std::size_t i = 0; i < kDoubles; i += kSub) (void)cpu.read(a, i);
    // Dense pass: every sub-block in order (block alloc amortized over 32).
    double t0 = cpu.seconds();
    std::size_t n = 0;
    for (std::size_t i = 0; i < kDoubles; i += kSub, ++n) (void)cpu.read(a, i);
    dense_cost = (cpu.seconds() - t0) / static_cast<double>(n);
    // Block-stride pass: one access per 2 KB block → every access allocates.
    t0 = cpu.seconds();
    n = 0;
    for (std::size_t i = 0; i < kDoubles; i += kBlk, ++n) (void)cpu.read(a, i);
    block_stride_cost = (cpu.seconds() - t0) / static_cast<double>(n);
  });
  const double ratio = block_stride_cost / dense_cost;
  EXPECT_GT(ratio, 1.3);
  EXPECT_LT(ratio, 1.8);
}

TEST(Latency, Ksr2CellsRunTwiceAsFastLocally) {
  auto compute_time = [](MachineConfig cfg) {
    KsrMachine m(cfg);
    double dt = 0;
    m.run([&](Cpu& cpu) {
      const double t0 = cpu.seconds();
      cpu.work(100000);
      dt = cpu.seconds() - t0;
    });
    return dt;
  };
  const double t1 = compute_time(MachineConfig::ksr1(1));
  const double t2 = compute_time(MachineConfig::ksr2(1));
  EXPECT_DOUBLE_EQ(t1, 2 * t2);
}

}  // namespace
}  // namespace ksr::machine
