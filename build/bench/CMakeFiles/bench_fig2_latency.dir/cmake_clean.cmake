file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_latency.dir/bench_fig2_latency.cpp.o"
  "CMakeFiles/bench_fig2_latency.dir/bench_fig2_latency.cpp.o.d"
  "bench_fig2_latency"
  "bench_fig2_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
