#pragma once

#include <string>
#include <vector>

#include "ksr/serve/core.hpp"

// Batch "campaign" mode (docs/SERVING.md): a declarative manifest expands
// into a job list, runs through a ServeCore, and leaves a result database
// behind. Every completed job is persisted to the content-addressed store
// the moment it finishes, so a campaign killed halfway resumes from the
// cache — the second invocation re-submits everything and the already-done
// points come back as hits.
//
// Manifest schema (JSON):
//   {
//     "name": "fig8_quick",
//     "base": { ...JobSpec fields shared by every sweep... },   (optional)
//     "sweeps": [
//       { "base": { ...JobSpec fields... },                     (optional)
//         "axes": { "procs": [1,4,16], ... } },                 (optional)
//       ...
//     ]
//   }
//
// Each sweep's jobs are the cross product of its axes (axes iterate in
// manifest order, later axes fastest), layered over manifest base + sweep
// base; sweeps run in listed order. Axis names are JobSpec field names and
// their values must be valid for that field.
namespace ksr::serve {

struct Campaign {
  std::string name;
  std::vector<JobSpec> jobs;
};

/// Expand a parsed manifest. False + *err on schema violations.
[[nodiscard]] bool expand_manifest(const Json& manifest, Campaign* out,
                                   std::string* err);

struct CampaignOutcome {
  std::size_t jobs = 0;
  std::size_t hits = 0;      // served from cache (or deduped in flight)
  std::size_t executed = 0;  // actually simulated this run
  std::size_t failures = 0;
  [[nodiscard]] unsigned hit_rate_pct() const noexcept {
    return jobs == 0 ? 0
                     : static_cast<unsigned>(hits * 100 / jobs);
  }
};

/// Run every job through `core` (SweepRunner-sharded) and write the result
/// database:
///   <out_prefix>.jsonl  one line per job: index, key, spec, result —
///                       deterministic bytes, identical for cold and
///                       resumed runs (bench/report.py --campaign folds it
///                       into BENCH_host.json)
///   <out_prefix>.csv    index,workload,machine,procs,scale,key,
///                       events_dispatched,seconds
/// Both files are written temp-then-atomic-rename at the end of the run.
/// Failed jobs carry an "error" line in the jsonl and empty CSV metrics.
/// Progress and the final hit-rate summary go to stderr.
[[nodiscard]] CampaignOutcome run_campaign(const Campaign& campaign,
                                           ServeCore& core,
                                           const std::string& out_prefix);

}  // namespace ksr::serve
