// Unit and property tests for the two cache models: geometry, allocation
// units, presence tracking, invalidation, eviction bookkeeping, and the
// random-replacement behaviour the SP experiments depend on.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "ksr/cache/flat_map.hpp"
#include "ksr/cache/local_cache.hpp"
#include "ksr/cache/subcache.hpp"
#include "ksr/sim/rng.hpp"

namespace ksr::cache {
namespace {

// ------------------------------------------------------------ SubCache ----

TEST(SubCache, GeometryMatchesTheRealMachine) {
  SubCache sc;  // 256 KB, 2-way, 2 KB blocks
  EXPECT_EQ(sc.sets(), 64u);
  EXPECT_EQ(sc.ways(), 2u);
}

TEST(SubCache, FirstAccessAllocatesBlockAndFillsSubBlock) {
  SubCache sc;
  sim::Rng rng(1);
  const auto r = sc.access(0x10000, rng);
  EXPECT_FALSE(r.hit);
  EXPECT_TRUE(r.block_allocated);
  EXPECT_FALSE(r.block_evicted);
  EXPECT_TRUE(sc.contains(0x10000));
}

TEST(SubCache, SecondAccessSameSubBlockHits) {
  SubCache sc;
  sim::Rng rng(1);
  (void)sc.access(0x10000, rng);
  const auto r = sc.access(0x10000 + 8, rng);  // same 64 B sub-block
  EXPECT_TRUE(r.hit);
  EXPECT_FALSE(r.block_allocated);
}

TEST(SubCache, DifferentSubBlockSameBlockMissesWithoutAllocation) {
  SubCache sc;
  sim::Rng rng(1);
  (void)sc.access(0x10000, rng);
  const auto r = sc.access(0x10000 + mem::kSubBlockBytes, rng);
  EXPECT_FALSE(r.hit);
  EXPECT_FALSE(r.block_allocated);  // block frame already allocated
}

TEST(SubCache, ConflictingBlocksEvictWithinTheSet) {
  SubCache sc;  // 64 sets: blocks 2 KB apart by 128 KB conflict
  sim::Rng rng(7);
  const mem::Sva way_span = 64 * mem::kBlockBytes;  // 128 KB
  (void)sc.access(0 * way_span, rng);
  (void)sc.access(1 * way_span, rng);
  const auto r = sc.access(2 * way_span, rng);  // third block, 2 ways
  EXPECT_TRUE(r.block_allocated);
  EXPECT_TRUE(r.block_evicted);
  // Exactly one of the first two is gone (random victim).
  const int present = (sc.contains(0) ? 1 : 0) + (sc.contains(way_span) ? 1 : 0);
  EXPECT_EQ(present, 1);
}

TEST(SubCache, InvalidateSubpageDropsItsTwoSubBlocks) {
  SubCache sc;
  sim::Rng rng(1);
  (void)sc.access(0x2000, rng);
  (void)sc.access(0x2000 + 64, rng);
  (void)sc.access(0x2000 + 128, rng);  // next sub-page, same block
  sc.invalidate_subpage(mem::subpage_of(0x2000));
  EXPECT_FALSE(sc.contains(0x2000));
  EXPECT_FALSE(sc.contains(0x2000 + 64));
  EXPECT_TRUE(sc.contains(0x2000 + 128));  // other sub-page untouched
}

TEST(SubCache, InvalidateBlockDropsWholeBlock) {
  SubCache sc;
  sim::Rng rng(1);
  (void)sc.access(0x4000, rng);
  (void)sc.access(0x4000 + 1024, rng);
  sc.invalidate_block(mem::block_of(0x4000));
  EXPECT_FALSE(sc.contains(0x4000));
  EXPECT_FALSE(sc.contains(0x4000 + 1024));
}

TEST(SubCache, ScaledConfigShrinksSets) {
  SubCache sc(SubCache::Config{16 * 1024, 2});
  EXPECT_EQ(sc.sets(), 4u);
}

// Property: presence is always a subset of what was accessed.
TEST(SubCache, NeverContainsWhatWasNeverAccessed) {
  SubCache sc;
  sim::Rng rng(3);
  std::set<mem::SubBlockId> touched;
  sim::Rng addr_rng(99);
  for (int i = 0; i < 5000; ++i) {
    const mem::Sva a = addr_rng.below(1u << 22) & ~7ull;
    (void)sc.access(a, rng);
    touched.insert(mem::subblock_of(a));
  }
  sim::Rng probe_rng(123);
  for (int i = 0; i < 5000; ++i) {
    const mem::Sva a = probe_rng.below(1u << 22) & ~7ull;
    if (sc.contains(a)) {
      EXPECT_TRUE(touched.count(mem::subblock_of(a)) == 1);
    }
  }
}

// --------------------------------------------------------- LocalCache ----

TEST(LocalCache, GeometryMatchesTheRealMachine) {
  LocalCache lc;  // 32 MB, 16-way, 16 KB pages
  EXPECT_EQ(lc.sets(), 128u);
  EXPECT_EQ(lc.ways(), 16u);
}

TEST(LocalCache, TouchAllocatesPageWithInvalidSiblings) {
  LocalCache lc;
  sim::Rng rng(1);
  const mem::SubPageId sp = 1000;
  const auto pa = lc.touch(sp, LineState::kShared, rng);
  EXPECT_TRUE(pa.allocated);
  EXPECT_FALSE(pa.evicted);
  EXPECT_EQ(lc.state(sp), LineState::kShared);
  // Sibling sub-pages of the same page are placeholders (frame present,
  // state Invalid).
  const mem::SubPageId sibling = sp + 1;
  ASSERT_EQ(mem::page_of_subpage(sibling), mem::page_of_subpage(sp));
  const auto lk = lc.lookup(sibling);
  EXPECT_TRUE(lk.page_present);
  EXPECT_EQ(lk.state, LineState::kInvalid);
}

TEST(LocalCache, SecondTouchSamePageDoesNotAllocate) {
  LocalCache lc;
  sim::Rng rng(1);
  (void)lc.touch(1000, LineState::kShared, rng);
  const auto pa = lc.touch(1001, LineState::kExclusive, rng);
  EXPECT_FALSE(pa.allocated);
  EXPECT_EQ(lc.state(1001), LineState::kExclusive);
}

TEST(LocalCache, EvictionReportsAllSubpageStates) {
  LocalCache lc(LocalCache::Config{2 * mem::kPageBytes, 1});  // 2 sets, direct
  sim::Rng rng(1);
  const mem::SubPageId base = 0;  // page 0 -> set 0
  (void)lc.touch(base, LineState::kExclusive, rng);
  (void)lc.touch(base + 1, LineState::kShared, rng);
  // Page 2 maps to set 0 as well (2 sets): evicts page 0.
  const auto pa =
      lc.touch(2 * mem::kSubPagesPerPage, LineState::kShared, rng);
  EXPECT_TRUE(pa.evicted);
  EXPECT_EQ(pa.evicted_page, 0u);
  EXPECT_EQ(pa.evicted_states[0], LineState::kExclusive);
  EXPECT_EQ(pa.evicted_states[1], LineState::kShared);
  EXPECT_EQ(pa.evicted_states[2], LineState::kInvalid);
  EXPECT_EQ(lc.state(base), LineState::kInvalid);
}

TEST(LocalCache, SetStateOnAbsentPageIsNoOp) {
  LocalCache lc;
  lc.set_state(424242, LineState::kShared);
  EXPECT_EQ(lc.state(424242), LineState::kInvalid);
}

TEST(LocalCache, StateTransitionsStick) {
  LocalCache lc;
  sim::Rng rng(1);
  (void)lc.touch(5, LineState::kShared, rng);
  lc.set_state(5, LineState::kAtomic);
  EXPECT_EQ(lc.state(5), LineState::kAtomic);
  EXPECT_TRUE(writable(lc.state(5)));
  lc.set_state(5, LineState::kInvalid);
  EXPECT_FALSE(readable(lc.state(5)));
  EXPECT_TRUE(lc.lookup(5).page_present);  // placeholder remains
}

TEST(LocalCache, ClearDropsEverything) {
  LocalCache lc;
  sim::Rng rng(1);
  (void)lc.touch(5, LineState::kExclusive, rng);
  lc.clear();
  EXPECT_FALSE(lc.lookup(5).page_present);
}

// Property: with W ways per set, at most W pages of one set are resident.
TEST(LocalCache, AssociativityBound) {
  LocalCache lc(LocalCache::Config{64 * mem::kPageBytes, 4});  // 16 sets
  sim::Rng rng(11);
  // 40 pages all mapping to set 0 (page ids multiples of 16).
  for (mem::PageId pg = 0; pg < 40; ++pg) {
    (void)lc.touch(pg * 16 * mem::kSubPagesPerPage, LineState::kShared, rng);
  }
  int resident = 0;
  for (mem::PageId pg = 0; pg < 40; ++pg) {
    if (lc.lookup(pg * 16 * mem::kSubPagesPerPage).page_present) ++resident;
  }
  EXPECT_EQ(resident, 4);
}

TEST(LineState, PredicatesAndNames) {
  EXPECT_FALSE(readable(LineState::kInvalid));
  EXPECT_TRUE(readable(LineState::kShared));
  EXPECT_FALSE(writable(LineState::kShared));
  EXPECT_TRUE(writable(LineState::kExclusive));
  EXPECT_TRUE(writable(LineState::kAtomic));
  EXPECT_EQ(to_string(LineState::kAtomic), "Atomic");
}

// ------------------------------------------------------------- FlatMap ----

TEST(FlatMap, InsertFindEraseAgainstStdMap) {
  FlatMap<std::uint64_t, int> m;
  std::map<std::uint64_t, int> ref;
  sim::Rng rng(42);
  for (int round = 0; round < 20000; ++round) {
    const std::uint64_t key = rng.below(512);
    switch (rng.below(4)) {
      case 0:
      case 1:
        m[key] = static_cast<int>(round);
        ref[key] = static_cast<int>(round);
        break;
      case 2:
        EXPECT_EQ(m.erase(key), ref.erase(key) != 0);
        break;
      default: {
        const int* got = m.find(key);
        const auto it = ref.find(key);
        ASSERT_EQ(got != nullptr, it != ref.end());
        if (got != nullptr) {
          EXPECT_EQ(*got, it->second);
        }
        break;
      }
    }
    ASSERT_EQ(m.size(), ref.size());
  }
}

TEST(FlatMap, BackshiftErasePreservesProbeClusters) {
  // Keys engineered to collide into one probe cluster: erasing from the
  // middle must keep the later keys findable (backward-shift deletion).
  FlatMap<std::uint64_t, int> m;
  std::vector<std::uint64_t> keys;
  // Keys of the form i << 58 all land in bucket 0 at the initial capacity
  // of 64: the product i*phi << 58 keeps only 6 significant bits, which the
  // >> 32 leaves 26 bits above the 6-bit bucket mask.
  for (std::uint64_t i = 1; i <= 24; ++i) {
    const std::uint64_t k = i << 58;
    keys.push_back(k);
    m[k] = static_cast<int>(i);
  }
  for (std::size_t victim = 0; victim < keys.size(); victim += 3) {
    EXPECT_TRUE(m.erase(keys[victim]));
  }
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const int* got = m.find(keys[i]);
    if (i % 3 == 0) {
      EXPECT_EQ(got, nullptr);
    } else {
      ASSERT_NE(got, nullptr);
      EXPECT_EQ(*got, static_cast<int>(i + 1));
    }
  }
}

TEST(FlatMap, GrowthRehashesEverything) {
  FlatMap<std::uint64_t, std::uint64_t> m;
  for (std::uint64_t k = 0; k < 5000; ++k) m[k * 977] = k;
  EXPECT_EQ(m.size(), 5000u);
  for (std::uint64_t k = 0; k < 5000; ++k) {
    const std::uint64_t* got = m.find(k * 977);
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(*got, k);
  }
  EXPECT_EQ(m.find(977 * 5001), nullptr);
}

TEST(FlatMap, ClearKeepsCapacityAndEmpties) {
  FlatMap<std::uint64_t, int> m;
  for (std::uint64_t k = 0; k < 100; ++k) m[k] = 1;
  m.clear();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.size(), 0u);
  EXPECT_FALSE(m.contains(7));
  m[7] = 2;
  EXPECT_EQ(m.size(), 1u);
  ASSERT_NE(m.find(7), nullptr);
  EXPECT_EQ(*m.find(7), 2);
}

}  // namespace
}  // namespace ksr::cache
