# Empty compiler generated dependencies file for test_machine_latency.
# This may be replaced when dependencies are built.
