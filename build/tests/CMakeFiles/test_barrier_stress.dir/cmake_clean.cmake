file(REMOVE_RECURSE
  "CMakeFiles/test_barrier_stress.dir/test_barrier_stress.cpp.o"
  "CMakeFiles/test_barrier_stress.dir/test_barrier_stress.cpp.o.d"
  "test_barrier_stress"
  "test_barrier_stress.pdb"
  "test_barrier_stress[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_barrier_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
