file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_barriers_ksr2.dir/bench_fig5_barriers_ksr2.cpp.o"
  "CMakeFiles/bench_fig5_barriers_ksr2.dir/bench_fig5_barriers_ksr2.cpp.o.d"
  "bench_fig5_barriers_ksr2"
  "bench_fig5_barriers_ksr2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_barriers_ksr2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
