#pragma once

#include <cstdint>
#include <string>

#include "ksr/serve/json.hpp"

// A serve job = MachineConfig knobs + workload name/params + seed +
// optional checkpoint preset (docs/SERVING.md). Every simulation in this
// repo is bit-deterministic — the same spec produces the same
// events_dispatched fingerprint and the same result values at any --jobs /
// --sim-threads — so a content hash of (spec, code version) is a *perfect*
// cache key for the result store. Execution policy (how many host threads
// run the job) is therefore deliberately NOT part of the spec.
namespace ksr::serve {

/// Bump when a change moves any pinned fingerprint (simulated semantics,
/// kernel schedules, machine timing): every cached result keyed under the
/// old version becomes unreachable and re-runs on first request. The
/// pinned-fingerprint stage of scripts/bench_host.sh --check is the tripwire
/// that tells you a bump is due.
inline constexpr std::uint32_t kCodeVersion = 1;

struct JobSpec {
  // --- machine knobs (ksrsim's make_config vocabulary) ---
  std::string machine = "ksr1";  // ksr1|ksr2|symmetry|butterfly
  unsigned procs = 8;
  unsigned scale = 1;            // MachineConfig::scaled_by
  bool snarf = true;             // read_snarfing
  std::uint64_t fuzz_seed = 0;   // sched_fuzz_seed
  unsigned cells_per_leaf = 0;   // 0 = preset
  unsigned cells_per_domain = 0; // 0 = single domain

  // --- workload ---
  std::string workload = "cg";   // ep|cg|is|sp|bt
  std::uint64_t seed = 0;        // 0 = the kernel's published default seed
  // Size parameters; 0 (or false) means the ksrsim kernel-command default
  // for that workload. Unused parameters for a workload are ignored at
  // execution but still keyed — two spellings of the same job may occupy
  // two cache slots (conservative), a shared slot can never collide.
  unsigned log2_keys = 0;        // is
  unsigned log2_buckets = 0;     // is
  bool pad_buckets = false;      // is
  unsigned n = 0;                // cg/sp/bt
  unsigned nnz_per_row = 0;      // cg
  unsigned iters = 0;            // cg/sp/bt
  unsigned log2_pairs = 0;       // ep
  // Checkpoint preset (is only): restore the machine from this image and
  // run the timed split-phase ranking instead of the warm-up
  // (docs/CHECKPOINT.md). The *contents* of the file are folded into the
  // cache key, so the preset is itself content-addressed.
  std::string restore_from;

  /// Empty string when the spec is well-formed, else a diagnostic. Validates
  /// the vocabulary and builds the MachineConfig once to run its validate().
  [[nodiscard]] std::string validate() const;

  /// Canonical fixed-field-order serialization — the byte string the cache
  /// key hashes. Includes every field (plus the FNV-1a of the checkpoint
  /// preset's bytes when one is named), so any change to any field, seed or
  /// preset changes the key.
  [[nodiscard]] std::string canonical() const;

  [[nodiscard]] Json to_json() const;
  /// Populate from a JSON object (unknown keys are errors — a typo'd knob
  /// must not silently run with defaults). Fields absent keep defaults.
  static bool from_json(const Json& j, JobSpec* out, std::string* err);
};

struct CacheKey {
  std::uint64_t value = 0;
  [[nodiscard]] std::string hex() const;
};

/// FNV-1a over canonical() plus the version stamps (kCodeVersion and the
/// checkpoint format version). Throws std::runtime_error when the spec
/// names a checkpoint preset that cannot be read.
[[nodiscard]] CacheKey derive_key(const JobSpec& spec,
                                  std::uint32_t code_version = kCodeVersion);

struct JobOutcome {
  std::uint64_t events = 0;  // the determinism fingerprint
  std::string result;        // deterministic result JSON (the cached bytes)
};

/// Run the job on a freshly built machine. `sim_threads` is server
/// execution policy — results are bit-identical for any value
/// (docs/PARALLEL.md). Throws on invalid specs or checkpoint mismatches.
[[nodiscard]] JobOutcome execute(const JobSpec& spec, unsigned sim_threads = 1);

}  // namespace ksr::serve
