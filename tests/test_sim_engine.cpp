// Unit tests for the discrete-event engine and fiber scheduler.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "ksr/sim/engine.hpp"

namespace ksr::sim {
namespace {

TEST(Engine, DispatchesEventsInTimeOrder) {
  Engine eng;
  std::vector<int> order;
  eng.at(30, [&] { order.push_back(3); });
  eng.at(10, [&] { order.push_back(1); });
  eng.at(20, [&] { order.push_back(2); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eng.now(), 30u);
}

TEST(Engine, TiesBreakByInsertionOrder) {
  Engine eng;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    eng.at(100, [&order, i] { order.push_back(i); });
  }
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Engine, SchedulingIntoThePastThrows) {
  Engine eng;
  eng.at(50, [&] {
    EXPECT_THROW(eng.at(40, [] {}), std::logic_error);
  });
  eng.run();
}

TEST(Engine, NestedSchedulingFromEvents) {
  Engine eng;
  int hits = 0;
  eng.at(1, [&] {
    ++hits;
    eng.at(5, [&] {
      ++hits;
      eng.at(9, [&] { ++hits; });
    });
  });
  eng.run();
  EXPECT_EQ(hits, 3);
  EXPECT_EQ(eng.now(), 9u);
}

TEST(Engine, FiberRunsAndFinishes) {
  Engine eng;
  bool ran = false;
  eng.spawn([&] { ran = true; }, 7);
  eng.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(eng.live_fibers(), 0u);
}

TEST(Engine, FiberWaitUntilAdvancesTime) {
  Engine eng;
  Time seen = 0;
  eng.spawn([&] {
    eng.wait_until(1000);
    seen = eng.now();
    eng.wait_until(2500);
    seen = eng.now();
  });
  eng.run();
  EXPECT_EQ(seen, 2500u);
}

TEST(Engine, TwoFibersInterleaveDeterministically) {
  Engine eng;
  std::vector<int> trace;
  eng.spawn([&] {
    trace.push_back(1);
    eng.wait_until(100);
    trace.push_back(3);
    eng.wait_until(300);
    trace.push_back(5);
  });
  eng.spawn([&] {
    trace.push_back(2);
    eng.wait_until(200);
    trace.push_back(4);
  });
  eng.run();
  EXPECT_EQ(trace, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(Engine, BlockAndWake) {
  Engine eng;
  bool resumed = false;
  const FiberId f = eng.spawn([&] {
    eng.block();
    resumed = true;
    EXPECT_EQ(eng.now(), 500u);
  });
  eng.at(500, [&] { eng.wake(f, 500); });
  eng.run();
  EXPECT_TRUE(resumed);
}

TEST(Engine, DeadlockDetected) {
  Engine eng;
  eng.spawn([&] { eng.block(); });  // nobody ever wakes it
  EXPECT_THROW(eng.run(), std::runtime_error);
}

TEST(Engine, FiberExceptionPropagates) {
  Engine eng;
  eng.spawn([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(eng.run(), std::runtime_error);
}

TEST(Engine, ManyFibersAllComplete) {
  Engine eng;
  int done = 0;
  for (int i = 0; i < 64; ++i) {
    eng.spawn([&eng, &done, i] {
      for (int k = 0; k < 10; ++k) {
        eng.wait_until(eng.now() + static_cast<Time>(i + 1));
      }
      ++done;
    });
  }
  eng.run();
  EXPECT_EQ(done, 64);
}

TEST(Engine, CurrentFiberIdVisible) {
  Engine eng;
  eng.spawn([&] {
    EXPECT_TRUE(eng.in_fiber());
    EXPECT_EQ(eng.current_fiber(), 0u);
  });
  eng.run();
  EXPECT_FALSE(eng.in_fiber());
}

TEST(Engine, NextEventTimeSentinelWhenIdle) {
  Engine eng;
  EXPECT_EQ(eng.next_event_time(), std::numeric_limits<Time>::max());
  eng.at(42, [] {});
  EXPECT_EQ(eng.next_event_time(), 42u);
  eng.run();
}

}  // namespace
}  // namespace ksr::sim
