# Empty dependencies file for coherence_autopsy.
# This may be replaced when dependencies are built.
