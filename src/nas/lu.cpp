#include "ksr/nas/lu.hpp"

#include <array>
#include <cmath>

#include "ksr/sync/atomic.hpp"
#include "ksr/sync/barrier.hpp"
#include "ksr/sync/padded.hpp"

namespace ksr::nas {

namespace {

constexpr std::size_t kComp = 5;

struct LuGrid {
  mem::SharedArray<double> mem;  // u then rhs, point-major 5-vectors
  std::size_t n = 0;
  std::size_t array_stride = 0;

  [[nodiscard]] std::size_t idx(unsigned arr, std::size_t x, std::size_t y,
                                std::size_t z, std::size_t c) const noexcept {
    return arr * array_stride + (((z * n + y) * n + x) * kComp) + c;
  }
};

enum : unsigned { kU = 0, kRhs = 1 };

using Vec5 = std::array<double, 5>;

Vec5 read_vec(machine::Cpu& cpu, LuGrid& g, unsigned arr, std::size_t x,
              std::size_t y, std::size_t z) {
  Vec5 v;
  for (std::size_t c = 0; c < kComp; ++c) {
    v[c] = cpu.read(g.mem, g.idx(arr, x, y, z, c));
  }
  return v;
}

void write_vec(machine::Cpu& cpu, LuGrid& g, unsigned arr, std::size_t x,
               std::size_t y, std::size_t z, const Vec5& v) {
  for (std::size_t c = 0; c < kComp; ++c) {
    cpu.write(g.mem, g.idx(arr, x, y, z, c), v[c]);
  }
}

/// SSOR point update: relax u(x,y,z) against the (already updated in this
/// sweep) lower/upper neighbours. A small fixed 5x5 mixing stands in for
/// the NAS Jacobian blocks; the O(5^2..5^3) arithmetic is charged as work.
Vec5 relax(const Vec5& u, const Vec5& rhs, const Vec5& nx, const Vec5& ny,
           const Vec5& nz) {
  Vec5 out;
  for (std::size_t r = 0; r < kComp; ++r) {
    const double coupled = 0.05 * (nx[(r + 1) % kComp] + ny[(r + 2) % kComp] +
                                   nz[(r + 3) % kComp]);
    out[r] = u[r] + 0.4 * (0.3 * rhs[r] - 0.25 * u[r] - coupled);
  }
  return out;
}

}  // namespace

LuResult run_lu(machine::Machine& m, const LuConfig& cfg) {
  const std::size_t n = cfg.n;
  const unsigned nproc = m.nproc();

  LuGrid g;
  g.n = n;
  g.array_stride = n * n * n * kComp;
  g.mem = m.alloc<double>("lu.grid", 2 * g.array_stride);

  for (std::size_t z = 0; z < n; ++z) {
    for (std::size_t y = 0; y < n; ++y) {
      for (std::size_t x = 0; x < n; ++x) {
        for (std::size_t c = 0; c < kComp; ++c) {
          const double v =
              std::sin(0.05 * static_cast<double>(2 * x + y + 3 * z + c));
          g.mem.set_value(g.idx(kU, x, y, z, c), v);
          g.mem.set_value(g.idx(kRhs, x, y, z, c), 0.6 * v);
        }
      }
    }
  }

  auto barrier = sync::make_barrier(m, sync::BarrierKind::kSystem);
  // Pipeline flags: planes completed by each processor in the current sweep
  // (absolute counts, monotone across sweeps and iterations).
  sync::Padded<std::uint32_t> lower_done(m, "lu.lo", nproc);
  sync::Padded<std::uint32_t> upper_done(m, "lu.hi", nproc);

  LuResult out;
  double t_max = 0;

  m.run([&](machine::Cpu& cpu) {
    const unsigned me = cpu.id();
    const std::size_t y_lo = n * me / nproc;
    const std::size_t y_hi = n * (me + 1) / nproc;

    // Warm-up: own my y-slab (both arrays).
    for (unsigned arr = 0; arr < 2; ++arr) {
      for (std::size_t z = 0; z < n; ++z) {
        for (std::size_t y = y_lo; y < y_hi; ++y) {
          cpu.read_range(g.mem.addr(g.idx(arr, 0, y, z, 0)),
                         n * kComp * sizeof(double));
        }
      }
    }
    barrier->arrive(cpu);
    const double t0 = cpu.seconds();

    for (unsigned it = 0; it < cfg.iterations; ++it) {
      const std::uint32_t base =
          static_cast<std::uint32_t>(it) * static_cast<std::uint32_t>(n);

      // ---- Lower-triangular sweep: dependence on (x-1, y-1, z-1). The
      // y-1 dependence crosses the slab boundary: wait until the lower
      // neighbour has finished this z-plane, then relax my rows.
      for (std::size_t z = 0; z < n; ++z) {
        if (me > 0 && y_lo > 0) {
          sync::spin_until(cpu, [&] {
            return lower_done.read(cpu, me - 1) >=
                   base + static_cast<std::uint32_t>(z) + 1;
          });
        }
        for (std::size_t y = std::max<std::size_t>(y_lo, 1); y < y_hi; ++y) {
          for (std::size_t x = 1; x < n; ++x) {
            if (z == 0) continue;  // boundary plane held fixed
            const Vec5 u = read_vec(cpu, g, kU, x, y, z);
            const Vec5 rhs = read_vec(cpu, g, kRhs, x, y, z);
            const Vec5 nx = read_vec(cpu, g, kU, x - 1, y, z);
            const Vec5 ny = read_vec(cpu, g, kU, x, y - 1, z);
            const Vec5 nz = read_vec(cpu, g, kU, x, y, z - 1);
            write_vec(cpu, g, kU, x, y, z, relax(u, rhs, nx, ny, nz));
            cpu.work(cfg.work_per_point);
          }
        }
        lower_done.write_post(cpu, me,
                              base + static_cast<std::uint32_t>(z) + 1,
                              cfg.use_poststore);
      }
      barrier->arrive(cpu);

      // ---- Upper-triangular sweep: mirrored dependence on
      // (x+1, y+1, z+1); the pipeline flows from the top slab down.
      for (std::size_t zz = n; zz-- > 0;) {
        if (me + 1 < nproc && y_hi < n) {
          sync::spin_until(cpu, [&] {
            return upper_done.read(cpu, me + 1) >=
                   base + static_cast<std::uint32_t>(n - zz);
          });
        }
        for (std::size_t yy = std::min(y_hi, n - 1); yy-- > y_lo;) {
          for (std::size_t xx = n - 1; xx-- > 0;) {
            if (zz + 1 >= n) continue;  // boundary plane held fixed
            const Vec5 u = read_vec(cpu, g, kU, xx, yy, zz);
            const Vec5 rhs = read_vec(cpu, g, kRhs, xx, yy, zz);
            const Vec5 nx = read_vec(cpu, g, kU, xx + 1, yy, zz);
            const Vec5 ny = read_vec(cpu, g, kU, xx, yy + 1, zz);
            const Vec5 nz = read_vec(cpu, g, kU, xx, yy, zz + 1);
            write_vec(cpu, g, kU, xx, yy, zz, relax(u, rhs, nx, ny, nz));
            cpu.work(cfg.work_per_point);
          }
        }
        upper_done.write_post(cpu, me,
                              base + static_cast<std::uint32_t>(n - zz),
                              cfg.use_poststore);
      }
      barrier->arrive(cpu);
    }

    const double dt = cpu.seconds() - t0;
    if (dt > t_max) t_max = dt;
  });

  out.total_seconds = t_max;
  out.seconds_per_iteration = t_max / cfg.iterations;
  double checksum = 0;
  for (std::size_t i = 0; i < g.array_stride; ++i) {
    checksum += g.mem.value(i);
  }
  out.checksum = checksum;
  return out;
}

}  // namespace ksr::nas
