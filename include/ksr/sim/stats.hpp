#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

// Small statistics helpers used by the experiment harnesses.
namespace ksr::sim {

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
class RunningStat {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }

  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Sample container with quantile queries; used where a distribution shape
/// matters (e.g. per-episode barrier times).
class Samples {
 public:
  void add(double x) { xs_.push_back(x); }
  [[nodiscard]] std::size_t count() const noexcept { return xs_.size(); }

  [[nodiscard]] double mean() const noexcept {
    if (xs_.empty()) return 0.0;
    double sum = 0.0;
    for (double x : xs_) sum += x;
    return sum / static_cast<double>(xs_.size());
  }

  /// Quantile with linear interpolation on a sorted copy. `q` is clamped to
  /// [0,1]: a negative q would otherwise cast a negative position to
  /// std::size_t (UB), and q > 1 would interpolate past the maximum.
  [[nodiscard]] double quantile(double q) const {
    if (xs_.empty()) return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    std::vector<double> sorted = xs_;
    std::sort(sorted.begin(), sorted.end());
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
  }

  [[nodiscard]] double median() const { return quantile(0.5); }

 private:
  std::vector<double> xs_;
};

}  // namespace ksr::sim
