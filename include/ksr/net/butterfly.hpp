#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "ksr/sim/engine.hpp"
#include "ksr/sim/time.hpp"

// Multistage interconnection network — the BBN Butterfly model (§3.2.3).
//
// P processors reach P memory modules through ceil(log4 P) stages of 4x4
// switches. Distinct source/destination pairs use mostly disjoint links, so
// the network offers parallel communication paths; but the machine has *no
// coherent caches*, so every reference to a shared location is a network
// round trip to the location's home module. Hot spots (everyone referencing
// one flag) serialize on the links into the home module — which is why the
// global-wakeup-flag trick is unusable on this machine and dissemination
// wins (paper §3.2.3).
//
// Contention model: each directed link keeps a free-at calendar; a packet
// crossing a link at time t departs at max(t, free_at) + link_ns.
namespace ksr::net {

class Butterfly {
 public:
  struct Config {
    unsigned ports = 64;              // processors == memory modules
    sim::Duration link_ns = 300;      // per-stage switch + wire time
    sim::Duration memory_ns = 600;    // home module service time
  };

  using Done = std::function<void(sim::Duration queue_wait)>;

  Butterfly(sim::Engine& engine, const Config& cfg)
      : engine_(engine), cfg_(cfg), stages_(stages_for(cfg.ports)) {
    request_links_.assign(stages_, std::vector<sim::Time>(cfg_.ports, 0));
    response_links_.assign(stages_, std::vector<sim::Time>(cfg_.ports, 0));
  }

  Butterfly(const Butterfly&) = delete;
  Butterfly& operator=(const Butterfly&) = delete;

  /// A memory round trip from processor `src` to the module of `dst`.
  void transact(unsigned src, unsigned dst, Done done) {
    src %= cfg_.ports;
    dst %= cfg_.ports;
    const sim::Time begin = engine_.now();
    sim::Time t = begin;
    // Request path: switch stages toward the home module.
    for (unsigned s = 0; s < stages_; ++s) {
      t = cross(request_links_[s], link_of(src, dst, s), t);
    }
    t += cfg_.memory_ns;
    // Response path back (reverse network, mirrored link ids).
    for (unsigned s = 0; s < stages_; ++s) {
      t = cross(response_links_[s], link_of(dst, src, s), t);
    }
    ++stats_.transactions;
    const sim::Duration nominal =
        2 * stages_ * cfg_.link_ns + cfg_.memory_ns;
    const sim::Duration wait = (t - begin) - std::min(t - begin, nominal);
    stats_.total_wait_ns += wait;
    engine_.at(t, [done = std::move(done), wait] { done(wait); });
  }

  [[nodiscard]] unsigned stages() const noexcept { return stages_; }
  [[nodiscard]] const Config& config() const noexcept { return cfg_; }

  /// Uncontended round-trip time.
  [[nodiscard]] sim::Duration base_round_trip() const noexcept {
    return 2 * stages_ * cfg_.link_ns + cfg_.memory_ns;
  }

  struct Stats {
    std::uint64_t transactions = 0;
    sim::Duration total_wait_ns = 0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  [[nodiscard]] static unsigned stages_for(unsigned ports) noexcept {
    unsigned s = 0;
    unsigned span = 1;
    while (span < ports) {
      span *= 4;
      ++s;
    }
    return std::max(s, 1u);
  }

  /// Omega-style link id after stage `s`: the route address has the top
  /// 2*(s+1) bits from dst and the rest from src.
  [[nodiscard]] unsigned link_of(unsigned src, unsigned dst, unsigned s) const noexcept {
    const unsigned bits = 2 * stages_;
    const unsigned taken = std::min(2 * (s + 1), bits);
    const unsigned mask = taken >= bits ? ~0u : ~((1u << (bits - taken)) - 1u);
    return ((dst & mask) | (src & ~mask)) % cfg_.ports;
  }

  sim::Time cross(std::vector<sim::Time>& calendar, unsigned link, sim::Time t) {
    sim::Time& free_at = calendar[link];
    const sim::Time start = std::max(t, free_at);
    free_at = start + cfg_.link_ns;
    return free_at;
  }

  sim::Engine& engine_;
  Config cfg_;
  unsigned stages_;
  std::vector<std::vector<sim::Time>> request_links_;
  std::vector<std::vector<sim::Time>> response_links_;
  Stats stats_;
};

}  // namespace ksr::net
