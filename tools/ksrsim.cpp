// ksrsim — command-line driver for the simulated KSR-1 and its experiment
// suite. Lets a user run any kernel, barrier or probe on any machine model
// without writing code:
//
//   ksrsim probe     --machine ksr1 --procs 32
//   ksrsim barrier   --kind tournament-m --procs 32 --episodes 50
//   ksrsim lock      --kind rw --read-pct 60 --procs 16 --ops 100
//   ksrsim kernel    --name cg --procs 16 --scale 64
//   ksrsim sweep     --name is --procs 1,2,4,8,16,32 --scale 64
//   ksrsim serve     --socket ksrsim.sock --store ksrsim_store
//   ksrsim submit    --socket ksrsim.sock --name is --procs 16 --scale 64
//   ksrsim campaign  presets/campaigns/fig8_quick.json --store ksrsim_store
//
// Run `ksrsim help` for the full reference.
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "ksr/check/checker.hpp"
#include "ksr/ckpt/checkpoint.hpp"
#include "ksr/host/sweep_runner.hpp"
#include "ksr/machine/factory.hpp"
#include "ksr/nas/bt.hpp"
#include "ksr/nas/cg.hpp"
#include "ksr/nas/ep.hpp"
#include "ksr/nas/is.hpp"
#include "ksr/nas/sp.hpp"
#include "ksr/obs/session.hpp"
#include "ksr/serve/campaign.hpp"
#include "ksr/serve/server.hpp"
#include "ksr/study/metrics.hpp"
#include "ksr/study/table.hpp"
#include "ksr/sync/barrier.hpp"
#include "ksr/sync/locks.hpp"
#include "ksr/sync/spinlocks.hpp"
#include "ksr/util/parse.hpp"

namespace {

using namespace ksr;  // NOLINT

// ----------------------------------------------------------- flag parsing

class Args {
 public:
  Args(int argc, char** argv) {
    // Union of the keys any command understands; a typo ("--job 4",
    // "--proc 8") warns instead of silently running with defaults.
    static const std::map<std::string, int> known = {
        {"machine", 1},  {"procs", 1},        {"scale", 1},
        {"no-snarf", 1}, {"csv", 1},          {"kind", 1},
        {"episodes", 1}, {"ops", 1},          {"read-pct", 1},
        {"name", 1},     {"n", 1},            {"nnz-per-row", 1},
        {"iters", 1},    {"log2-pairs", 1},   {"log2-keys", 1},
        {"log2-buckets", 1}, {"no-padding", 1}, {"no-prefetch", 1},
        {"pad-buckets", 1},
        {"jobs", 1},     {"trace", 1},        {"trace-out", 1},
        {"trace-cap", 1}, {"report", 1},      {"metrics-csv", 1},
        {"topo-report", 1},
        {"fuzz-seed", 1},    {"check", 0},    {"sim-threads", 1},
        {"leaf-rings", 1},   {"cells-per-leaf", 1}, {"cells-per-domain", 1},
        {"checkpoint-at", 1}, {"restore-from", 1},
        {"socket", 1},       {"store", 1},    {"out", 1},
        {"manifest", 1},     {"op", 1},       {"seed", 1}};
    for (int i = 2; i < argc; ++i) {
      std::string a = argv[i];
      if (a.rfind("--", 0) != 0) {
        // First bare token is the positional argument (the campaign
        // manifest path); anything further is still a likely typo.
        if (positional_.empty()) {
          positional_ = a;
        } else {
          std::cerr << "warning: ignoring unknown argument '" << a << "'\n";
        }
        continue;
      }
      std::string key = a.substr(2);
      std::string val;
      bool has_val = false;
      const std::size_t eq = key.find('=');
      if (eq != std::string::npos) {
        val = key.substr(eq + 1);
        key = key.substr(0, eq);
        has_val = true;
      }
      if (known.find(key) == known.end()) {
        std::cerr << "warning: ignoring unknown argument '--" << key << "'\n";
        if (!has_val && i + 1 < argc &&
            std::string(argv[i + 1]).rfind("--", 0) != 0) {
          ++i;  // swallow the typo'd flag's value too
        }
        continue;
      }
      if (has_val) {
        kv_[key] = val;
      } else if (i + 1 < argc &&
                 std::string(argv[i + 1]).rfind("--", 0) != 0) {
        kv_[key] = argv[++i];
      } else {
        kv_[key] = "1";
      }
    }
  }

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& def = "") const {
    const auto it = kv_.find(key);
    return it == kv_.end() ? def : it->second;
  }
  /// Strict parse of one non-negative integer token; false on malformed or
  /// overflowing input (the shared tool parser — see ksr/util/parse.hpp).
  [[nodiscard]] static bool parse_u64(const std::string& tok,
                                      std::uint64_t* out) {
    return util::parse_u64(tok, out);
  }
  [[nodiscard]] unsigned get_u(const std::string& key, unsigned def) const {
    const auto it = kv_.find(key);
    if (it == kv_.end()) return def;
    std::uint64_t v = 0;
    if (!parse_u64(it->second, &v) ||
        v > std::numeric_limits<unsigned>::max()) {
      std::cerr << "warning: ignoring invalid --" << key << " value '"
                << it->second << "' (expected a non-negative integer)\n";
      return def;
    }
    return static_cast<unsigned>(v);
  }
  [[nodiscard]] std::uint64_t get_u64(const std::string& key,
                                      std::uint64_t def) const {
    const auto it = kv_.find(key);
    if (it == kv_.end()) return def;
    std::uint64_t v = 0;
    if (!parse_u64(it->second, &v)) {
      std::cerr << "warning: ignoring invalid --" << key << " value '"
                << it->second << "' (expected a non-negative integer)\n";
      return def;
    }
    return v;
  }
  [[nodiscard]] bool has(const std::string& key) const {
    return kv_.count(key) > 0;
  }
  [[nodiscard]] std::vector<unsigned> get_list(const std::string& key,
                                               std::vector<unsigned> def) const {
    const auto it = kv_.find(key);
    if (it == kv_.end()) return def;
    std::vector<unsigned> out;
    std::stringstream ss(it->second);
    std::string tok;
    while (std::getline(ss, tok, ',')) {
      std::uint64_t v = 0;
      if (!parse_u64(tok, &v) || v > std::numeric_limits<unsigned>::max()) {
        std::cerr << "warning: skipping invalid --" << key << " list entry '"
                  << tok << "' (expected a non-negative integer)\n";
        continue;
      }
      out.push_back(static_cast<unsigned>(v));
    }
    if (out.empty()) {
      std::cerr << "warning: --" << key
                << " has no valid entries; using the default list\n";
      return def;
    }
    return out;
  }
  /// First non-flag token after the command (e.g. the campaign manifest).
  [[nodiscard]] const std::string& positional() const noexcept {
    return positional_;
  }

 private:
  std::map<std::string, std::string> kv_;
  std::string positional_;
};

/// Observability session from the common flags (see docs/OBSERVABILITY.md):
/// `--trace [cat,...]` captures a structured trace, `--trace-out FILE` names
/// the output (default ksrsim_<cmd>_trace.json), `--trace-cap N` sizes the
/// per-job record buffer, `--metrics-csv FILE` the sampled metrics time
/// series, `--report FILE` a ksrprof simulated-time profile,
/// `--topo-report FILE` the byte-stable topology report (+ FILE.matrix.csv).
obs::Session make_session(const Args& args, const std::string& cmd) {
  obs::SessionOptions s;
  s.trace = args.has("trace") || args.has("trace-out");
  const std::string cats = args.get("trace");
  if (cats != "1") s.categories = cats;  // bare --trace = all categories
  s.trace_out = args.get("trace-out");
  s.metrics_csv = args.get("metrics-csv");
  s.report = args.get("report");
  s.topo_report = args.get("topo-report");
  const unsigned cap = args.get_u("trace-cap", 0);
  if (cap != 0) s.trace_capacity = cap;
  return obs::Session(std::move(s), "ksrsim_" + cmd);
}

machine::MachineConfig make_config(const Args& args, unsigned procs) {
  const std::string name = args.get("machine", "ksr1");
  machine::MachineConfig cfg = machine::MachineConfig::ksr1(procs);
  if (name == "ksr2") cfg = machine::MachineConfig::ksr2(procs);
  if (name == "symmetry") cfg = machine::MachineConfig::symmetry(procs);
  if (name == "butterfly") cfg = machine::MachineConfig::butterfly(procs);
  const unsigned scale = args.get_u("scale", 1);
  if (scale > 1) cfg = cfg.scaled_by(scale);
  if (args.has("no-snarf")) cfg.read_snarfing = false;
  cfg.sched_fuzz_seed = args.get_u64("fuzz-seed", 0);
  cfg.sim_threads = args.get_u("sim-threads", 1);
  // Topology overrides: shape the ring hierarchy independently of --procs
  // (128-cell and larger machines need more than the preset's two leaves).
  const unsigned cpl = args.get_u("cells-per-leaf", 0);
  if (cpl != 0) cfg.cells_per_leaf = cpl;
  const unsigned lr = args.get_u("leaf-rings", 0);
  if (lr != 0 && cfg.cells_per_leaf != 0) {
    // --leaf-rings is sugar: it fixes nproc = rings x cells_per_leaf.
    cfg.nproc = lr * cfg.cells_per_leaf;
  }
  cfg.cells_per_domain = args.get_u("cells-per-domain", 0);
  return cfg;
}

// With --check, attach the ALLCACHE invariant checker for the lifetime of
// the run and audit the whole machine at scope exit (docs/CHECKING.md). In
// a -DKSR_CHECK=ON build every coherence transition is audited as it
// commits; in a default build only the end-of-run audit runs. A violation
// prints the trace-backed diagnostic and fails the process via
// g_check_failed (checked in main after the command returns).
bool g_check_failed = false;

class CheckScope {
 public:
  CheckScope(const Args& args, machine::Machine& m) {
    if (!args.has("check")) return;
    cm_ = dynamic_cast<machine::CoherentMachine*>(&m);
    if (cm_ == nullptr) {
      std::cerr << "warning: --check: this machine model has no coherence "
                   "directory to audit\n";
      return;
    }
    checker_ = std::make_unique<check::InvariantChecker>(*cm_);
    cm_->attach_checker(checker_.get());
  }
  ~CheckScope() {
    if (checker_ == nullptr) return;
    try {
      checker_->audit_all();
      std::cerr << "[check] invariants ok: transitions="
                << checker_->stats().transitions
                << " audits=" << checker_->stats().audits << "\n";
    } catch (const check::ViolationError& e) {
      std::cerr << "[check] FAIL\n" << e.what() << "\n";
      g_check_failed = true;
    }
    cm_->attach_checker(nullptr);
  }
  CheckScope(const CheckScope&) = delete;
  CheckScope& operator=(const CheckScope&) = delete;

 private:
  machine::CoherentMachine* cm_ = nullptr;
  std::unique_ptr<check::InvariantChecker> checker_;
};

// ------------------------------------------------------------- commands

int cmd_probe(const Args& args) {
  const unsigned procs = args.get_u("procs", 2);
  auto m = machine::make_machine(make_config(args, std::max(procs, 2u)));
  CheckScope check(args, *m);
  obs::Session session = make_session(args, "probe");
  obs::JobObs jo = session.job();
  jo.attach(*m);
  auto arr = m->alloc<double>("probe", 4096);
  auto flag = m->alloc<int>("flag", 1);
  double sub = 0, local = 0, remote = 0;
  m->run([&](machine::Cpu& cpu) {
    if (cpu.id() == 0) {
      for (std::size_t i = 0; i < 4096; i += 16) cpu.write(arr, i, 1.0);
      // Sub-cache hit.
      (void)cpu.read(arr, 0);
      double t0 = cpu.seconds();
      for (int r = 0; r < 100; ++r) (void)cpu.read(arr, 0);
      sub = (cpu.seconds() - t0) / 100;
      // Local-cache-ish: stride sub-blocks.
      t0 = cpu.seconds();
      std::size_t k = 0;
      for (std::size_t i = 0; i < 4096; i += 8, ++k) (void)cpu.read(arr, i);
      local = (cpu.seconds() - t0) / static_cast<double>(k);
      cpu.write(flag, 0, 1);
    } else if (cpu.id() == 1) {
      while (cpu.read(flag, 0) == 0) cpu.work(10);
      const double t0 = cpu.seconds();
      std::size_t k = 0;
      for (std::size_t i = 0; i < 4096; i += 16, ++k) (void)cpu.read(arr, i);
      remote = (cpu.seconds() - t0) / static_cast<double>(k);
    }
  });
  jo.finish();
  if (session.active()) session.collect(std::move(jo), "probe");
  std::printf("machine: %s, %u cells\n",
              machine::to_string(m->config().kind), m->nproc());
  std::printf("  repeat-read (sub-cache)   : %7.3f us\n", sub * 1e6);
  std::printf("  stride-read (local level) : %7.3f us\n", local * 1e6);
  std::printf("  remote read               : %7.3f us\n", remote * 1e6);
  session.close();
  return session.ok() ? 0 : 1;
}

int cmd_barrier(const Args& args) {
  static const std::map<std::string, sync::BarrierKind> kinds = {
      {"counter", sync::BarrierKind::kCounter},
      {"tree", sync::BarrierKind::kTree},
      {"tree-m", sync::BarrierKind::kTreeM},
      {"dissemination", sync::BarrierKind::kDissemination},
      {"tournament", sync::BarrierKind::kTournament},
      {"tournament-m", sync::BarrierKind::kTournamentM},
      {"mcs", sync::BarrierKind::kMcs},
      {"mcs-m", sync::BarrierKind::kMcsM},
      {"system", sync::BarrierKind::kSystem}};
  const auto it = kinds.find(args.get("kind", "tournament-m"));
  if (it == kinds.end()) {
    std::fprintf(stderr, "unknown barrier kind\n");
    return 1;
  }
  const unsigned procs = args.get_u("procs", 16);
  const int episodes = static_cast<int>(args.get_u("episodes", 25));
  auto m = machine::make_machine(make_config(args, procs));
  CheckScope check(args, *m);
  auto barrier = sync::make_barrier(*m, it->second);
  obs::Session session = make_session(args, "barrier");
  obs::JobObs jo = session.job();
  jo.attach(*m);
  double total = 0;
  auto res = m->run([&](machine::Cpu& cpu) {
    barrier->arrive(cpu);
    const double t0 = cpu.seconds();
    for (int e = 0; e < episodes; ++e) {
      cpu.work(cpu.rng().below(500));
      barrier->arrive(cpu);
    }
    if (cpu.seconds() - t0 > total) total = cpu.seconds() - t0;
  });
  jo.finish();
  if (session.active()) {
    session.collect(std::move(jo), std::string(barrier->name()));
  }
  std::printf("%s on %s, %u procs: %.1f us/episode "
              "(%llu network transactions total)\n",
              std::string(barrier->name()).c_str(),
              machine::to_string(m->config().kind), procs,
              total / episodes * 1e6,
              static_cast<unsigned long long>(res.pmon.ring_requests));
  session.close();
  return session.ok() ? 0 : 1;
}

int cmd_lock(const Args& args) {
  const unsigned procs = args.get_u("procs", 8);
  const int ops = static_cast<int>(args.get_u("ops", 50));
  const std::string kind = args.get("kind", "hw");
  const unsigned read_pct = args.get_u("read-pct", 0);
  auto m = machine::make_machine(make_config(args, procs));
  CheckScope check(args, *m);
  obs::Session session = make_session(args, "lock");
  obs::JobObs jo = session.job();
  jo.attach(*m);
  double t = 0;
  if (kind == "rw") {
    sync::TicketRwLock lock(*m);
    m->run([&](machine::Cpu& cpu) {
      for (int i = 0; i < ops; ++i) {
        const bool rd = cpu.rng().below(100) < read_pct;
        if (rd) {
          lock.acquire_read(cpu);
          cpu.work(6000);
          lock.release_read(cpu);
        } else {
          lock.acquire_write(cpu);
          cpu.work(6000);
          lock.release_write(cpu);
        }
        cpu.work(20000);
      }
      if (cpu.seconds() > t) t = cpu.seconds();
    });
  } else if (kind == "hw") {
    sync::HardwareLock lock(*m);
    m->run([&](machine::Cpu& cpu) {
      for (int i = 0; i < ops; ++i) {
        lock.acquire(cpu);
        cpu.work(6000);
        lock.release(cpu);
        cpu.work(20000);
      }
      if (cpu.seconds() > t) t = cpu.seconds();
    });
  } else {
    static const std::map<std::string, sync::SpinLockKind> kinds = {
        {"tas", sync::SpinLockKind::kTestAndSet},
        {"tas-backoff", sync::SpinLockKind::kTestAndSetBackoff},
        {"ticket", sync::SpinLockKind::kTicket},
        {"anderson", sync::SpinLockKind::kAnderson},
        {"mcs-queue", sync::SpinLockKind::kMcsQueue}};
    const auto it = kinds.find(kind);
    if (it == kinds.end()) {
      std::fprintf(stderr, "unknown lock kind '%s'\n", kind.c_str());
      return 1;
    }
    auto lock = sync::make_spinlock(*m, it->second);
    m->run([&](machine::Cpu& cpu) {
      for (int i = 0; i < ops; ++i) {
        lock->acquire(cpu);
        cpu.work(6000);
        lock->release(cpu);
        cpu.work(20000);
      }
      if (cpu.seconds() > t) t = cpu.seconds();
    });
  }
  jo.finish();
  if (session.active()) session.collect(std::move(jo), kind);
  std::printf("%s lock, %u procs, %d ops/proc: %.4f s total, %.1f us/op\n",
              kind.c_str(), procs, ops, t,
              t / ops * 1e6);
  session.close();
  return session.ok() ? 0 : 1;
}

struct KernelRun {
  double seconds = 0.0;
  std::uint64_t events = 0;  // determinism fingerprint (events_dispatched)
  std::uint64_t quanta = 0;
  obs::JobObs obs;
};

KernelRun run_kernel_once(const obs::Session& session, const Args& args,
                          const std::string& name, unsigned procs) {
  auto m = machine::make_machine(make_config(args, procs));
  CheckScope check(args, *m);
  KernelRun r;
  r.obs = session.job();
  r.obs.attach(*m);
  if (name == "ep") {
    nas::EpConfig c;
    c.log2_pairs = args.get_u("log2-pairs", 13);
    r.seconds = run_ep(*m, c).seconds;
  } else if (name == "cg") {
    nas::CgConfig c;
    c.n = args.get_u("n", 1000);
    c.nnz_per_row = args.get_u("nnz-per-row", 24);
    c.iterations = args.get_u("iters", 4);
    r.seconds = run_cg(*m, c).seconds;
  } else if (name == "is") {
    nas::IsConfig c;
    c.log2_keys = args.get_u("log2-keys", 15);
    c.log2_buckets = args.get_u("log2-buckets", 10);
    c.pad_buckets = args.has("pad-buckets");
    const std::string save = args.get("checkpoint-at");
    const std::string load = args.get("restore-from");
    if (!save.empty() || !load.empty()) {
      // Split-phase flow (docs/CHECKPOINT.md): capture a checkpoint at the
      // warm-up boundary, or skip the warm-up entirely by restoring one.
      // The restoring invocation must pass the same machine flags
      // (--procs/--scale/--sim-threads/...) as the capturing one.
      nas::IsSplit split(*m, c);
      if (!load.empty()) {
        m->restore_from(load);
      } else {
        split.run_warmup();
        m->checkpoint_to(save);
        std::cerr << "checkpoint written to " << save << " ("
                  << m->engine().events_dispatched()
                  << " events at capture)\n";
      }
      r.seconds = split.run_ranked().seconds;
    } else {
      r.seconds = run_is(*m, c).seconds;
    }
  } else if (name == "sp") {
    nas::SpConfig c;
    c.n = args.get_u("n", 16);
    c.iterations = args.get_u("iters", 2);
    c.padded_layout = !args.has("no-padding");
    c.use_prefetch = !args.has("no-prefetch");
    r.seconds = run_sp(*m, c).total_seconds;
  } else if (name == "bt") {
    nas::BtConfig c;
    c.n = args.get_u("n", 10);
    c.iterations = args.get_u("iters", 2);
    r.seconds = run_bt(*m, c).total_seconds;
  } else {
    throw std::runtime_error("unknown kernel '" + name + "'");
  }
  if (name != "is" &&
      (args.has("checkpoint-at") || args.has("restore-from"))) {
    std::cerr << "warning: --checkpoint-at/--restore-from only apply to "
                 "--name is (the split-phase kernel); ignored\n";
  }
  r.obs.finish();
  r.events = m->engine().events_dispatched();
  r.quanta = m->parallel_engine().quanta();
  return r;
}

int cmd_kernel(const Args& args) {
  const std::string name = args.get("name", "cg");
  const unsigned procs = args.get_u("procs", 8);
  obs::Session session = make_session(args, "kernel");
  const auto wall0 = std::chrono::steady_clock::now();
  KernelRun r = run_kernel_once(session, args, name, procs);
  const auto wall_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - wall0)
                           .count();
  if (session.active()) {
    session.collect(std::move(r.obs), name + " p=" + std::to_string(procs));
  }
  // Same [host] line the bench binaries emit (bench/report.py HOST_RE):
  // events_dispatched is the determinism fingerprint.
  std::fprintf(stderr,
               "[host] bench=ksrsim_kernel events_dispatched=%llu "
               "wall_ms=%lld sim_threads=%u quanta=%llu\n",
               static_cast<unsigned long long>(r.events),
               static_cast<long long>(wall_ms), args.get_u("sim-threads", 1),
               static_cast<unsigned long long>(r.quanta));
  std::printf("%s on %u procs: %.5f simulated seconds\n", name.c_str(), procs,
              r.seconds);
  session.close();
  return session.ok() ? 0 : 1;
}

int cmd_sweep(const Args& args) {
  const std::string name = args.get("name", "cg");
  if (args.has("checkpoint-at") || args.has("restore-from")) {
    // Every sweep point has a different machine config, and a checkpoint
    // only restores onto the exact capturing config; one shared path would
    // either be overwritten per point or refuse every restore.
    std::cerr << "ksrsim sweep: --checkpoint-at/--restore-from are "
                 "kernel-command flags (one machine per file); use "
                 "`ksrsim kernel --name is` or bench_fig8_speedup "
                 "--warm-start for checkpointed sweeps\n";
    return 1;
  }
  const std::vector<unsigned> procs =
      args.get_list("procs", {1, 2, 4, 8, 16});
  // Every processor count is an independent simulation: shard them over
  // host threads (--jobs N, default one per core). Results merge in
  // submission order, so the table is bit-identical for any --jobs value.
  host::SweepRunner runner(args.get_u("jobs", 0));
  obs::Session session = make_session(args, "sweep");
  std::vector<std::function<KernelRun()>> jobs;
  jobs.reserve(procs.size());
  for (unsigned p : procs) {
    jobs.emplace_back([&args, &session, name, p] {
      return run_kernel_once(session, args, name, p);
    });
  }
  const auto wall0 = std::chrono::steady_clock::now();
  std::vector<KernelRun> seconds = runner.run(jobs);
  const auto wall_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - wall0)
                           .count();
  std::vector<std::pair<unsigned, double>> measured;
  std::uint64_t events = 0;
  std::uint64_t quanta = 0;
  for (std::size_t i = 0; i < procs.size(); ++i) {
    if (session.active()) {
      session.collect(std::move(seconds[i].obs),
                      name + " p=" + std::to_string(procs[i]));
    }
    measured.emplace_back(procs[i], seconds[i].seconds);
    events += seconds[i].events;
    quanta += seconds[i].quanta;
  }
  std::fprintf(stderr,
               "[host] bench=ksrsim_sweep events_dispatched=%llu "
               "wall_ms=%lld jobs=%u sim_threads=%u quanta=%llu\n",
               static_cast<unsigned long long>(events),
               static_cast<long long>(wall_ms), args.get_u("jobs", 0),
               args.get_u("sim-threads", 1),
               static_cast<unsigned long long>(quanta));
  study::TextTable t({"procs", "time (s)", "speedup", "efficiency",
                      "serial fraction"});
  for (const auto& row : study::scaling_rows(measured)) {
    t.add_row({std::to_string(row.p), study::TextTable::num(row.seconds, 5),
               study::TextTable::num(row.speedup, 3),
               row.p == 1 ? "-" : study::TextTable::num(row.efficiency, 3),
               row.p == 1 ? "-"
                          : study::TextTable::num(row.serial_fraction, 6)});
  }
  std::printf("%s scaling sweep:\n", name.c_str());
  if (args.has("csv")) {
    t.print_csv();
  } else {
    t.print();
  }
  session.close();
  return session.ok() ? 0 : 1;
}

// ----------------------------------------------------- serving commands

/// Translate the kernel-command flag vocabulary into a serve::JobSpec, so
/// `ksrsim submit --name is --procs 16 --scale 64` describes exactly the
/// job `ksrsim kernel` would run locally. Size fields left at 0 resolve to
/// the kernel defaults inside serve::execute.
serve::JobSpec spec_from_args(const Args& args) {
  serve::JobSpec s;
  s.machine = args.get("machine", "ksr1");
  s.procs = args.get_u("procs", 8);
  s.scale = args.get_u("scale", 1);
  s.snarf = !args.has("no-snarf");
  s.fuzz_seed = args.get_u64("fuzz-seed", 0);
  s.cells_per_leaf = args.get_u("cells-per-leaf", 0);
  s.cells_per_domain = args.get_u("cells-per-domain", 0);
  s.workload = args.get("name", "cg");
  s.seed = args.get_u64("seed", 0);
  s.log2_keys = args.get_u("log2-keys", 0);
  s.log2_buckets = args.get_u("log2-buckets", 0);
  s.pad_buckets = args.has("pad-buckets");
  s.n = args.get_u("n", 0);
  s.nnz_per_row = args.get_u("nnz-per-row", 0);
  s.iters = args.get_u("iters", 0);
  s.log2_pairs = args.get_u("log2-pairs", 0);
  s.restore_from = args.get("restore-from");
  return s;
}

int cmd_serve(const Args& args) {
  serve::SocketServer::Options opt;
  opt.socket_path = args.get("socket", "ksrsim.sock");
  opt.core.store_dir = args.get("store");
  opt.core.jobs = args.get_u("jobs", 0);
  opt.core.sim_threads = args.get_u("sim-threads", 1);
  serve::SocketServer server(opt);
  std::fprintf(stderr, "[serve] listening on %s (store=%s)\n",
               server.socket_path().c_str(),
               opt.core.store_dir.empty() ? "<memory>"
                                          : opt.core.store_dir.c_str());
  server.run();
  const serve::ServeCore::Counters c = server.core().counters();
  std::fprintf(stderr,
               "[serve] shutdown: hits=%llu misses=%llu stores=%llu "
               "inflight_dedup=%llu executed=%llu failures=%llu\n",
               static_cast<unsigned long long>(c.cache.hits),
               static_cast<unsigned long long>(c.cache.misses),
               static_cast<unsigned long long>(c.cache.stores),
               static_cast<unsigned long long>(c.inflight_dedup),
               static_cast<unsigned long long>(c.executed),
               static_cast<unsigned long long>(c.failures));
  const std::string metrics_csv = args.get("metrics-csv");
  if (!metrics_csv.empty()) {
    // Same counter,value CSV shape as the obs metrics exporter.
    std::ostringstream os;
    server.core().write_stats_csv(os);
    ckpt::atomic_write_file(metrics_csv, os.str());
  }
  return 0;
}

int cmd_submit(const Args& args) {
  const std::string path = args.get("socket", "ksrsim.sock");
  const std::string op = args.get("op", "submit");
  serve::Client client(path);
  std::string req;
  if (op == "submit") {
    serve::Json j = serve::Json::object();
    j.set("op", serve::Json::str("submit"));
    j.set("job", spec_from_args(args).to_json());
    req = j.dump();
  } else if (op == "ping" || op == "stats" || op == "shutdown") {
    req = "{\"op\":\"" + op + "\"}";
  } else {
    std::fprintf(stderr,
                 "ksrsim submit: unknown --op '%s' "
                 "(submit|ping|stats|shutdown)\n",
                 op.c_str());
    return 1;
  }
  client.send_line(req);
  const std::string resp = client.read_line();
  std::printf("%s\n", resp.c_str());
  return resp.rfind("{\"ok\":true", 0) == 0 ? 0 : 1;
}

int cmd_campaign(const Args& args) {
  std::string manifest_path = args.get("manifest");
  if (manifest_path.empty()) manifest_path = args.positional();
  if (manifest_path.empty()) {
    std::fprintf(stderr,
                 "ksrsim campaign: no manifest "
                 "(usage: ksrsim campaign manifest.json --store DIR)\n");
    return 1;
  }
  std::ifstream in(manifest_path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "ksrsim campaign: cannot read manifest '%s'\n",
                 manifest_path.c_str());
    return 1;
  }
  std::ostringstream text;
  text << in.rdbuf();
  std::string err;
  const serve::Json manifest = serve::Json::parse(text.str(), &err);
  if (!err.empty()) {
    std::fprintf(stderr, "ksrsim campaign: %s: %s\n", manifest_path.c_str(),
                 err.c_str());
    return 1;
  }
  serve::Campaign campaign;
  if (!serve::expand_manifest(manifest, &campaign, &err)) {
    std::fprintf(stderr, "ksrsim campaign: %s: %s\n", manifest_path.c_str(),
                 err.c_str());
    return 1;
  }
  serve::ServeCore::Options copt;
  copt.store_dir = args.get("store");
  copt.jobs = args.get_u("jobs", 0);
  copt.sim_threads = args.get_u("sim-threads", 1);
  serve::ServeCore core(copt);
  const std::string prefix = args.get("out", campaign.name);
  const serve::CampaignOutcome outcome =
      run_campaign(campaign, core, prefix);
  return outcome.failures == 0 ? 0 : 1;
}

int cmd_help() {
  std::puts(
      "ksrsim — drive the simulated KSR-1 from the command line\n"
      "\n"
      "commands:\n"
      "  probe    latency probes            [--machine M --procs P]\n"
      "  barrier  time a barrier algorithm  [--kind K --procs P --episodes E]\n"
      "  lock     time a lock               [--kind hw|rw|tas|tas-backoff|\n"
      "                                       ticket|anderson|mcs-queue\n"
      "                                       --read-pct N --ops N]\n"
      "  kernel   run one NAS kernel        [--name ep|cg|is|sp|bt --procs P]\n"
      "  sweep    scaling table             [--name K --procs 1,2,4,...\n"
      "                                       --jobs N  shard the sweep over\n"
      "                                       N host threads (default: one\n"
      "                                       per core; output is identical\n"
      "                                       for any N)]\n"
      "  serve    simulation-as-a-service daemon on an AF_UNIX socket\n"
      "           [--socket PATH --store DIR --jobs N --sim-threads N\n"
      "            --metrics-csv FILE]  (docs/SERVING.md; newline-delimited\n"
      "           JSON protocol; results cached content-addressed in DIR)\n"
      "  submit   send one request to a running daemon and print the\n"
      "           response line [--socket PATH --op submit|ping|stats|\n"
      "           shutdown, plus the kernel flags for --op submit]\n"
      "  campaign expand a declarative sweep manifest, run it through the\n"
      "           result cache, and write <out>.jsonl/<out>.csv\n"
      "           [MANIFEST.json --store DIR --out PREFIX --jobs N]\n"
      "\n"
      "common flags:\n"
      "  --machine ksr1|ksr2|symmetry|butterfly   (default ksr1)\n"
      "  --scale N      shrink caches by N (pair with smaller problems)\n"
      "  --no-snarf     disable read-snarfing\n"
      "  --csv          CSV output where applicable\n"
      "  --fuzz-seed N  perturb event tie-breaking and ring slot phases\n"
      "                 (deterministic per seed; 0 = reference schedule;\n"
      "                 see docs/CHECKING.md and tools/ksrfuzz)\n"
      "  --sim-threads N  host threads advancing each single simulation\n"
      "                 through the conservative-quantum engine (0 = one\n"
      "                 per core; results are bit-identical for any N;\n"
      "                 see docs/PARALLEL.md)\n"
      "  --check        audit ALLCACHE protocol invariants at end of run\n"
      "                 (every transition in -DKSR_CHECK=ON builds; see\n"
      "                 docs/CHECKING.md)\n"
      "\n"
      "observability (docs/OBSERVABILITY.md; never perturbs simulated time):\n"
      "  --trace [cat,...]    capture a structured event trace (categories:\n"
      "                       ring,coherence,sync,stall; default all)\n"
      "  --trace-out FILE     trace output (.json = Chrome/Perfetto trace\n"
      "                       events, .csv = CSV; default\n"
      "                       ksrsim_<cmd>_trace.json)\n"
      "  --trace-cap N        records per job buffer (default 2^18;\n"
      "                       overflow is counted in the drop footer)\n"
      "  --metrics-csv FILE   sampled machine-wide metrics time series\n"
      "  --report FILE        ksrprof simulated-time profile (sharing\n"
      "                       patterns, sync critical paths, stalls); see\n"
      "                       also tools/ksrprof for offline CSV analysis\n"
      "  --topo-report FILE   topology report: per-level ring utilization,\n"
      "                       directory-shard pressure, boundary channels,\n"
      "                       leaf-to-leaf traffic (+ FILE.matrix.csv\n"
      "                       heatmap; byte-stable across --jobs and\n"
      "                       --sim-threads; see also tools/ksrtop)\n"
      "\n"
      "kernel size flags: --log2-pairs (ep), --n/--nnz-per-row/--iters (cg),\n"
      "  --log2-keys/--log2-buckets (is, --pad-buckets pads per-cpu bucket\n"
      "  portions to sub-page boundaries), --n/--iters/--no-padding/\n"
      "  --no-prefetch (sp), --n/--iters (bt)\n"
      "\n"
      "checkpointing (kernel --name is only; docs/CHECKPOINT.md):\n"
      "  --checkpoint-at FILE  run the split-phase IS kernel and write a\n"
      "                        checkpoint of the quiesced machine at the\n"
      "                        warm-up boundary before the timed phases\n"
      "  --restore-from FILE   skip the warm-up: restore the machine from a\n"
      "                        checkpoint (same machine flags required) and\n"
      "                        run the timed phases bit-exactly");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return cmd_help();
  const std::string cmd = argv[1];
  const Args args(argc, argv);
  try {
    int rc = 0;
    if (cmd == "probe") rc = cmd_probe(args);
    else if (cmd == "barrier") rc = cmd_barrier(args);
    else if (cmd == "lock") rc = cmd_lock(args);
    else if (cmd == "kernel") rc = cmd_kernel(args);
    else if (cmd == "sweep") rc = cmd_sweep(args);
    else if (cmd == "serve") rc = cmd_serve(args);
    else if (cmd == "submit") rc = cmd_submit(args);
    else if (cmd == "campaign") rc = cmd_campaign(args);
    else rc = cmd_help();
    return g_check_failed && rc == 0 ? 1 : rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ksrsim: %s\n", e.what());
    return 1;
  }
}
