# Empty compiler generated dependencies file for test_nas_lu.
# This may be replaced when dependencies are built.
