#include "ksr/sync/barrier.hpp"

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "ksr/sync/atomic.hpp"
#include "ksr/sync/padded.hpp"

namespace ksr::sync {

namespace {

using machine::Cpu;
using machine::Machine;

[[nodiscard]] unsigned log2_ceil(unsigned n) noexcept {
  unsigned r = 0;
  while ((1u << r) < n) ++r;
  return r;
}

// ---------------------------------------------------------------------------
// counter — central counter + episode word on ONE sub-page. Spinners keep
// re-fetching the very sub-page every arriver locks: the hot spot.
// ---------------------------------------------------------------------------
class CounterBarrier final : public Barrier {
 public:
  explicit CounterBarrier(Machine& m)
      : Barrier(m.nproc()),
        nproc_(m.nproc()),
        meta_(m.alloc<std::uint32_t>("bar.counter", 2)),
        epoch_(m.nproc(), 0) {}

  void do_arrive(Cpu& cpu) override {
    const std::uint32_t e = ++epoch_[cpu.id()];
    cpu.get_subpage(meta_.addr(0));
    const std::uint32_t arrived = cpu.read(meta_, 0) + 1;
    if (arrived == nproc_) {
      cpu.write(meta_, 0, 0);  // reset for the next episode
      cpu.write(meta_, 1, e);  // completion becomes visible
      cpu.release_subpage(meta_.addr(0));
      return;
    }
    cpu.write(meta_, 0, arrived);
    cpu.release_subpage(meta_.addr(0));
    spin_until(cpu, [&] { return cpu.read(meta_, 1) >= e; });
  }

  [[nodiscard]] std::string_view name() const override { return "counter"; }

 private:
  unsigned nproc_;
  mem::SharedArray<std::uint32_t> meta_;
  std::vector<std::uint32_t> epoch_;
};

// ---------------------------------------------------------------------------
// tree / tree(M) — dynamic binary combining tree. A counter per pair node
// (its own sub-page, updated under get_subpage); the last arriver climbs.
// Wake-up: per-node flags down the same tree, or one global flag (M).
// ---------------------------------------------------------------------------
class TreeBarrier final : public Barrier {
 public:
  TreeBarrier(Machine& m, bool global_flag, bool use_poststore,
              std::string_view label)
      : Barrier(m.nproc()),
        nproc_(m.nproc()),
        global_flag_(global_flag),
        post_(use_poststore && m.config().has_poststore),
        label_(label),
        epoch_(m.nproc(), 0) {
    // Level sizes: n, ceil(n/2), ... 1.
    unsigned width = nproc_;
    while (width > 1) {
      level_offset_.push_back(static_cast<unsigned>(fanin_.size()));
      const unsigned nodes = (width + 1) / 2;
      for (unsigned j = 0; j < nodes; ++j) {
        fanin_.push_back(2 * j + 1 < width ? 2u : 1u);
      }
      width = nodes;
    }
    counters_ = Padded<std::uint32_t>(m, std::string(label) + ".cnt",
                                      fanin_.size());
    wakeup_ = Padded<std::uint32_t>(m, std::string(label) + ".wake",
                                    fanin_.size());
    global_ = Padded<std::uint32_t>(m, std::string(label) + ".flag", 1);
  }

  void do_arrive(Cpu& cpu) override {
    const std::uint32_t e = ++epoch_[cpu.id()];
    if (nproc_ == 1) return;

    std::vector<unsigned> won;  // nodes this cpu climbed past (it must wake)
    unsigned pos = cpu.id();
    bool waiting = false;
    unsigned stop_node = 0;

    for (unsigned level = 0; level < level_offset_.size(); ++level) {
      const unsigned node = level_offset_[level] + pos / 2;
      pos /= 2;
      if (fanin_[node] == 1) continue;  // odd processor passes through
      // fetch&increment under get_subpage (paper §3.2.2).
      cpu.get_subpage(counters_.addr(node));
      const std::uint32_t arrived = counters_.read(cpu, node) + 1;
      const bool last = arrived == fanin_[node];
      counters_.write(cpu, node, last ? 0 : arrived);
      cpu.release_subpage(counters_.addr(node));
      if (!last) {
        waiting = true;
        stop_node = node;
        break;
      }
      won.push_back(node);
    }

    if (!waiting) {
      // Champion: release everybody.
      if (global_flag_) {
        global_.write_post(cpu, 0, e, post_);
        return;
      }
      for (auto it = won.rbegin(); it != won.rend(); ++it) {
        wakeup_.write_post(cpu, *it, e, post_);
      }
      return;
    }

    if (global_flag_) {
      spin_until(cpu, [&] { return global_.read(cpu, 0) >= e; });
      return;
    }
    spin_until(cpu, [&] { return wakeup_.read(cpu, stop_node) >= e; });
    for (auto it = won.rbegin(); it != won.rend(); ++it) {
      wakeup_.write_post(cpu, *it, e, post_);
    }
  }

  [[nodiscard]] std::string_view name() const override { return label_; }

 private:
  unsigned nproc_;
  bool global_flag_;
  bool post_;
  std::string label_;
  std::vector<unsigned> level_offset_;
  std::vector<unsigned> fanin_;
  Padded<std::uint32_t> counters_;
  Padded<std::uint32_t> wakeup_;
  Padded<std::uint32_t> global_;
  std::vector<std::uint32_t> epoch_;
};

// ---------------------------------------------------------------------------
// dissemination — ceil(log2 P) rounds; in round r processor i signals
// (i + 2^r) mod P and waits for its own flag. O(P log P) distinct messages,
// but every round's P messages can ride the pipelined ring in parallel.
// ---------------------------------------------------------------------------
class DisseminationBarrier final : public Barrier {
 public:
  explicit DisseminationBarrier(Machine& m)
      : Barrier(m.nproc()),
        nproc_(m.nproc()),
        rounds_(log2_ceil(m.nproc())),
        flags_(m, "bar.diss", static_cast<std::size_t>(m.nproc()) *
                                  std::max(rounds_, 1u),
               std::max(rounds_, 1u)),
        epoch_(m.nproc(), 0) {}

  void do_arrive(Cpu& cpu) override {
    const std::uint32_t e = ++epoch_[cpu.id()];
    const unsigned me = cpu.id();
    for (unsigned r = 0; r < rounds_; ++r) {
      const unsigned partner = (me + (1u << r)) % nproc_;
      flags_.write(cpu, partner * rounds_ + r, e);
      spin_until(cpu, [&] { return flags_.read(cpu, me * rounds_ + r) >= e; });
    }
  }

  [[nodiscard]] std::string_view name() const override {
    return "dissemination";
  }

 private:
  unsigned nproc_;
  unsigned rounds_;
  Padded<std::uint32_t> flags_;
  std::vector<std::uint32_t> epoch_;
};

// ---------------------------------------------------------------------------
// tournament / tournament(M) — statically determined binary tree. In round r
// processor w (bit r clear) hosts the match; the loser (bit r set) posts its
// arrival at the winner and waits. Each pair's communication is one
// cache-line transfer, and all matches of a round proceed in parallel on the
// pipelined ring — the property that makes this barrier win on the KSR-1.
// ---------------------------------------------------------------------------
class TournamentBarrier final : public Barrier {
 public:
  TournamentBarrier(Machine& m, bool global_flag, bool use_poststore,
                    std::string_view label)
      : Barrier(m.nproc()),
        nproc_(m.nproc()),
        rounds_(log2_ceil(m.nproc())),
        global_flag_(global_flag),
        post_(use_poststore && m.config().has_poststore),
        label_(label),
        arrival_(m, std::string(label) + ".arr",
                 static_cast<std::size_t>(m.nproc()) * std::max(rounds_, 1u),
                 std::max(rounds_, 1u)),
        wakeup_(m, std::string(label) + ".wake", m.nproc()),
        global_(m, std::string(label) + ".flag", 1),
        epoch_(m.nproc(), 0) {}

  void do_arrive(Cpu& cpu) override {
    const std::uint32_t e = ++epoch_[cpu.id()];
    const unsigned me = cpu.id();
    unsigned lost_round = rounds_;

    for (unsigned r = 0; r < rounds_; ++r) {
      if ((me & (1u << r)) != 0) {
        const unsigned winner = me - (1u << r);
        arrival_.write(cpu, winner * rounds_ + r, e);
        lost_round = r;
        break;
      }
      const unsigned loser = me + (1u << r);
      if (loser < nproc_) {
        spin_until(cpu,
                   [&] { return arrival_.read(cpu, me * rounds_ + r) >= e; });
      }
    }

    const bool champion = lost_round == rounds_ && me == 0;
    if (champion) {
      if (global_flag_) {
        global_.write_post(cpu, 0, e, post_);
        return;
      }
    } else {
      if (global_flag_) {
        spin_until(cpu, [&] { return global_.read(cpu, 0) >= e; });
        return;
      }
      spin_until(cpu, [&] { return wakeup_.read(cpu, me) >= e; });
    }

    // Wake the losers of the rounds below (reverse order: top of my subtree
    // first). The champion walks all rounds; a loser walks those it won.
    const unsigned top = champion ? rounds_ : lost_round;
    for (unsigned r = top; r-- > 0;) {
      const unsigned loser = me + (1u << r);
      if (loser < nproc_) wakeup_.write_post(cpu, loser, e, post_);
    }
  }

  [[nodiscard]] std::string_view name() const override { return label_; }

 private:
  unsigned nproc_;
  unsigned rounds_;
  bool global_flag_;
  bool post_;
  std::string label_;
  Padded<std::uint32_t> arrival_;
  Padded<std::uint32_t> wakeup_;
  Padded<std::uint32_t> global_;
  std::vector<std::uint32_t> epoch_;
};

// ---------------------------------------------------------------------------
// MCS / MCS(M) — 4-ary arrival tree; the four children of a node indicate
// arrival by writing DESIGNATED BYTES OF ONE 32-BIT WORD. On an
// invalidation-based machine the four writes false-share the word's
// sub-page and serialize into four ring transactions — the §3.2.2 analysis.
// Wake-up uses a binary tree (or the global flag in the (M) variant).
// ---------------------------------------------------------------------------
class McsBarrier final : public Barrier {
 public:
  McsBarrier(Machine& m, bool global_flag, bool use_poststore,
             std::string_view label)
      : Barrier(m.nproc()),
        nproc_(m.nproc()),
        global_flag_(global_flag),
        post_(use_poststore && m.config().has_poststore),
        label_(label),
        // One sub-page per tree node; the node's 4 child bytes are PACKED at
        // its start. (Deliberately not one byte per sub-page.)
        childnotready_(m.alloc<std::uint8_t>(
            std::string(label) + ".cnr",
            static_cast<std::size_t>(m.nproc()) * mem::kSubPageBytes,
            machine::Placement::blocked(mem::kSubPageBytes))),
        wakeup_(m, std::string(label) + ".wake", m.nproc()),
        global_(m, std::string(label) + ".flag", 1),
        epoch_(m.nproc(), 0) {}

  void do_arrive(Cpu& cpu) override {
    const std::uint32_t e = ++epoch_[cpu.id()];
    const unsigned me = cpu.id();
    const auto marker = static_cast<std::uint8_t>(e);

    // Wait for my (up to four) arrival children.
    for (unsigned k = 0; k < 4; ++k) {
      const unsigned child = 4 * me + 1 + k;
      if (child >= nproc_) break;
      const std::size_t byte = static_cast<std::size_t>(me) *
                                   mem::kSubPageBytes + k;
      spin_until(cpu, [&] { return cpu.read(childnotready_, byte) == marker; });
    }

    if (me != 0) {
      // Tell my parent — one byte of its packed word (false sharing!).
      const unsigned parent = (me - 1) / 4;
      const std::size_t byte =
          static_cast<std::size_t>(parent) * mem::kSubPageBytes +
          (me - 1) % 4;
      cpu.write(childnotready_, byte, marker);

      if (global_flag_) {
        spin_until(cpu, [&] { return global_.read(cpu, 0) >= e; });
        return;
      }
      spin_until(cpu, [&] { return wakeup_.read(cpu, me) >= e; });
    } else if (global_flag_) {
      global_.write_post(cpu, 0, e, post_);
      return;
    }

    // Binary wake-up tree.
    for (unsigned c : {2 * me + 1, 2 * me + 2}) {
      if (c < nproc_) wakeup_.write_post(cpu, c, e, post_);
    }
  }

  [[nodiscard]] std::string_view name() const override { return label_; }

 private:
  unsigned nproc_;
  bool global_flag_;
  bool post_;
  std::string label_;
  mem::SharedArray<std::uint8_t> childnotready_;
  Padded<std::uint32_t> wakeup_;
  Padded<std::uint32_t> global_;
  std::vector<std::uint32_t> epoch_;
};

// ---------------------------------------------------------------------------
// system — the vendor pthread barrier. Measures like the dynamic tree with
// global wake-up flag plus library-call overhead (paper Fig. 4 discussion).
// ---------------------------------------------------------------------------
class SystemBarrier final : public Barrier {
 public:
  explicit SystemBarrier(Machine& m)
      : Barrier(m.nproc()),
        inner_(m, /*global_flag=*/true, /*use_poststore=*/true, "bar.system") {}

  void do_arrive(Cpu& cpu) override {
    cpu.work(120);  // library entry: argument checks, descriptor lookup
    inner_.arrive(cpu);
    cpu.work(80);  // library exit
  }

  [[nodiscard]] std::string_view name() const override { return "system"; }

 private:
  TreeBarrier inner_;
};

}  // namespace

std::vector<BarrierKind> all_barrier_kinds() {
  return {BarrierKind::kSystem,      BarrierKind::kCounter,
          BarrierKind::kTree,        BarrierKind::kTreeM,
          BarrierKind::kDissemination, BarrierKind::kTournament,
          BarrierKind::kTournamentM, BarrierKind::kMcs,
          BarrierKind::kMcsM};
}

std::unique_ptr<Barrier> make_barrier(machine::Machine& m, BarrierKind kind,
                                      bool use_poststore) {
  switch (kind) {
    case BarrierKind::kCounter:
      return std::make_unique<CounterBarrier>(m);
    case BarrierKind::kTree:
      return std::make_unique<TreeBarrier>(m, false, use_poststore, "tree");
    case BarrierKind::kTreeM:
      return std::make_unique<TreeBarrier>(m, true, use_poststore, "tree(M)");
    case BarrierKind::kDissemination:
      return std::make_unique<DisseminationBarrier>(m);
    case BarrierKind::kTournament:
      return std::make_unique<TournamentBarrier>(m, false, use_poststore,
                                                 "tournament");
    case BarrierKind::kTournamentM:
      return std::make_unique<TournamentBarrier>(m, true, use_poststore,
                                                 "tournament(M)");
    case BarrierKind::kMcs:
      return std::make_unique<McsBarrier>(m, false, use_poststore, "MCS");
    case BarrierKind::kMcsM:
      return std::make_unique<McsBarrier>(m, true, use_poststore, "MCS(M)");
    case BarrierKind::kSystem:
      return std::make_unique<SystemBarrier>(m);
  }
  return nullptr;
}

}  // namespace ksr::sync
