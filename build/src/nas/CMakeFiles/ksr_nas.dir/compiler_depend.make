# Empty compiler generated dependencies file for ksr_nas.
# This may be replaced when dependencies are built.
