file(REMOVE_RECURSE
  "libksr_sync.a"
)
