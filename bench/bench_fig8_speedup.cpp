// Reproduces Fig. 8 ("Speedup for CG and IS"): the two speedup curves on
// one axis, P = 1..32. (The underlying runs are the Table 1 / Table 2
// configurations; this binary prints just the figure's two series.)
//
// One SweepRunner job per (kernel, P) run, merged in submission order.
#include "bench_common.hpp"
#include "ksr/machine/ksr_machine.hpp"
#include "ksr/nas/cg.hpp"
#include "ksr/nas/is.hpp"

namespace {

struct Run {
  double seconds = 0.0;
  ksr::obs::JobObs obs;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace ksr;         // NOLINT
  using namespace ksr::bench;  // NOLINT

  const BenchOptions opt = BenchOptions::parse(argc, argv);
  obs::Session session = make_obs_session(opt, "fig8_speedup");
  SweepRunner runner(opt.jobs);
  print_header("Speedup for CG and IS", "Fig. 8, Section 3.3");

  nas::CgConfig cg;
  cg.n = opt.quick ? 600 : 1750;
  cg.nnz_per_row = opt.quick ? 24 : 72;
  cg.iterations = opt.quick ? 2 : 4;
  nas::IsConfig is;
  is.log2_keys = opt.quick ? 13 : 16;
  is.log2_buckets = opt.quick ? 9 : 11;

  const std::vector<unsigned> procs =
      opt.quick ? std::vector<unsigned>{1, 4, 16}
                : std::vector<unsigned>{1, 2, 4, 8, 16, 24, 32};

  std::vector<std::function<Run()>> jobs;
  jobs.reserve(2 * procs.size());
  for (unsigned p : procs) {
    jobs.emplace_back([p, cg, &session] {
      machine::KsrMachine m(machine::MachineConfig::ksr1(p).scaled_by(64));
      Run r;
      r.obs = session.job();
      r.obs.attach(m);
      r.seconds = run_cg(m, cg).seconds;
      r.obs.finish();
      return r;
    });
    jobs.emplace_back([p, is, &session] {
      machine::KsrMachine m(machine::MachineConfig::ksr1(p).scaled_by(64));
      Run r;
      r.obs = session.job();
      r.obs.attach(m);
      r.seconds = run_is(m, is).seconds;
      r.obs.finish();
      return r;
    });
  }
  std::vector<Run> seconds = runner.run(jobs);

  std::vector<std::pair<unsigned, double>> cg_t, is_t;
  for (std::size_t i = 0; i < procs.size(); ++i) {
    if (session.active()) {
      const std::string p = std::to_string(procs[i]);
      session.collect(std::move(seconds[2 * i].obs), "cg p=" + p);
      session.collect(std::move(seconds[2 * i + 1].obs), "is p=" + p);
    }
    cg_t.emplace_back(procs[i], seconds[2 * i].seconds);
    is_t.emplace_back(procs[i], seconds[2 * i + 1].seconds);
  }
  const auto cg_rows = study::scaling_rows(cg_t);
  const auto is_rows = study::scaling_rows(is_t);

  TextTable t({"procs", "CG speedup", "IS speedup"});
  for (std::size_t i = 0; i < procs.size(); ++i) {
    t.add_row({std::to_string(procs[i]), TextTable::num(cg_rows[i].speedup, 2),
               TextTable::num(is_rows[i].speedup, 2)});
  }
  if (opt.csv) {
    t.print_csv();
  } else {
    t.print();
    std::cout << "\nPaper expectations (Fig. 8): both rise to ~16 processors;"
                 "\nCG reaches the low twenties at 32 while IS flattens near"
                 " 19 and\ndips slightly from 30 to 32 (ring saturation).\n";
  }
  return 0;
}
