// Regression locks for the paper's qualitative results: small, fast
// versions of the headline shape claims. If a model change breaks one of
// these, the corresponding figure/table reproduction has regressed.
#include <gtest/gtest.h>

#include <map>

#include "ksr/machine/bus_machine.hpp"
#include "ksr/machine/butterfly_machine.hpp"
#include "ksr/machine/ksr_machine.hpp"
#include "ksr/nas/cg.hpp"
#include "ksr/nas/is.hpp"
#include "ksr/nas/sp.hpp"
#include "ksr/study/metrics.hpp"
#include "ksr/sync/barrier.hpp"

namespace ksr {
namespace {

using machine::Cpu;
using machine::KsrMachine;
using machine::MachineConfig;

template <typename MachineT>
double episode_us(MachineT& m, sync::BarrierKind kind, int episodes = 8) {
  auto barrier = sync::make_barrier(m, kind);
  double t = 0;
  m.run([&](Cpu& cpu) {
    barrier->arrive(cpu);
    const double t0 = cpu.seconds();
    for (int e = 0; e < episodes; ++e) {
      cpu.work(cpu.rng().below(500));
      barrier->arrive(cpu);
    }
    if (cpu.seconds() - t0 > t) t = cpu.seconds() - t0;
  });
  return t / episodes * 1e6;
}

// Fig. 4: at 16+ processors the (M) variants beat their tree-notification
// counterparts, and everything beats the counter.
TEST(PaperShapes, GlobalFlagVariantsWinOnKsr1) {
  std::map<sync::BarrierKind, double> t;
  for (sync::BarrierKind k : sync::all_barrier_kinds()) {
    KsrMachine m(MachineConfig::ksr1(16));
    t[k] = episode_us(m, k);
  }
  EXPECT_LT(t[sync::BarrierKind::kTreeM], t[sync::BarrierKind::kTree]);
  EXPECT_LT(t[sync::BarrierKind::kTournamentM],
            t[sync::BarrierKind::kTournament]);
  EXPECT_LT(t[sync::BarrierKind::kMcsM], t[sync::BarrierKind::kMcs]);
  for (sync::BarrierKind k : sync::all_barrier_kinds()) {
    if (k != sync::BarrierKind::kCounter) {
      EXPECT_LT(t[k], t[sync::BarrierKind::kCounter]) << to_string(k);
    }
  }
  // Plain tournament and MCS "have almost identical performance" (§3.2.2).
  const double ratio =
      t[sync::BarrierKind::kTournament] / t[sync::BarrierKind::kMcs];
  EXPECT_GT(ratio, 0.66);
  EXPECT_LT(ratio, 1.5);
}

// Fig. 5 / §3.2.4: crossing the 32-cell ring boundary costs a visible jump.
TEST(PaperShapes, RingBoundaryJumpOnKsr2) {
  KsrMachine m32(MachineConfig::ksr2(32));
  KsrMachine m40(MachineConfig::ksr2(40));
  const double at32 = episode_us(m32, sync::BarrierKind::kTournamentM);
  const double at40 = episode_us(m40, sync::BarrierKind::kTournamentM);
  EXPECT_GT(at40, at32 * 1.15);  // 8 more cells, far more than linear cost
}

// §3.2.3: dissemination wins on the Butterfly (parallel paths, no caches).
TEST(PaperShapes, DisseminationWinsOnButterfly) {
  std::map<sync::BarrierKind, double> t;
  for (sync::BarrierKind k :
       {sync::BarrierKind::kDissemination, sync::BarrierKind::kTournament,
        sync::BarrierKind::kMcs, sync::BarrierKind::kCounter}) {
    machine::ButterflyMachine m(MachineConfig::butterfly(16));
    t[k] = episode_us(m, k);
  }
  EXPECT_LT(t[sync::BarrierKind::kDissemination],
            t[sync::BarrierKind::kTournament]);
  EXPECT_LT(t[sync::BarrierKind::kTournament], t[sync::BarrierKind::kCounter]);
  EXPECT_LT(t[sync::BarrierKind::kMcs], t[sync::BarrierKind::kCounter]);
}

// §3.2.3: on the bus, MCS(M) beats tournament(M) (4-ary arrival halves the
// critical path; serialization voids the parallel-path advantage).
TEST(PaperShapes, McsMBeatsTournamentMOnSymmetry) {
  machine::BusMachine m1(MachineConfig::symmetry(16));
  const double mcs = episode_us(m1, sync::BarrierKind::kMcsM);
  machine::BusMachine m2(MachineConfig::symmetry(16));
  const double tourn = episode_us(m2, sync::BarrierKind::kTournamentM);
  EXPECT_LT(mcs, tourn);
}

// Table 1: CG shows a superunitary region once partitions fit in cache.
TEST(PaperShapes, CgSuperunitaryRegion) {
  // The Table 1 configuration: working set ~3x one cell's scaled local
  // cache, fitting once partitioned 4 ways.
  nas::CgConfig cfg;
  cfg.n = 1750;
  cfg.nnz_per_row = 72;
  cfg.iterations = 3;
  auto t_at = [&](unsigned p) {
    KsrMachine m(MachineConfig::ksr1(p).scaled_by(64));
    return run_cg(m, cfg).seconds;
  };
  const double t1 = t_at(1);
  const double t4 = t_at(4);
  EXPECT_GT(t1 / t4, 4.0);  // efficiency > 1 somewhere below 8 procs
}

// Table 4: padding beats base; poststore does not beat padded+prefetch.
TEST(PaperShapes, SpOptimizationDirections) {
  auto run_with = [](bool padded, bool poststore) {
    nas::SpConfig cfg;
    cfg.n = 16;
    cfg.iterations = 1;
    cfg.padded_layout = padded;
    cfg.use_prefetch = padded;  // ladder order
    cfg.use_poststore = poststore;
    KsrMachine m(MachineConfig::ksr1(8).scaled_by(16));
    return run_sp(m, cfg).seconds_per_iteration;
  };
  const double base = run_with(false, false);
  const double padded = run_with(true, false);
  const double post = run_with(true, true);
  EXPECT_LT(padded, base);
  EXPECT_GE(post, padded * 0.999);  // poststore never a clear win here
}

// Table 2: IS serial fraction grows with processors.
TEST(PaperShapes, IsSerialFractionGrows) {
  nas::IsConfig cfg;
  cfg.log2_keys = 13;
  cfg.log2_buckets = 9;
  auto t_at = [&](unsigned p) {
    KsrMachine m(MachineConfig::ksr1(p).scaled_by(64));
    return run_is(m, cfg).seconds;
  };
  const double t1 = t_at(1);
  const double s8 = t1 / t_at(8);
  const double s32 = t1 / t_at(32);
  const double f8 = study::karp_flatt(s8, 8);
  const double f32 = study::karp_flatt(s32, 32);
  EXPECT_GT(f32, f8);
}

}  // namespace
}  // namespace ksr
