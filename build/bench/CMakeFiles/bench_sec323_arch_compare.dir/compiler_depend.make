# Empty compiler generated dependencies file for bench_sec323_arch_compare.
# This may be replaced when dependencies are built.
