#include "ksr/obs/metrics.hpp"

#include <cstdio>
#include <ostream>
#include <string>

namespace ksr::obs {

cache::PerfMonitor MetricsRegistry::aggregate(machine::Machine& m) {
  cache::PerfMonitor total;
  for (unsigned c = 0; c < m.nproc(); ++c) total.add(m.cell_pmon(c));
  return total;
}

void MetricsRegistry::sample_now() {
  MetricsSample s;
  s.t = machine_->engine().now();
  s.pmon = aggregate(*machine_);
  s.net = machine_->net_snapshot();
  samples_.push_back(s);
}

void MetricsRegistry::arm() {
  machine_->engine().observe_in(period_, [this] {
    sample_now();
    arm();
  });
}

void MetricsRegistry::attach(machine::Machine& m, sim::Duration period_ns) {
  machine_ = &m;
  period_ = period_ns ? period_ns : kDefaultPeriodNs;
  if (m.multi_domain()) {
    // A periodic observer fires on one domain's thread but reads pmon and
    // ring counters owned by every domain — a host race under the parallel
    // engine. Multi-domain runs therefore keep only the final quiescent
    // sample that finish() takes after the run (warned once per process).
    static bool warned = false;
    if (!warned) {
      warned = true;
      std::fprintf(stderr,
                   "warning: metrics time series is disabled on multi-domain "
                   "runs (cross-domain counter sampling would race); only "
                   "the final sample is recorded\n");
    }
    return;
  }
  arm();
}

void MetricsRegistry::finish() {
  if (machine_ == nullptr) return;
  if (samples_.empty() || samples_.back().t != machine_->engine().now()) {
    sample_now();
  }
}

void MetricsRegistry::write_csv(std::ostream& os, std::string_view label,
                                bool header) const {
  if (header) {
    if (!label.empty()) os << "job,";
    os << "time_ns,slot_util,d_ring_requests,d_ring_nacks,nack_rate,"
          "d_inject_wait_ns,wait_per_req_ns,d_localcache_misses,"
          "d_invalidations,d_snarfs\n";
  }
  cache::PerfMonitor prev_pmon;
  machine::NetSnapshot prev_net;
  char buf[64];
  auto ratio = [&buf](std::uint64_t num, std::uint64_t den) {
    std::snprintf(buf, sizeof buf, "%.6f",
                  den ? static_cast<double>(num) / static_cast<double>(den)
                      : 0.0);
    return std::string(buf);
  };
  for (const MetricsSample& s : samples_) {
    const std::uint64_t d_req = s.pmon.ring_requests - prev_pmon.ring_requests;
    const std::uint64_t d_nack = s.pmon.ring_nacks - prev_pmon.ring_nacks;
    const sim::Duration d_wait = s.net.inject_wait_ns - prev_net.inject_wait_ns;
    if (!label.empty()) os << label << ',';
    os << s.t << ',' << ratio(s.net.in_flight, s.net.slots) << ',' << d_req
       << ',' << d_nack << ',' << ratio(d_nack, d_req) << ',' << d_wait << ','
       << ratio(d_wait, d_req) << ','
       << s.pmon.localcache_misses - prev_pmon.localcache_misses << ','
       << s.pmon.invalidations_received - prev_pmon.invalidations_received
       << ',' << s.pmon.snarfs - prev_pmon.snarfs << '\n';
    prev_pmon = s.pmon;
    prev_net = s.net;
  }
}

}  // namespace ksr::obs
