// ParallelEngine: conservative-quantum multi-domain execution must be a
// pure host-side optimisation (docs/PARALLEL.md). For any thread count the
// engine must dispatch exactly the same events at exactly the same simulated
// times in exactly the same order — pinned here three ways:
//  - per-domain execution logs of a synthetic cross-domain workload,
//    byte-compared across --sim-threads {1,2,4} (and across fuzz seeds);
//  - quantum-boundary edge cases: a packet landing exactly on the quantum
//    edge, an empty domain, the single-domain degenerate shapes, and the
//    lookahead-violation guard;
//  - whole-machine fingerprints (events_dispatched, end time, simulated
//    seconds) and trace CSV bytes for barrier and Integer Sort workloads at
//    sim_threads {1,2,4}, plus an ALLCACHE invariant audit under the
//    parallel engine.
// The same binary is re-run under TSan in -DKSR_TSAN=ON builds
// (tsan_parallel_engine), auditing the worker pool and the static
// domain->thread assignment for host races.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "ksr/check/checker.hpp"
#include "ksr/machine/ksr_machine.hpp"
#include "ksr/nas/is.hpp"
#include "ksr/obs/tracer.hpp"
#include "ksr/sim/engine.hpp"
#include "ksr/sim/parallel_engine.hpp"
#include "ksr/sync/barrier.hpp"

namespace ksr {
namespace {

// ------------------------------------------------------- synthetic workload

// One log per domain, appended only by events executing in that domain (so
// logging is race-free by the engine's own partitioning). Entries record
// (simulated time, tag): tag >= 0 is a chain step, -src-1 a boundary packet.
using DomainLog = std::vector<std::pair<sim::Time, int>>;

struct Ping {
  sim::ParallelEngine* pe;
  std::vector<DomainLog>* logs;
  unsigned dst;
  int src;
  void operator()() const {
    (*logs)[dst].emplace_back(pe->domain(dst).now(), -src - 1);
  }
};

// Self-rescheduling event chain in one domain. Every step logs; every fifth
// step sends a boundary packet one full quantum ahead (the tightest send the
// lookahead rule admits) to domain 0 — all domains target domain 0 at the
// *same* simulated time, so the barrier merge's tie-break order is exercised
// every round.
struct Chain {
  sim::ParallelEngine* pe;
  std::vector<DomainLog>* logs;
  unsigned d;
  int remaining;
  sim::Time t;
  static constexpr sim::Duration kQuantum = 500;

  void operator()() const {
    (*logs)[d].emplace_back(pe->domain(d).now(), remaining);
    if (remaining == 0) return;
    Chain next = *this;
    next.remaining = remaining - 1;
    next.t = t + 70;
    pe->domain(d).at(next.t, next);
    if (remaining % 5 == 0) {
      pe->send(d, 0, t + kQuantum, Ping{pe, logs, 0, static_cast<int>(d)});
    }
  }
};

struct SyntheticRun {
  std::vector<DomainLog> logs;
  std::uint64_t events = 0;
  std::uint64_t quanta = 0;
  std::uint64_t boundary = 0;
};

SyntheticRun run_synthetic(unsigned threads, std::uint64_t seed = 0,
                           unsigned domains = 4, int steps = 40) {
  sim::ParallelEngine::Config cfg;
  cfg.domains = domains;
  cfg.threads = threads;
  cfg.quantum_ns = Chain::kQuantum;
  sim::ParallelEngine pe(cfg);
  pe.set_tie_break_seed(seed);
  SyntheticRun out;
  out.logs.resize(domains);
  for (unsigned d = 0; d < domains; ++d) {
    pe.domain(d).at(0, Chain{&pe, &out.logs, d, steps, 0});
  }
  pe.run();
  out.events = pe.events_dispatched();
  out.quanta = pe.quanta();
  out.boundary = pe.boundary_packets();
  return out;
}

TEST(ParallelEngine, MultiDomainRunIsBitIdenticalAcrossThreadCounts) {
  const SyntheticRun t1 = run_synthetic(1);
  const SyntheticRun t2 = run_synthetic(2);
  const SyntheticRun t4 = run_synthetic(4);
  ASSERT_GT(t1.events, 0u);
  ASSERT_GT(t1.boundary, 0u);  // the workload must cross domains
  ASSERT_GT(t1.quanta, 1u);    // ...across more than one quantum
  EXPECT_EQ(t1.events, t2.events);
  EXPECT_EQ(t1.events, t4.events);
  EXPECT_EQ(t1.quanta, t2.quanta);
  EXPECT_EQ(t1.quanta, t4.quanta);
  EXPECT_EQ(t1.boundary, t2.boundary);
  EXPECT_EQ(t1.boundary, t4.boundary);
  EXPECT_EQ(t1.logs, t2.logs);
  EXPECT_EQ(t1.logs, t4.logs);
}

TEST(ParallelEngine, FuzzSeedsReplayIdenticallyAtAnyThreadCount) {
  for (const std::uint64_t seed : {std::uint64_t{1}, std::uint64_t{0xDEAD}}) {
    const SyntheticRun t1 = run_synthetic(1, seed);
    const SyntheticRun t2 = run_synthetic(2, seed);
    const SyntheticRun t4 = run_synthetic(4, seed);
    EXPECT_EQ(t1.logs, t2.logs) << "seed=" << seed;
    EXPECT_EQ(t1.logs, t4.logs) << "seed=" << seed;
    EXPECT_EQ(t1.events, t2.events) << "seed=" << seed;
    EXPECT_EQ(t1.events, t4.events) << "seed=" << seed;
  }
}

TEST(ParallelEngine, ThreadCountBeyondDomainsIsClampedAndIdentical) {
  const SyntheticRun ref = run_synthetic(1);
  const SyntheticRun wide = run_synthetic(16);  // > domains + 1
  EXPECT_EQ(ref.logs, wide.logs);
  EXPECT_EQ(ref.events, wide.events);
}

// --------------------------------------------------------- quantum edges

TEST(ParallelEngine, PacketExactlyOnQuantumEdgeIsDelivered) {
  sim::ParallelEngine::Config cfg;
  cfg.domains = 2;
  cfg.threads = 2;
  cfg.quantum_ns = 100;
  sim::ParallelEngine pe(cfg);
  std::vector<sim::Time> delivered;
  // Event at t=50 (quantum [0,100)) sends to exactly t=100 — the first
  // admissible instant, the exclusive horizon of the sender's quantum and
  // the inclusive start of the next.
  pe.domain(0).at(50, [&pe, &delivered] {
    pe.send(0, 1, 100, [&pe, &delivered] {
      delivered.push_back(pe.domain(1).now());
    });
  });
  pe.run();
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0], 100u);
  EXPECT_EQ(pe.boundary_packets(), 1u);
}

TEST(ParallelEngine, LookaheadViolationThrows) {
  sim::ParallelEngine::Config cfg;
  cfg.domains = 2;
  cfg.threads = 1;
  cfg.quantum_ns = 100;
  sim::ParallelEngine pe(cfg);
  pe.domain(0).at(50, [&pe] {
    pe.send(0, 1, 99, [] {});  // t < horizon (100): conservative rule broken
  });
  EXPECT_THROW(pe.run(), std::logic_error);
}

TEST(ParallelEngine, EmptyDomainsAreHarmless) {
  sim::ParallelEngine::Config cfg;
  cfg.domains = 4;
  cfg.threads = 4;
  cfg.quantum_ns = 100;
  sim::ParallelEngine pe(cfg);
  int ran = 0;
  pe.domain(2).at(10, [&ran] { ++ran; });  // domains 0, 1, 3 stay empty
  pe.run();
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(pe.events_dispatched(), 1u);
}

TEST(ParallelEngine, SetupPhaseSendSeedsDestinationDirectly) {
  sim::ParallelEngine::Config cfg;
  cfg.domains = 2;
  cfg.threads = 1;
  cfg.quantum_ns = 100;
  sim::ParallelEngine pe(cfg);
  sim::Time seen = 0;
  pe.send(1, 0, 7, [&pe, &seen] { seen = pe.domain(0).now(); });  // t < Δ: fine
  pe.run();
  EXPECT_EQ(seen, 7u);
  EXPECT_EQ(pe.boundary_packets(), 0u);  // setup sends bypass the channels
}

// ------------------------------------------------- degenerate shapes

TEST(ParallelEngine, SingleDomainMatchesPlainEngine) {
  auto workload = [](sim::Engine& eng) {
    int sink = 0;
    for (int i = 0; i < 200; ++i) {
      eng.at(static_cast<sim::Time>(i) * 3, [&sink] { ++sink; });
    }
    eng.spawn([&eng] {
      for (int i = 0; i < 50; ++i) eng.wait_until(eng.now() + 11);
    });
  };
  sim::Engine plain;
  workload(plain);
  plain.run();

  for (unsigned threads : {1u, 4u}) {
    sim::ParallelEngine::Config cfg;
    cfg.domains = 1;
    cfg.threads = threads;  // threads > 1: runs whole-sim on a worker thread
    sim::ParallelEngine pe(cfg);
    pe.domain(0).set_tie_break_seed(0);
    workload(pe.domain(0));
    pe.run();
    EXPECT_EQ(pe.events_dispatched(), plain.events_dispatched())
        << "threads=" << threads;
    EXPECT_EQ(pe.domain(0).now(), plain.now()) << "threads=" << threads;
  }
}

TEST(ParallelEngine, ConfigValidation) {
  sim::ParallelEngine::Config cfg;
  cfg.domains = 0;
  EXPECT_THROW(sim::ParallelEngine{cfg}, std::invalid_argument);
  cfg.domains = 2;
  cfg.quantum_ns = 0;  // multi-domain with no lookahead bound
  EXPECT_THROW(sim::ParallelEngine{cfg}, std::invalid_argument);
  cfg.quantum_ns = 100;
  EXPECT_NO_THROW(sim::ParallelEngine{cfg});
}

TEST(ParallelEngine, DomainExceptionPropagatesFromWorker) {
  sim::ParallelEngine::Config cfg;
  cfg.domains = 2;
  cfg.threads = 2;
  cfg.quantum_ns = 100;
  sim::ParallelEngine pe(cfg);
  pe.domain(1).at(10, [] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pe.run(), std::runtime_error);
}

// ------------------------------------------------- machine-level pinning

struct MachineFingerprint {
  std::uint64_t events = 0;
  sim::Time end_time = 0;
  double seconds = 0;
  std::string trace_csv;
};

MachineFingerprint barrier_run(unsigned sim_threads) {
  machine::KsrMachine m(
      machine::MachineConfig::ksr1(8).with_sim_threads(sim_threads));
  obs::Tracer tracer;
  m.attach_tracer(&tracer);
  auto barrier = sync::make_barrier(m, sync::BarrierKind::kTournamentM);
  double last = 0;
  m.run([&](machine::Cpu& cpu) {
    for (int e = 0; e < 5; ++e) {
      cpu.work(cpu.rng().below(500));
      barrier->arrive(cpu);
    }
    last = cpu.seconds();
  });
  std::ostringstream csv;
  tracer.write_csv(csv);
  return {m.engine().events_dispatched(), m.engine().now(), last, csv.str()};
}

MachineFingerprint is_run(unsigned sim_threads) {
  machine::KsrMachine m(machine::MachineConfig::ksr1(4)
                            .scaled_by(64)
                            .with_sim_threads(sim_threads));
  obs::Tracer tracer;
  m.attach_tracer(&tracer);
  nas::IsConfig cfg;
  cfg.log2_keys = 11;
  cfg.log2_buckets = 8;
  const nas::IsResult r = run_is(m, cfg);
  EXPECT_TRUE(r.ranks_valid);
  std::ostringstream csv;
  tracer.write_csv(csv);
  return {m.engine().events_dispatched(), m.engine().now(), r.seconds,
          csv.str()};
}

TEST(ParallelEngine, MachineBarrierRunIsByteIdenticalAcrossSimThreads) {
  const MachineFingerprint a = barrier_run(1);
  ASSERT_GT(a.events, 0u);
  ASSERT_FALSE(a.trace_csv.empty());
  for (unsigned t : {2u, 4u}) {
    const MachineFingerprint b = barrier_run(t);
    EXPECT_EQ(a.events, b.events) << "sim_threads=" << t;
    EXPECT_EQ(a.end_time, b.end_time) << "sim_threads=" << t;
    EXPECT_EQ(a.seconds, b.seconds) << "sim_threads=" << t;
    EXPECT_EQ(a.trace_csv, b.trace_csv) << "sim_threads=" << t;
  }
}

TEST(ParallelEngine, MachineIntegerSortIsByteIdenticalAcrossSimThreads) {
  const MachineFingerprint a = is_run(1);
  ASSERT_GT(a.events, 0u);
  for (unsigned t : {2u, 4u}) {
    const MachineFingerprint b = is_run(t);
    EXPECT_EQ(a.events, b.events) << "sim_threads=" << t;
    EXPECT_EQ(a.end_time, b.end_time) << "sim_threads=" << t;
    EXPECT_EQ(a.seconds, b.seconds) << "sim_threads=" << t;
    EXPECT_EQ(a.trace_csv, b.trace_csv) << "sim_threads=" << t;
  }
}

TEST(ParallelEngine, InvariantAuditPassesUnderParallelEngine) {
  machine::KsrMachine m(
      machine::MachineConfig::ksr1(4).scaled_by(64).with_sim_threads(4));
  check::InvariantChecker checker(m);
  m.attach_checker(&checker);
  nas::IsConfig cfg;
  cfg.log2_keys = 10;
  cfg.log2_buckets = 7;
  const nas::IsResult r = run_is(m, cfg);
  EXPECT_TRUE(r.ranks_valid);
  EXPECT_NO_THROW(checker.audit_all());
  m.attach_checker(nullptr);
}

}  // namespace
}  // namespace ksr
