#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

// Minimal dependency-free JSON for the serve subsystem (docs/SERVING.md):
// the daemon's newline-delimited request/response protocol and the campaign
// manifests. Deliberately small — objects keep *insertion order* (so a
// value serializes to the same bytes it was built in, which the
// content-addressed result cache and the campaign result database rely on),
// numbers are stored exactly as signed/unsigned 64-bit integers when the
// token is integral (a seed or an event fingerprint must survive the round
// trip bit-exactly), and output is compact with no whitespace.
namespace ksr::serve {

class Json {
 public:
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kUint,    // non-negative integer token
    kInt,     // negative integer token
    kDouble,  // fractional / exponent token
    kString,
    kArray,
    kObject,
  };

  Json() = default;

  // -------- builders --------
  static Json null() { return Json(); }
  static Json boolean(bool v) {
    Json j;
    j.kind_ = Kind::kBool;
    j.b_ = v;
    return j;
  }
  static Json uint(std::uint64_t v) {
    Json j;
    j.kind_ = Kind::kUint;
    j.u_ = v;
    return j;
  }
  static Json integer(std::int64_t v) {
    if (v >= 0) return uint(static_cast<std::uint64_t>(v));
    Json j;
    j.kind_ = Kind::kInt;
    j.i_ = v;
    return j;
  }
  static Json real(double v) {
    Json j;
    j.kind_ = Kind::kDouble;
    j.d_ = v;
    return j;
  }
  static Json str(std::string v) {
    Json j;
    j.kind_ = Kind::kString;
    j.s_ = std::move(v);
    return j;
  }
  static Json array() {
    Json j;
    j.kind_ = Kind::kArray;
    return j;
  }
  static Json object() {
    Json j;
    j.kind_ = Kind::kObject;
    return j;
  }

  /// Append to an array.
  Json& push(Json v) {
    arr_.push_back(std::move(v));
    return *this;
  }
  /// Set an object member: replaces an existing key in place, appends a new
  /// one (insertion order is serialization order).
  Json& set(std::string_view key, Json v);

  // -------- inspectors --------
  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_object() const noexcept {
    return kind_ == Kind::kObject;
  }
  [[nodiscard]] bool is_array() const noexcept { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_string() const noexcept {
    return kind_ == Kind::kString;
  }
  [[nodiscard]] bool is_number() const noexcept {
    return kind_ == Kind::kUint || kind_ == Kind::kInt ||
           kind_ == Kind::kDouble;
  }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Json* find(std::string_view key) const;

  [[nodiscard]] const std::vector<Json>& items() const noexcept {
    return arr_;
  }
  [[nodiscard]] const std::vector<std::pair<std::string, Json>>& members()
      const noexcept {
    return obj_;
  }

  [[nodiscard]] const std::string& as_string() const noexcept { return s_; }
  [[nodiscard]] bool as_bool(bool def = false) const noexcept {
    return kind_ == Kind::kBool ? b_ : def;
  }
  /// Exact unsigned value; false when not a non-negative integer token.
  [[nodiscard]] bool as_u64(std::uint64_t* out) const noexcept {
    if (kind_ != Kind::kUint) return false;
    *out = u_;
    return true;
  }
  [[nodiscard]] double as_double(double def = 0.0) const noexcept {
    switch (kind_) {
      case Kind::kUint: return static_cast<double>(u_);
      case Kind::kInt: return static_cast<double>(i_);
      case Kind::kDouble: return d_;
      default: return def;
    }
  }

  // -------- serialization --------
  /// Compact serialization appended to `out` (no whitespace; object members
  /// in insertion order; doubles via %.17g so values round-trip exactly).
  void write(std::string* out) const;
  [[nodiscard]] std::string dump() const {
    std::string s;
    write(&s);
    return s;
  }

  /// Parse one JSON document; the whole input must be consumed. Returns a
  /// null value and sets *err on malformed input.
  [[nodiscard]] static Json parse(std::string_view text, std::string* err);

 private:
  Kind kind_ = Kind::kNull;
  bool b_ = false;
  std::uint64_t u_ = 0;
  std::int64_t i_ = 0;
  double d_ = 0.0;
  std::string s_;
  std::vector<Json> arr_;
  std::vector<std::pair<std::string, Json>> obj_;
};

}  // namespace ksr::serve
