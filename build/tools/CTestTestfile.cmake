# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(ksrsim_help "/root/repo/build/tools/ksrsim" "help")
set_tests_properties(ksrsim_help PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(ksrsim_probe "/root/repo/build/tools/ksrsim" "probe" "--procs" "2")
set_tests_properties(ksrsim_probe PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(ksrsim_barrier "/root/repo/build/tools/ksrsim" "barrier" "--kind" "mcs-m" "--procs" "8" "--episodes" "5")
set_tests_properties(ksrsim_barrier PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(ksrsim_lock "/root/repo/build/tools/ksrsim" "lock" "--kind" "anderson" "--procs" "4" "--ops" "10")
set_tests_properties(ksrsim_lock PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(ksrsim_kernel_ep "/root/repo/build/tools/ksrsim" "kernel" "--name" "ep" "--procs" "4" "--log2-pairs" "10")
set_tests_properties(ksrsim_kernel_ep PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(ksrsim_kernel_is "/root/repo/build/tools/ksrsim" "kernel" "--name" "is" "--procs" "4" "--log2-keys" "11" "--log2-buckets" "7" "--scale" "64")
set_tests_properties(ksrsim_kernel_is PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(ksrsim_sweep_cg "/root/repo/build/tools/ksrsim" "sweep" "--name" "cg" "--procs" "1,4" "--n" "300" "--nnz-per-row" "7" "--iters" "2" "--scale" "64")
set_tests_properties(ksrsim_sweep_cg PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(ksrsim_butterfly "/root/repo/build/tools/ksrsim" "barrier" "--kind" "dissemination" "--machine" "butterfly" "--procs" "8" "--episodes" "5")
set_tests_properties(ksrsim_butterfly PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
