// Reproduces Fig. 2 ("Read/Write Latencies on the KSR") and the §3.1 stride
// experiments: local-cache and network read/write latency as a function of
// the number of processors simultaneously accessing remote data, plus the
// 2 KB block- and 16 KB page-allocation overheads.
#include <cstdint>

#include "bench_common.hpp"
#include "ksr/machine/ksr_machine.hpp"
#include "ksr/sync/atomic.hpp"

namespace {

using namespace ksr;           // NOLINT
using namespace ksr::bench;    // NOLINT
using machine::Cpu;
using machine::KsrMachine;
using machine::MachineConfig;

struct LatencyPoint {
  double local_read = 0, local_write = 0;
  double net_read = 0, net_write = 0;
};

/// All P processors first cache private data, then simultaneously access
/// their ring neighbour's data (the paper's experiment; footnote 3: any
/// remote node costs the same on a unidirectional ring).
LatencyPoint measure(obs::Session& session, unsigned nproc,
                     std::size_t kb_per_cpu) {
  KsrMachine m(MachineConfig::ksr1(std::max(nproc, 2u)));
  ScopedObs obs(session, m, "latency p=" + std::to_string(nproc));
  const std::size_t ints = kb_per_cpu * 1024 / sizeof(std::uint32_t);
  const std::size_t stride = mem::kSubPageBytes / sizeof(std::uint32_t);
  auto data = m.alloc<std::uint32_t>(
      "lat.data", static_cast<std::size_t>(m.nproc()) * ints);
  // The paper's A/B pair for the local-cache measurement: both 1 MB —
  // resident in the 32 MB local cache, far too big for the 256 KB sub-cache.
  const std::size_t big = (1u << 20) / sizeof(std::uint32_t);
  auto big_a = m.alloc<std::uint32_t>("lat.A", big);
  auto big_b = m.alloc<std::uint32_t>("lat.B", big);
  auto barrier = sync::make_barrier(m, sync::BarrierKind::kSystem);

  LatencyPoint pt;
  m.run([&](Cpu& cpu) {
    const unsigned me = cpu.id();
    const std::size_t base = static_cast<std::size_t>(me) * ints;
    const bool active = me < nproc;
    constexpr std::size_t kSub = mem::kSubBlockBytes / sizeof(std::uint32_t);

    // Everyone caches its own slice (and pre-allocates pages).
    for (std::size_t i = 0; i < ints; i += stride) {
      cpu.write(data, base + i, static_cast<std::uint32_t>(i));
    }
    barrier->arrive(cpu);

    // --- Local-cache latency, cell 0 (the paper's A/B method): touch A,
    // fill the sub-cache with B (repeatedly — replacement is random), then
    // time strided accesses to A: sub-cache misses, local-cache hits.
    if (me == 0) {
      for (std::size_t i = 0; i < big; i += kSub) (void)cpu.read(big_a, i);
      for (int rep = 0; rep < 3; ++rep) {
        for (std::size_t i = 0; i < big; i += kSub) (void)cpu.read(big_b, i);
      }
      double t0 = cpu.seconds();
      std::size_t n = 0;
      for (std::size_t i = 0; i < big; i += kSub, ++n) {
        (void)cpu.read(big_a, i);
      }
      pt.local_read = (cpu.seconds() - t0) / static_cast<double>(n);
      for (int rep = 0; rep < 3; ++rep) {
        for (std::size_t i = 0; i < big; i += kSub) (void)cpu.read(big_b, i);
      }
      t0 = cpu.seconds();
      for (std::size_t i = 0; i < big; i += kSub) {
        cpu.write(big_a, i, 2u);
      }
      pt.local_write = (cpu.seconds() - t0) / static_cast<double>(n);
    }
    barrier->arrive(cpu);
    if (nproc < 2) return;

    // --- Network read: everyone reads its neighbour's slice at once, with
    // small per-iteration jitter so request arrivals are not in artificial
    // lockstep (the real machine's loop overheads differ per cell).
    if (active) {
      const std::size_t nb = static_cast<std::size_t>((me + 1) % nproc) * ints;
      const double t0 = cpu.seconds();
      sim::Duration jitter = 0;
      std::size_t n = 0;
      for (std::size_t i = 0; i < ints; i += stride, ++n) {
        (void)cpu.read(data, nb + i);
        const auto j = cpu.rng().below(16);
        jitter += j * 50;
        cpu.work(j);
      }
      const double nr =
          (cpu.seconds() - t0 - static_cast<double>(jitter) * 1e-9) /
          static_cast<double>(n);
      if (me == 0) pt.net_read = nr;
    }
    barrier->arrive(cpu);

    // --- Network write: distinct data per writer (no false sharing).
    if (active) {
      const std::size_t nb =
          static_cast<std::size_t>((me + nproc - 1) % nproc) * ints;
      const double t0 = cpu.seconds();
      sim::Duration jitter = 0;
      std::size_t n = 0;
      for (std::size_t i = 0; i < ints; i += stride, ++n) {
        cpu.write(data, nb + i, 7u);
        const auto j = cpu.rng().below(16);
        jitter += j * 50;
        cpu.work(j);
      }
      const double nw =
          (cpu.seconds() - t0 - static_cast<double>(jitter) * 1e-9) /
          static_cast<double>(n);
      if (me == 0) pt.net_write = nw;
    }
    barrier->arrive(cpu);
  });
  return pt;
}

void stride_experiments(obs::Session& session, const BenchOptions& opt) {
  // §3.1: striding one access per 2 KB block costs ~50% more (sub-cache
  // block allocation); one access per 16 KB page adds ~60% at ring level.
  KsrMachine m(MachineConfig::ksr1(2));
  ScopedObs obs(session, m, "stride");
  const std::size_t doubles = (opt.quick ? 1u : 4u) * 1024 * 1024 / 8;
  auto arr = m.alloc<double>("stride", doubles);
  auto remote = m.alloc<double>("stride.r", doubles);
  double dense = 0, blocky = 0, net_dense = 0, net_page = 0;
  auto barrier = sync::make_barrier(m, sync::BarrierKind::kSystem);
  m.run([&](machine::Cpu& cpu) {
    constexpr std::size_t kSub = mem::kSubBlockBytes / sizeof(double);
    constexpr std::size_t kBlk = mem::kBlockBytes / sizeof(double);
    constexpr std::size_t kSp = mem::kSubPageBytes / sizeof(double);
    constexpr std::size_t kPg = mem::kPageBytes / sizeof(double);
    if (cpu.id() == 0) {
      for (std::size_t i = 0; i < doubles; i += kSub) (void)cpu.read(arr, i);
      double t0 = cpu.seconds();
      std::size_t n = 0;
      for (std::size_t i = 0; i < doubles; i += kSub, ++n) {
        (void)cpu.read(arr, i);
      }
      dense = (cpu.seconds() - t0) / static_cast<double>(n);
      t0 = cpu.seconds();
      n = 0;
      for (std::size_t i = 0; i < doubles; i += kBlk, ++n) {
        (void)cpu.read(arr, i);
      }
      blocky = (cpu.seconds() - t0) / static_cast<double>(n);
      // Own the remote array on cell 0.
      for (std::size_t i = 0; i < doubles; i += kSp) cpu.write(remote, i, 1.0);
    }
    barrier->arrive(cpu);
    if (cpu.id() == 1) {
      // Sub-page stride within pre-allocated pages vs page stride (every
      // access allocates a 16 KB page frame).
      for (std::size_t i = 0; i < doubles; i += kPg) (void)cpu.read(remote, i);
      double t0 = cpu.seconds();
      std::size_t n = 0;
      for (std::size_t i = kSp; i < doubles; i += kSp, ++n) {
        (void)cpu.read(remote, i);
      }
      net_dense = (cpu.seconds() - t0) / static_cast<double>(n);
    }
    barrier->arrive(cpu);
    if (cpu.id() == 1) {
      // Fresh machine state is not needed: touch NEW pages of the big array
      // at page stride, each causing page allocation + remote fetch.
      const double t0 = cpu.seconds();
      std::size_t n = 0;
      for (std::size_t i = kPg / 2; i < doubles; i += kPg, ++n) {
        (void)cpu.read(remote, i);  // sub-page not yet resident; page warm
      }
      const double warm = (cpu.seconds() - t0) / static_cast<double>(n);
      (void)warm;
      net_page = warm;  // with page warm this approximates dense; see below
    }
    barrier->arrive(cpu);
  });

  // Page-allocation overhead measured directly on a cold machine:
  KsrMachine m2(MachineConfig::ksr1(2));
  ScopedObs obs2(session, m2, "stride-pagealloc");
  auto arr2 = m2.alloc<double>("stride2", doubles);
  auto flag = m2.alloc<int>("flag2", 1);
  m2.run([&](machine::Cpu& cpu) {
    constexpr std::size_t kSp = mem::kSubPageBytes / sizeof(double);
    constexpr std::size_t kPg = mem::kPageBytes / sizeof(double);
    if (cpu.id() == 0) {
      for (std::size_t i = 0; i < doubles; i += kSp) cpu.write(arr2, i, 1.0);
      cpu.write(flag, 0, 1);
    } else {
      sync::spin_until(cpu, [&] { return cpu.read(flag, 0) == 1; });
      const double t0 = cpu.seconds();
      std::size_t n = 0;
      for (std::size_t i = 0; i < doubles; i += kPg, ++n) {
        (void)cpu.read(arr2, i);  // every access: page alloc + remote fetch
      }
      net_page = (cpu.seconds() - t0) / static_cast<double>(n);
    }
  });

  TextTable t({"access pattern", "per-access (us)", "vs dense", "paper"});
  t.add_row({"local, sub-block stride (dense)", TextTable::num(dense * 1e6, 3),
             "1.00x", "18 cycles = 0.90 us"});
  t.add_row({"local, 2KB-block stride (allocs)",
             TextTable::num(blocky * 1e6, 3),
             TextTable::num(blocky / dense, 2) + "x", "+~50%"});
  t.add_row({"remote, sub-page stride (pages warm)",
             TextTable::num(net_dense * 1e6, 3), "1.00x",
             "175 cycles = 8.75 us"});
  t.add_row({"remote, 16KB-page stride (allocs)",
             TextTable::num(net_page * 1e6, 3),
             TextTable::num(net_page / net_dense, 2) + "x", "+~60%"});
  if (opt.csv) {
    t.print_csv();
  } else {
    t.print();
  }
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opt = BenchOptions::parse(argc, argv);
  obs::Session session = make_obs_session(opt, "fig2_latency");
  print_header("Read/Write latencies vs processors",
               "Fig. 2 and the stride experiments of Section 3.1");

  const std::size_t kb = opt.quick ? 16 : 64;
  TextTable t({"procs", "local rd (us)", "local wr (us)", "net rd (us)",
               "net wr (us)", "net rd (cycles)"});
  std::vector<unsigned> procs{1, 2, 4, 8, 12, 16, 20, 24, 28, 32};
  double net_read_p2 = 0;
  double net_read_p32 = 0;
  for (unsigned p : procs) {
    const LatencyPoint pt = measure(session, p, kb);
    if (p == 2) net_read_p2 = pt.net_read;
    if (p == 32) net_read_p32 = pt.net_read;
    t.add_row({std::to_string(p), TextTable::num(pt.local_read * 1e6, 3),
               TextTable::num(pt.local_write * 1e6, 3),
               TextTable::num(pt.net_read * 1e6, 3),
               TextTable::num(pt.net_write * 1e6, 3),
               TextTable::num(pt.net_read / 50e-9, 1)});
  }
  if (opt.csv) {
    t.print_csv();
  } else {
    t.print();
    std::cout << "\nPaper expectations: sub-cache 2 cycles; local cache ~18/20"
                 " cycles;\nnetwork ~175 cycles with a mild (~8%) rise by 32"
                 " processors.\nMeasured rise 2->32 procs: "
              << TextTable::num(
                     net_read_p2 > 0
                         ? (net_read_p32 / net_read_p2 - 1.0) * 100.0
                         : 0,
                     1)
              << "%\n\n";
  }

  stride_experiments(session, opt);
  return 0;
}
