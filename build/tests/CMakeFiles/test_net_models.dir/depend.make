# Empty dependencies file for test_net_models.
# This may be replaced when dependencies are built.
