#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "ksr/serve/job.hpp"

// Content-addressed result store (docs/SERVING.md). One file per cache key
// under the store directory, written temp-then-atomic-rename (the shared
// ckpt::atomic_write_file helper), so a crash mid-store can never leave a
// torn entry and repeated sweep points are free across daemon restarts.
//
// File layout (text, three lines):
//   ksr-serve-cache v1 key=<16-hex>
//   <canonical job spec string>
//   <result JSON bytes, verbatim>
//
// The canonical spec rides along and is verified on every load: an FNV-1a
// key collision, a file renamed by hand, or a store shared between
// incompatible builds degrades to a miss (counted in load_errors), never to
// a wrong result served as a hit.
namespace ksr::serve {

class ResultCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;         // memory or disk
    std::uint64_t misses = 0;
    std::uint64_t stores = 0;
    std::uint64_t load_errors = 0;  // corrupt/mismatched store files
  };

  /// `dir` empty = in-memory only (tests, one-shot campaigns). Otherwise the
  /// directory is created if missing; entries persist across restarts.
  explicit ResultCache(std::string dir);

  /// True and fills *result (byte-identical to what store() was given) when
  /// `key` holds a result for `canonical`. Thread-safe.
  [[nodiscard]] bool lookup(const CacheKey& key, const std::string& canonical,
                            std::string* result);

  /// Persist a completed result. Thread-safe; a concurrent store of the
  /// same key wins-last with identical bytes (results are deterministic).
  void store(const CacheKey& key, const std::string& canonical,
             const std::string& result);

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }
  [[nodiscard]] std::string path_of(const CacheKey& key) const;

 private:
  struct Entry {
    std::string canonical;
    std::string result;
  };

  std::string dir_;
  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, Entry> mem_;
  Stats stats_;
};

}  // namespace ksr::serve
