#pragma once

// Shared helpers for the paper-reproduction bench binaries. Each binary
// regenerates one table or figure of the paper; `--csv` prints
// machine-readable output, `--quick` shrinks sizes for smoke runs and
// `--full` approaches paper-like sizes.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "ksr/machine/factory.hpp"
#include "ksr/study/metrics.hpp"
#include "ksr/study/table.hpp"
#include "ksr/sync/barrier.hpp"

namespace ksr::bench {

using study::BenchOptions;
using study::TextTable;

inline void print_header(const std::string& title, const std::string& paper_ref) {
  std::cout << "==================================================================\n"
            << title << "\n"
            << "(reproduces " << paper_ref << ")\n"
            << "==================================================================\n";
}

/// Mean barrier episode time on `m` using `kind`, over `episodes` episodes
/// with small random arrival skew (as the paper measures).
inline double barrier_episode_seconds(machine::Machine& m,
                                      sync::BarrierKind kind, int episodes) {
  auto barrier = sync::make_barrier(m, kind);
  double total = 0;
  m.run([&](machine::Cpu& cpu) {
    // One warm-up episode outside the timed region.
    barrier->arrive(cpu);
    const double t0 = cpu.seconds();
    for (int e = 0; e < episodes; ++e) {
      cpu.work(cpu.rng().below(500));
      barrier->arrive(cpu);
    }
    const double dt = cpu.seconds() - t0;
    if (dt > total) total = dt;
  });
  return total / episodes;
}

}  // namespace ksr::bench
