file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_sp_opt.dir/bench_table4_sp_opt.cpp.o"
  "CMakeFiles/bench_table4_sp_opt.dir/bench_table4_sp_opt.cpp.o.d"
  "bench_table4_sp_opt"
  "bench_table4_sp_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_sp_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
