// Reproduces the sparse-format conversion story of §3.3.1 (Figs. 6 & 7):
// the original column-start/row-index loop scatters into y and needs
// synchronization per update when parallelized by columns; converting to
// row-start/column-index gives each processor its own slice of y with no
// synchronization at all.
#include "bench_common.hpp"
#include "ksr/machine/ksr_machine.hpp"
#include "ksr/nas/cg.hpp"

int main(int argc, char** argv) {
  using namespace ksr;         // NOLINT
  using namespace ksr::bench;  // NOLINT

  const BenchOptions opt = BenchOptions::parse(argc, argv);
  obs::Session session = make_obs_session(opt, "ablation_cg_format");
  print_header("Sparse matrix format: column-major + locks vs row-major",
               "Figs. 6 & 7 and the parallelisation discussion of §3.3.1");

  nas::CgConfig cfg;
  cfg.n = opt.quick ? 150 : 400;
  cfg.nnz_per_row = opt.quick ? 5 : 9;
  cfg.iterations = 2;

  const std::vector<unsigned> procs =
      opt.quick ? std::vector<unsigned>{1, 4} : std::vector<unsigned>{1, 2, 4, 8};

  TextTable t({"procs", "row-major (s)", "column+locks (s)", "column/row",
               "lock NACKs"});
  for (unsigned p : procs) {
    const std::string ps = std::to_string(p);
    machine::KsrMachine m1(machine::MachineConfig::ksr1(p).scaled_by(64));
    double row_t = 0;
    {
      ScopedObs obs(session, m1, "cg-rowmajor p=" + ps);
      row_t = run_cg(m1, cfg).seconds;
    }

    nas::CgConfig col = cfg;
    col.format = nas::SparseFormat::kColumnMajor;
    machine::KsrMachine m2(machine::MachineConfig::ksr1(p).scaled_by(64));
    double col_t = 0;
    {
      ScopedObs obs(session, m2, "cg-colmajor p=" + ps);
      col_t = run_cg(m2, col).seconds;
    }
    std::uint64_t nacks = 0;
    for (unsigned c = 0; c < p; ++c) nacks += m2.cell_pmon(c).ring_nacks;

    t.add_row({std::to_string(p), TextTable::num(row_t, 5),
               TextTable::num(col_t, 5), TextTable::num(col_t / row_t, 1) + "x",
               std::to_string(nacks)});
  }
  if (opt.csv) {
    t.print_csv();
  } else {
    t.print();
    std::cout
        << "\nThe gap widens with processors: every column-format update is a\n"
           "get_subpage/release pair on a shared slice of y, and contending\n"
           "updates NACK-retry over the ring; the row format needs none.\n";
  }
  return 0;
}
