// Reproduces Table 2 + the IS curve of Fig. 8: Integer Sort time, speedup,
// efficiency and serial fraction vs processors (including the paper's P=30
// row), with the pmon-confirmed ring-saturation kink from 30 to 32.
//
// Every processor count is an independent simulation, so the sweep is
// sharded over host cores through SweepRunner; results merge in submission
// order, keeping the table and --csv output bit-identical for any --jobs.
#include "bench_common.hpp"
#include "ksr/machine/ksr_machine.hpp"
#include "ksr/nas/is.hpp"

namespace {

// Everything one sweep point needs to report, extracted before the job's
// Machine is destroyed.
struct IsPoint {
  double seconds = 0.0;
  bool ranks_valid = true;
  double wait_per_req = 0.0;
  std::uint64_t events = 0;
  std::uint64_t quanta = 0;
  ksr::obs::JobObs obs;
};

struct PrefetchPoint {
  double with_pf = 0.0;
  double without = 0.0;
  std::uint64_t events = 0;
  std::uint64_t quanta = 0;
  ksr::obs::JobObs obs_pf;     // prefetching run
  ksr::obs::JobObs obs_nopf;   // ablated run
};

}  // namespace

int main(int argc, char** argv) {
  using namespace ksr;         // NOLINT
  using namespace ksr::bench;  // NOLINT

  const BenchOptions opt = BenchOptions::parse(argc, argv);
  HostMetrics host("table2_is");
  obs::Session session = make_obs_session(opt, "table2_is");
  SweepRunner runner(opt.jobs);
  host.set_jobs(runner.jobs());
  host.set_sim_threads(opt.sim_threads);
  const unsigned sim_threads = opt.sim_threads;
  print_header("Integer Sort scalability",
               "Table 2 and Figs. 8 & 9, Section 3.3.2");

  nas::IsConfig cfg;
  cfg.log2_keys = opt.quick ? 14 : 17;  // paper: 2^23; scaled with the caches
  cfg.log2_buckets = opt.quick ? 9 : 11;
  const unsigned scale = 64;

  const std::vector<unsigned> procs =
      opt.quick ? std::vector<unsigned>{1, 2, 8}
                : std::vector<unsigned>{1, 2, 4, 8, 16, 30, 32};

  std::vector<std::function<IsPoint()>> jobs;
  jobs.reserve(procs.size());
  for (unsigned p : procs) {
    jobs.emplace_back([p, scale, cfg, sim_threads, &session] {
      machine::KsrMachine m(machine::MachineConfig::ksr1(p)
                                .scaled_by(scale)
                                .with_sim_threads(sim_threads));
      IsPoint pt;
      pt.obs = session.job();
      pt.obs.attach(m);
      const nas::IsResult r = run_is(m, cfg);
      pt.obs.finish();
      pt.seconds = r.seconds;
      pt.ranks_valid = r.ranks_valid;
      // Mean slot wait per ring transaction: the saturation indicator the
      // authors read off the hardware monitor.
      cache::PerfMonitor total;
      for (unsigned i = 0; i < p; ++i) total.add(m.cell_pmon(i));
      pt.wait_per_req = total.ring_requests
                            ? static_cast<double>(total.inject_wait_ns) /
                                  static_cast<double>(total.ring_requests)
                            : 0.0;
      pt.events = m.engine().events_dispatched();
      pt.quanta = m.parallel_engine().quanta();
      return pt;
    });
  }
  std::vector<IsPoint> points = runner.run(jobs);

  std::vector<std::pair<unsigned, double>> measured;
  bool all_valid = true;
  for (std::size_t i = 0; i < procs.size(); ++i) {
    host.add_events(points[i].events);
    host.add_quanta(points[i].quanta);
    if (session.active()) {
      session.collect(std::move(points[i].obs),
                      "is p=" + std::to_string(procs[i]));
    }
    all_valid = all_valid && points[i].ranks_valid;
    measured.emplace_back(procs[i], points[i].seconds);
  }

  TextTable t({"Processors", "Time (s)", "Speedup", "Efficiency",
               "Serial Fraction", "ring wait/req (ns)"});
  const auto rows = study::scaling_rows(measured);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& row = rows[i];
    t.add_row({std::to_string(row.p), TextTable::num(row.seconds, 5),
               TextTable::num(row.speedup, 5),
               row.p == 1 ? "-" : TextTable::num(row.efficiency, 3),
               row.p == 1 ? "-" : TextTable::num(row.serial_fraction, 6),
               TextTable::num(points[i].wait_per_req, 0)});
  }
  std::cout << "Number of input keys = 2^" << cfg.log2_keys
            << ", buckets = 2^" << cfg.log2_buckets
            << ", machine caches scaled by 1/" << scale
            << ", ranks valid = " << (all_valid ? "yes" : "NO") << "\n";
  if (opt.csv) {
    t.print_csv();
  } else {
    t.print();
    std::cout
        << "\nPaper expectations (Table 2): near-linear speedup to 8\n"
           "processors (caching effects dominate), efficiency decaying and\n"
           "the serial fraction *increasing* with P (phases 4 and 6 of the\n"
           "algorithm), with a sharper serial-fraction step from 30 to 32 as\n"
           "simultaneous accesses push the ring toward saturation — visible\n"
           "here in the per-request slot-wait column.\n";
  }

  // ---- Prefetch ablation: phase 2 pulls the other processors' local
  // counts ahead of the all-to-all reduction ("prefetch ... used quite
  // extensively", §4).
  std::cout << "\n--- prefetch ablation (phase 2) ---\n";
  const std::vector<unsigned> ab_procs = opt.quick
                                             ? std::vector<unsigned>{8}
                                             : std::vector<unsigned>{8, 16, 32};
  std::vector<std::function<PrefetchPoint()>> ab_jobs;
  ab_jobs.reserve(ab_procs.size());
  for (unsigned p : ab_procs) {
    ab_jobs.emplace_back([p, scale, cfg, sim_threads, &session] {
      PrefetchPoint pt;
      machine::KsrMachine m1(machine::MachineConfig::ksr1(p)
                                 .scaled_by(scale)
                                 .with_sim_threads(sim_threads));
      pt.obs_pf = session.job();
      pt.obs_pf.attach(m1);
      pt.with_pf = run_is(m1, cfg).seconds;
      pt.obs_pf.finish();
      pt.events = m1.engine().events_dispatched();
      pt.quanta = m1.parallel_engine().quanta();
      nas::IsConfig c2 = cfg;
      c2.use_prefetch = false;
      machine::KsrMachine m2(machine::MachineConfig::ksr1(p)
                                 .scaled_by(scale)
                                 .with_sim_threads(sim_threads));
      pt.obs_nopf = session.job();
      pt.obs_nopf.attach(m2);
      pt.without = run_is(m2, c2).seconds;
      pt.obs_nopf.finish();
      pt.events += m2.engine().events_dispatched();
      pt.quanta += m2.parallel_engine().quanta();
      return pt;
    });
  }
  std::vector<PrefetchPoint> ab = runner.run(ab_jobs);

  TextTable ft({"Processors", "prefetch (s)", "no prefetch (s)", "gain"});
  for (std::size_t i = 0; i < ab_procs.size(); ++i) {
    host.add_events(ab[i].events);
    host.add_quanta(ab[i].quanta);
    if (session.active()) {
      const std::string p = std::to_string(ab_procs[i]);
      session.collect(std::move(ab[i].obs_pf), "is-prefetch p=" + p);
      session.collect(std::move(ab[i].obs_nopf), "is-noprefetch p=" + p);
    }
    ft.add_row({std::to_string(ab_procs[i]), TextTable::num(ab[i].with_pf, 5),
                TextTable::num(ab[i].without, 5),
                TextTable::num((1.0 - ab[i].with_pf / ab[i].without) * 100.0,
                               2) +
                    "%"});
  }
  if (opt.csv) {
    ft.print_csv();
  } else {
    ft.print();
  }
  return 0;
}
