file(REMOVE_RECURSE
  "libksr_machine.a"
)
