#pragma once

#include <cstdint>
#include <iosfwd>
#include <string_view>
#include <vector>

#include "ksr/cache/perf_monitor.hpp"
#include "ksr/machine/machine.hpp"
#include "ksr/sim/time.hpp"

// Machine-wide metrics: the whole-machine view the paper's authors got from
// the KSR-1's hardware performance monitor, plus interval time series.
//
// MetricsRegistry aggregates the per-cell PerfMonitor counters across every
// cell and, when attached, samples them periodically *on the simulated
// clock* through the engine's observer lane — so a 100 us sampling period
// means one sample per 100 us of simulated time, bit-identical wall-clock
// independent, and provably non-perturbing (observers never touch the main
// event queue or events_dispatched()).
namespace ksr::obs {

/// One point of the interval time series.
struct MetricsSample {
  sim::Time t = 0;
  cache::PerfMonitor pmon;        // cumulative, summed over all cells
  machine::NetSnapshot net;       // cumulative + instantaneous ring state
};

class MetricsRegistry {
 public:
  static constexpr sim::Duration kDefaultPeriodNs = 100'000;  // 100 us

  /// Sum the per-cell performance monitors of `m` (the machine-wide view).
  [[nodiscard]] static cache::PerfMonitor aggregate(machine::Machine& m);

  /// Start sampling `m` every `period_ns` of simulated time. Call before
  /// Machine::run(); the sampling chain ends with the run. A registry
  /// observes exactly one machine.
  void attach(machine::Machine& m, sim::Duration period_ns = kDefaultPeriodNs);

  /// Take the final sample at the machine's current simulated time (the
  /// observer lane drops samples past the last event, so the tail interval
  /// is captured here). Call after Machine::run().
  void finish();

  [[nodiscard]] const std::vector<MetricsSample>& samples() const noexcept {
    return samples_;
  }

  /// Interval time series as CSV: per-interval deltas of the interconnect
  /// counters plus instantaneous slot utilization. `label`, when non-empty,
  /// is prepended as a first "job" column (the SweepRunner merge format);
  /// `header` controls whether the header row is emitted.
  void write_csv(std::ostream& os, std::string_view label = {},
                 bool header = true) const;

 private:
  void sample_now();
  void arm();

  machine::Machine* machine_ = nullptr;
  sim::Duration period_ = kDefaultPeriodNs;
  std::vector<MetricsSample> samples_;
};

}  // namespace ksr::obs
