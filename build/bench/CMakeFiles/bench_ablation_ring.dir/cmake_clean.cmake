file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ring.dir/bench_ablation_ring.cpp.o"
  "CMakeFiles/bench_ablation_ring.dir/bench_ablation_ring.cpp.o.d"
  "bench_ablation_ring"
  "bench_ablation_ring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
