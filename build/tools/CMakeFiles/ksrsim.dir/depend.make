# Empty dependencies file for ksrsim.
# This may be replaced when dependencies are built.
