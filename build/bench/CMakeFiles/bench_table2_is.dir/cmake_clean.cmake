file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_is.dir/bench_table2_is.cpp.o"
  "CMakeFiles/bench_table2_is.dir/bench_table2_is.cpp.o.d"
  "bench_table2_is"
  "bench_table2_is.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_is.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
